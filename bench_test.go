package svwsim

// The benchmark harness: one testing.B target per table/figure of the
// paper's evaluation (§4), plus throughput micro-benchmarks for the core
// structures. Each figure benchmark runs a scaled-down version of the full
// experiment (fewer instructions, a representative benchmark subset) and
// reports the figure's headline quantities as custom metrics:
//
//	go test -bench=Fig -benchmem -benchtime=1x
//
// The cmd/svwexp tool runs the full-size experiments; EXPERIMENTS.md records
// paper-vs-measured values for every figure.

import (
	"testing"

	"svwsim/internal/core"
	"svwsim/internal/lsq"
	"svwsim/internal/sim"
	"svwsim/internal/workload"
)

const benchInsts = 60_000

// benchSubset keeps figure benchmarks affordable while spanning behaviours:
// a high-IPC call bench, a mid mix, and a speculation-heavy kernel.
var benchSubset = []string{"crafty", "gcc", "twolf"}

func runLadderBench(b *testing.B, ladder sim.Ladder, rawIdx, svwIdx int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := sim.RunLadder(ladder, benchSubset, benchInsts, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.AvgRexRate(rawIdx), "rex-raw-%")
		b.ReportMetric(100*res.AvgRexRate(svwIdx), "rex-svw-%")
		b.ReportMetric(res.AvgSpeedup(rawIdx), "spd-raw-%")
		b.ReportMetric(res.AvgSpeedup(svwIdx), "spd-svw-%")
		b.ReportMetric(res.AvgSpeedup(len(ladder.Configs)-1), "spd-perfect-%")
	}
}

// BenchmarkFig5_NLQLS regenerates Fig. 5: the non-associative LQ's
// re-execution rates and speedups across the SVW ladder.
func BenchmarkFig5_NLQLS(b *testing.B) {
	runLadderBench(b, sim.Fig5Ladder(), 0, 2)
}

// BenchmarkFig6_SSQ regenerates Fig. 6: the speculative SQ study.
func BenchmarkFig6_SSQ(b *testing.B) {
	runLadderBench(b, sim.Fig6Ladder(), 0, 2)
}

// BenchmarkFig7_RLE regenerates Fig. 7: the redundant-load-elimination
// study, plus the elimination rate the optimization achieves.
func BenchmarkFig7_RLE(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := sim.RunLadder(sim.Fig7Ladder(), benchSubset, benchInsts, 0)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.AvgRexRate(0), "rex-raw-%")
		b.ReportMetric(100*res.AvgRexRate(1), "rex-svw-%")
		var elim float64
		for bi := range benchSubset {
			elim += res.Runs[0][bi].Stats.ElimRate()
		}
		b.ReportMetric(100*elim/float64(len(benchSubset)), "elim-%")
		b.ReportMetric(res.AvgSpeedup(1), "spd-svw-%")
		b.ReportMetric(res.AvgSpeedup(3), "spd-perfect-%")
	}
}

// BenchmarkFig8_SSBF regenerates Fig. 8: SSBF organization sensitivity on
// the paper's five-benchmark subset.
func BenchmarkFig8_SSBF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := sim.RunFig8(workload.Fig8Subset(), benchInsts, 0)
		if err != nil {
			b.Fatal(err)
		}
		avg := func(vi int) float64 {
			var s float64
			for bi := range res.Benches {
				s += res.Rex[vi][bi]
			}
			return 100 * s / float64(len(res.Benches))
		}
		b.ReportMetric(avg(0), "rex-128-%")
		b.ReportMetric(avg(1), "rex-512-%")
		b.ReportMetric(avg(2), "rex-2048-%")
		b.ReportMetric(avg(3), "rex-bloom-%")
		b.ReportMetric(avg(4), "rex-4byte-%")
		b.ReportMetric(avg(5), "rex-inf-%")
	}
}

// BenchmarkSSNWidth regenerates the §3.6 wrap-around study: IPC at finite
// SSN widths relative to infinite.
func BenchmarkSSNWidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := sim.RunSSNWidth(benchSubset, []int{8, 16, 0}, benchInsts, 0)
		if err != nil {
			b.Fatal(err)
		}
		rel := func(wi int) float64 {
			var s float64
			for bi := range res.Benches {
				if res.IPC[2][bi] > 0 {
					s += (res.IPC[wi][bi]/res.IPC[2][bi] - 1) * 100
				}
			}
			return s / float64(len(res.Benches))
		}
		b.ReportMetric(rel(0), "ipc-8bit-vs-inf-%")
		b.ReportMetric(rel(1), "ipc-16bit-vs-inf-%")
	}
}

// BenchmarkSSBFUpdatePolicy regenerates the §3.6 speculative-vs-atomic SSBF
// update comparison.
func BenchmarkSSBFUpdatePolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := sim.RunSSBFUpdatePolicy(benchSubset, benchInsts, 0)
		if err != nil {
			b.Fatal(err)
		}
		var spec, atomic, dIPC float64
		for bi := range res.Benches {
			spec += res.RexSpec[bi]
			atomic += res.RexAtomic[bi]
			if res.IPCAtomic[bi] > 0 {
				dIPC += (res.IPCSpec[bi]/res.IPCAtomic[bi] - 1) * 100
			}
		}
		n := float64(len(res.Benches))
		b.ReportMetric(100*spec/n, "rex-spec-%")
		b.ReportMetric(100*atomic/n, "rex-atomic-%")
		b.ReportMetric(dIPC/n, "ipc-spec-gain-%")
	}
}

// BenchmarkSummaryReduction regenerates the abstract's aggregate claim: the
// average re-execution reduction across the three optimizations (~85% in
// the paper).
func BenchmarkSummaryReduction(b *testing.B) {
	type study struct {
		ladder         sim.Ladder
		rawIdx, svwIdx int
	}
	studies := []study{
		{sim.Fig5Ladder(), 0, 2},
		{sim.Fig6Ladder(), 0, 2},
		{sim.Fig7Ladder(), 0, 1},
	}
	for i := 0; i < b.N; i++ {
		var total float64
		for _, s := range studies {
			res, err := sim.RunLadder(s.ladder, benchSubset, benchInsts, 0)
			if err != nil {
				b.Fatal(err)
			}
			raw, svw := res.AvgRexRate(s.rawIdx), res.AvgRexRate(s.svwIdx)
			if raw > 0 {
				total += (1 - svw/raw) * 100
			}
		}
		b.ReportMetric(total/float64(len(studies)), "avg-reduction-%")
	}
}

// BenchmarkRetirePorts regenerates the setup remark that a second store
// retirement port is worth little except on the forwarding-heavy kernel.
func BenchmarkRetirePorts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		one, err := sim.Run(sim.BaselineNLQ(), "vortex", benchInsts)
		if err != nil {
			b.Fatal(err)
		}
		cfg := sim.BaselineNLQ()
		cfg.RetirePorts = 2
		two, err := sim.Run(cfg, "vortex", benchInsts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(sim.Speedup(&one, &two), "vortex-2port-gain-%")
	}
}

// --- Structure micro-benchmarks ------------------------------------------

// BenchmarkSSBFOps measures the raw filter update+test cost.
func BenchmarkSSBFOps(b *testing.B) {
	f := core.NewSSBF(core.DefaultSSBFConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := uint64(i*8) & 0xFFFF
		f.Update(addr, 8, core.SSN(i))
		if f.NeedsRexec(addr^0x40, 8, core.SSN(i/2)) {
			_ = addr
		}
	}
}

// BenchmarkSQSearch measures an associative store queue scan at the paper's
// 64-entry size.
func BenchmarkSQSearch(b *testing.B) {
	q := lsq.NewStoreQueue(64)
	for i := 0; i < 64; i++ {
		q.Push(lsq.StoreRec{Seq: uint64(i), Addr: uint64(i * 16), Size: 8,
			AddrKnownAt: 1, DataKnownAt: 1})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Search(100, uint64(i%64)*16, 8, 10)
	}
}

// BenchmarkPipelineThroughput measures simulated instructions per second of
// the full 8-wide machine with SVW — the simulator's own speed.
func BenchmarkPipelineThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(sim.SSQ(sim.SVWUpd), "gcc", 50_000)
		if err != nil {
			b.Fatal(err)
		}
		_ = res
	}
	b.ReportMetric(float64(50_000*b.N)/b.Elapsed().Seconds(), "sim-insts/s")
}
