// Quickstart: run one benchmark kernel on the speculative-store-queue (SSQ)
// machine with and without the SVW re-execution filter, and print the
// paper's headline quantities — the re-execution rate and the performance
// relative to the study baseline.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"svwsim"
)

func main() {
	const bench = "crafty"
	const insts = 150_000

	baseline, err := svwsim.Run(bench, svwsim.Options{
		Opt:      svwsim.OptSSQBase, // big associative SQ, 4-cycle loads
		MaxInsts: insts,
	})
	if err != nil {
		log.Fatal(err)
	}

	raw, err := svwsim.Run(bench, svwsim.Options{
		Opt:      svwsim.OptSSQ,
		MaxInsts: insts,
	})
	if err != nil {
		log.Fatal(err)
	}

	filtered, err := svwsim.Run(bench, svwsim.Options{
		Opt:                svwsim.OptSSQ,
		SVW:                true,
		SVWUpdateOnForward: true,
		MaxInsts:           insts,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("benchmark %s, %d instructions\n\n", bench, insts)
	fmt.Printf("%-22s %8s %12s %12s\n", "config", "IPC", "rex rate", "vs baseline")
	row := func(label string, r svwsim.Result) {
		fmt.Printf("%-22s %8.3f %11.1f%% %+11.1f%%\n",
			label, r.IPC, 100*r.RexRate, svwsim.Speedup(baseline, r))
	}
	row("baseline (assoc SQ)", baseline)
	row("SSQ (rex all loads)", raw)
	row("SSQ + SVW filter", filtered)

	fmt.Printf("\nSVW filtered %.0f%% of marked loads; %d re-execution failures "+
		"(mis-speculations) were caught.\n",
		100*filtered.FilterRate, filtered.RexFails)
}
