// RLE study: redundant load elimination removes 20–60% of dynamic loads
// from the execution engine, but every eliminated load must re-execute
// before commit to catch false eliminations. This example reproduces the
// paper's Fig. 7 walk on a few benchmarks — elimination rate, re-execution
// rate with and without SVW, the squash-reuse toggle — and shows the
// filter recovering the optimization's headroom.
//
//	go run ./examples/rle_study
package main

import (
	"fmt"
	"log"

	"svwsim"
)

func main() {
	benches := []string{"crafty", "gcc", "vortex", "vpr.p"}
	const insts = 150_000

	fmt.Println("RLE study (4-wide machine)")
	fmt.Printf("%-8s %8s | %9s %9s %9s | %9s %9s\n",
		"bench", "elim", "rex raw", "rex+SVW", "rex-SQU", "spd raw", "spd+SVW")

	for _, b := range benches {
		base, err := svwsim.Run(b, svwsim.Options{Opt: svwsim.OptRLEBase, MaxInsts: insts})
		if err != nil {
			log.Fatal(err)
		}
		raw, err := svwsim.Run(b, svwsim.Options{Opt: svwsim.OptRLE, MaxInsts: insts})
		if err != nil {
			log.Fatal(err)
		}
		svw, err := svwsim.Run(b, svwsim.Options{Opt: svwsim.OptRLE, SVW: true,
			MaxInsts: insts})
		if err != nil {
			log.Fatal(err)
		}
		nosqu, err := svwsim.Run(b, svwsim.Options{Opt: svwsim.OptRLE, SVW: true,
			DisableSquashReuse: true, MaxInsts: insts})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %7.0f%% | %8.1f%% %8.1f%% %8.1f%% | %+8.1f%% %+8.1f%%\n",
			b, 100*raw.ElimRate,
			100*raw.RexRate, 100*svw.RexRate, 100*nosqu.RexRate,
			svwsim.Speedup(base, raw), svwsim.Speedup(base, svw))
	}

	fmt.Println("\nBreakdown on vortex (+SVW): which eliminations still re-execute")
	r, err := svwsim.Run("vortex", svwsim.Options{Opt: svwsim.OptRLE, SVW: true,
		MaxInsts: insts})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  load reuse:        %.1f%% of loads\n", 100*r.Raw.RexRateReuse())
	fmt.Printf("  memory bypassing:  %.1f%% of loads\n", 100*r.Raw.RexRateBypass())
	fmt.Printf("  squash-reuse eliminations: %d\n", r.Raw.ElimSquash)
}
