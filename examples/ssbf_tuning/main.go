// SSBF tuning: the paper's Fig. 8 in miniature. Sweeps the store sequence
// Bloom filter organization — entry count, dual-hash, conflict granularity —
// on one benchmark under the SSQ machine (the optimization with the highest
// re-execution demand) and prints the resulting re-execution rates.
//
// The expected shape: rates fall steeply up to 512 entries and flatten
// after; the 4-byte granularity removes the false sharing that sub-quad
// accesses cause at 8-byte granules.
//
//	go run ./examples/ssbf_tuning [bench]
package main

import (
	"fmt"
	"log"
	"os"

	"svwsim"
)

func main() {
	bench := "perl.d"
	if len(os.Args) > 1 {
		bench = os.Args[1]
	}
	const insts = 150_000

	type variant struct {
		label   string
		entries int
		granule int
	}
	variants := []variant{
		{"64 entries", 64, 8},
		{"128 entries", 128, 8},
		{"512 entries (paper)", 512, 8},
		{"2048 entries", 2048, 8},
		{"512 @ 4-byte", 512, 4},
	}

	fmt.Printf("SSBF organization sweep on %s (SSQ machine, +SVW+UPD)\n\n", bench)
	raw, err := svwsim.Run(bench, svwsim.Options{Opt: svwsim.OptSSQ, MaxInsts: insts})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-22s %10.1f%% of loads re-execute (no filter)\n", "unfiltered", 100*raw.RexRate)

	for _, v := range variants {
		r, err := svwsim.Run(bench, svwsim.Options{
			Opt:                svwsim.OptSSQ,
			SVW:                true,
			SVWUpdateOnForward: true,
			SSBFEntries:        v.entries,
			SSBFGranuleBytes:   v.granule,
			MaxInsts:           insts,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %10.1f%%   (IPC %.2f, %d SSBF lookups)\n",
			v.label, 100*r.RexRate, r.IPC, r.Raw.SSBFLookups)
	}

	fmt.Println("\nA 1KB (512-entry x 16-bit) filter captures nearly all of the",
		"\nfiltering headroom — the paper's cost claim.")
}
