// SSQ enabler study: the paper's central claim is that SVW turns the
// speculative store queue from a net loss into a net win — re-executing
// every load costs more than the smaller, faster forwarding queue saves,
// until the filter removes most re-executions.
//
// This example walks the whole SSQ configuration ladder over the high-IPC
// kernels the paper says suffer most, printing the Fig. 6 shape: a large raw
// slowdown, mostly recovered with SVW, approaching the perfect-re-execution
// bound.
//
//	go run ./examples/ssq_enabler
package main

import (
	"fmt"
	"log"

	"svwsim"
)

func main() {
	benches := []string{"bzip2", "crafty", "perl.s", "vortex"}
	const insts = 150_000

	fmt.Println("SSQ study: % speedup over the associative-SQ baseline")
	fmt.Printf("%-10s %12s %12s %12s %12s\n",
		"bench", "SSQ raw", "+SVW-UPD", "+SVW+UPD", "+PERFECT")

	for _, b := range benches {
		configs := []svwsim.Options{
			{Opt: svwsim.OptSSQBase, MaxInsts: insts},
			{Opt: svwsim.OptSSQ, MaxInsts: insts},
			{Opt: svwsim.OptSSQ, SVW: true, MaxInsts: insts},
			{Opt: svwsim.OptSSQ, SVW: true, SVWUpdateOnForward: true, MaxInsts: insts},
			{Opt: svwsim.OptSSQ, PerfectRex: true, MaxInsts: insts},
		}
		var rs []svwsim.Result
		for _, o := range configs {
			r, err := svwsim.Run(b, o)
			if err != nil {
				log.Fatal(err)
			}
			rs = append(rs, r)
		}
		fmt.Printf("%-10s %+11.1f%% %+11.1f%% %+11.1f%% %+11.1f%%\n", b,
			svwsim.Speedup(rs[0], rs[1]), svwsim.Speedup(rs[0], rs[2]),
			svwsim.Speedup(rs[0], rs[3]), svwsim.Speedup(rs[0], rs[4]))
	}

	fmt.Println("\nRe-execution rates on vortex (the stubborn case):")
	for _, c := range []struct {
		label string
		opt   svwsim.Options
	}{
		{"SSQ raw     ", svwsim.Options{Opt: svwsim.OptSSQ, MaxInsts: insts}},
		{"SSQ +SVW+UPD", svwsim.Options{Opt: svwsim.OptSSQ, SVW: true,
			SVWUpdateOnForward: true, MaxInsts: insts}},
	} {
		r, err := svwsim.Run("vortex", c.opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s  %5.1f%% of loads re-execute\n", c.label, 100*r.RexRate)
	}
}
