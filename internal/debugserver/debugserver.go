// Package debugserver serves Go's net/http/pprof profiling endpoints on
// a dedicated listener, kept off the serving mux on purpose: profiling
// handlers are unauthenticated and can be expensive (a CPU profile
// blocks for its whole sample window), so they bind to an operator-only
// address — typically localhost — that production traffic never reaches.
//
// Both daemons wire it behind the -debug-addr flag; empty disables it.
package debugserver

import (
	"net"
	"net/http"
	"net/http/pprof"
)

// Mount is an extra handler to serve from the debug listener — admin
// surfaces that belong on the operator-only address for the same reason
// pprof does (svwctl's /admin/backends membership endpoint, for one).
type Mount struct {
	// Pattern in http.ServeMux syntax, e.g. "/admin/backends" or
	// "POST /admin/backends".
	Pattern string
	Handler http.Handler
}

// Handler returns a mux serving the standard pprof surface under
// /debug/pprof/ plus any extra mounts. The handlers are registered on an
// explicit mux so the debug surface lives entirely on its own listener;
// the daemons never serve http.DefaultServeMux (which net/http/pprof's
// import also populates as an init side effect), so nothing leaks onto a
// serving port.
func Handler(mounts ...Mount) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	for _, m := range mounts {
		mux.Handle(m.Pattern, m.Handler)
	}
	return mux
}

// Serve listens on addr and serves the pprof surface (plus mounts) until
// the listener fails (usually: the process exits). It returns the bound
// listener — addr may end in :0 — or an error when the address cannot be
// bound; serving itself proceeds on a background goroutine, errors
// discarded, because a dying debug listener must never take the daemon
// with it.
func Serve(addr string, mounts ...Mount) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: Handler(mounts...)}
	go func() { _ = srv.Serve(ln) }()
	return ln, nil
}
