package debugserver

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHandlerServesPprofIndex(t *testing.T) {
	w := httptest.NewRecorder()
	Handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/debug/pprof/", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("pprof index: HTTP %d", w.Code)
	}
	if !strings.Contains(w.Body.String(), "goroutine") {
		t.Fatalf("pprof index missing profile listing:\n%s", w.Body.String())
	}
}

func TestServeBindsAndServes(t *testing.T) {
	ln, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	resp, err := http.Get("http://" + ln.Addr().String() + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cmdline: HTTP %d", resp.StatusCode)
	}
	if b, _ := io.ReadAll(resp.Body); len(b) == 0 {
		t.Fatal("empty cmdline response")
	}
}
