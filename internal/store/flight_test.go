package store

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// waitCoalesced polls until n callers have joined the in-flight
// computation (Stats().Coalesced == n) so tests can release a blocked
// leader only after every waiter is actually waiting.
func waitCoalesced(t *testing.T, s *Store, n uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if s.Stats().Coalesced == n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("coalesced = %d, want %d", s.Stats().Coalesced, n)
		}
		time.Sleep(time.Millisecond)
	}
}

// The dogpile contract: N concurrent GetOrCompute calls for one cold key
// run fn exactly once; the other N-1 coalesce, share the bytes, and are
// counted.
func TestGetOrComputeCoalesces(t *testing.T) {
	const waiters = 7
	s := openStore(t, Options{MemoryEntries: 4, Dir: t.TempDir()})

	var executions atomic.Int64
	release := make(chan struct{})
	fn := func() ([]byte, error) {
		executions.Add(1)
		<-release // hold the flight open until every waiter has joined
		return []byte("computed"), nil
	}

	var wg sync.WaitGroup
	results := make([][]byte, 1+waiters)
	flags := make([]bool, 1+waiters)
	for i := 0; i <= waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			val, origin, coalesced, err := s.GetOrCompute(context.Background(), "key", fn)
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
			}
			if origin != OriginMiss {
				t.Errorf("caller %d: origin %v, want miss", i, origin)
			}
			results[i], flags[i] = val, coalesced
		}(i)
	}
	waitCoalesced(t, s, waiters)
	close(release)
	wg.Wait()

	if n := executions.Load(); n != 1 {
		t.Fatalf("fn ran %d times, want exactly 1", n)
	}
	var coalesced int
	for i := 0; i <= waiters; i++ {
		if !bytes.Equal(results[i], []byte("computed")) {
			t.Fatalf("caller %d got %q", i, results[i])
		}
		if flags[i] {
			coalesced++
		}
	}
	if coalesced != waiters {
		t.Fatalf("%d callers coalesced, want %d", coalesced, waiters)
	}
	if st := s.Stats(); st.Coalesced != waiters {
		t.Fatalf("Stats.Coalesced = %d, want %d", st.Coalesced, waiters)
	}

	// One write-through landed the value in both tiers.
	if _, o := s.Get("key"); o != OriginMemory {
		t.Fatalf("origin %v after compute, want memory", o)
	}
	if v, ok := s.disk.Get("key"); !ok || !bytes.Equal(v, []byte("computed")) {
		t.Fatalf("disk tier: %q, %v, want the computed bytes", v, ok)
	}
}

// A warm key never starts a flight: GetOrCompute is a plain Get.
func TestGetOrComputeWarmKey(t *testing.T) {
	s := openStore(t, Options{MemoryEntries: 4})
	s.Put("key", []byte("warm"))
	val, origin, coalesced, err := s.GetOrCompute(context.Background(), "key", func() ([]byte, error) {
		t.Fatal("fn ran on a warm key")
		return nil, nil
	})
	if err != nil || coalesced || origin != OriginMemory || !bytes.Equal(val, []byte("warm")) {
		t.Fatalf("got %q, %v, coalesced=%v, err=%v", val, origin, coalesced, err)
	}
}

// A failing leader fails its waiters too — once, without caching the
// failure: the next caller recomputes.
func TestGetOrComputeErrorSharedNotCached(t *testing.T) {
	s := openStore(t, Options{MemoryEntries: 4})
	wantErr := errors.New("engine exploded")

	// Two callers race for the flight; whichever leads, both must see the
	// leader's error.
	release := make(chan struct{})
	fn := func() ([]byte, error) {
		<-release
		return nil, wantErr
	}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, _, err := s.GetOrCompute(context.Background(), "key", fn); !errors.Is(err, wantErr) {
				t.Errorf("err = %v, want %v", err, wantErr)
			}
		}()
	}
	waitCoalesced(t, s, 1)
	close(release)
	wg.Wait()
	// The failure was not cached: a later caller recomputes and succeeds.
	val, origin, coalesced, err := s.GetOrCompute(context.Background(), "key", func() ([]byte, error) {
		return []byte("recovered"), nil
	})
	if err != nil || coalesced || origin != OriginMiss || !bytes.Equal(val, []byte("recovered")) {
		t.Fatalf("recompute: %q, %v, coalesced=%v, err=%v", val, origin, coalesced, err)
	}
}

// A leader whose fn panics must not hang its waiters: the deferred
// backstop resolves the flight with ErrFlightAbandoned.
func TestGetOrComputePanicReleasesWaiters(t *testing.T) {
	s := openStore(t, Options{MemoryEntries: 4})
	release := make(chan struct{})
	started := make(chan struct{}) // fn only runs in the leader
	go func() {
		defer func() { recover() }()
		s.GetOrCompute(context.Background(), "key", func() ([]byte, error) {
			close(started)
			<-release
			panic("boom")
		})
	}()
	<-started
	waiterDone := make(chan error, 1)
	go func() {
		_, _, _, err := s.GetOrCompute(context.Background(), "key", func() ([]byte, error) {
			return []byte("unexpected"), nil
		})
		waiterDone <- err
	}()
	waitCoalesced(t, s, 1)
	close(release)
	select {
	case err := <-waiterDone:
		if !errors.Is(err, ErrFlightAbandoned) {
			t.Fatalf("waiter err = %v, want ErrFlightAbandoned", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter hung after leader panic")
	}
}

// A waiter's context cancels its wait, not the flight.
func TestFlightWaitHonorsContext(t *testing.T) {
	s := openStore(t, Options{MemoryEntries: 4})
	f, leader := s.BeginFlight("key")
	if !leader {
		t.Fatal("first claim was not leader")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := f.Wait(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait err = %v, want context.Canceled", err)
	}
	// The flight is still live; completing it serves later waiters.
	f.Complete([]byte("late"), nil, true)
	if v, err := f.Wait(context.Background()); err != nil || !bytes.Equal(v, []byte("late")) {
		t.Fatalf("Wait after Complete = %q, %v", v, err)
	}
}

// Complete is idempotent: only the first resolution counts.
func TestFlightCompleteIdempotent(t *testing.T) {
	s := openStore(t, Options{MemoryEntries: 4})
	f, _ := s.BeginFlight("key")
	f.Complete([]byte("first"), nil, true)
	f.Complete([]byte("second"), nil, true)
	f.Complete(nil, ErrFlightAbandoned, false)
	if v, err := f.Wait(context.Background()); err != nil || !bytes.Equal(v, []byte("first")) {
		t.Fatalf("Wait = %q, %v, want the first Complete to win", v, err)
	}
	if v, o := s.Get("key"); o != OriginMemory || !bytes.Equal(v, []byte("first")) {
		t.Fatalf("stored %q, %v", v, o)
	}
}

// Completing with persist=false resolves waiters without writing the
// store — the svwctl fallback path, where the bytes already came from it.
func TestFlightCompleteNoPersist(t *testing.T) {
	s := openStore(t, Options{MemoryEntries: 4})
	f, _ := s.BeginFlight("key")
	f.Complete([]byte("from-store"), nil, false)
	if _, o := s.Get("key"); o != OriginMiss {
		t.Fatalf("origin %v, want persist=false to leave the store alone", o)
	}
}
