package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func openDisk(t *testing.T, dir string, maxBytes int64) *Disk {
	t.Helper()
	d, err := OpenDisk(dir, maxBytes)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDiskRoundTrip(t *testing.T) {
	d := openDisk(t, t.TempDir(), 0)
	key, val := "cfg|gcc|300000", []byte(`{"Bench":"gcc"}`)
	if _, ok := d.Get(key); ok {
		t.Fatal("hit on empty tier")
	}
	if err := d.Put(key, val); err != nil {
		t.Fatal(err)
	}
	got, ok := d.Get(key)
	if !ok || !bytes.Equal(got, val) {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	// Replacing a key keeps one entry and the newest bytes.
	val2 := []byte(`{"Bench":"gcc","v":2}`)
	if err := d.Put(key, val2); err != nil {
		t.Fatal(err)
	}
	if got, _ := d.Get(key); !bytes.Equal(got, val2) {
		t.Fatalf("after replace Get = %q", got)
	}
	if st := d.Stats(); st.Entries != 1 {
		t.Fatalf("stats %+v, want 1 entry", st)
	}
}

// A second Disk over the same directory — a restarted process — serves
// what the first one wrote.
func TestDiskWarmReopen(t *testing.T) {
	dir := t.TempDir()
	d1 := openDisk(t, dir, 0)
	for i := 0; i < 5; i++ {
		if err := d1.Put(fmt.Sprintf("key-%d", i), []byte(fmt.Sprintf("val-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	d2 := openDisk(t, dir, 0)
	if st := d2.Stats(); st.Entries != 5 {
		t.Fatalf("reopened tier has %d entries, want 5", st.Entries)
	}
	for i := 0; i < 5; i++ {
		got, ok := d2.Get(fmt.Sprintf("key-%d", i))
		if !ok || !bytes.Equal(got, []byte(fmt.Sprintf("val-%d", i))) {
			t.Fatalf("key-%d after reopen: %q, %v", i, got, ok)
		}
	}
}

// entryPath returns the file backing key, which must exist.
func entryPath(t *testing.T, d *Disk, key string) string {
	t.Helper()
	path := filepath.Join(d.Dir(), fileName(key))
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestDiskCorruptionDetected(t *testing.T) {
	corruptions := []struct {
		name    string
		mangle  func(raw []byte) []byte
		corrupt bool // counted as corrupt (vs plain miss)
	}{
		{"truncated", func(raw []byte) []byte { return raw[:len(raw)/2] }, true},
		{"bitflip-payload", func(raw []byte) []byte {
			raw[len(raw)-1] ^= 0x40
			return raw
		}, true},
		{"bitflip-header", func(raw []byte) []byte {
			raw[1] ^= 0x01 // magic
			return raw
		}, true},
		{"future-version", func(raw []byte) []byte {
			raw[4] = diskVersion + 1 // schema from the future: ignore, don't misread
			return raw
		}, true},
		{"empty-file", func(raw []byte) []byte { return nil }, true},
	}
	for _, c := range corruptions {
		t.Run(c.name, func(t *testing.T) {
			d := openDisk(t, t.TempDir(), 0)
			key, val := "the-key", []byte("the-value")
			if err := d.Put(key, val); err != nil {
				t.Fatal(err)
			}
			path := entryPath(t, d, key)
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, c.mangle(raw), 0o644); err != nil {
				t.Fatal(err)
			}
			if got, ok := d.Get(key); ok {
				t.Fatalf("corrupt entry served: %q", got)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Error("corrupt entry not deleted")
			}
			if st := d.Stats(); st.Corrupt != 1 {
				t.Errorf("corrupt count %d, want 1 (stats %+v)", st.Corrupt, st)
			}
			// The slot is usable again: a recompute stores and serves.
			if err := d.Put(key, val); err != nil {
				t.Fatal(err)
			}
			if got, ok := d.Get(key); !ok || !bytes.Equal(got, val) {
				t.Fatalf("rewrite after corruption: %q, %v", got, ok)
			}
		})
	}
}

// An entry whose stored key differs from the requested one (a renamed
// file) must not be served under the wrong key.
func TestDiskKeyMismatchRejected(t *testing.T) {
	d := openDisk(t, t.TempDir(), 0)
	if err := d.Put("real-key", []byte("real-value")); err != nil {
		t.Fatal(err)
	}
	src := entryPath(t, d, "real-key")
	dst := filepath.Join(d.Dir(), fileName("other-key"))
	if err := os.Rename(src, dst); err != nil {
		t.Fatal(err)
	}
	if got, ok := d.Get("other-key"); ok {
		t.Fatalf("renamed entry served under the wrong key: %q", got)
	}
	if st := d.Stats(); st.Corrupt != 1 {
		t.Errorf("corrupt count %d, want 1", st.Corrupt)
	}
}

func TestDiskGCByAccessRecency(t *testing.T) {
	dir := t.TempDir()
	val := bytes.Repeat([]byte("x"), 100)
	entryBytes := int64(len(encodeEntry("key-0", val)))
	// Room for exactly 3 entries.
	d := openDisk(t, dir, 3*entryBytes)
	for i := 0; i < 3; i++ {
		if err := d.Put(fmt.Sprintf("key-%d", i), val); err != nil {
			t.Fatal(err)
		}
	}
	d.Get("key-0") // refresh: key-1 is now the LRU entry
	if err := d.Put("key-3", val); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Get("key-1"); ok {
		t.Fatal("key-1 survived, want it GCed as least recently accessed")
	}
	for _, k := range []string{"key-0", "key-2", "key-3"} {
		if _, ok := d.Get(k); !ok {
			t.Fatalf("%s was GCed despite being more recently used", k)
		}
	}
	st := d.Stats()
	if st.Evictions != 1 || st.Entries != 3 || st.Bytes > st.MaxBytes {
		t.Fatalf("stats %+v", st)
	}
}

// Even a single entry larger than the whole budget is kept: the newest
// write always survives, or the tier would thrash forever.
func TestDiskOversizedEntryKept(t *testing.T) {
	d := openDisk(t, t.TempDir(), 10)
	if err := d.Put("big", bytes.Repeat([]byte("x"), 1000)); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Get("big"); !ok {
		t.Fatal("oversized entry was GCed immediately")
	}
}

// Leftover temp files from a crashed writer are swept on open and never
// indexed as entries.
func TestDiskOpenSweepsTempFiles(t *testing.T) {
	dir := t.TempDir()
	tmp := filepath.Join(dir, diskTmpPrefix+"12345")
	if err := os.WriteFile(tmp, []byte("partial write"), 0o644); err != nil {
		t.Fatal(err)
	}
	d := openDisk(t, dir, 0)
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Error("temp file survived open")
	}
	if st := d.Stats(); st.Entries != 0 {
		t.Fatalf("temp file was indexed: %+v", st)
	}
}

// Non-entry files (a README, a subdirectory) are ignored, not deleted.
func TestDiskOpenIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	readme := filepath.Join(dir, "README")
	if err := os.WriteFile(readme, []byte("hands off"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(filepath.Join(dir, "sub"), 0o755); err != nil {
		t.Fatal(err)
	}
	d := openDisk(t, dir, 0)
	if st := d.Stats(); st.Entries != 0 {
		t.Fatalf("foreign files indexed: %+v", st)
	}
	if _, err := os.Stat(readme); err != nil {
		t.Error("foreign file was deleted")
	}
}

func TestDiskGCOnOpen(t *testing.T) {
	dir := t.TempDir()
	val := bytes.Repeat([]byte("y"), 200)
	d1 := openDisk(t, dir, 0)
	for i := 0; i < 6; i++ {
		if err := d1.Put(fmt.Sprintf("key-%d", i), val); err != nil {
			t.Fatal(err)
		}
	}
	entryBytes := int64(len(encodeEntry("key-0", val)))
	// Reopen with a 2-entry budget: the 4 oldest entries are shed.
	d2 := openDisk(t, dir, 2*entryBytes)
	if st := d2.Stats(); st.Entries != 2 || st.Bytes > st.MaxBytes {
		t.Fatalf("stats after shrinking reopen: %+v", st)
	}
}

// fileName must stay content-addressed: same key same name, different key
// different name, and names must be plain hex files (no path separators).
func TestDiskFileName(t *testing.T) {
	a, b := fileName("key-a"), fileName("key-b")
	if a == b {
		t.Fatal("distinct keys share a file name")
	}
	if a != fileName("key-a") {
		t.Fatal("file name is not deterministic")
	}
	if strings.ContainsAny(a, "/\\") || !strings.HasSuffix(a, diskSuffix) {
		t.Fatalf("suspicious file name %q", a)
	}
}

// A Put that cannot land (the directory vanished — disk gone, volume
// unmounted) is counted, so a dying tier is visible in stats instead of
// silently not persisting.
func TestDiskWriteErrorsCounted(t *testing.T) {
	dir := t.TempDir()
	d := openDisk(t, dir, 0)
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if err := d.Put("key", []byte("val")); err == nil {
		t.Fatal("Put into a removed directory succeeded")
	}
	if st := d.Stats(); st.WriteErrors != 1 {
		t.Fatalf("write errors %d, want 1 (stats %+v)", st.WriteErrors, st)
	}
}

// A transient read failure must not deindex a live entry; only a
// confirmed-absent file is dropped from the index.
func TestDiskGetMissingFileDeindexes(t *testing.T) {
	d := openDisk(t, t.TempDir(), 0)
	if err := d.Put("key", []byte("val")); err != nil {
		t.Fatal(err)
	}
	os.Remove(entryPath(t, d, "key"))
	if _, ok := d.Get("key"); ok {
		t.Fatal("served a deleted entry")
	}
	if st := d.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("deleted entry still indexed: %+v", st)
	}
}
