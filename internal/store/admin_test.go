package store

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// writeRawEntry lands an arbitrary byte blob as an entry file, bypassing
// Disk.Put, to plant corrupt and stale-version fixtures.
func writeRawEntry(t *testing.T, dir, name string, raw []byte) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), raw, 0o644); err != nil {
		t.Fatal(err)
	}
}

// staleVersionEntry encodes key/val validly, then rewrites the format
// version (version precedes the CRC check, so the checksum still holds
// for the parts parseEntry would verify).
func staleVersionEntry(key string, val []byte) []byte {
	raw := encodeEntry(key, val)
	binary.LittleEndian.PutUint32(raw[4:8], diskVersion+7)
	return raw
}

func TestScanDirClassifiesEntries(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Put("good", []byte("value-bytes")); err != nil {
		t.Fatal(err)
	}

	// Corrupt: a valid entry with a flipped payload byte.
	raw := encodeEntry("flipped", []byte("payload"))
	raw[len(raw)-1] ^= 0xff
	writeRawEntry(t, dir, fileName("flipped"), raw)

	// Stale: well-formed entry from another format version.
	writeRawEntry(t, dir, fileName("old"), staleVersionEntry("old", []byte("x")))

	// Misfiled: valid bytes at the wrong content address.
	writeRawEntry(t, dir, fileName("elsewhere"), encodeEntry("misfiled", []byte("y")))

	// Noise ScanDir must skip: a temp leftover and an unrelated file.
	writeRawEntry(t, dir, diskTmpPrefix+"123", []byte("partial"))
	writeRawEntry(t, dir, "README.txt", []byte("not an entry"))

	entries, err := ScanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 {
		t.Fatalf("ScanDir found %d entries, want 4: %+v", len(entries), entries)
	}
	byName := make(map[string]ScanEntry)
	for _, e := range entries {
		byName[e.Name] = e
	}
	if e := byName[fileName("good")]; e.Err != nil || e.Key != "good" {
		t.Errorf("good entry: key %q err %v", e.Key, e.Err)
	}
	if e := byName[fileName("flipped")]; e.Err == nil || errors.Is(e.Err, ErrStaleVersion) {
		t.Errorf("corrupt entry classified as %v", e.Err)
	}
	if e := byName[fileName("old")]; !errors.Is(e.Err, ErrStaleVersion) {
		t.Errorf("stale entry classified as %v", e.Err)
	}
	if e := byName[fileName("elsewhere")]; e.Err == nil || errors.Is(e.Err, ErrStaleVersion) {
		t.Errorf("misfiled entry classified as %v", e.Err)
	}
}

// TestGCDirSeesOtherWritersEntries is the blind spot the offline GC
// exists for: two Disk instances share a directory, each under its own
// budget view, while the directory's true total is over the cap.
func TestGCDirSeesOtherWritersEntries(t *testing.T) {
	dir := t.TempDir()
	val := make([]byte, 1024)
	now := time.Now()
	for i, key := range []string{"a", "b", "c", "d"} {
		d, err := OpenDisk(dir, 1<<30) // generous per-instance budget
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Put(key, val); err != nil {
			t.Fatal(err)
		}
		// Spread access times so the LRU order is deterministic.
		mt := now.Add(time.Duration(i-4) * time.Hour)
		if err := os.Chtimes(filepath.Join(dir, fileName(key)), mt, mt); err != nil {
			t.Fatal(err)
		}
	}
	// Leftover temp file from a crashed writer: gc must clear it.
	writeRawEntry(t, dir, diskTmpPrefix+"999", []byte("junk"))

	entrySize := int64(len(encodeEntry("a", val)))
	removed, remaining, err := GCDir(dir, 2*entrySize)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 2 || removed[0].Key != "a" || removed[1].Key != "b" {
		t.Fatalf("GCDir removed %+v, want oldest two (a, b)", removed)
	}
	if remaining != 2*entrySize {
		t.Errorf("remaining = %d, want %d", remaining, 2*entrySize)
	}
	if _, err := os.Stat(filepath.Join(dir, diskTmpPrefix+"999")); !os.IsNotExist(err) {
		t.Error("gc left the temp file behind")
	}
	left, err := ScanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 2 || left[0].Key != "c" || left[1].Key != "d" {
		t.Errorf("surviving entries = %+v, want c and d", left)
	}
}

func TestGCDirKeepsNewestEntry(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Put("only", make([]byte, 4096)); err != nil {
		t.Fatal(err)
	}
	removed, remaining, err := GCDir(dir, 1) // cap below the single entry
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 0 || remaining == 0 {
		t.Errorf("GCDir removed the only entry (removed=%d remaining=%d)", len(removed), remaining)
	}
}

func TestPruneDirByAge(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	ages := map[string]time.Duration{"ancient": 48 * time.Hour, "old": 25 * time.Hour, "fresh": time.Hour}
	for key, age := range ages {
		if err := d.Put(key, []byte(key)); err != nil {
			t.Fatal(err)
		}
		mt := now.Add(-age)
		if err := os.Chtimes(filepath.Join(dir, fileName(key)), mt, mt); err != nil {
			t.Fatal(err)
		}
	}
	removed, err := PruneDir(dir, now.Add(-24*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 2 || removed[0].Key != "ancient" || removed[1].Key != "old" {
		t.Fatalf("PruneDir removed %+v, want ancient then old", removed)
	}
	left, err := ScanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 1 || left[0].Key != "fresh" {
		t.Errorf("surviving entries = %+v, want fresh only", left)
	}
}

// TestParseEntryRoundTrip pins the key-less decode path decodeEntry and
// ScanDir share.
func TestParseEntryRoundTrip(t *testing.T) {
	raw := encodeEntry("some|key", []byte("some value"))
	key, val, err := parseEntry(raw)
	if err != nil || key != "some|key" || string(val) != "some value" {
		t.Fatalf("parseEntry = (%q, %q, %v)", key, val, err)
	}
	if _, _, err := parseEntry(raw[:len(raw)-1]); err == nil {
		t.Error("parseEntry accepted a truncated entry")
	}
	crcOff := raw[16] // corrupt the stored checksum
	raw[16] ^= 0xff
	if _, _, err := parseEntry(raw); err == nil {
		t.Error("parseEntry accepted a bad checksum")
	}
	raw[16] = crcOff
	if _, _, err := parseEntry(staleVersionEntry("k", []byte("v"))); !errors.Is(err, ErrStaleVersion) {
		t.Errorf("stale version classified as %v", err)
	}
}
