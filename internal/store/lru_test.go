package store

import "testing"

func TestLRUEvictsLeastRecentlyUsed(t *testing.T) {
	l := NewLRU[string]()
	l.Put("a", "A")
	l.Put("b", "B")
	l.Get("a") // refresh a: b is now the LRU entry
	key, val, ok := l.EvictOldest(nil)
	if !ok || key != "b" || val != "B" {
		t.Fatalf("evicted %q=%q ok=%v, want b=B", key, val, ok)
	}
	if _, ok := l.Peek("a"); !ok {
		t.Fatal("a was evicted despite being recently used")
	}
	if l.Len() != 1 {
		t.Fatalf("len %d, want 1", l.Len())
	}
}

func TestLRUPutRefreshesExisting(t *testing.T) {
	l := NewLRU[string]()
	l.Put("a", "A1")
	l.Put("b", "B")
	l.Put("a", "A2") // refresh + replace: b becomes the LRU entry
	if v, _ := l.Peek("a"); v != "A2" {
		t.Fatalf("got %q, want refreshed value", v)
	}
	if l.Len() != 2 {
		t.Fatalf("duplicate put grew the index to %d", l.Len())
	}
	if key, _, _ := l.EvictOldest(nil); key != "b" {
		t.Fatalf("evicted %q, want b (a was refreshed by Put)", key)
	}
}

func TestLRUPeekDoesNotRefresh(t *testing.T) {
	l := NewLRU[string]()
	l.Put("a", "A")
	l.Put("b", "B")
	l.Peek("a") // must NOT refresh
	if key, _, _ := l.EvictOldest(nil); key != "a" {
		t.Fatalf("evicted %q, want a (Peek must not refresh recency)", key)
	}
}

func TestLRUEvictOldestPredicate(t *testing.T) {
	l := NewLRU[int]()
	l.Put("a", 1)
	l.Put("b", 2)
	l.Put("c", 3)
	// Only even values are evictable: "a" (oldest) is skipped in place.
	key, val, ok := l.EvictOldest(func(_ string, v int) bool { return v%2 == 0 })
	if !ok || key != "b" || val != 2 {
		t.Fatalf("evicted %q=%d ok=%v, want b=2", key, val, ok)
	}
	// Nothing evictable: report false, leave the index intact.
	if _, _, ok := l.EvictOldest(func(_ string, v int) bool { return v > 100 }); ok {
		t.Fatal("evicted an entry the predicate rejected")
	}
	if l.Len() != 2 {
		t.Fatalf("len %d after rejected eviction, want 2", l.Len())
	}
	// The skipped-in-place oldest is still the oldest.
	if key, _, _ := l.EvictOldest(nil); key != "a" {
		t.Fatalf("evicted %q, want a", key)
	}
}

func TestLRUDelete(t *testing.T) {
	l := NewLRU[string]()
	l.Put("a", "A")
	l.Delete("a")
	l.Delete("ghost") // no-op
	if _, ok := l.Peek("a"); ok || l.Len() != 0 {
		t.Fatalf("a survived Delete (len %d)", l.Len())
	}
}
