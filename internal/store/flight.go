package store

import (
	"context"
	"errors"
)

// Cold-miss singleflight. N concurrent requests for the same uncached key
// are the serving layer's dogpile: without coordination each one admits
// itself, runs the engine, marshals the result and write-throughs the same
// bytes to disk — N computations and N fsyncs for one answer. A Flight
// coalesces them: the first caller to claim a key becomes its leader and
// computes; everyone else waits on the leader's flight and is handed the
// finished bytes, costing one channel receive instead of a simulation
// (the recompute-vs-fetch economics of value recomputation applied to the
// store). Coalesced waits are counted in Stats.Coalesced, surfaced on
// /v1/stats and as svw_store_coalesced_total.

// ErrFlightAbandoned resolves a flight whose leader exited without
// completing it (a panic, a lost client) — waiters see this instead of
// hanging forever.
var ErrFlightAbandoned = errors.New("store: in-flight computation abandoned")

// Flight is one in-progress computation of a key, shared by its leader
// (who must Complete it exactly once; later Completes are no-ops) and any
// number of waiters.
type Flight struct {
	s    *Store
	key  string
	done chan struct{}
	val  []byte
	err  error
}

// BeginFlight claims key's in-flight slot. The first caller gets
// leader=true and MUST eventually call Complete — on success, failure,
// and every abandonment path — or waiters block until their contexts
// expire. A later caller gets the existing flight with leader=false (and
// one Coalesced count) and should Wait on it.
//
// BeginFlight does not probe the store; callers coalescing on cached keys
// should Get first (or use GetOrCompute, which does both).
func (s *Store) BeginFlight(key string) (*Flight, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if f, ok := s.flights[key]; ok {
		s.coalesced++
		return f, false
	}
	f := &Flight{s: s, key: key, done: make(chan struct{})}
	s.flights[key] = f
	return f, true
}

// Complete resolves the flight: waiters wake with (val, err), and with
// persist=true a successful value is written through the store's tiers
// (pass false when val already came out of a store and re-persisting it
// would be redundant). Only the first Complete counts; the rest are
// no-ops, so "defer Complete(nil, ErrFlightAbandoned, false)" is a safe
// leader-side backstop.
func (f *Flight) Complete(val []byte, err error, persist bool) {
	s := f.s
	s.mu.Lock()
	select {
	case <-f.done:
		s.mu.Unlock()
		return // already completed
	default:
	}
	f.val, f.err = val, err
	delete(s.flights, f.key)
	if err == nil && persist {
		s.putMemLocked(f.key, val, false)
	}
	close(f.done)
	s.mu.Unlock()
	if err == nil && persist {
		s.diskPut(f.key, val)
	}
}

// Wait blocks until the flight completes or ctx ends, returning the
// leader's result (or ctx's error).
func (f *Flight) Wait(ctx context.Context) ([]byte, error) {
	select {
	case <-f.done:
		return f.val, f.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// GetOrCompute returns the bytes under key, computing them with fn on a
// cold miss — at most once across concurrent callers. The probe order is
// Get's (memory, then disk with promotion); on a miss the first caller
// runs fn and its result is written through both tiers, while concurrent
// callers of the same key coalesce on that one computation (coalesced=
// true, one Stats.Coalesced count each) and share its bytes or its error.
// Counters other than Coalesced are untouched — callers that serve the
// result record the outcome with Account, exactly as with Get.
func (s *Store) GetOrCompute(ctx context.Context, key string, fn func() ([]byte, error)) (val []byte, origin Origin, coalesced bool, err error) {
	if val, origin := s.Get(key); origin != OriginMiss {
		return val, origin, false, nil
	}
	f, leader := s.BeginFlight(key)
	if !leader {
		val, err := f.Wait(ctx)
		return val, OriginMiss, true, err
	}
	// Backstop: if fn panics, waiters get ErrFlightAbandoned instead of a
	// hang. A no-op when the Complete below ran.
	defer f.Complete(nil, ErrFlightAbandoned, false)
	val, err = fn()
	f.Complete(val, err, true)
	return val, OriginMiss, false, err
}
