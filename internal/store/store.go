// Package store is the unified content-addressed result store: one cache
// subsystem shared by every layer of the serving stack. The engine's memo
// table orders its entries with the same LRU index (lru.go), the svwd
// server and the svwctl coordinator serve /v1/run and /v1/sweep through a
// Store, and svwsim reads and pre-warms the same on-disk tier, so a
// result computed anywhere is a lookup everywhere.
//
// A Store is two tiers behind one Get/Put:
//
//   - a bounded in-memory LRU of serialized result bytes — the hot tier,
//     equivalent to the bespoke LRU internal/server used to own;
//   - an optional disk tier (disk.go): one checksummed, atomically
//     written file per engine memo key, size-capped with LRU GC, so warm
//     restarts and cross-process sharing cost a read instead of a
//     re-simulation.
//
// Get consults memory first, then disk; a disk hit is promoted into
// memory. Put writes through to both tiers. Lookups never touch the
// hit/miss counters — callers that actually serve the bytes record the
// outcome with Account, so probes on requests that end up rejected
// cannot skew the rates (the same contract the server's old LRU had).
package store

import "sync"

// DefaultMemoryEntries bounds the memory tier when Options leaves it zero.
const DefaultMemoryEntries = 4096

// Origin says which tier answered a Get.
type Origin int

const (
	// OriginMiss: neither tier had the key.
	OriginMiss Origin = iota
	// OriginMemory: served from the in-memory LRU.
	OriginMemory
	// OriginDisk: served from the disk tier (and promoted to memory).
	OriginDisk
	// OriginPeer: fetched from the key's store owner over HTTP (and
	// promoted to memory). The store itself never produces this from Get —
	// the serving layer's peer router does, after validating the fetched
	// entry — but it accounts and spells like any other tier.
	OriginPeer
)

// String returns the origin's wire spelling — the X-Svwd-Cache values.
func (o Origin) String() string {
	switch o {
	case OriginMemory:
		return "memory"
	case OriginDisk:
		return "disk"
	case OriginPeer:
		return "peer"
	default:
		return "miss"
	}
}

// Options configures Open.
type Options struct {
	// MemoryEntries bounds the in-memory tier (0 = DefaultMemoryEntries,
	// minimum 1).
	MemoryEntries int
	// Dir roots the disk tier; "" disables it (memory-only store).
	Dir string
	// MaxBytes caps the disk tier (0 = store.DefaultDiskMaxBytes).
	MaxBytes int64
	// WriteBehind, when > 0 and a disk tier is configured, buffers disk
	// writes in a bounded queue of this many entries drained by a
	// background flusher (writebehind.go) instead of writing synchronously
	// on the serving path. Flushed on Close; 0 keeps writes synchronous.
	WriteBehind int
}

// Stats snapshots a Store's counters and occupancy. Hits/DiskHits/Misses
// advance only through Account.
type Stats struct {
	Hits     uint64 // memory-tier hits
	DiskHits uint64
	// PeerHits counts responses served from a peer's store over the
	// fabric's peer-read protocol — a fetch somewhere else instead of a
	// recompute here.
	PeerHits  uint64
	Misses    uint64
	Evictions uint64 // memory-tier evictions, promotion-driven included
	// PromotionEvictions is the subset of Evictions forced by disk-hit
	// promotions rather than Puts of new results. A high share means the
	// memory tier is too small for the working set sloshing up from disk —
	// reads are cannibalizing the hot tier, not growth.
	PromotionEvictions uint64
	// Coalesced counts singleflight waits: Get-or-compute callers that
	// found the key already being computed and shared the leader's result
	// instead of computing their own (flight.go).
	Coalesced   uint64
	Entries     int // memory-tier entries
	Capacity    int // memory-tier bound
	Disk        DiskStats
	WriteBehind WriteBehindStats
}

// Store is the tiered result store. Create with Open; it is safe for
// concurrent use.
type Store struct {
	disk *Disk        // nil = memory only
	wb   *writeBehind // nil = synchronous disk writes

	mu                 sync.Mutex
	mem                *LRU[[]byte]
	cap                int
	flights            map[string]*Flight
	hits               uint64
	diskHits           uint64
	peerHits           uint64
	misses             uint64
	evictions          uint64
	promotionEvictions uint64
	coalesced          uint64
}

// Open builds a Store from opts, creating the disk tier's directory when
// one is configured.
func Open(opts Options) (*Store, error) {
	capacity := opts.MemoryEntries
	if capacity == 0 {
		capacity = DefaultMemoryEntries
	}
	if capacity < 1 {
		capacity = 1
	}
	s := &Store{mem: NewLRU[[]byte](), cap: capacity, flights: make(map[string]*Flight)}
	if opts.Dir != "" {
		d, err := OpenDisk(opts.Dir, opts.MaxBytes)
		if err != nil {
			return nil, err
		}
		s.disk = d
		if opts.WriteBehind > 0 {
			s.wb = newWriteBehind(d, opts.WriteBehind)
		}
	}
	return s, nil
}

// Close drains the write-behind queue (when one is configured) so every
// completed result has landed on disk, then stops its flusher. Safe on a
// store without one; call it on graceful shutdown before exiting.
func (s *Store) Close() error {
	if s.wb != nil {
		s.wb.close()
	}
	return nil
}

// Flush blocks until every disk write enqueued so far has landed. A no-op
// without a write-behind queue (synchronous writes are already on disk).
func (s *Store) Flush() {
	if s.wb != nil {
		s.wb.flush()
	}
}

// HasDisk reports whether a disk tier is configured.
func (s *Store) HasDisk() bool { return s.disk != nil }

// Get returns the bytes under key and the tier that held them; a disk hit
// is promoted into the memory tier. Counters are untouched — callers that
// serve the result record it via Account. Callers must not mutate the
// returned slice.
func (s *Store) Get(key string) ([]byte, Origin) {
	s.mu.Lock()
	if val, ok := s.mem.Get(key); ok {
		s.mu.Unlock()
		return val, OriginMemory
	}
	s.mu.Unlock()
	if s.disk == nil {
		return nil, OriginMiss
	}
	val, ok := s.disk.Get(key)
	if !ok {
		return nil, OriginMiss
	}
	s.mu.Lock()
	s.putMemLocked(key, val, true)
	s.mu.Unlock()
	return val, OriginDisk
}

// Put stores val under key in the memory tier and writes it through to
// the disk tier when one is configured — synchronously, or via the
// write-behind queue when one is enabled. Disk write failures (and
// write-behind drops) are absorbed: the memory tier still serves the
// entry, and the disk simply stays cold for that key.
func (s *Store) Put(key string, val []byte) {
	s.mu.Lock()
	s.putMemLocked(key, val, false)
	s.mu.Unlock()
	s.diskPut(key, val)
}

// PutMemory stores val under key in the memory tier only. The peer
// router uses it for fetched entries: the key's persistent copy lives on
// its owner, so writing it to the local disk would unshard the tier.
func (s *Store) PutMemory(key string, val []byte) {
	s.mu.Lock()
	s.putMemLocked(key, val, true)
	s.mu.Unlock()
}

// diskPut routes one disk write through the write-behind queue when one
// is configured, synchronously otherwise. No-op without a disk tier.
func (s *Store) diskPut(key string, val []byte) {
	switch {
	case s.disk == nil:
	case s.wb != nil:
		s.wb.enqueue(key, val)
	default:
		s.disk.Put(key, val)
	}
}

// putMemLocked inserts into the memory tier and sheds past the capacity
// bound; promote marks the insert as a disk-hit promotion so the evictions
// it forces are attributed separately in Stats.
func (s *Store) putMemLocked(key string, val []byte, promote bool) {
	s.mem.Put(key, val)
	for s.mem.Len() > s.cap {
		if _, _, ok := s.mem.EvictOldest(nil); !ok {
			break
		}
		s.evictions++
		if promote {
			s.promotionEvictions++
		}
	}
}

// Account records served work: hits responses served from the memory
// tier, diskHits from the disk tier, misses ones that had to be computed.
func (s *Store) Account(hits, diskHits, misses uint64) {
	s.mu.Lock()
	s.hits += hits
	s.diskHits += diskHits
	s.misses += misses
	s.mu.Unlock()
}

// AccountPeer records n responses served from a peer's store.
func (s *Store) AccountPeer(n uint64) {
	s.mu.Lock()
	s.peerHits += n
	s.mu.Unlock()
}

// AccountGet is Account for one Get outcome.
func (s *Store) AccountGet(o Origin) {
	switch o {
	case OriginMemory:
		s.Account(1, 0, 0)
	case OriginDisk:
		s.Account(0, 1, 0)
	case OriginPeer:
		s.AccountPeer(1)
	default:
		s.Account(0, 0, 1)
	}
}

// Stats snapshots the store.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	st := Stats{
		Hits:               s.hits,
		DiskHits:           s.diskHits,
		PeerHits:           s.peerHits,
		Misses:             s.misses,
		Evictions:          s.evictions,
		PromotionEvictions: s.promotionEvictions,
		Coalesced:          s.coalesced,
		Entries:            s.mem.Len(),
		Capacity:           s.cap,
	}
	s.mu.Unlock()
	if s.disk != nil {
		st.Disk = s.disk.Stats()
	}
	if s.wb != nil {
		st.WriteBehind = s.wb.stats()
	}
	return st
}
