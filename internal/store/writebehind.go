package store

import "sync"

// Write-behind batching for the disk tier. Sweep-heavy load completes
// hundreds of cells in bursts, and the synchronous write-through path
// pays one temp-file + rename per cell on the serving goroutine. A
// writeBehind decouples that: completions enqueue into a bounded buffer
// and return immediately, and a single background flusher drains the
// queue in whole-batch strides — one directory sync per batch instead of
// per entry, amortizing the metadata flush across every cell the batch
// carries.
//
// Semantics the rest of the store relies on:
//
//   - last-wins dedupe: re-enqueueing a queued key updates its value in
//     place, so a key costs one disk write no matter how often it is
//     completed while queued (idempotent writes make this safe — the
//     bytes are content-addressed by key);
//   - bounded: a full queue drops the write (counted in Stats) rather
//     than blocking the serving path — the memory tier still serves the
//     entry, the disk just stays cold for that key, exactly like an
//     absorbed synchronous write error;
//   - drains on Close: Close wakes the flusher, waits for every queued
//     entry to land, then stops it. Writers arriving after Close fall
//     back to synchronous Puts, so a racing completion is never lost.
type writeBehind struct {
	disk     *Disk
	capacity int

	mu       sync.Mutex
	cond     *sync.Cond
	queue    []*wbEntry
	pending  map[string]*wbEntry // queued (not yet claimed) entries by key
	inFlight int                 // entries claimed by the flusher, not yet landed
	closed   bool

	flushes uint64 // batches landed (each = one directory sync)
	drops   uint64 // writes rejected by a full queue
	done    chan struct{}
}

type wbEntry struct {
	key string
	val []byte
}

// capacity bounds len(queue); newWriteBehind starts the flusher.
func newWriteBehind(disk *Disk, capacity int) *writeBehind {
	w := &writeBehind{
		disk:    disk,
		pending: make(map[string]*wbEntry),
		done:    make(chan struct{}),
	}
	w.cond = sync.NewCond(&w.mu)
	w.capacity = capacity
	go w.run()
	return w
}

// enqueue queues one write. Full queue = drop; after Close = synchronous
// fallback so late completions still persist.
func (w *writeBehind) enqueue(key string, val []byte) {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		w.disk.Put(key, val)
		return
	}
	if e, ok := w.pending[key]; ok {
		e.val = val // last-wins: one queued write per key
		w.mu.Unlock()
		return
	}
	if len(w.queue) >= w.capacity {
		w.drops++
		w.mu.Unlock()
		return
	}
	e := &wbEntry{key: key, val: val}
	w.pending[key] = e
	w.queue = append(w.queue, e)
	w.cond.Broadcast()
	w.mu.Unlock()
}

// run is the flusher: claim the whole queue, land it, sync the directory
// once, repeat. Exits only when closed AND drained.
func (w *writeBehind) run() {
	defer close(w.done)
	w.mu.Lock()
	for {
		for len(w.queue) == 0 && !w.closed {
			w.cond.Wait()
		}
		if len(w.queue) == 0 {
			w.mu.Unlock()
			return
		}
		batch := w.queue
		w.queue = nil
		for _, e := range batch {
			delete(w.pending, e.key)
		}
		w.inFlight = len(batch)
		w.mu.Unlock()

		for _, e := range batch {
			w.disk.Put(e.key, e.val) // failures absorbed: counted in DiskStats.WriteErrors
		}
		w.disk.SyncDir()

		w.mu.Lock()
		w.inFlight = 0
		w.flushes++
		w.cond.Broadcast() // wake Flush waiters (and the next batch check)
	}
}

// flush blocks until everything enqueued so far has landed on disk.
func (w *writeBehind) flush() {
	w.mu.Lock()
	for len(w.queue) > 0 || w.inFlight > 0 {
		w.cond.Wait()
	}
	w.mu.Unlock()
}

// close drains the queue and stops the flusher. Idempotent.
func (w *writeBehind) close() {
	w.mu.Lock()
	if !w.closed {
		w.closed = true
		w.cond.Broadcast()
	}
	w.mu.Unlock()
	<-w.done
}

// WriteBehindStats snapshots the queue for Stats.
type WriteBehindStats struct {
	Enabled bool
	Depth   int    // queued + in-flight entries not yet on disk
	Flushes uint64 // batches landed
	Drops   uint64 // writes rejected by a full queue
}

func (w *writeBehind) stats() WriteBehindStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return WriteBehindStats{
		Enabled: true,
		Depth:   len(w.queue) + w.inFlight,
		Flushes: w.flushes,
		Drops:   w.drops,
	}
}
