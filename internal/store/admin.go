package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// Offline administration of a disk-tier directory, backing the svwstore
// CLI. A live Disk indexes only what it has seen (its own Puts plus
// adopted Gets), so its size-cap GC acts on its own view of the total —
// several daemons sharing one directory can each be under budget while
// the directory is over it. These functions always start from a full
// directory re-scan, so their decisions cover everything actually
// present, whoever wrote it.

// ScanEntry describes one entry file found by ScanDir.
type ScanEntry struct {
	Name    string    // file name under the directory
	Key     string    // embedded store key ("" when unreadable)
	Size    int64     // whole file size (header + key + value)
	ModTime time.Time // last access (reads bump mtime best-effort)
	// Err classifies the entry: nil = valid, wraps ErrStaleVersion for a
	// well-formed entry from another format version, anything else is
	// corruption (bad magic, truncation, checksum or filename mismatch).
	Err error
}

// ScanDir reads every entry in a disk-tier directory with full validation
// — the same checks a serving Get performs, plus that the file sits at
// its key's content address. Entries come back oldest-access-first (the
// GC order). Leftover temp files are ignored; nothing is modified.
func ScanDir(dir string) ([]ScanEntry, error) {
	files, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: scanning %s: %w", dir, err)
	}
	var out []ScanEntry
	for _, e := range files {
		name := e.Name()
		if e.IsDir() || strings.HasPrefix(name, diskTmpPrefix) || !strings.HasSuffix(name, diskSuffix) {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue // deleted between readdir and stat
		}
		se := ScanEntry{Name: name, Size: info.Size(), ModTime: info.ModTime()}
		raw, err := os.ReadFile(filepath.Join(dir, name))
		switch {
		case err != nil:
			se.Err = err
		default:
			var key string
			key, _, se.Err = parseEntry(raw)
			se.Key = key
			if se.Err == nil && fileName(key) != name {
				se.Err = errors.New("entry filed under the wrong content address")
			}
		}
		out = append(out, se)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ModTime.Before(out[j].ModTime) })
	return out, nil
}

// GCDir enforces maxBytes (0 = DefaultDiskMaxBytes) over everything in
// dir: leftover temp files are removed, then least-recently-accessed
// entries are deleted until the directory fits the budget — keeping at
// least the newest entry, like the live GC. It returns what was removed
// (oldest first) and the byte total left behind.
func GCDir(dir string, maxBytes int64) (removed []ScanEntry, remaining int64, err error) {
	if maxBytes <= 0 {
		maxBytes = DefaultDiskMaxBytes
	}
	files, err := os.ReadDir(dir)
	if err != nil {
		return nil, 0, fmt.Errorf("store: scanning %s: %w", dir, err)
	}
	for _, e := range files {
		if strings.HasPrefix(e.Name(), diskTmpPrefix) {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
	entries, err := ScanDir(dir)
	if err != nil {
		return nil, 0, err
	}
	for _, e := range entries {
		remaining += e.Size
	}
	kept := len(entries)
	for _, e := range entries {
		if remaining <= maxBytes || kept <= 1 {
			break
		}
		if err := os.Remove(filepath.Join(dir, e.Name)); err != nil {
			return removed, remaining, fmt.Errorf("store: gc %s: %w", e.Name, err)
		}
		remaining -= e.Size
		kept--
		removed = append(removed, e)
	}
	return removed, remaining, nil
}

// PruneDir deletes every entry whose last access is before cutoff,
// returning what was removed (oldest first). Unlike GCDir it has no
// keep-one floor: pruning a directory empty is what was asked for.
func PruneDir(dir string, cutoff time.Time) ([]ScanEntry, error) {
	entries, err := ScanDir(dir)
	if err != nil {
		return nil, err
	}
	var removed []ScanEntry
	for _, e := range entries {
		if !e.ModTime.Before(cutoff) {
			break // oldest-first: everything after is newer
		}
		if err := os.Remove(filepath.Join(dir, e.Name)); err != nil {
			return removed, fmt.Errorf("store: prune %s: %w", e.Name, err)
		}
		removed = append(removed, e)
	}
	return removed, nil
}
