package store

import (
	"fmt"
	"testing"
)

// BenchmarkStore measures the read and write paths of both tiers with a
// payload shaped like a marshaled engine result (~1 KiB). Run alongside
// the engine bench suite:
//
//	go test -bench=Store -run='^$' ./internal/store
func BenchmarkStore(b *testing.B) {
	payload := make([]byte, 1024)
	for i := range payload {
		payload[i] = byte(i)
	}
	keys := make([]string, 256)
	for i := range keys {
		keys[i] = fmt.Sprintf("cfg-%03d|gcc|300000", i)
	}

	b.Run("memory-get", func(b *testing.B) {
		s, _ := Open(Options{MemoryEntries: len(keys)})
		for _, k := range keys {
			s.Put(k, payload)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, o := s.Get(keys[i%len(keys)]); o != OriginMemory {
				b.Fatal("miss")
			}
		}
	})
	b.Run("memory-put", func(b *testing.B) {
		s, _ := Open(Options{MemoryEntries: len(keys)})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Put(keys[i%len(keys)], payload)
		}
	})
	b.Run("disk-get", func(b *testing.B) {
		s, err := Open(Options{MemoryEntries: 1, Dir: b.TempDir()})
		if err != nil {
			b.Fatal(err)
		}
		for _, k := range keys {
			s.Put(k, payload)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// MemoryEntries=1 keeps all but the last key out of the hot
			// tier, so this measures the disk read + validate path.
			if _, o := s.Get(keys[i%(len(keys)-1)]); o == OriginMiss {
				b.Fatal("miss")
			}
		}
	})
	b.Run("disk-put", func(b *testing.B) {
		s, err := Open(Options{MemoryEntries: 1, Dir: b.TempDir()})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Put(keys[i%len(keys)], payload)
		}
	})
}
