package store

import "container/list"

// LRU is a recency-ordered string-keyed index: a map over an intrusive
// list, front = most recently used. It is the one LRU implementation in
// the repository — the store's memory tier, and the engine's memo table
// (which previously evicted in insertion order, i.e. FIFO), both order
// their entries with it, so "least recently used" means the same thing at
// every layer.
//
// LRU is not safe for concurrent use; callers hold their own lock (the
// engine its memo mutex, Store its tier mutex).
type LRU[V any] struct {
	ll    *list.List
	items map[string]*list.Element
}

type lruEntry[V any] struct {
	key string
	val V
}

// NewLRU returns an empty index.
func NewLRU[V any]() *LRU[V] {
	return &LRU[V]{ll: list.New(), items: make(map[string]*list.Element)}
}

// Len returns the number of entries.
func (l *LRU[V]) Len() int { return l.ll.Len() }

// Get returns the value under key and refreshes its recency.
func (l *LRU[V]) Get(key string) (V, bool) {
	el, ok := l.items[key]
	if !ok {
		var zero V
		return zero, false
	}
	l.ll.MoveToFront(el)
	return el.Value.(*lruEntry[V]).val, true
}

// Peek returns the value under key without touching recency.
func (l *LRU[V]) Peek(key string) (V, bool) {
	el, ok := l.items[key]
	if !ok {
		var zero V
		return zero, false
	}
	return el.Value.(*lruEntry[V]).val, true
}

// Put stores val under key as the most recently used entry, replacing any
// existing value.
func (l *LRU[V]) Put(key string, val V) {
	if el, ok := l.items[key]; ok {
		l.ll.MoveToFront(el)
		el.Value.(*lruEntry[V]).val = val
		return
	}
	l.items[key] = l.ll.PushFront(&lruEntry[V]{key: key, val: val})
}

// Delete removes key if present.
func (l *LRU[V]) Delete(key string) {
	if el, ok := l.items[key]; ok {
		l.ll.Remove(el)
		delete(l.items, key)
	}
}

// EvictOldest removes and returns the least-recently-used entry for which
// evictable returns true (nil = any). Entries the predicate rejects are
// left in place, untouched in recency order, and scanning continues toward
// more recent ones; false is returned when nothing qualifies.
func (l *LRU[V]) EvictOldest(evictable func(key string, val V) bool) (string, V, bool) {
	for el := l.ll.Back(); el != nil; el = el.Prev() {
		ent := el.Value.(*lruEntry[V])
		if evictable != nil && !evictable(ent.key, ent.val) {
			continue
		}
		l.ll.Remove(el)
		delete(l.items, ent.key)
		return ent.key, ent.val, true
	}
	var zero V
	return "", zero, false
}
