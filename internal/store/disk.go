package store

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// The on-disk entry format. Every entry is one file named by the SHA-256
// of its key (content addressing: the key IS the identity, so concurrent
// writers of the same key converge on the same file and the same bytes):
//
//	offset size  field
//	0      4     magic "SVWS"
//	4      4     format version (little-endian uint32)
//	8      4     key length (little-endian uint32)
//	12     4     value length (little-endian uint32)
//	16     4     CRC-32 (IEEE) of key bytes + value bytes
//	20     k     key bytes (verbatim engine memo key)
//	20+k   v     value bytes
//
// Readers validate everything — magic, version, lengths against the file
// size, checksum, and that the stored key matches the requested one (a
// SHA-256 collision or a renamed file would otherwise serve the wrong
// result). Any mismatch means the entry is ignored and deleted, never
// misread: a truncated write, a bit flip, or an entry from an older
// schema version all degrade to a cache miss and a recompute.
//
// diskVersion is also the invalidation knob for *payload* semantics: the
// store key (engine.Fingerprint) covers configuration, benchmark and
// budget but not the simulator's code, so a change that alters simulation
// output for unchanged configs (a timing fix, a stats change) MUST bump
// diskVersion — old directories then degrade to misses and recompute
// instead of serving stale pre-fix results as if they were current.
const (
	diskMagic      = "SVWS"
	diskVersion    = 1
	diskHeaderSize = 20
	diskSuffix     = ".svw"
	diskTmpPrefix  = ".tmp-"
)

// DefaultDiskMaxBytes caps a disk tier that was not given an explicit
// budget.
const DefaultDiskMaxBytes = 1 << 30 // 1 GiB

// DiskStats snapshots the disk tier's state and counters.
type DiskStats struct {
	Entries   int
	Bytes     int64
	MaxBytes  int64
	Evictions uint64 // entries removed by the size-cap GC
	Corrupt   uint64 // entries dropped by validation (checksum, header, key)
	// WriteErrors counts failed Puts (disk full, permissions): the tier
	// keeps serving what it has, but new results are not persisting —
	// surfaced so a dying disk is visible in /v1/stats before a restart
	// discovers it as a cold store.
	WriteErrors uint64
}

// diskFile is the in-memory index record for one on-disk entry.
type diskFile struct {
	size int64
}

// Disk is the persistent tier: one checksummed file per key under dir,
// bounded to maxBytes by evicting least-recently-accessed entries. It is
// safe for concurrent use, including by multiple Disk instances over the
// same directory (writes are atomic renames; readers validate what they
// find), though each instance GCs only against its own view of the total.
type Disk struct {
	dir      string
	maxBytes int64

	mu    sync.Mutex
	index *LRU[diskFile] // file name -> size, recency = access order
	total int64

	evictions   uint64
	corrupt     uint64
	writeErrors uint64
}

// OpenDisk opens (creating if needed) a disk tier rooted at dir. Leftover
// temp files from a crashed writer are removed; existing entries are
// indexed oldest-access-first using file mtimes, so the GC's LRU order
// survives a restart (reads bump mtime best-effort). maxBytes <= 0 falls
// back to DefaultDiskMaxBytes.
func OpenDisk(dir string, maxBytes int64) (*Disk, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultDiskMaxBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: opening disk tier: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: scanning disk tier: %w", err)
	}
	type scanned struct {
		name  string
		size  int64
		mtime time.Time
	}
	var files []scanned
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, diskTmpPrefix) {
			// A writer died between create and rename; the entry never
			// existed as far as readers are concerned.
			os.Remove(filepath.Join(dir, name))
			continue
		}
		if !strings.HasSuffix(name, diskSuffix) || e.IsDir() {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		files = append(files, scanned{name: name, size: info.Size(), mtime: info.ModTime()})
	}
	sort.Slice(files, func(i, j int) bool { return files[i].mtime.Before(files[j].mtime) })
	d := &Disk{dir: dir, maxBytes: maxBytes, index: NewLRU[diskFile]()}
	for _, f := range files {
		d.index.Put(f.name, diskFile{size: f.size}) // Put order = recency order
		d.total += f.size
	}
	d.gcLocked()
	return d, nil
}

// Dir returns the tier's root directory.
func (d *Disk) Dir() string { return d.dir }

// fileName is the content address of key.
func fileName(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:]) + diskSuffix
}

// Get returns the stored value for key, or false on miss. A file that
// fails validation — wrong magic, unknown version, bad lengths, checksum
// mismatch, or a stored key that differs from the requested one — is
// deleted and reported as a miss, so corruption costs a recompute, never
// a wrong answer.
func (d *Disk) Get(key string) ([]byte, bool) {
	name := fileName(key)
	path := filepath.Join(d.dir, name)
	raw, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			// Deindex only a confirmed-absent file; a transient read error
			// (fd exhaustion, EIO) must not desync the index and byte
			// total from what is actually on disk. Re-stat under the lock:
			// a concurrent Put may have landed the entry between our read
			// and here, and its fresh index entry must survive.
			d.mu.Lock()
			if _, statErr := os.Stat(path); os.IsNotExist(statErr) {
				d.dropLocked(name)
			}
			d.mu.Unlock()
		}
		return nil, false
	}
	val, ok := decodeEntry(raw, key)
	d.mu.Lock()
	if !ok {
		// Delete the corrupt entry — unless the file changed size since
		// our read, which means a concurrent Put replaced it with a fresh
		// entry that must not be destroyed over stale bytes. (A same-size
		// replacement in that window is indistinguishable; the next Get
		// simply re-reads it.) Either way this request is a miss.
		if info, statErr := os.Stat(path); statErr == nil && info.Size() == int64(len(raw)) {
			d.corrupt++
			d.dropLocked(name)
			os.Remove(path)
		}
		d.mu.Unlock()
		return nil, false
	}
	if _, indexed := d.index.Get(name); !indexed {
		// Another instance (or a pre-restart run) wrote it; adopt it — and
		// GC immediately. Adoption used to skip the GC, so a daemon reading
		// a shared directory grew its tier unboundedly past maxBytes until
		// the next local Put happened to trigger one. The adopted entry is
		// the index's newest, so it survives the sweep itself.
		d.index.Put(name, diskFile{size: int64(len(raw))})
		d.total += int64(len(raw))
		d.gcLocked()
	}
	d.mu.Unlock()
	// Bump mtime so access recency survives a restart; best-effort, and
	// outside the lock so a slow filesystem cannot stall other requests.
	now := time.Now()
	os.Chtimes(path, now, now)
	return val, true
}

// Put stores val under key: encoded to a temp file in the same directory,
// then renamed into place, so readers only ever observe complete entries.
// Oversized tiers shed least-recently-accessed entries afterwards.
func (d *Disk) Put(key string, val []byte) error {
	name := fileName(key)
	path := filepath.Join(d.dir, name)
	buf := encodeEntry(key, val)

	if err := d.writeFile(path, buf); err != nil {
		d.mu.Lock()
		d.writeErrors++
		d.mu.Unlock()
		return err
	}

	d.mu.Lock()
	defer d.mu.Unlock()
	d.dropLocked(name) // replacing: retire the old size before adding the new
	d.index.Put(name, diskFile{size: int64(len(buf))})
	d.total += int64(len(buf))
	d.gcLocked()
	return nil
}

// writeFile lands buf at path via temp file + rename.
func (d *Disk) writeFile(path string, buf []byte) error {
	tmp, err := os.CreateTemp(d.dir, diskTmpPrefix+"*")
	if err != nil {
		return fmt.Errorf("store: writing entry: %w", err)
	}
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("store: writing entry: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: writing entry: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("store: writing entry: %w", err)
	}
	return nil
}

// dropLocked removes name from the index (not the filesystem), keeping the
// byte total consistent.
func (d *Disk) dropLocked(name string) {
	if f, ok := d.index.Peek(name); ok {
		d.index.Delete(name)
		d.total -= f.size
	}
}

// gcLocked evicts least-recently-accessed entries until the tier fits its
// byte budget. The newest entry is always kept, even if it alone exceeds
// the budget — an empty store would just recompute-and-GC forever.
func (d *Disk) gcLocked() {
	for d.total > d.maxBytes && d.index.Len() > 1 {
		name, f, ok := d.index.EvictOldest(nil)
		if !ok {
			return
		}
		d.total -= f.size
		d.evictions++
		os.Remove(filepath.Join(d.dir, name))
	}
}

// SyncDir fsyncs the tier's directory, making every rename landed so far
// durable in one metadata flush. The synchronous Put path leaves this to
// the OS; the write-behind flusher calls it once per batch, amortizing
// the sync across the whole batch. Best-effort: a filesystem that cannot
// sync directories just returns the error.
func (d *Disk) SyncDir() error {
	f, err := os.Open(d.dir)
	if err != nil {
		return err
	}
	defer f.Close()
	return f.Sync()
}

// Stats snapshots the tier.
func (d *Disk) Stats() DiskStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return DiskStats{
		Entries:     d.index.Len(),
		Bytes:       d.total,
		MaxBytes:    d.maxBytes,
		Evictions:   d.evictions,
		Corrupt:     d.corrupt,
		WriteErrors: d.writeErrors,
	}
}

// encodeEntry serializes one entry in the on-disk format.
func encodeEntry(key string, val []byte) []byte {
	buf := make([]byte, diskHeaderSize+len(key)+len(val))
	copy(buf[0:4], diskMagic)
	binary.LittleEndian.PutUint32(buf[4:8], diskVersion)
	binary.LittleEndian.PutUint32(buf[8:12], uint32(len(key)))
	binary.LittleEndian.PutUint32(buf[12:16], uint32(len(val)))
	copy(buf[diskHeaderSize:], key)
	copy(buf[diskHeaderSize+len(key):], val)
	crc := crc32.ChecksumIEEE(buf[diskHeaderSize:])
	binary.LittleEndian.PutUint32(buf[16:20], crc)
	return buf
}

// ErrStaleVersion marks a well-formed entry written under a different
// format version — not corruption, but not servable either (the version
// is the payload-semantics invalidation knob; see the format comment).
var ErrStaleVersion = errors.New("store: entry from a different format version")

// parseEntry decodes one on-disk entry without knowing its key in
// advance, returning the embedded key and value when every integrity
// check passes. An error wrapping ErrStaleVersion means a valid entry
// from another schema version; any other error means corruption.
func parseEntry(raw []byte) (key string, val []byte, err error) {
	if len(raw) < diskHeaderSize || string(raw[0:4]) != diskMagic {
		return "", nil, errors.New("bad magic or truncated header")
	}
	if v := binary.LittleEndian.Uint32(raw[4:8]); v != diskVersion {
		return "", nil, fmt.Errorf("%w: version %d (want %d)", ErrStaleVersion, v, diskVersion)
	}
	keyLen := int64(binary.LittleEndian.Uint32(raw[8:12]))
	valLen := int64(binary.LittleEndian.Uint32(raw[12:16]))
	if int64(len(raw)) != diskHeaderSize+keyLen+valLen {
		return "", nil, errors.New("length mismatch: truncated or padded")
	}
	if crc32.ChecksumIEEE(raw[diskHeaderSize:]) != binary.LittleEndian.Uint32(raw[16:20]) {
		return "", nil, errors.New("checksum mismatch")
	}
	val = make([]byte, valLen)
	copy(val, raw[diskHeaderSize+keyLen:])
	return string(raw[diskHeaderSize : diskHeaderSize+keyLen]), val, nil
}

// decodeEntry validates raw against the format and wantKey, returning the
// value on success. Stale-version entries are ignored, not guessed at.
func decodeEntry(raw []byte, wantKey string) ([]byte, bool) {
	key, val, err := parseEntry(raw)
	if err != nil || key != wantKey {
		return nil, false
	}
	return val, true
}

// EncodeEntry serializes one entry in the on-disk format. It is the wire
// encoding of the peer-read protocol too: a store owner answers
// GET /v1/store/{key} with exactly these bytes, so the requester runs the
// same validation it runs on local files.
func EncodeEntry(key string, val []byte) []byte { return encodeEntry(key, val) }

// DecodeEntry validates an encoded entry against wantKey, returning the
// value on success. A corrupt or mismatched entry — bad magic, stale
// version, length or checksum mismatch, or a different embedded key — is
// (nil, false): a peer answer that fails here degrades to a cache miss,
// never a wrong answer.
func DecodeEntry(raw []byte, wantKey string) ([]byte, bool) {
	return decodeEntry(raw, wantKey)
}
