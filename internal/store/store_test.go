package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func openStore(t *testing.T, opts Options) *Store {
	t.Helper()
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStoreMemoryOnly(t *testing.T) {
	s := openStore(t, Options{MemoryEntries: 4})
	if s.HasDisk() {
		t.Fatal("disk tier without a dir")
	}
	if _, o := s.Get("a"); o != OriginMiss {
		t.Fatalf("origin %v on empty store", o)
	}
	s.Put("a", []byte("A"))
	v, o := s.Get("a")
	if o != OriginMemory || !bytes.Equal(v, []byte("A")) {
		t.Fatalf("Get a = %q, %v", v, o)
	}
	// Get alone never counts: handlers account served work explicitly, so
	// probes on rejected requests don't skew the rates.
	if st := s.Stats(); st.Hits != 0 || st.DiskHits != 0 || st.Misses != 0 {
		t.Fatalf("stats %+v, want counters untouched by Get", st)
	}
	s.Account(1, 0, 2)
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Entries != 1 {
		t.Fatalf("stats %+v, want 1 hit / 2 misses / 1 entry", st)
	}
}

func TestStoreMemoryEviction(t *testing.T) {
	s := openStore(t, Options{MemoryEntries: 2})
	s.Put("a", []byte("A"))
	s.Put("b", []byte("B"))
	s.Get("a")              // refresh a: b is now the LRU entry
	s.Put("c", []byte("C")) // evicts b
	if _, o := s.Get("b"); o != OriginMiss {
		t.Fatal("b survived, want it evicted as LRU")
	}
	if _, o := s.Get("a"); o != OriginMemory {
		t.Fatal("a was evicted despite being recently used")
	}
	st := s.Stats()
	if st.Evictions != 1 || st.Entries != 2 || st.Capacity != 2 {
		t.Fatalf("stats %+v", st)
	}
}

func TestStoreTiered(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, Options{MemoryEntries: 1, Dir: dir})
	if !s.HasDisk() {
		t.Fatal("no disk tier")
	}
	s.Put("a", []byte("A")) // both tiers
	s.Put("b", []byte("B")) // evicts a from memory; disk keeps it
	v, o := s.Get("a")
	if o != OriginDisk || !bytes.Equal(v, []byte("A")) {
		t.Fatalf("Get a = %q, %v, want disk hit", v, o)
	}
	// The disk hit promoted a into memory.
	if _, o := s.Get("a"); o != OriginMemory {
		t.Fatalf("origin %v after promotion, want memory", o)
	}
	s.AccountGet(OriginDisk)
	s.AccountGet(OriginMemory)
	s.AccountGet(OriginMiss)
	st := s.Stats()
	if st.Hits != 1 || st.DiskHits != 1 || st.Misses != 1 {
		t.Fatalf("stats %+v", st)
	}
	if st.Disk.Entries != 2 {
		t.Fatalf("disk entries %d, want 2", st.Disk.Entries)
	}
}

// A store reopened on the same directory — a restarted daemon — answers
// from disk what the previous process computed.
func TestStoreWarmRestart(t *testing.T) {
	dir := t.TempDir()
	s1 := openStore(t, Options{Dir: dir})
	s1.Put("job", []byte("result bytes"))

	s2 := openStore(t, Options{Dir: dir})
	v, o := s2.Get("job")
	if o != OriginDisk || !bytes.Equal(v, []byte("result bytes")) {
		t.Fatalf("after restart: %q, %v, want disk hit", v, o)
	}
}

// Corrupting the backing file degrades to a miss; a fresh Put repairs it.
func TestStoreCorruptEntryRecomputed(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, Options{MemoryEntries: 1, Dir: dir})
	s.Put("job", []byte("good"))
	s.Put("spill", []byte("x")) // push job out of the memory tier

	path := filepath.Join(dir, fileName("job"))
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, o := s.Get("job"); o != OriginMiss {
		t.Fatal("corrupt entry served")
	}
	if st := s.Stats(); st.Disk.Corrupt != 1 {
		t.Fatalf("stats %+v, want 1 corrupt", st)
	}
	s.Put("job", []byte("recomputed"))
	s.Put("spill", []byte("x"))
	if v, o := s.Get("job"); o != OriginDisk || !bytes.Equal(v, []byte("recomputed")) {
		t.Fatalf("after recompute: %q, %v", v, o)
	}
}

// Evictions forced by disk-hit promotions are attributed separately from
// Put-driven ones: a read-heavy workload cannibalizing the memory tier
// must be distinguishable from plain growth.
func TestStorePromotionEvictionsAttributed(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, Options{MemoryEntries: 1, Dir: dir})
	s.Put("a", []byte("A"))
	s.Put("b", []byte("B")) // Put-driven eviction of a
	st := s.Stats()
	if st.Evictions != 1 || st.PromotionEvictions != 0 {
		t.Fatalf("after Puts: %+v, want 1 Put-driven eviction", st)
	}
	if _, o := s.Get("a"); o != OriginDisk { // promotion evicts b
		t.Fatalf("origin %v, want disk", o)
	}
	st = s.Stats()
	if st.Evictions != 2 || st.PromotionEvictions != 1 {
		t.Fatalf("after promotion: evictions=%d promotion=%d, want 2/1",
			st.Evictions, st.PromotionEvictions)
	}
}

// A failed disk write behind a successful memory Put must leave a trace:
// the memory tier still serves, but DiskStats.WriteErrors records that
// the result never persisted. (The directory is removed out from under
// the tier — a chmod-based failure would be invisible to root.)
func TestStoreDiskWriteErrorCounted(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, Options{MemoryEntries: 4, Dir: dir})
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	s.Put("job", []byte("result"))
	if v, o := s.Get("job"); o != OriginMemory || !bytes.Equal(v, []byte("result")) {
		t.Fatalf("memory tier lost the entry: %q, %v", v, o)
	}
	st := s.Stats()
	if st.Disk.WriteErrors != 1 {
		t.Fatalf("write errors = %d, want 1: %+v", st.Disk.WriteErrors, st)
	}
	// A restarted store sees nothing on disk: the write really was lost.
	s2 := openStore(t, Options{MemoryEntries: 4, Dir: dir})
	if _, o := s2.Get("job"); o != OriginMiss {
		t.Fatalf("origin %v after restart, want miss", o)
	}
}

// TestStoreConcurrent hammers a tiered store from many goroutines; under
// -race this is the package's data-race gate.
func TestStoreConcurrent(t *testing.T) {
	s := openStore(t, Options{MemoryEntries: 16, Dir: t.TempDir()})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				key := fmt.Sprintf("k%d", i%32)
				s.Put(key, []byte(key))
				if v, o := s.Get(key); o != OriginMiss && !bytes.Equal(v, []byte(key)) {
					t.Errorf("key %s returned %q", key, v)
				}
				s.AccountGet(OriginMemory)
			}
		}(g)
	}
	wg.Wait()
	if st := s.Stats(); st.Entries > 16 {
		t.Fatalf("memory tier exceeded capacity: %+v", st)
	}
}
