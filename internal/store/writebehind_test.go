package store

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

// newStoppedWriteBehind builds a writeBehind WITHOUT its flusher, so tests
// can observe queue state deterministically and start the drain themselves.
func newStoppedWriteBehind(d *Disk, capacity int) *writeBehind {
	w := &writeBehind{
		disk:     d,
		capacity: capacity,
		pending:  make(map[string]*wbEntry),
		done:     make(chan struct{}),
	}
	w.cond = sync.NewCond(&w.mu)
	return w
}

// Re-enqueueing a queued key must update it in place (last-wins), a full
// queue must drop (counted), and close must drain everything that was
// accepted — the three load-bearing semantics of the queue, checked with
// the flusher parked so the queue state is observable.
func TestWriteBehindDedupeDropAndDrain(t *testing.T) {
	d := openDisk(t, t.TempDir(), 0)
	w := newStoppedWriteBehind(d, 3)

	w.enqueue("a", []byte("a-stale"))
	w.enqueue("a", []byte("a-fresh")) // last-wins: still one queued entry
	w.enqueue("b", []byte("B"))
	w.enqueue("c", []byte("C"))
	w.enqueue("d", []byte("D")) // queue full: dropped, not blocked

	w.mu.Lock()
	queued, drops := len(w.queue), w.drops
	w.mu.Unlock()
	if queued != 3 {
		t.Fatalf("queue has %d entries, want 3 (a deduped, d dropped)", queued)
	}
	if drops != 1 {
		t.Fatalf("drops = %d, want 1", drops)
	}

	go w.run()
	w.close()

	for key, want := range map[string]string{"a": "a-fresh", "b": "B", "c": "C"} {
		got, ok := d.Get(key)
		if !ok || !bytes.Equal(got, []byte(want)) {
			t.Errorf("after drain, %s = %q, %v, want %q", key, got, ok, want)
		}
	}
	if _, ok := d.Get("d"); ok {
		t.Error("dropped entry landed on disk anyway")
	}
	if st := w.stats(); st.Depth != 0 || st.Drops != 1 || st.Flushes < 1 {
		t.Fatalf("stats after drain: %+v", st)
	}
}

// A completion racing graceful shutdown must still persist: enqueue after
// close falls back to a synchronous write instead of losing the result.
func TestWriteBehindEnqueueAfterCloseIsSynchronous(t *testing.T) {
	d := openDisk(t, t.TempDir(), 0)
	w := newWriteBehind(d, 8)
	w.close()
	w.enqueue("late", []byte("still lands"))
	if got, ok := d.Get("late"); !ok || !bytes.Equal(got, []byte("still lands")) {
		t.Fatalf("post-close enqueue: %q, %v, want a synchronous write", got, ok)
	}
	w.close() // idempotent
}

// The Store-level contract: with WriteBehind configured, Flush makes every
// Put durable (a reopened store serves them from disk), Close drains, and
// Stats surfaces the queue.
func TestStoreWriteBehindFlushDurability(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, Options{MemoryEntries: 2, Dir: dir, WriteBehind: 64})
	for i := 0; i < 10; i++ {
		s.Put(fmt.Sprintf("key-%d", i), []byte(fmt.Sprintf("val-%d", i)))
	}
	s.Flush()
	st := s.Stats()
	if !st.WriteBehind.Enabled || st.WriteBehind.Depth != 0 {
		t.Fatalf("write-behind stats after Flush: %+v", st.WriteBehind)
	}
	if st.WriteBehind.Flushes < 1 {
		t.Fatalf("flushes = %d, want >= 1", st.WriteBehind.Flushes)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openStore(t, Options{MemoryEntries: 2, Dir: dir})
	for i := 0; i < 10; i++ {
		key := fmt.Sprintf("key-%d", i)
		v, o := s2.Get(key)
		if o == OriginMiss || !bytes.Equal(v, []byte(fmt.Sprintf("val-%d", i))) {
			t.Fatalf("%s after restart: %q, %v — a buffered write was lost", key, v, o)
		}
	}
}

// A store without a disk tier must ignore WriteBehind (nothing to buffer),
// and Flush/Close stay safe no-ops.
func TestStoreWriteBehindWithoutDisk(t *testing.T) {
	s := openStore(t, Options{MemoryEntries: 2, WriteBehind: 64})
	s.Put("a", []byte("A"))
	s.Flush()
	if st := s.Stats(); st.WriteBehind.Enabled {
		t.Fatalf("write-behind enabled without a disk tier: %+v", st.WriteBehind)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// Regression: the Get adoption path (an entry another instance wrote into
// a shared directory) used to index the file without running the GC, so a
// read-mostly daemon grew past maxBytes without bound until its next local
// Put. Adoption alone must now keep the tier within budget.
func TestDiskAdoptionTriggersGC(t *testing.T) {
	dir := t.TempDir()
	val := bytes.Repeat([]byte("z"), 150)
	entryBytes := int64(len(encodeEntry("key-0", val)))

	// The capped instance opens over an EMPTY directory; everything it
	// later sees arrives via adoption, never via its own Put.
	capped := openDisk(t, dir, 2*entryBytes)
	writer := openDisk(t, dir, 0)
	for i := 0; i < 6; i++ {
		if err := writer.Put(fmt.Sprintf("key-%d", i), val); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 6; i++ {
		// Adoptions only; whether a given Get hits depends on what earlier
		// adoptions evicted, so only the budget invariant is asserted.
		capped.Get(fmt.Sprintf("key-%d", i))
		if st := capped.Stats(); st.Bytes > st.MaxBytes {
			t.Fatalf("after adopting key-%d: %d bytes > %d budget (%+v)",
				i, st.Bytes, st.MaxBytes, st)
		}
	}
	st := capped.Stats()
	if st.Evictions < 4 {
		t.Fatalf("evictions = %d, want >= 4 (6 adoptions into a 2-entry budget): %+v",
			st.Evictions, st)
	}
	if st.Entries > 2 {
		t.Fatalf("entries = %d, want <= 2: %+v", st.Entries, st)
	}
}

// EncodeEntry/DecodeEntry are the peer-read wire protocol: a round trip
// preserves the bytes, and a mangled or misdirected reply is rejected.
func TestEntryWireRoundTrip(t *testing.T) {
	key, val := "cfg|gcc|300000", []byte(`{"Bench":"gcc"}`)
	raw := EncodeEntry(key, val)
	got, ok := DecodeEntry(raw, key)
	if !ok || !bytes.Equal(got, val) {
		t.Fatalf("round trip: %q, %v", got, ok)
	}
	if _, ok := DecodeEntry(raw, "another-key"); ok {
		t.Fatal("entry decoded under the wrong key")
	}
	raw[len(raw)-1] ^= 0x01
	if _, ok := DecodeEntry(raw, key); ok {
		t.Fatal("bit-flipped entry decoded")
	}
	if _, ok := DecodeEntry(nil, key); ok {
		t.Fatal("empty reply decoded")
	}
}
