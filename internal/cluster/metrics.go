package cluster

import (
	"sync"

	"svwsim/internal/api"
	"svwsim/internal/metrics"
)

// clusterMetrics is svwctl's scrape surface (GET /metrics): the shared
// per-endpoint HTTP series plus func-backed views over the coordinator's
// own dispatch counters and the per-backend breakdown — retries, hedges
// and health flaps per backend URL, so a dashboard sees which member of
// the fabric is misbehaving without parsing /v1/stats JSON.
type clusterMetrics struct {
	reg  *metrics.Registry
	http *metrics.HTTP
	c    *Coordinator

	// slow counts requests past the -slow-ms threshold per traced
	// endpoint (the trace subsystem's OnSlow hook feeds it).
	slow map[string]*metrics.Counter

	// seen tracks which backend URLs already have per-backend series. The
	// pool is mutable, so the series resolve the backend by URL at scrape
	// time (a removed member scrapes as zeros; re-adding it resumes real
	// values) — they must not capture *backend pointers, which would pin a
	// departed member's counters forever.
	mu   sync.Mutex
	seen map[string]bool
}

// onSlow bumps svw_slow_requests_total for one slow-logged request.
func (m *clusterMetrics) onSlow(endpoint string) {
	if c, ok := m.slow[endpoint]; ok {
		c.Inc()
	}
}

// newClusterMetrics builds the registry over a fully constructed pool.
func newClusterMetrics(c *Coordinator) *clusterMetrics {
	reg := metrics.NewRegistry()
	m := &clusterMetrics{reg: reg, http: metrics.NewHTTP(reg), c: c, seen: make(map[string]bool)}

	// Registered eagerly for the traced endpoints so the series scrape as
	// 0 before the first slow request, like every other counter here.
	m.slow = make(map[string]*metrics.Counter)
	for _, ep := range []string{"/v1/run", "/v1/sweep", "/v1/studies"} {
		m.slow[ep] = reg.Counter("svw_slow_requests_total",
			"Requests slower than the -slow-ms threshold, by endpoint.",
			metrics.Label{Key: "endpoint", Value: ep})
	}

	coord := func(name, help string, fn func() uint64) {
		reg.CounterFunc(name, help, fn)
	}
	locked := func(read func() uint64) func() uint64 {
		return func() uint64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return read()
		}
	}
	coord("svwctl_runs_total", "Client /v1/run requests.", locked(func() uint64 { return c.runs }))
	coord("svwctl_sweeps_total", "Client /v1/sweep requests.", locked(func() uint64 { return c.sweeps }))
	coord("svwctl_jobs_total", "Client jobs completed (each counted once).",
		locked(func() uint64 { return c.jobs }))
	coord("svwctl_job_errors_total", "Client jobs that failed terminally.",
		locked(func() uint64 { return c.jobErrors }))
	coord("svwctl_retries_total", "Forwarding attempts beyond each walk's first.",
		locked(func() uint64 { return c.retries }))
	coord("svwctl_hedges_total", "Speculative duplicate attempts launched for stragglers.",
		locked(func() uint64 { return c.hedges }))
	coord("svwctl_hedge_wins_total", "Hedged attempts whose response was used.",
		locked(func() uint64 { return c.hedgeWins }))
	reg.GaugeFunc("svwctl_backends_healthy", "Backends currently presumed healthy.",
		func() float64 { return float64(c.healthyCount()) })
	if c.store != nil {
		reg.CounterFunc("svw_store_coalesced_total",
			"Singleflight waits: requests that shared an in-flight identical dispatch.",
			func() uint64 { return c.store.Stats().Coalesced })
	}

	for _, b := range c.members.snapshot() {
		m.ensureBackend(b.url)
	}
	return m
}

// ensureBackend registers the per-backend series for url once. Called for
// the boot-time pool and from every successful AddBackend; the metrics
// registry dedups re-registration, and the closures look the member up by
// URL each scrape so membership churn never leaves them reading a stale
// pool entry.
func (m *clusterMetrics) ensureBackend(url string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.seen[url] {
		return
	}
	m.seen[url] = true

	// stats resolves the CURRENT member with this URL at scrape time; a
	// removed backend reads as the zero value (counter reset — the usual
	// Prometheus restart semantics) until it rejoins.
	stats := func() api.ClusterBackendStats {
		if b := m.c.members.get(url); b != nil {
			return b.stats()
		}
		return api.ClusterBackendStats{}
	}
	l := metrics.Label{Key: "backend", Value: url}
	m.reg.CounterFunc("svwctl_backend_requests_total",
		"Requests forwarded to the backend, including retries and hedges.",
		func() uint64 { return stats().Requests }, l)
	m.reg.CounterFunc("svwctl_backend_errors_total",
		"Forwarded requests that failed (transport errors and 5xx).",
		func() uint64 { return stats().Errors }, l)
	m.reg.GaugeFunc("svwctl_backend_in_flight",
		"Coordinator requests currently in flight to the backend.",
		func() float64 { return float64(stats().InFlight) }, l)
	m.reg.GaugeFunc("svwctl_backend_healthy",
		"Whether the backend is currently presumed healthy (0/1).",
		func() float64 {
			if stats().Healthy {
				return 1
			}
			return 0
		}, l)
	m.reg.CounterFunc("svwctl_backend_health_flaps_total",
		"Health-state transitions observed for the backend.",
		func() uint64 { return stats().HealthFlaps }, l)
	m.reg.CounterFunc("svwctl_backend_jobs_ok_total",
		"Jobs whose winning response came from the backend.",
		func() uint64 { return stats().JobsOK }, l)
	m.reg.CounterFunc("svwctl_backend_cache_hits_total",
		"Winning responses the backend served from its memory tier.",
		func() uint64 { return stats().CacheHits }, l)
	m.reg.CounterFunc("svwctl_backend_disk_hits_total",
		"Winning responses the backend served from its disk tier.",
		func() uint64 { return stats().DiskHits }, l)
	m.reg.CounterFunc("svwctl_backend_peer_hits_total",
		"Winning responses the backend fetched from a peer's store.",
		func() uint64 { return stats().PeerHits }, l)
}
