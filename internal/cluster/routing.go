package cluster

import (
	"sort"

	"svwsim/internal/rendezvous"
)

// Job routing: rendezvous (highest-random-weight) hashing on the engine
// memo key, delegating the hash itself to internal/rendezvous so the
// backends' store-owner election (internal/server) uses bit-identical
// placement. Every (coordinator, backend set) pair computes the same
// preference order for a key — FNV-1a is unseeded, so the order is also
// stable across processes and restarts. The properties the fabric leans
// on:
//
//   - affinity: a key's primary backend is a pure function of (key,
//     backend URL set), so repeats of a job always land on the same
//     backend and its LRU/memo stay hot;
//   - minimal disruption: removing a backend only remaps the keys it
//     owned (every other key's top choice is unchanged), and adding one
//     only claims the keys it now wins — no global reshuffle;
//   - built-in failover order: the second-ranked backend is the natural
//     retry/hedge target, itself deterministic per key, so retried work
//     warms one fallback cache instead of spraying the pool.

// score is one backend's rendezvous weight for a key.
func score(backendURL, key string) uint64 {
	return rendezvous.Score(backendURL, key)
}

// rank returns indices into backends ordered by descending rendezvous
// score for key (ties broken by URL, then index, for full determinism).
// backends[rank[0]] is the key's home; later entries are its failover
// order.
func rank(backends []*backend, key string) []int {
	order := make([]int, len(backends))
	scores := make([]uint64, len(backends))
	for i, b := range backends {
		order[i] = i
		scores[i] = score(b.url, key)
	}
	sort.Slice(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		if scores[ia] != scores[ib] {
			return scores[ia] > scores[ib]
		}
		if backends[ia].url != backends[ib].url {
			return backends[ia].url < backends[ib].url
		}
		return ia < ib
	})
	return order
}

// rankURLs is rank over bare URLs, for tests and tooling that reason about
// placement without a live pool.
func rankURLs(urls []string, key string) []string {
	return rendezvous.Rank(urls, key)
}
