package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"svwsim/internal/api"
	"svwsim/internal/sim"
	"svwsim/internal/sim/engine"
)

// jobKey is the routing key of one (config, bench, testInsts) job.
func jobKey(t *testing.T, config, bench string) string {
	t.Helper()
	cfg, ok := sim.ConfigByName(config)
	if !ok {
		t.Fatalf("unknown config %q", config)
	}
	return engine.Fingerprint(cfg, bench, testInsts)
}

// TestConcurrentClients hammers the coordinator from many goroutines with
// a mix of runs, buffered sweeps, SSE sweeps and stats reads; run under
// -race (ci.sh does) this is the fabric's data-race gate. Hedging is
// enabled with an aggressive delay so the speculative path races the
// primary constantly, and every response must still be a clean 200.
func TestConcurrentClients(t *testing.T) {
	f := newFabric(t, 2, Options{
		BackendConcurrency: 4,
		HedgeAfter:         2 * time.Millisecond,
	}, nil)
	runBody := fmt.Sprintf(`{"config":"ssq","bench":"gcc","insts":%d}`, testInsts)
	sweepB := sweepBody([]string{"ssq", "nlq"}, []string{"gcc"})
	sseHdr := map[string]string{"Accept": "text/event-stream"}

	var wg sync.WaitGroup
	var mu sync.Mutex
	codes := map[int]int{}
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				var w *httptest.ResponseRecorder
				switch (c + i) % 4 {
				case 0:
					w = f.do("POST", "/v1/run", runBody, nil)
				case 1:
					w = f.do("POST", "/v1/sweep", sweepB, nil)
				case 2:
					w = f.do("POST", "/v1/sweep", sweepB, sseHdr)
				default:
					w = f.do("GET", "/v1/stats", "", nil)
				}
				mu.Lock()
				codes[w.Code]++
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	for code, n := range codes {
		if code != http.StatusOK {
			t.Errorf("%d responses with HTTP %d, want only 200s", n, code)
		}
	}
	// Every job was counted exactly once despite the hedging storm.
	st := f.stats(t)
	wantJobs := uint64(0)
	for c := 0; c < 8; c++ {
		for i := 0; i < 6; i++ {
			switch (c + i) % 4 {
			case 0:
				wantJobs++
			case 1, 2:
				wantJobs += 2
			}
		}
	}
	if st.Cluster.Jobs+st.Cluster.JobErrors != wantJobs {
		t.Fatalf("jobs %d + errors %d, want exactly %d",
			st.Cluster.Jobs, st.Cluster.JobErrors, wantJobs)
	}
	if st.Cluster.JobErrors != 0 {
		t.Fatalf("%d job errors under concurrency", st.Cluster.JobErrors)
	}
}

// TestHedgedRequestWinsOverStraggler: a backend that answers slowly gets
// hedged onto the fast fallback, the client sees the fast answer, and the
// hedge is accounted (without double-counting the job).
func TestHedgedRequestWinsOverStraggler(t *testing.T) {
	const stall = 400 * time.Millisecond
	f := newFabric(t, 2, Options{HedgeAfter: 20 * time.Millisecond}, func(i int, h http.Handler) http.Handler {
		if i != 0 {
			return h
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/v1/run" {
				select {
				case <-time.After(stall):
				case <-r.Context().Done():
					return
				}
			}
			h.ServeHTTP(w, r)
		})
	})

	// Find a job homed on the slow backend so the hedge has a straggler to
	// beat; the key population is the registry, so one exists.
	var slowKey string
	for _, cname := range []string{"ssq", "nlq", "rle", "ssq+svw", "base-ssq", "base-nlq"} {
		key := jobKey(t, cname, "gcc")
		if rankURLs([]string{f.backends[0].URL, f.backends[1].URL}, key)[0] == f.backends[0].URL {
			slowKey = cname
			break
		}
	}
	if slowKey == "" {
		t.Skip("no probe config homed on the slow backend")
	}

	body, _ := json.Marshal(api.RunRequest{Config: slowKey, Bench: "gcc", Insts: testInsts})
	start := time.Now()
	w := f.do("POST", "/v1/run", string(body), nil)
	elapsed := time.Since(start)
	if w.Code != http.StatusOK {
		t.Fatalf("HTTP %d: %s", w.Code, w.Body)
	}
	if !bytes.Equal(w.Body.Bytes(), refRunBody(t, slowKey, "gcc")) {
		t.Fatal("hedged response differs from reference")
	}
	if elapsed >= stall {
		t.Fatalf("response took %v, the hedge never beat the %v straggler", elapsed, stall)
	}
	st := f.stats(t)
	if st.Cluster.Hedges == 0 || st.Cluster.HedgeWins == 0 {
		t.Fatalf("hedges %d wins %d, want both > 0", st.Cluster.Hedges, st.Cluster.HedgeWins)
	}
	if st.Cluster.Jobs != 1 {
		t.Fatalf("jobs %d, want exactly 1 (hedge must not double-count)", st.Cluster.Jobs)
	}
}
