package cluster

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"
)

// Active health checking. Request outcomes already mark backends healthy
// and unhealthy passively (dispatch.go); the probe loop adds recovery for
// idle pools — an unhealthy backend with no traffic routed at it would
// otherwise only be rediscovered by the fail-open retry pass.

// probe checks one backend's /v1/healthz and updates its health mark.
// Any 200 counts as healthy; a draining backend's 503 marks it unhealthy,
// which is exactly what a drain wants (no new work routed to it).
func (c *Coordinator) probe(ctx context.Context, b *backend) bool {
	pctx, cancel := context.WithTimeout(ctx, DefaultProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, b.url+"/v1/healthz", nil)
	if err != nil {
		b.setHealth(false, err)
		return false
	}
	resp, err := c.client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return b.isHealthy() // shutting down; leave the mark alone
		}
		b.setHealth(false, err)
		return false
	}
	drainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		b.setHealth(false, errHTTPStatus(resp.StatusCode))
		return false
	}
	b.setHealth(true, nil)
	return true
}

// drainClose consumes a response body (bounded — a misbehaving server
// must not hold the probe hostage) before closing it. Closing an undrained
// body discards the underlying keep-alive connection, so every probe and
// every proxied stats fetch would redial instead of reusing the pool;
// reading to EOF first hands the connection back idle.
func drainClose(rc io.ReadCloser) {
	io.Copy(io.Discard, io.LimitReader(rc, 64<<10))
	rc.Close()
}

type errHTTPStatus int

// Error always carries the numeric code: http.StatusText alone is "" for
// non-standard codes (a 599 from a middlebox), which used to leave an
// unhealthy backend with a blank lastErr in /v1/stats.
func (e errHTTPStatus) Error() string {
	if text := http.StatusText(int(e)); text != "" {
		return fmt.Sprintf("HTTP %d %s", int(e), text)
	}
	return fmt.Sprintf("HTTP %d", int(e))
}

// ProbeAll probes every backend once, concurrently, and returns how many
// are healthy. svwctl calls it at startup so the first requests already
// see real health marks; tests use it to force deterministic state.
func (c *Coordinator) ProbeAll(ctx context.Context) int {
	pool := c.members.snapshot()
	var wg sync.WaitGroup
	for _, b := range pool {
		wg.Add(1)
		go func(b *backend) {
			defer wg.Done()
			c.probe(ctx, b)
		}(b)
	}
	wg.Wait()
	return healthyIn(pool)
}

// HealthLoop probes the pool every interval until ctx is done. Run it in
// its own goroutine; it returns when ctx is cancelled.
func (c *Coordinator) HealthLoop(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		return
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			c.ProbeAll(ctx)
		}
	}
}
