package cluster

import (
	"fmt"
	"reflect"
	"testing"

	"svwsim/internal/sim"
	"svwsim/internal/sim/engine"
	"svwsim/internal/workload"
)

// sweepKeys returns the engine memo keys of the full config-registry ×
// full bench-registry matrix — the real key population the fabric routes.
func sweepKeys(t *testing.T, insts uint64) []string {
	t.Helper()
	var keys []string
	for _, cname := range sim.ConfigNames() {
		cfg, ok := sim.ConfigByName(cname)
		if !ok {
			t.Fatalf("unknown config %q", cname)
		}
		for _, bench := range workload.Names() {
			keys = append(keys, engine.Fingerprint(cfg, bench, insts))
		}
	}
	return keys
}

// TestRankGolden pins the rendezvous ranking for fixed inputs. The
// expected orders were computed by this same implementation and are
// asserted verbatim: because the hash is unseeded FNV-1a, any process on
// any platform must reproduce them exactly — the determinism the fabric
// relies on for cross-process cache affinity. If this test fails after an
// intentional hash change, every backend's cache is invalidated at once;
// change the hash knowingly or not at all.
func TestRankGolden(t *testing.T) {
	urls := []string{"http://10.0.0.1:7411", "http://10.0.0.2:7411", "http://10.0.0.3:7411"}
	cases := []struct {
		key  string
		want []string
	}{
		{"alpha", []string{"http://10.0.0.2:7411", "http://10.0.0.1:7411", "http://10.0.0.3:7411"}},
		{"beta", []string{"http://10.0.0.3:7411", "http://10.0.0.1:7411", "http://10.0.0.2:7411"}},
		{"gamma", []string{"http://10.0.0.3:7411", "http://10.0.0.2:7411", "http://10.0.0.1:7411"}},
		{"delta", []string{"http://10.0.0.1:7411", "http://10.0.0.3:7411", "http://10.0.0.2:7411"}},
		{"epsilon", []string{"http://10.0.0.2:7411", "http://10.0.0.1:7411", "http://10.0.0.3:7411"}},
		{"zeta", []string{"http://10.0.0.3:7411", "http://10.0.0.1:7411", "http://10.0.0.2:7411"}},
		{"{SVW:{Bits:12}}|gcc|30000", []string{"http://10.0.0.3:7411", "http://10.0.0.1:7411", "http://10.0.0.2:7411"}},
		{"{SVW:{Bits:12}}|twolf|30000", []string{"http://10.0.0.2:7411", "http://10.0.0.3:7411", "http://10.0.0.1:7411"}},
	}
	for _, c := range cases {
		if got := rankURLs(urls, c.key); !reflect.DeepEqual(got, c.want) {
			t.Errorf("rank(%q):\n got %v\nwant %v", c.key, got, c.want)
		}
	}
}

// TestRankOrderIndependent: placement depends on the backend URL set, not
// the order the operator happened to list it in.
func TestRankOrderIndependent(t *testing.T) {
	a := []string{"http://b1", "http://b2", "http://b3"}
	b := []string{"http://b3", "http://b1", "http://b2"}
	for _, key := range sweepKeys(t, 30_000)[:40] {
		if ga, gb := rankURLs(a, key)[0], rankURLs(b, key)[0]; ga != gb {
			t.Fatalf("key %q: home %q with one listing order, %q with another", key, ga, gb)
		}
	}
}

// TestRankStableUnderBackendChange: removing a backend moves only the
// keys it owned (everyone else's whole preference order among the
// survivors is unchanged), and adding it back restores the original
// placement — the property that lets a fabric scale without a global
// cache reshuffle.
func TestRankStableUnderBackendChange(t *testing.T) {
	full := []string{"http://b1", "http://b2", "http://b3"}
	reduced := []string{"http://b1", "http://b2"}
	removed := "http://b3"

	keys := sweepKeys(t, 30_000)
	moved := 0
	for _, key := range keys {
		before := rankURLs(full, key)
		after := rankURLs(reduced, key)
		// The survivors' relative order must be identical with and without
		// the removed backend present.
		var survivors []string
		for _, u := range before {
			if u != removed {
				survivors = append(survivors, u)
			}
		}
		if !reflect.DeepEqual(survivors, after) {
			t.Fatalf("key %q: survivor order changed: %v -> %v", key, survivors, after)
		}
		if before[0] == removed {
			moved++
		} else if before[0] != after[0] {
			t.Fatalf("key %q: home moved from %q to %q though %q was not its home",
				key, before[0], after[0], removed)
		}
	}
	if moved == 0 {
		t.Fatal("no key was homed on the removed backend; the stability check had no teeth")
	}
	t.Logf("%d/%d keys moved (only the removed backend's share)", moved, len(keys))
}

// TestRankBalance: over the real full-registry × 16-bench sweep key
// population, rendezvous hashing spreads homes across the pool within a
// loose tolerance (no backend starved, none doubly loaded).
func TestRankBalance(t *testing.T) {
	for _, n := range []int{2, 3, 5} {
		var urls []string
		for i := 0; i < n; i++ {
			urls = append(urls, fmt.Sprintf("http://10.0.0.%d:7411", i+1))
		}
		keys := sweepKeys(t, 30_000)
		counts := make(map[string]int)
		for _, key := range keys {
			counts[rankURLs(urls, key)[0]]++
		}
		mean := len(keys) / n
		for _, u := range urls {
			got := counts[u]
			if got < mean/2 || got > mean*2 {
				t.Errorf("%d backends: %s homes %d keys, want within [%d, %d] of mean %d",
					n, u, got, mean/2, mean*2, mean)
			}
		}
		t.Logf("%d backends over %d keys: %v", n, len(keys), counts)
	}
}

// TestScoreSeparator: the url/key boundary is part of the hash input, so
// concatenation collisions ("ab"+"c" vs "a"+"bc") score differently.
func TestScoreSeparator(t *testing.T) {
	if score("ab", "c") == score("a", "bc") {
		t.Fatal("score collides across the url/key boundary")
	}
}
