package cluster

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"svwsim/internal/api"
	"svwsim/internal/store"
	"svwsim/internal/trace"
)

// outcome is the result of dispatching one request into the pool.
type outcome struct {
	b      *backend // backend that produced the response (nil if none did)
	status int      // HTTP status of the final response (0 = no response)
	body   []byte
	// origin is the serving store tier from api.CacheHeader ("memory",
	// "disk", "miss"; empty when the response carried no header, e.g. a
	// proxied study). A response served by the coordinator's own store
	// after every backend attempt failed has a tier origin and b == nil.
	origin string
	hedged bool // produced by the hedge attempt, not the primary
	// err is set when no usable response was obtained (all candidates
	// failed, saturated, or the client went away).
	err error
}

// cached reports whether the response was served from a store rather than
// computed — any tier (memory, disk, or a peer's store), backend or
// coordinator.
func (o *outcome) cached() bool {
	return o.origin == api.CacheMemory || o.origin == api.CacheDisk || o.origin == api.CachePeer
}

// peersHeader is the membership payload attached to every forwarded
// attempt: the dispatch snapshot's URLs, comma-joined. Backends running
// with -peer-learn adopt it as their store-owner election set, so the
// sharding map rides along with the work itself. Empty below two members
// — a one-backend "fabric" has no peers to read from.
func peersHeader(pool []*backend) string {
	if len(pool) < 2 {
		return ""
	}
	var sb strings.Builder
	for i, b := range pool {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(b.url)
	}
	return sb.String()
}

// dispatch forwards one request to the pool: rendezvous-routed, retried
// across backends, optionally hedged. It is the single entry point the
// handlers use, so every path gets identical failover behavior, and it
// performs the winning-response bookkeeping exactly once per call.
//
// A traced request gets one "dispatch" span per call, annotated
// synchronously (before dispatch returns) with the winning backend, which
// walk won a hedge race and which was abandoned; each backend attempt is
// a child "attempt" span.
func (c *Coordinator) dispatch(ctx context.Context, key, method, path string, reqBody []byte) outcome {
	dsp := trace.FromContext(ctx).Start("dispatch")
	dsp.SetAttr("path", path)
	// ONE membership snapshot per dispatch: ranking, the retry walk, the
	// hedge and the health check all see the same pool, so a concurrent
	// add/remove cannot skip or double-visit a backend mid-job. In-flight
	// work thus finishes against the set it ranked under; a removed
	// backend drains instead of vanishing.
	pool := c.members.snapshot()
	// One attempts budget per job, shared between the primary walk and a
	// hedge, so MaxAttempts bounds the job's total backend traffic even
	// when both walks are live.
	var budget atomic.Int64
	maxAttempts := c.attemptsBudget(len(pool))
	peersHdr := peersHeader(pool)
	if c.hedgeAfter <= 0 || len(pool) < 2 {
		out := c.forward(ctx, dsp, pool, "primary", key, 0, method, path, reqBody, peersHdr, &budget, maxAttempts)
		c.noteOutcome(out)
		finishDispatch(dsp, out, false)
		return out
	}

	hctx, cancel := context.WithCancel(ctx)
	defer cancel() // reap the losing attempt
	results := make(chan outcome, 2)
	go func() {
		results <- c.forward(hctx, dsp, pool, "primary", key, 0, method, path, reqBody, peersHdr, &budget, maxAttempts)
	}()

	timer := time.NewTimer(c.hedgeAfter)
	defer timer.Stop()
	outstanding, hedged := 1, false
	var firstFail *outcome
	for {
		select {
		case out := <-results:
			outstanding--
			if out.err == nil {
				c.noteOutcome(out)
				finishDispatch(dsp, out, hedged)
				return out
			}
			if outstanding > 0 {
				firstFail = &out // let the other attempt finish the job
				continue
			}
			if firstFail != nil {
				out = *firstFail // both failed: report the earlier failure
			}
			c.noteOutcome(out)
			finishDispatch(dsp, out, hedged)
			return out
		case <-timer.C:
			if hedged {
				continue
			}
			hedged = true
			c.addHedge()
			dsp.SetAttr("hedged", "true")
			outstanding++
			go func() {
				// Offset 1 starts the candidate walk at the key's
				// second-ranked backend, so the hedge never duplicates
				// work onto the straggling primary first.
				out := c.forward(hctx, dsp, pool, "hedge", key, 1, method, path, reqBody, peersHdr, &budget, maxAttempts)
				out.hedged = true
				results <- out
			}()
		}
	}
}

// finishDispatch closes a dispatch span with the outcome's synchronous
// annotations: the winning backend, and — when a hedge was launched —
// which walk won and which was abandoned. The abandoned walk's own
// "attempt" span observes its cancellation asynchronously and may land
// after the request completes; the "abandoned" attribute here is the
// deterministic marker written before dispatch returns.
func finishDispatch(dsp trace.Span, out outcome, hedged bool) {
	if !dsp.Active() {
		return
	}
	if out.b != nil {
		dsp.SetAttr("backend", out.b.url)
	}
	if hedged && out.err == nil {
		if out.hedged {
			dsp.SetAttr("winner", "hedge")
			dsp.SetAttr("abandoned", "primary")
		} else {
			dsp.SetAttr("winner", "primary")
			dsp.SetAttr("abandoned", "hedge")
		}
	}
	if out.err != nil {
		dsp.SetAttr("error", out.err.Error())
	}
	dsp.End()
}

// noteOutcome records a dispatch's final outcome on the winning backend
// and the hedge counters. Job-level accounting (Jobs/JobErrors) is the
// handlers' business: they know what is a client job and what is not.
func (c *Coordinator) noteOutcome(out outcome) {
	if out.err == nil && out.status == http.StatusOK && out.b != nil {
		out.b.noteWin(out.origin)
		if out.hedged {
			c.addHedgeWin()
		}
	}
}

// dispatchJob dispatches one engine job (a /v1/run body, keyed by its
// memo key) with the coordinator store wrapped around the pool:
//
//   - a job no backend could serve is answered from the coordinator's own
//     store when the result is already on its disk — a previous
//     write-through, or a CLI sweep that pre-warmed the directory — so a
//     fabric with every backend down still serves what it has computed;
//   - a freshly computed result is written through to the store;
//   - concurrent identical jobs coalesce on one dispatch (the store's
//     singleflight): the first caller forwards, the rest wait and share
//     its bytes instead of multiplying identical work onto the pool.
//
// Without Options.StoreDir this is exactly dispatch.
func (c *Coordinator) dispatchJob(ctx context.Context, key string, reqBody []byte) outcome {
	if c.store == nil {
		return c.forwardJob(ctx, key, reqBody)
	}
	f, leader := c.store.BeginFlight(key)
	if !leader {
		val, err := f.Wait(ctx)
		if err == nil {
			// Shared bytes, computed by the coalesced-upon dispatch: no
			// backend attribution and miss-origin semantics, like any
			// freshly computed result the coordinator serves itself.
			return outcome{status: http.StatusOK, body: val}
		}
		if ctx.Err() != nil {
			return outcome{err: ctx.Err()}
		}
		// The flight's leader failed. Fall back to a dispatch of our own so
		// this caller reports its exact outcome (a 429's Retry-After
		// mapping, a 4xx body) instead of a secondhand error.
		return c.forwardJob(ctx, key, reqBody)
	}
	defer f.Complete(nil, store.ErrFlightAbandoned, false)
	out := c.forwardJob(ctx, key, reqBody)
	if out.err == nil && out.status == http.StatusOK {
		// forwardJob already wrote the result through; the flight only has
		// to hand the bytes to its waiters.
		f.Complete(out.body, nil, false)
	} else {
		err := out.err
		if err == nil {
			err = fmt.Errorf("HTTP %d", out.status)
		}
		f.Complete(nil, err, false)
	}
	return out
}

// forwardJob is dispatchJob without the singleflight: one pool dispatch
// plus the coordinator store's read-fallback and write-through.
func (c *Coordinator) forwardJob(ctx context.Context, key string, reqBody []byte) outcome {
	out := c.dispatch(ctx, key, http.MethodPost, "/v1/run", reqBody)
	if c.store == nil {
		return out
	}
	if out.err != nil && ctx.Err() == nil {
		sp := trace.FromContext(ctx).Start("store_fallback")
		body, origin := c.store.Get(key)
		sp.SetAttr("tier", origin.String())
		sp.End()
		if origin != store.OriginMiss {
			c.store.AccountGet(origin)
			return outcome{
				status: http.StatusOK,
				body:   body,
				origin: origin.String(),
			}
		}
	}
	if out.err == nil && out.status == http.StatusOK && !out.cached() {
		c.store.Put(key, out.body)
	}
	return out
}

// forward walks the key's rendezvous candidate order over pool — the
// dispatch's membership snapshot — starting at offset, attempting each
// backend until one yields a terminal response or the job's shared
// attempts budget runs out. Pass 0 skips backends currently marked
// unhealthy (unless none are); pass 1 fails open and tries everyone, so a
// pool whose marks are all stale can still recover. Attempts beyond each
// walk's first count as retries (a hedge's first attempt is accounted as
// the hedge, not a retry). dsp is the dispatch span the walk's "attempt"
// spans parent under (inert when untraced); walk names the walk on those
// spans ("primary" or "hedge").
func (c *Coordinator) forward(ctx context.Context, dsp trace.Span, pool []*backend, walk, key string, offset int, method, path string, reqBody []byte, peersHdr string, budget *atomic.Int64, maxAttempts int) outcome {
	order := rank(pool, key)
	n := len(order)
	walkAttempts := 0
	last := outcome{err: fmt.Errorf("no backend attempted")}
	for pass := 0; pass < 2; pass++ {
		anyHealthy := healthyIn(pool) > 0
		for i := 0; i < n; i++ {
			b := pool[order[(i+offset)%n]]
			if pass == 0 && anyHealthy && !b.isHealthy() {
				continue
			}
			if err := ctx.Err(); err != nil {
				return outcome{err: err}
			}
			if budget.Add(1) > int64(maxAttempts) {
				budget.Add(-1)
				return last
			}
			walkAttempts++
			if walkAttempts > 1 {
				c.addRetry()
			}
			sp := dsp.Child("attempt")
			if sp.Active() {
				sp.SetAttr("backend", b.url)
				sp.SetAttr("walk", walk)
				if walkAttempts > 1 {
					sp.SetAttr("retry", strconv.Itoa(walkAttempts-1))
				}
			}
			out, retryable := c.attempt(ctx, sp, b, method, path, reqBody, peersHdr)
			if !retryable {
				return out
			}
			last = out
		}
		if pass == 0 && budget.Load() < int64(maxAttempts) {
			// Preferred candidates exhausted: breathe briefly so transient
			// saturation can drain before the fail-open pass. A stoppable
			// Timer, not time.After — a saturated fabric runs this once per
			// dispatch, and time.After's timer lives on past a ctx-done exit
			// until it fires, piling up garbage exactly when dispatch volume
			// and cancellations are highest.
			timer := time.NewTimer(5 * time.Millisecond)
			select {
			case <-timer.C:
			case <-ctx.Done():
				timer.Stop()
				return outcome{err: ctx.Err()}
			}
		}
	}
	return last
}

// attempt forwards the request to one backend under its concurrency
// bound. The second result reports whether the failure is retryable on
// another backend: transport errors and 5xx (which also mark the backend
// unhealthy) and 429 saturation (which does not — a busy backend is not a
// sick one) are; success and other 4xx are terminal.
//
// sp is the walk's "attempt" span (inert when untraced): the backend
// request carries the trace ID header, so the backend's own trace shares
// this request's ID, and the span is closed with a status or outcome
// attribute on every exit. An attempt cancelled because the other hedge
// walk won — or the client went away — is marked outcome=abandoned; for
// a losing hedge that marking happens when its transport call observes
// the cancellation, possibly after the request has already completed.
func (c *Coordinator) attempt(ctx context.Context, sp trace.Span, b *backend, method, path string, reqBody []byte, peersHdr string) (outcome, bool) {
	fail := func(o outcome, retryable bool, outcomeAttr string) (outcome, bool) {
		if sp.Active() {
			sp.SetAttr("outcome", outcomeAttr)
			if o.err != nil {
				sp.SetAttr("error", o.err.Error())
			}
		}
		sp.End()
		return o, retryable
	}
	select {
	case b.sem <- struct{}{}:
	case <-ctx.Done():
		return fail(outcome{err: ctx.Err()}, false, "abandoned")
	}
	defer func() { <-b.sem }()

	var body io.Reader
	if len(reqBody) > 0 {
		body = bytes.NewReader(reqBody)
	}
	req, err := http.NewRequestWithContext(ctx, method, b.url+path, body)
	if err != nil {
		return fail(outcome{err: err}, false, "error")
	}
	if len(reqBody) > 0 {
		req.Header.Set("Content-Type", "application/json")
	}
	if peersHdr != "" {
		// The membership payload: the pool snapshot this dispatch ranked
		// over, plus the URL this backend is being addressed by — which is
		// how a -peer-learn backend discovers both the sharding map and its
		// own identity inside it.
		req.Header.Set(api.PeersHeader, peersHdr)
		req.Header.Set(api.PeerSelfHeader, b.url)
	}
	if id := trace.FromContext(ctx).ID(); id != "" {
		// One ID names the request on every layer: the backend opens its
		// own trace under the same ID, correlated via /debug/traces.
		req.Header.Set(trace.Header, id)
	}

	b.noteStart()
	resp, err := c.client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			// The client (or a winning hedge) went away; say nothing about
			// the backend's health.
			b.noteEnd(false)
			return fail(outcome{err: ctx.Err()}, false, "abandoned")
		}
		b.setHealth(false, err)
		b.noteEnd(true)
		return fail(outcome{b: b, err: fmt.Errorf("%s: %w", b.url, err)}, true, "error")
	}
	// ReadAll consumes the body to EOF, so the deferred Close hands the
	// connection back to the keep-alive pool (unlike a bare Close on an
	// unread body, which discards it — see drainClose in health.go).
	defer resp.Body.Close()
	respBody, err := io.ReadAll(resp.Body)
	if err != nil {
		if ctx.Err() != nil {
			b.noteEnd(false)
			return fail(outcome{err: ctx.Err()}, false, "abandoned")
		}
		b.setHealth(false, err)
		b.noteEnd(true)
		return fail(outcome{b: b, err: fmt.Errorf("%s: reading response: %w", b.url, err)}, true, "error")
	}

	sp.SetAttr("status", strconv.Itoa(resp.StatusCode))
	switch {
	case resp.StatusCode == http.StatusOK:
		b.setHealth(true, nil)
		b.noteEnd(false)
		if origin := resp.Header.Get(api.CacheHeader); origin != "" {
			sp.SetAttr("tier", origin)
		}
		sp.End()
		return outcome{
			b: b, status: resp.StatusCode, body: respBody,
			origin: resp.Header.Get(api.CacheHeader),
		}, false
	case resp.StatusCode == http.StatusTooManyRequests:
		b.noteEnd(false)
		return fail(outcome{b: b, status: resp.StatusCode,
			err: fmt.Errorf("%s: saturated (HTTP 429)", b.url)}, true, "saturated")
	case resp.StatusCode >= 500:
		b.setHealth(false, fmt.Errorf("HTTP %d", resp.StatusCode))
		b.noteEnd(true)
		return fail(outcome{b: b, status: resp.StatusCode,
			err: fmt.Errorf("%s: HTTP %d", b.url, resp.StatusCode)}, true, "error")
	default:
		// Other 4xx: the backend rejected the request itself — propagate
		// its body verbatim rather than guessing at another backend.
		b.noteEnd(false)
		sp.SetAttr("outcome", "rejected")
		sp.End()
		return outcome{b: b, status: resp.StatusCode, body: respBody}, false
	}
}
