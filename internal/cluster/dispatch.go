package cluster

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"svwsim/internal/api"
	"svwsim/internal/store"
)

// outcome is the result of dispatching one request into the pool.
type outcome struct {
	b      *backend // backend that produced the response (nil if none did)
	status int      // HTTP status of the final response (0 = no response)
	body   []byte
	// origin is the serving store tier from api.CacheHeader ("memory",
	// "disk", "miss"; empty when the response carried no header, e.g. a
	// proxied study). A response served by the coordinator's own store
	// after every backend attempt failed has a tier origin and b == nil.
	origin string
	hedged bool // produced by the hedge attempt, not the primary
	// err is set when no usable response was obtained (all candidates
	// failed, saturated, or the client went away).
	err error
}

// cached reports whether the response was served from a store rather than
// computed — any tier, backend or coordinator.
func (o *outcome) cached() bool {
	return o.origin == api.CacheMemory || o.origin == api.CacheDisk
}

// dispatch forwards one request to the pool: rendezvous-routed, retried
// across backends, optionally hedged. It is the single entry point the
// handlers use, so every path gets identical failover behavior, and it
// performs the winning-response bookkeeping exactly once per call.
func (c *Coordinator) dispatch(ctx context.Context, key, method, path string, reqBody []byte) outcome {
	// One attempts budget per job, shared between the primary walk and a
	// hedge, so MaxAttempts bounds the job's total backend traffic even
	// when both walks are live.
	var budget atomic.Int64
	if c.hedgeAfter <= 0 || len(c.backends) < 2 {
		out := c.forward(ctx, key, 0, method, path, reqBody, &budget)
		c.noteOutcome(out)
		return out
	}

	hctx, cancel := context.WithCancel(ctx)
	defer cancel() // reap the losing attempt
	results := make(chan outcome, 2)
	go func() { results <- c.forward(hctx, key, 0, method, path, reqBody, &budget) }()

	timer := time.NewTimer(c.hedgeAfter)
	defer timer.Stop()
	outstanding, hedged := 1, false
	var firstFail *outcome
	for {
		select {
		case out := <-results:
			outstanding--
			if out.err == nil {
				c.noteOutcome(out)
				return out
			}
			if outstanding > 0 {
				firstFail = &out // let the other attempt finish the job
				continue
			}
			if firstFail != nil {
				out = *firstFail // both failed: report the earlier failure
			}
			c.noteOutcome(out)
			return out
		case <-timer.C:
			if hedged {
				continue
			}
			hedged = true
			c.addHedge()
			outstanding++
			go func() {
				// Offset 1 starts the candidate walk at the key's
				// second-ranked backend, so the hedge never duplicates
				// work onto the straggling primary first.
				out := c.forward(hctx, key, 1, method, path, reqBody, &budget)
				out.hedged = true
				results <- out
			}()
		}
	}
}

// noteOutcome records a dispatch's final outcome on the winning backend
// and the hedge counters. Job-level accounting (Jobs/JobErrors) is the
// handlers' business: they know what is a client job and what is not.
func (c *Coordinator) noteOutcome(out outcome) {
	if out.err == nil && out.status == http.StatusOK && out.b != nil {
		out.b.noteWin(out.origin)
		if out.hedged {
			c.addHedgeWin()
		}
	}
}

// dispatchJob dispatches one engine job (a /v1/run body, keyed by its
// memo key) with the coordinator store wrapped around the pool:
//
//   - a job no backend could serve is answered from the coordinator's own
//     store when the result is already on its disk — a previous
//     write-through, or a CLI sweep that pre-warmed the directory — so a
//     fabric with every backend down still serves what it has computed;
//   - a freshly computed result is written through to the store.
//
// Without Options.StoreDir this is exactly dispatch.
func (c *Coordinator) dispatchJob(ctx context.Context, key string, reqBody []byte) outcome {
	out := c.dispatch(ctx, key, http.MethodPost, "/v1/run", reqBody)
	if c.store == nil {
		return out
	}
	if out.err != nil && ctx.Err() == nil {
		if body, origin := c.store.Get(key); origin != store.OriginMiss {
			c.store.AccountGet(origin)
			return outcome{
				status: http.StatusOK,
				body:   body,
				origin: origin.String(),
			}
		}
	}
	if out.err == nil && out.status == http.StatusOK && !out.cached() {
		c.store.Put(key, out.body)
	}
	return out
}

// forward walks the key's rendezvous candidate order starting at offset,
// attempting each backend until one yields a terminal response or the
// job's shared attempts budget runs out. Pass 0 skips backends currently
// marked unhealthy (unless none are healthy); pass 1 fails open and
// tries everyone, so a pool whose marks are all stale can still recover.
// Attempts beyond each walk's first count as retries (a hedge's first
// attempt is accounted as the hedge, not a retry).
func (c *Coordinator) forward(ctx context.Context, key string, offset int, method, path string, reqBody []byte, budget *atomic.Int64) outcome {
	order := rank(c.backends, key)
	n := len(order)
	walkAttempts := 0
	last := outcome{err: fmt.Errorf("no backend attempted")}
	for pass := 0; pass < 2; pass++ {
		anyHealthy := c.healthyCount() > 0
		for i := 0; i < n; i++ {
			b := c.backends[order[(i+offset)%n]]
			if pass == 0 && anyHealthy && !b.isHealthy() {
				continue
			}
			if err := ctx.Err(); err != nil {
				return outcome{err: err}
			}
			if budget.Add(1) > int64(c.maxAttempts) {
				budget.Add(-1)
				return last
			}
			walkAttempts++
			if walkAttempts > 1 {
				c.addRetry()
			}
			out, retryable := c.attempt(ctx, b, method, path, reqBody)
			if !retryable {
				return out
			}
			last = out
		}
		if pass == 0 && budget.Load() < int64(c.maxAttempts) {
			// Preferred candidates exhausted: breathe briefly so transient
			// saturation can drain before the fail-open pass.
			select {
			case <-time.After(5 * time.Millisecond):
			case <-ctx.Done():
				return outcome{err: ctx.Err()}
			}
		}
	}
	return last
}

// attempt forwards the request to one backend under its concurrency
// bound. The second result reports whether the failure is retryable on
// another backend: transport errors and 5xx (which also mark the backend
// unhealthy) and 429 saturation (which does not — a busy backend is not a
// sick one) are; success and other 4xx are terminal.
func (c *Coordinator) attempt(ctx context.Context, b *backend, method, path string, reqBody []byte) (outcome, bool) {
	select {
	case b.sem <- struct{}{}:
	case <-ctx.Done():
		return outcome{err: ctx.Err()}, false
	}
	defer func() { <-b.sem }()

	var body io.Reader
	if len(reqBody) > 0 {
		body = bytes.NewReader(reqBody)
	}
	req, err := http.NewRequestWithContext(ctx, method, b.url+path, body)
	if err != nil {
		return outcome{err: err}, false
	}
	if len(reqBody) > 0 {
		req.Header.Set("Content-Type", "application/json")
	}

	b.noteStart()
	resp, err := c.client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			// The client (or a winning hedge) went away; say nothing about
			// the backend's health.
			b.noteEnd(false)
			return outcome{err: ctx.Err()}, false
		}
		b.setHealth(false, err)
		b.noteEnd(true)
		return outcome{b: b, err: fmt.Errorf("%s: %w", b.url, err)}, true
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(resp.Body)
	if err != nil {
		if ctx.Err() != nil {
			b.noteEnd(false)
			return outcome{err: ctx.Err()}, false
		}
		b.setHealth(false, err)
		b.noteEnd(true)
		return outcome{b: b, err: fmt.Errorf("%s: reading response: %w", b.url, err)}, true
	}

	switch {
	case resp.StatusCode == http.StatusOK:
		b.setHealth(true, nil)
		b.noteEnd(false)
		return outcome{
			b: b, status: resp.StatusCode, body: respBody,
			origin: resp.Header.Get(api.CacheHeader),
		}, false
	case resp.StatusCode == http.StatusTooManyRequests:
		b.noteEnd(false)
		return outcome{b: b, status: resp.StatusCode,
			err: fmt.Errorf("%s: saturated (HTTP 429)", b.url)}, true
	case resp.StatusCode >= 500:
		b.setHealth(false, fmt.Errorf("HTTP %d", resp.StatusCode))
		b.noteEnd(true)
		return outcome{b: b, status: resp.StatusCode,
			err: fmt.Errorf("%s: HTTP %d", b.url, resp.StatusCode)}, true
	default:
		// Other 4xx: the backend rejected the request itself — propagate
		// its body verbatim rather than guessing at another backend.
		b.noteEnd(false)
		return outcome{b: b, status: resp.StatusCode, body: respBody}, false
	}
}
