package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"svwsim/internal/api"
	"svwsim/internal/pipeline"
	"svwsim/internal/sim"
	"svwsim/internal/sim/engine"
	"svwsim/internal/trace"
	"svwsim/internal/workload"
)

// decodeBody parses the request body into v under the coordinator's size
// limit, writing the error response itself — the same contract and
// messages as svwd's decoder, so clients see one behavior.
func (c *Coordinator) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	return api.DecodeBody(w, r, c.maxBody, v)
}

// writeOutcomeError maps a failed dispatch onto the client response:
// nothing when the client itself is gone, 504 when the request's declared
// deadline budget expired before the fabric could answer, and the
// dispatch mapping (429 on pool saturation, 502 otherwise) for the rest.
func writeOutcomeError(w http.ResponseWriter, r *http.Request, out outcome) {
	if r.Context().Err() != nil {
		return // client disconnected: no one to answer
	}
	if errors.Is(out.err, context.DeadlineExceeded) {
		api.WriteError(w, http.StatusGatewayTimeout,
			"dispatch: deadline exceeded (%s budget)", api.DeadlineHeader)
		return
	}
	writeDispatchError(w, out)
}

// writeDispatchError maps a failed dispatch onto the client response:
// pool-wide saturation propagates as 429 (with Retry-After, like svwd's
// own admission gate), everything else as 502.
func writeDispatchError(w http.ResponseWriter, out outcome) {
	if out.status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
		api.WriteError(w, http.StatusTooManyRequests,
			"cluster saturated: every backend refused the job, retry later")
		return
	}
	api.WriteError(w, http.StatusBadGateway, "no backend could serve the request: %v", out.err)
}

// --- registry / health / stats ------------------------------------------

func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	pool := c.members.snapshot()
	healthy := healthyIn(pool)
	total := len(pool)
	status, code := "ok", http.StatusOK
	switch {
	case c.draining.Load():
		status, code = "draining", http.StatusServiceUnavailable
	case healthy == 0:
		status, code = "degraded", http.StatusServiceUnavailable
	}
	api.WriteJSON(w, code, api.HealthResponse{
		Status:          status,
		UptimeS:         time.Since(c.start).Seconds(),
		BackendsHealthy: &healthy,
		BackendsTotal:   &total,
	})
}

// The registry endpoints are served locally: coordinator and backends
// compile against the same registries, so the bodies are identical to a
// backend's and cost no fan-out.

func (c *Coordinator) handleConfigs(w http.ResponseWriter, r *http.Request) {
	api.WriteJSON(w, http.StatusOK, api.ConfigsResponse{Configs: sim.ConfigNames()})
}

func (c *Coordinator) handleBenches(w http.ResponseWriter, r *http.Request) {
	api.WriteJSON(w, http.StatusOK, api.BenchesResponse{Benches: workload.Names()})
}

// handleStats aggregates the pool: each backend's /v1/stats is fetched
// concurrently and summed into the single-node shape (so svwload works
// unchanged against a coordinator), plus the cluster section with the
// coordinator's own counters and the per-backend breakdown.
func (c *Coordinator) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := api.StatsResponse{UptimeS: time.Since(c.start).Seconds()}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, b := range c.members.snapshot() {
		wg.Add(1)
		go func(b *backend) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(r.Context(), DefaultProbeTimeout)
			defer cancel()
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.url+"/v1/stats", nil)
			if err != nil {
				return
			}
			res, err := c.client.Do(req)
			if err != nil {
				return // unreachable backends contribute nothing to the sums
			}
			// Drain before Close on every exit — a decode stops at the JSON
			// object and leaves the trailing newline unread, and an
			// undrained Close discards the keep-alive connection, redialing
			// each backend on every stats scrape.
			defer drainClose(res.Body)
			if res.StatusCode != http.StatusOK {
				return
			}
			var st api.StatsResponse
			if json.NewDecoder(res.Body).Decode(&st) != nil {
				return
			}
			// The section types aggregate themselves (internal/api's Add
			// methods), so a field added to the wire contract is summed
			// here by construction, not by remembering to edit this loop.
			mu.Lock()
			resp.Cache.Add(st.Cache)
			resp.Engine.Add(st.Engine)
			resp.Admission.Add(st.Admission)
			mu.Unlock()
		}(b)
	}
	wg.Wait()
	cs := c.clusterStats()
	resp.Cluster = &cs
	api.WriteJSON(w, http.StatusOK, resp)
}

// --- /v1/run -------------------------------------------------------------

func (c *Coordinator) handleRun(w http.ResponseWriter, r *http.Request) {
	var req api.RunRequest
	if !c.decodeBody(w, r, &req) {
		return
	}
	ctx, cancel, ok := api.RequestContext(w, r)
	if !ok {
		return
	}
	defer cancel()
	cfg, ok := sim.ConfigByName(req.Config)
	if !ok {
		api.WriteError(w, http.StatusBadRequest, "unknown config %q", req.Config)
		return
	}
	if _, ok := workload.Get(req.Bench); !ok {
		api.WriteError(w, http.StatusBadRequest, "unknown benchmark %q", req.Bench)
		return
	}
	spec, ok := c.resolveSample(w, req.Sample())
	if !ok {
		return
	}
	c.addRun()

	// Forward the normalized registry name (the display name in cfg.Name
	// is not a registry key). The routing key is the memo key of the
	// built config, so aliases and case differences hash to the same
	// backend as their canonical spelling regardless of spelling. The
	// resolved sampling spec is forwarded explicitly and keys the routing,
	// so sampled and exact variants of one job shard independently.
	key := engine.SampledFingerprint(cfg, req.Bench, req.Insts, spec)
	fwd := api.RunRequest{
		Config: normalizeConfigName(req.Config), Bench: req.Bench, Insts: req.Insts}
	fwd.SetSample(spec)
	body, err := json.Marshal(fwd)
	if err != nil {
		api.WriteError(w, http.StatusInternalServerError, "encoding job: %v", err)
		return
	}
	out := c.dispatchJob(ctx, key, body)
	c.addJob(out.err != nil)
	if out.err != nil {
		writeOutcomeError(w, r, out)
		return
	}
	if out.status == http.StatusOK {
		// Propagate the serving tier verbatim — memory, disk or miss —
		// whether a backend's store answered or the coordinator's own.
		origin := out.origin
		if origin == "" {
			origin = api.CacheMiss
		}
		w.Header().Set(api.CacheHeader, origin)
	}
	api.WriteBody(w, out.status, out.body)
}

// --- /v1/sweep -----------------------------------------------------------

// normalizeConfigName lowercases and trims a client-supplied config name
// so the forwarded request resolves in the backend's registry exactly as
// it resolved here (sim.ConfigByName is case/whitespace-insensitive).
func normalizeConfigName(name string) string {
	return strings.ToLower(strings.TrimSpace(name))
}

// resolveSample picks a request's effective sampling spec — its own when
// enabled, the coordinator's default otherwise — and validates it,
// writing the 400 itself on an incoherent spec. The result is stamped
// onto every forwarded body, so backends never apply their own defaults
// to fabric-routed work.
func (c *Coordinator) resolveSample(w http.ResponseWriter, spec pipeline.SampleSpec) (pipeline.SampleSpec, bool) {
	if !spec.Enabled() {
		spec = c.defaultSample
	}
	if err := spec.Validate(); err != nil {
		api.WriteError(w, http.StatusBadRequest, "%v", err)
		return pipeline.SampleSpec{}, false
	}
	return spec, true
}

// sweepJob is one cell of the flattened matrix.
type sweepJob struct {
	config string // the config's display name (what SSE events carry)
	bench  string
	key    string // engine memo key: the routing key
	body   []byte // the /v1/run request forwarded for this cell
}

// planSweep validates the request and flattens the matrix config-major
// (the `svwsim -config a,b -bench x,y` order — identical to svwd's). It
// writes the error response itself on failure.
func (c *Coordinator) planSweep(w http.ResponseWriter, req *api.SweepRequest) ([]sweepJob, bool) {
	if len(req.Configs) == 0 || len(req.Benches) == 0 {
		api.WriteError(w, http.StatusBadRequest, "sweep matrix is empty: need configs and benches")
		return nil, false
	}
	if n := len(req.Configs) * len(req.Benches); n > c.maxSweepJobs {
		api.WriteError(w, http.StatusBadRequest,
			"sweep matrix has %d jobs, limit is %d", n, c.maxSweepJobs)
		return nil, false
	}
	spec, ok := c.resolveSample(w, req.Sample())
	if !ok {
		return nil, false
	}
	var jobs []sweepJob
	for _, cname := range req.Configs {
		cfg, ok := sim.ConfigByName(cname)
		if !ok {
			api.WriteError(w, http.StatusBadRequest, "unknown config %q", cname)
			return nil, false
		}
		for _, bench := range req.Benches {
			if _, ok := workload.Get(bench); !ok {
				api.WriteError(w, http.StatusBadRequest, "unknown benchmark %q", bench)
				return nil, false
			}
			cell := api.RunRequest{
				Config: normalizeConfigName(cname), Bench: bench, Insts: req.Insts}
			cell.SetSample(spec)
			body, err := json.Marshal(cell)
			if err != nil {
				api.WriteError(w, http.StatusInternalServerError, "encoding job: %v", err)
				return nil, false
			}
			jobs = append(jobs, sweepJob{
				config: cfg.Name,
				bench:  bench,
				key:    engine.SampledFingerprint(cfg, bench, req.Insts, spec),
				body:   body,
			})
		}
	}
	return jobs, true
}

func (c *Coordinator) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req api.SweepRequest
	if !c.decodeBody(w, r, &req) {
		return
	}
	ctx, cancel, ok := api.RequestContext(w, r)
	if !ok {
		return
	}
	defer cancel()
	jobs, ok := c.planSweep(w, &req)
	if !ok {
		return
	}
	c.addSweep()

	// Fan out: one dispatch per cell, each rendezvous-routed by its memo
	// key. Goroutines are cheap; actual backend concurrency is bounded by
	// the per-backend semaphores inside dispatch.
	outcomes := make([]outcome, len(jobs))
	done := make([]chan struct{}, len(jobs))
	for i := range jobs {
		done[i] = make(chan struct{})
		go func(i int) {
			defer close(done[i])
			outcomes[i] = c.dispatchJob(ctx, jobs[i].key, jobs[i].body)
			if outcomes[i].err == nil && outcomes[i].status != http.StatusOK {
				// A non-200 terminal response is a failed cell from the
				// sweep's point of view.
				outcomes[i].err = errors.New(string(outcomes[i].body))
			}
			c.addJob(outcomes[i].err != nil)
		}(i)
	}

	tr := trace.FromContext(ctx)
	if api.WantsSSE(r) {
		c.streamSweep(w, tr, jobs, outcomes, done)
		return
	}
	c.bufferSweep(w, r, tr, jobs, outcomes, done)
}

// bufferSweep waits for every cell and writes the whole sweep as a
// sequence of indented result objects in job-index order — byte-identical
// to the equivalent multi-job `svwsim -json` invocation, however many
// backends computed it.
func (c *Coordinator) bufferSweep(w http.ResponseWriter, r *http.Request, tr *trace.Trace, jobs []sweepJob, outcomes []outcome, done []chan struct{}) {
	// The merge span covers waiting for the fan-out plus reassembly; its
	// duration is the sweep's critical path after dispatch began.
	sp := tr.Start("merge")
	defer sp.End()
	sp.SetAttr("jobs", strconv.Itoa(len(jobs)))
	for i := range done {
		<-done[i]
	}
	var body []byte
	for i := range jobs {
		if err := outcomes[i].err; err != nil {
			if r.Context().Err() != nil {
				return
			}
			if errors.Is(err, context.DeadlineExceeded) {
				api.WriteError(w, http.StatusGatewayTimeout,
					"sweep: deadline exceeded (%s budget)", api.DeadlineHeader)
				return
			}
			if outcomes[i].status == http.StatusTooManyRequests {
				// Pool-wide saturation keeps svwd's contract: 429 with
				// Retry-After, not a 500 — the fabric must be
				// indistinguishable from a single saturated daemon.
				writeDispatchError(w, outcomes[i])
				return
			}
			// Deterministic error reporting: the lowest-index failure
			// names the sweep's error, like the engine's own contract.
			api.WriteError(w, http.StatusInternalServerError,
				"sweep failed: job %d (%s on %s): %v", i, jobs[i].config, jobs[i].bench, err)
			return
		}
		body = append(body, outcomes[i].body...)
	}
	api.WriteBody(w, http.StatusOK, body)
}

// streamSweep emits one SSE "result" event per cell in job-index order as
// results land, then a "done" summary. Events carry the serving backend's
// URL and whether its LRU answered, so a watching client sees the fabric's
// cache affinity live.
func (c *Coordinator) streamSweep(w http.ResponseWriter, tr *trace.Trace, jobs []sweepJob, outcomes []outcome, done []chan struct{}) {
	stream, err := api.NewSSE(w)
	if err != nil {
		api.WriteError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	sp := tr.Start("merge")
	summary := api.SweepDone{Jobs: len(jobs)}
	for i := range jobs {
		<-done[i]
		out := outcomes[i]
		ev := api.SweepEvent{
			Index:  i,
			Config: jobs[i].config,
			Bench:  jobs[i].bench,
			Cached: out.cached(),
		}
		if ev.Cached {
			ev.Origin = out.origin
		}
		if out.b != nil {
			ev.Backend = out.b.url
		}
		if ev.Cached {
			summary.CacheHits++
			switch out.origin {
			case api.CacheDisk:
				summary.DiskHits++
			case api.CachePeer:
				summary.PeerHits++
			}
		} else {
			summary.CacheMisses++
		}
		if out.err != nil {
			ev.Error = out.err.Error()
			summary.Errors++
		} else {
			ev.Result = json.RawMessage(out.body)
		}
		stream.Event("result", i, ev)
	}
	if sp.Active() {
		sp.SetAttr("jobs", strconv.Itoa(len(jobs)))
		sp.SetAttr("cache_hits", strconv.Itoa(summary.CacheHits))
		sp.SetAttr("errors", strconv.Itoa(summary.Errors))
	}
	sp.End()
	stream.Event("done", len(jobs), summary)
}

// --- /v1/studies/{study} -------------------------------------------------

// handleStudy proxies a study request to one backend, routed by the study
// path and raw query so repeated identical requests hit the same
// backend's study cache. Validation and computation stay in the backend;
// the response (including 4xx validation errors) is forwarded verbatim.
func (c *Coordinator) handleStudy(w http.ResponseWriter, r *http.Request) {
	ctx, cancel, ok := api.RequestContext(w, r)
	if !ok {
		return
	}
	defer cancel()
	study := r.PathValue("study")
	path := "/v1/studies/" + study
	key := "study|" + study
	if r.URL.RawQuery != "" {
		path += "?" + r.URL.RawQuery
		key += "|" + r.URL.RawQuery
	}
	out := c.dispatch(ctx, key, http.MethodGet, path, nil)
	if out.err != nil {
		writeOutcomeError(w, r, out)
		return
	}
	api.WriteBody(w, out.status, out.body)
}
