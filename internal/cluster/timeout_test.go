package cluster

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"

	"svwsim/internal/api"
)

// Regression: the built-in backend client used to have no response-header
// timeout, so a backend that accepted the connection and then hung — wedged
// process, half-dead VM — pinned the job (and the client) forever instead
// of failing the attempt. With the bound set, the walk must give up on the
// hung backend and retry onto the next ranked one.
func TestHungBackendRetriedUnderHeaderTimeout(t *testing.T) {
	f := newFabric(t, 2, Options{ResponseHeaderTimeout: 300 * time.Millisecond},
		func(i int, h http.Handler) http.Handler {
			if i != 0 {
				return h
			}
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if r.URL.Path == "/v1/run" {
					// Accept the request, send nothing. The body must be
					// drained: the server starts its background read (the
					// thing that cancels r.Context on client disconnect) only
					// once the request body hits EOF, and blocking on the
					// context (not forever) lets the httptest server shut
					// down cleanly once the client abandons the attempt.
					io.Copy(io.Discard, r.Body)
					<-r.Context().Done()
					return
				}
				h.ServeHTTP(w, r)
			})
		})

	// A job homed on the hung backend, so the first attempt stalls waiting
	// for headers and the retry walks to the healthy one.
	var cfg string
	for _, cname := range []string{"ssq", "nlq", "rle", "ssq+svw", "base-ssq", "base-nlq"} {
		key := jobKey(t, cname, "gcc")
		if rankURLs([]string{f.backends[0].URL, f.backends[1].URL}, key)[0] == f.backends[0].URL {
			cfg = cname
			break
		}
	}
	if cfg == "" {
		t.Skip("no probe config homed on the hung backend")
	}

	body, _ := json.Marshal(api.RunRequest{Config: cfg, Bench: "gcc", Insts: testInsts})
	start := time.Now()
	w := f.do("POST", "/v1/run", string(body), nil)
	if w.Code != http.StatusOK {
		t.Fatalf("run through a fabric with one hung backend: HTTP %d: %s", w.Code, w.Body)
	}
	if elapsed := time.Since(start); elapsed < 300*time.Millisecond {
		t.Fatalf("answered in %v, before the header timeout — the job never "+
			"waited on the hung backend it was homed on", elapsed)
	}
	if !bytes.Equal(w.Body.Bytes(), refRunBody(t, cfg, "gcc")) {
		t.Fatal("retried response differs from the reference encoding")
	}

	st := f.stats(t)
	if st.Cluster.Retries == 0 {
		t.Fatalf("no retry recorded: %+v", st.Cluster)
	}
	if st.Cluster.JobErrors != 0 {
		t.Fatalf("job errors %d, want 0 — the retry should have saved the job", st.Cluster.JobErrors)
	}
}

// peersHeader is the membership snapshot svwd peer-learning trusts; it must
// be empty below two members (a singleton fabric has no peers to read from)
// and a stable comma join above.
func TestPeersHeader(t *testing.T) {
	if got := peersHeader(nil); got != "" {
		t.Fatalf("empty pool: %q", got)
	}
	if got := peersHeader([]*backend{{url: "http://a"}}); got != "" {
		t.Fatalf("singleton pool advertises %q, want nothing", got)
	}
	pool := []*backend{{url: "http://a"}, {url: "http://b"}, {url: "http://c"}}
	if got := peersHeader(pool); got != "http://a,http://b,http://c" {
		t.Fatalf("3-member pool: %q", got)
	}
}
