package cluster

import (
	"net/http"

	"svwsim/internal/api"
)

// The membership admin surface. It mounts on the -debug-addr listener
// next to pprof — an operator-only address — and NEVER on the serving
// mux: resizing the fabric is an unauthenticated state change, and the
// serving port is reachable by anything that can submit jobs.

// AdminBackendsRequest is the body of POST /admin/backends: a delta
// against the current pool. Adds apply before removes, already-present
// adds and absent removes are no-ops, and a change that would empty the
// pool is refused with 400.
type AdminBackendsRequest struct {
	Add    []string `json:"add,omitempty"`
	Remove []string `json:"remove,omitempty"`
}

// AdminBackendsResponse is the body of GET and POST /admin/backends: what
// the POST changed (empty for GET) and the resulting pool with each
// member's live stats.
type AdminBackendsResponse struct {
	Added    []string                  `json:"added"`
	Removed  []string                  `json:"removed"`
	Backends []api.ClusterBackendStats `json:"backends"`
}

// AdminHandler returns the membership admin surface:
//
//	GET  /admin/backends  current pool with per-backend stats
//	POST /admin/backends  {"add":[url...],"remove":[url...]}
//
// Mount it on the debug listener only (cmd/svwctl wires it behind
// -debug-addr via debugserver).
func (c *Coordinator) AdminHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /admin/backends", func(w http.ResponseWriter, r *http.Request) {
		api.WriteJSON(w, http.StatusOK, c.adminBackendsResponse(nil, nil))
	})
	mux.HandleFunc("POST /admin/backends", func(w http.ResponseWriter, r *http.Request) {
		var req AdminBackendsRequest
		if !api.DecodeBody(w, r, c.maxBody, &req) {
			return
		}
		if len(req.Add) == 0 && len(req.Remove) == 0 {
			api.WriteError(w, http.StatusBadRequest, "empty membership change: need add or remove")
			return
		}
		added, removed, err := c.members.reconcile(req.Add, req.Remove)
		if err != nil {
			api.WriteError(w, http.StatusBadRequest, "%v", err)
			return
		}
		for _, u := range added {
			c.metrics.ensureBackend(u)
		}
		// Probe the changed pool right away so a just-added backend takes
		// traffic (or is marked down) before the next health tick.
		c.ProbeAll(r.Context())
		api.WriteJSON(w, http.StatusOK, c.adminBackendsResponse(added, removed))
	})
	return mux
}

func (c *Coordinator) adminBackendsResponse(added, removed []string) AdminBackendsResponse {
	resp := AdminBackendsResponse{Added: added, Removed: removed}
	if resp.Added == nil {
		resp.Added = []string{}
	}
	if resp.Removed == nil {
		resp.Removed = []string{}
	}
	for _, b := range c.members.snapshot() {
		resp.Backends = append(resp.Backends, b.stats())
	}
	return resp
}
