// Package cluster scales the svwd simulation service out horizontally:
// the svwctl coordinator fronts N svwd backends behind the same JSON/HTTP
// surface (/v1/run, /v1/sweep, /v1/healthz, /v1/stats, /v1/configs,
// /v1/benches, /v1/studies/*), so clients — svwload, curl, dashboards —
// are unchanged whether they talk to one backend or a fabric of them.
//
// The fabric's moving parts:
//
//   - routing: every job is placed by rendezvous hashing on its engine
//     memo key (engine.Fingerprint — the same key svwd's LRU and the
//     engine's memo table use), so repeated jobs always land on the same
//     backend and its caches stay hot, and a backend-set change only
//     remaps the keys the departed backend owned (see routing.go);
//   - fan-out: sweep matrices flatten config-major exactly like svwd and
//     svwsim, each cell forwarded as one /v1/run with bounded per-backend
//     concurrency; responses merge back in job-index order, buffered or
//     as SSE, so cluster output is byte-identical to `svwsim -json`;
//   - resilience: backends are health-checked (background probes plus
//     passive marking on request failures); a failed attempt retries on
//     the key's next-ranked backend, and optional hedging duplicates a
//     straggling job onto the fallback after a configurable delay, first
//     response winning;
//   - observability: /v1/stats aggregates the pool's store/engine/
//     admission counters and adds a cluster section (per-backend health,
//     requests, errors, jobs won, memory/disk cache hits, retry/hedge
//     counts). Each client job is counted exactly once however many
//     attempts it took.
//
// Result caching lives in the backends, where the routing affinity makes
// it effective — with one exception: started with Options.StoreDir, the
// coordinator opens its own tiered result store (internal/store, the same
// subsystem svwd and svwsim use) as a last-resort read-through. A job
// whose every backend attempt failed is answered from that store when a
// previous run — this coordinator's own write-through, or a CLI sweep
// pre-warming the directory — left the result behind, so a fabric whose
// backends are all down can still serve everything it has ever computed.
package cluster

import (
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"svwsim/internal/api"
	"svwsim/internal/pipeline"
	"svwsim/internal/store"
	"svwsim/internal/trace"
)

// Defaults for Options zero values.
const (
	DefaultBackendConcurrency = 8
	DefaultMaxBodyBytes       = 1 << 20 // 1 MiB
	DefaultMaxSweepJobs       = 4096
	DefaultProbeTimeout       = 2 * time.Second
	// DefaultResponseHeaderTimeout bounds how long one forwarded attempt
	// waits for a backend to start answering. svwd sends headers only
	// after the job computes, so the bound must sit above the longest
	// legitimate job — it exists to reclaim dispatch slots from a backend
	// that accepted the connection and then hung (half-dead process, wedged
	// accept queue), which before this bound pinned a slot forever on
	// requests without an api.DeadlineHeader budget.
	DefaultResponseHeaderTimeout = 2 * time.Minute
)

// Options configures a Coordinator. Backends is required; every other
// zero value falls back to a production-usable default.
type Options struct {
	// Backends are the svwd base URLs to front (e.g. "http://10.0.0.1:7411").
	// Order does not matter: placement depends only on the URL set.
	Backends []string
	// BackendConcurrency caps the coordinator's in-flight requests per
	// backend (0 = DefaultBackendConcurrency).
	BackendConcurrency int
	// MaxAttempts bounds forwarding attempts per job, counting the first
	// (0 = 2 × len(Backends), min 2). Attempts walk the key's rendezvous
	// order, healthy backends first, then fail open to unhealthy ones.
	MaxAttempts int
	// HedgeAfter launches a speculative duplicate of a job on its
	// next-ranked backend when the primary has not answered within this
	// delay; the first response wins (0 = hedging disabled). The hedge
	// shares the job's MaxAttempts budget.
	HedgeAfter time.Duration
	// MaxBodyBytes bounds request bodies (0 = DefaultMaxBodyBytes).
	MaxBodyBytes int64
	// MaxSweepJobs bounds one sweep's flattened matrix
	// (0 = DefaultMaxSweepJobs).
	MaxSweepJobs int
	// Client optionally overrides the HTTP client used to reach backends
	// (nil = a client with a connection pool sized to the fabric and
	// ResponseHeaderTimeout applied).
	Client *http.Client
	// ResponseHeaderTimeout bounds how long the built-in backend client
	// waits for response headers on one attempt; past it the attempt fails
	// and the walk retries the key's next-ranked backend
	// (0 = DefaultResponseHeaderTimeout, < 0 disables the bound). Ignored
	// when Client is set.
	ResponseHeaderTimeout time.Duration
	// StoreDir roots the coordinator's own result store ("" = none). Run
	// and sweep results computed through the fabric are written through to
	// it, and jobs whose every backend attempt fails are served from it.
	StoreDir string
	// StoreMaxBytes caps the store's disk tier
	// (0 = store.DefaultDiskMaxBytes).
	StoreMaxBytes int64
	// TraceBufferSize is how many completed request traces GET
	// /debug/traces keeps (0 = trace.DefaultRingSize). The job-bearing
	// endpoints (/v1/run, /v1/sweep, /v1/studies) are traced; the trace ID
	// is forwarded to backends on every attempt, so one ID correlates the
	// coordinator's dispatch spans with each backend's stage spans.
	TraceBufferSize int
	// SlowLogEnabled turns on structured slow-request logging: a traced
	// request slower than SlowLogThreshold emits one JSON line (with its
	// full span tree) and bumps svw_slow_requests_total{endpoint}. Off by
	// default.
	SlowLogEnabled bool
	// SlowLogThreshold is the slow-request bar; zero logs every traced
	// request.
	SlowLogThreshold time.Duration
	// SlowLogWriter receives slow-request lines (nil = os.Stderr).
	SlowLogWriter io.Writer
	// DefaultSample, when enabled, is the sampling spec stamped onto run
	// and sweep requests that carry none of their own, before forwarding —
	// backends always see an explicit spec, so a fabric-wide default never
	// depends on each backend's own configuration. Request-level Sample*
	// fields win. The zero value forwards unmarked requests unchanged.
	DefaultSample pipeline.SampleSpec
}

// backend is one svwd instance in the pool.
type backend struct {
	url string
	sem chan struct{} // per-backend in-flight bound

	mu        sync.Mutex
	healthy   bool
	lastErr   error
	inFlight  int
	requests  uint64
	errors    uint64
	jobsOK    uint64
	cacheHits uint64
	diskHits  uint64
	peerHits  uint64
	flaps     uint64 // health-state transitions
}

func (b *backend) isHealthy() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.healthy
}

// setHealth flips the backend's health state (err annotates an unhealthy
// transition for stats/debugging). State changes count as flaps, so a
// backend oscillating between marks is visible even when every probe of
// the moment happens to succeed.
func (b *backend) setHealth(healthy bool, err error) {
	b.mu.Lock()
	if healthy != b.healthy {
		b.flaps++
	}
	b.healthy = healthy
	b.lastErr = err
	b.mu.Unlock()
}

// noteStart accounts one forwarded request beginning.
func (b *backend) noteStart() {
	b.mu.Lock()
	b.inFlight++
	b.requests++
	b.mu.Unlock()
}

// noteEnd accounts a request finishing; failed marks a transport/5xx
// failure.
func (b *backend) noteEnd(failed bool) {
	b.mu.Lock()
	b.inFlight--
	if failed {
		b.errors++
	}
	b.mu.Unlock()
}

// noteWin accounts a winning response — the one actually returned to the
// client; origin is the backend's CacheHeader value, attributing memory-,
// disk- and peer-tier hits separately. Called once per dispatch, so a
// retried or hedged job still scores exactly one win.
func (b *backend) noteWin(origin string) {
	b.mu.Lock()
	b.jobsOK++
	switch origin {
	case api.CacheMemory:
		b.cacheHits++
	case api.CacheDisk:
		b.diskHits++
	case api.CachePeer:
		b.peerHits++
	}
	b.mu.Unlock()
}

func (b *backend) stats() api.ClusterBackendStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := api.ClusterBackendStats{
		URL:         b.url,
		Healthy:     b.healthy,
		InFlight:    b.inFlight,
		Requests:    b.requests,
		Errors:      b.errors,
		JobsOK:      b.jobsOK,
		CacheHits:   b.cacheHits,
		DiskHits:    b.diskHits,
		PeerHits:    b.peerHits,
		HealthFlaps: b.flaps,
	}
	if b.lastErr != nil {
		st.LastError = b.lastErr.Error()
	}
	return st
}

// Coordinator is the svwctl fabric: a stateless router/merger over a pool
// of svwd backends. Create with New; it is safe for concurrent use, and
// the pool itself is mutable at runtime (membership.go): AddBackend /
// RemoveBackend / SetBackends, surfaced over AdminHandler and svwctl's
// SIGHUP reload.
type Coordinator struct {
	members membership
	client  *http.Client
	store   *store.Store // nil without Options.StoreDir
	metrics *clusterMetrics
	tracer  *trace.Tracer
	// maxAttempts > 0 is the explicit Options value; 0 sizes the budget to
	// the pool at each dispatch (2 × members, min 2), so the budget tracks
	// membership changes instead of freezing at the boot-time pool size.
	maxAttempts  int
	hedgeAfter   time.Duration
	maxBody      int64
	maxSweepJobs int
	start        time.Time
	draining     atomic.Bool

	// defaultSample is stamped onto unmarked run/sweep requests before
	// forwarding (Options.DefaultSample).
	defaultSample pipeline.SampleSpec

	mu        sync.Mutex
	runs      uint64
	sweeps    uint64
	jobs      uint64
	jobErrors uint64
	retries   uint64
	hedges    uint64
	hedgeWins uint64
}

// New builds a Coordinator over opts.Backends (at least one required).
// Backends start out presumed healthy; probes and request outcomes adjust
// the presumption from there.
func New(opts Options) (*Coordinator, error) {
	if len(opts.Backends) == 0 {
		return nil, fmt.Errorf("cluster: no backends configured")
	}
	if err := opts.DefaultSample.Validate(); err != nil {
		return nil, fmt.Errorf("cluster: default sample spec: %w", err)
	}
	conc := opts.BackendConcurrency
	if conc <= 0 {
		conc = DefaultBackendConcurrency
	}
	maxAttempts := opts.MaxAttempts
	if maxAttempts < 0 {
		maxAttempts = 0 // auto: sized to the pool per dispatch
	}
	maxBody := opts.MaxBodyBytes
	if maxBody <= 0 {
		maxBody = DefaultMaxBodyBytes
	}
	maxSweep := opts.MaxSweepJobs
	if maxSweep <= 0 {
		maxSweep = DefaultMaxSweepJobs
	}
	client := opts.Client
	if client == nil {
		tr := http.DefaultTransport.(*http.Transport).Clone()
		tr.MaxIdleConnsPerHost = conc
		rht := opts.ResponseHeaderTimeout
		if rht == 0 {
			rht = DefaultResponseHeaderTimeout
		}
		if rht > 0 {
			tr.ResponseHeaderTimeout = rht
		}
		client = &http.Client{Transport: tr}
	}
	var st *store.Store
	if opts.StoreDir != "" {
		var err error
		st, err = store.Open(store.Options{Dir: opts.StoreDir, MaxBytes: opts.StoreMaxBytes})
		if err != nil {
			return nil, err
		}
	}
	seen := make(map[string]bool, len(opts.Backends))
	c := &Coordinator{
		members:       membership{conc: conc},
		client:        client,
		store:         st,
		tracer:        trace.NewTracer(opts.TraceBufferSize),
		maxAttempts:   maxAttempts,
		hedgeAfter:    opts.HedgeAfter,
		maxBody:       maxBody,
		maxSweepJobs:  maxSweep,
		start:         time.Now(),
		defaultSample: opts.DefaultSample,
	}
	for _, u := range opts.Backends {
		if u == "" || seen[u] {
			return nil, fmt.Errorf("cluster: empty or duplicate backend URL %q", u)
		}
		seen[u] = true
	}
	if _, _, err := c.members.reconcile(opts.Backends, nil); err != nil {
		return nil, err
	}
	c.metrics = newClusterMetrics(c)
	if opts.SlowLogEnabled {
		c.tracer.Slow = &trace.SlowLog{
			Threshold: opts.SlowLogThreshold,
			W:         opts.SlowLogWriter,
			OnSlow:    c.metrics.onSlow,
		}
	}
	return c, nil
}

// SetDraining marks the coordinator as draining: /v1/healthz flips to 503
// so load balancers stop routing to the process while in-flight requests
// finish (the same drain contract svwd has).
func (c *Coordinator) SetDraining(v bool) { c.draining.Store(v) }

// healthyCount returns how many backends are currently presumed healthy.
func (c *Coordinator) healthyCount() int {
	return healthyIn(c.members.snapshot())
}

// healthyIn counts the healthy members of one pool snapshot, so dispatch
// paths judge health over the same set they rank over.
func healthyIn(pool []*backend) int {
	n := 0
	for _, b := range pool {
		if b.isHealthy() {
			n++
		}
	}
	return n
}

// attemptsBudget is the per-job forwarding-attempt bound for a pool of n
// backends: the explicit Options.MaxAttempts when set, else 2 × n (min 2)
// computed against the dispatch's own snapshot.
func (c *Coordinator) attemptsBudget(n int) int {
	if c.maxAttempts > 0 {
		return c.maxAttempts
	}
	if n < 1 {
		n = 1
	}
	return 2 * n
}

// Handler returns the fabric's routing handler, suitable for http.Server.
// The surface mirrors internal/server's exactly, including the
// instrumented routes and the Prometheus scrape on GET /metrics.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	handle := func(pattern, endpoint string, fn http.HandlerFunc) {
		mux.Handle(pattern, c.metrics.http.Wrap(endpoint, fn))
	}
	// traced routes open a request trace inside the metrics wrapper, so
	// the recorded spans cover exactly what the latency histogram times.
	traced := func(pattern, endpoint string, fn http.HandlerFunc) {
		mux.Handle(pattern, c.metrics.http.Wrap(endpoint, c.tracer.Wrap(endpoint, fn)))
	}
	handle("GET /v1/healthz", "/v1/healthz", c.handleHealthz)
	handle("GET /v1/configs", "/v1/configs", c.handleConfigs)
	handle("GET /v1/benches", "/v1/benches", c.handleBenches)
	handle("GET /v1/stats", "/v1/stats", c.handleStats)
	traced("POST /v1/run", "/v1/run", c.handleRun)
	traced("POST /v1/sweep", "/v1/sweep", c.handleSweep)
	traced("GET /v1/studies/{study}", "/v1/studies", c.handleStudy)
	mux.Handle("GET /metrics", c.metrics.reg.Handler())
	mux.Handle("GET /debug/traces", c.tracer.TracesHandler())
	return mux
}

// counters below are tiny and hot; one mutex keeps them race-clean.

func (c *Coordinator) addRun()   { c.mu.Lock(); c.runs++; c.mu.Unlock() }
func (c *Coordinator) addSweep() { c.mu.Lock(); c.sweeps++; c.mu.Unlock() }

// addJob accounts one client job's final outcome — exactly once per job,
// however many forwarding attempts or hedges it took.
func (c *Coordinator) addJob(failed bool) {
	c.mu.Lock()
	if failed {
		c.jobErrors++
	} else {
		c.jobs++
	}
	c.mu.Unlock()
}

func (c *Coordinator) addRetry() { c.mu.Lock(); c.retries++; c.mu.Unlock() }
func (c *Coordinator) addHedge() { c.mu.Lock(); c.hedges++; c.mu.Unlock() }
func (c *Coordinator) addHedgeWin() {
	c.mu.Lock()
	c.hedgeWins++
	c.mu.Unlock()
}

func (c *Coordinator) clusterStats() api.ClusterStats {
	c.mu.Lock()
	st := api.ClusterStats{
		Runs:      c.runs,
		Sweeps:    c.sweeps,
		Jobs:      c.jobs,
		JobErrors: c.jobErrors,
		Retries:   c.retries,
		Hedges:    c.hedges,
		HedgeWins: c.hedgeWins,
	}
	c.mu.Unlock()
	pool := c.members.snapshot()
	st.BackendsTotal = len(pool)
	if c.store != nil {
		ss := api.StoreCacheStats(c.store.Stats())
		st.Store = &ss
	}
	for _, b := range pool {
		bs := b.stats()
		if bs.Healthy {
			st.BackendsHealthy++
		}
		st.Backends = append(st.Backends, bs)
	}
	return st
}
