package cluster

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"svwsim/internal/server"
	"svwsim/internal/sim"
	"svwsim/internal/sim/engine"
)

// membershipConfigs is the matrix the membership suite sweeps: enough
// cells that a rendezvous re-rank over a changed pool moves some of them
// with near certainty, small enough for the race-enabled run.
var membershipConfigs = []string{"base-nlq", "nlq", "nlq+svw", "base-ssq", "ssq", "ssq+svw"}

func TestErrHTTPStatusText(t *testing.T) {
	if got := errHTTPStatus(http.StatusNotFound).Error(); got != "HTTP 404 Not Found" {
		t.Errorf("standard code: %q", got)
	}
	// The regression: http.StatusText(599) is "", which used to make the
	// whole error message blank in /v1/stats.
	if got := errHTTPStatus(599).Error(); got != "HTTP 599" {
		t.Errorf("non-standard code: %q", got)
	}
}

// TestProbeSurfacesNonStandardStatus drives the 599 path end to end: the
// probe marks the backend down and /v1/stats carries a non-empty
// last_error naming the code.
func TestProbeSurfacesNonStandardStatus(t *testing.T) {
	f := newFabric(t, 1, Options{}, func(i int, h http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/v1/healthz" {
				w.WriteHeader(599)
				return
			}
			h.ServeHTTP(w, r)
		})
	})
	if healthy := f.c.ProbeAll(context.Background()); healthy != 0 {
		t.Fatalf("ProbeAll = %d healthy, want 0", healthy)
	}
	st := f.stats(t)
	if len(st.Cluster.Backends) != 1 {
		t.Fatalf("want 1 backend in stats, got %d", len(st.Cluster.Backends))
	}
	if got := st.Cluster.Backends[0].LastError; got != "HTTP 599" {
		t.Errorf("last_error = %q, want %q", got, "HTTP 599")
	}
}

// TestProbesReuseConnections is the connection-churn regression: probes
// and proxied stats fetches must drain response bodies before closing, so
// sequential rounds ride one keep-alive connection instead of redialing
// every time. Dials are counted with the test server's ConnState hook.
func TestProbesReuseConnections(t *testing.T) {
	srv, err := server.New(server.Options{Workers: 2, MaxConcurrentJobs: -1})
	if err != nil {
		t.Fatal(err)
	}
	var dials int64
	ts := httptest.NewUnstartedServer(srv.Handler())
	ts.Config.ConnState = func(c net.Conn, s http.ConnState) {
		if s == http.StateNew {
			atomic.AddInt64(&dials, 1)
		}
	}
	ts.Start()
	t.Cleanup(ts.Close)

	c, err := New(Options{Backends: []string{ts.URL}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.client.CloseIdleConnections)

	ctx := context.Background()
	for i := 0; i < 8; i++ {
		if healthy := c.ProbeAll(ctx); healthy != 1 {
			t.Fatalf("probe round %d: %d healthy, want 1", i, healthy)
		}
	}
	// The aggregated stats fetch reads each backend's /v1/stats through
	// the same client; its body must be drained too.
	for i := 0; i < 4; i++ {
		r := httptest.NewRequest("GET", "/v1/stats", nil)
		w := httptest.NewRecorder()
		c.Handler().ServeHTTP(w, r)
		if w.Code != http.StatusOK {
			t.Fatalf("stats round %d: HTTP %d", i, w.Code)
		}
	}
	if n := atomic.LoadInt64(&dials); n != 1 {
		t.Errorf("%d dials for 12 sequential probe/stats rounds, want 1 (bodies not drained before close?)", n)
	}
}

// TestMembershipRemoveMidSweep removes a backend while a sweep is in
// flight: the sweep must complete, byte-identical to `svwsim -json`, with
// every job counted exactly once; in-flight work drains against the
// snapshot it ranked under.
func TestMembershipRemoveMidSweep(t *testing.T) {
	sawJob := make(chan struct{})
	var once sync.Once
	f := newFabric(t, 3, Options{}, func(i int, h http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/v1/run" {
				once.Do(func() { close(sawJob) })
			}
			h.ServeHTTP(w, r)
		})
	})
	f.c.ProbeAll(context.Background())

	jobs := len(membershipConfigs) * len(equivalenceBenches)
	body := sweepBody(membershipConfigs, equivalenceBenches)
	resp := make(chan *httptest.ResponseRecorder, 1)
	go func() { resp <- f.do("POST", "/v1/sweep", body, nil) }()

	<-sawJob // at least one job is in flight on the 3-backend snapshot
	removed := f.backends[2].URL
	if err := f.c.RemoveBackend(removed); err != nil {
		t.Fatalf("RemoveBackend: %v", err)
	}

	w := <-resp
	if w.Code != http.StatusOK {
		t.Fatalf("sweep HTTP %d: %s", w.Code, w.Body)
	}
	if want := refSweepBody(t, membershipConfigs, equivalenceBenches); !bytes.Equal(w.Body.Bytes(), want) {
		t.Fatal("sweep across a membership change differs from the svwsim -json encoding")
	}
	st := f.stats(t)
	if st.Cluster.Jobs != uint64(jobs) {
		t.Errorf("jobs counted = %d, want %d (no double counting across the change)", st.Cluster.Jobs, jobs)
	}
	if st.Cluster.JobErrors != 0 {
		t.Errorf("job errors = %d, want 0", st.Cluster.JobErrors)
	}
	urls := f.c.Backends()
	if len(urls) != 2 {
		t.Fatalf("pool after removal = %v, want 2 members", urls)
	}
	for _, u := range urls {
		if u == removed {
			t.Fatalf("removed backend %s still in pool %v", removed, urls)
		}
	}
}

// TestMembershipAddRecoversAffinity grows the pool and re-sweeps: the
// result must stay byte-identical while only the cells whose rendezvous
// top choice is the new member move to it — everything else is answered
// from the original backends' caches (minimal remap).
func TestMembershipAddRecoversAffinity(t *testing.T) {
	f := newFabric(t, 2, Options{}, nil)
	f.c.ProbeAll(context.Background())

	body := sweepBody(membershipConfigs, equivalenceBenches)
	want := refSweepBody(t, membershipConfigs, equivalenceBenches)
	if w := f.do("POST", "/v1/sweep", body, nil); w.Code != http.StatusOK || !bytes.Equal(w.Body.Bytes(), want) {
		t.Fatalf("pre-growth sweep: HTTP %d, match=%v", w.Code, bytes.Equal(w.Body.Bytes(), want))
	}

	srv, err := server.New(server.Options{Workers: 2, MaxConcurrentJobs: -1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	if err := f.c.AddBackend(ts.URL); err != nil {
		t.Fatalf("AddBackend: %v", err)
	}
	if healthy := f.c.ProbeAll(context.Background()); healthy != 3 {
		t.Fatalf("after add: %d healthy, want 3", healthy)
	}

	if w := f.do("POST", "/v1/sweep", body, nil); w.Code != http.StatusOK || !bytes.Equal(w.Body.Bytes(), want) {
		t.Fatalf("post-growth sweep: HTTP %d, match=%v", w.Code, bytes.Equal(w.Body.Bytes(), want))
	}

	// Expected remap: the cells whose rendezvous walk now tops out at the
	// new member. Everything else must have been a cache hit on its
	// original backend.
	pool := f.c.members.snapshot()
	moved := 0
	for _, cname := range membershipConfigs {
		cfg, ok := sim.ConfigByName(cname)
		if !ok {
			t.Fatalf("unknown config %q", cname)
		}
		for _, bench := range equivalenceBenches {
			key := engine.Fingerprint(cfg, bench, testInsts)
			if pool[rank(pool, key)[0]].url == ts.URL {
				moved++
			}
		}
	}
	st := f.stats(t)
	var newJobsOK, oldCacheHits uint64
	for _, b := range st.Cluster.Backends {
		if b.URL == ts.URL {
			newJobsOK = b.JobsOK
		} else {
			oldCacheHits += b.CacheHits
		}
	}
	jobs := len(membershipConfigs) * len(equivalenceBenches)
	if newJobsOK != uint64(moved) {
		t.Errorf("new backend served %d jobs, want exactly the %d remapped cells", newJobsOK, moved)
	}
	if oldCacheHits != uint64(jobs-moved) {
		t.Errorf("original backends served %d cache hits on the re-sweep, want %d (affinity for unmoved cells)",
			oldCacheHits, jobs-moved)
	}
	t.Logf("pool growth remapped %d/%d cells", moved, jobs)
}

// TestClusterRunDogpile: N identical concurrent cold /v1/run requests
// through a store-backed coordinator reach the backend exactly once; the
// other N-1 coalesce on the leader's dispatch.
func TestClusterRunDogpile(t *testing.T) {
	var backendRuns int64
	f := newFabric(t, 1, Options{StoreDir: t.TempDir()}, func(i int, h http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/v1/run" {
				atomic.AddInt64(&backendRuns, 1)
			}
			h.ServeHTTP(w, r)
		})
	})
	f.c.ProbeAll(context.Background())

	const n = 6
	body := fmt.Sprintf(`{"config":"ssq","bench":"gcc","insts":%d}`, testInsts)
	results := make([]*httptest.ResponseRecorder, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = f.do("POST", "/v1/run", body, nil)
		}(i)
	}
	wg.Wait()

	want := refRunBody(t, "ssq", "gcc")
	for i, w := range results {
		if w.Code != http.StatusOK {
			t.Fatalf("request %d: HTTP %d: %s", i, w.Code, w.Body)
		}
		if !bytes.Equal(w.Body.Bytes(), want) {
			t.Fatalf("request %d: body differs from the svwsim -json encoding", i)
		}
	}
	if got := atomic.LoadInt64(&backendRuns); got != 1 {
		t.Errorf("backend saw %d /v1/run dispatches for %d identical requests, want 1", got, n)
	}
	if got := f.c.store.Stats().Coalesced; got != n-1 {
		t.Errorf("coordinator coalesced = %d, want %d", got, n-1)
	}
}
