package cluster

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"svwsim/internal/api"
)

// A coordinator started with a store dir writes computed results through
// to its own persistent tier and serves them back when the whole backend
// pool is gone: the fabric keeps answering everything it has ever
// computed, byte-identically, with zero live backends.
func TestCoordinatorStoreServesWhenPoolIsDown(t *testing.T) {
	dir := t.TempDir()
	configs := []string{"ssq", "ssq+svw"}
	benches := []string{"gcc", "twolf"}
	body := sweepBody(configs, benches)
	want := refSweepBody(t, configs, benches)

	f := newFabric(t, 2, Options{StoreDir: dir}, nil)
	w := f.do("POST", "/v1/sweep", body, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("warm sweep HTTP %d: %s", w.Code, w.Body)
	}
	if !bytes.Equal(w.Body.Bytes(), want) {
		t.Fatal("warm sweep differs from reference")
	}

	// The fabric burns down: every backend gone, connections refused.
	for _, b := range f.backends {
		b.Close()
	}

	w2 := f.do("POST", "/v1/sweep", body, nil)
	if w2.Code != http.StatusOK {
		t.Fatalf("pool-down sweep HTTP %d: %s", w2.Code, w2.Body)
	}
	if !bytes.Equal(w2.Body.Bytes(), want) {
		t.Fatal("pool-down sweep differs from reference")
	}
	st := f.stats(t)
	if st.Cluster.Store == nil {
		t.Fatal("cluster stats missing the coordinator store section")
	}
	njobs := uint64(len(configs) * len(benches))
	if served := st.Cluster.Store.Hits + st.Cluster.Store.DiskHits; served != njobs {
		t.Fatalf("coordinator store served %d jobs, want %d (stats %+v)", served, njobs, st.Cluster.Store)
	}
	if st.Cluster.Store.DiskEntries == 0 {
		t.Fatalf("write-through left no disk entries: %+v", st.Cluster.Store)
	}

	// /v1/run takes the same path and names the serving tier.
	runReq := fmt.Sprintf(`{"config":"ssq","bench":"gcc","insts":%d}`, testInsts)
	w3 := f.do("POST", "/v1/run", runReq, nil)
	if w3.Code != http.StatusOK {
		t.Fatalf("pool-down run HTTP %d: %s", w3.Code, w3.Body)
	}
	if !bytes.Equal(w3.Body.Bytes(), refRunBody(t, "ssq", "gcc")) {
		t.Fatal("pool-down run differs from reference")
	}
	if h := w3.Header().Get(api.CacheHeader); h != api.CacheMemory && h != api.CacheDisk {
		t.Fatalf("pool-down run %s=%q, want a store tier", api.CacheHeader, h)
	}

	// A job the fabric never computed still fails cleanly: the store is a
	// cache, not an oracle.
	cold := fmt.Sprintf(`{"config":"nlq","bench":"vortex","insts":%d}`, testInsts)
	w4 := f.do("POST", "/v1/run", cold, nil)
	if w4.Code != http.StatusBadGateway {
		t.Fatalf("uncached pool-down run HTTP %d, want 502", w4.Code)
	}
}

// A second coordinator process over the same store dir — a restarted or
// replacement svwctl — inherits the persistent tier: fabric reshapes do
// not lose the result corpus.
func TestCoordinatorStoreSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	runReq := fmt.Sprintf(`{"config":"ssq+svw","bench":"twolf","insts":%d}`, testInsts)

	f1 := newFabric(t, 1, Options{StoreDir: dir}, nil)
	w := f1.do("POST", "/v1/run", runReq, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("warm run HTTP %d: %s", w.Code, w.Body)
	}

	// New coordinator, same directory, dead pool (a URL nothing listens on).
	c2, err := New(Options{Backends: []string{"http://127.0.0.1:1"}, StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	r := httptest.NewRequest("POST", "/v1/run", strings.NewReader(runReq))
	w2 := httptest.NewRecorder()
	c2.Handler().ServeHTTP(w2, r)
	if w2.Code != http.StatusOK {
		t.Fatalf("restarted coordinator run HTTP %d: %s", w2.Code, w2.Body)
	}
	if !bytes.Equal(w2.Body.Bytes(), w.Body.Bytes()) {
		t.Fatal("restarted coordinator served different bytes")
	}
	if h := w2.Header().Get(api.CacheHeader); h != api.CacheDisk {
		t.Fatalf("restarted coordinator %s=%q, want disk", api.CacheHeader, h)
	}
}
