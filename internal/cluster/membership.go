package cluster

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Dynamic membership. The backend set used to be a slice fixed at New;
// growing, shrinking or healing the fabric meant a coordinator restart.
// It is now a registry that mutates under a lock while every reader —
// dispatch's ranked walk, health probes, /v1/stats, the per-backend
// metric series — works from an immutable snapshot:
//
//   - the pool slice is copy-on-write: mutations build a new slice and
//     swap it in; a slice handed out by snapshot() is never appended to
//     or reordered again, so readers iterate it lock-free;
//   - a dispatch takes ONE snapshot and ranks, walks, retries and hedges
//     entirely within it, so a membership change mid-job can never make
//     the walk skip or double-visit a backend;
//   - removal is drain, not teardown: in-flight attempts hold *backend
//     pointers from their snapshot, whose semaphore and counters outlive
//     the registry entry, so started work finishes normally against the
//     departed backend and the last reference is simply garbage
//     collected. Rendezvous hashing (routing.go) keeps the remap minimal
//     on either kind of change.
type membership struct {
	conc int // per-backend in-flight bound for newly added members

	mu   sync.Mutex
	pool []*backend // copy-on-write; handed-out slices are immutable
}

// snapshot returns the current pool. The slice and its entries must not
// be mutated by callers; each backend's own state is internally locked.
func (m *membership) snapshot() []*backend {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.pool
}

// get returns the member with the given (normalized) URL, or nil.
func (m *membership) get(url string) *backend {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, b := range m.pool {
		if b.url == url {
			return b
		}
	}
	return nil
}

// urls returns the member URLs in pool order.
func (m *membership) urls() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, len(m.pool))
	for i, b := range m.pool {
		out[i] = b.url
	}
	return out
}

// normalizeBackendURL canonicalizes a backend URL for membership
// identity: surrounding space and trailing slashes are insignificant
// (http://h:1/ and http://h:1 are one backend, and must hash identically
// in routing.go).
func normalizeBackendURL(u string) string {
	return strings.TrimRight(strings.TrimSpace(u), "/")
}

// reconcile applies adds then removes against the current pool and swaps
// in the new one. Already-present adds and absent removes are no-ops (the
// caller declares a desired delta, not a transaction); the reported
// slices are what actually changed. A resulting empty pool is refused —
// a coordinator with zero backends can serve nothing, so the last member
// can only be replaced, never removed.
func (m *membership) reconcile(add, remove []string) (added, removed []string, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()

	next := make([]*backend, len(m.pool))
	copy(next, m.pool)
	have := make(map[string]bool, len(next))
	for _, b := range next {
		have[b.url] = true
	}

	for _, raw := range add {
		u := normalizeBackendURL(raw)
		if u == "" || !strings.Contains(u, "://") {
			return nil, nil, fmt.Errorf("cluster: invalid backend URL %q", raw)
		}
		if have[u] {
			continue
		}
		have[u] = true
		next = append(next, &backend{
			url:     u,
			sem:     make(chan struct{}, m.conc),
			healthy: true, // presumed until probed, like the initial pool
		})
		added = append(added, u)
	}
	for _, raw := range remove {
		u := normalizeBackendURL(raw)
		for i, b := range next {
			if b.url == u {
				next = append(next[:i], next[i+1:]...)
				removed = append(removed, u)
				break
			}
		}
	}
	if len(next) == 0 {
		return nil, nil, fmt.Errorf("cluster: refusing to remove the last backend")
	}
	m.pool = next
	return added, removed, nil
}

// AddBackend adds one backend URL to the pool (no-op if present). The new
// member starts presumed healthy and claims its rendezvous share of keys
// from the next dispatch on; in-flight jobs finish on the snapshot they
// ranked under.
func (c *Coordinator) AddBackend(url string) error {
	_, _, err := c.members.reconcile([]string{url}, nil)
	if err == nil {
		c.metrics.ensureBackend(normalizeBackendURL(url))
	}
	return err
}

// RemoveBackend removes one backend URL from the pool (no-op if absent;
// error when it is the last member). Removal is a drain: requests already
// walking a snapshot that contains the backend complete against it, new
// dispatches no longer see it.
func (c *Coordinator) RemoveBackend(url string) error {
	_, _, err := c.members.reconcile(nil, []string{url})
	return err
}

// SetBackends reconciles the pool to exactly urls — the SIGHUP reload
// path: members not in urls are removed (drained), missing ones are
// added. It reports what changed.
func (c *Coordinator) SetBackends(urls []string) (added, removed []string, err error) {
	want := make(map[string]bool, len(urls))
	var add []string
	for _, raw := range urls {
		u := normalizeBackendURL(raw)
		if u == "" {
			continue
		}
		if !want[u] {
			want[u] = true
			add = append(add, u)
		}
	}
	if len(add) == 0 {
		return nil, nil, fmt.Errorf("cluster: refusing to reconcile to an empty backend set")
	}
	var drop []string
	for _, u := range c.members.urls() {
		if !want[u] {
			drop = append(drop, u)
		}
	}
	added, removed, err = c.members.reconcile(add, drop)
	for _, u := range added {
		c.metrics.ensureBackend(u)
	}
	sort.Strings(added)
	sort.Strings(removed)
	return added, removed, err
}

// Backends returns the current member URLs.
func (c *Coordinator) Backends() []string { return c.members.urls() }
