package cluster

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"svwsim/internal/api"
	"svwsim/internal/sim"
)

// Fault injection: the coordinator's equivalence claim is only believable
// if it holds while backends are failing underneath it. These tests break
// one backend mid-sweep — politely (503s) and rudely (killed listener) —
// and require the merged output to stay complete, job-index ordered and
// byte-identical to the reference, with every job accounted exactly once.

// faultBenches keeps the fault sweeps heavy enough that a backend dies
// mid-flight with work outstanding, light enough for -race CI.
var faultBenches = []string{"gcc", "twolf"}

// failAfterN passes the first n /v1/run requests through to the real svwd
// handler, then answers every later one with 503 — a backend that falls
// over mid-sweep but keeps its socket open.
func failAfterN(n int64, h http.Handler) http.Handler {
	var served int64
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/run" && atomic.AddInt64(&served, 1) > n {
			api.WriteError(w, http.StatusServiceUnavailable, "injected fault: backend down")
			return
		}
		h.ServeHTTP(w, r)
	})
}

// TestSweepSurvives503MidSweep: one of three backends starts 503ing after
// its first few jobs. The sweep must still complete byte-identical to the
// reference, every job retried onto a survivor, and the stats must count
// each job exactly once — on the coordinator AND summed across the
// backends' own caches (the no-double-count contract).
func TestSweepSurvives503MidSweep(t *testing.T) {
	const passThrough = 3
	f := newFabric(t, 3, Options{}, func(i int, h http.Handler) http.Handler {
		if i == 0 {
			return failAfterN(passThrough, h)
		}
		return h
	})
	configs := sim.ConfigNames()
	njobs := uint64(len(configs) * len(faultBenches))

	w := f.do("POST", "/v1/sweep", sweepBody(configs, faultBenches), nil)
	if w.Code != http.StatusOK {
		t.Fatalf("sweep over failing backend: HTTP %d: %s", w.Code, w.Body)
	}
	if !bytes.Equal(w.Body.Bytes(), refSweepBody(t, configs, faultBenches)) {
		t.Fatal("sweep body differs from reference after mid-sweep 503s")
	}

	st := f.stats(t)
	if st.Cluster.Jobs != njobs || st.Cluster.JobErrors != 0 {
		t.Fatalf("cluster jobs %d errors %d, want %d/0 — every job exactly once",
			st.Cluster.Jobs, st.Cluster.JobErrors, njobs)
	}
	if st.Cluster.Retries == 0 {
		t.Fatal("no retries recorded; the injected fault had no teeth")
	}
	var sumOK uint64
	for _, b := range st.Cluster.Backends {
		sumOK += b.JobsOK
		if b.URL == f.backends[0].URL {
			if b.JobsOK > passThrough {
				t.Errorf("failed backend won %d jobs, can have served at most %d", b.JobsOK, passThrough)
			}
			// The health mark itself is not asserted: with concurrent
			// in-flight requests a late 200 can legitimately land after
			// the last 503, leaving either mark. The routing consequences
			// (JobsOK bound, retries, exact accounting) are what matter.
			if b.Errors == 0 {
				t.Error("failed backend shows no errors")
			}
		}
	}
	if sumOK != njobs {
		t.Fatalf("backends won %d jobs in total, want exactly %d (double- or under-counted)", sumOK, njobs)
	}
	// The decisive double-count check: each job touched exactly one
	// backend cache (hit or miss) — failed attempts never reached a cache,
	// retried jobs were served exactly once elsewhere.
	if served := st.Cache.Hits + st.Cache.Misses; served != njobs {
		t.Fatalf("backend caches served %d jobs, want exactly %d", served, njobs)
	}
}

// TestSweepSSESurvivesBackendKill: a backend's listener is torn down
// after a handful of jobs, mid-sweep, with the client streaming. Events
// must still arrive complete, in job-index order, error-free and with
// payloads matching the reference.
func TestSweepSSESurvivesBackendKill(t *testing.T) {
	const killAfter = 2
	var (
		kill       sync.Once
		killTarget atomic.Pointer[httptest.Server]
	)
	f := newFabric(t, 3, Options{}, func(i int, h http.Handler) http.Handler {
		if i != 0 {
			return h
		}
		var served int64
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/v1/run" && atomic.AddInt64(&served, 1) > killAfter {
				// Kill the whole backend: open connections die with rude
				// RSTs, later dials are refused. Close blocks until
				// handlers return, so run it from the side.
				kill.Do(func() {
					ts := killTarget.Load()
					go func() {
						ts.CloseClientConnections()
						ts.Close()
					}()
				})
				// Answer 503 in case the teardown loses the race with this
				// response; either way the coordinator must retry the job.
				api.WriteError(w, http.StatusServiceUnavailable, "backend killed")
				return
			}
			h.ServeHTTP(w, r)
		})
	})
	killTarget.Store(f.backends[0])

	configs := sim.ConfigNames()
	w := f.do("POST", "/v1/sweep", sweepBody(configs, faultBenches),
		map[string]string{"Accept": "text/event-stream"})
	if w.Code != http.StatusOK {
		t.Fatalf("HTTP %d: %s", w.Code, w.Body)
	}
	events, err := api.ParseEvents(w.Body)
	if err != nil {
		t.Fatal(err)
	}
	n := len(configs) * len(faultBenches)
	if len(events) != n+1 {
		t.Fatalf("got %d events, want %d results + done", len(events), n)
	}
	for i := 0; i < n; i++ {
		ev := events[i]
		if ev.Name != "result" || ev.ID != i {
			t.Fatalf("event %d: name %q id %d — order must survive the kill", i, ev.Name, ev.ID)
		}
		var data api.SweepEvent
		if err := json.Unmarshal(ev.Data, &data); err != nil {
			t.Fatal(err)
		}
		if data.Error != "" {
			t.Fatalf("event %d: error %q leaked to the client despite retries", i, data.Error)
		}
		cfg, bench := configs[i/len(faultBenches)], faultBenches[i%len(faultBenches)]
		var ref bytes.Buffer
		if err := json.Compact(&ref, refRunBody(t, cfg, bench)); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(data.Result, ref.Bytes()) {
			t.Fatalf("event %d: payload differs from reference after backend kill", i)
		}
	}
	var done api.SweepDone
	if err := json.Unmarshal(events[n].Data, &done); err != nil {
		t.Fatal(err)
	}
	if done.Jobs != n || done.Errors != 0 {
		t.Fatalf("done %+v, want %d jobs, 0 errors", done, n)
	}
	st := f.stats(t)
	if st.Cluster.Retries == 0 {
		t.Fatal("no retries recorded; the kill had no teeth")
	}
	if st.Cluster.Jobs != uint64(n) || st.Cluster.JobErrors != 0 {
		t.Fatalf("cluster jobs %d errors %d, want %d/0", st.Cluster.Jobs, st.Cluster.JobErrors, n)
	}
}

// TestRunFailsOverFromDeadBackend: individual /v1/run requests whose home
// backend is dead from the start are served by the survivor, byte-
// identically, and the dead backend wins nothing.
func TestRunFailsOverFromDeadBackend(t *testing.T) {
	dead := func(i int, h http.Handler) http.Handler {
		if i != 0 {
			return h
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			api.WriteError(w, http.StatusServiceUnavailable, "injected fault: dead backend")
		})
	}
	f := newFabric(t, 2, Options{}, dead)

	for _, cname := range sim.ConfigNames() {
		body, _ := json.Marshal(api.RunRequest{Config: cname, Bench: "gcc", Insts: testInsts})
		w := f.do("POST", "/v1/run", string(body), nil)
		if w.Code != http.StatusOK {
			t.Fatalf("run %s: HTTP %d: %s", cname, w.Code, w.Body)
		}
		if !bytes.Equal(w.Body.Bytes(), refRunBody(t, cname, "gcc")) {
			t.Fatalf("run %s differs from reference", cname)
		}
	}
	st := f.stats(t)
	if st.Cluster.Retries == 0 {
		t.Fatal("no retries: every key homed on the survivor, the failover path was never exercised")
	}
	for _, b := range st.Cluster.Backends {
		if b.URL == f.backends[0].URL && b.JobsOK != 0 {
			t.Fatalf("dead backend won %d jobs", b.JobsOK)
		}
	}
}

// TestSweepSaturatedPoolReturns429: when every backend refuses with 429,
// the coordinator's sweep answers 429 + Retry-After exactly like a
// single saturated svwd — not a 500. The fabric must be indistinguishable
// from one daemon even in its failure statuses.
func TestSweepSaturatedPoolReturns429(t *testing.T) {
	saturated := func(i int, h http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/v1/run" {
				w.Header().Set("Retry-After", "1")
				api.WriteError(w, http.StatusTooManyRequests, "admission gate saturated")
				return
			}
			h.ServeHTTP(w, r)
		})
	}
	f := newFabric(t, 2, Options{MaxAttempts: 2}, saturated)
	w := f.do("POST", "/v1/sweep", sweepBody([]string{"ssq"}, []string{"gcc"}), nil)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("sweep over saturated pool: HTTP %d, want 429", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
}

// TestAllBackendsDown: with the whole pool dead the coordinator reports a
// clean 502 per request and a degraded healthz — it does not hang or
// panic.
func TestAllBackendsDown(t *testing.T) {
	f := newFabric(t, 2, Options{}, nil)
	for _, ts := range f.backends {
		ts.Close()
	}
	body, _ := json.Marshal(api.RunRequest{Config: "ssq", Bench: "gcc", Insts: testInsts})
	w := f.do("POST", "/v1/run", string(body), nil)
	if w.Code != http.StatusBadGateway {
		t.Fatalf("run over dead pool: HTTP %d, want 502", w.Code)
	}
	if f.c.ProbeAll(t.Context()) != 0 {
		t.Fatal("probes found a healthy backend in a closed pool")
	}
	if w := f.do("GET", "/v1/healthz", "", nil); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("healthz over dead pool: HTTP %d, want 503", w.Code)
	}
}
