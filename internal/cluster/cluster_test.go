package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"svwsim/internal/api"
	"svwsim/internal/server"
	"svwsim/internal/sim"
	"svwsim/internal/sim/engine"
)

const testInsts = 5_000

// equivalenceBenches is the bench slice the multi-node suite sweeps with
// the full config registry: every machine in the paper's ladders over a
// representative bench subset, kept small enough for the race-enabled run.
var equivalenceBenches = []string{"gcc", "twolf"}

// fabric is a coordinator over n real in-process svwd backends, each an
// httptest server speaking actual HTTP (so transport-level faults —
// connection kills, 503 wrappers — behave like production).
type fabric struct {
	c        *Coordinator
	backends []*httptest.Server
}

// newFabric builds n svwd backends and a coordinator over them. wrap, if
// non-nil, can interpose a fault-injecting handler per backend.
func newFabric(t *testing.T, n int, opts Options, wrap func(i int, h http.Handler) http.Handler) *fabric {
	t.Helper()
	f := &fabric{}
	for i := 0; i < n; i++ {
		srv, err := server.New(server.Options{Workers: 2, MaxConcurrentJobs: -1})
		if err != nil {
			t.Fatal(err)
		}
		h := srv.Handler()
		if wrap != nil {
			h = wrap(i, h)
		}
		ts := httptest.NewServer(h)
		t.Cleanup(ts.Close)
		f.backends = append(f.backends, ts)
		opts.Backends = append(opts.Backends, ts.URL)
	}
	c, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	// Runs after the backends close (LIFO): drop pooled keep-alive
	// connections so server teardown never waits on them.
	t.Cleanup(c.client.CloseIdleConnections)
	f.c = c
	return f
}

// do runs one request through the coordinator's handler.
func (f *fabric) do(method, path, body string, hdr map[string]string) *httptest.ResponseRecorder {
	var r *http.Request
	if body != "" {
		r = httptest.NewRequest(method, path, strings.NewReader(body))
	} else {
		r = httptest.NewRequest(method, path, nil)
	}
	for k, v := range hdr {
		r.Header.Set(k, v)
	}
	w := httptest.NewRecorder()
	f.c.Handler().ServeHTTP(w, r)
	return w
}

// stats fetches the coordinator's aggregated /v1/stats.
func (f *fabric) stats(t *testing.T) api.StatsResponse {
	t.Helper()
	w := f.do("GET", "/v1/stats", "", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("stats HTTP %d: %s", w.Code, w.Body)
	}
	var st api.StatsResponse
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Cluster == nil {
		t.Fatal("coordinator stats without cluster section")
	}
	return st
}

// refRunBody is the reference encoding — what `svwsim -json` prints for
// one (config, bench, testInsts) job — memoized across the whole test
// package so each job's reference simulation runs once.
var (
	refMu    sync.Mutex
	refCache = map[string][]byte{}
)

func refRunBody(t *testing.T, config, bench string) []byte {
	t.Helper()
	k := config + "|" + bench
	refMu.Lock()
	body, ok := refCache[k]
	refMu.Unlock()
	if ok {
		return body
	}
	cfg, ok := sim.ConfigByName(config)
	if !ok {
		t.Fatalf("unknown config %q", config)
	}
	res, err := engine.Run(cfg, bench, testInsts)
	if err != nil {
		t.Fatal(err)
	}
	body, err = api.MarshalResult(res)
	if err != nil {
		t.Fatal(err)
	}
	refMu.Lock()
	refCache[k] = body
	refMu.Unlock()
	return body
}

// refSweepBody concatenates the reference bodies config-major — the exact
// bytes `svwsim -json -config c1,c2 -bench b1,b2` prints.
func refSweepBody(t *testing.T, configs, benches []string) []byte {
	t.Helper()
	var body []byte
	for _, c := range configs {
		for _, b := range benches {
			body = append(body, refRunBody(t, c, b)...)
		}
	}
	return body
}

func sweepBody(configs, benches []string) string {
	b, _ := json.Marshal(api.SweepRequest{Configs: configs, Benches: benches, Insts: testInsts})
	return string(b)
}

// TestClusterSweepEquivalence is the multi-node headline: the full
// config-registry sweep through a 3-backend fabric is byte-identical to
// the `svwsim -json` encoding AND to the same sweep through a 1-backend
// fabric — the cluster-level analog of the engine's j1==j4 determinism.
func TestClusterSweepEquivalence(t *testing.T) {
	configs := sim.ConfigNames()
	want := refSweepBody(t, configs, equivalenceBenches)
	body := sweepBody(configs, equivalenceBenches)

	multi := newFabric(t, 3, Options{}, nil)
	w := multi.do("POST", "/v1/sweep", body, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("3-backend sweep HTTP %d: %s", w.Code, w.Body)
	}
	if !bytes.Equal(w.Body.Bytes(), want) {
		t.Fatal("3-backend sweep differs from the svwsim -json reference")
	}

	single := newFabric(t, 1, Options{}, nil)
	w1 := single.do("POST", "/v1/sweep", body, nil)
	if w1.Code != http.StatusOK {
		t.Fatalf("1-backend sweep HTTP %d: %s", w1.Code, w1.Body)
	}
	if !bytes.Equal(w1.Body.Bytes(), w.Body.Bytes()) {
		t.Fatal("1-backend and 3-backend sweeps differ: merge order is not deterministic")
	}

	// The equivalence must come from a genuine fan-out: every backend in
	// the pool served a share of the jobs (routing is balanced enough over
	// 45 keys that an unused backend means routing or failover is broken).
	st := multi.stats(t)
	njobs := uint64(len(configs) * len(equivalenceBenches))
	if st.Cluster.Jobs != njobs || st.Cluster.JobErrors != 0 {
		t.Fatalf("cluster jobs %d errors %d, want %d/0", st.Cluster.Jobs, st.Cluster.JobErrors, njobs)
	}
	var sumOK uint64
	for _, b := range st.Cluster.Backends {
		if b.JobsOK == 0 {
			t.Errorf("backend %s served no jobs; fan-out did not spread", b.URL)
		}
		sumOK += b.JobsOK
	}
	if sumOK != njobs {
		t.Fatalf("backends won %d jobs in total, want exactly %d (no double counting)", sumOK, njobs)
	}
	// Backend-side accounting agrees: each job was computed (or served
	// from an LRU) exactly once across the pool.
	if served := st.Cache.Hits + st.Cache.Misses; served != njobs {
		t.Fatalf("pool cache served %d jobs, want %d", served, njobs)
	}

	// Repeat the sweep: routing affinity must turn it into pure backend
	// LRU hits, still byte-identical.
	w2 := multi.do("POST", "/v1/sweep", body, nil)
	if !bytes.Equal(w2.Body.Bytes(), want) {
		t.Fatal("repeated sweep differs")
	}
	st2 := multi.stats(t)
	if hits := st2.Cache.Hits - st.Cache.Hits; hits != njobs {
		t.Fatalf("repeat sweep got %d pool cache hits, want %d (affinity broken)", hits, njobs)
	}
}

// TestClusterSSEOrderingAndPayloads: the streamed sweep arrives in
// job-index order with each payload byte-identical to the reference, and
// the repeat pass reports backend cache hits through the fabric.
func TestClusterSSEOrderingAndPayloads(t *testing.T) {
	f := newFabric(t, 3, Options{}, nil)
	configs := []string{"ssq", "ssq+svw", "nlq", "rle"}
	benches := []string{"gcc", "twolf"}
	body := sweepBody(configs, benches)
	hdr := map[string]string{"Accept": "text/event-stream"}

	check := func(wantCached bool) {
		t.Helper()
		w := f.do("POST", "/v1/sweep", body, hdr)
		if w.Code != http.StatusOK {
			t.Fatalf("HTTP %d: %s", w.Code, w.Body)
		}
		events, err := api.ParseEvents(w.Body)
		if err != nil {
			t.Fatal(err)
		}
		n := len(configs) * len(benches)
		if len(events) != n+1 {
			t.Fatalf("got %d events, want %d results + done", len(events), n)
		}
		for i := 0; i < n; i++ {
			ev := events[i]
			if ev.Name != "result" || ev.ID != i {
				t.Fatalf("event %d: name %q id %d (SSE must arrive in job-index order)", i, ev.Name, ev.ID)
			}
			var data api.SweepEvent
			if err := json.Unmarshal(ev.Data, &data); err != nil {
				t.Fatal(err)
			}
			cfg, bench := configs[i/len(benches)], benches[i%len(benches)]
			built, _ := sim.ConfigByName(cfg)
			if data.Index != i || data.Config != built.Name || data.Bench != bench {
				t.Fatalf("event %d: %+v, want %s on %s", i, data, built.Name, bench)
			}
			if data.Backend == "" {
				t.Fatalf("event %d: no backend attribution", i)
			}
			if data.Cached != wantCached {
				t.Fatalf("event %d: cached=%v, want %v", i, data.Cached, wantCached)
			}
			// Event payloads ride inside a JSON envelope, which compacts
			// the embedded RawMessage; compare against the compacted
			// reference bytes.
			var ref bytes.Buffer
			if err := json.Compact(&ref, refRunBody(t, cfg, bench)); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(data.Result, ref.Bytes()) {
				t.Fatalf("event %d: result payload differs from reference", i)
			}
		}
		last := events[n]
		if last.Name != "done" {
			t.Fatalf("final event %q, want done", last.Name)
		}
		var done api.SweepDone
		if err := json.Unmarshal(last.Data, &done); err != nil {
			t.Fatal(err)
		}
		want := api.SweepDone{Jobs: n, CacheHits: 0, CacheMisses: n}
		if wantCached {
			want = api.SweepDone{Jobs: n, CacheHits: n, CacheMisses: 0}
		}
		if done != want {
			t.Fatalf("done %+v, want %+v", done, want)
		}
	}
	check(false) // first pass: computed across the pool
	check(true)  // second pass: served by the backends' LRUs via affinity
}

// TestClusterRunAndRegistryEndpoints: /v1/run through the fabric matches
// the reference encoding and the CLI-facing registry endpoints are
// byte-identical to a backend's.
func TestClusterRunAndRegistryEndpoints(t *testing.T) {
	f := newFabric(t, 2, Options{}, nil)
	runReq := fmt.Sprintf(`{"config":"ssq+svw","bench":"gcc","insts":%d}`, testInsts)

	w := f.do("POST", "/v1/run", runReq, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("run HTTP %d: %s", w.Code, w.Body)
	}
	if !bytes.Equal(w.Body.Bytes(), refRunBody(t, "ssq+svw", "gcc")) {
		t.Fatal("run body differs from svwsim -json reference")
	}
	if h := w.Header().Get(api.CacheHeader); h != "miss" {
		t.Fatalf("first run %s=%q, want miss", api.CacheHeader, h)
	}
	// Repeat: same backend via affinity, served by its LRU.
	w2 := f.do("POST", "/v1/run", runReq, nil)
	if !bytes.Equal(w2.Body.Bytes(), w.Body.Bytes()) {
		t.Fatal("repeated run differs")
	}
	if h := w2.Header().Get(api.CacheHeader); h != api.CacheMemory {
		t.Fatalf("repeat run %s=%q, want memory (affinity broken)", api.CacheHeader, h)
	}
	// A case-insensitive alias routes and encodes identically.
	alias := fmt.Sprintf(`{"config":"SSQ+SVW","bench":"gcc","insts":%d}`, testInsts)
	w3 := f.do("POST", "/v1/run", alias, nil)
	if !bytes.Equal(w3.Body.Bytes(), w.Body.Bytes()) {
		t.Fatal("aliased config run differs")
	}
	if h := w3.Header().Get(api.CacheHeader); h != api.CacheMemory {
		t.Fatalf("aliased run %s=%q, want memory (canonicalization broke affinity)", api.CacheHeader, h)
	}

	for _, path := range []string{"/v1/configs", "/v1/benches"} {
		got := f.do("GET", path, "", nil)
		r, err := http.Get(f.backends[0].URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var want bytes.Buffer
		if _, err := want.ReadFrom(r.Body); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if !bytes.Equal(got.Body.Bytes(), want.Bytes()) {
			t.Fatalf("%s differs between coordinator and backend", path)
		}
	}
}

// TestClusterStudyProxy: study endpoints route through the fabric and
// return the backend's figure JSON verbatim, with repeats served by the
// same backend's study cache.
func TestClusterStudyProxy(t *testing.T) {
	f := newFabric(t, 2, Options{}, nil)
	path := fmt.Sprintf("/v1/studies/ssn?benches=gcc&bits=8,0&insts=%d", testInsts)
	w := f.do("GET", path, "", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("ssn HTTP %d: %s", w.Code, w.Body)
	}
	var ssn sim.SSNWidthJSON
	if err := json.Unmarshal(w.Body.Bytes(), &ssn); err != nil {
		t.Fatal(err)
	}
	if len(ssn.Bits) != 2 {
		t.Fatalf("ssn %+v", ssn)
	}
	before := f.stats(t)
	w2 := f.do("GET", path, "", nil)
	if !bytes.Equal(w2.Body.Bytes(), w.Body.Bytes()) {
		t.Fatal("repeated study differs")
	}
	after := f.stats(t)
	if hits := after.Cache.Hits - before.Cache.Hits; hits != 1 {
		t.Fatalf("study repeat got %d backend cache hits, want 1", hits)
	}
	// Backend validation errors proxy through verbatim.
	if w := f.do("GET", "/v1/studies/ladder?benches=gcc", "", nil); w.Code != http.StatusBadRequest {
		t.Errorf("ladder without fig: HTTP %d, want 400", w.Code)
	}
	if w := f.do("GET", "/v1/studies/nope", "", nil); w.Code != http.StatusNotFound {
		t.Errorf("unknown study: HTTP %d, want 404", w.Code)
	}
}

// TestClusterValidation: the coordinator enforces the same request
// contract as a single backend, before any fan-out.
func TestClusterValidation(t *testing.T) {
	f := newFabric(t, 2, Options{MaxSweepJobs: 4, MaxBodyBytes: 512}, nil)
	cases := []struct {
		method, path, body string
		code               int
	}{
		{"POST", "/v1/run", `{"config":"no-such","bench":"gcc"}`, http.StatusBadRequest},
		{"POST", "/v1/run", `{"config":"ssq","bench":"no-such"}`, http.StatusBadRequest},
		{"POST", "/v1/run", `{"config":`, http.StatusBadRequest},
		{"POST", "/v1/run", `{"config":"ssq","bench":"gcc","bogus":1}`, http.StatusBadRequest},
		{"POST", "/v1/sweep", `{"configs":[],"benches":["gcc"]}`, http.StatusBadRequest},
		{"POST", "/v1/sweep", `{"configs":["no-such"],"benches":["gcc"]}`, http.StatusBadRequest},
		{"POST", "/v1/sweep", `{"configs":["ssq","nlq","rle"],"benches":["gcc","twolf"]}`, http.StatusBadRequest},
		{"POST", "/v1/run", `{"config":"ssq","bench":"gcc","pad":"` + strings.Repeat("x", 600) + `"}`,
			http.StatusRequestEntityTooLarge},
	}
	for _, c := range cases {
		if w := f.do(c.method, c.path, c.body, nil); w.Code != c.code {
			t.Errorf("%s %s %q: HTTP %d, want %d", c.method, c.path, c.body, w.Code, c.code)
		}
	}
	if w := f.do("GET", "/v1/run", "", nil); w.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/run: HTTP %d, want 405", w.Code)
	}
	// No backend was consulted for any of these.
	st := f.stats(t)
	for _, b := range st.Cluster.Backends {
		if b.Requests != 0 {
			t.Errorf("backend %s saw %d requests from invalid client input", b.URL, b.Requests)
		}
	}
}

// TestNewRejectsBadPools: a coordinator without a valid pool is a
// configuration error, not a latent outage.
func TestNewRejectsBadPools(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Error("New with no backends succeeded")
	}
	if _, err := New(Options{Backends: []string{"http://a", "http://a"}}); err == nil {
		t.Error("New with duplicate backends succeeded")
	}
	if _, err := New(Options{Backends: []string{""}}); err == nil {
		t.Error("New with empty backend URL succeeded")
	}
}

// TestHealthzStates: ok with a healthy pool, degraded (503) when every
// backend is down, draining (503) once shutdown begins.
func TestHealthzStates(t *testing.T) {
	f := newFabric(t, 2, Options{}, nil)
	w := f.do("GET", "/v1/healthz", "", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("healthz HTTP %d", w.Code)
	}
	var h api.HealthResponse
	if err := json.Unmarshal(w.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.BackendsHealthy == nil || *h.BackendsHealthy != 2 || *h.BackendsTotal != 2 {
		t.Fatalf("healthz %+v", h)
	}

	for _, ts := range f.backends {
		ts.Close()
	}
	if n := f.c.ProbeAll(t.Context()); n != 0 {
		t.Fatalf("ProbeAll over closed backends: %d healthy", n)
	}
	if w := f.do("GET", "/v1/healthz", "", nil); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("all-down healthz HTTP %d, want 503", w.Code)
	}

	f.c.SetDraining(true)
	w = f.do("GET", "/v1/healthz", "", nil)
	if err := json.Unmarshal(w.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if w.Code != http.StatusServiceUnavailable || h.Status != "draining" {
		t.Fatalf("draining healthz HTTP %d status %q", w.Code, h.Status)
	}
}
