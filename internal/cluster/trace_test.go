package cluster

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"svwsim/internal/api"
)

// coordTrace looks one trace up on the coordinator's /debug/traces.
func coordTrace(t *testing.T, f *fabric, id string) api.TraceJSON {
	t.Helper()
	w := f.do("GET", "/debug/traces?id="+id, "", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("coordinator GET /debug/traces?id=%s: HTTP %d: %s", id, w.Code, w.Body.String())
	}
	var tj api.TraceJSON
	if err := json.Unmarshal(w.Body.Bytes(), &tj); err != nil {
		t.Fatal(err)
	}
	return tj
}

// backendTrace looks one trace up on a backend's /debug/traces over real
// HTTP, reporting whether that backend recorded the ID at all.
func backendTrace(t *testing.T, ts *httptest.Server, id string) (api.TraceJSON, bool) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/debug/traces?id=" + id)
	if err != nil {
		t.Fatalf("backend traces: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return api.TraceJSON{}, false
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("backend GET /debug/traces?id=%s: HTTP %d", id, resp.StatusCode)
	}
	var tj api.TraceJSON
	if err := json.NewDecoder(resp.Body).Decode(&tj); err != nil {
		t.Fatal(err)
	}
	return tj, true
}

func countSpans(tj api.TraceJSON) map[string]int {
	names := make(map[string]int)
	for _, sp := range tj.Spans {
		names[sp.Name]++
	}
	return names
}

// TestClusterTraceCorrelation is the tentpole's acceptance test: one
// client trace ID, sent with a sweep through the coordinator, shows up on
// the coordinator's /debug/traces (dispatch/attempt/merge spans) AND on
// the serving backends' /debug/traces with the stage spans — gate wait,
// store probe (with its tier), engine run — recorded under the same ID.
func TestClusterTraceCorrelation(t *testing.T) {
	f := newFabric(t, 2, Options{}, nil)
	req, _ := json.Marshal(api.SweepRequest{
		Configs: []string{"ssq", "ssq+svw"}, Benches: equivalenceBenches, Insts: testInsts})
	hdr := map[string]string{api.TraceHeader: "corr-sweep-1"}
	if w := f.do("POST", "/v1/sweep", string(req), hdr); w.Code != http.StatusOK {
		t.Fatalf("sweep: HTTP %d: %s", w.Code, w.Body.String())
	}

	// Coordinator side: 4 cells → 4 dispatches, each with at least one
	// attempt child, merged once.
	ct := coordTrace(t, f, "corr-sweep-1")
	if ct.Endpoint != "/v1/sweep" || !ct.Done {
		t.Fatalf("coordinator trace: endpoint=%s done=%v", ct.Endpoint, ct.Done)
	}
	names := countSpans(ct)
	if names["dispatch"] != 4 || names["attempt"] < 4 || names["merge"] != 1 {
		t.Fatalf("coordinator spans: %v", names)
	}
	for _, sp := range ct.Spans {
		if sp.Name == "attempt" && sp.Attrs["backend"] == "" {
			t.Fatalf("attempt span without backend attr: %v", sp.Attrs)
		}
	}

	// Backend side: every backend that served a cell recorded the same ID
	// with the stage spans; rendezvous may have put all cells on one
	// backend, but at least one must have it.
	found := 0
	for i, ts := range f.backends {
		bt, ok := backendTrace(t, ts, "corr-sweep-1")
		if !ok {
			continue
		}
		found++
		if bt.TraceID != "corr-sweep-1" || bt.Endpoint != "/v1/run" {
			t.Fatalf("backend %d trace: id=%s endpoint=%s", i, bt.TraceID, bt.Endpoint)
		}
		bn := countSpans(bt)
		for _, want := range []string{"store_probe", "gate_wait", "engine_run", "engine_job"} {
			if bn[want] == 0 {
				t.Fatalf("backend %d missing %s span: %v", i, want, bn)
			}
		}
		for _, sp := range bt.Spans {
			if sp.Name == "store_probe" && sp.Attrs["tier"] == "" {
				t.Fatalf("backend %d store_probe without tier attr", i)
			}
		}
	}
	if found == 0 {
		t.Fatal("no backend recorded the coordinator's trace ID")
	}
}

// TestRetryTraceFollowsToWinningBackend: the primary backend 503s, the
// job retries onto the fallback, and the fallback's trace carries the
// coordinator's trace ID; the coordinator's trace shows both attempts.
func TestRetryTraceFollowsToWinningBackend(t *testing.T) {
	f := newFabric(t, 2, Options{}, func(i int, h http.Handler) http.Handler {
		if i != 0 {
			return h
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/v1/run" {
				api.WriteError(w, http.StatusServiceUnavailable, "injected fault: backend down")
				return
			}
			h.ServeHTTP(w, r)
		})
	})

	// A job homed on the failing backend, so the first attempt 503s and
	// the retry walks to the healthy one.
	var cfg string
	for _, cname := range []string{"ssq", "nlq", "rle", "ssq+svw", "base-ssq", "base-nlq"} {
		key := jobKey(t, cname, "gcc")
		if rankURLs([]string{f.backends[0].URL, f.backends[1].URL}, key)[0] == f.backends[0].URL {
			cfg = cname
			break
		}
	}
	if cfg == "" {
		t.Skip("no probe config homed on the failing backend")
	}

	body, _ := json.Marshal(api.RunRequest{Config: cfg, Bench: "gcc", Insts: testInsts})
	hdr := map[string]string{api.TraceHeader: "retry-run-1"}
	if w := f.do("POST", "/v1/run", string(body), hdr); w.Code != http.StatusOK {
		t.Fatalf("run: HTTP %d: %s", w.Code, w.Body.String())
	}

	// Coordinator: one dispatch, two attempts — the 503 and the winner —
	// the second marked as a retry.
	ct := coordTrace(t, f, "retry-run-1")
	var failed, won, retries int
	for _, sp := range ct.Spans {
		if sp.Name != "attempt" {
			continue
		}
		switch sp.Attrs["status"] {
		case "503":
			failed++
		case "200":
			won++
			if sp.Attrs["backend"] != f.backends[1].URL {
				t.Fatalf("winning attempt on %s, want %s", sp.Attrs["backend"], f.backends[1].URL)
			}
		}
		if sp.Attrs["retry"] != "" {
			retries++
		}
	}
	if failed == 0 || won != 1 || retries == 0 {
		t.Fatalf("attempt spans: %d failed / %d won / %d retries; trace %+v", failed, won, retries, ct)
	}

	// The winning backend's own trace carries the same ID.
	bt, ok := backendTrace(t, f.backends[1], "retry-run-1")
	if !ok {
		t.Fatal("winning backend did not record the trace ID")
	}
	if bn := countSpans(bt); bn["engine_run"] == 0 {
		t.Fatalf("winning backend spans: %v", bn)
	}
	// The 503ing wrapper answered before svwd's tracer: no trace there.
	if _, ok := backendTrace(t, f.backends[0], "retry-run-1"); ok {
		t.Fatal("failed backend recorded a trace despite never reaching the daemon")
	}
}

// TestHedgeTraceMarksAbandonedAttempt: a straggling primary gets hedged;
// the dispatch span synchronously records winner=hedge/abandoned=primary,
// and the abandoned primary's attempt span eventually observes its
// cancellation and is marked outcome=abandoned (it may land after the
// request finishes — the ring keeps the live trace, so polling sees it).
func TestHedgeTraceMarksAbandonedAttempt(t *testing.T) {
	const stall = 400 * time.Millisecond
	f := newFabric(t, 2, Options{HedgeAfter: 20 * time.Millisecond}, func(i int, h http.Handler) http.Handler {
		if i != 0 {
			return h
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/v1/run" {
				select {
				case <-time.After(stall):
				case <-r.Context().Done():
					return
				}
			}
			h.ServeHTTP(w, r)
		})
	})

	var cfg string
	for _, cname := range []string{"ssq", "nlq", "rle", "ssq+svw", "base-ssq", "base-nlq"} {
		key := jobKey(t, cname, "gcc")
		if rankURLs([]string{f.backends[0].URL, f.backends[1].URL}, key)[0] == f.backends[0].URL {
			cfg = cname
			break
		}
	}
	if cfg == "" {
		t.Skip("no probe config homed on the slow backend")
	}

	body, _ := json.Marshal(api.RunRequest{Config: cfg, Bench: "gcc", Insts: testInsts})
	hdr := map[string]string{api.TraceHeader: "hedge-run-1"}
	if w := f.do("POST", "/v1/run", string(body), hdr); w.Code != http.StatusOK {
		t.Fatalf("run: HTTP %d: %s", w.Code, w.Body.String())
	}

	// Synchronous markers, written before dispatch returned.
	ct := coordTrace(t, f, "hedge-run-1")
	var dispatch api.SpanJSON
	var haveDispatch bool
	for _, sp := range ct.Spans {
		if sp.Name == "dispatch" {
			dispatch, haveDispatch = sp, true
		}
	}
	if !haveDispatch {
		t.Fatalf("no dispatch span: %+v", ct)
	}
	if dispatch.Attrs["hedged"] != "true" || dispatch.Attrs["winner"] != "hedge" ||
		dispatch.Attrs["abandoned"] != "primary" {
		t.Fatalf("dispatch attrs: %v", dispatch.Attrs)
	}
	if dispatch.Attrs["backend"] != f.backends[1].URL {
		t.Fatalf("winning backend attr %q, want the fast one %q",
			dispatch.Attrs["backend"], f.backends[1].URL)
	}

	// The hedge winner's spans carry the trace ID on its backend.
	if _, ok := backendTrace(t, f.backends[1], "hedge-run-1"); !ok {
		t.Fatal("hedge-winning backend did not record the trace ID")
	}

	// The losing primary attempt observes its cancellation asynchronously:
	// poll the coordinator's ring until the abandoned marking lands.
	deadline := time.Now().Add(5 * time.Second)
	for {
		ct := coordTrace(t, f, "hedge-run-1")
		abandoned := false
		for _, sp := range ct.Spans {
			if sp.Name == "attempt" && sp.Attrs["walk"] == "primary" &&
				sp.Attrs["outcome"] == "abandoned" {
				abandoned = true
			}
		}
		if abandoned {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("primary attempt never marked abandoned; trace %+v", ct)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestClusterSlowLogAndCounter: with slow logging at threshold 0 every
// traced coordinator request emits one slow_request line and bumps
// svw_slow_requests_total on the coordinator's /metrics.
func TestClusterSlowLogAndCounter(t *testing.T) {
	var buf syncBuffer
	f := newFabric(t, 2, Options{
		SlowLogEnabled:   true,
		SlowLogThreshold: 0,
		SlowLogWriter:    &buf,
	}, nil)
	body, _ := json.Marshal(api.RunRequest{Config: "ssq", Bench: "gcc", Insts: testInsts})
	if w := f.do("POST", "/v1/run", string(body), nil); w.Code != http.StatusOK {
		t.Fatalf("run: HTTP %d", w.Code)
	}
	var got struct {
		Msg      string `json:"msg"`
		Endpoint string `json:"endpoint"`
	}
	if err := json.Unmarshal([]byte(buf.String()), &got); err != nil {
		t.Fatalf("slow line not JSON: %v\n%s", err, buf.String())
	}
	if got.Msg != "slow_request" || got.Endpoint != "/v1/run" {
		t.Fatalf("slow line: %+v", got)
	}
	w := f.do("GET", "/metrics", "", nil)
	if want := `svw_slow_requests_total{endpoint="/v1/run"} 1`; !strings.Contains(w.Body.String(), want) {
		t.Fatalf("coordinator metrics missing %q", want)
	}
}

// syncBuffer is a mutex-guarded byte buffer for log capture under -race.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
