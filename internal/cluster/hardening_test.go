package cluster

import (
	"fmt"
	"net/http"
	"strings"
	"testing"

	"svwsim/internal/api"
)

// TestClusterMetricsEndpoint exercises svwctl's scrape surface: the shared
// per-endpoint request series plus the coordinator's dispatch counters and
// the per-backend breakdown.
func TestClusterMetricsEndpoint(t *testing.T) {
	f := newFabric(t, 2, Options{}, nil)
	body := fmt.Sprintf(`{"config":"ssq","bench":"gcc","insts":%d}`, testInsts)
	if w := f.do("POST", "/v1/run", body, nil); w.Code != http.StatusOK {
		t.Fatalf("run HTTP %d: %s", w.Code, w.Body)
	}

	w := f.do("GET", "/metrics", "", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("metrics HTTP %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type %q, want text/plain exposition", ct)
	}
	text := w.Body.String()
	for _, want := range []string{
		`svw_http_requests_total{code="200",endpoint="/v1/run"} 1`,
		`svw_http_request_seconds_bucket{endpoint="/v1/run",le="`,
		"\nsvwctl_runs_total 1\n",
		"\nsvwctl_jobs_total 1\n",
		"\nsvwctl_job_errors_total 0\n",
		`svwctl_backend_requests_total{backend="`,
		`svwctl_backend_in_flight{backend="`,
		`svwctl_backend_healthy{backend="`,
		`svwctl_backend_health_flaps_total{backend="`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("scrape missing %q\n%s", want, text)
		}
	}
}

// TestClusterDeadlineReturns504 pins coordinator deadline propagation: a
// budget the backends cannot meet yields 504, and the aborted forward must
// not be mistaken for a backend failure (no health penalty).
func TestClusterDeadlineReturns504(t *testing.T) {
	f := newFabric(t, 2, Options{}, nil)
	// ~100k instructions: far beyond a 1ms budget on any hardware, small
	// enough that the backend finishes promptly at teardown.
	body := `{"config":"ssq","bench":"gcc","insts":100000}`
	w := f.do("POST", "/v1/run", body, map[string]string{api.DeadlineHeader: "1"})
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("run HTTP %d, want 504 (%s)", w.Code, w.Body)
	}
	if got := f.c.healthyCount(); got != 2 {
		t.Fatalf("%d backends healthy after a deadline abort, want 2", got)
	}
	w = f.do("POST", "/v1/run", body, map[string]string{api.DeadlineHeader: "nope"})
	if w.Code != http.StatusBadRequest {
		t.Fatalf("invalid deadline header: HTTP %d, want 400", w.Code)
	}
}
