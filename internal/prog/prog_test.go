package prog

import (
	"testing"

	"svwsim/internal/isa"
)

func TestLabelResolutionForwardAndBackward(t *testing.T) {
	b := NewBuilder("t")
	b.Label("top")  // idx 0
	b.Addi(1, 1, 1) // 0
	b.Bne(1, "fwd") // 1 -> idx 3: disp = 1
	b.Addi(2, 2, 1) // 2
	b.Label("fwd")  //
	b.Beq(2, "top") // 3 -> idx 0: disp = -4
	b.Halt()        // 4
	p := b.Build()
	bne := isa.Decode(p.Code[1])
	if bne.Imm != 1 {
		t.Errorf("forward disp = %d, want 1", bne.Imm)
	}
	beq := isa.Decode(p.Code[3])
	if beq.Imm != -4 {
		t.Errorf("backward disp = %d, want -4", beq.Imm)
	}
	// Branch target arithmetic agrees with the label position.
	pc := p.Base + 4*1
	if got := bne.BranchTarget(pc); got != p.Base+4*3 {
		t.Errorf("target = %#x", got)
	}
}

func TestUndefinedLabelPanics(t *testing.T) {
	b := NewBuilder("t")
	b.Br("nowhere")
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	b.Build()
}

func TestDuplicateLabelPanics(t *testing.T) {
	b := NewBuilder("t")
	b.Label("x")
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	b.Label("x")
}

func TestMovImmValues(t *testing.T) {
	cases := []uint64{0, 1, 100, 0x7FFF, 0x8000, 0xFFFF, 0x10000,
		0x12345678, 0x7FFFFFFF, DefaultDataBase, DefaultDataBase + 0xC00000}
	for _, v := range cases {
		b := NewBuilder("t")
		b.MovImm(5, v)
		b.Halt()
		p := b.Build()
		// Execute by hand: decode and apply lda/ldah semantics.
		var r5 uint64
		for _, w := range p.Code {
			in := isa.Decode(w)
			switch in.Op {
			case isa.OpLda:
				base := uint64(0)
				if in.Ra == 5 {
					base = r5
				}
				r5 = base + uint64(in.Imm)
			case isa.OpLdah:
				base := uint64(0)
				if in.Ra == 5 {
					base = r5
				}
				r5 = base + uint64(in.Imm<<16)
			}
		}
		if uint32(r5) != uint32(v) {
			t.Errorf("MovImm(%#x) produced %#x", v, r5)
		}
	}
}

func TestDataSegments(t *testing.T) {
	b := NewBuilder("t")
	b.Halt()
	b.DataQuads(DefaultDataBase, []uint64{0x1122334455667788, 42})
	b.Data(DefaultDataBase+100, []byte{9, 8, 7})
	p := b.Build()
	m := p.NewImage()
	if v := m.Read(DefaultDataBase, 8); v != 0x1122334455667788 {
		t.Errorf("quad 0 = %#x", v)
	}
	if v := m.Read(DefaultDataBase+8, 8); v != 42 {
		t.Errorf("quad 1 = %d", v)
	}
	if v := m.ByteAt(DefaultDataBase + 101); v != 8 {
		t.Errorf("byte = %d", v)
	}
}

func TestNewImageIndependent(t *testing.T) {
	b := NewBuilder("t")
	b.Halt()
	b.DataQuads(DefaultDataBase, []uint64{7})
	p := b.Build()
	m1, m2 := p.NewImage(), p.NewImage()
	m1.Write(DefaultDataBase, 8, 99)
	if m2.Read(DefaultDataBase, 8) != 7 {
		t.Error("images share state")
	}
}

func TestCodePlacement(t *testing.T) {
	b := NewBuilder("t")
	b.Nop()
	b.Halt()
	p := b.Build()
	m := p.NewImage()
	if isa.Decode(m.Read32(p.Entry)).Op != isa.OpNop {
		t.Error("entry instruction")
	}
	if isa.Decode(m.Read32(p.Entry+4)).Op != isa.OpHalt {
		t.Error("second instruction")
	}
}

func TestPCAndLen(t *testing.T) {
	b := NewBuilder("t")
	if b.PC() != DefaultCodeBase || b.Len() != 0 {
		t.Error("initial PC/Len")
	}
	b.Nop()
	if b.PC() != DefaultCodeBase+4 || b.Len() != 1 {
		t.Error("after one instruction")
	}
}

func TestUniqueLabels(t *testing.T) {
	b := NewBuilder("t")
	l1, l2 := b.UniqueLabel("x"), b.UniqueLabel("x")
	if l1 == l2 {
		t.Error("unique labels collide")
	}
}
