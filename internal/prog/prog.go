// Package prog builds executable programs for the emulator: an
// assembler-like Builder with labels, branches and data segments, producing a
// memory image plus entry point.
package prog

import (
	"fmt"

	"svwsim/internal/isa"
	"svwsim/internal/memimage"
)

// Default layout. Code and data live far apart so instruction and data
// accesses never alias in the data cache model.
const (
	DefaultCodeBase = 0x0000_1000
	DefaultDataBase = 0x0100_0000
	DefaultStackTop = 0x7fff_f000
)

// Program is a built, loadable program.
type Program struct {
	Name  string
	Entry uint64
	Code  []uint32 // encoded instructions at CodeBase
	Base  uint64   // CodeBase
	Data  []Segment

	decoded []isa.Inst // Decode(Code[i]), precomputed at Build
}

// Decoded returns the decode of each code word: decoded[i] is
// isa.Decode(Code[i]), the instruction at Base+4i. Emulators install it as
// a decode table (emu.Emulator.SetDecodeTable) so hot loop bodies are never
// re-decoded. The slice is shared and must not be modified.
func (p *Program) Decoded() []isa.Inst {
	if p.decoded == nil && len(p.Code) > 0 {
		// Programs constructed literally (tests) rather than via Build.
		p.decoded = decodeAll(p.Code)
	}
	return p.decoded
}

func decodeAll(code []uint32) []isa.Inst {
	out := make([]isa.Inst, len(code))
	for i, w := range code {
		out[i] = isa.Decode(w)
	}
	return out
}

// Segment is an initialized data region.
type Segment struct {
	Addr  uint64
	Bytes []byte
}

// NewImage instantiates a fresh memory image holding the program. Each call
// returns an independent image, so one Program can seed many runs.
func (p *Program) NewImage() *memimage.Image {
	m := memimage.New()
	for i, w := range p.Code {
		m.Write32(p.Base+uint64(4*i), w)
	}
	for _, s := range p.Data {
		m.WriteBytes(s.Addr, s.Bytes)
	}
	return m
}

// Builder assembles a program. Methods panic on malformed input (unknown
// label, immediate overflow) because programs are constructed by in-repo
// generators; a panic is a generator bug, not a runtime condition.
type Builder struct {
	name    string
	base    uint64
	insts   []isa.Inst
	labels  map[string]int // label -> instruction index
	fixups  []fixup
	data    []Segment
	nextLbl int
}

type fixup struct {
	instIdx int
	label   string
}

// NewBuilder returns a Builder assembling at DefaultCodeBase.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, base: DefaultCodeBase, labels: make(map[string]int)}
}

// PC returns the address the next emitted instruction will occupy.
func (b *Builder) PC() uint64 { return b.base + uint64(4*len(b.insts)) }

// Len returns the number of instructions emitted so far.
func (b *Builder) Len() int { return len(b.insts) }

// Label binds name to the next emitted instruction.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		panic("prog: duplicate label " + name)
	}
	b.labels[name] = len(b.insts)
}

// UniqueLabel returns a fresh label name with the given prefix.
func (b *Builder) UniqueLabel(prefix string) string {
	b.nextLbl++
	return fmt.Sprintf("%s.%d", prefix, b.nextLbl)
}

// Emit appends a raw instruction.
func (b *Builder) Emit(i isa.Inst) {
	// Validate encodability immediately: errors surface at build site.
	isa.MustEncode(i)
	b.insts = append(b.insts, i)
}

func (b *Builder) emitBranch(i isa.Inst, label string) {
	b.fixups = append(b.fixups, fixup{len(b.insts), label})
	b.insts = append(b.insts, i)
}

// Data places raw bytes at addr.
func (b *Builder) Data(addr uint64, bytes []byte) {
	b.data = append(b.data, Segment{Addr: addr, Bytes: bytes})
}

// DataQuads places 64-bit little-endian values at addr.
func (b *Builder) DataQuads(addr uint64, vals []uint64) {
	buf := make([]byte, 8*len(vals))
	for i, v := range vals {
		for j := 0; j < 8; j++ {
			buf[8*i+j] = byte(v >> (8 * j))
		}
	}
	b.Data(addr, buf)
}

// Build resolves labels and returns the program.
func (b *Builder) Build() *Program {
	for _, f := range b.fixups {
		target, ok := b.labels[f.label]
		if !ok {
			panic("prog: undefined label " + f.label)
		}
		// disp counts instruction words from the instruction after the branch.
		b.insts[f.instIdx].Imm = int64(target - f.instIdx - 1)
		isa.MustEncode(b.insts[f.instIdx])
	}
	code := make([]uint32, len(b.insts))
	for i, inst := range b.insts {
		code[i] = isa.MustEncode(inst)
	}
	return &Program{
		Name:    b.name,
		Entry:   b.base,
		Base:    b.base,
		Code:    code,
		Data:    b.data,
		decoded: decodeAll(code),
	}
}

// --- Instruction helpers -------------------------------------------------

// Nop emits a no-op.
func (b *Builder) Nop() { b.Emit(isa.Inst{Op: isa.OpNop}) }

// Halt emits a halt.
func (b *Builder) Halt() { b.Emit(isa.Inst{Op: isa.OpHalt}) }

// Add emits rd = ra + rb.
func (b *Builder) Add(rd, ra, rb isa.Reg) {
	b.Emit(isa.Inst{Op: isa.OpAdd, Rd: rd, Ra: ra, Rb: rb})
}

// Sub emits rd = ra - rb.
func (b *Builder) Sub(rd, ra, rb isa.Reg) {
	b.Emit(isa.Inst{Op: isa.OpSub, Rd: rd, Ra: ra, Rb: rb})
}

// Mul emits rd = ra * rb.
func (b *Builder) Mul(rd, ra, rb isa.Reg) {
	b.Emit(isa.Inst{Op: isa.OpMul, Rd: rd, Ra: ra, Rb: rb})
}

// And emits rd = ra & rb.
func (b *Builder) And(rd, ra, rb isa.Reg) {
	b.Emit(isa.Inst{Op: isa.OpAnd, Rd: rd, Ra: ra, Rb: rb})
}

// Or emits rd = ra | rb.
func (b *Builder) Or(rd, ra, rb isa.Reg) {
	b.Emit(isa.Inst{Op: isa.OpOr, Rd: rd, Ra: ra, Rb: rb})
}

// Xor emits rd = ra ^ rb.
func (b *Builder) Xor(rd, ra, rb isa.Reg) {
	b.Emit(isa.Inst{Op: isa.OpXor, Rd: rd, Ra: ra, Rb: rb})
}

// Sll emits rd = ra << rb.
func (b *Builder) Sll(rd, ra, rb isa.Reg) {
	b.Emit(isa.Inst{Op: isa.OpSll, Rd: rd, Ra: ra, Rb: rb})
}

// Srl emits rd = ra >> rb (logical).
func (b *Builder) Srl(rd, ra, rb isa.Reg) {
	b.Emit(isa.Inst{Op: isa.OpSrl, Rd: rd, Ra: ra, Rb: rb})
}

// CmpEq emits rd = (ra == rb).
func (b *Builder) CmpEq(rd, ra, rb isa.Reg) {
	b.Emit(isa.Inst{Op: isa.OpCmpEq, Rd: rd, Ra: ra, Rb: rb})
}

// CmpLt emits rd = (ra < rb), signed.
func (b *Builder) CmpLt(rd, ra, rb isa.Reg) {
	b.Emit(isa.Inst{Op: isa.OpCmpLt, Rd: rd, Ra: ra, Rb: rb})
}

// CmpUlt emits rd = (ra < rb), unsigned.
func (b *Builder) CmpUlt(rd, ra, rb isa.Reg) {
	b.Emit(isa.Inst{Op: isa.OpCmpUlt, Rd: rd, Ra: ra, Rb: rb})
}

// Addi emits rd = ra + imm.
func (b *Builder) Addi(rd, ra isa.Reg, imm int64) {
	b.Emit(isa.Inst{Op: isa.OpAddi, Rd: rd, Ra: ra, Imm: imm})
}

// Andi emits rd = ra & imm.
func (b *Builder) Andi(rd, ra isa.Reg, imm int64) {
	b.Emit(isa.Inst{Op: isa.OpAndi, Rd: rd, Ra: ra, Imm: imm})
}

// Ori emits rd = ra | imm.
func (b *Builder) Ori(rd, ra isa.Reg, imm int64) {
	b.Emit(isa.Inst{Op: isa.OpOri, Rd: rd, Ra: ra, Imm: imm})
}

// Xori emits rd = ra ^ imm.
func (b *Builder) Xori(rd, ra isa.Reg, imm int64) {
	b.Emit(isa.Inst{Op: isa.OpXori, Rd: rd, Ra: ra, Imm: imm})
}

// Slli emits rd = ra << imm.
func (b *Builder) Slli(rd, ra isa.Reg, imm int64) {
	b.Emit(isa.Inst{Op: isa.OpSlli, Rd: rd, Ra: ra, Imm: imm})
}

// Srli emits rd = ra >> imm (logical).
func (b *Builder) Srli(rd, ra isa.Reg, imm int64) {
	b.Emit(isa.Inst{Op: isa.OpSrli, Rd: rd, Ra: ra, Imm: imm})
}

// CmpLti emits rd = (ra < imm), signed.
func (b *Builder) CmpLti(rd, ra isa.Reg, imm int64) {
	b.Emit(isa.Inst{Op: isa.OpCmpLti, Rd: rd, Ra: ra, Imm: imm})
}

// Lda emits rd = ra + imm.
func (b *Builder) Lda(rd, ra isa.Reg, imm int64) {
	b.Emit(isa.Inst{Op: isa.OpLda, Rd: rd, Ra: ra, Imm: imm})
}

// Ldah emits rd = ra + (imm << 16).
func (b *Builder) Ldah(rd, ra isa.Reg, imm int64) {
	b.Emit(isa.Inst{Op: isa.OpLdah, Rd: rd, Ra: ra, Imm: imm})
}

// MovImm loads an arbitrary 32-bit constant using Ldah+Lda.
func (b *Builder) MovImm(rd isa.Reg, v uint64) {
	lo := int64(int16(v))
	hi := int64(int32(v)-int32(lo)) >> 16
	if hi != 0 {
		b.Ldah(rd, isa.Zero, hi)
		b.Lda(rd, rd, lo)
	} else {
		b.Lda(rd, isa.Zero, lo)
	}
}

// Mov copies ra into rd.
func (b *Builder) Mov(rd, ra isa.Reg) { b.Add(rd, ra, isa.Zero) }

// Ldq emits rd = mem64[ra+off].
func (b *Builder) Ldq(rd isa.Reg, off int64, ra isa.Reg) {
	b.Emit(isa.Inst{Op: isa.OpLdq, Rd: rd, Ra: ra, Imm: off})
}

// Ldl emits rd = sext(mem32[ra+off]).
func (b *Builder) Ldl(rd isa.Reg, off int64, ra isa.Reg) {
	b.Emit(isa.Inst{Op: isa.OpLdl, Rd: rd, Ra: ra, Imm: off})
}

// Ldw emits rd = zext(mem16[ra+off]).
func (b *Builder) Ldw(rd isa.Reg, off int64, ra isa.Reg) {
	b.Emit(isa.Inst{Op: isa.OpLdw, Rd: rd, Ra: ra, Imm: off})
}

// Ldb emits rd = zext(mem8[ra+off]).
func (b *Builder) Ldb(rd isa.Reg, off int64, ra isa.Reg) {
	b.Emit(isa.Inst{Op: isa.OpLdb, Rd: rd, Ra: ra, Imm: off})
}

// Stq emits mem64[ra+off] = rs.
func (b *Builder) Stq(rs isa.Reg, off int64, ra isa.Reg) {
	b.Emit(isa.Inst{Op: isa.OpStq, Rb: rs, Ra: ra, Imm: off})
}

// Stl emits mem32[ra+off] = rs.
func (b *Builder) Stl(rs isa.Reg, off int64, ra isa.Reg) {
	b.Emit(isa.Inst{Op: isa.OpStl, Rb: rs, Ra: ra, Imm: off})
}

// Stw emits mem16[ra+off] = rs.
func (b *Builder) Stw(rs isa.Reg, off int64, ra isa.Reg) {
	b.Emit(isa.Inst{Op: isa.OpStw, Rb: rs, Ra: ra, Imm: off})
}

// Stb emits mem8[ra+off] = rs.
func (b *Builder) Stb(rs isa.Reg, off int64, ra isa.Reg) {
	b.Emit(isa.Inst{Op: isa.OpStb, Rb: rs, Ra: ra, Imm: off})
}

// Beq emits "branch to label if ra == 0".
func (b *Builder) Beq(ra isa.Reg, label string) {
	b.emitBranch(isa.Inst{Op: isa.OpBeq, Ra: ra}, label)
}

// Bne emits "branch to label if ra != 0".
func (b *Builder) Bne(ra isa.Reg, label string) {
	b.emitBranch(isa.Inst{Op: isa.OpBne, Ra: ra}, label)
}

// Blt emits "branch to label if ra < 0", signed.
func (b *Builder) Blt(ra isa.Reg, label string) {
	b.emitBranch(isa.Inst{Op: isa.OpBlt, Ra: ra}, label)
}

// Bge emits "branch to label if ra >= 0", signed.
func (b *Builder) Bge(ra isa.Reg, label string) {
	b.emitBranch(isa.Inst{Op: isa.OpBge, Ra: ra}, label)
}

// Br emits an unconditional branch to label.
func (b *Builder) Br(label string) {
	b.emitBranch(isa.Inst{Op: isa.OpBr}, label)
}

// Bsr emits a call: rd = PC+4, branch to label.
func (b *Builder) Bsr(rd isa.Reg, label string) {
	b.emitBranch(isa.Inst{Op: isa.OpBsr, Rd: rd}, label)
}

// Jmp emits rd = PC+4; goto (ra). With rd == Zero this is a return.
func (b *Builder) Jmp(rd, ra isa.Reg) {
	b.Emit(isa.Inst{Op: isa.OpJmp, Rd: rd, Ra: ra})
}

// Ret emits a return through ra.
func (b *Builder) Ret(ra isa.Reg) { b.Jmp(isa.Zero, ra) }
