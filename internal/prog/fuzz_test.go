package prog_test

import (
	"testing"

	"svwsim/internal/emu"
	"svwsim/internal/isa"
	"svwsim/internal/prog"
)

// FuzzProgBuilder drives the assembler through byte-script programs that
// exercise its edge cases — forward and backward branches, labels defined
// far from their uses, interleaved data segments, memory ops — and asserts
// the invariants Build promises: every emitted word round-trips through the
// encoder, every resolved branch lands inside the code image, and the built
// program executes on the emulator without decoding garbage.
func FuzzProgBuilder(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 1, 0, 2, 0, 4, 8, 5, 3, 6, 2, 1, 0, 3, 1})
	f.Add([]byte{2, 0, 2, 1, 2, 2, 2, 3, 1, 0, 1, 0, 1, 0, 1, 0})
	f.Add([]byte{6, 0, 6, 1, 6, 2, 4, 0, 4, 1, 7, 7, 0, 255, 5, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		const nLabels = 4
		b := prog.NewBuilder("fuzz")
		reg := func(v byte) isa.Reg { return isa.Reg(1 + v%5) }

		// Base register for memory ops points at the data region.
		b.MovImm(6, prog.DefaultDataBase)

		var defined [nLabels]bool
		defineNext := func() {
			for k := 0; k < nLabels; k++ {
				if !defined[k] {
					defined[k] = true
					b.Label(label(k))
					return
				}
			}
		}

		steps := len(data) / 2
		if steps > 128 {
			steps = 128
		}
		for i := 0; i < steps; i++ {
			op, arg := data[2*i], data[2*i+1]
			switch op % 8 {
			case 0:
				b.Addi(reg(arg), reg(arg>>4), int64(int8(arg)))
			case 1:
				defineNext()
			case 2:
				b.Bne(reg(arg), label(int(arg)%nLabels))
			case 3:
				b.Beq(reg(arg), label(int(arg)%nLabels))
			case 4:
				b.Ldq(reg(arg), int64(arg%64)*8, 6)
			case 5:
				b.Stq(reg(arg), int64(arg%64)*8, 6)
			case 6:
				vals := make([]uint64, int(arg%4))
				for j := range vals {
					vals[j] = uint64(arg) * uint64(j+1)
				}
				b.DataQuads(prog.DefaultDataBase+uint64(arg%8)*0x1000, vals)
			case 7:
				b.Xori(reg(arg), reg(arg>>4), int64(arg))
			}
		}
		// Any label still undefined anchors past the last branch so every
		// fixup resolves (forward references to the program's tail).
		for k := 0; k < nLabels; k++ {
			if !defined[k] {
				defined[k] = true
				b.Label(label(k))
			}
		}
		b.Halt()
		p := b.Build()

		// Decode/encode round trip and branch-target containment.
		codeEnd := p.Base + 4*uint64(len(p.Code))
		for i, w := range p.Code {
			inst := isa.Decode(w)
			if got := p.Decoded()[i]; got != inst {
				t.Fatalf("Decoded()[%d] = %+v, want %+v", i, got, inst)
			}
			pc := p.Base + 4*uint64(i)
			if inst.IsCondBranch() || inst.IsUncondDirect() {
				tgt := inst.BranchTarget(pc)
				if tgt < p.Base || tgt >= codeEnd {
					t.Fatalf("branch at %#x targets %#x outside code [%#x,%#x)",
						pc, tgt, p.Base, codeEnd)
				}
			}
		}

		// The built program must execute without decoding garbage; looping
		// forever is legitimate program behavior, so the run is bounded.
		e := emu.New(p.NewImage(), p.Entry)
		for i := 0; i < 1000 && !e.Halted(); i++ {
			if _, err := e.Step(); err != nil {
				t.Fatalf("emulation: %v", err)
			}
		}
	})
}

func label(k int) string { return []string{"L0", "L1", "L2", "L3"}[k] }
