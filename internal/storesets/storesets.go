// Package storesets implements the store-set memory dependence predictor of
// Chrysos and Emer (ISCA-25), the mechanism both paper configurations use to
// manage load speculation.
//
// The predictor has two tables: the Store Set ID Table (SSIT), indexed by
// instruction PC, mapping loads and stores to a store-set; and the Last
// Fetched Store Table (LFST), mapping a store-set to the youngest in-flight
// store in that set. A load renames to a dependence on its set's last fetched
// store; stores in a set are serialized behind one another.
//
// Training requires a (load PC, store PC) pair. The baseline machine obtains
// the store PC directly from the violating LQ search. The non-associative LQ
// has no such search; per the paper it recovers the store PC from the SPCT
// (store PC table) using the violating load's address.
package storesets

// Config sizes the predictor.
type Config struct {
	SSITEntries int
	LFSTEntries int
	// ClearInterval is the cyclic-clearing period in cycles (0 disables).
	// Store-sets only ever grow and merge; without periodic clearing a few
	// early violations can permanently serialize unrelated instructions
	// (Chrysos & Emer clear cyclically for exactly this reason).
	ClearInterval uint64
}

// DefaultConfig matches a standard store-sets deployment.
func DefaultConfig() Config {
	return Config{SSITEntries: 4096, LFSTEntries: 1024, ClearInterval: 30_000}
}

const invalidSet = -1

// StoreSets is the predictor state.
type StoreSets struct {
	cfg  Config
	ssit []int32

	lfstSeq   []uint64 // seq of last fetched store in the set
	lfstValid []bool

	nextSet int32

	// Stats
	Trainings, Merges, LoadDeps, StoreDeps uint64
}

// New builds an empty predictor.
func New(cfg Config) *StoreSets {
	s := &StoreSets{
		cfg:       cfg,
		ssit:      make([]int32, cfg.SSITEntries),
		lfstSeq:   make([]uint64, cfg.LFSTEntries),
		lfstValid: make([]bool, cfg.LFSTEntries),
	}
	for i := range s.ssit {
		s.ssit[i] = invalidSet
	}
	return s
}

func (s *StoreSets) index(pc uint64) int {
	return int(pc>>2) & (s.cfg.SSITEntries - 1)
}

// SetOf returns the store-set of pc, or -1.
func (s *StoreSets) SetOf(pc uint64) int32 { return s.ssit[s.index(pc)] }

// RenameLoad is called when a load renames. It returns the sequence number of
// the store the load must wait for, if any.
func (s *StoreSets) RenameLoad(pc uint64) (dep uint64, ok bool) {
	set := s.ssit[s.index(pc)]
	if set == invalidSet {
		return 0, false
	}
	if !s.lfstValid[set] {
		return 0, false
	}
	s.LoadDeps++
	return s.lfstSeq[set], true
}

// RenameStore is called when a store renames. It returns the sequence number
// of the previous store in the same set the new store must order behind (for
// intra-set store serialization), and records the new store as last fetched.
// setOut is the store's set (-1 if none); the caller passes it back to
// StoreRetired/StoreSquashed.
func (s *StoreSets) RenameStore(pc uint64, seq uint64) (dep uint64, depOK bool, setOut int32) {
	set := s.ssit[s.index(pc)]
	if set == invalidSet {
		return 0, false, invalidSet
	}
	if s.lfstValid[set] {
		dep, depOK = s.lfstSeq[set], true
		s.StoreDeps++
	}
	s.lfstSeq[set] = seq
	s.lfstValid[set] = true
	return dep, depOK, set
}

// StoreExecuted clears the store's LFST entry once its address and data are
// known: later loads need not wait on it through the predictor.
func (s *StoreSets) StoreExecuted(set int32, seq uint64) {
	if set != invalidSet && s.lfstValid[set] && s.lfstSeq[set] == seq {
		s.lfstValid[set] = false
	}
}

// StoreSquashed removes a squashed store from the LFST.
func (s *StoreSets) StoreSquashed(set int32, seq uint64) {
	s.StoreExecuted(set, seq)
}

// Train records a memory-ordering violation between a load and a store,
// merging or creating store-sets per the Chrysos-Emer rules.
func (s *StoreSets) Train(loadPC, storePC uint64) {
	if storePC == 0 {
		return // SPCT had no record; store-blind, nothing to train precisely
	}
	s.Trainings++
	li, si := s.index(loadPC), s.index(storePC)
	ls, ss := s.ssit[li], s.ssit[si]
	switch {
	case ls == invalidSet && ss == invalidSet:
		set := s.allocSet()
		s.ssit[li], s.ssit[si] = set, set
	case ls != invalidSet && ss == invalidSet:
		s.ssit[si] = ls
	case ls == invalidSet && ss != invalidSet:
		s.ssit[li] = ss
	case ls != ss:
		// Merge: both adopt the smaller set id (declining-set rule).
		s.Merges++
		set := ls
		if ss < set {
			set = ss
		}
		s.ssit[li], s.ssit[si] = set, set
	}
}

func (s *StoreSets) allocSet() int32 {
	set := s.nextSet
	s.nextSet = (s.nextSet + 1) % int32(s.cfg.LFSTEntries)
	s.lfstValid[set] = false
	return set
}

// FlushInflight invalidates every LFST entry while keeping the SSIT's
// trained set assignments. The LFST names live store sequence numbers; when
// a sampled-simulation window ends, those stores no longer exist, but the
// PC-to-set training remains valid for the next window.
func (s *StoreSets) FlushInflight() {
	for i := range s.lfstValid {
		s.lfstValid[i] = false
	}
}

// ResetStats zeroes the predictor's event counters (trained state untouched).
func (s *StoreSets) ResetStats() {
	s.Trainings, s.Merges, s.LoadDeps, s.StoreDeps = 0, 0, 0, 0
}

// Clear empties the predictor (used by periodic-reset experiments).
func (s *StoreSets) Clear() {
	for i := range s.ssit {
		s.ssit[i] = invalidSet
	}
	for i := range s.lfstValid {
		s.lfstValid[i] = false
	}
}
