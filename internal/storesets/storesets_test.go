package storesets

import "testing"

func newSS() *StoreSets { return New(DefaultConfig()) }

func TestUntrainedPredictsNothing(t *testing.T) {
	s := newSS()
	if _, ok := s.RenameLoad(0x1000); ok {
		t.Error("untrained load should not depend on anything")
	}
	if _, ok, set := s.RenameStore(0x2000, 1); ok || set != -1 {
		t.Error("untrained store should not join a set")
	}
}

func TestTrainingCreatesDependence(t *testing.T) {
	s := newSS()
	loadPC, storePC := uint64(0x1000), uint64(0x2000)
	s.Train(loadPC, storePC)
	// The store renames first, entering the LFST.
	_, _, set := s.RenameStore(storePC, 7)
	if set == -1 {
		t.Fatal("trained store has no set")
	}
	dep, ok := s.RenameLoad(loadPC)
	if !ok || dep != 7 {
		t.Fatalf("load dep = %d/%v, want 7", dep, ok)
	}
}

func TestStoreExecutedClearsLFST(t *testing.T) {
	s := newSS()
	s.Train(0x1000, 0x2000)
	_, _, set := s.RenameStore(0x2000, 7)
	s.StoreExecuted(set, 7)
	if _, ok := s.RenameLoad(0x1000); ok {
		t.Error("executed store should not gate loads")
	}
}

func TestLFSTTracksYoungestStore(t *testing.T) {
	s := newSS()
	s.Train(0x1000, 0x2000)
	s.RenameStore(0x2000, 7)
	s.RenameStore(0x2000, 9)
	dep, ok := s.RenameLoad(0x1000)
	if !ok || dep != 9 {
		t.Fatalf("load should wait on youngest store: %d/%v", dep, ok)
	}
	// Executing an older instance must not clear the younger's entry.
	_, _, set := s.RenameStore(0x2000, 11)
	s.StoreExecuted(set, 9)
	dep, ok = s.RenameLoad(0x1000)
	if !ok || dep != 11 {
		t.Fatalf("stale clear corrupted LFST: %d/%v", dep, ok)
	}
}

func TestStoreSquashedRemoves(t *testing.T) {
	s := newSS()
	s.Train(0x1000, 0x2000)
	_, _, set := s.RenameStore(0x2000, 7)
	s.StoreSquashed(set, 7)
	if _, ok := s.RenameLoad(0x1000); ok {
		t.Error("squashed store should not gate loads")
	}
}

func TestMergeAssignsCommonSet(t *testing.T) {
	s := newSS()
	s.Train(0x1000, 0x2000) // set A
	s.Train(0x1100, 0x2100) // set B
	s.Train(0x1000, 0x2100) // merge
	a := s.SetOf(0x1000)
	b := s.SetOf(0x2100)
	if a != b {
		t.Errorf("merge failed: %d vs %d", a, b)
	}
	if s.Merges != 1 {
		t.Errorf("merges = %d", s.Merges)
	}
}

func TestTrainJoinsExistingSets(t *testing.T) {
	s := newSS()
	s.Train(0x1000, 0x2000)
	s.Train(0x1000, 0x3000) // store joins the load's set
	if s.SetOf(0x2000) != s.SetOf(0x3000) {
		t.Error("second store should join the same set")
	}
	s.Train(0x1200, 0x3000) // load joins the store's set
	if s.SetOf(0x1200) != s.SetOf(0x3000) {
		t.Error("second load should join the same set")
	}
}

func TestTrainIgnoresUnknownStorePC(t *testing.T) {
	s := newSS()
	s.Train(0x1000, 0) // SPCT had nothing
	if s.SetOf(0x1000) != -1 {
		t.Error("store-blind training should be skipped")
	}
}

func TestClear(t *testing.T) {
	s := newSS()
	s.Train(0x1000, 0x2000)
	s.RenameStore(0x2000, 5)
	s.Clear()
	if s.SetOf(0x1000) != -1 || s.SetOf(0x2000) != -1 {
		t.Error("clear left SSIT entries")
	}
	if _, ok := s.RenameLoad(0x1000); ok {
		t.Error("clear left LFST entries")
	}
}
