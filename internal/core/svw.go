package core

// This file holds the per-optimization SVW policies (paper §3.1–§3.5) and
// the finite-SSN wrap-around controller (§3.6).

// DispatchSVW returns the dispatch-time SVW for a load under NLQls, NLQsm, or
// SSQ (paper §3.1–§3.3): the load is vulnerable to every store that was
// in flight when it dispatched, i.e. everything younger than SSNretire.
func DispatchSVW(ssnRetire SSN) SSN { return ssnRetire }

// ForwardSVW returns the updated SVW after a store with sequence number
// stSSN forwards its value to the load (§3.1): the load becomes invulnerable
// to that store and everything older, so its SVW rises to stSSN. The update
// never lowers the SVW.
func ForwardSVW(cur, stSSN SSN) SSN {
	if stSSN > cur {
		return stSSN
	}
	return cur
}

// EliminatedSVW returns the SVW of a load eliminated through an integration
// table entry (§3.4 and §3.5): vulnerable to every store younger than the IT
// entry's SSN, composed (min) with the ordinary dispatch window because the
// eliminated load remains subject to shared-memory invalidations.
func EliminatedSVW(itSSN, ssnRetire SSN) SSN { return MinSSN(itSSN, ssnRetire) }

// InvalidationSSN returns the SSN an inter-thread invalidation writes into
// the SSBF (§3.2): one more than the youngest in-flight store's, so that
// every in-flight load tests positive against it.
func InvalidationSSN(ssnRename SSN) SSN { return ssnRename + 1 }

// WrapControl implements the finite-SSN-width policy of §3.6. Hardware SSNs
// have Bits width; when SSNrename wraps to zero the pipeline must drain
// (wait for all in-flight instructions to commit), flash-clear the SSBF (and
// the IT when RLE is enabled), and only then resume dispatch. The drain
// guarantees no load's vulnerability range crosses the wrap point, so
// ambiguous circular comparisons never occur.
//
// Bits == 0 models infinite-width SSNs (no drains).
type WrapControl struct {
	Bits int

	// Drains counts wrap events (each costs a full pipeline drain).
	Drains uint64
}

// Interval returns the number of stores between drains (0 = never).
func (w *WrapControl) Interval() uint64 {
	if w.Bits <= 0 || w.Bits >= 64 {
		return 0
	}
	return 1 << uint(w.Bits)
}

// ShouldDrain reports whether allocating the SSN after prev crosses the wrap
// boundary, requiring a drain before the allocation proceeds.
func (w *WrapControl) ShouldDrain(prev SSN) bool {
	iv := w.Interval()
	if iv == 0 {
		return false
	}
	next := uint64(prev) + 1
	return next%iv == 0
}

// RecordDrain counts a performed drain.
func (w *WrapControl) RecordDrain() { w.Drains++ }
