package core

import (
	"math/rand"
	"testing"
)

// Property test for the §3.6 finite-SSN wrap-around protocol: with hardware
// SSNs truncated to WrapControl.Bits, the drain-then-flash-clear discipline
// must never let a stale SVW/SSBF comparison suppress a re-execution the
// full-width oracle requires. False positives (spurious re-executions) are
// allowed; false negatives are correctness bugs.
//
// The model mirrors rename.go's protocol: before a store allocation crosses
// the wrap boundary, every in-flight load resolves (the drain), the SSBF is
// flash-cleared, and only then does dispatch resume. Hardware state — the
// per-load SVW and the SSBF contents — carries truncated SSNs; the oracle
// tracks full-width SSNs and is never cleared.

const wrapGranule = 8

type wrapLoad struct {
	addr    uint64
	svwFull SSN // full-width dispatch SVW (oracle)
	svwHW   SSN // truncated SVW the hardware carries
}

type wrapMachine struct {
	bits      int
	wrap      WrapControl
	f         *SSBF
	oracle    map[uint64]SSN // granule -> max full-width retired-store SSN
	ssnRetire SSN
	inflight  []wrapLoad

	// drainOnWrap toggles the §3.6 protocol; disabling it is the control
	// experiment proving the property has teeth.
	drainOnWrap bool

	falseNegatives int
}

func newWrapMachine(bits int, drain bool) *wrapMachine {
	return &wrapMachine{
		bits:        bits,
		wrap:        WrapControl{Bits: bits},
		f:           NewSSBF(SSBFConfig{Entries: 64, GranuleBytes: wrapGranule}),
		oracle:      make(map[uint64]SSN),
		drainOnWrap: drain,
	}
}

func (m *wrapMachine) truncate(s SSN) SSN {
	return s & SSN(m.wrap.Interval()-1)
}

// resolve runs one load's filter test and checks it against the oracle.
func (m *wrapMachine) resolve(t *testing.T, i int) {
	ld := m.inflight[i]
	m.inflight = append(m.inflight[:i], m.inflight[i+1:]...)
	required := m.oracle[ld.addr/wrapGranule] > ld.svwFull
	flagged := m.f.NeedsRexec(ld.addr, wrapGranule, ld.svwHW)
	if required && !flagged {
		m.falseNegatives++
		if m.drainOnWrap {
			t.Fatalf("stale SVW suppressed a required re-execution: load@%#x svw=%d(hw %d), oracle=%d",
				ld.addr, ld.svwFull, ld.svwHW, m.oracle[ld.addr/wrapGranule])
		}
	}
}

// store retires the next store, draining first when the allocation would
// cross the wrap boundary (§3.6).
func (m *wrapMachine) store(t *testing.T, addr uint64) {
	if m.wrap.ShouldDrain(m.ssnRetire) && m.drainOnWrap {
		for len(m.inflight) > 0 {
			m.resolve(t, 0)
		}
		m.f.Clear()
		m.wrap.RecordDrain()
	}
	m.ssnRetire++
	m.f.Update(addr, wrapGranule, m.truncate(m.ssnRetire))
	g := addr / wrapGranule
	if m.oracle[g] < m.ssnRetire {
		m.oracle[g] = m.ssnRetire
	}
}

func (m *wrapMachine) dispatch(addr uint64) {
	m.inflight = append(m.inflight, wrapLoad{
		addr:    addr,
		svwFull: DispatchSVW(m.ssnRetire),
		svwHW:   m.truncate(DispatchSVW(m.ssnRetire)),
	})
}

// runInterleaving drives one random store/load interleaving. A tiny address
// pool and 4-bit SSNs (wrap every 16 stores) make wrap hazards constant.
func runInterleaving(t *testing.T, seed int64, drain bool) *wrapMachine {
	r := rand.New(rand.NewSource(seed))
	m := newWrapMachine(4, drain)
	addrs := func() uint64 { return uint64(r.Intn(4)) * wrapGranule }
	for op := 0; op < 400; op++ {
		switch {
		case len(m.inflight) > 0 && r.Intn(3) == 0:
			m.resolve(t, r.Intn(len(m.inflight)))
		case len(m.inflight) < 8 && r.Intn(2) == 0:
			m.dispatch(addrs())
		default:
			m.store(t, addrs())
		}
	}
	for len(m.inflight) > 0 {
		m.resolve(t, 0)
	}
	return m
}

func TestPropertySSNWrapNeverSuppressesRexec(t *testing.T) {
	wrapped := false
	for seed := int64(0); seed < 200; seed++ {
		m := runInterleaving(t, seed, true)
		if m.wrap.Drains > 0 {
			wrapped = true
		}
	}
	if !wrapped {
		t.Fatal("no interleaving crossed an SSN wrap; the property was never exercised")
	}
}

// TestPropertyHasTeeth runs the control experiment: with the drain protocol
// disabled, in-flight loads survive the wrap and truncated comparisons DO
// go stale — the property above must be capable of catching that.
func TestPropertyHasTeeth(t *testing.T) {
	violations := 0
	for seed := int64(0); seed < 200; seed++ {
		violations += runInterleaving(t, seed, false).falseNegatives
	}
	if violations == 0 {
		t.Fatal("drain-free control run produced no false negatives; the property test is vacuous")
	}
}
