// Package core implements the paper's primary contribution: the Store
// Vulnerability Window (SVW) re-execution filter.
//
// The mechanism has four parts (paper §3):
//
//   - Monotonic store sequence numbers (SSN). Only SSNretire is represented
//     explicitly in hardware; in-flight SSNs derive from SQ position.
//     SSNrename = SSNretire + SQ occupancy.
//   - A per-load SVW field: the SSN of the youngest older store to which the
//     load is NOT vulnerable. Set at dispatch, optionally raised when a store
//     forwards to the load.
//   - The Store Sequence Bloom Filter (SSBF): a small tagless table indexed
//     by low-order address bits holding the SSN of the last retired store to
//     write a partially matching address. Aliasing only produces false
//     positives (spurious re-executions), never false negatives.
//   - The filter test, evaluated in the re-execution pipeline's SVW stage:
//     re-execute iff SSBF[ld.addr] > ld.SVW.
//
// This package holds the SSN arithmetic and policies, the SSBF in all the
// organizations of the paper's §4.4 sensitivity study, the SPCT used to train
// store-set predictors without an associative LQ, and the finite-SSN
// wrap-around controller of §3.6.
package core

// SSN is a store sequence number. The simulator carries SSNs at full 64-bit
// width; finite hardware widths are modeled by the WrapControl drain policy,
// which clears all SSN state before any ambiguous comparison could occur —
// exactly the paper's scheme, in which the drain guarantees no load has a
// vulnerability range crossing the wrap point.
type SSN uint64

// MinSSN returns the smaller of two SSNs, the composition rule for a load
// subject to multiple optimizations (paper §3.5): the load is vulnerable to
// the largest store window under any of them.
func MinSSN(a, b SSN) SSN {
	if a < b {
		return a
	}
	return b
}
