package core

// SPCT is the store PC table (paper §2.2): a small tagless table indexed by
// low-order address bits in which each entry holds the PC of the last
// retired store to write a matching address.
//
// The non-associative LQ cannot identify the store that triggered an ordering
// violation (there is no LQ search to catch it in the act), so without the
// SPCT it could only train store-blind dependence predictors. On a
// re-execution-failure flush, the violated load's address indexes the SPCT to
// recover the store PC, enabling full store-set training.
type SPCT struct {
	entries      []uint64
	granuleShift uint

	// Stats
	Updates, Lookups uint64
}

// SPCTConfig sizes the table.
type SPCTConfig struct {
	Entries      int // power of two
	GranuleBytes int
}

// DefaultSPCTConfig mirrors the SSBF geometry: 512 entries, 8-byte granules.
func DefaultSPCTConfig() SPCTConfig { return SPCTConfig{Entries: 512, GranuleBytes: 8} }

// NewSPCT builds the table.
func NewSPCT(cfg SPCTConfig) *SPCT {
	if cfg.Entries&(cfg.Entries-1) != 0 || cfg.Entries == 0 {
		panic("core: SPCT entries must be a positive power of two")
	}
	t := &SPCT{entries: make([]uint64, cfg.Entries)}
	if cfg.GranuleBytes == 0 {
		cfg.GranuleBytes = 8
	}
	for 1<<t.granuleShift != cfg.GranuleBytes {
		t.granuleShift++
		if t.granuleShift > 12 {
			panic("core: SPCT granule must be a power of two")
		}
	}
	return t
}

func (t *SPCT) index(granule uint64) int {
	return int(granule) & (len(t.entries) - 1)
}

// Update records pc as the last retired store to write [addr, addr+size).
func (t *SPCT) Update(addr uint64, size int, pc uint64) {
	t.Updates++
	first := addr >> t.granuleShift
	last := (addr + uint64(size) - 1) >> t.granuleShift
	for g := first; g <= last; g++ {
		t.entries[t.index(g)] = pc
	}
}

// Lookup returns the PC of the last retired store to write a granule
// matching addr, or 0 if none has.
func (t *SPCT) Lookup(addr uint64) uint64 {
	t.Lookups++
	return t.entries[t.index(addr>>t.granuleShift)]
}

// Clear empties the table.
func (t *SPCT) Clear() {
	for i := range t.entries {
		t.entries[i] = 0
	}
}
