package core

import (
	"testing"
	"testing/quick"
)

func TestMinSSN(t *testing.T) {
	if MinSSN(3, 5) != 3 || MinSSN(5, 3) != 3 || MinSSN(4, 4) != 4 {
		t.Error("MinSSN broken")
	}
}

func TestDispatchAndForwardSVW(t *testing.T) {
	if DispatchSVW(42) != 42 {
		t.Error("dispatch SVW is SSNretire")
	}
	// Forwarding raises the SVW to the forwarding store's SSN...
	if ForwardSVW(10, 20) != 20 {
		t.Error("forward should raise")
	}
	// ...but never lowers it (e.g. a second, older forwarding event).
	if ForwardSVW(30, 20) != 30 {
		t.Error("forward must not lower")
	}
}

func TestForwardSVWMonotonicQuick(t *testing.T) {
	f := func(cur, st uint64) bool {
		out := ForwardSVW(SSN(cur), SSN(st))
		return out >= SSN(cur) && out >= MinSSN(SSN(cur), SSN(st))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEliminatedSVW(t *testing.T) {
	// §3.5: vulnerable to the larger window under either mechanism.
	if EliminatedSVW(10, 20) != 10 {
		t.Error("older IT window wins")
	}
	if EliminatedSVW(20, 10) != 10 {
		t.Error("older dispatch window wins")
	}
}

func TestInvalidationSSN(t *testing.T) {
	// One more than the youngest in-flight store: every in-flight load
	// tests positive against it.
	if InvalidationSSN(100) != 101 {
		t.Error("invalidation SSN")
	}
}

func TestWrapControlInterval(t *testing.T) {
	w := WrapControl{Bits: 16}
	if w.Interval() != 1<<16 {
		t.Errorf("interval = %d", w.Interval())
	}
	if (&WrapControl{Bits: 0}).Interval() != 0 {
		t.Error("infinite width should never drain")
	}
}

func TestWrapControlDrainPoints(t *testing.T) {
	w := WrapControl{Bits: 8}
	if w.ShouldDrain(0) {
		t.Error("ssn 1 is not a wrap point")
	}
	if !w.ShouldDrain(255) {
		t.Error("allocating ssn 256 (== 0 mod 2^8) must drain")
	}
	if w.ShouldDrain(256) {
		t.Error("ssn 257 is not a wrap point")
	}
	if !w.ShouldDrain(511) {
		t.Error("each wrap multiple must drain")
	}
	inf := WrapControl{Bits: 0}
	for _, p := range []SSN{0, 255, 65535, 1 << 30} {
		if inf.ShouldDrain(p) {
			t.Errorf("infinite SSNs must never drain (at %d)", p)
		}
	}
}

func TestWrapDrainEveryIntervalQuick(t *testing.T) {
	// Property: over any contiguous SSN range of length 2^bits, exactly
	// one drain point occurs.
	f := func(start uint32, bitsSel uint8) bool {
		bits := 6 + int(bitsSel%8) // 6..13
		w := WrapControl{Bits: bits}
		n := 0
		for i := uint64(0); i < 1<<uint(bits); i++ {
			if w.ShouldDrain(SSN(uint64(start) + i)) {
				n++
			}
		}
		return n == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSPCT(t *testing.T) {
	s := NewSPCT(DefaultSPCTConfig())
	s.Update(0x1000, 8, 0xAAA)
	if s.Lookup(0x1000) != 0xAAA {
		t.Error("lookup after update")
	}
	if s.Lookup(0x1008) != 0 {
		t.Error("neighboring granule polluted")
	}
	// Later store to the same address replaces.
	s.Update(0x1000, 8, 0xBBB)
	if s.Lookup(0x1000) != 0xBBB {
		t.Error("update should replace")
	}
	// Aliasing at 512 granules (same index as 0x1000).
	if s.Lookup(0x1000+512*8) != 0xBBB {
		t.Error("SPCT is tagless; aliases should collide")
	}
	// Spanning store updates all granules (0x2004 spans indexes 0 and 1;
	// index 0 aliases 0x1000's).
	s.Update(0x2004, 8, 0xCCC)
	if s.Lookup(0x2000) != 0xCCC || s.Lookup(0x2008) != 0xCCC {
		t.Error("spanning SPCT update")
	}
	s.Clear()
	if s.Lookup(0x1000) != 0 {
		t.Error("clear")
	}
}
