package core

import (
	"testing"
	"testing/quick"
)

func defaultSSBF() *SSBF { return NewSSBF(DefaultSSBFConfig()) }

func TestFilterNegativeWithoutStores(t *testing.T) {
	f := defaultSSBF()
	if f.NeedsRexec(0x1000, 8, 0) {
		t.Error("empty filter must be negative")
	}
}

func TestFilterTestSemantics(t *testing.T) {
	f := defaultSSBF()
	f.Update(0x1000, 8, 50)
	// Load vulnerable to stores younger than 40: store 50 conflicts.
	if !f.NeedsRexec(0x1000, 8, 40) {
		t.Error("younger store to same granule must re-execute")
	}
	// Load not vulnerable to store 50 (SVW = 50): no re-execution.
	if f.NeedsRexec(0x1000, 8, 50) {
		t.Error("store at the SVW boundary is not a conflict")
	}
	if f.NeedsRexec(0x1000, 8, 60) {
		t.Error("older store is not a conflict")
	}
	// Different granule: unaffected.
	if f.NeedsRexec(0x1008, 8, 0) {
		t.Error("neighboring granule polluted")
	}
}

func TestUpdateKeepsMaximum(t *testing.T) {
	f := defaultSSBF()
	f.Update(0x1000, 8, 50)
	f.Update(0x1000, 8, 30) // out-of-order (wrong-path) lower SSN
	if got := f.Lookup(0x1000, 8); got != 50 {
		t.Errorf("lookup = %d, want the maximum 50", got)
	}
}

func TestSubGranuleFalseSharing(t *testing.T) {
	// Two 4-byte accesses to the same 8-byte granule alias in the default
	// organization — the paper's "false sharing" — but not at 4-byte
	// granularity.
	f8 := defaultSSBF()
	f8.Update(0x1000, 4, 50)
	if !f8.NeedsRexec(0x1004, 4, 10) {
		t.Error("8B granules must false-share sub-quad accesses")
	}
	cfg := DefaultSSBFConfig()
	cfg.GranuleBytes = 4
	f4 := NewSSBF(cfg)
	f4.Update(0x1000, 4, 50)
	if f4.NeedsRexec(0x1004, 4, 10) {
		t.Error("4B granules must separate sub-quad accesses")
	}
}

func TestSpanningAccessChecksAllGranules(t *testing.T) {
	f := defaultSSBF()
	f.Update(0x1008, 8, 99)
	// An 8-byte access at 0x1004 spans granules 0x1000 and 0x1008.
	if !f.NeedsRexec(0x1004, 8, 50) {
		t.Error("spanning access missed the second granule")
	}
	// A spanning store updates both granules.
	f2 := defaultSSBF()
	f2.Update(0x1004, 8, 77)
	if f2.Lookup(0x1000, 1) != 77 || f2.Lookup(0x1008, 1) != 77 {
		t.Error("spanning update missed a granule")
	}
}

func TestAliasingProducesFalsePositivesOnly(t *testing.T) {
	f := defaultSSBF()
	// Entries alias at 512 granules * 8 bytes = 4KB stride.
	f.Update(0x1000, 8, 50)
	if !f.NeedsRexec(0x1000+512*8, 8, 10) {
		t.Error("aliased granule should test positive (false positive)")
	}
}

func TestDualHashDisambiguatesAliases(t *testing.T) {
	cfg := DefaultSSBFConfig()
	cfg.DualHash = true
	f := NewSSBF(cfg)
	f.Update(0x1000, 8, 50)
	// Primary aliases at 4KB stride, but the secondary (indexed by the
	// next 9 address bits) distinguishes them.
	if f.NeedsRexec(0x1000+512*8, 8, 10) {
		t.Error("dual filter should kill the primary alias")
	}
	if !f.NeedsRexec(0x1000, 8, 10) {
		t.Error("dual filter must keep true positives")
	}
}

func TestInfiniteFilterExact(t *testing.T) {
	cfg := SSBFConfig{Entries: 0, GranuleBytes: 4, LineBytes: 64}
	f := NewSSBF(cfg)
	f.Update(0x1000, 8, 50)
	if f.NeedsRexec(0x1000+512*8, 8, 10) {
		t.Error("infinite filter must not alias")
	}
	if !f.NeedsRexec(0x1000, 4, 10) || !f.NeedsRexec(0x1004, 4, 10) {
		t.Error("infinite filter lost a granule")
	}
}

func TestInvalidateWritesWholeLine(t *testing.T) {
	f := defaultSSBF()
	f.Invalidate(0x1010, 123) // line 0x1000..0x103f
	for off := uint64(0); off < 64; off += 8 {
		if f.Lookup(0x1000+off, 8) != 123 {
			t.Errorf("granule %#x missed by invalidation", 0x1000+off)
		}
	}
	if f.Lookup(0x1040, 8) == 123 {
		t.Error("invalidation leaked past the line")
	}
}

func TestClear(t *testing.T) {
	for _, entries := range []int{512, 0} {
		cfg := DefaultSSBFConfig()
		cfg.Entries = entries
		f := NewSSBF(cfg)
		f.Update(0x1000, 8, 50)
		f.Clear()
		if f.NeedsRexec(0x1000, 8, 0) {
			t.Errorf("entries=%d: clear left state", entries)
		}
	}
}

// TestNoFalseNegativesQuick is the filter's safety property: after any
// sequence of updates, a load whose granule was written by a store younger
// than its SVW must test positive.
func TestNoFalseNegativesQuick(t *testing.T) {
	type st struct {
		Addr uint16
		SSN  uint16
	}
	f := func(stores []st, loadAddr uint16, svw uint16) bool {
		filt := defaultSSBF()
		var youngest SSN
		for _, s := range stores {
			filt.Update(uint64(s.Addr), 8, SSN(s.SSN))
			if uint64(s.Addr)>>3 == uint64(loadAddr)>>3 && SSN(s.SSN) > youngest {
				youngest = SSN(s.SSN)
			}
		}
		if youngest > SSN(svw) {
			return filt.NeedsRexec(uint64(loadAddr), 8, SSN(svw))
		}
		return true // negatives may be false positives; that is allowed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPositiveRate(t *testing.T) {
	f := defaultSSBF()
	f.Update(0x1000, 8, 10)
	f.NeedsRexec(0x1000, 8, 5) // positive
	f.NeedsRexec(0x1008, 8, 5) // negative (adjacent granule, distinct index)
	if r := f.PositiveRate(); r != 0.5 {
		t.Errorf("positive rate = %f", r)
	}
}

func TestBadGeometryPanics(t *testing.T) {
	for _, cfg := range []SSBFConfig{
		{Entries: 100, GranuleBytes: 8},
		{Entries: 512, GranuleBytes: 3},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for %+v", cfg)
				}
			}()
			NewSSBF(cfg)
		}()
	}
}
