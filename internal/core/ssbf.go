package core

// SSBFConfig selects an SSBF organization. The zero value is invalid; use
// DefaultSSBFConfig for the paper's baseline 512-entry, 8-byte-granularity
// filter (1KB at 16-bit SSNs).
type SSBFConfig struct {
	// Entries is the number of filter entries; must be a power of two.
	// Entries == 0 selects the infinite (exact, per-granule map) filter used
	// as the paper's upper bound.
	Entries int
	// GranuleBytes is the conflict-tracking granularity (8 in the default
	// configuration; 4 in the "4-byte" sensitivity point). Sub-granule writes
	// alias, producing the paper's "false sharing" re-executions.
	GranuleBytes int
	// DualHash adds the second 512-entry filter indexed by the next address
	// bits; a load re-executes only if it collides in both ("Bloom" point of
	// Fig. 8).
	DualHash    bool
	DualEntries int
	// LineBytes is the cache line size, used by banked invalidation updates
	// (NLQsm): an invalidation writes every granule of the line.
	LineBytes int
}

// DefaultSSBFConfig is the paper's default: 512 entries, 8-byte granules.
func DefaultSSBFConfig() SSBFConfig {
	return SSBFConfig{Entries: 512, GranuleBytes: 8, DualEntries: 512, LineBytes: 64}
}

// SSBF is the store sequence Bloom filter. It is managed in program order by
// the re-execution pipeline's SVW stage and read by marked loads immediately
// before their would-be data cache re-access.
type SSBF struct {
	cfg          SSBFConfig
	granuleShift uint
	primary      []SSN
	secondary    []SSN          // DualHash only
	exact        map[uint64]SSN // infinite mode only

	// Stats
	Lookups, Positives, Updates uint64
}

// NewSSBF builds a filter.
func NewSSBF(cfg SSBFConfig) *SSBF {
	if cfg.GranuleBytes == 0 {
		cfg.GranuleBytes = 8
	}
	if cfg.LineBytes == 0 {
		cfg.LineBytes = 64
	}
	f := &SSBF{cfg: cfg}
	for 1<<f.granuleShift != cfg.GranuleBytes {
		f.granuleShift++
		if f.granuleShift > 12 {
			panic("core: SSBF granule must be a power of two")
		}
	}
	if cfg.Entries == 0 {
		f.exact = make(map[uint64]SSN)
		return f
	}
	if cfg.Entries&(cfg.Entries-1) != 0 {
		panic("core: SSBF entries must be a power of two")
	}
	f.primary = make([]SSN, cfg.Entries)
	if cfg.DualHash {
		n := cfg.DualEntries
		if n == 0 {
			n = 512
		}
		if n&(n-1) != 0 {
			panic("core: SSBF dual entries must be a power of two")
		}
		f.secondary = make([]SSN, n)
	}
	return f
}

// Config returns the filter organization.
func (f *SSBF) Config() SSBFConfig { return f.cfg }

func (f *SSBF) primaryIndex(granule uint64) int {
	return int(granule) & (f.cfg.Entries - 1)
}

func (f *SSBF) secondaryIndex(granule uint64) int {
	// Indexed by the next address bits above the primary index field.
	bits := 0
	for 1<<bits < f.cfg.Entries {
		bits++
	}
	return int(granule>>uint(bits)) & (len(f.secondary) - 1)
}

// Update records that a store with sequence number ssn wrote [addr,
// addr+size). All spanned granules are updated. Entries only ever increase
// in practice because the SVW stage processes stores in order, but a wrong
// path store may legitimately leave a too-high SSN behind; the filter keeps
// the maximum, which is conservative (spurious re-executions only).
func (f *SSBF) Update(addr uint64, size int, ssn SSN) {
	f.Updates++
	first := addr >> f.granuleShift
	last := (addr + uint64(size) - 1) >> f.granuleShift
	for g := first; g <= last; g++ {
		f.updateGranule(g, ssn)
	}
}

func (f *SSBF) updateGranule(g uint64, ssn SSN) {
	if f.exact != nil {
		if f.exact[g] < ssn {
			f.exact[g] = ssn
		}
		return
	}
	if i := f.primaryIndex(g); f.primary[i] < ssn {
		f.primary[i] = ssn
	}
	if f.secondary != nil {
		if i := f.secondaryIndex(g); f.secondary[i] < ssn {
			f.secondary[i] = ssn
		}
	}
}

// Invalidate models an inter-thread coherence invalidation of the cache line
// containing lineAddr (NLQsm, paper §3.2): every granule of the line is
// written — the SSBF is banked so that all banks write in one cycle — with
// an SSN one greater than the youngest in-flight store's, making every
// in-flight load to the line appear vulnerable.
func (f *SSBF) Invalidate(lineAddr uint64, ssnRenamePlus1 SSN) {
	line := lineAddr &^ uint64(f.cfg.LineBytes-1)
	f.Update(line, f.cfg.LineBytes, ssnRenamePlus1)
}

// Lookup returns the maximum SSN recorded for any granule spanned by
// [addr, addr+size) (diagnostic/test aid; the filter test is NeedsRexec).
func (f *SSBF) Lookup(addr uint64, size int) SSN {
	var max SSN
	first := addr >> f.granuleShift
	last := (addr + uint64(size) - 1) >> f.granuleShift
	for g := first; g <= last; g++ {
		var v SSN
		if f.exact != nil {
			v = f.exact[g]
		} else {
			v = f.primary[f.primaryIndex(g)]
		}
		if v > max {
			max = v
		}
	}
	return max
}

// NeedsRexec evaluates the re-execution filter test for a load with the
// given SVW: true means the load may conflict with a store it is vulnerable
// to and must re-execute; false unambiguously means no conflict occurred.
func (f *SSBF) NeedsRexec(addr uint64, size int, svw SSN) bool {
	f.Lookups++
	first := addr >> f.granuleShift
	last := (addr + uint64(size) - 1) >> f.granuleShift
	for g := first; g <= last; g++ {
		if f.granuleNeedsRexec(g, svw) {
			f.Positives++
			return true
		}
	}
	return false
}

func (f *SSBF) granuleNeedsRexec(g uint64, svw SSN) bool {
	if f.exact != nil {
		return f.exact[g] > svw
	}
	if f.primary[f.primaryIndex(g)] <= svw {
		return false
	}
	if f.secondary != nil && f.secondary[f.secondaryIndex(g)] <= svw {
		return false // second filter disambiguates the alias
	}
	return true
}

// Clear flash-clears the filter (SSN wrap drain, §3.6).
func (f *SSBF) Clear() {
	if f.exact != nil {
		clear(f.exact)
		return
	}
	for i := range f.primary {
		f.primary[i] = 0
	}
	for i := range f.secondary {
		f.secondary[i] = 0
	}
}

// PositiveRate returns Positives/Lookups (diagnostics).
func (f *SSBF) PositiveRate() float64 {
	if f.Lookups == 0 {
		return 0
	}
	return float64(f.Positives) / float64(f.Lookups)
}
