// Package isa defines the Alpha-like 64-bit RISC instruction set executed by
// the functional emulator and modeled by the timing core.
//
// The ISA is deliberately small but complete enough to express the synthetic
// SPEC2000-integer-profile kernels used in the SVW reproduction: 32 integer
// registers (R31 hardwired to zero), 1/2/4/8-byte loads and stores,
// single-register compare-and-branch (Alpha style), jumps with link, and a
// register-indirect jump for pointer chasing and returns. Instructions encode
// to fixed 32-bit words so programs live in simulated memory and the fetch
// path of the timing model exercises a real instruction cache.
package isa

import "fmt"

// Reg names an architectural integer register, 0..31. R31 reads as zero and
// ignores writes, like the Alpha.
type Reg uint8

// Architectural register file size and the hardwired zero register.
const (
	NumRegs Reg = 32
	Zero    Reg = 31
)

func (r Reg) String() string {
	if r == Zero {
		return "rz"
	}
	return fmt.Sprintf("r%d", uint8(r))
}

// Op enumerates the instruction opcodes.
type Op uint8

// Opcode space. The encoding reserves 6 bits, so keep Op < 64.
const (
	// OpNop does nothing. Encoded explicitly so the builder can pad.
	OpNop Op = iota

	// Register-register ALU operations: rd = ra OP rb.
	OpAdd
	OpSub
	OpMul
	OpAnd
	OpOr
	OpXor
	OpSll
	OpSrl
	OpSra
	OpCmpEq  // rd = (ra == rb) ? 1 : 0
	OpCmpLt  // signed
	OpCmpLe  // signed
	OpCmpUlt // unsigned

	// Register-immediate ALU operations: rd = ra OP signext(imm16).
	OpAddi
	OpAndi
	OpOri
	OpXori
	OpSlli
	OpSrli
	OpCmpEqi
	OpCmpLti

	// OpLda computes rd = ra + signext(imm16) (address arithmetic, also the
	// canonical "load immediate" with ra == Zero). OpLdah shifts the
	// immediate left 16 bits first, so a two-instruction sequence can build
	// any 32-bit constant.
	OpLda
	OpLdah

	// Loads: rd = mem[ra + signext(imm16)]. Byte and word loads zero-extend;
	// OpLdl sign-extends 32 bits; OpLdq loads all 64.
	OpLdb
	OpLdw
	OpLdl
	OpLdq

	// Stores: mem[ra + signext(imm16)] = low bytes of rb.
	OpStb
	OpStw
	OpStl
	OpStq

	// Conditional branches compare ra against zero and, if the condition
	// holds, transfer to PC + 4 + 4*disp21 (disp in instruction words).
	OpBeq
	OpBne
	OpBlt
	OpBge

	// OpBr branches unconditionally (PC-relative). OpBsr additionally links:
	// rd = PC + 4. OpJmp jumps to (ra) and links rd = PC + 4; with rd == Zero
	// it is a plain indirect jump, and by convention a return.
	OpBr
	OpBsr
	OpJmp

	// OpHalt stops the emulator. The timing model drains and finishes.
	OpHalt

	numOps
)

var opNames = [numOps]string{
	OpNop: "nop", OpAdd: "add", OpSub: "sub", OpMul: "mul", OpAnd: "and",
	OpOr: "or", OpXor: "xor", OpSll: "sll", OpSrl: "srl", OpSra: "sra",
	OpCmpEq: "cmpeq", OpCmpLt: "cmplt", OpCmpLe: "cmple", OpCmpUlt: "cmpult",
	OpAddi: "addi", OpAndi: "andi", OpOri: "ori", OpXori: "xori",
	OpSlli: "slli", OpSrli: "srli", OpCmpEqi: "cmpeqi", OpCmpLti: "cmplti",
	OpLda: "lda", OpLdah: "ldah",
	OpLdb: "ldb", OpLdw: "ldw", OpLdl: "ldl", OpLdq: "ldq",
	OpStb: "stb", OpStw: "stw", OpStl: "stl", OpStq: "stq",
	OpBeq: "beq", OpBne: "bne", OpBlt: "blt", OpBge: "bge",
	OpBr: "br", OpBsr: "bsr", OpJmp: "jmp", OpHalt: "halt",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Class partitions opcodes by the functional unit / scheduler port they use.
type Class uint8

// Instruction classes used by the issue-port model.
const (
	ClassNop Class = iota
	ClassIntALU
	ClassIntMul
	ClassLoad
	ClassStore
	ClassBranch // conditional branches, unconditional branches, jumps
	ClassHalt
)

func (c Class) String() string {
	switch c {
	case ClassNop:
		return "nop"
	case ClassIntALU:
		return "alu"
	case ClassIntMul:
		return "mul"
	case ClassLoad:
		return "load"
	case ClassStore:
		return "store"
	case ClassBranch:
		return "branch"
	case ClassHalt:
		return "halt"
	}
	return "?"
}

// Inst is a decoded instruction. Field meaning depends on the opcode family:
//
//   - RR ALU:     Rd = Ra op Rb
//   - RI ALU/Lda: Rd = Ra op Imm
//   - Load:       Rd = mem[Ra + Imm]
//   - Store:      mem[Ra + Imm] = Rb
//   - Branch:     if cond(Ra) goto PC + 4 + 4*Imm
//   - Br/Bsr:     goto PC + 4 + 4*Imm (Bsr: Rd = PC+4)
//   - Jmp:        Rd = PC + 4; goto (Ra)
type Inst struct {
	Op  Op
	Rd  Reg
	Ra  Reg
	Rb  Reg
	Imm int64
}

// Class reports the functional-unit class of the instruction.
func (i Inst) Class() Class {
	switch i.Op {
	case OpNop:
		return ClassNop
	case OpMul:
		return ClassIntMul
	case OpLdb, OpLdw, OpLdl, OpLdq:
		return ClassLoad
	case OpStb, OpStw, OpStl, OpStq:
		return ClassStore
	case OpBeq, OpBne, OpBlt, OpBge, OpBr, OpBsr, OpJmp:
		return ClassBranch
	case OpHalt:
		return ClassHalt
	default:
		return ClassIntALU
	}
}

// IsLoad reports whether the instruction reads data memory.
func (i Inst) IsLoad() bool { return i.Class() == ClassLoad }

// IsStore reports whether the instruction writes data memory.
func (i Inst) IsStore() bool { return i.Class() == ClassStore }

// IsMem reports whether the instruction accesses data memory.
func (i Inst) IsMem() bool { return i.IsLoad() || i.IsStore() }

// IsBranch reports whether the instruction may redirect control flow.
func (i Inst) IsBranch() bool { return i.Class() == ClassBranch }

// IsCondBranch reports whether the instruction is a conditional branch.
func (i Inst) IsCondBranch() bool {
	switch i.Op {
	case OpBeq, OpBne, OpBlt, OpBge:
		return true
	}
	return false
}

// IsUncondDirect reports whether the instruction is a PC-relative
// unconditional transfer (always taken, target known at decode).
func (i Inst) IsUncondDirect() bool { return i.Op == OpBr || i.Op == OpBsr }

// IsIndirect reports whether the target comes from a register.
func (i Inst) IsIndirect() bool { return i.Op == OpJmp }

// IsCall reports whether the instruction writes a link register (used by the
// return-address-stack model).
func (i Inst) IsCall() bool {
	return (i.Op == OpBsr || i.Op == OpJmp) && i.Rd != Zero
}

// IsReturn reports whether the instruction is, by convention, a return: an
// indirect jump that does not link.
func (i Inst) IsReturn() bool { return i.Op == OpJmp && i.Rd == Zero }

// MemBytes reports the access width of a load or store, or 0.
func (i Inst) MemBytes() int {
	switch i.Op {
	case OpLdb, OpStb:
		return 1
	case OpLdw, OpStw:
		return 2
	case OpLdl, OpStl:
		return 4
	case OpLdq, OpStq:
		return 8
	}
	return 0
}

// SignExtends reports whether a load sign-extends its result.
func (i Inst) SignExtends() bool { return i.Op == OpLdl }

// Dest returns the destination register, or Zero if the instruction writes no
// register (stores, branches without link, nop, halt).
func (i Inst) Dest() Reg {
	switch i.Class() {
	case ClassIntALU, ClassIntMul, ClassLoad:
		return i.Rd
	case ClassBranch:
		if i.Op == OpBsr || i.Op == OpJmp {
			return i.Rd
		}
	}
	return Zero
}

// WritesReg reports whether the instruction produces a register value.
func (i Inst) WritesReg() bool { return i.Dest() != Zero }

// SrcRegs returns the architectural source registers (at most two). Sources
// equal to Zero are included; callers treat Zero as always-ready.
func (i Inst) SrcRegs() (srcs [2]Reg, n int) {
	switch i.Op {
	case OpNop, OpHalt, OpBr, OpBsr:
		return srcs, 0
	case OpAdd, OpSub, OpMul, OpAnd, OpOr, OpXor, OpSll, OpSrl, OpSra,
		OpCmpEq, OpCmpLt, OpCmpLe, OpCmpUlt:
		srcs[0], srcs[1] = i.Ra, i.Rb
		return srcs, 2
	case OpAddi, OpAndi, OpOri, OpXori, OpSlli, OpSrli, OpCmpEqi, OpCmpLti,
		OpLda, OpLdah, OpLdb, OpLdw, OpLdl, OpLdq:
		srcs[0] = i.Ra
		return srcs, 1
	case OpStb, OpStw, OpStl, OpStq:
		srcs[0], srcs[1] = i.Ra, i.Rb // address base, data
		return srcs, 2
	case OpBeq, OpBne, OpBlt, OpBge:
		srcs[0] = i.Ra
		return srcs, 1
	case OpJmp:
		srcs[0] = i.Ra
		return srcs, 1
	}
	return srcs, 0
}

func (i Inst) String() string {
	switch i.Class() {
	case ClassNop:
		return "nop"
	case ClassHalt:
		return "halt"
	case ClassLoad:
		return fmt.Sprintf("%s %s, %d(%s)", i.Op, i.Rd, i.Imm, i.Ra)
	case ClassStore:
		return fmt.Sprintf("%s %s, %d(%s)", i.Op, i.Rb, i.Imm, i.Ra)
	case ClassBranch:
		switch i.Op {
		case OpBr:
			return fmt.Sprintf("br %+d", i.Imm)
		case OpBsr:
			return fmt.Sprintf("bsr %s, %+d", i.Rd, i.Imm)
		case OpJmp:
			return fmt.Sprintf("jmp %s, (%s)", i.Rd, i.Ra)
		default:
			return fmt.Sprintf("%s %s, %+d", i.Op, i.Ra, i.Imm)
		}
	default:
		switch i.Op {
		case OpAddi, OpAndi, OpOri, OpXori, OpSlli, OpSrli, OpCmpEqi,
			OpCmpLti, OpLda, OpLdah:
			return fmt.Sprintf("%s %s, %s, %d", i.Op, i.Rd, i.Ra, i.Imm)
		default:
			return fmt.Sprintf("%s %s, %s, %s", i.Op, i.Rd, i.Ra, i.Rb)
		}
	}
}
