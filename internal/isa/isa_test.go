package isa

import (
	"testing"
	"testing/quick"
)

func allOps() []Op {
	var ops []Op
	for o := Op(0); o < numOps; o++ {
		ops = append(ops, o)
	}
	return ops
}

func TestEncodeDecodeRoundTripExhaustiveSmall(t *testing.T) {
	// Every opcode with representative operand values must survive a
	// round trip through the 32-bit encoding.
	cases := []Inst{
		{Op: OpNop},
		{Op: OpHalt},
		{Op: OpAdd, Rd: 1, Ra: 2, Rb: 3},
		{Op: OpSub, Rd: 30, Ra: 29, Rb: 28},
		{Op: OpMul, Rd: 7, Ra: 7, Rb: 7},
		{Op: OpAnd, Rd: 0, Ra: 31, Rb: 15},
		{Op: OpOr, Rd: 1, Ra: 1, Rb: 1},
		{Op: OpXor, Rd: 9, Ra: 10, Rb: 11},
		{Op: OpSll, Rd: 3, Ra: 4, Rb: 5},
		{Op: OpSrl, Rd: 3, Ra: 4, Rb: 5},
		{Op: OpSra, Rd: 3, Ra: 4, Rb: 5},
		{Op: OpCmpEq, Rd: 1, Ra: 2, Rb: 3},
		{Op: OpCmpLt, Rd: 1, Ra: 2, Rb: 3},
		{Op: OpCmpLe, Rd: 1, Ra: 2, Rb: 3},
		{Op: OpCmpUlt, Rd: 1, Ra: 2, Rb: 3},
		{Op: OpAddi, Rd: 1, Ra: 2, Imm: -32768},
		{Op: OpAndi, Rd: 1, Ra: 2, Imm: 32767},
		{Op: OpOri, Rd: 1, Ra: 2, Imm: 255},
		{Op: OpXori, Rd: 1, Ra: 2, Imm: 1},
		{Op: OpSlli, Rd: 1, Ra: 2, Imm: 63},
		{Op: OpSrli, Rd: 1, Ra: 2, Imm: 1},
		{Op: OpCmpEqi, Rd: 1, Ra: 2, Imm: 0},
		{Op: OpCmpLti, Rd: 1, Ra: 2, Imm: -1},
		{Op: OpLda, Rd: 1, Ra: 2, Imm: 100},
		{Op: OpLdah, Rd: 1, Ra: 2, Imm: 256},
		{Op: OpLdb, Rd: 1, Ra: 2, Imm: 4},
		{Op: OpLdw, Rd: 1, Ra: 2, Imm: 4},
		{Op: OpLdl, Rd: 1, Ra: 2, Imm: 4},
		{Op: OpLdq, Rd: 1, Ra: 2, Imm: -8},
		{Op: OpStb, Rb: 1, Ra: 2, Imm: 4},
		{Op: OpStw, Rb: 1, Ra: 2, Imm: 4},
		{Op: OpStl, Rb: 1, Ra: 2, Imm: 4},
		{Op: OpStq, Rb: 1, Ra: 2, Imm: -8},
		{Op: OpBeq, Ra: 4, Imm: -100},
		{Op: OpBne, Ra: 4, Imm: 100},
		{Op: OpBlt, Ra: 4, Imm: 0},
		{Op: OpBge, Ra: 4, Imm: 1},
		{Op: OpBr, Imm: 12},
		{Op: OpBsr, Rd: 28, Imm: -12},
		{Op: OpJmp, Rd: 28, Ra: 4},
	}
	for _, in := range cases {
		w, err := Encode(in)
		if err != nil {
			t.Fatalf("encode %v: %v", in, err)
		}
		out := Decode(w)
		if out != in {
			t.Errorf("round trip %v -> %#x -> %v", in, w, out)
		}
	}
}

func TestEncodeDecodeRoundTripQuick(t *testing.T) {
	// Property: any well-formed instruction round-trips.
	f := func(opSel uint8, rd, ra, rb uint8, imm int16, disp int32) bool {
		ops := allOps()
		in := Inst{Op: ops[int(opSel)%len(ops)]}
		switch in.Op {
		case OpNop, OpHalt:
		case OpAdd, OpSub, OpMul, OpAnd, OpOr, OpXor, OpSll, OpSrl, OpSra,
			OpCmpEq, OpCmpLt, OpCmpLe, OpCmpUlt:
			in.Rd, in.Ra, in.Rb = Reg(rd%32), Reg(ra%32), Reg(rb%32)
		case OpAddi, OpAndi, OpOri, OpXori, OpSlli, OpSrli, OpCmpEqi,
			OpCmpLti, OpLda, OpLdah, OpLdb, OpLdw, OpLdl, OpLdq:
			in.Rd, in.Ra, in.Imm = Reg(rd%32), Reg(ra%32), int64(imm)
		case OpStb, OpStw, OpStl, OpStq:
			in.Rb, in.Ra, in.Imm = Reg(rb%32), Reg(ra%32), int64(imm)
		case OpBeq, OpBne, OpBlt, OpBge:
			in.Ra = Reg(ra % 32)
			in.Imm = int64(disp % (1 << 20))
		case OpBr, OpBsr:
			in.Rd = Reg(rd % 32)
			in.Imm = int64(disp % (1 << 20))
		case OpJmp:
			in.Rd, in.Ra = Reg(rd%32), Reg(ra%32)
		}
		w, err := Encode(in)
		if err != nil {
			return false
		}
		return Decode(w) == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeRejectsOutOfRangeImmediates(t *testing.T) {
	cases := []Inst{
		{Op: OpAddi, Rd: 1, Ra: 2, Imm: 1 << 15},
		{Op: OpAddi, Rd: 1, Ra: 2, Imm: -(1 << 15) - 1},
		{Op: OpStq, Rb: 1, Ra: 2, Imm: 40000},
		{Op: OpBeq, Ra: 1, Imm: 1 << 20},
		{Op: OpBr, Imm: -(1 << 20) - 1},
	}
	for _, in := range cases {
		if _, err := Encode(in); err == nil {
			t.Errorf("expected encode error for %v", in)
		}
	}
}

func TestClassification(t *testing.T) {
	cases := []struct {
		in    Inst
		class Class
		load  bool
		store bool
		br    bool
	}{
		{Inst{Op: OpAdd}, ClassIntALU, false, false, false},
		{Inst{Op: OpMul}, ClassIntMul, false, false, false},
		{Inst{Op: OpLdq}, ClassLoad, true, false, false},
		{Inst{Op: OpLdb}, ClassLoad, true, false, false},
		{Inst{Op: OpStq}, ClassStore, false, true, false},
		{Inst{Op: OpStw}, ClassStore, false, true, false},
		{Inst{Op: OpBeq}, ClassBranch, false, false, true},
		{Inst{Op: OpBr}, ClassBranch, false, false, true},
		{Inst{Op: OpJmp}, ClassBranch, false, false, true},
		{Inst{Op: OpNop}, ClassNop, false, false, false},
		{Inst{Op: OpHalt}, ClassHalt, false, false, false},
	}
	for _, c := range cases {
		if got := c.in.Class(); got != c.class {
			t.Errorf("%v class = %v, want %v", c.in.Op, got, c.class)
		}
		if c.in.IsLoad() != c.load || c.in.IsStore() != c.store || c.in.IsBranch() != c.br {
			t.Errorf("%v load/store/br = %v/%v/%v", c.in.Op, c.in.IsLoad(), c.in.IsStore(), c.in.IsBranch())
		}
	}
}

func TestMemBytes(t *testing.T) {
	want := map[Op]int{
		OpLdb: 1, OpLdw: 2, OpLdl: 4, OpLdq: 8,
		OpStb: 1, OpStw: 2, OpStl: 4, OpStq: 8,
		OpAdd: 0, OpBeq: 0,
	}
	for op, n := range want {
		if got := (Inst{Op: op}).MemBytes(); got != n {
			t.Errorf("%v MemBytes = %d, want %d", op, got, n)
		}
	}
}

func TestSignExtendsOnlyLdl(t *testing.T) {
	for _, op := range allOps() {
		in := Inst{Op: op}
		if in.SignExtends() != (op == OpLdl) {
			t.Errorf("%v SignExtends = %v", op, in.SignExtends())
		}
	}
}

func TestDestAndSources(t *testing.T) {
	// Stores and plain branches write no register.
	if d := (Inst{Op: OpStq, Rb: 5, Ra: 6}).Dest(); d != Zero {
		t.Errorf("store dest = %v", d)
	}
	if d := (Inst{Op: OpBeq, Ra: 5}).Dest(); d != Zero {
		t.Errorf("beq dest = %v", d)
	}
	// Calls link.
	if d := (Inst{Op: OpBsr, Rd: 28}).Dest(); d != 28 {
		t.Errorf("bsr dest = %v", d)
	}
	if d := (Inst{Op: OpJmp, Rd: 28, Ra: 4}).Dest(); d != 28 {
		t.Errorf("jmp dest = %v", d)
	}
	// Source sets.
	srcs, n := (Inst{Op: OpStq, Ra: 6, Rb: 5}).SrcRegs()
	if n != 2 || srcs[0] != 6 || srcs[1] != 5 {
		t.Errorf("store srcs = %v/%d", srcs, n)
	}
	srcs, n = (Inst{Op: OpLdq, Ra: 6, Rd: 5}).SrcRegs()
	if n != 1 || srcs[0] != 6 {
		t.Errorf("load srcs = %v/%d", srcs, n)
	}
	_, n = (Inst{Op: OpBr}).SrcRegs()
	if n != 0 {
		t.Errorf("br srcs n = %d", n)
	}
}

func TestCallReturnConventions(t *testing.T) {
	if !(Inst{Op: OpBsr, Rd: 28}).IsCall() {
		t.Error("bsr with link should be a call")
	}
	if (Inst{Op: OpBsr, Rd: Zero}).IsCall() {
		t.Error("bsr to zero is not a call")
	}
	if !(Inst{Op: OpJmp, Rd: Zero, Ra: 4}).IsReturn() {
		t.Error("jmp without link should be a return")
	}
	if (Inst{Op: OpJmp, Rd: 28, Ra: 4}).IsReturn() {
		t.Error("linking jmp is not a return")
	}
}

func TestBranchTarget(t *testing.T) {
	in := Inst{Op: OpBeq, Ra: 1, Imm: 3}
	if got := in.BranchTarget(0x1000); got != 0x1000+4+12 {
		t.Errorf("target = %#x", got)
	}
	in.Imm = -1
	if got := in.BranchTarget(0x1000); got != 0x1000 {
		t.Errorf("backward target = %#x", got)
	}
}

func TestStringRendering(t *testing.T) {
	cases := map[string]Inst{
		"add r1, r2, r3":  {Op: OpAdd, Rd: 1, Ra: 2, Rb: 3},
		"ldq r1, 8(r2)":   {Op: OpLdq, Rd: 1, Ra: 2, Imm: 8},
		"stq r1, -8(r2)":  {Op: OpStq, Rb: 1, Ra: 2, Imm: -8},
		"beq r4, +5":      {Op: OpBeq, Ra: 4, Imm: 5},
		"nop":             {Op: OpNop},
		"halt":            {Op: OpHalt},
		"jmp rz, (r4)":    {Op: OpJmp, Rd: Zero, Ra: 4},
		"addi r1, r2, -1": {Op: OpAddi, Rd: 1, Ra: 2, Imm: -1},
	}
	for want, in := range cases {
		if got := in.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}
