package isa

import "fmt"

// Binary encoding: fixed 32-bit instruction words.
//
//	[31:26] opcode
//	RR ALU:     [25:21] ra  [20:16] rb  [15:11] rd
//	RI/mem/lda: [25:21] ra  [20:16] rd (loads) or rs (stores)  [15:0] imm16
//	branch:     [25:21] ra  [20:0] disp21 (signed, instruction words)
//	br/bsr:     [25:21] rd  [20:0] disp21
//	jmp:        [25:21] ra  [20:16] rd
const (
	opShift   = 26
	raShift   = 21
	rbShift   = 16
	rdShift   = 11
	regMask   = 0x1f
	imm16Mask = 0xffff
	disp21Max = 1 << 20 // exclusive upper bound of signed disp21
)

// EncodeErr describes an instruction that cannot be represented in the
// 32-bit encoding (immediate or displacement out of range).
type EncodeErr struct {
	Inst Inst
	Why  string
}

func (e *EncodeErr) Error() string {
	return fmt.Sprintf("isa: cannot encode %v: %s", e.Inst, e.Why)
}

// Encode packs an instruction into its 32-bit binary form.
func Encode(i Inst) (uint32, error) {
	if i.Op >= numOps {
		return 0, &EncodeErr{i, "bad opcode"}
	}
	w := uint32(i.Op) << opShift
	switch i.Op {
	case OpNop, OpHalt:
		return w, nil
	case OpAdd, OpSub, OpMul, OpAnd, OpOr, OpXor, OpSll, OpSrl, OpSra,
		OpCmpEq, OpCmpLt, OpCmpLe, OpCmpUlt:
		w |= uint32(i.Ra&regMask)<<raShift | uint32(i.Rb&regMask)<<rbShift |
			uint32(i.Rd&regMask)<<rdShift
		return w, nil
	case OpAddi, OpAndi, OpOri, OpXori, OpSlli, OpSrli, OpCmpEqi, OpCmpLti,
		OpLda, OpLdah, OpLdb, OpLdw, OpLdl, OpLdq:
		if i.Imm < -(1<<15) || i.Imm >= 1<<15 {
			return 0, &EncodeErr{i, "imm16 out of range"}
		}
		w |= uint32(i.Ra&regMask)<<raShift | uint32(i.Rd&regMask)<<rbShift |
			uint32(uint16(i.Imm))
		return w, nil
	case OpStb, OpStw, OpStl, OpStq:
		if i.Imm < -(1<<15) || i.Imm >= 1<<15 {
			return 0, &EncodeErr{i, "imm16 out of range"}
		}
		w |= uint32(i.Ra&regMask)<<raShift | uint32(i.Rb&regMask)<<rbShift |
			uint32(uint16(i.Imm))
		return w, nil
	case OpBeq, OpBne, OpBlt, OpBge:
		if i.Imm < -disp21Max || i.Imm >= disp21Max {
			return 0, &EncodeErr{i, "disp21 out of range"}
		}
		w |= uint32(i.Ra&regMask)<<raShift | uint32(i.Imm)&0x1fffff
		return w, nil
	case OpBr, OpBsr:
		if i.Imm < -disp21Max || i.Imm >= disp21Max {
			return 0, &EncodeErr{i, "disp21 out of range"}
		}
		w |= uint32(i.Rd&regMask)<<raShift | uint32(i.Imm)&0x1fffff
		return w, nil
	case OpJmp:
		w |= uint32(i.Ra&regMask)<<raShift | uint32(i.Rd&regMask)<<rbShift
		return w, nil
	}
	return 0, &EncodeErr{i, "unhandled opcode"}
}

// MustEncode is Encode for known-good instructions; it panics on error and is
// intended for the program builder, whose inputs are constructed in-process.
func MustEncode(i Inst) uint32 {
	w, err := Encode(i)
	if err != nil {
		panic(err)
	}
	return w
}

// Decode unpacks a 32-bit instruction word. Unused encodings decode to
// OpNop-class instructions with the raw opcode preserved, so the emulator can
// reject them; Decode itself never fails on register fields.
func Decode(w uint32) Inst {
	op := Op(w >> opShift)
	var i Inst
	i.Op = op
	switch op {
	case OpNop, OpHalt:
		return i
	case OpAdd, OpSub, OpMul, OpAnd, OpOr, OpXor, OpSll, OpSrl, OpSra,
		OpCmpEq, OpCmpLt, OpCmpLe, OpCmpUlt:
		i.Ra = Reg(w >> raShift & regMask)
		i.Rb = Reg(w >> rbShift & regMask)
		i.Rd = Reg(w >> rdShift & regMask)
	case OpAddi, OpAndi, OpOri, OpXori, OpSlli, OpSrli, OpCmpEqi, OpCmpLti,
		OpLda, OpLdah, OpLdb, OpLdw, OpLdl, OpLdq:
		i.Ra = Reg(w >> raShift & regMask)
		i.Rd = Reg(w >> rbShift & regMask)
		i.Imm = int64(int16(w & imm16Mask))
	case OpStb, OpStw, OpStl, OpStq:
		i.Ra = Reg(w >> raShift & regMask)
		i.Rb = Reg(w >> rbShift & regMask)
		i.Imm = int64(int16(w & imm16Mask))
	case OpBeq, OpBne, OpBlt, OpBge:
		i.Ra = Reg(w >> raShift & regMask)
		i.Imm = signExtend21(w & 0x1fffff)
	case OpBr, OpBsr:
		i.Rd = Reg(w >> raShift & regMask)
		i.Imm = signExtend21(w & 0x1fffff)
	case OpJmp:
		i.Ra = Reg(w >> raShift & regMask)
		i.Rd = Reg(w >> rbShift & regMask)
	}
	return i
}

func signExtend21(v uint32) int64 {
	return int64(int32(v<<11)) >> 11
}

// BranchTarget computes the target of a PC-relative control transfer located
// at pc. It is only meaningful for conditional branches, OpBr, and OpBsr.
func (i Inst) BranchTarget(pc uint64) uint64 {
	return pc + 4 + uint64(i.Imm*4)
}
