package pipeline

import "testing"

func TestStatsRates(t *testing.T) {
	s := Stats{
		Cycles:         1000,
		Committed:      2000,
		CommittedLoads: 400,
		MarkedLoads:    100,
		RexLoads:       40,
		RexFiltered:    60,
		Eliminated:     80,
	}
	if s.IPC() != 2.0 {
		t.Errorf("IPC = %f", s.IPC())
	}
	if s.RexRate() != 0.1 {
		t.Errorf("rex rate = %f", s.RexRate())
	}
	if s.MarkedRate() != 0.25 {
		t.Errorf("marked rate = %f", s.MarkedRate())
	}
	if s.FilterEffectiveness() != 0.6 {
		t.Errorf("filter effectiveness = %f", s.FilterEffectiveness())
	}
	if s.ElimRate() != 0.2 {
		t.Errorf("elim rate = %f", s.ElimRate())
	}
}

func TestStatsZeroDenominators(t *testing.T) {
	var s Stats
	if s.IPC() != 0 || s.RexRate() != 0 || s.MarkedRate() != 0 ||
		s.FilterEffectiveness() != 0 || s.ElimRate() != 0 {
		t.Error("zero-denominator rates must be 0")
	}
}

func TestStatsKindBreakdowns(t *testing.T) {
	s := Stats{CommittedLoads: 200}
	s.RexByKind[markSSQFSQ] = 10
	s.RexByKind[markSSQBest] = 30
	s.RexByKind[markRLEReuse] = 20
	s.RexByKind[markRLEBypass] = 40
	s.RexByKind[markNLQSM] = 2
	if s.RexRateFSQ() != 0.05 || s.RexRateBest() != 0.15 {
		t.Error("SSQ breakdown")
	}
	if s.RexRateReuse() != 0.10 || s.RexRateBypass() != 0.20 {
		t.Error("RLE breakdown")
	}
	if s.RexRateNLQSM() != 0.01 {
		t.Error("NLQsm breakdown")
	}
}
