package pipeline

import (
	"runtime"
	"testing"

	"svwsim/internal/raceflag"
	"svwsim/internal/workload"
)

// Allocation-regression gates for the timing core's hot structures and for
// the steady-state cycle loop as a whole.

// TestROBSteadyStateZeroAlloc: the uop arena. Push recycles ring slots in
// place; a full dispatch-lookup-retire round trip allocates nothing.
func TestROBSteadyStateZeroAlloc(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("allocation counts are perturbed under -race")
	}
	r := newROB(512)
	var seq uint64
	if allocs := testing.AllocsPerRun(200, func() {
		for i := 0; i < 8; i++ {
			u := r.push(seq)
			u.uid = seq
			seq++
		}
		r.at(seq - 4)
		r.headUop()
		for i := 0; i < 8; i++ {
			r.popHead()
		}
	}); allocs != 0 {
		t.Errorf("ROB: %v allocs per steady-state cycle, want 0", allocs)
	}
}

// TestEventWheelSteadyStateZeroAlloc: once a bucket has reached its
// high-water mark, scheduling and draining reuse it forever.
func TestEventWheelSteadyStateZeroAlloc(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("allocation counts are perturbed under -race")
	}
	var w eventWheel
	w.init()
	// Warm every bucket to the high-water mark the loop below needs.
	cycle := uint64(0)
	for ; cycle < 2*initialWheelSize; cycle++ {
		for i := 0; i < 4; i++ {
			w.schedule(cycle, cycle+5, eventRec{seq: cycle})
		}
		w.take(cycle + 5)
	}
	if allocs := testing.AllocsPerRun(500, func() {
		for i := 0; i < 4; i++ {
			w.schedule(cycle, cycle+5, eventRec{seq: cycle})
		}
		w.take(cycle + 5)
		cycle++
	}); allocs != 0 {
		t.Errorf("eventWheel: %v allocs per steady-state cycle, want 0", allocs)
	}
}

// TestEventWheelGrowsPastHorizon pins the growth path: events beyond the
// wheel size must survive, not collide.
func TestEventWheelGrowsPastHorizon(t *testing.T) {
	var w eventWheel
	w.init()
	w.schedule(0, 10, eventRec{seq: 1})
	w.schedule(0, 10+initialWheelSize, eventRec{seq: 2}) // same bucket index, future cycle
	if evs := w.take(10); len(evs) != 1 || evs[0].seq != 1 {
		t.Fatalf("near event lost after growth: %v", evs)
	}
	if evs := w.take(10 + initialWheelSize); len(evs) != 1 || evs[0].seq != 2 {
		t.Fatalf("far event lost after growth: %v", evs)
	}
}

// TestEventWheelDiscardsFlushSkippedBucket pins the stale-bucket rule: a
// bucket left undrained behind `now` (its cycle's writeback was skipped by
// a flush) is discarded when its slot is needed again, not grown around.
func TestEventWheelDiscardsFlushSkippedBucket(t *testing.T) {
	var w eventWheel
	w.init()
	w.schedule(0, 10, eventRec{seq: 1}) // never drained
	later := uint64(10 + initialWheelSize)
	w.schedule(later-1, later, eventRec{seq: 2}) // now is past the stale bucket
	if len(w.slots) != initialWheelSize {
		t.Fatalf("wheel grew to %d slots for a stale collision", len(w.slots))
	}
	if evs := w.take(later); len(evs) != 1 || evs[0].seq != 2 {
		t.Fatalf("new event lost: %v", evs)
	}
}

// TestSteadyStateCycleLoopAllocationFree runs the full SVW-filtered machine
// deep into steady state and bounds the cycle loop's residual allocation
// rate. The bound is not exactly zero — functional-memory pages fault in on
// first touch and the stall-PC histogram admits new static PCs — but those
// are one-time events; a per-cycle allocation leaking back into a stage
// shows up orders of magnitude above the threshold.
func TestSteadyStateCycleLoopAllocationFree(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("allocation counts are perturbed under -race")
	}
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := testConfig()
	cfg.Name = "alloc-nlq+svw"
	cfg.LSU = LSUNLQ
	cfg.LQSearch = false
	cfg.StoreIssue = 2
	cfg.Rex = RexReal
	cfg.SVW.Enabled = true
	cfg.SVW.UpdateOnForward = true
	cfg.MaxInsts = 0 // run under step control, not Run
	c := New(cfg, workload.Build(workload.TestProfile(7)))

	const warmCycles = 40_000
	for i := 0; i < warmCycles; i++ {
		c.step()
	}
	const measured = 20_000
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < measured; i++ {
		c.step()
	}
	runtime.ReadMemStats(&after)
	perCycle := float64(after.Mallocs-before.Mallocs) / measured
	if perCycle > 0.02 {
		t.Errorf("steady-state cycle loop allocates %.4f objects/cycle, want ~0", perCycle)
	}
	if c.stats.Committed == 0 {
		t.Fatal("core made no progress; measurement is vacuous")
	}
}
