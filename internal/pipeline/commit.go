package pipeline

import (
	"svwsim/internal/isa"
	"svwsim/internal/rle"
)

// Commit: in-order retirement at up to CommitWidth per cycle. Stores write
// the data cache (one per retirement port per cycle, sharing the port with
// load re-execution, with priority) and advance SSNretire, the SPCT, and —
// under the atomic policy — the SSBF. A load whose re-execution failed
// triggers a full flush: the load and everything younger refetch; the
// refetched load executes normally (its stale source was invalidated), and
// the predictors train so the mis-speculation does not recur.

func (c *Core) commit() {
	commitLat := c.cfg.commitLat()
	for n := 0; n < c.cfg.CommitWidth; n++ {
		u := c.rob.headUop()
		if u == nil {
			if n == 0 {
				c.stats.StallHeadEmpty++
			}
			return
		}
		if !u.completed {
			if n == 0 {
				c.stats.StallIncomplete++
				switch {
				case u.isLoad():
					c.stats.StallHeadLoad++
				case u.isStore():
					c.stats.StallHeadStore++
				case u.isBranch():
					c.stats.StallHeadBranch++
				default:
					c.stats.StallHeadALU++
				}
				if !u.issued {
					c.stats.StallHeadUnissued++
				}
				if c.stallPC == nil {
					c.stallPC = make(map[uint64]uint64)
				}
				c.stallPC[u.dyn.PC]++
			}
			return
		}
		if c.cycle < u.completeC+commitLat {
			if n == 0 {
				c.stats.StallCommitLat++
			}
			return
		}
		if c.cfg.Rex == RexReal && (u.rexDoneAt == ^uint64(0) || c.cycle < u.rexDoneAt) {
			if n == 0 {
				c.stats.StallRexWait++
			}
			return
		}
		if u.isLoad() && (u.rexFail ||
			(c.cfg.Rex == RexPerfect && u.marked && c.rexMismatch(u))) {
			c.handleRexFailure(u)
			return
		}
		if u.isStore() {
			if c.portsUsed >= c.cfg.RetirePorts {
				if n == 0 {
					c.stats.StallStorePort++
				}
				return // retirement port busy (or held by a re-access)
			}
			c.portsUsed++
			c.commitStore(u)
		}
		c.commitOne(u)
		if c.done {
			return
		}
	}
}

func (c *Core) commitStore(u *uop) {
	d := u.dyn
	c.commitMem.Write(d.EffAddr, d.MemBytes, d.StoreVal)
	c.hier.DCache.Access(d.EffAddr, c.cycle) // write access: tag update + occupancy
	c.ssnRetire++
	c.spct.Update(d.EffAddr, d.MemBytes, d.PC)
	if c.ssbf != nil && !c.cfg.SVW.SpeculativeSSBF {
		c.ssbf.Update(d.EffAddr, d.MemBytes, u.ssn)
	}
	if h := c.sq.Head(); h == nil || h.Seq != u.seq {
		panic("pipeline: store commit out of order with SQ")
	}
	c.sq.PopHead()
	if u.inFSQ {
		c.fsq.Remove(u.seq)
	}
	c.removeRexStoreBuf(u.seq)
	c.lastStoreLine = d.EffAddr
	c.stats.CommittedStores++
}

func (c *Core) commitOne(u *uop) {
	switch {
	case u.isLoad():
		c.commitLoadStats(u)
		c.lq.PopHead()
	case u.isBranch():
		c.stats.CommittedBr++
	case u.dyn.Inst.Op == isa.OpHalt:
		c.done = true
		return // leave the halt at the ROB head
	}
	if c.cfg.TraceCommit != nil {
		rec := TraceRecord{
			Seq: u.seq, PC: u.dyn.PC, Text: u.dyn.Inst.String(),
			FetchC: u.fetchC, RenameC: u.renameC, IssueC: u.issueC,
			CompleteC: u.completeC, RexDoneC: u.rexDoneAt, CommitC: c.cycle,
			Marked: u.marked, Filtered: u.rexFiltered,
			Eliminated: u.eliminated, Forwarded: u.fwdOK,
		}
		if u.isLoad() {
			rec.LoadExec = u.execValue
			if u.eliminated {
				rec.LoadExec = c.integratedValue(u)
			}
			rec.LoadOracle = u.dyn.LoadVal
		}
		c.cfg.TraceCommit(rec)
	}
	if u.destPhys != noPhys && u.oldDestPhys != noPhys {
		// The previous mapping of the destination register dies here.
		c.releaseRef(u.oldDestPhys)
	}
	if c.rexHead <= u.seq {
		c.rexHead = u.seq + 1
	}
	c.rob.popHead()
	if !c.rob.empty() {
		c.stream.Release(c.rob.headSeq)
	}
	c.stats.Committed++
	c.committedTotal++
	if c.cfg.MaxInsts > 0 && c.committedTotal >= c.cfg.MaxInsts {
		c.done = true
	}
	if !c.warmDone && c.committedTotal >= c.cfg.WarmupInsts {
		// Warm-up ends: predictors, caches, steering and store-sets keep
		// their state; the counters restart.
		c.warmDone = true
		c.warmCycle = c.cycle
		c.stats = Stats{}
	}
}

func (c *Core) commitLoadStats(u *uop) {
	c.stats.CommittedLoads++
	if u.marked {
		c.stats.MarkedLoads++
		c.stats.MarkedByKind[u.kind]++
		if c.cfg.Rex == RexPerfect && u.rexDoneAt == ^uint64(0) {
			// Ideal re-execution has no cost, so the rex walker may lag
			// commit; count the would-be re-execution here instead.
			c.countRex(u)
		}
	}
	if u.rexFiltered {
		c.stats.RexFiltered++
	}
	if u.kind == markSSQFSQ {
		c.stats.FSQLoads++
	}
	if u.usedBest {
		c.stats.BestEffortFwd++
	}
	if u.eliminated {
		c.stats.Eliminated++
		switch u.elimKind {
		case rle.KindReuse:
			c.stats.ElimReuse++
		case rle.KindBypass:
			c.stats.ElimBypass++
		}
		if u.elimSquash {
			c.stats.ElimSquash++
		}
	}
}

// handleRexFailure processes a load whose re-execution detected a
// mis-speculation: train the predictors, invalidate the stale integration
// source, and flush from the load (it refetches and executes normally; by
// now the conflicting store has committed, so the replay reads the correct
// value and cannot fail again).
func (c *Core) handleRexFailure(u *uop) {
	c.stats.RexFailures++
	c.stats.RexFlushes++
	d := u.dyn

	switch {
	case u.eliminated:
		// False elimination: kill the IT entry so the refetched load
		// executes for real.
		if e, ok := c.it.InvalidateHandle(u.elimHandle, u.elimSig); ok {
			c.releaseRef(e.DestPhys)
		}
	case c.cfg.LSU == LSUSSQ:
		// Missed or botched forwarding: steer the pair through the FSQ.
		c.steer.TagLoad(d.PC)
		if spc := c.spct.Lookup(d.EffAddr); spc != 0 {
			c.steer.TagStore(spc)
		}
	}
	if c.cfg.LSU == LSUNLQ {
		// Memory-ordering violation detected by re-execution: recover the
		// store PC through the SPCT and train store-sets (§2.2).
		c.ss.Train(d.PC, c.spct.Lookup(d.EffAddr))
	}
	c.requestFlush(u.seq - 1)
}

// removeRexStoreBuf drops a committed store from the internal rex buffer.
func (c *Core) removeRexStoreBuf(seq uint64) {
	for i, s := range c.rexStoreBuf {
		if s == seq {
			c.rexStoreBuf = append(c.rexStoreBuf[:i], c.rexStoreBuf[i+1:]...)
			return
		}
	}
}
