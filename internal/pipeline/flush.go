package pipeline

import "svwsim/internal/core"

// Flush recovery: squash every instruction younger than the request's
// keepSeq, walking the ROB young-to-old to unwind the rename map and release
// physical registers; IT entries created by squashed instructions are only
// marked (squash reuse keeps them live through their references); the oracle
// stream rewinds so the same records refetch.

func (c *Core) doFlush() {
	keep := c.flushKeep
	c.flushPend = false

	for !c.rob.empty() && c.rob.tailSeq() > keep {
		u := c.uopAt(c.rob.tailSeq())
		c.squashUop(u)
		c.rob.truncateTo(u.seq - 1)
	}

	c.sq.SquashYoungerThan(keep)
	if c.fsq != nil {
		c.fsq.SquashYoungerThan(keep)
	}
	c.lq.SquashYoungerOrEqual(keep + 1)

	// Scheduler and rex state.
	out := c.iq[:0]
	for _, seq := range c.iq {
		if seq <= keep {
			out = append(out, seq)
		}
	}
	c.iq = out
	bufOut := c.rexStoreBuf[:0]
	for _, seq := range c.rexStoreBuf {
		if seq <= keep {
			bufOut = append(bufOut, seq)
		}
	}
	c.rexStoreBuf = bufOut
	if c.rexHead > keep+1 {
		c.rexHead = keep + 1
	}

	// Front end: drop fetched-but-unrenamed instructions and redirect.
	c.fetchQClear()
	c.pendingRec = nil
	c.stream.Rewind(keep + 1)
	c.fetchStallTil = c.cycle + 2 // redirect bubble; refill via FrontDepth
	c.waitBranchSeq = ^uint64(0)
	c.haltSeen = false
	c.lastFetchLine = 0
	c.drainPending = false
}

// squashUop releases one instruction's resources, youngest-first.
func (c *Core) squashUop(u *uop) {
	if u.itHandle >= 0 && c.it != nil {
		// The entry survives for squash reuse; its reference keeps the
		// destination register alive (limbo).
		c.it.MarkSquashed(u.itHandle, u.itSig)
	}
	if u.destPhys != noPhys {
		c.rmap[u.destArch] = u.oldDestPhys
		c.releaseRef(u.destPhys)
	}
	if u.isStore() {
		c.ssnRename--
		c.ss.StoreSquashed(u.ssSet, u.seq)
	}
}

// maybeInvalidate is the NLQsm extension's synthetic coherence-traffic
// injector: every IntervalCycles it pretends another processor wrote the
// line most recently stored to, updating every SSBF bank with SSNrename+1
// (§3.2) and marking all issued in-flight loads for re-execution. The
// injected invalidations are value-neutral (like false sharing or silent
// remote stores), so they exercise the full NLQsm re-execution path without
// perturbing single-thread architectural state.
func (c *Core) maybeInvalidate() {
	iv := c.cfg.NLQSM.IntervalCycles
	if iv == 0 || c.cycle == 0 || c.cycle%iv != 0 {
		return
	}
	c.stats.Invalidations++
	if c.ssbf != nil {
		c.ssbf.Invalidate(c.lastStoreLine, core.InvalidationSSN(c.ssnRename))
	}
	if c.cfg.Rex == RexNone {
		return
	}
	if c.rob.empty() {
		return
	}
	for seq := c.rob.headSeq; seq <= c.rob.tailSeq(); seq++ {
		u := c.uopAt(seq)
		if u != nil && u.isLoad() && !u.eliminated && u.issued && !u.marked {
			u.marked = true
			u.kind = markNLQSM
		}
	}
}
