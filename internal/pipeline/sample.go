package pipeline

// Sampled simulation: alternate cheap functional fast-forward with short
// detailed windows, SMARTS-style. The functional emulator is the oracle the
// timing core replays anyway, so fast-forwarding through it is semantically
// identical to detailed execution — only the timing structures (and their
// cost) are skipped. Scaling the measured window counters back up to the
// full instruction budget happens in the engine (Stats.Scale); this file
// holds the spec and the core-level primitives.

import (
	"fmt"
	"math/bits"
	"strconv"
	"strings"

	"svwsim/internal/emu"
	"svwsim/internal/prog"
)

// SampleSpec configures detailed-window sampling. Each period of Period
// committed instructions is represented by one detailed window: Warmup
// commits to re-warm the timing structures (counters reset when it ends,
// exactly like Config.WarmupInsts) followed by Detail measured commits; the
// remaining Period-Warmup-Detail instructions are fast-forwarded
// functionally. The zero value means exact (unsampled) simulation.
type SampleSpec struct {
	Warmup uint64 // detailed commits per window before counters start
	Detail uint64 // measured commits per window
	Period uint64 // committed instructions each window represents
}

// Enabled reports whether the spec asks for sampling at all.
func (s SampleSpec) Enabled() bool { return s != (SampleSpec{}) }

// Validate checks an enabled spec for coherence. The zero value is valid
// (exact mode); a partially filled spec is not.
func (s SampleSpec) Validate() error {
	if !s.Enabled() {
		return nil
	}
	if s.Detail == 0 {
		return fmt.Errorf("sample: detail window must be > 0")
	}
	if s.Period < s.Warmup+s.Detail {
		return fmt.Errorf("sample: period %d shorter than warmup %d + detail %d",
			s.Period, s.Warmup, s.Detail)
	}
	return nil
}

// String renders the spec in the canonical w:d:p spelling the memo-key
// suffix and the CLI flags use.
func (s SampleSpec) String() string {
	return fmt.Sprintf("%d:%d:%d", s.Warmup, s.Detail, s.Period)
}

// ParseSampleSpec parses the canonical w:d:p spelling (String's inverse).
// The parsed spec is syntactically checked only; callers that require a
// coherent spec still Validate it.
func ParseSampleSpec(v string) (SampleSpec, error) {
	parts := strings.Split(v, ":")
	if len(parts) != 3 {
		return SampleSpec{}, fmt.Errorf("sample: want warmup:detail:period, got %q", v)
	}
	var nums [3]uint64
	for i, p := range parts {
		n, err := strconv.ParseUint(p, 10, 64)
		if err != nil {
			return SampleSpec{}, fmt.Errorf("sample: bad count %q in %q", p, v)
		}
		nums[i] = n
	}
	return SampleSpec{Warmup: nums[0], Detail: nums[1], Period: nums[2]}, nil
}

// FastForward advances the core's architectural state by up to n committed
// instructions through the functional emulator alone — no timing structure
// is touched — and re-seeds the committed memory image from the result. It
// reports how many instructions actually executed (fewer than n only when
// the program halted or hit a decode error). Valid only on a freshly Reset
// core, before the first cycle: the pipeline must not hold in-flight state
// for the skipped region.
func (c *Core) FastForward(n uint64) (uint64, error) {
	if c.cycle != 0 || c.committedTotal != 0 {
		panic("pipeline: FastForward on a core that already simulated")
	}
	executed, err := c.emu.FastForward(n)
	c.commitMem = c.emu.Mem.Clone()
	return executed, err
}

// ResetFrom is Reset, but the run starts from a previously captured
// architectural snapshot instead of the program's entry point: the emulator
// adopts the snapshot and the committed memory image is re-seeded from its
// memory. cfg and p must describe the same program the snapshot was taken
// from (the decode table still comes from p).
func (c *Core) ResetFrom(cfg Config, p *prog.Program, st emu.ArchState) {
	c.Reset(cfg, p)
	c.emu.Restore(st)
	c.commitMem = st.Mem.Clone()
}

// ResetWindow is ResetFrom for the second and later windows of one sampled
// run: the architectural state comes from the snapshot, but the trained
// microarchitectural substrates — cache tags, branch predictor, store-set
// SSIT, SPCT, SSQ steering — carry over from the previous window instead of
// being rebuilt cold, and the cycle counter keeps counting (cache MSHR and
// bus occupancy hold absolute cycles; a monotone clock keeps them coherent).
// A window measured over stale-but-trained state tracks the full run far
// more closely than a cold one: the substrates hold history a short
// per-window warm-up cannot re-create. In-flight state does not carry — the
// store-set LFST (which names live store sequence numbers) is flushed, and
// the SSN-epoch-tagged SSBF and the physical-register-referencing IT are
// rebuilt like every other reset. Substrate event counters reset so the
// window measures its own rates over the warm state.
//
// On a fresh Core (no previous window) this degrades to exactly ResetFrom.
func (c *Core) ResetWindow(cfg Config, p *prog.Program, st emu.ArchState) {
	hier, bp, ss, spct, steer := c.hier, c.bp, c.ss, c.spct, c.steer
	cycle := c.cycle
	c.Reset(cfg, p)
	if hier != nil {
		c.hier, c.bp, c.spct = hier, bp, spct
		hier.ResetStats()
		bp.ResetStats()
		if ss != nil {
			c.ss = ss
			ss.FlushInflight()
			ss.ResetStats()
		}
		if steer != nil && cfg.LSU == LSUSSQ {
			c.steer = steer
		}
		c.cycle = cycle
		c.warmCycle = cycle
	}
	c.emu.Restore(st)
	c.commitMem = st.Mem.Clone()
}

// EmuState snapshots the underlying emulator's architectural state (see
// emu.Emulator.State). Meaningful after FastForward and before detailed
// simulation begins; once cycles run, the oracle emulator speculatively
// leads commit and its state is not an architectural point.
func (c *Core) EmuState() emu.ArchState { return c.emu.State() }

// Halted reports whether the underlying emulator has executed a halt —
// after a FastForward that came up short, there is nothing left to run.
func (c *Core) Halted() bool { return c.emu.Halted() }

// scaleCounter computes v*num/den in 128-bit intermediate precision with
// round-half-up, so window counters scale to full-run estimates without
// overflow or platform-dependent float rounding.
func scaleCounter(v, num, den uint64) uint64 {
	hi, lo := bits.Mul64(v, num)
	lo, carry := bits.Add64(lo, den/2, 0)
	hi += carry
	if hi >= den {
		return ^uint64(0) // saturate; unreachable for sane scale factors
	}
	q, _ := bits.Div64(hi, lo, den)
	return q
}
