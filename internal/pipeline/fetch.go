package pipeline

import (
	"svwsim/internal/emu"
	"svwsim/internal/isa"
)

// Fetch: consume oracle records at up to FetchWidth per cycle, modeling the
// instruction cache, the one-taken-branch-per-cycle limit, BTB bubbles, and
// mispredict stalls (fetch freezes until the branch resolves; the front-end
// refill is modeled by FrontDepth on the replacement instructions).

func (c *Core) fetch() {
	if c.haltSeen || c.cycle < c.fetchStallTil || c.waitBranchSeq != ^uint64(0) {
		return
	}
	capacity := c.cfg.FetchWidth * (c.cfg.FrontDepth + 1)
	takenSeen := 0
	for n := 0; n < c.cfg.FetchWidth; n++ {
		if len(c.fetchQ) >= capacity {
			return
		}
		rec := c.pendingRec
		if rec == nil {
			rec = c.stream.Next()
			if rec == nil {
				c.haltSeen = true // stream exhausted (halt already delivered)
				return
			}
		}
		c.pendingRec = rec

		// Instruction cache: pay for each new line entered.
		line := rec.PC &^ 63
		if line != c.lastFetchLine {
			done := c.hier.ICache.Access(rec.PC, c.cycle)
			hit := c.cycle + uint64(c.cfg.Mem.ICache.Latency)
			c.lastFetchLine = line
			if done > hit {
				c.fetchStallTil = done
				return // record stays pending
			}
		}

		inst := rec.Inst
		if inst.IsBranch() {
			if rec.Taken {
				takenSeen++
				if takenSeen > 1 {
					return // past one taken branch per cycle; resume next cycle
				}
			}
			out := c.bp.Lookup(rec.PC, inst, rec.Taken, rec.NextPC)
			c.accept(rec)
			switch {
			case out.DirMispredict || out.TargetMispredict:
				c.stats.Mispredicts++
				c.waitBranchSeq = rec.Seq
				return
			case out.BTBMiss && rec.Taken:
				// Target produced at decode: short redirect bubble.
				c.fetchStallTil = c.cycle + 2
				return
			}
			continue
		}
		c.accept(rec)
		if inst.Op == isa.OpHalt {
			c.haltSeen = true
			return
		}
	}
}

// accept moves the pending record into the fetch queue.
func (c *Core) accept(rec *emu.DynInst) {
	c.fetchQ = append(c.fetchQ, fetchRec{dyn: rec, fetchC: c.cycle})
	c.pendingRec = nil
	c.stats.FetchedInsts++
}
