package pipeline

import (
	"svwsim/internal/emu"
	"svwsim/internal/isa"
)

// Fetch: consume oracle records at up to FetchWidth per cycle, modeling the
// instruction cache, the one-taken-branch-per-cycle limit, BTB bubbles, and
// mispredict stalls (fetch freezes until the branch resolves; the front-end
// refill is modeled by FrontDepth on the replacement instructions).
//
// The fetch queue is a fixed ring of FetchWidth*(FrontDepth+1) slots — the
// front-end pipe's full occupancy — so accepting and renaming instructions
// moves indices, never memory.

// fetchQPush appends at the ring tail.
func (c *Core) fetchQPush(r fetchRec) {
	c.fetchQ[(c.fetchHead+c.fetchLen)&c.fetchMask] = r
	c.fetchLen++
}

// fetchQFront returns the oldest queued record; only valid when fetchLen > 0.
func (c *Core) fetchQFront() *fetchRec { return &c.fetchQ[c.fetchHead] }

// fetchQPop removes the oldest queued record, clearing the slot so the ring
// holds no stale oracle-record pointers.
func (c *Core) fetchQPop() {
	c.fetchQ[c.fetchHead] = fetchRec{}
	c.fetchHead = (c.fetchHead + 1) & c.fetchMask
	c.fetchLen--
}

// fetchQClear empties the ring (flush recovery).
func (c *Core) fetchQClear() {
	for c.fetchLen > 0 {
		c.fetchQPop()
	}
}

func (c *Core) fetch() {
	if c.haltSeen || c.cycle < c.fetchStallTil || c.waitBranchSeq != ^uint64(0) {
		return
	}
	capacity := c.cfg.FetchWidth * (c.cfg.FrontDepth + 1)
	takenSeen := 0
	for n := 0; n < c.cfg.FetchWidth; n++ {
		if c.fetchLen >= capacity {
			return
		}
		rec := c.pendingRec
		if rec == nil {
			rec = c.stream.Next()
			if rec == nil {
				c.haltSeen = true // stream exhausted (halt already delivered)
				return
			}
		}
		c.pendingRec = rec

		// Instruction cache: pay for each new line entered.
		line := rec.PC &^ 63
		if line != c.lastFetchLine {
			done := c.hier.ICache.Access(rec.PC, c.cycle)
			hit := c.cycle + uint64(c.cfg.Mem.ICache.Latency)
			c.lastFetchLine = line
			if done > hit {
				c.fetchStallTil = done
				return // record stays pending
			}
		}

		inst := rec.Inst
		if inst.IsBranch() {
			if rec.Taken {
				takenSeen++
				if takenSeen > 1 {
					return // past one taken branch per cycle; resume next cycle
				}
			}
			out := c.bp.Lookup(rec.PC, inst, rec.Taken, rec.NextPC)
			c.accept(rec)
			switch {
			case out.DirMispredict || out.TargetMispredict:
				c.stats.Mispredicts++
				c.waitBranchSeq = rec.Seq
				return
			case out.BTBMiss && rec.Taken:
				// Target produced at decode: short redirect bubble.
				c.fetchStallTil = c.cycle + 2
				return
			}
			continue
		}
		c.accept(rec)
		if inst.Op == isa.OpHalt {
			c.haltSeen = true
			return
		}
	}
}

// accept moves the pending record into the fetch queue.
func (c *Core) accept(rec *emu.DynInst) {
	c.fetchQPush(fetchRec{dyn: rec, fetchC: c.cycle})
	c.pendingRec = nil
	c.stats.FetchedInsts++
}
