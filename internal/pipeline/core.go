package pipeline

import (
	"fmt"

	"svwsim/internal/bpred"
	"svwsim/internal/cache"
	"svwsim/internal/core"
	"svwsim/internal/emu"
	"svwsim/internal/lsq"
	"svwsim/internal/memimage"
	"svwsim/internal/prog"
	"svwsim/internal/rle"
	"svwsim/internal/storesets"
)

// Core is one simulated machine bound to one program run.
type Core struct {
	cfg Config

	// Oracle side.
	stream *emu.Stream

	// Committed architectural memory: advanced only at store commit. Loads
	// executing speculatively read this image (plus forwarding), which is
	// how stale values arise.
	commitMem *memimage.Image

	// Structures.
	rob   *rob
	sq    *lsq.StoreQueue // conventional SQ / SSQ's RSQ
	fsq   *lsq.StoreQueue // SSQ only
	lq    *lsq.LoadQueue
	fbs   []*lsq.FwdBuffer // per bank, SSQ only
	steer *lsq.Steering    // SSQ only

	// Renaming.
	rmap     [32]int
	freeList []int
	refCnt   []int
	physVal  []uint64
	readyAt  []uint64 // value-available cycle per phys reg

	// Scheduler.
	iq []uint64 // seqs of dispatched, un-issued instructions, age-ordered

	// Completion events: cycle -> (seq, uid) pairs.
	events map[uint64][]eventRec
	// Stores whose address resolved but whose data register is in flight.
	pendingSTD []eventRec

	// Fetch.
	fetchQ        []fetchRec
	pendingRec    *emu.DynInst
	fetchStallTil uint64
	waitBranchSeq uint64 // seq of unresolved mispredicted branch, or ^0
	lastFetchLine uint64
	haltSeen      bool

	// SSN state.
	ssnRename    core.SSN
	ssnRetire    core.SSN
	drainPending bool
	// drainedAt remembers the SSN at the last completed wrap drain so the
	// store that triggered it can proceed without re-arming the drain.
	drainedAt core.SSN
	wrap      core.WrapControl

	// Re-execution engine.
	rexHead     uint64 // seq of next instruction to pass the rex pipe
	rexStoreBuf []uint64
	// portsUsed counts D$ retirement-port grants this cycle: store commits
	// plus re-execution read launches. Commit runs first each cycle,
	// giving it priority for the shared port, per the paper.
	portsUsed int

	// Substrates.
	hier *cache.Hierarchy
	bp   *bpred.Predictor
	ss   *storesets.StoreSets
	ssbf *core.SSBF
	spct *core.SPCT
	it   *rle.Table

	// Run state.
	cycle          uint64
	uidGen         uint64
	done           bool
	stats          Stats
	flushWant      *flushReq
	lastStoreLine  uint64
	committedTotal uint64 // includes warm-up commits
	warmDone       bool
	warmCycle      uint64 // cycle at which measurement began
	stallPC        map[uint64]uint64
}

// TopStallPCs returns up to n (pc, cycles) pairs of head-blocking PCs,
// most-blocking first (diagnostics).
func (c *Core) TopStallPCs(n int) [][2]uint64 {
	var out [][2]uint64
	for pc, cnt := range c.stallPC {
		out = append(out, [2]uint64{pc, cnt})
	}
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			if out[j][1] > out[i][1] {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	if len(out) > n {
		out = out[:n]
	}
	return out
}

type eventRec struct {
	seq uint64
	uid uint64
}

type fetchRec struct {
	dyn    *emu.DynInst
	fetchC uint64
}

type flushReq struct {
	keepSeq uint64 // squash everything with seq > keepSeq
}

// New builds a core over a fresh instance of the program.
func New(cfg Config, p *prog.Program) *Core {
	img := p.NewImage()
	em := emu.New(img, p.Entry)
	c := &Core{
		cfg:           cfg,
		stream:        emu.NewStream(em),
		commitMem:     p.NewImage(),
		rob:           newROB(cfg.ROBSize),
		sq:            lsq.NewStoreQueue(cfg.SQSize),
		lq:            lsq.NewLoadQueue(cfg.LQSize),
		events:        make(map[uint64][]eventRec),
		hier:          cache.NewHierarchy(cfg.Mem),
		bp:            bpred.New(cfg.BP),
		ss:            storesets.New(cfg.SS),
		spct:          core.NewSPCT(cfg.SPCT),
		wrap:          core.WrapControl{Bits: cfg.SVW.SSNBits},
		waitBranchSeq: ^uint64(0),
	}
	if cfg.LSU == LSUSSQ {
		c.fsq = lsq.NewStoreQueue(cfg.FSQSize)
		c.steer = lsq.NewSteering()
		c.fbs = make([]*lsq.FwdBuffer, cfg.DBanks)
		for i := range c.fbs {
			c.fbs[i] = lsq.NewFwdBuffer(cfg.FBSize)
		}
	}
	if cfg.SVW.Enabled {
		c.ssbf = core.NewSSBF(cfg.SVW.SSBF)
	}
	if cfg.RLE.Enabled {
		c.it = rle.New(cfg.RLE.IT)
	}

	// Physical register 0 is pinned: it backs architectural zero and the
	// initial (all-zero) mappings of every architectural register.
	c.refCnt = make([]int, cfg.PhysRegs)
	c.physVal = make([]uint64, cfg.PhysRegs)
	c.readyAt = make([]uint64, cfg.PhysRegs)
	c.refCnt[0] = 1 << 30 // pinned
	for i := range c.rmap {
		c.rmap[i] = 0
	}
	for p := cfg.PhysRegs - 1; p >= 1; p-- {
		c.freeList = append(c.freeList, p)
	}
	if cfg.WarmupInsts == 0 {
		c.warmDone = true
	}
	return c
}

// Stats returns the run statistics (valid after Run).
func (c *Core) Stats() *Stats { return &c.stats }

// Cycle returns the current cycle.
func (c *Core) Cycle() uint64 { return c.cycle }

// CommittedMem exposes the committed architectural memory image. After a
// run, it must equal the image a pure functional execution of the same
// number of instructions produces — the end-to-end correctness oracle used
// by the integration tests.
func (c *Core) CommittedMem() *memimage.Image { return c.commitMem }

// CommittedTotal reports all commits including warm-up.
func (c *Core) CommittedTotal() uint64 { return c.committedTotal }

// Run simulates until MaxInsts instructions commit, the program halts, or
// MaxCycles elapse. It returns an error only for internal inconsistencies
// (oracle stream errors), never for program behavior.
func (c *Core) Run() error {
	for !c.done {
		if c.cfg.MaxCycles > 0 && c.cycle >= c.cfg.MaxCycles {
			return fmt.Errorf("pipeline: cycle limit %d hit at %d committed insts (deadlock?)\n%s",
				c.cfg.MaxCycles, c.stats.Committed, c.debugState())
		}
		c.step()
		if err := c.stream.Err(); err != nil {
			return err
		}
	}
	c.finalizeStats()
	return nil
}

// step advances one cycle. Stages run commit-first (reverse pipeline order)
// so each stage sees the previous cycle's state of its upstream neighbor.
func (c *Core) step() {
	c.portsUsed = 0
	c.commit()
	if c.flushWant != nil {
		c.doFlush()
		c.cycle++
		return
	}
	if c.done {
		return
	}
	c.rex()
	c.writeback()
	if c.flushWant != nil { // ordering violation found at store resolve
		c.doFlush()
		c.cycle++
		return
	}
	c.issue()
	c.rename()
	c.fetch()
	if c.cfg.NLQSM.Enabled {
		c.maybeInvalidate()
	}
	if iv := c.cfg.SS.ClearInterval; iv > 0 && c.cycle > 0 && c.cycle%iv == 0 {
		c.ss.Clear()
	}
	c.cycle++
}

func (c *Core) finalizeStats() {
	c.stats.Cycles = c.cycle - c.warmCycle
	c.stats.BranchAccuracy = c.bp.Accuracy()
	c.stats.ICacheMissRate = c.hier.ICache.MissRate()
	c.stats.DCacheMissRate = c.hier.DCache.MissRate()
	c.stats.L2MissRate = c.hier.L2.MissRate()
	if c.ssbf != nil {
		c.stats.SSBFLookups = c.ssbf.Lookups
		c.stats.SSBFPositives = c.ssbf.Positives
	}
	c.stats.WrapDrains = c.wrap.Drains
}

// uopAt returns the in-flight uop with seq, or nil.
func (c *Core) uopAt(seq uint64) *uop { return c.rob.at(seq) }

// scheduleEvent registers a completion event.
func (c *Core) scheduleEvent(cycle uint64, u *uop) {
	c.events[cycle] = append(c.events[cycle], eventRec{seq: u.seq, uid: u.uid})
}

// --- Physical register management ---------------------------------------

func (c *Core) allocPhys() (int, bool) {
	n := len(c.freeList)
	if n == 0 {
		return noPhys, false
	}
	p := c.freeList[n-1]
	c.freeList = c.freeList[:n-1]
	c.refCnt[p] = 0
	c.readyAt[p] = ^uint64(0)
	return p, true
}

// addRef pins a physical register (mapping reference or IT reference).
func (c *Core) addRef(p int) {
	if p > 0 {
		c.refCnt[p]++
	}
}

// releaseRef drops a reference; registers free when the count reaches zero,
// which also invalidates IT entries whose signature depends on them
// (cascading, since those entries hold references of their own).
func (c *Core) releaseRef(p int) {
	work := []int{p}
	for len(work) > 0 {
		q := work[len(work)-1]
		work = work[:len(work)-1]
		if q <= 0 {
			continue
		}
		c.refCnt[q]--
		if c.refCnt[q] > 0 {
			continue
		}
		if c.refCnt[q] < 0 {
			panic("pipeline: negative physical register refcount")
		}
		c.freeList = append(c.freeList, q)
		if c.it != nil {
			for _, e := range c.it.InvalidateByBase(q) {
				work = append(work, e.DestPhys)
			}
		}
	}
}

// setPhysValue records the value produced into p (used by squash reuse and
// eliminated-load verification).
func (c *Core) setPhysValue(p int, v uint64, when uint64) {
	if p > 0 {
		c.physVal[p] = v
		c.readyAt[p] = when
	}
}
