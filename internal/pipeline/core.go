package pipeline

import (
	"fmt"

	"svwsim/internal/bpred"
	"svwsim/internal/cache"
	"svwsim/internal/core"
	"svwsim/internal/emu"
	"svwsim/internal/lsq"
	"svwsim/internal/memimage"
	"svwsim/internal/prog"
	"svwsim/internal/rle"
	"svwsim/internal/storesets"
)

// Core is one simulated machine bound to one program run.
//
// The steady-state cycle loop is allocation-free: uops recycle through the
// ROB ring, oracle records through the stream's arena, completion events
// through the event wheel's buckets, and the load/store queues are
// fixed-capacity rings. The only allocations after warm-up are amortized
// growth events (wheel expansion under extreme bus contention, new stall-PC
// map keys bounded by static code size) and functional-memory page faults on
// first touch.
type Core struct {
	cfg Config

	// Oracle side. emu is the stream's underlying functional emulator,
	// retained so FastForward and ResetFrom can drive it directly.
	stream *emu.Stream
	emu    *emu.Emulator

	// Committed architectural memory: advanced only at store commit. Loads
	// executing speculatively read this image (plus forwarding), which is
	// how stale values arise.
	commitMem *memimage.Image

	// Structures.
	rob   *rob
	sq    *lsq.StoreQueue // conventional SQ / SSQ's RSQ
	fsq   *lsq.StoreQueue // SSQ only
	lq    *lsq.LoadQueue
	fbs   []*lsq.FwdBuffer // per bank, SSQ only
	steer *lsq.Steering    // SSQ only

	// Renaming.
	rmap     [32]int
	freeList []int
	refCnt   []int
	physVal  []uint64
	readyAt  []uint64 // value-available cycle per phys reg

	// Scheduler.
	iq []uint64 // seqs of dispatched, un-issued instructions, age-ordered

	// Completion events, bucketed by cycle on a reusable wheel.
	events eventWheel
	// Stores whose address resolved but whose data register is in flight.
	pendingSTD []eventRec

	// Fetch: a fixed ring of FetchWidth*(FrontDepth+1) slots.
	fetchQ        []fetchRec
	fetchHead     int
	fetchLen      int
	fetchMask     int
	pendingRec    *emu.DynInst
	fetchStallTil uint64
	waitBranchSeq uint64 // seq of unresolved mispredicted branch, or ^0
	lastFetchLine uint64
	haltSeen      bool

	// SSN state.
	ssnRename    core.SSN
	ssnRetire    core.SSN
	drainPending bool
	// drainedAt remembers the SSN at the last completed wrap drain so the
	// store that triggered it can proceed without re-arming the drain.
	drainedAt core.SSN
	wrap      core.WrapControl

	// Re-execution engine.
	rexHead     uint64 // seq of next instruction to pass the rex pipe
	rexStoreBuf []uint64
	// portsUsed counts D$ retirement-port grants this cycle: store commits
	// plus re-execution read launches. Commit runs first each cycle,
	// giving it priority for the shared port, per the paper.
	portsUsed int

	// Substrates.
	hier *cache.Hierarchy
	bp   *bpred.Predictor
	ss   *storesets.StoreSets
	ssbf *core.SSBF
	spct *core.SPCT
	it   *rle.Table

	// Run state.
	cycle          uint64
	uidGen         uint64
	done           bool
	stats          Stats
	flushPend      bool
	flushKeep      uint64 // squash everything with seq > flushKeep
	lastStoreLine  uint64
	committedTotal uint64 // includes warm-up commits
	warmDone       bool
	warmCycle      uint64 // cycle at which measurement began
	stallPC        map[uint64]uint64

	// Reusable scratch (never escapes a call).
	bankBusy  []bool      // per-cycle D$ bank occupancy (issue)
	refWork   []int       // releaseRef work list
	itScratch []rle.Entry // InvalidateByBase result buffer
}

// TopStallPCs returns up to n (pc, cycles) pairs of head-blocking PCs,
// most-blocking first (diagnostics).
func (c *Core) TopStallPCs(n int) [][2]uint64 {
	var out [][2]uint64
	for pc, cnt := range c.stallPC {
		out = append(out, [2]uint64{pc, cnt})
	}
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			if out[j][1] > out[i][1] {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	if len(out) > n {
		out = out[:n]
	}
	return out
}

type eventRec struct {
	seq uint64
	uid uint64
}

type fetchRec struct {
	dyn    *emu.DynInst
	fetchC uint64
}

// --- Event wheel ---------------------------------------------------------

// eventWheel buckets completion events by cycle on a power-of-two ring.
// Invariant: a non-empty slot holds events for exactly one cycle (recorded
// in the slot), so two cycles whose indices collide — they differ by a
// multiple of the wheel size — force a growth instead of mixing. Buckets are
// reused via [:0] truncation; after the wheel reaches the machine's event
// horizon (memory latency plus worst-case bus queueing), scheduling and
// draining never allocate.
type eventWheel struct {
	slots []eventSlot
	mask  uint64
}

type eventSlot struct {
	cycle uint64
	evs   []eventRec
}

const initialWheelSize = 1024

func (w *eventWheel) init() {
	if w.slots == nil {
		w.slots = make([]eventSlot, initialWheelSize)
		w.mask = initialWheelSize - 1
	}
}

// reset empties every bucket, retaining their backing arrays.
func (w *eventWheel) reset() {
	for i := range w.slots {
		w.slots[i].evs = w.slots[i].evs[:0]
	}
}

// schedule adds an event for the given cycle, growing the wheel when the
// target bucket is occupied by a different still-pending cycle. A bucket
// whose cycle is already behind now was skipped by a flush (the flush
// squashed every uop those events referenced, so draining them would be a
// no-op); it is discarded. A bucket for a different future cycle — the
// event horizon exceeds the wheel — forces a growth instead of mixing.
func (w *eventWheel) schedule(now, cycle uint64, ev eventRec) {
	s := &w.slots[cycle&w.mask]
	for len(s.evs) > 0 && s.cycle != cycle {
		if s.cycle < now {
			s.evs = s.evs[:0]
			break
		}
		w.grow()
		s = &w.slots[cycle&w.mask]
	}
	s.cycle = cycle
	s.evs = append(s.evs, ev)
}

// take returns (and logically empties) the bucket for cycle. The returned
// slice stays valid through the caller's drain because no event is ever
// scheduled for the cycle being drained.
func (w *eventWheel) take(cycle uint64) []eventRec {
	s := &w.slots[cycle&w.mask]
	if len(s.evs) == 0 || s.cycle != cycle {
		return nil
	}
	evs := s.evs
	s.evs = s.evs[:0]
	return evs
}

// grow doubles the wheel, redistributing occupied buckets.
func (w *eventWheel) grow() {
	old := w.slots
	w.slots = make([]eventSlot, 2*len(old))
	w.mask = uint64(len(w.slots)) - 1
	for i := range old {
		if len(old[i].evs) == 0 {
			continue
		}
		s := &w.slots[old[i].cycle&w.mask]
		s.cycle = old[i].cycle
		s.evs = append(s.evs, old[i].evs...)
	}
}

// --- Construction --------------------------------------------------------

// New builds a core over a fresh instance of the program.
func New(cfg Config, p *prog.Program) *Core {
	c := new(Core)
	c.Reset(cfg, p)
	return c
}

// Reset rebinds the core to a configuration and a fresh instance of the
// program, reusing every capacity-compatible allocation from the previous
// run: the ROB ring, the load/store queue rings, the register files, the
// event wheel, the oracle stream's record arena, and all scratch buffers.
// A Reset core is observationally identical to a New one — same cycles,
// same stats, byte-identical study output — which the determinism suite
// asserts; the experiment engine relies on it to run one simulator per
// worker instead of constructing one per job.
//
// Substrate predictors and caches (branch predictor, store-sets, SSBF,
// SPCT, IT, cache hierarchy) are rebuilt from scratch: they carry trained
// state whose full clearing is exactly equivalent to reconstruction, and
// they are small compared to the core's rings.
func (c *Core) Reset(cfg Config, p *prog.Program) {
	img := p.NewImage()
	em := emu.New(img, p.Entry)
	em.SetDecodeTable(p.Base, p.Decoded())

	old := *c
	*c = Core{
		cfg:           cfg,
		emu:           em,
		commitMem:     p.NewImage(),
		hier:          cache.NewHierarchy(cfg.Mem),
		bp:            bpred.New(cfg.BP),
		ss:            storesets.New(cfg.SS),
		spct:          core.NewSPCT(cfg.SPCT),
		wrap:          core.WrapControl{Bits: cfg.SVW.SSNBits},
		waitBranchSeq: ^uint64(0),
	}

	// Oracle stream: recycle the record arena.
	if old.stream != nil {
		c.stream = old.stream
		c.stream.Reset(em)
	} else {
		c.stream = emu.NewStream(em)
	}

	// ROB ring.
	if old.rob != nil && old.rob.capN == cfg.ROBSize {
		c.rob = old.rob
		c.rob.reset()
	} else {
		c.rob = newROB(cfg.ROBSize)
	}

	// Load/store queue rings.
	c.sq = resetStoreQueue(old.sq, cfg.SQSize)
	c.lq = resetLoadQueue(old.lq, cfg.LQSize)
	if cfg.LSU == LSUSSQ {
		c.fsq = resetStoreQueue(old.fsq, cfg.FSQSize)
		c.steer = lsq.NewSteering()
		if len(old.fbs) == cfg.DBanks {
			c.fbs = old.fbs
			for _, fb := range c.fbs {
				fb.Reset(cfg.FBSize)
			}
		} else {
			c.fbs = make([]*lsq.FwdBuffer, cfg.DBanks)
			for i := range c.fbs {
				c.fbs[i] = lsq.NewFwdBuffer(cfg.FBSize)
			}
		}
	}
	if cfg.SVW.Enabled {
		c.ssbf = core.NewSSBF(cfg.SVW.SSBF)
	}
	if cfg.RLE.Enabled {
		c.it = rle.New(cfg.RLE.IT)
	}

	// Event wheel and scratch buffers.
	c.events = old.events
	c.events.init()
	c.events.reset()
	c.pendingSTD = old.pendingSTD[:0]
	c.rexStoreBuf = old.rexStoreBuf[:0]
	c.iq = resizeCap(old.iq, cfg.IQSize)
	c.refWork = old.refWork[:0]
	c.itScratch = old.itScratch[:0]
	if len(old.bankBusy) == cfg.DBanks {
		c.bankBusy = old.bankBusy
	} else {
		c.bankBusy = make([]bool, cfg.DBanks)
	}

	// Fetch ring.
	fcap := cfg.FetchWidth * (cfg.FrontDepth + 1)
	if fsz := lsq.RingSize(fcap); len(old.fetchQ) == fsz {
		c.fetchQ = old.fetchQ
	} else {
		c.fetchQ = make([]fetchRec, fsz)
	}
	c.fetchMask = len(c.fetchQ) - 1
	for i := range c.fetchQ {
		c.fetchQ[i] = fetchRec{}
	}

	// Physical register file. Register 0 is pinned: it backs architectural
	// zero and the initial (all-zero) mappings of every architectural
	// register.
	c.refCnt = resizeInts(old.refCnt, cfg.PhysRegs)
	c.physVal = resizeU64s(old.physVal, cfg.PhysRegs)
	c.readyAt = resizeU64s(old.readyAt, cfg.PhysRegs)
	c.refCnt[0] = 1 << 30 // pinned
	for i := range c.rmap {
		c.rmap[i] = 0
	}
	c.freeList = old.freeList[:0]
	for p := cfg.PhysRegs - 1; p >= 1; p-- {
		c.freeList = append(c.freeList, p)
	}
	if cfg.WarmupInsts == 0 {
		c.warmDone = true
	}
}

func resetStoreQueue(q *lsq.StoreQueue, capacity int) *lsq.StoreQueue {
	if q != nil && q.Cap() == capacity {
		q.Reset()
		return q
	}
	return lsq.NewStoreQueue(capacity)
}

func resetLoadQueue(q *lsq.LoadQueue, capacity int) *lsq.LoadQueue {
	if q != nil && q.Cap() == capacity {
		q.Reset()
		return q
	}
	return lsq.NewLoadQueue(capacity)
}

func resizeCap(s []uint64, capacity int) []uint64 {
	if cap(s) >= capacity {
		return s[:0]
	}
	return make([]uint64, 0, capacity)
}

func resizeInts(s []int, n int) []int {
	if len(s) != n {
		return make([]int, n)
	}
	for i := range s {
		s[i] = 0
	}
	return s
}

func resizeU64s(s []uint64, n int) []uint64 {
	if len(s) != n {
		return make([]uint64, n)
	}
	for i := range s {
		s[i] = 0
	}
	return s
}

// Stats returns the run statistics (valid after Run).
func (c *Core) Stats() *Stats { return &c.stats }

// Cycle returns the current cycle.
func (c *Core) Cycle() uint64 { return c.cycle }

// CommittedMem exposes the committed architectural memory image. After a
// run, it must equal the image a pure functional execution of the same
// number of instructions produces — the end-to-end correctness oracle used
// by the integration tests.
func (c *Core) CommittedMem() *memimage.Image { return c.commitMem }

// CommittedTotal reports all commits including warm-up.
func (c *Core) CommittedTotal() uint64 { return c.committedTotal }

// Run simulates until MaxInsts instructions commit, the program halts, or
// MaxCycles elapse. It returns an error only for internal inconsistencies
// (oracle stream errors), never for program behavior.
func (c *Core) Run() error {
	for !c.done {
		if c.cfg.MaxCycles > 0 && c.cycle >= c.cfg.MaxCycles {
			return fmt.Errorf("pipeline: cycle limit %d hit at %d committed insts (deadlock?)\n%s",
				c.cfg.MaxCycles, c.stats.Committed, c.debugState())
		}
		c.step()
		if err := c.stream.Err(); err != nil {
			return err
		}
	}
	c.finalizeStats()
	return nil
}

// step advances one cycle. Stages run commit-first (reverse pipeline order)
// so each stage sees the previous cycle's state of its upstream neighbor.
func (c *Core) step() {
	c.portsUsed = 0
	c.commit()
	if c.flushPend {
		c.doFlush()
		c.cycle++
		return
	}
	if c.done {
		return
	}
	c.rex()
	c.writeback()
	if c.flushPend { // ordering violation found at store resolve
		c.doFlush()
		c.cycle++
		return
	}
	c.issue()
	c.rename()
	c.fetch()
	if c.cfg.NLQSM.Enabled {
		c.maybeInvalidate()
	}
	if iv := c.cfg.SS.ClearInterval; iv > 0 && c.cycle > 0 && c.cycle%iv == 0 {
		c.ss.Clear()
	}
	c.cycle++
}

func (c *Core) finalizeStats() {
	c.stats.Cycles = c.cycle - c.warmCycle
	c.stats.BranchAccuracy = c.bp.Accuracy()
	c.stats.ICacheMissRate = c.hier.ICache.MissRate()
	c.stats.DCacheMissRate = c.hier.DCache.MissRate()
	c.stats.L2MissRate = c.hier.L2.MissRate()
	if c.ssbf != nil {
		c.stats.SSBFLookups = c.ssbf.Lookups
		c.stats.SSBFPositives = c.ssbf.Positives
	}
	c.stats.WrapDrains = c.wrap.Drains
}

// requestFlush records a squash of everything with seq > keepSeq; when a
// flush is already pending, the older keep point wins.
func (c *Core) requestFlush(keepSeq uint64) {
	if !c.flushPend || keepSeq < c.flushKeep {
		c.flushKeep = keepSeq
	}
	c.flushPend = true
}

// uopAt returns the in-flight uop with seq, or nil.
func (c *Core) uopAt(seq uint64) *uop { return c.rob.at(seq) }

// scheduleEvent registers a completion event.
func (c *Core) scheduleEvent(cycle uint64, u *uop) {
	c.events.schedule(c.cycle, cycle, eventRec{seq: u.seq, uid: u.uid})
}

// --- Physical register management ----------------------------------------

func (c *Core) allocPhys() (int, bool) {
	n := len(c.freeList)
	if n == 0 {
		return noPhys, false
	}
	p := c.freeList[n-1]
	c.freeList = c.freeList[:n-1]
	c.refCnt[p] = 0
	c.readyAt[p] = ^uint64(0)
	return p, true
}

// addRef pins a physical register (mapping reference or IT reference).
func (c *Core) addRef(p int) {
	if p > 0 {
		c.refCnt[p]++
	}
}

// releaseRef drops a reference; registers free when the count reaches zero,
// which also invalidates IT entries whose signature depends on them
// (cascading, since those entries hold references of their own). The work
// list and IT result buffer are core-owned scratch, reused across calls.
func (c *Core) releaseRef(p int) {
	work := append(c.refWork[:0], p)
	for len(work) > 0 {
		q := work[len(work)-1]
		work = work[:len(work)-1]
		if q <= 0 {
			continue
		}
		c.refCnt[q]--
		if c.refCnt[q] > 0 {
			continue
		}
		if c.refCnt[q] < 0 {
			panic("pipeline: negative physical register refcount")
		}
		c.freeList = append(c.freeList, q)
		if c.it != nil {
			c.itScratch = c.it.InvalidateByBase(q, c.itScratch[:0])
			for _, e := range c.itScratch {
				work = append(work, e.DestPhys)
			}
		}
	}
	c.refWork = work[:0]
}

// setPhysValue records the value produced into p (used by squash reuse and
// eliminated-load verification).
func (c *Core) setPhysValue(p int, v uint64, when uint64) {
	if p > 0 {
		c.physVal[p] = v
		c.readyAt[p] = when
	}
}
