package pipeline

import (
	"testing"

	"svwsim/internal/prog"
	"svwsim/internal/workload"
)

// The SVW filter soundness property (§3): a marked load the filter excuses
// from re-execution never delivered a stale value — every filtered load's
// execute-time value equals the oracle's. Aliasing may cause spurious
// re-executions (false positives), never false negatives. This suite checks
// the property over randomized kernels on all three optimized machines, and
// then — mirroring the §3.6 SSN-wrap property test pattern — proves the
// detector has teeth by sabotaging the filter (SVW.ForceFilter) and
// requiring the same detector to fire.

// svwSoundnessConfigs returns the three SVW-filtered machines at a reduced
// budget, with the violation-heavy knobs of the property suite.
func svwSoundnessConfigs() []Config {
	nlq := testConfig()
	nlq.Name = "nlq+svw"
	nlq.MaxInsts, nlq.WarmupInsts = 10_000, 0
	nlq.LSU = LSUNLQ
	nlq.LQSearch = false
	nlq.StoreIssue = 2
	nlq.Rex = RexReal
	nlq.SVW.Enabled = true
	nlq.SVW.UpdateOnForward = true

	ssq := testConfig()
	ssq.Name = "ssq+svw"
	ssq.MaxInsts, ssq.WarmupInsts = 10_000, 0
	ssq.LSU = LSUSSQ
	ssq.Rex = RexReal
	ssq.SVW.Enabled = true
	ssq.SVW.UpdateOnForward = true

	rle := Narrow4Config()
	rle.Name = "rle+svw"
	rle.MaxInsts, rle.WarmupInsts = 10_000, 0
	rle.RLE.Enabled = true
	rle.Rex = RexReal
	rle.RexStages = 4
	rle.SVW.Enabled = true
	return []Config{nlq, ssq, rle}
}

// countFilterViolations runs cfg on p and returns (filtered loads, filtered
// loads whose execute value differed from the oracle). The second number
// must be zero for a sound filter.
func countFilterViolations(t *testing.T, cfg Config, p *workloadProgram) (filtered, stale int) {
	t.Helper()
	cfg.TraceCommit = func(r TraceRecord) {
		if !r.Filtered {
			return
		}
		filtered++
		if r.LoadExec != r.LoadOracle {
			stale++
		}
	}
	c := New(cfg, p.prog)
	if err := c.Run(); err != nil {
		t.Fatalf("%s on %s: %v", cfg.Name, p.name, err)
	}
	return filtered, stale
}

type workloadProgram struct {
	name string
	prog *prog.Program
}

// TestSVWFilterNeverExcusesStaleLoad asserts the soundness property under
// random seeds: an SVW-filtered load that skips re-execution never differs
// from the oracle's loaded value, i.e. the filter admits no true violation.
func TestSVWFilterNeverExcusesStaleLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	totalFiltered := 0
	for seed := int64(500); seed < 508; seed++ {
		p := &workloadProgram{name: "prop", prog: workload.Build(randomProfile(seed))}
		for _, cfg := range svwSoundnessConfigs() {
			filtered, stale := countFilterViolations(t, cfg, p)
			totalFiltered += filtered
			if stale != 0 {
				t.Errorf("seed %d %s: %d of %d filtered loads were stale",
					seed, cfg.Name, stale, filtered)
			}
		}
	}
	if totalFiltered == 0 {
		t.Fatal("property suite exercised no filtered loads; the assertion is vacuous")
	}
}

// TestSVWFilterSoundnessTeeth is the control: with the filter sabotaged so
// every marked load is excused (SVW.ForceFilter), true violations must slip
// through and the very same stale-value detector must fire. If it cannot
// detect violations a broken filter would admit, the property test above
// proves nothing.
func TestSVWFilterSoundnessTeeth(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	staleSeen := 0
	for seed := int64(500); seed < 508; seed++ {
		p := &workloadProgram{name: "prop", prog: workload.Build(randomProfile(seed))}
		for _, cfg := range svwSoundnessConfigs() {
			cfg.SVW.ForceFilter = true
			_, stale := countFilterViolations(t, cfg, p)
			staleSeen += stale
		}
	}
	if staleSeen == 0 {
		t.Fatal("sabotaged filter produced no stale filtered loads: the detector has no teeth")
	}
}
