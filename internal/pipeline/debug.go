package pipeline

import (
	"fmt"
	"strings"
)

// debugState renders a snapshot of the machine for deadlock diagnostics.
func (c *Core) debugState() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cycle=%d robCount=%d iq=%d fetchQ=%d freeRegs=%d rexHead=%d drain=%v fetchStallTil=%d waitBranch=%d\n",
		c.cycle, c.rob.size(), len(c.iq), c.fetchLen, len(c.freeList),
		c.rexHead, c.drainPending, c.fetchStallTil, int64(c.waitBranchSeq))
	fmt.Fprintf(&b, "lq=%d/%d sq=%d/%d rexBuf=%d\n",
		c.lq.Len(), c.lq.Cap(), c.sq.Len(), c.sq.Cap(), len(c.rexStoreBuf))
	if c.fsq != nil {
		fmt.Fprintf(&b, "fsq=%d/%d\n", c.fsq.Len(), c.fsq.Cap())
	}
	n := 0
	for seq := c.rob.headSeq; !c.rob.empty() && seq <= c.rob.tailSeq() && n < 8; seq++ {
		u := c.uopAt(seq)
		if u == nil {
			break
		}
		fmt.Fprintf(&b, "  rob[%d] uid=%d %v issued=%v done=%v rexDoneAt=%d waiting=%d waitSeq=%d completeC=%d srcs=%v ready=(",
			u.seq, u.uid, u.dyn.Inst, u.issued, u.completed, int64(u.rexDoneAt),
			u.waiting, u.waitSeq, u.completeC, u.srcPhys[:u.nsrc])
		for i := 0; i < u.nsrc; i++ {
			fmt.Fprintf(&b, "%d ", int64(c.readyAt[u.srcPhys[i]]))
		}
		fmt.Fprintf(&b, ")\n")
		n++
	}
	return b.String()
}
