package pipeline

import (
	"testing"

	"svwsim/internal/rle"
)

func TestROBPushPop(t *testing.T) {
	r := newROB(4)
	if !r.empty() || r.full() {
		t.Fatal("fresh ROB state")
	}
	for i := uint64(0); i < 4; i++ {
		u := r.push(i)
		if u.seq != i {
			t.Fatalf("push seq %d", u.seq)
		}
	}
	if !r.full() || r.size() != 4 {
		t.Fatal("full ROB state")
	}
	if r.headSeq != 0 || r.tailSeq() != 3 {
		t.Fatalf("head/tail = %d/%d", r.headSeq, r.tailSeq())
	}
	r.popHead()
	if r.headSeq != 1 || r.size() != 3 {
		t.Fatal("after pop")
	}
	// Ring wrap: push seq 4 into the freed slot.
	r.push(4)
	if r.tailSeq() != 4 || !r.full() {
		t.Fatal("wrapped push")
	}
}

func TestROBAt(t *testing.T) {
	r := newROB(8)
	for i := uint64(10); i < 14; i++ {
		r.push(i)
	}
	if u := r.at(12); u == nil || u.seq != 12 {
		t.Error("at(12)")
	}
	if r.at(9) != nil || r.at(14) != nil {
		t.Error("out-of-window lookups must be nil")
	}
	r.popHead()
	if r.at(10) != nil {
		t.Error("popped entry still visible")
	}
}

func TestROBNonContiguousPushPanics(t *testing.T) {
	r := newROB(8)
	r.push(5)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	r.push(7)
}

func TestROBTruncate(t *testing.T) {
	r := newROB(8)
	for i := uint64(0); i < 6; i++ {
		r.push(i)
	}
	r.truncateTo(3)
	if r.tailSeq() != 3 || r.size() != 4 {
		t.Fatalf("truncate: tail=%d size=%d", r.tailSeq(), r.size())
	}
	// Truncating before the head empties the ROB.
	r2 := newROB(8)
	r2.push(5)
	r2.push(6)
	r2.truncateTo(2)
	if !r2.empty() {
		t.Error("truncate below head should empty")
	}
	// Truncating at or past the tail is a no-op.
	r3 := newROB(8)
	r3.push(0)
	r3.truncateTo(5)
	if r3.size() != 1 {
		t.Error("truncate past tail changed size")
	}
}

func TestROBReusesSeqsAfterTruncate(t *testing.T) {
	// Flush recovery refetches the same sequence numbers.
	r := newROB(8)
	for i := uint64(0); i < 5; i++ {
		r.push(i)
	}
	r.truncateTo(1)
	u := r.push(2)
	if u.seq != 2 || r.tailSeq() != 2 {
		t.Error("refetch push failed")
	}
	// Fresh entry state.
	if u.issued || u.completed || u.destPhys != noPhys || u.rexDoneAt != ^uint64(0) {
		t.Error("reused slot not reset")
	}
}

func TestPhysRefcounting(t *testing.T) {
	cfg := testConfig()
	c := New(cfg, testProgram())
	p, ok := c.allocPhys()
	if !ok || p <= 0 {
		t.Fatal("alloc")
	}
	free0 := len(c.freeList)
	c.addRef(p)
	c.addRef(p)
	c.releaseRef(p)
	if len(c.freeList) != free0 {
		t.Error("released too early")
	}
	c.releaseRef(p)
	if len(c.freeList) != free0+1 {
		t.Error("not released at refcount zero")
	}
}

func TestReleaseRefCascadesThroughIT(t *testing.T) {
	cfg := testConfig()
	cfg.RLE.Enabled = true
	c := New(cfg, testProgram())
	base, _ := c.allocPhys()
	dest, _ := c.allocPhys()
	c.addRef(base)
	c.addRef(dest) // the IT's reference
	c.it.Insert(rle.Entry{Sig: 12345, BasePhys: base, DestPhys: dest})
	free0 := len(c.freeList)
	// Freeing the base register invalidates the entry, which releases the
	// destination register.
	c.releaseRef(base)
	if len(c.freeList) != free0+2 {
		t.Errorf("cascade freed %d regs, want 2", len(c.freeList)-free0)
	}
	if c.it.Len() != 0 {
		t.Error("entry survived its base register")
	}
}

func TestZeroRegisterPinned(t *testing.T) {
	cfg := testConfig()
	c := New(cfg, testProgram())
	free0 := len(c.freeList)
	c.releaseRef(0)
	c.releaseRef(0)
	if len(c.freeList) != free0 {
		t.Error("phys 0 must never free")
	}
	if c.readyAt[0] != 0 {
		t.Error("phys 0 must always be ready")
	}
}

func TestCommitLatencies(t *testing.T) {
	c := testConfig()
	if c.commitLat() != 1 {
		t.Error("baseline commit latency")
	}
	c.Rex = RexReal
	c.RexStages = 2
	if c.commitLat() != 3 {
		t.Error("rex elongation")
	}
	c.SVW.Enabled = true
	if c.commitLat() != 4 {
		t.Error("SVW stage elongation")
	}
	c.Rex = RexPerfect
	if c.commitLat() != 1 {
		t.Error("perfect rex has no elongation")
	}
}

func TestConfigPresetShapes(t *testing.T) {
	w := Wide8Config()
	if w.ROBSize != 512 || w.LQSize != 128 || w.SQSize != 64 ||
		w.IQSize != 200 || w.PhysRegs != 448 || w.CommitWidth != 8 {
		t.Error("8-wide preset deviates from §4")
	}
	n := Narrow4Config()
	if n.ROBSize != 128 || n.LQSize != 32 || n.SQSize != 16 ||
		n.IQSize != 50 || n.PhysRegs != 160 || n.CommitWidth != 4 {
		t.Error("4-wide preset deviates from §4")
	}
	if n.RexStages != 4 || w.RexStages != 2 {
		t.Error("rex pipeline depths")
	}
	if w.FrontDepth+w.SchedDepth+w.RegReadDepth+3 != 15 {
		t.Error("base pipeline is 15 stages")
	}
}
