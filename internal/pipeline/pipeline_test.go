package pipeline

import (
	"testing"

	"svwsim/internal/emu"
	"svwsim/internal/prog"
	"svwsim/internal/workload"
)

// testConfig returns a fast Wide8 derivative for integration tests.
func testConfig() Config {
	c := Wide8Config()
	c.WarmupInsts = 2_000
	c.MaxInsts = 25_000
	return c
}

func testProgram() *prog.Program {
	return workload.Build(workload.TestProfile(7))
}

// runCore builds, runs, and returns the core, failing the test on error.
func runCore(t *testing.T, cfg Config, p *prog.Program) *Core {
	t.Helper()
	c := New(cfg, p)
	if err := c.Run(); err != nil {
		t.Fatalf("%s: %v", cfg.Name, err)
	}
	return c
}

// verifyArchState is the end-to-end oracle: after N committed instructions,
// the timing core's committed memory must be byte-identical to a pure
// functional execution of the same N instructions. Any mis-handled flush,
// forwarding path, elimination, or SVW filtering decision that let a wrong
// value commit shows up here.
func verifyArchState(t *testing.T, c *Core, p *prog.Program) {
	t.Helper()
	ref := emu.New(p.NewImage(), p.Entry)
	for i := uint64(0); i < c.CommittedTotal(); i++ {
		if _, err := ref.Step(); err != nil {
			t.Fatalf("reference step: %v", err)
		}
	}
	if addr, diff := c.CommittedMem().Diff(ref.Mem); diff {
		t.Fatalf("committed memory diverges from functional execution at %#x", addr)
	}
}

func allConfigs() []Config {
	mk := func(name string, f func(*Config)) Config {
		c := testConfig()
		c.Name = name
		f(&c)
		return c
	}
	return []Config{
		mk("baseline", func(c *Config) {}),
		mk("nlq", func(c *Config) {
			c.LSU = LSUNLQ
			c.LQSearch = false
			c.StoreIssue = 2
			c.Rex = RexReal
		}),
		mk("nlq+svw", func(c *Config) {
			c.LSU = LSUNLQ
			c.LQSearch = false
			c.StoreIssue = 2
			c.Rex = RexReal
			c.SVW.Enabled = true
			c.SVW.UpdateOnForward = true
		}),
		mk("ssq", func(c *Config) {
			c.LSU = LSUSSQ
			c.Rex = RexReal
		}),
		mk("ssq+svw", func(c *Config) {
			c.LSU = LSUSSQ
			c.Rex = RexReal
			c.SVW.Enabled = true
			c.SVW.UpdateOnForward = true
		}),
		mk("ssq+svw-atomic", func(c *Config) {
			c.LSU = LSUSSQ
			c.Rex = RexReal
			c.SVW.Enabled = true
			c.SVW.SpeculativeSSBF = false
		}),
		mk("nlq+perfect", func(c *Config) {
			c.LSU = LSUNLQ
			c.LQSearch = false
			c.Rex = RexPerfect
		}),
		mk("rle", func(c *Config) {
			c.RLE.Enabled = true
			c.Rex = RexReal
			c.RexStages = 4
		}),
		mk("rle+svw", func(c *Config) {
			c.RLE.Enabled = true
			c.Rex = RexReal
			c.RexStages = 4
			c.SVW.Enabled = true
			c.SVW.UpdateOnForward = true
		}),
		mk("rle+svw-squ", func(c *Config) {
			c.RLE.Enabled = true
			c.Rex = RexReal
			c.RexStages = 4
			c.SVW.Enabled = true
			c.RLE.SquashReuse = false
		}),
		mk("rle+ssq+svw", func(c *Config) {
			// §3.5: composed optimizations.
			c.LSU = LSUSSQ
			c.RLE.Enabled = true
			c.Rex = RexReal
			c.RexStages = 4
			c.SVW.Enabled = true
			c.SVW.UpdateOnForward = true
		}),
	}
}

// TestArchitecturalCorrectnessAllConfigs is the central integration test:
// every machine configuration must commit the exact architectural state of
// the program, no matter how aggressively it speculates.
func TestArchitecturalCorrectnessAllConfigs(t *testing.T) {
	for _, cfg := range allConfigs() {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			t.Parallel()
			p := testProgram()
			c := runCore(t, cfg, p)
			if c.CommittedTotal() < cfg.MaxInsts {
				t.Fatalf("committed %d < %d", c.CommittedTotal(), cfg.MaxInsts)
			}
			verifyArchState(t, c, p)
		})
	}
}

// TestCorrectnessAcrossSeeds widens the oracle over several generated
// kernels on the most aggressive configuration.
func TestCorrectnessAcrossSeeds(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		cfg := testConfig()
		cfg.Name = "ssq+svw"
		cfg.LSU = LSUSSQ
		cfg.Rex = RexReal
		cfg.SVW.Enabled = true
		cfg.SVW.UpdateOnForward = true
		t.Run(workload.TestProfile(seed).Name, func(t *testing.T) {
			t.Parallel()
			p := workload.Build(workload.TestProfile(seed))
			c := runCore(t, cfg, p)
			verifyArchState(t, c, p)
		})
	}
}

func TestDeterministicRuns(t *testing.T) {
	cfg := testConfig()
	cfg.LSU = LSUNLQ
	cfg.LQSearch = false
	cfg.Rex = RexReal
	cfg.SVW.Enabled = true
	p := testProgram()
	a := runCore(t, cfg, p)
	b := runCore(t, cfg, p)
	if *a.Stats() != *b.Stats() {
		t.Errorf("two identical runs diverged:\n%+v\n%+v", a.Stats(), b.Stats())
	}
}

// TestSVWFilterSoundness: with SVW filtering on, every mis-speculation must
// still be caught — equivalently, architectural state stays correct (checked
// above) AND filtered loads never include a load whose value was wrong. The
// second half is checked here structurally: failures detected must not drop
// when the filter is enabled (the filter only skips *verified-safe* loads).
func TestSVWFilterSoundness(t *testing.T) {
	base := testConfig()
	base.LSU = LSUNLQ
	base.LQSearch = false
	base.StoreIssue = 2
	base.Rex = RexReal

	with := base
	with.SVW.Enabled = true
	with.SVW.UpdateOnForward = true

	p := testProgram()
	cOff := runCore(t, base, p)
	cOn := runCore(t, with, p)
	verifyArchState(t, cOn, p)

	offFail := cOff.Stats().RexFailures
	onFail := cOn.Stats().RexFailures
	// Timing differs slightly between runs, so exact equality is too
	// strict; but the filter must not hide a substantial share of real
	// mis-speculations.
	if offFail > 4 && onFail*2 < offFail {
		t.Errorf("filter appears to hide mis-speculations: %d -> %d", offFail, onFail)
	}
	if cOn.Stats().RexFiltered == 0 {
		t.Error("filter never filtered anything")
	}
	if cOn.Stats().RexLoads >= cOff.Stats().RexLoads {
		t.Error("SVW did not reduce re-executions")
	}
}

func TestNLQDetectsOrderingViolationsViaRex(t *testing.T) {
	cfg := testConfig()
	cfg.LSU = LSUNLQ
	cfg.LQSearch = false
	cfg.StoreIssue = 2
	cfg.Rex = RexReal
	p := testProgram()
	c := runCore(t, cfg, p)
	if c.Stats().OrderingViolations != 0 {
		t.Error("NLQ has no LQ search; violations must come from rex")
	}
	verifyArchState(t, c, p)
}

func TestBaselineDetectsViolationsViaLQSearch(t *testing.T) {
	cfg := testConfig()
	p := testProgram()
	c := runCore(t, cfg, p)
	if c.Stats().RexFlushes != 0 {
		t.Error("baseline has no rex engine")
	}
	verifyArchState(t, c, p)
}

func TestSSQSteeringTrains(t *testing.T) {
	cfg := testConfig()
	cfg.LSU = LSUSSQ
	cfg.Rex = RexReal
	cfg.SVW.Enabled = true
	p := testProgram()
	c := runCore(t, cfg, p)
	loads, stores := c.steer.Counts()
	if loads == 0 && stores == 0 && c.Stats().RexFailures > 0 {
		t.Error("rex failures under SSQ should train the steering predictor")
	}
	verifyArchState(t, c, p)
}

func TestRLEEliminatesAndStaysCorrect(t *testing.T) {
	cfg := testConfig()
	cfg.RLE.Enabled = true
	cfg.Rex = RexReal
	cfg.RexStages = 4
	p := testProgram()
	c := runCore(t, cfg, p)
	if c.Stats().Eliminated == 0 {
		t.Fatal("no eliminations on a redundancy-bearing kernel")
	}
	if c.Stats().ElimReuse == 0 || c.Stats().ElimBypass == 0 {
		t.Errorf("missing elimination kind: reuse=%d bypass=%d",
			c.Stats().ElimReuse, c.Stats().ElimBypass)
	}
	verifyArchState(t, c, p)
}

func TestSSNWrapDrains(t *testing.T) {
	cfg := testConfig()
	cfg.LSU = LSUSSQ
	cfg.Rex = RexReal
	cfg.SVW.Enabled = true
	cfg.SVW.SSNBits = 8 // drain every 256 stores
	p := testProgram()
	c := runCore(t, cfg, p)
	if c.Stats().WrapDrains == 0 {
		t.Error("8-bit SSNs must wrap within 25k instructions")
	}
	verifyArchState(t, c, p)
}

func TestNLQSMInvalidationMechanism(t *testing.T) {
	cfg := testConfig()
	cfg.LSU = LSUNLQ
	cfg.LQSearch = false
	cfg.Rex = RexReal
	cfg.SVW.Enabled = true
	cfg.NLQSM = NLQSMConfig{Enabled: true, IntervalCycles: 100}
	p := testProgram()
	c := runCore(t, cfg, p)
	if c.Stats().Invalidations == 0 {
		t.Fatal("injector never fired")
	}
	if c.Stats().MarkedByKind[markNLQSM] == 0 {
		t.Error("invalidations marked no loads")
	}
	verifyArchState(t, c, p)
}

func TestPhysicalRegisterConservation(t *testing.T) {
	// After a run drains, every non-pinned register must be free or still
	// referenced by a live IT entry.
	cfg := testConfig()
	cfg.RLE.Enabled = true
	cfg.Rex = RexReal
	p := testProgram()
	c := runCore(t, cfg, p)
	inIT := 0
	if c.it != nil {
		inIT = c.it.Len()
	}
	free := len(c.freeList)
	mapped := 0
	seen := map[int]bool{}
	for _, ph := range c.rmap {
		if ph != 0 && !seen[ph] {
			seen[ph] = true
			mapped++
		}
	}
	// free + mapped + (IT-held) + in-flight (≤ ROB) must cover the file.
	if free+mapped+inIT+c.rob.size() < cfg.PhysRegs-1-32 {
		t.Errorf("register leak: free=%d mapped=%d it=%d rob=%d of %d",
			free, mapped, inIT, c.rob.size(), cfg.PhysRegs)
	}
}

func TestNarrow4ConfigRuns(t *testing.T) {
	cfg := Narrow4Config()
	cfg.WarmupInsts = 2_000
	cfg.MaxInsts = 20_000
	cfg.RLE.Enabled = true
	cfg.Rex = RexReal
	p := testProgram()
	c := runCore(t, cfg, p)
	verifyArchState(t, c, p)
}

func TestStatsInternalConsistency(t *testing.T) {
	cfg := testConfig()
	cfg.LSU = LSUSSQ
	cfg.Rex = RexReal
	cfg.SVW.Enabled = true
	p := testProgram()
	c := runCore(t, cfg, p)
	s := c.Stats()
	if s.Committed == 0 || s.CommittedLoads == 0 || s.CommittedStores == 0 {
		t.Fatal("empty stats")
	}
	if s.MarkedLoads != s.CommittedLoads {
		t.Errorf("SSQ marks all loads: %d != %d", s.MarkedLoads, s.CommittedLoads)
	}
	if s.RexFiltered > s.MarkedLoads {
		t.Error("filtered exceeds marked")
	}
	if s.IPC() <= 0 {
		t.Error("IPC")
	}
	if s.RexRate() < 0 || s.MarkedRate() > 1.01 {
		t.Error("rates out of range")
	}
}

func TestRetirePortsAblation(t *testing.T) {
	one := testConfig()
	two := testConfig()
	two.RetirePorts = 2
	p := testProgram()
	c1 := runCore(t, one, p)
	c2 := runCore(t, two, p)
	// More ports can only help (or be neutral) within noise.
	if c2.Stats().IPC() < c1.Stats().IPC()*0.97 {
		t.Errorf("second retirement port slowed the machine: %.3f -> %.3f",
			c1.Stats().IPC(), c2.Stats().IPC())
	}
}
