// Package pipeline implements the cycle-level dynamically-scheduled
// superscalar core: fetch through commit, the decoupled pre-commit
// re-execution pipeline, and the three load optimizations (NLQ, SSQ, RLE)
// with and without the SVW re-execution filter.
//
// The timing model follows the paper's two machine configurations (§4): an
// 8-wide, 512-entry-ROB machine for the NLQ and SSQ studies and a 4-wide,
// 128-entry-ROB machine for the RLE study, both with a 15-stage base
// pipeline, store-sets load speculation, and a single store retirement port
// shared between store commit and load re-execution.
package pipeline

import (
	"svwsim/internal/bpred"
	"svwsim/internal/cache"
	"svwsim/internal/core"
	"svwsim/internal/rle"
	"svwsim/internal/storesets"
)

// LSUKind selects the load-store unit design (paper Fig. 2).
type LSUKind uint8

// LSU designs.
const (
	// LSUBaseline: associative SQ searched by every load; associative LQ
	// searched by every resolving store.
	LSUBaseline LSUKind = iota
	// LSUNLQ: the LQ associative port is deleted; ordering violations are
	// caught by pre-commit re-execution of marked loads. Store issue
	// bandwidth doubles (the deleted LQ port was the limiter).
	LSUNLQ
	// LSUSSQ: forwarding through a small FSQ (steering-predicted) plus
	// per-bank best-effort forwarding buffers; the RSQ is never searched.
	// All loads re-execute.
	LSUSSQ
)

func (k LSUKind) String() string {
	switch k {
	case LSUBaseline:
		return "baseline"
	case LSUNLQ:
		return "nlq"
	case LSUSSQ:
		return "ssq"
	}
	return "?"
}

// RexKind selects the re-execution engine model.
type RexKind uint8

// Re-execution engines.
const (
	// RexNone: no re-execution pipeline (baseline machines).
	RexNone RexKind = iota
	// RexReal: the in-order pre-commit re-execution pipeline, contending
	// with store commit for the data cache port.
	RexReal
	// RexPerfect: ideal re-execution — zero latency, infinite bandwidth —
	// the paper's +PERFECT upper bound. Mis-speculations are still detected
	// and still flush.
	RexPerfect
)

func (k RexKind) String() string {
	switch k {
	case RexNone:
		return "none"
	case RexReal:
		return "real"
	case RexPerfect:
		return "perfect"
	}
	return "?"
}

// SVWConfig controls the store vulnerability window filter.
type SVWConfig struct {
	Enabled bool
	// UpdateOnForward raises a load's SVW to the forwarding store's SSN
	// (the +UPD configurations). Applies to SQ and FSQ forwarding; best
	// effort forwarding cannot maintain the required invariants (§4.2).
	UpdateOnForward bool
	// SSNBits is the hardware SSN width; 0 means infinite (no wrap drains).
	SSNBits int
	SSBF    core.SSBFConfig
	// SpeculativeSSBF lets stores update the SSBF in the SVW stage before
	// all previous loads have retired (§3.6, the default). False models the
	// atomic policy, which elongates the serialization.
	SpeculativeSSBF bool
	// ForceFilter is a testing aid that sabotages the filter: every marked
	// load is treated as excused regardless of the SSBF test, so true
	// violations slip past re-execution and commit stale values. The
	// soundness property suite uses it as its teeth check — a detector
	// that stays quiet under ForceFilter is not detecting anything.
	ForceFilter bool
}

// RLEConfig controls redundant load elimination.
type RLEConfig struct {
	Enabled bool
	IT      rle.Config
	// SquashReuse permits integration through entries created by squashed
	// instructions (§4.3; disabling it is the SVW−SQU configuration).
	SquashReuse bool
}

// NLQSMConfig controls the synthetic inter-thread invalidation injector used
// to exercise the NLQsm mechanism (an extension; the paper's evaluation does
// not run shared-memory workloads either).
type NLQSMConfig struct {
	Enabled bool
	// IntervalCycles between injected invalidations.
	IntervalCycles uint64
}

// Config parameterizes one machine.
type Config struct {
	Name string

	// Widths.
	FetchWidth  int
	RenameWidth int
	CommitWidth int
	IntIssue    int // integer ALU+multiply ports
	LoadIssue   int
	StoreIssue  int
	BranchIssue int
	TotalIssue  int

	// Structures.
	ROBSize  int
	IQSize   int
	LQSize   int
	SQSize   int
	PhysRegs int

	// Depths (cycles).
	FrontDepth   int // fetch -> rename (3 fetch + 2 decode + 2 rename)
	SchedDepth   int // rename -> earliest issue (2 schedule)
	RegReadDepth int // issue -> execute start (3 register read)
	MulLat       int

	// Load-store unit.
	LSU LSUKind
	// LQSearch enables the conventional store-resolve LQ search. On for
	// baseline and SSQ machines, off for NLQ.
	LQSearch bool
	// LoadLat is the minimum load-to-use latency: 2 cycles with banked
	// cache access, 4 on the SSQ-study baseline whose big associative SQ
	// paces the load pipeline (CACTI argument, §4.2).
	LoadLat         int
	FSQSize         int
	FBSize          int
	DBanks          int
	RetirePorts     int
	RexStoreBufSize int

	// Re-execution engine. RexStages is the pipeline elongation: 2 for
	// NLQ/SSQ, 4 for RLE (register-file-sourced re-execution).
	Rex       RexKind
	RexStages int

	SVW SVWConfig
	RLE RLEConfig

	// Substrates.
	Mem  cache.HierarchyConfig
	BP   bpred.Config
	SS   storesets.Config
	SPCT core.SPCTConfig

	NLQSM NLQSMConfig

	// Run limits. WarmupInsts commit before statistics start counting
	// (predictor and cache warm-up, like the paper's 5% warm-up sampling);
	// MaxInsts includes the warm-up.
	WarmupInsts uint64
	MaxInsts    uint64
	MaxCycles   uint64

	// TraceCommit, when non-nil, receives one record per committed
	// instruction (pipetrace support; see cmd/svwtrace).
	TraceCommit func(TraceRecord)
}

// TraceRecord is the per-instruction stage timeline emitted to TraceCommit.
type TraceRecord struct {
	Seq        uint64
	PC         uint64
	Text       string // disassembly
	FetchC     uint64
	RenameC    uint64
	IssueC     uint64
	CompleteC  uint64
	RexDoneC   uint64 // ^0 when the instruction never passed a rex stage
	CommitC    uint64
	Marked     bool
	Filtered   bool
	Eliminated bool
	Forwarded  bool
	// Loads only: the value the load delivered at execute (the integrated
	// register for eliminated loads, read at commit) and the
	// architecturally correct value from the oracle. A committed load with
	// LoadExec != LoadOracle delivered a stale value — permissible only if
	// re-execution caught it, so Filtered && LoadExec != LoadOracle is a
	// filter-soundness violation.
	LoadExec   uint64
	LoadOracle uint64
}

// Wide8Config returns the paper's 8-way NLQ/SSQ machine: 512-entry ROB,
// 128-entry LQ, 64-entry SQ, 200 issue queue entries, 448 registers; issue
// of 5 integer, 2 load, 1 store (one LQ associative port) and 1 branch.
func Wide8Config() Config {
	return Config{
		Name:        "wide8-baseline",
		FetchWidth:  8,
		RenameWidth: 8,
		CommitWidth: 8,
		IntIssue:    5,
		LoadIssue:   2,
		StoreIssue:  1,
		BranchIssue: 1,
		TotalIssue:  8,

		ROBSize:  512,
		IQSize:   200,
		LQSize:   128,
		SQSize:   64,
		PhysRegs: 448,

		FrontDepth:   7,
		SchedDepth:   2,
		RegReadDepth: 3,
		MulLat:       3,

		LSU:             LSUBaseline,
		LQSearch:        true,
		LoadLat:         2,
		FSQSize:         16,
		FBSize:          8,
		DBanks:          2,
		RetirePorts:     1,
		RexStoreBufSize: 8,

		Rex:       RexNone,
		RexStages: 2,
		SVW: SVWConfig{
			SSNBits:         16,
			SSBF:            core.DefaultSSBFConfig(),
			SpeculativeSSBF: true,
		},
		RLE: RLEConfig{IT: rle.DefaultConfig(), SquashReuse: true},

		Mem:  cache.DefaultHierarchyConfig(),
		BP:   bpred.DefaultConfig(),
		SS:   storesets.DefaultConfig(),
		SPCT: core.DefaultSPCTConfig(),

		WarmupInsts: 50_000,
		MaxInsts:    300_000,
		MaxCycles:   40_000_000,
	}
}

// Narrow4Config returns the paper's 4-wide RLE machine: 128-entry ROB,
// 32-entry LQ, 16-entry SQ, 50 issue queue entries, 160 registers; issue of
// 3 integer, 1 load, 1 store, 1 branch.
func Narrow4Config() Config {
	c := Wide8Config()
	c.Name = "narrow4-baseline"
	c.FetchWidth = 4
	c.RenameWidth = 4
	c.CommitWidth = 4
	c.IntIssue = 3
	c.LoadIssue = 1
	c.StoreIssue = 1
	c.BranchIssue = 1
	c.TotalIssue = 4
	c.ROBSize = 128
	c.IQSize = 50
	c.LQSize = 32
	c.SQSize = 16
	c.PhysRegs = 160
	c.RexStages = 4
	return c
}

// commitLat returns the completion-to-commit latency: one base commit stage,
// elongated by the re-execution pipeline and the SVW stage when present.
func (c *Config) commitLat() uint64 {
	if c.Rex != RexReal {
		return 1
	}
	lat := 1 + c.RexStages
	if c.SVW.Enabled {
		lat++
	}
	return uint64(lat)
}
