package pipeline

// Writeback: process this cycle's completion events — publish values, mark
// stores' addresses/data known, run the conventional LQ ordering search, and
// resolve branches.

func (c *Core) writeback() {
	defer c.scanPendingSTD()
	evs := c.events.take(c.cycle)
	if evs == nil {
		return
	}
	// Process the whole batch even if a violation flush is requested
	// mid-way: events for instructions older than the flush point must not
	// be lost, and state published for about-to-be-squashed instructions is
	// reclaimed by the flush itself.
	for _, ev := range evs {
		u := c.uopAt(ev.seq)
		if u == nil || u.uid != ev.uid {
			continue // the instance this event belonged to was squashed
		}
		if u.isStore() {
			c.storeAddrResolved(u)
			continue
		}
		u.completed = true
		if u.destPhys != noPhys {
			v := u.dyn.Result
			if u.isLoad() {
				v = u.execValue // possibly stale; that is the point
			}
			c.setPhysValue(u.destPhys, v, u.completeC)
		}
		if u.isBranch() && u.mispredict && c.waitBranchSeq == u.seq {
			c.waitBranchSeq = ^uint64(0)
			c.fetchStallTil = u.completeC + 1
		}
	}
}

// scanPendingSTD completes the data half of stores whose address has
// resolved but whose data register was still in flight.
func (c *Core) scanPendingSTD() {
	out := c.pendingSTD[:0]
	for _, ev := range c.pendingSTD {
		u := c.uopAt(ev.seq)
		if u == nil || u.uid != ev.uid {
			continue // squashed
		}
		if c.readyAt[u.srcPhys[1]] <= c.cycle {
			c.storeDataReady(u)
			continue
		}
		out = append(out, ev)
	}
	c.pendingSTD = out
}

// storeAddrResolved fires at STA resolution (the address was published to
// the queues at issue, stamped with this cycle): on machines with an
// associative LQ the store searches for premature younger loads. If the
// data register has already arrived, the data half completes in the same
// cycle.
func (c *Core) storeAddrResolved(u *uop) {
	d := u.dyn
	u.addrKnown = true
	if c.cfg.LQSearch {
		if ld, found := c.lq.SearchPremature(u.seq, d.EffAddr, d.MemBytes); found {
			// Conventional intra-thread ordering violation: flush the load
			// and everything younger; train store-sets with the exact pair.
			// Several stores can fire in one cycle; the oldest flush wins.
			c.stats.OrderingViolations++
			c.ss.Train(ld.PC, d.PC)
			c.requestFlush(ld.Seq - 1)
		}
	}
	if c.readyAt[u.srcPhys[1]] <= c.cycle {
		c.storeDataReady(u)
		return
	}
	c.pendingSTD = append(c.pendingSTD, eventRec{seq: u.seq, uid: u.uid})
}

// storeDataReady completes a store's data half (STD): the forwarding value
// becomes available, the store counts as executed, and store-set waiters are
// released.
func (c *Core) storeDataReady(u *uop) {
	d := u.dyn
	u.completed = true
	if c.cycle > u.completeC {
		u.completeC = c.cycle
	}
	if rec := c.sq.Find(u.seq); rec != nil {
		rec.Data = d.StoreVal
		if rec.DataKnownAt > c.cycle {
			rec.DataKnownAt = c.cycle
		}
	}
	if u.inFSQ {
		if rec := c.fsq.Find(u.seq); rec != nil {
			rec.Data = d.StoreVal
			if rec.DataKnownAt > c.cycle {
				rec.DataKnownAt = c.cycle
			}
		}
	}
	if c.cfg.LSU == LSUSSQ {
		bank := c.hier.DCache.Bank(d.EffAddr, c.cfg.DBanks)
		c.fbs[bank].Insert(d.EffAddr, d.MemBytes, d.StoreVal, u.seq)
	}
	c.ss.StoreExecuted(u.ssSet, u.seq)
}
