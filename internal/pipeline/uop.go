package pipeline

import (
	"svwsim/internal/core"
	"svwsim/internal/emu"
	"svwsim/internal/isa"
	"svwsim/internal/lsq"
	"svwsim/internal/rle"
)

// markKind classifies why a load is marked for re-execution; the experiment
// harness uses it for the figures' stacked breakdowns.
type markKind uint8

const (
	markNone    markKind = iota
	markNLQSpec          // NLQls: issued past older unresolved store addresses
	markSSQFSQ           // SSQ: steered load, searched the FSQ
	markSSQBest          // SSQ: best-effort or no forwarding
	markRLEReuse
	markRLEBypass
	markNLQSM // in flight during an injected invalidation
)

// waitKind says what a blocked load is waiting on.
type waitKind uint8

const (
	waitNothing   waitKind = iota
	waitStoreExec          // store-set dependence or SQ data-not-ready
	waitStoreCommit
)

const noPhys = -1

// uop is one in-flight instruction: the ROB entry plus all renamed and
// timing state the stages need.
type uop struct {
	dyn *emu.DynInst
	seq uint64
	uid uint64 // unique per dispatch instance; disambiguates refetches

	// class caches dyn.Inst.Class() (set once at rename): the issue loop
	// classifies every queued uop every cycle, and deriving the class from
	// the opcode each time dominated the profile.
	class isa.Class

	// Renaming.
	destArch    isa.Reg
	destPhys    int // noPhys when the instruction writes no register
	oldDestPhys int
	srcPhys     [2]int
	nsrc        int

	// Timing.
	fetchC    uint64
	renameC   uint64
	issueC    uint64
	completeC uint64
	issued    bool
	completed bool

	// Memory.
	ssn       core.SSN // stores
	ssSet     int32    // store-set id (stores)
	addrKnown bool     // stores: STA has resolved
	inFSQ     bool     // store allocated an FSQ entry
	waitSeq   uint64
	waiting   waitKind
	execValue uint64 // load value observed at execute (possibly stale)
	fwdSeq    uint64
	fwdOK     bool
	usedBest  bool // forwarded from a best-effort buffer
	ambiguous bool // issued past an older unresolved store address

	// SVW.
	svw    core.SSN
	marked bool
	kind   markKind

	// RLE.
	eliminated bool
	elimKind   rle.Kind
	elimSquash bool // integrated through a squash-marked entry
	elimHandle int  // IT entry the load integrated through
	elimSig    uint64
	itHandle   int    // IT entry created by this uop, or -1
	itSig      uint64 // signature of that entry

	// Re-execution.
	rexDoneAt   uint64 // cycle the rex pipe finishes with this uop; ^0 = pending
	rexFiltered bool
	rexFail     bool

	// Control.
	mispredict bool
}

func (u *uop) isLoad() bool   { return u.class == isa.ClassLoad }
func (u *uop) isStore() bool  { return u.class == isa.ClassStore }
func (u *uop) isBranch() bool { return u.class == isa.ClassBranch }

// rob is a power-of-two ring buffer of uops indexed by contiguous sequence
// numbers; the absence of wrong-path fetch means in-flight seqs are always
// contiguous. Entries are the uop arena: push recycles a slot in place, and
// the per-instance uid stamped at rename is the generation mark that keeps
// stale completion events from touching a recycled slot.
type rob struct {
	buf   []uop
	head  int
	count int
	capN  int // logical capacity (may be below len(buf))
	mask  int
	// headSeq is the seq of the oldest in-flight instruction; only valid
	// when count > 0.
	headSeq uint64
}

func newROB(size int) *rob {
	sz := lsq.RingSize(size)
	return &rob{buf: make([]uop, sz), capN: size, mask: sz - 1}
}

// reset empties the ring for a fresh run, retaining the backing array.
func (r *rob) reset() { r.head, r.count, r.headSeq = 0, 0, 0 }

func (r *rob) full() bool  { return r.count == r.capN }
func (r *rob) empty() bool { return r.count == 0 }
func (r *rob) size() int   { return r.count }

// push allocates the tail entry and returns it.
func (r *rob) push(seq uint64) *uop {
	if r.full() {
		panic("pipeline: ROB overflow")
	}
	if r.count == 0 {
		r.headSeq = seq
	} else if seq != r.headSeq+uint64(r.count) {
		panic("pipeline: non-contiguous ROB push")
	}
	idx := (r.head + r.count) & r.mask
	r.count++
	r.buf[idx] = uop{seq: seq, destPhys: noPhys, oldDestPhys: noPhys,
		itHandle: -1, elimHandle: -1, rexDoneAt: ^uint64(0)}
	return &r.buf[idx]
}

// popHead retires the oldest entry.
func (r *rob) popHead() {
	if r.empty() {
		panic("pipeline: ROB underflow")
	}
	r.head = (r.head + 1) & r.mask
	r.count--
	r.headSeq++
}

// at returns the in-flight uop with the given seq, or nil.
func (r *rob) at(seq uint64) *uop {
	if idx := seq - r.headSeq; idx < uint64(r.count) {
		return &r.buf[(r.head+int(idx))&r.mask]
	}
	return nil
}

// headUop returns the oldest in-flight uop, or nil.
func (r *rob) headUop() *uop {
	if r.empty() {
		return nil
	}
	return &r.buf[r.head]
}

// tailSeq returns the seq of the youngest in-flight instruction; only valid
// when non-empty.
func (r *rob) tailSeq() uint64 { return r.headSeq + uint64(r.count) - 1 }

// truncateTo squashes every entry with seq > keep. Callers walk entries
// young-to-old themselves before truncation to release resources.
func (r *rob) truncateTo(keep uint64) {
	if r.empty() {
		return
	}
	if keep < r.headSeq {
		r.count = 0
		return
	}
	newCount := int(keep - r.headSeq + 1)
	if newCount < r.count {
		r.count = newCount
	}
}
