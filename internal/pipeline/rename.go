package pipeline

import (
	"svwsim/internal/core"
	"svwsim/internal/isa"
	"svwsim/internal/lsq"
	"svwsim/internal/rle"
)

// Rename/dispatch: in-order resource allocation at up to RenameWidth per
// cycle. This stage assigns store SSNs (and runs the wrap-drain policy),
// renames through the map table, consults store-sets, performs RLE
// integration, sets dispatch-time SVWs, and allocates ROB/LQ/SQ/FSQ/IQ
// entries.

func (c *Core) rename() {
	for n := 0; n < c.cfg.RenameWidth; n++ {
		if c.fetchLen == 0 {
			return
		}
		fr := *c.fetchQFront()
		if fr.fetchC+uint64(c.cfg.FrontDepth) > c.cycle {
			return // still in the front-end pipe
		}
		if c.drainPending {
			if !c.rob.empty() || len(c.rexStoreBuf) > 0 {
				return
			}
			c.performDrain()
		}
		d := fr.dyn
		inst := d.Inst

		// Structural stalls.
		if c.rob.full() || len(c.iq) >= c.cfg.IQSize {
			return
		}
		if inst.IsLoad() && c.lq.Full() {
			return
		}
		if inst.IsStore() {
			if c.sq.Full() {
				return
			}
			if c.cfg.SVW.Enabled && c.wrap.ShouldDrain(c.ssnRename) &&
				c.drainedAt != c.ssnRename {
				c.drainPending = true
				return
			}
		}
		steeredStore := false
		if inst.IsStore() && c.fsq != nil && c.steer.StoreSteered(d.PC) {
			if c.fsq.Full() {
				return
			}
			steeredStore = true
		}

		// Source renaming (before destination).
		srcs, nsrc := inst.SrcRegs()
		var srcPhys [2]int
		for i := 0; i < nsrc; i++ {
			srcPhys[i] = c.rmap[srcs[i]]
		}

		// RLE integration decision (needs renamed base; loads only).
		var itEntry *rle.Entry
		itEntryHandle := -1
		if c.it != nil && inst.IsLoad() && inst.Dest() != isa.Zero {
			sig := rle.Sig(inst.Op, srcPhys[0], inst.Imm)
			itEntry, itEntryHandle = c.it.Lookup(sig, c.cfg.RLE.SquashReuse)
			if itEntry != nil && itEntry.FromSquash &&
				c.readyAt[itEntry.DestPhys] == ^uint64(0) {
				// The squashed producer never executed; there is no value
				// to integrate.
				itEntry, itEntryHandle = nil, -1
			}
		}

		// Destination renaming. Integrated loads adopt the IT entry's
		// physical register instead of allocating one.
		destArch := inst.Dest()
		destPhys, oldDestPhys := noPhys, noPhys
		switch {
		case destArch == isa.Zero:
		case itEntry != nil:
			destPhys = itEntry.DestPhys
			oldDestPhys = c.rmap[destArch]
			c.addRef(destPhys)
			c.rmap[destArch] = destPhys
		default:
			p, ok := c.allocPhys()
			if !ok {
				// Free-list pressure: reclaim a register held only by an
				// IT reference (limbo), one entry per cycle.
				if c.it != nil {
					if e, ok := c.it.EvictOne(); ok {
						c.releaseRef(e.DestPhys)
					}
				}
				return
			}
			destPhys = p
			oldDestPhys = c.rmap[destArch]
			c.addRef(destPhys)
			c.rmap[destArch] = destPhys
		}

		// Allocate the ROB entry.
		u := c.rob.push(d.Seq)
		c.uidGen++
		u.uid = c.uidGen
		u.dyn = d
		u.class = inst.Class()
		u.fetchC = fr.fetchC
		u.renameC = c.cycle
		u.srcPhys = srcPhys
		u.nsrc = nsrc
		u.destArch = destArch
		u.destPhys = destPhys
		u.oldDestPhys = oldDestPhys
		c.fetchQPop()

		switch {
		case inst.IsStore():
			c.renameStore(u, steeredStore)
		case inst.IsLoad():
			c.renameLoad(u, itEntry, itEntryHandle)
		case inst.Op == isa.OpNop, inst.Op == isa.OpHalt:
			u.completed = true
			u.completeC = c.cycle
			continue // never enters the issue queue
		}
		if u.isBranch() && u.dyn.Seq == c.waitBranchSeq {
			u.mispredict = true
		}
		if !u.completed {
			c.iq = append(c.iq, u.seq)
		}
	}
}

func (c *Core) renameStore(u *uop, steered bool) {
	c.ssnRename++
	u.ssn = c.ssnRename

	// Stores join the LFST so later loads in the set can wait on them.
	// Intra-set store-store serialization is deliberately not enforced: a
	// single mis-trained pair would otherwise serialize every dynamic
	// instance of a hot store behind itself, cascading unresolved-address
	// windows; implementations weaken this ordering for the same reason.
	_, _, set := c.ss.RenameStore(u.dyn.PC, u.seq)
	u.ssSet = set

	rec := lsq.StoreRec{Seq: u.seq, PC: u.dyn.PC, SSN: u.ssn}
	c.sq.Push(rec)
	if steered {
		c.fsq.Push(rec)
		u.inFSQ = true
	}

	// RLE: stores create bypass entries describing the load that would
	// read what they wrote: same base register, store-data register as
	// the value source, the store's own SSN as the vulnerability bound.
	if c.it != nil && u.dyn.Inst.MemBytes() > 0 {
		ldOp, ok := rle.LoadOpFor(u.dyn.Inst.Op)
		if ok && u.srcPhys[1] > 0 {
			sig := rle.Sig(ldOp, u.srcPhys[0], u.dyn.Inst.Imm)
			c.insertIT(u, rle.Entry{
				Sig:      sig,
				DestPhys: u.srcPhys[1], // data input register
				BasePhys: u.srcPhys[0],
				SSN:      u.ssn,
				Kind:     rle.KindBypass,
			})
		}
	}
}

func (c *Core) renameLoad(u *uop, itEntry *rle.Entry, itEntryHandle int) {
	if itEntry != nil {
		c.eliminateLoad(u, itEntry, itEntryHandle)
		return
	}

	// Store-set dependence: wait for the predicted conflicting store.
	if dep, ok := c.ss.RenameLoad(u.dyn.PC); ok {
		if w := c.uopAt(dep); w != nil && !w.completed {
			u.waitSeq, u.waiting = dep, waitStoreExec
		}
	}

	c.lq.Push(lsq.LoadRec{Seq: u.seq, PC: u.dyn.PC, Addr: u.dyn.EffAddr, Size: u.dyn.MemBytes})

	if c.cfg.SVW.Enabled {
		u.svw = core.DispatchSVW(c.ssnRetire)
	}
	// SSQ marks every load at dispatch; the FSQ/best-effort split is
	// refined at issue.
	if c.cfg.LSU == LSUSSQ && c.cfg.Rex != RexNone {
		u.marked = true
		u.kind = markSSQBest
	}

	// RLE: non-redundant loads create reuse entries tagged with SSNrename.
	if c.it != nil && u.destPhys != noPhys {
		sig := rle.Sig(u.dyn.Inst.Op, u.srcPhys[0], u.dyn.Inst.Imm)
		c.insertIT(u, rle.Entry{
			Sig:      sig,
			DestPhys: u.destPhys,
			BasePhys: u.srcPhys[0],
			SSN:      c.ssnRename,
			Kind:     rle.KindReuse,
		})
	}
}

// eliminateLoad integrates a redundant load: it never executes, completing
// at rename with the IT entry's register as its value.
func (c *Core) eliminateLoad(u *uop, e *rle.Entry, handle int) {
	u.eliminated = true
	u.elimKind = e.Kind
	u.elimSquash = e.FromSquash
	u.elimHandle = handle
	u.elimSig = e.Sig
	u.completed = true
	u.completeC = c.cycle
	u.marked = c.cfg.Rex != RexNone // natural filter: only eliminated loads re-execute
	switch e.Kind {
	case rle.KindReuse:
		u.kind = markRLEReuse
	case rle.KindBypass:
		u.kind = markRLEBypass
	}
	// §3.4: ld.SVW = IT.SSN. The min-composition with the dispatch window
	// (§3.5) is only needed when eliminated loads are also vulnerable to
	// shared-memory invalidations (NLQsm active).
	if c.cfg.NLQSM.Enabled {
		u.svw = core.EliminatedSVW(e.SSN, c.ssnRetire)
	} else {
		u.svw = e.SSN
	}
	c.lq.Push(lsq.LoadRec{
		Seq: u.seq, PC: u.dyn.PC,
		Addr: u.dyn.EffAddr, Size: u.dyn.MemBytes,
		Eliminated: true,
	})
}

// insertIT inserts an entry created by u, tracking the handle for squash
// marking and holding a reference on the value register.
func (c *Core) insertIT(u *uop, e rle.Entry) {
	c.addRef(e.DestPhys)
	handle, evicted, wasEvicted := c.it.Insert(e)
	if wasEvicted {
		c.releaseRef(evicted.DestPhys)
	}
	u.itHandle = handle
	u.itSig = e.Sig
}

// performDrain completes an SSN wrap drain: the pipeline is empty, so clear
// all SSN-bearing state and resume dispatch (paper §3.6).
func (c *Core) performDrain() {
	if c.ssbf != nil {
		c.ssbf.Clear()
	}
	if c.it != nil {
		for _, e := range c.it.Clear() {
			c.releaseRef(e.DestPhys)
		}
	}
	c.wrap.RecordDrain()
	c.stats.WrapDrains = c.wrap.Drains
	c.drainPending = false
	c.drainedAt = c.ssnRename
}
