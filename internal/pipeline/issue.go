package pipeline

import (
	"svwsim/internal/core"
	"svwsim/internal/emu"
	"svwsim/internal/isa"
	"svwsim/internal/lsq"
)

// Issue/execute: oldest-first select over the issue queue under per-class
// port limits; loads run the active LSU design's forwarding/disambiguation
// logic, observing speculative memory state.

type issuePorts struct {
	total  int
	intOps int
	loads  int
	stores int
	brs    int
	banks  []bool // D$ bank busy (core-owned scratch, cleared per cycle)
	fsq    bool   // FSQ search port busy (1/cycle)
}

func (c *Core) issue() {
	for i := range c.bankBusy {
		c.bankBusy[i] = false
	}
	ports := issuePorts{banks: c.bankBusy}
	compact := false
	for i, seq := range c.iq {
		if ports.total >= c.cfg.TotalIssue {
			break
		}
		u := c.uopAt(seq)
		if u == nil || u.issued || u.completed {
			c.iq[i] = ^uint64(0)
			compact = true
			continue
		}
		if c.cycle < u.renameC+uint64(c.cfg.SchedDepth) {
			// Queue is age ordered; everything younger is too new as well,
			// but class ports may still find older candidates — just skip.
			continue
		}
		if !c.srcsReadyFor(u) {
			continue
		}
		ok := false
		switch u.class {
		case isa.ClassIntALU:
			ok = c.tryIssueALU(u, &ports, 1)
		case isa.ClassIntMul:
			ok = c.tryIssueALU(u, &ports, c.cfg.MulLat)
		case isa.ClassBranch:
			ok = c.tryIssueBranch(u, &ports)
		case isa.ClassLoad:
			ok = c.tryIssueLoad(u, &ports)
		case isa.ClassStore:
			ok = c.tryIssueStore(u, &ports)
		}
		if ok {
			ports.total++
			c.iq[i] = ^uint64(0)
			compact = true
		}
	}
	if compact {
		c.compactIQ()
	}
}

func (c *Core) compactIQ() {
	out := c.iq[:0]
	for _, seq := range c.iq {
		if seq != ^uint64(0) {
			out = append(out, seq)
		}
	}
	c.iq = out
}

// srcsReadyFor implements the wakeup rule: a consumer may issue at cycle t
// if each producer's value arrives by the consumer's execute start (t +
// RegReadDepth), modeling full bypassing. Stores issue their address
// generation as soon as the base register is ready (split STA/STD); the
// data register is watched separately.
func (c *Core) srcsReadyFor(u *uop) bool {
	execStart := c.cycle + uint64(c.cfg.RegReadDepth)
	n := u.nsrc
	if u.isStore() {
		n = 1 // address base only
	}
	for i := 0; i < n; i++ {
		if c.readyAt[u.srcPhys[i]] > execStart {
			return false
		}
	}
	return true
}

func (c *Core) startOp(u *uop, completeAt uint64) {
	u.issued = true
	u.issueC = c.cycle
	u.completeC = completeAt
	if u.destPhys != noPhys {
		c.readyAt[u.destPhys] = completeAt
	}
	c.scheduleEvent(completeAt, u)
}

func (c *Core) tryIssueALU(u *uop, p *issuePorts, lat int) bool {
	if p.intOps >= c.cfg.IntIssue {
		return false
	}
	p.intOps++
	c.startOp(u, c.cycle+uint64(c.cfg.RegReadDepth)+uint64(lat))
	return true
}

func (c *Core) tryIssueBranch(u *uop, p *issuePorts) bool {
	if p.brs >= c.cfg.BranchIssue {
		return false
	}
	p.brs++
	c.startOp(u, c.cycle+uint64(c.cfg.RegReadDepth)+1)
	return true
}

// tryIssueStore issues a store's address generation (STA). The data half
// (STD) completes independently when the data register arrives; the store
// counts as executed only when both halves are done.
func (c *Core) tryIssueStore(u *uop, p *issuePorts) bool {
	if p.stores >= c.cfg.StoreIssue {
		return false
	}
	if u.waiting == waitStoreExec && c.storeStillPending(u.waitSeq) {
		return false // intra-store-set serialization
	}
	u.waiting = waitNothing
	p.stores++
	u.issued = true
	u.issueC = c.cycle
	u.completeC = c.cycle + uint64(c.cfg.RegReadDepth) + 1 // STA resolution
	// Publish the address with its visibility time — the AGU output
	// broadcasts to the disambiguation logic as it is produced, so a load
	// executing in the same cycle a store's address generation finishes
	// sees it. If the data register is already scheduled, its arrival time
	// is known too (STD completes with the STA); otherwise the data half
	// finishes when the producer does.
	d := u.dyn
	addrAt := c.cycle + uint64(c.cfg.RegReadDepth)
	dataAt := ^uint64(0)
	if r := c.readyAt[u.srcPhys[1]]; r != ^uint64(0) {
		dataAt = u.completeC
		if r > dataAt {
			dataAt = r
		}
	}
	if rec := c.sq.Find(u.seq); rec != nil {
		rec.Addr, rec.Size, rec.AddrKnownAt = d.EffAddr, d.MemBytes, addrAt
		rec.Data, rec.DataKnownAt = d.StoreVal, dataAt
	}
	if u.inFSQ {
		if rec := c.fsq.Find(u.seq); rec != nil {
			rec.Addr, rec.Size, rec.AddrKnownAt = d.EffAddr, d.MemBytes, addrAt
			rec.Data, rec.DataKnownAt = d.StoreVal, dataAt
		}
	}
	c.scheduleEvent(u.completeC, u)
	return true
}

// storeStillPending reports whether the store with seq is in flight and has
// not yet executed.
func (c *Core) storeStillPending(seq uint64) bool {
	w := c.uopAt(seq)
	return w != nil && !w.completed
}

// storeStillInFlight reports whether the store with seq has not committed.
func (c *Core) storeStillInFlight(seq uint64) bool {
	return c.uopAt(seq) != nil
}

func (c *Core) tryIssueLoad(u *uop, p *issuePorts) bool {
	if p.loads >= c.cfg.LoadIssue {
		return false
	}
	switch u.waiting {
	case waitStoreExec:
		if c.storeStillPending(u.waitSeq) {
			c.stats.LoadWaitSS++
			return false
		}
		u.waiting = waitNothing
	case waitStoreCommit:
		if c.storeStillInFlight(u.waitSeq) {
			c.stats.LoadWaitCommit++
			return false
		}
		u.waiting = waitNothing
	}

	d := u.dyn
	bank := c.hier.DCache.Bank(d.EffAddr, c.cfg.DBanks)
	if p.banks[bank] {
		return false // bank conflict: retry next cycle
	}
	steered := c.cfg.LSU == LSUSSQ && c.steer.LoadSteered(d.PC)
	if steered && p.fsq {
		return false // single FSQ search port
	}

	execStart := c.cycle + uint64(c.cfg.RegReadDepth)
	var completeAt uint64
	switch c.cfg.LSU {
	case LSUBaseline, LSUNLQ:
		res := c.sq.Search(u.seq, d.EffAddr, d.MemBytes, execStart)
		u.ambiguous = res.AmbiguousOlder
		switch res.Kind {
		case lsq.SearchPartial:
			u.waitSeq, u.waiting = res.StoreSeq, waitStoreCommit
			c.stats.LoadWaitCommit++
			return false
		case lsq.SearchDataWait:
			u.waitSeq, u.waiting = res.StoreSeq, waitStoreExec
			c.stats.LoadWaitData++
			return false
		case lsq.SearchForward:
			u.execValue = emu.ExtendLoad(d.Inst, res.Value)
			u.fwdSeq, u.fwdOK = res.StoreSeq, true
			c.stats.SQForwards++
			completeAt = execStart + uint64(c.cfg.LoadLat)
			if c.cfg.SVW.Enabled && c.cfg.SVW.UpdateOnForward {
				u.svw = core.ForwardSVW(u.svw, res.StoreSSN)
			}
		default: // miss: read the committed image through the cache
			u.execValue = c.readSpecMem(d)
			completeAt = c.cacheLoadComplete(d.EffAddr, execStart)
		}
		if c.cfg.LSU == LSUNLQ && c.cfg.Rex != RexNone && u.ambiguous {
			// NLQls natural filter: issued past unresolved store addresses.
			u.marked = true
			u.kind = markNLQSpec
		}

	case LSUSSQ:
		if steered {
			p.fsq = true
			u.kind = markSSQFSQ
			res := c.fsq.Search(u.seq, d.EffAddr, d.MemBytes, execStart)
			switch res.Kind {
			case lsq.SearchPartial:
				u.waitSeq, u.waiting = res.StoreSeq, waitStoreCommit
				return false
			case lsq.SearchDataWait:
				u.waitSeq, u.waiting = res.StoreSeq, waitStoreExec
				return false
			case lsq.SearchForward:
				u.execValue = emu.ExtendLoad(d.Inst, res.Value)
				u.fwdSeq, u.fwdOK = res.StoreSeq, true
				c.stats.SQForwards++
				completeAt = execStart + uint64(c.cfg.LoadLat)
				if c.cfg.SVW.Enabled && c.cfg.SVW.UpdateOnForward {
					// Only FSQ forwarding maintains the invariants the
					// update requires (§4.2); best-effort does not.
					u.svw = core.ForwardSVW(u.svw, res.StoreSSN)
				}
			default:
				u.execValue = c.readSpecMem(d)
				completeAt = c.cacheLoadComplete(d.EffAddr, execStart)
			}
		} else {
			if data, seq, ok := c.fbs[bank].Probe(u.seq, d.EffAddr, d.MemBytes); ok {
				u.execValue = emu.ExtendLoad(d.Inst, data)
				u.fwdSeq, u.fwdOK = seq, true
				u.usedBest = true
				completeAt = execStart + uint64(c.cfg.LoadLat)
			} else {
				u.execValue = c.readSpecMem(d)
				completeAt = c.cacheLoadComplete(d.EffAddr, execStart)
			}
		}
	}

	p.banks[bank] = true
	p.loads++

	// Update the LQ view for the conventional ordering search.
	if rec := c.lq.Find(u.seq); rec != nil {
		rec.Issued = true
		rec.FwdSeq, rec.FwdOK = u.fwdSeq, u.fwdOK
	}
	c.startOp(u, completeAt)
	return true
}

// readSpecMem returns the load value visible in committed memory right now —
// the value a load observes when no forwarding path covers it. If an older
// uncommitted store to the address exists, this value is stale and the load
// has mis-speculated.
func (c *Core) readSpecMem(d *emu.DynInst) uint64 {
	raw := c.commitMem.Read(d.EffAddr, d.MemBytes)
	return emu.ExtendLoad(d.Inst, raw)
}

// cacheLoadComplete models the D$ access timing for a load starting its
// access at execStart.
func (c *Core) cacheLoadComplete(addr uint64, execStart uint64) uint64 {
	done := c.hier.DCache.Access(addr, execStart)
	min := execStart + uint64(c.cfg.LoadLat)
	if done < min {
		done = min
	}
	return done
}
