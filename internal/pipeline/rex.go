package pipeline

import (
	"svwsim/internal/emu"
	"svwsim/internal/rle"
)

// The re-execution pipeline (paper §2.1, Fig. 1): a decoupled, in-order
// walker (rex-head) that processes completed instructions ahead of commit.
// Stores pass through the SVW stage, writing their SSN into the SSBF
// (speculatively, by default) and entering a small internal store buffer
// that lets younger loads re-execute before the stores commit. Marked loads
// evaluate the SVW filter test; survivors re-access the data cache through
// the port shared with store retirement (commit has priority; one access
// starts per port per cycle, pipelined thereafter).
//
// The walker stalls at the first non-completed instruction and when no port
// is available for a needed re-access. Re-accesses pipeline: the walker
// advances once a load's access is launched; the load's completion time
// (rexDoneAt) gates its commit, which in turn holds back every younger
// store — the paper's critical loop — without serializing back-to-back
// re-executing loads against each other.

func (c *Core) rex() {
	switch c.cfg.Rex {
	case RexNone:
		return
	case RexPerfect:
		c.rexPerfect()
		return
	}
	if !c.rob.empty() && c.rexHead < c.rob.headSeq {
		c.rexHead = c.rob.headSeq
	}
	dcacheLat := uint64(c.cfg.Mem.DCache.Latency)
	for budget := c.cfg.CommitWidth; budget > 0; budget-- {
		u := c.uopAt(c.rexHead)
		if u == nil || !u.completed || u.rexDoneAt != ^uint64(0) {
			return
		}
		switch {
		case u.isStore():
			if len(c.rexStoreBuf) >= c.cfg.RexStoreBufSize {
				return
			}
			if c.cfg.SVW.Enabled && !c.cfg.SVW.SpeculativeSSBF && c.unretiredLoadOlderThan(u.seq) {
				// Atomic SSBF policy: the store may not update the filter
				// until every previous load has retired (§3.6).
				return
			}
			if c.ssbf != nil {
				c.ssbf.Update(u.dyn.EffAddr, u.dyn.MemBytes, u.ssn)
			}
			c.rexStoreBuf = append(c.rexStoreBuf, u.seq)
			u.rexDoneAt = c.cycle
			c.rexHead++

		case u.isLoad() && u.marked:
			// SVW stage: filter test. Disabled for squash reuse (§4.3).
			// ForceFilter (testing aid) excuses everything, soundly or not.
			if c.ssbf != nil && !u.elimSquash {
				if c.cfg.SVW.ForceFilter || !c.ssbf.NeedsRexec(u.dyn.EffAddr, u.dyn.MemBytes, u.svw) {
					u.rexDoneAt = c.cycle
					u.rexFiltered = true
					c.rexHead++
					continue
				}
			}
			// Data cache re-access: needs a shared retirement-port slot;
			// store commit claimed its slots earlier this cycle.
			if c.portsUsed >= c.cfg.RetirePorts {
				return
			}
			c.portsUsed++
			c.hier.DCache.Access(u.dyn.EffAddr, c.cycle) // timing-only touch
			u.rexDoneAt = c.cycle + dcacheLat + c.rexExtraLat(u)
			c.countRex(u)
			u.rexFail = c.rexMismatch(u)
			c.rexHead++

		default:
			// Unmarked loads, ALU ops, branches: trivial pass-through.
			u.rexDoneAt = c.cycle
			c.rexHead++
		}
	}
}

// rexPerfect models ideal re-execution: zero latency, infinite bandwidth.
// Checking still happens, so mis-speculations still flush.
func (c *Core) rexPerfect() {
	if !c.rob.empty() && c.rexHead < c.rob.headSeq {
		c.rexHead = c.rob.headSeq
	}
	for {
		u := c.uopAt(c.rexHead)
		if u == nil || !u.completed || u.rexDoneAt != ^uint64(0) {
			return
		}
		if u.isLoad() && u.marked {
			// The value test is evaluated at commit (integration sources of
			// eliminated loads may complete after this instant pass).
			c.countRex(u)
		}
		u.rexDoneAt = c.cycle
		c.rexHead++
	}
}

// rexExtraLat returns the added re-execution latency for loads whose address
// and value must come from the register file (eliminated loads; paper §4.3:
// a dedicated 2-cycle register read port, address first).
func (c *Core) rexExtraLat(u *uop) uint64 {
	if u.eliminated {
		return 2
	}
	return 0
}

func (c *Core) countRex(u *uop) {
	c.stats.RexLoads++
	c.stats.RexByKind[u.kind]++
}

// rexMismatch reports whether the value the load (or its integration source)
// produced at execute differs from the architecturally correct value. The
// re-executed access itself always returns the correct value — the rex
// pipeline runs in order after all older stores have been applied — so the
// test reduces to comparing the execute-time value against the oracle.
// Matching values (silent stores, false sharing, SSBF aliasing) re-execute
// without consequence, exactly as in the paper.
func (c *Core) rexMismatch(u *uop) bool {
	exec := u.execValue
	if u.eliminated {
		exec = c.integratedValue(u)
	}
	return exec != u.dyn.LoadVal
}

// integratedValue reconstructs the value an eliminated load delivered: the
// current content of its integrated physical register, narrowed and extended
// per the load's width for memory-bypassing integrations.
func (c *Core) integratedValue(u *uop) uint64 {
	v := c.physVal[u.destPhys]
	if u.elimKind == rle.KindBypass {
		if n := u.dyn.MemBytes; n > 0 && n < 8 {
			v &= 1<<(uint(n)*8) - 1
		}
		v = emu.ExtendLoad(u.dyn.Inst, v)
	}
	return v
}

// unretiredLoadOlderThan reports whether any load older than seq is still in
// flight (atomic SSBF policy gate).
func (c *Core) unretiredLoadOlderThan(seq uint64) bool {
	h := c.lq.Head()
	return h != nil && h.Seq < seq
}
