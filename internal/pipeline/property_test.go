package pipeline

import (
	"math/rand"
	"testing"

	"svwsim/internal/workload"
)

// randomProfile derives a random but valid kernel profile from a seed.
func randomProfile(seed int64) workload.Profile {
	r := rand.New(rand.NewSource(seed))
	w := workload.Weights{
		Hash:   1 + r.Intn(6),
		Fwd:    r.Intn(3),
		Reload: r.Intn(3),
		Bypass: r.Intn(3),
		Chase:  r.Intn(3),
		Stream: r.Intn(4),
		Swap:   r.Intn(3),
		ALU:    1 + r.Intn(4),
		Call:   r.Intn(3),
		Late:   r.Intn(3),
	}
	return workload.Profile{
		Name: "prop", Seed: seed, Blocks: 12 + r.Intn(24),
		W:           w,
		HashEntries: 512 << r.Intn(2), SwapEntries: 128 << r.Intn(3),
		ChaseNodes: 128 << r.Intn(3), CallSaves: 1 + r.Intn(5),
		FwdDist: r.Intn(6), FwdAmbigPct: r.Intn(80),
		BranchNoisePct: r.Intn(10), UseMul: r.Intn(2) == 0,
	}
}

// TestPropertyArchCorrectness runs randomized kernels through aggressive
// configurations and requires byte-identical committed state — a randomized
// extension of the fixed-kernel oracle tests.
func TestPropertyArchCorrectness(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	mkConfigs := func() []Config {
		nlq := testConfig()
		nlq.Name = "nlq+svw"
		nlq.MaxInsts, nlq.WarmupInsts = 12_000, 1_000
		nlq.LSU = LSUNLQ
		nlq.LQSearch = false
		nlq.StoreIssue = 2
		nlq.Rex = RexReal
		nlq.SVW.Enabled = true
		nlq.SVW.UpdateOnForward = true

		ssq := testConfig()
		ssq.Name = "ssq+svw"
		ssq.MaxInsts, ssq.WarmupInsts = 12_000, 1_000
		ssq.LSU = LSUSSQ
		ssq.Rex = RexReal
		ssq.SVW.Enabled = true
		ssq.SVW.UpdateOnForward = true

		rle := Narrow4Config()
		rle.Name = "rle+svw"
		rle.MaxInsts, rle.WarmupInsts = 12_000, 1_000
		rle.RLE.Enabled = true
		rle.Rex = RexReal
		rle.RexStages = 4
		rle.SVW.Enabled = true
		// Stress the wrap drain too.
		rle.SVW.SSNBits = 10
		return []Config{nlq, ssq, rle}
	}
	for seed := int64(100); seed < 112; seed++ {
		seed := seed
		t.Run(randomProfile(seed).Name+string(rune('a'+seed-100)), func(t *testing.T) {
			t.Parallel()
			p := workload.Build(randomProfile(seed))
			for _, cfg := range mkConfigs() {
				c := runCore(t, cfg, p)
				verifyArchState(t, c, p)
				if c.CommittedTotal() < cfg.MaxInsts {
					t.Fatalf("%s halted early at %d", cfg.Name, c.CommittedTotal())
				}
			}
		})
	}
}
