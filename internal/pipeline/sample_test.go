package pipeline

import (
	"reflect"
	"testing"

	"svwsim/internal/workload"
)

// TestStatsCountersComplete reflects over Stats and verifies counters()
// lists every uint64 field (array elements included): a counter added to
// the struct but not the list would silently drop out of sampled merging.
func TestStatsCountersComplete(t *testing.T) {
	var s Stats
	want := 0
	v := reflect.ValueOf(&s).Elem()
	for i := 0; i < v.NumField(); i++ {
		switch f := v.Field(i); f.Kind() {
		case reflect.Uint64:
			want++
		case reflect.Array:
			if f.Type().Elem().Kind() == reflect.Uint64 {
				want += f.Len()
			}
		}
	}
	ptrs := s.counters()
	if len(ptrs) != want {
		t.Fatalf("counters() lists %d fields, Stats has %d uint64 counters", len(ptrs), want)
	}
	seen := make(map[*uint64]bool, len(ptrs))
	for _, p := range ptrs {
		if seen[p] {
			t.Fatalf("counters() lists a field twice")
		}
		seen[p] = true
	}
}

func TestStatsAddScale(t *testing.T) {
	a := Stats{Cycles: 100, Committed: 200, CommittedLoads: 40, RexLoads: 4, BranchAccuracy: 0.5}
	b := Stats{Cycles: 300, Committed: 600, CommittedLoads: 120, RexLoads: 36, BranchAccuracy: 0.9}
	sum := a
	sum.Add(&b)
	if sum.Cycles != 400 || sum.Committed != 800 || sum.RexLoads != 40 {
		t.Fatalf("Add: got %+v", sum)
	}
	if got := sum.BranchAccuracy; got != 0.8 { // (0.5*200 + 0.9*600) / 800
		t.Fatalf("Add: weighted BranchAccuracy = %v, want 0.8", got)
	}
	ipc := sum.IPC()
	rex := sum.RexRate()
	sum.Scale(10_000, sum.Committed)
	if sum.Committed != 10_000 || sum.Cycles != 5_000 {
		t.Fatalf("Scale: got %+v", sum)
	}
	if sum.IPC() != ipc || sum.RexRate() != rex {
		t.Fatalf("Scale changed derived rates: IPC %v->%v rex %v->%v", ipc, sum.IPC(), rex, sum.RexRate())
	}
}

// TestSampleSpecValidate pins the spec's validity rules.
func TestSampleSpecValidate(t *testing.T) {
	cases := []struct {
		spec SampleSpec
		ok   bool
	}{
		{SampleSpec{}, true}, // exact mode
		{SampleSpec{Warmup: 500, Detail: 1000, Period: 10_000}, true},
		{SampleSpec{Detail: 1000, Period: 1000}, true}, // all-detail, no skip
		{SampleSpec{Warmup: 1, Period: 10}, false},     // no detail window
		{SampleSpec{Detail: 8, Period: 4}, false},      // period too short
		{SampleSpec{Warmup: 6, Detail: 6, Period: 10}, false},
	}
	for _, c := range cases {
		if err := c.spec.Validate(); (err == nil) != c.ok {
			t.Errorf("Validate(%+v) = %v, want ok=%v", c.spec, err, c.ok)
		}
	}
}

// TestCoreFastForward: a fast-forwarded core continues detailed simulation
// from the skipped point, and its committed memory equals a pure functional
// execution of skip+detail instructions — the same end-to-end oracle the
// exact integration tests use.
func TestCoreFastForward(t *testing.T) {
	p := workload.Cached("gcc")
	const skip, detail = 30_000, 5_000

	cfg := Wide8Config()
	cfg.WarmupInsts = 0
	cfg.MaxInsts = detail
	c := New(cfg, p)
	n, err := c.FastForward(skip)
	if err != nil {
		t.Fatal(err)
	}
	if n != skip {
		t.Fatalf("FastForward executed %d, want %d", n, skip)
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if got := c.CommittedTotal(); got != detail {
		t.Fatalf("committed %d detailed insts, want %d", got, detail)
	}

	// Functional reference: skip+detail instructions straight through.
	ref := New(cfg, p)
	if _, err := ref.FastForward(skip + detail); err != nil {
		t.Fatal(err)
	}
	if addr, differ := c.CommittedMem().Diff(ref.EmuState().Mem); differ {
		t.Fatalf("committed memory diverges from functional reference at %#x", addr)
	}

	// Determinism: the same fast-forwarded run twice is identical.
	c2 := New(cfg, p)
	if _, err := c2.FastForward(skip); err != nil {
		t.Fatal(err)
	}
	if err := c2.Run(); err != nil {
		t.Fatal(err)
	}
	if *c.Stats() != *c2.Stats() {
		t.Fatalf("fast-forwarded runs diverge:\n%+v\n%+v", *c.Stats(), *c2.Stats())
	}
}

// TestResetFromSnapshot: a window run from a captured snapshot behaves
// identically to a fresh core fast-forwarded to the same point.
func TestResetFromSnapshot(t *testing.T) {
	p := workload.Cached("mcf")
	const skip, detail = 20_000, 4_000

	cfg := Narrow4Config()
	cfg.WarmupInsts = 0
	cfg.MaxInsts = detail

	direct := New(cfg, p)
	if _, err := direct.FastForward(skip); err != nil {
		t.Fatal(err)
	}
	st := direct.EmuState()
	if st.Skipped != skip {
		t.Fatalf("snapshot skipped = %d, want %d", st.Skipped, skip)
	}
	if err := direct.Run(); err != nil {
		t.Fatal(err)
	}

	restored := new(Core)
	restored.ResetFrom(cfg, p, st)
	if err := restored.Run(); err != nil {
		t.Fatal(err)
	}
	if *direct.Stats() != *restored.Stats() {
		t.Fatalf("snapshot-restored run diverges:\n%+v\n%+v", *direct.Stats(), *restored.Stats())
	}
	if addr, differ := direct.CommittedMem().Diff(restored.CommittedMem()); differ {
		t.Fatalf("committed memory diverges at %#x", addr)
	}
}
