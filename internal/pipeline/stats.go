package pipeline

// Stats aggregates one run's counters. Rates are derived by methods so raw
// counters stay mergeable.
type Stats struct {
	Cycles    uint64
	Committed uint64

	CommittedLoads  uint64
	CommittedStores uint64
	CommittedBr     uint64

	// Load optimization accounting (committed loads only).
	MarkedLoads   uint64 // loads tagged for potential re-execution
	RexLoads      uint64 // loads that actually re-accessed the cache
	RexFiltered   uint64 // marked loads the SVW filter excused
	RexFailures   uint64 // re-executions that detected a mis-speculation
	RexByKind     [8]uint64
	MarkedByKind  [8]uint64
	Eliminated    uint64 // RLE: loads removed from the execution engine
	ElimReuse     uint64
	ElimBypass    uint64
	ElimSquash    uint64 // eliminations through squash-marked entries
	FSQLoads      uint64 // SSQ: committed loads that searched the FSQ
	BestEffortFwd uint64 // SSQ: loads forwarded by a per-bank buffer
	SQForwards    uint64 // loads forwarded from SQ/FSQ

	// Flushes.
	OrderingViolations uint64 // LQ-search flushes (baseline machines)
	RexFlushes         uint64 // re-execution-failure flushes
	Mispredicts        uint64

	// Load scheduling friction (cycle-granular retry events).
	LoadWaitData   uint64 // blocked on a matching store's data
	LoadWaitCommit uint64 // blocked on a partial-overlap store's commit
	LoadWaitSS     uint64 // blocked on a store-set dependence

	// Commit-blocked cycles by cause (first blocked slot of each cycle).
	StallHeadEmpty  uint64 // ROB empty
	StallIncomplete uint64 // head not executed yet
	StallCommitLat  uint64 // head inside the commit/rex pipeline depth
	StallRexWait    uint64 // head completed, rex has not passed it
	StallStorePort  uint64 // head store lacks a retirement port

	// StallIncomplete broken down by the blocking head's class, and for
	// un-issued heads, by what kept them from issuing.
	StallHeadLoad     uint64
	StallHeadStore    uint64
	StallHeadALU      uint64
	StallHeadBranch   uint64
	StallHeadUnissued uint64 // head had not even issued yet

	// SVW machinery.
	SSBFLookups   uint64
	SSBFPositives uint64
	WrapDrains    uint64

	// Front end / memory (copied from substrates at run end).
	FetchedInsts   uint64
	BranchAccuracy float64
	ICacheMissRate float64
	DCacheMissRate float64
	L2MissRate     float64

	// NLQsm extension.
	Invalidations uint64
}

// IPC returns committed instructions per cycle.
func (s *Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Committed) / float64(s.Cycles)
}

// RexRate returns re-executed loads as a fraction of committed loads — the
// paper's "% loads re-executed".
func (s *Stats) RexRate() float64 {
	if s.CommittedLoads == 0 {
		return 0
	}
	return float64(s.RexLoads) / float64(s.CommittedLoads)
}

// MarkedRate returns marked loads as a fraction of committed loads.
func (s *Stats) MarkedRate() float64 {
	if s.CommittedLoads == 0 {
		return 0
	}
	return float64(s.MarkedLoads) / float64(s.CommittedLoads)
}

// FilterEffectiveness returns the fraction of marked loads the SVW filter
// excused from re-execution.
func (s *Stats) FilterEffectiveness() float64 {
	if s.MarkedLoads == 0 {
		return 0
	}
	return float64(s.RexFiltered) / float64(s.MarkedLoads)
}

// ElimRate returns eliminated loads as a fraction of committed loads.
func (s *Stats) ElimRate() float64 {
	if s.CommittedLoads == 0 {
		return 0
	}
	return float64(s.Eliminated) / float64(s.CommittedLoads)
}

// RexRateOf returns the re-execution rate attributable to one mark kind.
func (s *Stats) RexRateOf(k markKind) float64 {
	if s.CommittedLoads == 0 {
		return 0
	}
	return float64(s.RexByKind[k]) / float64(s.CommittedLoads)
}

// RexRateFSQ and RexRateBest split the SSQ re-execution rate for Fig. 6.
func (s *Stats) RexRateFSQ() float64 { return s.RexRateOf(markSSQFSQ) }

// RexRateBest is the non-FSQ share of the SSQ re-execution rate.
func (s *Stats) RexRateBest() float64 { return s.RexRateOf(markSSQBest) }

// RexRateReuse and RexRateBypass split the RLE re-execution rate for Fig. 7.
func (s *Stats) RexRateReuse() float64 { return s.RexRateOf(markRLEReuse) }

// RexRateBypass is the memory-bypassing share of the RLE re-execution rate.
func (s *Stats) RexRateBypass() float64 { return s.RexRateOf(markRLEBypass) }

// RexRateNLQSM is the share of re-executions forced by injected coherence
// invalidations (NLQsm extension).
func (s *Stats) RexRateNLQSM() float64 { return s.RexRateOf(markNLQSM) }
