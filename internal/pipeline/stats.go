package pipeline

// Stats aggregates one run's counters. Rates are derived by methods so raw
// counters stay mergeable.
type Stats struct {
	Cycles    uint64
	Committed uint64

	CommittedLoads  uint64
	CommittedStores uint64
	CommittedBr     uint64

	// Load optimization accounting (committed loads only).
	MarkedLoads   uint64 // loads tagged for potential re-execution
	RexLoads      uint64 // loads that actually re-accessed the cache
	RexFiltered   uint64 // marked loads the SVW filter excused
	RexFailures   uint64 // re-executions that detected a mis-speculation
	RexByKind     [8]uint64
	MarkedByKind  [8]uint64
	Eliminated    uint64 // RLE: loads removed from the execution engine
	ElimReuse     uint64
	ElimBypass    uint64
	ElimSquash    uint64 // eliminations through squash-marked entries
	FSQLoads      uint64 // SSQ: committed loads that searched the FSQ
	BestEffortFwd uint64 // SSQ: loads forwarded by a per-bank buffer
	SQForwards    uint64 // loads forwarded from SQ/FSQ

	// Flushes.
	OrderingViolations uint64 // LQ-search flushes (baseline machines)
	RexFlushes         uint64 // re-execution-failure flushes
	Mispredicts        uint64

	// Load scheduling friction (cycle-granular retry events).
	LoadWaitData   uint64 // blocked on a matching store's data
	LoadWaitCommit uint64 // blocked on a partial-overlap store's commit
	LoadWaitSS     uint64 // blocked on a store-set dependence

	// Commit-blocked cycles by cause (first blocked slot of each cycle).
	StallHeadEmpty  uint64 // ROB empty
	StallIncomplete uint64 // head not executed yet
	StallCommitLat  uint64 // head inside the commit/rex pipeline depth
	StallRexWait    uint64 // head completed, rex has not passed it
	StallStorePort  uint64 // head store lacks a retirement port

	// StallIncomplete broken down by the blocking head's class, and for
	// un-issued heads, by what kept them from issuing.
	StallHeadLoad     uint64
	StallHeadStore    uint64
	StallHeadALU      uint64
	StallHeadBranch   uint64
	StallHeadUnissued uint64 // head had not even issued yet

	// SVW machinery.
	SSBFLookups   uint64
	SSBFPositives uint64
	WrapDrains    uint64

	// Front end / memory (copied from substrates at run end).
	FetchedInsts   uint64
	BranchAccuracy float64
	ICacheMissRate float64
	DCacheMissRate float64
	L2MissRate     float64

	// NLQsm extension.
	Invalidations uint64
}

// counters returns a pointer to every raw uint64 counter in s, array
// elements included. Add and Scale operate through this list, so a counter
// added to Stats must be listed here — TestStatsCountersComplete reflects
// over the struct and fails the build of anyone who forgets. The derived
// float rates (BranchAccuracy, miss rates) are handled separately: they are
// ratios, merged by committed-weighted average and invariant under scaling.
func (s *Stats) counters() []*uint64 {
	out := []*uint64{
		&s.Cycles, &s.Committed,
		&s.CommittedLoads, &s.CommittedStores, &s.CommittedBr,
		&s.MarkedLoads, &s.RexLoads, &s.RexFiltered, &s.RexFailures,
		&s.Eliminated, &s.ElimReuse, &s.ElimBypass, &s.ElimSquash,
		&s.FSQLoads, &s.BestEffortFwd, &s.SQForwards,
		&s.OrderingViolations, &s.RexFlushes, &s.Mispredicts,
		&s.LoadWaitData, &s.LoadWaitCommit, &s.LoadWaitSS,
		&s.StallHeadEmpty, &s.StallIncomplete, &s.StallCommitLat,
		&s.StallRexWait, &s.StallStorePort,
		&s.StallHeadLoad, &s.StallHeadStore, &s.StallHeadALU,
		&s.StallHeadBranch, &s.StallHeadUnissued,
		&s.SSBFLookups, &s.SSBFPositives, &s.WrapDrains,
		&s.FetchedInsts, &s.Invalidations,
	}
	for i := range s.RexByKind {
		out = append(out, &s.RexByKind[i])
	}
	for i := range s.MarkedByKind {
		out = append(out, &s.MarkedByKind[i])
	}
	return out
}

// Add merges another window's counters into s: raw counters sum, rate
// fields average weighted by each side's committed count. The sampling
// engine uses it to accumulate detailed windows into one run-level Stats.
func (s *Stats) Add(o *Stats) {
	ws, wo := float64(s.Committed), float64(o.Committed)
	if ws+wo > 0 {
		avg := func(a, b float64) float64 { return (a*ws + b*wo) / (ws + wo) }
		s.BranchAccuracy = avg(s.BranchAccuracy, o.BranchAccuracy)
		s.ICacheMissRate = avg(s.ICacheMissRate, o.ICacheMissRate)
		s.DCacheMissRate = avg(s.DCacheMissRate, o.DCacheMissRate)
		s.L2MissRate = avg(s.L2MissRate, o.L2MissRate)
	}
	sc, oc := s.counters(), o.counters()
	for i := range sc {
		*sc[i] += *oc[i]
	}
}

// Scale multiplies every raw counter by num/den (128-bit intermediate,
// round-half-up), turning measured-window totals into full-run estimates.
// Numerator and denominator scale together, so every derived rate — IPC,
// re-execution rate, miss rates — is preserved.
func (s *Stats) Scale(num, den uint64) {
	if den == 0 || num == den {
		return
	}
	for _, p := range s.counters() {
		*p = scaleCounter(*p, num, den)
	}
}

// IPC returns committed instructions per cycle.
func (s *Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Committed) / float64(s.Cycles)
}

// RexRate returns re-executed loads as a fraction of committed loads — the
// paper's "% loads re-executed".
func (s *Stats) RexRate() float64 {
	if s.CommittedLoads == 0 {
		return 0
	}
	return float64(s.RexLoads) / float64(s.CommittedLoads)
}

// MarkedRate returns marked loads as a fraction of committed loads.
func (s *Stats) MarkedRate() float64 {
	if s.CommittedLoads == 0 {
		return 0
	}
	return float64(s.MarkedLoads) / float64(s.CommittedLoads)
}

// FilterEffectiveness returns the fraction of marked loads the SVW filter
// excused from re-execution.
func (s *Stats) FilterEffectiveness() float64 {
	if s.MarkedLoads == 0 {
		return 0
	}
	return float64(s.RexFiltered) / float64(s.MarkedLoads)
}

// ElimRate returns eliminated loads as a fraction of committed loads.
func (s *Stats) ElimRate() float64 {
	if s.CommittedLoads == 0 {
		return 0
	}
	return float64(s.Eliminated) / float64(s.CommittedLoads)
}

// RexRateOf returns the re-execution rate attributable to one mark kind.
func (s *Stats) RexRateOf(k markKind) float64 {
	if s.CommittedLoads == 0 {
		return 0
	}
	return float64(s.RexByKind[k]) / float64(s.CommittedLoads)
}

// RexRateFSQ and RexRateBest split the SSQ re-execution rate for Fig. 6.
func (s *Stats) RexRateFSQ() float64 { return s.RexRateOf(markSSQFSQ) }

// RexRateBest is the non-FSQ share of the SSQ re-execution rate.
func (s *Stats) RexRateBest() float64 { return s.RexRateOf(markSSQBest) }

// RexRateReuse and RexRateBypass split the RLE re-execution rate for Fig. 7.
func (s *Stats) RexRateReuse() float64 { return s.RexRateOf(markRLEReuse) }

// RexRateBypass is the memory-bypassing share of the RLE re-execution rate.
func (s *Stats) RexRateBypass() float64 { return s.RexRateOf(markRLEBypass) }

// RexRateNLQSM is the share of re-executions forced by injected coherence
// invalidations (NLQsm extension).
func (s *Stats) RexRateNLQSM() float64 { return s.RexRateOf(markNLQSM) }
