package pipeline

import (
	"testing"

	"svwsim/internal/prog"
	"svwsim/internal/rle"
	"svwsim/internal/workload"
)

// buildForwardingLoop returns a program with a tight store->load forwarding
// pattern whose load must observe the store's value through the SQ.
func buildForwardingLoop(iters int64) *prog.Program {
	b := prog.NewBuilder("fwdloop")
	base := uint64(prog.DefaultDataBase)
	b.MovImm(2, base)
	b.MovImm(1, uint64(iters))
	b.Label("top")
	b.Add(3, 1, 1) // changing value
	b.Stq(3, 0, 2) // store it
	b.Ldq(4, 0, 2) // immediately reload: must forward
	b.Sub(5, 4, 3) // r5 = 0 iff forwarding delivered the right value
	b.Stq(5, 8, 2) // expose for the memory oracle
	b.Addi(1, 1, -1)
	b.Bne(1, "top")
	b.Halt()
	return b.Build()
}

func TestForwardingDeliversFreshValues(t *testing.T) {
	for _, mk := range []struct {
		name string
		f    func(*Config)
	}{
		{"baseline", func(c *Config) {}},
		{"ssq", func(c *Config) {
			c.LSU = LSUSSQ
			c.Rex = RexReal
			c.SVW.Enabled = true
		}},
	} {
		mk := mk
		t.Run(mk.name, func(t *testing.T) {
			cfg := testConfig()
			cfg.MaxInsts = 8_000
			cfg.WarmupInsts = 0
			mk.f(&cfg)
			p := buildForwardingLoop(2_000)
			c := runCore(t, cfg, p)
			verifyArchState(t, c, p)
			if c.Stats().SQForwards == 0 && c.Stats().BestEffortFwd == 0 {
				t.Error("no forwarding happened on a forwarding loop")
			}
		})
	}
}

// buildViolationLoop returns a program engineered to produce memory-ordering
// violations: the store's address arrives through a load (late), while the
// subsequent load to the same address is ready immediately.
func buildViolationLoop(iters int64) *prog.Program {
	b := prog.NewBuilder("violloop")
	base := uint64(prog.DefaultDataBase)
	b.MovImm(2, base)    // pointer cell lives here
	b.MovImm(3, base+64) // the target slot
	b.Stq(3, 0, 2)       // mem[base] = base+64
	b.MovImm(1, uint64(iters))
	b.Label("top")
	b.Ldq(4, 0, 2) // load the pointer (slow-ish path)
	b.Add(5, 1, 1)
	b.Stq(5, 0, 4) // store through the pointer: late address
	b.Ldq(6, 0, 3) // load the same slot directly: issues early, collides
	b.Stq(6, 8, 3) // expose the observed value
	b.Addi(1, 1, -1)
	b.Bne(1, "top")
	b.Halt()
	return b.Build()
}

func TestViolationsDetectedAndRecovered(t *testing.T) {
	// Disable store-sets learning persistence to keep violations coming.
	base := testConfig()
	base.MaxInsts = 10_000
	base.WarmupInsts = 0
	base.SS.ClearInterval = 200

	t.Run("baseline-lqsearch", func(t *testing.T) {
		p := buildViolationLoop(2_000)
		c := runCore(t, base, p)
		if c.Stats().OrderingViolations == 0 {
			t.Error("engineered violation loop produced no violations")
		}
		verifyArchState(t, c, p)
	})
	t.Run("nlq-rex", func(t *testing.T) {
		cfg := base
		cfg.LSU = LSUNLQ
		cfg.LQSearch = false
		cfg.StoreIssue = 2
		cfg.Rex = RexReal
		p := buildViolationLoop(2_000)
		c := runCore(t, cfg, p)
		if c.Stats().RexFailures == 0 {
			t.Error("NLQ missed the engineered violations")
		}
		verifyArchState(t, c, p)
	})
	t.Run("nlq-svw-still-catches", func(t *testing.T) {
		cfg := base
		cfg.LSU = LSUNLQ
		cfg.LQSearch = false
		cfg.StoreIssue = 2
		cfg.Rex = RexReal
		cfg.SVW.Enabled = true
		cfg.SVW.UpdateOnForward = true
		p := buildViolationLoop(2_000)
		c := runCore(t, cfg, p)
		verifyArchState(t, c, p) // the filter must not hide real conflicts
		if c.Stats().RexFailures == 0 {
			t.Error("SVW filtered away a real violation")
		}
	})
}

func TestMispredictsStallAndRecover(t *testing.T) {
	cfg := testConfig()
	p := testProgram()
	c := runCore(t, cfg, p)
	if c.Stats().Mispredicts == 0 {
		t.Error("noisy kernel produced no mispredicts")
	}
	if c.Stats().BranchAccuracy >= 1 || c.Stats().BranchAccuracy < 0.5 {
		t.Errorf("branch accuracy = %f", c.Stats().BranchAccuracy)
	}
}

func TestWarmupResetsCounters(t *testing.T) {
	with := testConfig()
	with.WarmupInsts = 10_000
	with.MaxInsts = 20_000
	p := testProgram()
	c := runCore(t, with, p)
	if c.Stats().Committed != 10_000 {
		t.Errorf("measured commits = %d, want 10000", c.Stats().Committed)
	}
	if c.CommittedTotal() != 20_000 {
		t.Errorf("total commits = %d", c.CommittedTotal())
	}
	if c.Stats().Cycles == 0 || c.Stats().Cycles >= c.Cycle() {
		t.Error("measured cycles must exclude warm-up")
	}
}

func TestHaltStopsTheMachine(t *testing.T) {
	b := prog.NewBuilder("short")
	for i := 0; i < 50; i++ {
		b.Addi(1, 1, 1)
	}
	b.Halt()
	p := b.Build()
	cfg := testConfig()
	cfg.WarmupInsts = 0
	cfg.MaxInsts = 1_000_000
	c := runCore(t, cfg, p)
	if c.CommittedTotal() != 50 {
		t.Errorf("committed %d, want 50", c.CommittedTotal())
	}
}

func TestFSQFillsUnderSSQ(t *testing.T) {
	// After steering trains, predicted stores allocate FSQ entries; the
	// queue must never exceed its capacity (Push panics on overflow).
	cfg := testConfig()
	cfg.LSU = LSUSSQ
	cfg.Rex = RexReal
	cfg.FSQSize = 4 // tiny: exercise the full-stall path
	p := testProgram()
	c := runCore(t, cfg, p)
	verifyArchState(t, c, p)
}

func TestTinyStructuresStillCorrect(t *testing.T) {
	// Shrink every queue to force structural-stall paths constantly.
	cfg := testConfig()
	cfg.ROBSize = 16
	cfg.IQSize = 8
	cfg.LQSize = 6
	cfg.SQSize = 4
	cfg.PhysRegs = 64
	cfg.LSU = LSUSSQ
	cfg.Rex = RexReal
	cfg.SVW.Enabled = true
	cfg.MaxInsts = 8_000
	cfg.WarmupInsts = 0
	p := testProgram()
	c := runCore(t, cfg, p)
	verifyArchState(t, c, p)
}

func TestRLEWithTinyIT(t *testing.T) {
	cfg := testConfig()
	cfg.RLE.Enabled = true
	cfg.Rex = RexReal
	cfg.RexStages = 4
	cfg.RLE.IT = rle.Config{Sets: 4, Ways: 1}
	cfg.MaxInsts = 10_000
	cfg.WarmupInsts = 0
	p := testProgram()
	c := runCore(t, cfg, p)
	verifyArchState(t, c, p)
}

func TestStreamRewindStaysBounded(t *testing.T) {
	// The oracle stream must not grow without bound: Release keeps only
	// in-flight records.
	cfg := testConfig()
	cfg.MaxInsts = 30_000
	p := testProgram()
	c := runCore(t, cfg, p)
	if buf := c.stream.Buffered(); buf > 4*cfg.ROBSize {
		t.Errorf("stream retains %d records for a %d-entry ROB", buf, cfg.ROBSize)
	}
}

func TestAllSixteenBenchmarksRunOnSVWConfig(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := testConfig()
	cfg.LSU = LSUSSQ
	cfg.Rex = RexReal
	cfg.SVW.Enabled = true
	cfg.SVW.UpdateOnForward = true
	cfg.MaxInsts = 15_000
	cfg.WarmupInsts = 1_000
	for _, name := range workload.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			p := workload.BuildByName(name)
			c := runCore(t, cfg, p)
			verifyArchState(t, c, p)
		})
	}
}
