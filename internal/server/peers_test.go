package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"

	"svwsim/internal/api"
	"svwsim/internal/rendezvous"
	"svwsim/internal/sim"
	"svwsim/internal/sim/engine"
	"svwsim/internal/store"
)

// shardedFabric is n svwd servers with per-backend store directories and a
// static membership view over real HTTP listeners — the sharded persistent
// store without a coordinator in front.
type shardedFabric struct {
	servers []*Server
	urls    []string
	tss     []*httptest.Server
}

// newShardedFabric binds the listeners FIRST so every member's URL is
// known before server.New runs (Peers/PeerSelf are constructor options),
// then mounts each server's handler on its pre-bound listener.
func newShardedFabric(t *testing.T, n int) *shardedFabric {
	t.Helper()
	f := &shardedFabric{}
	lns := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		f.urls = append(f.urls, "http://"+ln.Addr().String())
	}
	for i := 0; i < n; i++ {
		s := newTestServer(Options{
			Workers:          2,
			StoreDir:         t.TempDir(),
			StoreWriteBehind: 64,
			Peers:            f.urls,
			PeerSelf:         f.urls[i],
		})
		t.Cleanup(func() { s.Close() })
		f.servers = append(f.servers, s)
		ts := httptest.NewUnstartedServer(s.Handler())
		ts.Listener.Close()
		ts.Listener = lns[i]
		ts.Start()
		t.Cleanup(ts.Close)
		f.tss = append(f.tss, ts)
	}
	return f
}

// ownerIndex resolves which member owns key's persistent entry.
func (f *shardedFabric) ownerIndex(key string) int {
	owner := rendezvous.Owner(f.urls, key)
	for i, u := range f.urls {
		if u == owner {
			return i
		}
	}
	return -1
}

// warm computes every (config, bench) cell at its store owner via
// /v1/run, returning how many cells each member owns.
func (f *shardedFabric) warm(t *testing.T, configs, benches []string) []int {
	t.Helper()
	owned := make([]int, len(f.servers))
	for _, cname := range configs {
		cfg, ok := sim.ConfigByName(cname)
		if !ok {
			t.Fatalf("unknown config %q", cname)
		}
		for _, bench := range benches {
			i := f.ownerIndex(engine.Fingerprint(cfg, bench, testInsts))
			if i < 0 {
				t.Fatalf("no owner for %s/%s", cname, bench)
			}
			owned[i]++
			body := fmt.Sprintf(`{"config":%q,"bench":%q,"insts":%d}`, cname, bench, testInsts)
			if w := do(f.servers[i], "POST", "/v1/run", body, nil); w.Code != http.StatusOK {
				t.Fatalf("warming %s/%s on owner %d: HTTP %d: %s", cname, bench, i, w.Code, w.Body)
			}
		}
	}
	return owned
}

// refSweepBody is the `svwsim -json` encoding of the sweep: the reference
// bodies concatenated config-major.
func refSweepBody(t *testing.T, configs, benches []string) []byte {
	t.Helper()
	var body []byte
	for _, c := range configs {
		for _, b := range benches {
			body = append(body, directRunBody(t, c, b)...)
		}
	}
	return body
}

func sweepReq(configs, benches []string) string {
	b, _ := json.Marshal(api.SweepRequest{Configs: configs, Benches: benches, Insts: testInsts})
	return string(b)
}

// The sharded-store headline: after every cell is computed at its store
// owner, a full-registry sweep at ONE member is byte-identical to the
// `svwsim -json` encoding with ZERO engine executions — self-owned cells
// come from its own tiers and everything else over the peer-read
// protocol — and no cell is counted twice anywhere in the fabric.
func TestShardedSweepEquivalenceOverPeerReads(t *testing.T) {
	configs := sim.ConfigNames()
	benches := []string{"gcc", "twolf"}
	cells := len(configs) * len(benches)
	f := newShardedFabric(t, 3)
	owned := f.warm(t, configs, benches)
	if owned[0] == cells {
		t.Skipf("all %d cells owned by member 0; nothing would exercise peer reads", cells)
	}

	s0 := f.servers[0]
	memoBefore := s0.Engine().Memo()
	w := do(s0, "POST", "/v1/sweep", sweepReq(configs, benches), nil)
	if w.Code != http.StatusOK {
		t.Fatalf("sweep HTTP %d: %s", w.Code, w.Body)
	}
	if !bytes.Equal(w.Body.Bytes(), refSweepBody(t, configs, benches)) {
		t.Fatal("sharded sweep differs from the svwsim -json encoding")
	}
	if m := s0.Engine().Memo(); m.Misses != memoBefore.Misses {
		t.Fatalf("member 0 executed %d jobs during the sweep, want 0 — "+
			"every non-owned cell should be a peer read", m.Misses-memoBefore.Misses)
	}

	st := cacheStats(t, s0)
	if int(st.PeerHits) != cells-owned[0] {
		t.Fatalf("member 0 peer hits = %d, want %d (cells it does not own): %+v",
			st.PeerHits, cells-owned[0], st)
	}
	if int(st.Hits) != owned[0] {
		t.Fatalf("member 0 memory hits = %d, want %d (its own warm cells): %+v",
			st.Hits, owned[0], st)
	}
	// Fabric-wide, each cell is accounted exactly twice: once as its warm
	// compute (a miss on its owner) and once as the sweep's serve on
	// member 0. Any double count — the owner also accounting the peer
	// read, say — breaks this sum.
	var total int
	for _, s := range f.servers {
		cs := cacheStats(t, s)
		total += int(cs.Hits + cs.DiskHits + cs.PeerHits + cs.Misses)
	}
	if total != 2*cells {
		t.Fatalf("fabric-wide accounted serves = %d, want %d (warm + sweep, once each)",
			total, 2*cells)
	}

	// An SSE sweep at another member labels each cell's event with its
	// real origin: memory for cells it owns, peer for the rest.
	s1 := f.servers[1]
	hdr := map[string]string{"Accept": "text/event-stream"}
	ws := do(s1, "POST", "/v1/sweep", sweepReq(configs, benches), hdr)
	if ws.Code != http.StatusOK {
		t.Fatalf("SSE sweep HTTP %d: %s", ws.Code, ws.Body)
	}
	events := parseSSE(t, ws.Body.String())
	if len(events) != cells+1 {
		t.Fatalf("got %d events, want %d results + done", len(events), cells)
	}
	var peerEvents int
	for _, e := range events[:cells] {
		var ev SweepEvent
		if err := json.Unmarshal(e.Data, &ev); err != nil {
			t.Fatal(err)
		}
		if !ev.Cached {
			t.Fatalf("event %d not served from the store: %+v", e.ID, ev)
		}
		if ev.Origin == api.CachePeer {
			peerEvents++
		}
	}
	var done SweepDone
	if err := json.Unmarshal(events[cells].Data, &done); err != nil {
		t.Fatal(err)
	}
	if peerEvents != cells-owned[1] || done.PeerHits != peerEvents {
		t.Fatalf("SSE peer events = %d, done.PeerHits = %d, want %d",
			peerEvents, done.PeerHits, cells-owned[1])
	}
}

// Killing a store owner mid-fabric must cost recomputes, never wrong
// answers: cells owned by the dead member fall back to local compute, the
// sweep stays byte-identical, and the serving member's accounting still
// sums to one count per cell.
func TestShardedSweepSurvivesDeadOwner(t *testing.T) {
	configs := []string{"ssq", "ssq+svw", "nlq", "rle"}
	benches := []string{"gcc", "twolf"}
	cells := len(configs) * len(benches)
	f := newShardedFabric(t, 3)
	owned := f.warm(t, configs, benches)

	// Kill whichever of members 1/2 owns more cells, so the dead-owner
	// path is guaranteed non-empty whenever member 0 doesn't own all.
	dead := 1
	if owned[2] > owned[1] {
		dead = 2
	}
	if owned[dead] == 0 {
		t.Skipf("cell ownership %v left nothing on a killable member", owned)
	}
	f.tss[dead].Close()

	s0 := f.servers[0]
	before := cacheStats(t, s0)
	w := do(s0, "POST", "/v1/sweep", sweepReq(configs, benches), nil)
	if w.Code != http.StatusOK {
		t.Fatalf("sweep with a dead owner: HTTP %d: %s", w.Code, w.Body)
	}
	if !bytes.Equal(w.Body.Bytes(), refSweepBody(t, configs, benches)) {
		t.Fatal("sweep with a dead owner differs from the reference encoding")
	}

	after := cacheStats(t, s0)
	alive := 3 - dead // the other non-serving member
	dHits := int(after.Hits - before.Hits)
	dPeer := int(after.PeerHits - before.PeerHits)
	dMiss := int(after.Misses - before.Misses)
	if dHits != owned[0] || dPeer != owned[alive] || dMiss != owned[dead] {
		t.Fatalf("sweep deltas hits/peer/miss = %d/%d/%d, want %d/%d/%d (ownership %v)",
			dHits, dPeer, dMiss, owned[0], owned[alive], owned[dead], owned)
	}
	if dHits+dPeer+dMiss != cells {
		t.Fatalf("sweep accounted %d serves for %d cells", dHits+dPeer+dMiss, cells)
	}
}

// The peer-read endpoint round-trips the entry encoding for keys with
// URL-hostile characters, misses with 404, and rejects the empty key.
func TestStoreGetEndpoint(t *testing.T) {
	s := newTestServer(Options{StoreDir: t.TempDir()})
	key := "cfg|with spaces/{braces}?&#"
	val := []byte(`{"some":"result"}`)
	s.store.Put(key, val)

	w := do(s, "GET", "/v1/store/"+url.PathEscape(key), "", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("HTTP %d: %s", w.Code, w.Body)
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/octet-stream" {
		t.Fatalf("Content-Type %q", ct)
	}
	got, ok := store.DecodeEntry(w.Body.Bytes(), key)
	if !ok || !bytes.Equal(got, val) {
		t.Fatalf("decoded %q, %v — the endpoint must serve the validated entry encoding", got, ok)
	}
	// Serving a peer read accounts nothing here: the requester counts it.
	if st := cacheStats(t, s); st.Hits != 0 || st.DiskHits != 0 || st.PeerHits != 0 {
		t.Fatalf("peer serve touched counters: %+v", st)
	}
	if w := do(s, "GET", "/v1/store/"+url.PathEscape("absent"), "", nil); w.Code != http.StatusNotFound {
		t.Fatalf("miss: HTTP %d, want 404", w.Code)
	}
}

// Membership learning: with PeerLearn, a forwarded request's membership
// headers replace the election set; without it they are ignored.
func TestPeerMembershipLearning(t *testing.T) {
	mk := func(peers, self string) *http.Request {
		r := httptest.NewRequest("POST", "/v1/run", nil)
		if peers != "" {
			r.Header.Set(api.PeersHeader, peers)
		}
		if self != "" {
			r.Header.Set(api.PeerSelfHeader, self)
		}
		return r
	}

	learner := newTestServer(Options{PeerLearn: true})
	learner.observePeers(mk("http://a:1,http://b:2/", "http://b:2"))
	self, members := learner.peers.view()
	if self != "http://b:2" || len(members) != 2 || members[1] != "http://b:2" {
		t.Fatalf("learned view = %q, %v", self, members)
	}
	// Same header again: the cheap path must keep the view.
	learner.observePeers(mk("http://a:1,http://b:2/", "http://b:2"))
	if _, m := learner.peers.view(); len(m) != 2 {
		t.Fatalf("unchanged header disturbed the view: %v", m)
	}
	// A shrunk pool replaces the set.
	learner.observePeers(mk("http://b:2", ""))
	if _, m := learner.peers.view(); len(m) != 1 || m[0] != "http://b:2" {
		t.Fatalf("shrunk pool not adopted: %v", m)
	}

	static := newTestServer(Options{Peers: []string{"http://x", "http://y"}, PeerSelf: "http://x"})
	static.observePeers(mk("http://evil:1,http://evil:2", "http://evil:1"))
	if self, m := static.peers.view(); self != "http://x" || len(m) != 2 || m[0] != "http://x" {
		t.Fatalf("learning off, but headers were adopted: %q, %v", self, m)
	}
}
