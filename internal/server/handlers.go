package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"svwsim/internal/api"
	"svwsim/internal/sim"
	"svwsim/internal/sim/engine"
	"svwsim/internal/store"
	"svwsim/internal/workload"
)

// --- shared helpers ------------------------------------------------------

// The JSON and SSE encodings live in internal/api, shared with the svwctl
// coordinator; the wrappers below keep handler call sites short.

func writeJSON(w http.ResponseWriter, status int, v any)    { api.WriteJSON(w, status, v) }
func writeBody(w http.ResponseWriter, status int, b []byte) { api.WriteBody(w, status, b) }

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	api.WriteError(w, status, format, args...)
}

// decodeBody parses the request body into v under the server's size limit.
// It writes the error response itself and reports whether decoding
// succeeded.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", tooLarge.Limit)
			return false
		}
		writeError(w, http.StatusBadRequest, "invalid request body: %v", err)
		return false
	}
	return true
}

// marshalResult encodes an engine result exactly as `svwsim -json` does
// (api.MarshalResult). Cached bytes are stored in this form so cache hits
// and fresh runs are byte-identical.
func marshalResult(res engine.Result) ([]byte, error) {
	return api.MarshalResult(res)
}

// clientGone reports whether err is the request context ending — the client
// disconnected, so there is no one to write an error to.
func clientGone(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// rejectSaturated writes the 429 admission response.
func rejectSaturated(w http.ResponseWriter) {
	w.Header().Set("Retry-After", "1")
	writeError(w, http.StatusTooManyRequests,
		"admission gate saturated: too many concurrent jobs, retry later")
}

// --- registry / health / stats ------------------------------------------

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status, code := "ok", http.StatusOK
	if s.draining.Load() {
		status, code = "draining", http.StatusServiceUnavailable
	}
	writeJSON(w, code, HealthResponse{
		Status:  status,
		UptimeS: time.Since(s.start).Seconds(),
	})
}

func (s *Server) handleConfigs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, ConfigsResponse{Configs: sim.ConfigNames()})
}

func (s *Server) handleBenches(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, BenchesResponse{Benches: workload.Names()})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	m := s.eng.Memo()
	writeJSON(w, http.StatusOK, StatsResponse{
		UptimeS: time.Since(s.start).Seconds(),
		Cache:   api.StoreCacheStats(s.store.Stats()),
		Engine: EngineStats{
			MemoHits:    m.Hits,
			MemoMisses:  m.Misses,
			MemoEntries: s.eng.MemoSize(),
		},
		Admission: s.gate.stats(),
	})
}

// --- /v1/run -------------------------------------------------------------

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	cfg, ok := sim.ConfigByName(req.Config)
	if !ok {
		writeError(w, http.StatusBadRequest, "unknown config %q", req.Config)
		return
	}
	if _, ok := workload.Get(req.Bench); !ok {
		writeError(w, http.StatusBadRequest, "unknown benchmark %q", req.Bench)
		return
	}

	key := engine.Fingerprint(cfg, req.Bench, req.Insts)
	if body, origin := s.store.Get(key); origin != store.OriginMiss {
		s.store.AccountGet(origin)
		w.Header().Set(api.CacheHeader, origin.String())
		writeBody(w, http.StatusOK, body)
		return
	}
	w.Header().Set(api.CacheHeader, api.CacheMiss)
	release, ok := s.gate.tryAcquire(1)
	if !ok {
		rejectSaturated(w)
		return
	}
	defer release()
	// A miss is counted once admitted, not at probe time: a rejected
	// request neither serves nor computes anything.
	s.store.Account(0, 0, 1)

	rs, err := s.eng.RunContext(r.Context(), []engine.Job{{
		Study: "svwd-run", Label: cfg.Name, Config: cfg,
		Bench: req.Bench, Insts: req.Insts,
	}}, nil)
	if err != nil {
		if clientGone(err) {
			return
		}
		writeError(w, http.StatusInternalServerError, "run failed: %v", err)
		return
	}
	body, err := marshalResult(rs[0].Result)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "encoding result: %v", err)
		return
	}
	s.store.Put(key, body)
	writeBody(w, http.StatusOK, body)
}

// --- /v1/sweep -----------------------------------------------------------

// sweepPlan is a flattened sweep matrix with per-job store state.
type sweepPlan struct {
	jobs   []engine.Job
	keys   []string
	cached [][]byte       // cached[i] != nil: job i was served by the store
	origin []store.Origin // which tier served job i (OriginMiss = computed)
	sub    []engine.Job   // the uncached jobs, in job-index order
	disk   int            // how many cached jobs came from the disk tier
}

// planSweep validates the request, flattens the matrix config-major (the
// `svwsim -config a,b -bench x,y` order) and probes the store for every
// job. It writes the error response itself on failure.
func (s *Server) planSweep(w http.ResponseWriter, req *SweepRequest) (*sweepPlan, bool) {
	if len(req.Configs) == 0 || len(req.Benches) == 0 {
		writeError(w, http.StatusBadRequest, "sweep matrix is empty: need configs and benches")
		return nil, false
	}
	if n := len(req.Configs) * len(req.Benches); n > s.maxSweepJobs {
		writeError(w, http.StatusBadRequest,
			"sweep matrix has %d jobs, limit is %d", n, s.maxSweepJobs)
		return nil, false
	}
	p := &sweepPlan{}
	for _, cname := range req.Configs {
		cfg, ok := sim.ConfigByName(cname)
		if !ok {
			writeError(w, http.StatusBadRequest, "unknown config %q", cname)
			return nil, false
		}
		for _, bench := range req.Benches {
			if _, ok := workload.Get(bench); !ok {
				writeError(w, http.StatusBadRequest, "unknown benchmark %q", bench)
				return nil, false
			}
			p.jobs = append(p.jobs, engine.Job{
				Study: "svwd-sweep", Label: cfg.Name, Config: cfg,
				Bench: bench, Insts: req.Insts,
			})
			p.keys = append(p.keys, engine.Fingerprint(cfg, bench, req.Insts))
		}
	}
	p.cached = make([][]byte, len(p.jobs))
	p.origin = make([]store.Origin, len(p.jobs))
	for i, key := range p.keys {
		if body, origin := s.store.Get(key); origin != store.OriginMiss {
			p.cached[i] = body
			p.origin[i] = origin
			if origin == store.OriginDisk {
				p.disk++
			}
		} else {
			p.sub = append(p.sub, p.jobs[i])
		}
	}
	return p, true
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	p, ok := s.planSweep(w, &req)
	if !ok {
		return
	}
	if len(p.sub) > 0 {
		release, ok := s.gate.tryAcquire(len(p.sub))
		if !ok {
			rejectSaturated(w)
			return
		}
		defer release()
	}
	// Admitted (or fully cached): now the sweep's store outcome counts.
	s.store.Account(uint64(len(p.jobs)-len(p.sub)-p.disk), uint64(p.disk), uint64(len(p.sub)))
	if api.WantsSSE(r) {
		s.streamSweep(w, r, p)
		return
	}
	s.bufferSweep(w, r, p)
}

// bufferSweep runs the uncached jobs, then writes the whole sweep as a
// sequence of indented result objects in job-index order — byte-identical
// to the equivalent multi-job `svwsim -json` invocation.
func (s *Server) bufferSweep(w http.ResponseWriter, r *http.Request, p *sweepPlan) {
	rs, err := s.eng.RunContext(r.Context(), p.sub, nil)
	if err != nil {
		if clientGone(err) {
			return
		}
		writeError(w, http.StatusInternalServerError, "sweep failed: %v", err)
		return
	}
	var body []byte
	sub := 0
	for i := range p.jobs {
		if p.cached[i] != nil {
			body = append(body, p.cached[i]...)
			continue
		}
		b, err := marshalResult(rs[sub].Result)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "encoding result: %v", err)
			return
		}
		s.store.Put(p.keys[i], b)
		body = append(body, b...)
		sub++
	}
	writeBody(w, http.StatusOK, body)
}

// streamSweep emits one SSE "result" event per job in job-index order while
// the engine is still working, then a "done" summary. Cached jobs are
// emitted from the LRU; uncached jobs are emitted as the engine's
// progress callback delivers them (already in sub-index order, which is
// monotone in job-index order, so the merge needs no reordering).
func (s *Server) streamSweep(w http.ResponseWriter, r *http.Request, p *sweepPlan) {
	stream, err := api.NewSSE(w)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}

	// The progress callback fires under the engine's ordered-emit lock, so
	// channel sends preserve sub-index order. The buffer holds every result:
	// sends never block, even if the client is slow or gone.
	results := make(chan engine.JobResult, len(p.sub))
	done := make(chan error, 1)
	go func() {
		_, err := s.eng.RunContext(r.Context(), p.sub, func(jr engine.JobResult) {
			results <- jr
		})
		done <- err
	}()

	summary := SweepDone{Jobs: len(p.jobs)}
	for i := range p.jobs {
		ev := SweepEvent{
			Index:  i,
			Config: p.jobs[i].Config.Name,
			Bench:  p.jobs[i].Bench,
		}
		if p.cached[i] != nil {
			ev.Cached = true
			ev.Origin = p.origin[i].String()
			ev.Result = json.RawMessage(p.cached[i])
			summary.CacheHits++
			if p.origin[i] == store.OriginDisk {
				summary.DiskHits++
			}
		} else {
			jr := <-results
			summary.CacheMisses++
			ev.Memoized = jr.Memoized
			if jr.Err != nil {
				ev.Error = jr.Err.Error()
				summary.Errors++
			} else if body, err := marshalResult(jr.Result); err == nil {
				s.store.Put(p.keys[i], body)
				ev.Result = json.RawMessage(body)
			} else {
				ev.Error = err.Error()
				summary.Errors++
			}
		}
		stream.Event("result", i, ev)
	}
	<-done // engine finished; all sends drained above
	stream.Event("done", len(p.jobs), summary)
}

// --- /v1/studies/{study} -------------------------------------------------

// studyParams are the query parameters shared by the study endpoints.
type studyParams struct {
	fig     int
	benches []string
	bits    []int
	insts   uint64
}

// parseStudyParams reads and validates ?fig=&benches=&bits=&insts=. It
// writes the error response itself on failure.
func parseStudyParams(w http.ResponseWriter, r *http.Request, defaultBenches []string) (*studyParams, bool) {
	q := r.URL.Query()
	p := &studyParams{benches: defaultBenches, bits: []int{8, 10, 12, 16, 0}}
	if v := q.Get("fig"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			writeError(w, http.StatusBadRequest, "invalid fig %q", v)
			return nil, false
		}
		p.fig = n
	}
	if v := q.Get("benches"); v != "" {
		p.benches = strings.Split(v, ",")
		for _, b := range p.benches {
			if _, ok := workload.Get(b); !ok {
				writeError(w, http.StatusBadRequest, "unknown benchmark %q", b)
				return nil, false
			}
		}
	}
	if v := q.Get("bits"); v != "" {
		p.bits = nil
		for _, f := range strings.Split(v, ",") {
			n, err := strconv.Atoi(f)
			if err != nil || n < 0 {
				writeError(w, http.StatusBadRequest, "invalid bits value %q", f)
				return nil, false
			}
			p.bits = append(p.bits, n)
		}
	}
	if v := q.Get("insts"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "invalid insts %q", v)
			return nil, false
		}
		p.insts = n
	}
	return p, true
}

// key canonicalizes the parameters into a cache key for the given study.
func (p *studyParams) key(study string) string {
	return fmt.Sprintf("study|%s|fig=%d|bits=%v|benches=%s|insts=%d",
		study, p.fig, p.bits, strings.Join(p.benches, ","), p.insts)
}

func (s *Server) handleStudy(w http.ResponseWriter, r *http.Request) {
	study := r.PathValue("study")
	defaults := sim.AllBenches()
	if study == "fig8" {
		defaults = workload.Fig8Subset()
	}
	p, ok := parseStudyParams(w, r, defaults)
	if !ok {
		return
	}

	// Resolve the study up front so weight (engine jobs) and the result
	// builder are known before touching cache or gate.
	var weight int
	var run func(ctx context.Context) (any, error)
	switch study {
	case "ladder":
		var ladder sim.Ladder
		switch p.fig {
		case 5:
			ladder = sim.Fig5Ladder()
		case 6:
			ladder = sim.Fig6Ladder()
		case 7:
			ladder = sim.Fig7Ladder()
		default:
			writeError(w, http.StatusBadRequest,
				"ladder study needs ?fig=5|6|7 (got %d)", p.fig)
			return
		}
		weight = len(p.benches) * (1 + len(ladder.Configs))
		run = func(ctx context.Context) (any, error) {
			res, err := sim.RunLaddersContext(ctx, s.eng, []sim.Ladder{ladder}, p.benches, p.insts)
			if err != nil {
				return nil, err
			}
			return res[0].JSON(), nil
		}
	case "fig8":
		weight = len(sim.Fig8Variants()) * len(p.benches)
		run = func(ctx context.Context) (any, error) {
			res, err := sim.RunFig8Context(ctx, s.eng, p.benches, p.insts)
			if err != nil {
				return nil, err
			}
			return res.JSON(), nil
		}
	case "ssn":
		weight = len(p.bits) * len(p.benches)
		run = func(ctx context.Context) (any, error) {
			res, err := sim.RunSSNWidthContext(ctx, s.eng, p.benches, p.bits, p.insts)
			if err != nil {
				return nil, err
			}
			return res.JSON(), nil
		}
	case "ssbf":
		weight = 2 * len(p.benches)
		run = func(ctx context.Context) (any, error) {
			res, err := sim.RunSSBFUpdatePolicyContext(ctx, s.eng, p.benches, p.insts)
			if err != nil {
				return nil, err
			}
			return res.JSON(), nil
		}
	default:
		writeError(w, http.StatusNotFound,
			"unknown study %q (want ladder, fig8, ssn or ssbf)", study)
		return
	}

	key := p.key(study)
	if body, origin := s.store.Get(key); origin != store.OriginMiss {
		s.store.AccountGet(origin)
		writeBody(w, http.StatusOK, body)
		return
	}
	release, ok := s.gate.tryAcquire(weight)
	if !ok {
		rejectSaturated(w)
		return
	}
	defer release()
	s.store.Account(0, 0, 1)

	v, err := run(r.Context())
	if err != nil {
		if clientGone(err) {
			return
		}
		writeError(w, http.StatusInternalServerError, "study failed: %v", err)
		return
	}
	body, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		writeError(w, http.StatusInternalServerError, "encoding study: %v", err)
		return
	}
	body = append(body, '\n')
	s.store.Put(key, body)
	writeBody(w, http.StatusOK, body)
}
