package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	"svwsim/internal/api"
	"svwsim/internal/pipeline"
	"svwsim/internal/sim"
	"svwsim/internal/sim/engine"
	"svwsim/internal/store"
	"svwsim/internal/trace"
	"svwsim/internal/workload"
)

// --- shared helpers ------------------------------------------------------

// The JSON and SSE encodings live in internal/api, shared with the svwctl
// coordinator; the wrappers below keep handler call sites short.

func writeJSON(w http.ResponseWriter, status int, v any)    { api.WriteJSON(w, status, v) }
func writeBody(w http.ResponseWriter, status int, b []byte) { api.WriteBody(w, status, b) }

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	api.WriteError(w, status, format, args...)
}

// decodeBody parses the request body into v under the server's size limit
// via the shared decoder (api.DecodeBody), which also rejects trailing
// content after the JSON object. It writes the error response itself and
// reports whether decoding succeeded.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	return api.DecodeBody(w, r, s.maxBody, v)
}

// marshalResult encodes an engine result exactly as `svwsim -json` does
// (api.MarshalResult). Cached bytes are stored in this form so cache hits
// and fresh runs are byte-identical.
func marshalResult(res engine.Result) ([]byte, error) {
	return api.MarshalResult(res)
}

// clientID names the requesting tenant for fair admission: the
// ClientHeader when present, the remote host otherwise.
func clientID(r *http.Request) string {
	if c := r.Header.Get(api.ClientHeader); c != "" {
		return c
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

// writeEngineError maps a failed engine run onto the client response:
// nothing when the client itself is gone (no one left to write to), 504
// when the request's own deadline budget (api.DeadlineHeader) expired,
// 500 otherwise.
func writeEngineError(w http.ResponseWriter, r *http.Request, err error, what string) {
	if r.Context().Err() != nil {
		return
	}
	if errors.Is(err, context.DeadlineExceeded) {
		writeError(w, http.StatusGatewayTimeout,
			"%s: deadline exceeded (%s budget)", what, api.DeadlineHeader)
		return
	}
	writeError(w, http.StatusInternalServerError, "%s: %v", what, err)
}

// rejectSaturated writes the 429 admission response.
func rejectSaturated(w http.ResponseWriter) {
	w.Header().Set("Retry-After", "1")
	writeError(w, http.StatusTooManyRequests,
		"admission gate saturated: too many concurrent jobs, retry later")
}

// errGateSaturated carries a tryAcquire refusal out of a singleflight
// compute closure, so both the refused leader and its coalesced waiters
// map it back to the 429 response.
var errGateSaturated = errors.New("admission gate saturated")

// resolveSample picks a request's effective sampling spec: its own when
// enabled, the server's configured default otherwise, validated either
// way. It writes the 400 itself on an incoherent spec. The resolution
// happens here at the handler seam — never inside the engine — so the
// spec that keys the store is always the spec that ran.
func (s *Server) resolveSample(w http.ResponseWriter, spec pipeline.SampleSpec) (pipeline.SampleSpec, bool) {
	if !spec.Enabled() {
		spec = s.defaultSample
	}
	if err := spec.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return pipeline.SampleSpec{}, false
	}
	return spec, true
}

// --- registry / health / stats ------------------------------------------

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status, code := "ok", http.StatusOK
	if s.draining.Load() {
		status, code = "draining", http.StatusServiceUnavailable
	}
	writeJSON(w, code, HealthResponse{
		Status:  status,
		UptimeS: time.Since(s.start).Seconds(),
	})
}

func (s *Server) handleConfigs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, ConfigsResponse{Configs: sim.ConfigNames()})
}

func (s *Server) handleBenches(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, BenchesResponse{Benches: workload.Names()})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	m := s.eng.Memo()
	sm := s.eng.Sample()
	writeJSON(w, http.StatusOK, StatsResponse{
		UptimeS: time.Since(s.start).Seconds(),
		Cache:   api.StoreCacheStats(s.store.Stats()),
		Engine: EngineStats{
			MemoHits:         m.Hits,
			MemoMisses:       m.Misses,
			MemoEntries:      s.eng.MemoSize(),
			FastForwards:     sm.FastForwards,
			FastForwardInsts: sm.FastForwardInsts,
			CheckpointHits:   sm.CheckpointHits,
			CheckpointMisses: sm.CheckpointMisses,
			CheckpointPuts:   sm.CheckpointPuts,
		},
		Admission: s.gate.stats(),
	})
}

// --- /v1/run -------------------------------------------------------------

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	s.observePeers(r)
	ctx, cancel, ok := api.RequestContext(w, r)
	if !ok {
		return
	}
	defer cancel()
	cfg, ok := sim.ConfigByName(req.Config)
	if !ok {
		writeError(w, http.StatusBadRequest, "unknown config %q", req.Config)
		return
	}
	if _, ok := workload.Get(req.Bench); !ok {
		writeError(w, http.StatusBadRequest, "unknown benchmark %q", req.Bench)
		return
	}
	spec, ok := s.resolveSample(w, req.Sample())
	if !ok {
		return
	}

	tr := trace.FromContext(ctx)
	key := engine.SampledFingerprint(cfg, req.Bench, req.Insts, spec)
	t0 := time.Now()
	sp := tr.Start("store_probe")
	body, origin := s.store.Get(key)
	sp.SetAttr("tier", origin.String())
	sp.End()
	s.metrics.storeProbe.Observe(time.Since(t0))
	if origin != store.OriginMiss {
		s.store.AccountGet(origin)
		w.Header().Set(api.CacheHeader, origin.String())
		writeBody(w, http.StatusOK, body)
		return
	}
	// Both local tiers missed: if the key's rendezvous owner is another
	// backend, its disk tier may hold the entry — a validated fetch is a
	// serve (promoted to local memory only; the persistent copy stays on
	// the owner), and anything else falls through to compute.
	if body, ok := s.peerFetch(ctx, tr, key); ok {
		s.store.PutMemory(key, body)
		s.store.AccountGet(store.OriginPeer)
		w.Header().Set(api.CacheHeader, api.CachePeer)
		writeBody(w, http.StatusOK, body)
		return
	}
	// Cold miss: compute under the store's singleflight, so N identical
	// concurrent requests admit and run the engine once and the other N-1
	// coalesce on the leader's flight. The gate sits INSIDE the compute
	// closure — only the leader holds admission units; waiters cost none.
	body, origin, coalesced, err := s.store.GetOrCompute(ctx, key, func() ([]byte, error) {
		t0 := time.Now()
		sp := tr.Start("gate_wait")
		release, ok := s.gate.tryAcquire(clientID(r), 1)
		sp.End()
		s.metrics.gateWait.Observe(time.Since(t0))
		if !ok {
			return nil, errGateSaturated
		}
		defer release()

		t0 = time.Now()
		sp = tr.Start("engine_run")
		rs, err := s.eng.RunContext(ctx, []engine.Job{{
			Study: "svwd-run", Label: cfg.Name, Config: cfg,
			Bench: req.Bench, Insts: req.Insts, Sample: spec,
		}}, nil)
		sp.End()
		s.metrics.engineRun.Observe(time.Since(t0))
		if err != nil {
			return nil, err
		}
		t0 = time.Now()
		sp = tr.Start("encode")
		defer sp.End()
		defer func() { s.metrics.encode.Observe(time.Since(t0)) }()
		return marshalResult(rs[0].Result)
	})
	if err != nil {
		if errors.Is(err, errGateSaturated) {
			rejectSaturated(w)
			return
		}
		writeEngineError(w, r, err, "run failed")
		return
	}
	if origin != store.OriginMiss {
		// A completed flight landed in the store between our probe and the
		// claim: an ordinary cache hit, just discovered late.
		s.store.AccountGet(origin)
		w.Header().Set(api.CacheHeader, origin.String())
		writeBody(w, http.StatusOK, body)
		return
	}
	w.Header().Set(api.CacheHeader, api.CacheMiss)
	if !coalesced {
		// The miss is counted only now that a result was actually computed
		// and is being served — a rejected, cancelled or failed run skews no
		// rates, and coalesced waits count under Coalesced, not Misses.
		s.store.Account(0, 0, 1)
	}
	writeBody(w, http.StatusOK, body)
}

// --- /v1/sweep -----------------------------------------------------------

// sweepPlan is a flattened sweep matrix with per-job store state.
type sweepPlan struct {
	jobs   []engine.Job
	keys   []string
	cached [][]byte       // cached[i] != nil: job i was served by the store
	origin []store.Origin // which tier served job i (OriginMiss = computed)
	sub    []engine.Job   // the uncached jobs this request computes, in job-index order
	disk   int            // how many cached jobs came from the disk tier
	peer   int            // how many cached jobs were fetched from a peer's store

	// Singleflight state (claimFlights). flight[i] != nil: job i is being
	// computed by a concurrent request and this sweep waits on that flight
	// instead of re-running the cell. owned is parallel to sub: the flights
	// this sweep leads and must Complete. foreign counts the non-nil
	// flight entries.
	flight  []*store.Flight
	owned   []*store.Flight
	foreign int
}

// claimFlights splits the plan's uncached jobs between this request and
// concurrent computations of the same keys: for each cell this sweep
// either becomes the leader (the cell stays in p.sub, with its flight in
// p.owned) or coalesces on another request's in-flight computation
// (p.flight[i] set; the cell leaves p.sub). Called only after gate
// admission, so a 429'd sweep never claims a flight it won't fly.
func (s *Server) claimFlights(p *sweepPlan) {
	p.flight = make([]*store.Flight, len(p.jobs))
	p.sub = p.sub[:0]
	for i := range p.jobs {
		if p.cached[i] != nil {
			continue
		}
		f, leader := s.store.BeginFlight(p.keys[i])
		if leader {
			p.sub = append(p.sub, p.jobs[i])
			p.owned = append(p.owned, f)
		} else {
			p.flight[i] = f
			p.foreign++
		}
	}
}

// abandonOwned resolves every still-open owned flight with err so
// cross-request waiters fail fast instead of hanging; flights already
// Completed with real results are untouched (Complete is first-wins).
func (p *sweepPlan) abandonOwned(err error) {
	for _, f := range p.owned {
		f.Complete(nil, err, false)
	}
}

// planSweep validates the request, flattens the matrix config-major (the
// `svwsim -config a,b -bench x,y` order) and probes the store for every
// job — memory, local disk, then the cell's store owner over HTTP when
// the fabric membership is known (peers.go). One store_probe span covers
// the whole probe loop, annotated with the per-tier tallies; each peer
// fetch records its own store_peer span. It writes the error response
// itself on failure.
func (s *Server) planSweep(ctx context.Context, w http.ResponseWriter, tr *trace.Trace, req *SweepRequest) (*sweepPlan, bool) {
	if len(req.Configs) == 0 || len(req.Benches) == 0 {
		writeError(w, http.StatusBadRequest, "sweep matrix is empty: need configs and benches")
		return nil, false
	}
	if n := len(req.Configs) * len(req.Benches); n > s.maxSweepJobs {
		writeError(w, http.StatusBadRequest,
			"sweep matrix has %d jobs, limit is %d", n, s.maxSweepJobs)
		return nil, false
	}
	spec, ok := s.resolveSample(w, req.Sample())
	if !ok {
		return nil, false
	}
	p := &sweepPlan{}
	for _, cname := range req.Configs {
		cfg, ok := sim.ConfigByName(cname)
		if !ok {
			writeError(w, http.StatusBadRequest, "unknown config %q", cname)
			return nil, false
		}
		for _, bench := range req.Benches {
			if _, ok := workload.Get(bench); !ok {
				writeError(w, http.StatusBadRequest, "unknown benchmark %q", bench)
				return nil, false
			}
			p.jobs = append(p.jobs, engine.Job{
				Study: "svwd-sweep", Label: cfg.Name, Config: cfg,
				Bench: bench, Insts: req.Insts, Sample: spec,
			})
			p.keys = append(p.keys, engine.SampledFingerprint(cfg, bench, req.Insts, spec))
		}
	}
	p.cached = make([][]byte, len(p.jobs))
	p.origin = make([]store.Origin, len(p.jobs))
	t0 := time.Now()
	sp := tr.Start("store_probe")
	for i, key := range p.keys {
		if body, origin := s.store.Get(key); origin != store.OriginMiss {
			p.cached[i] = body
			p.origin[i] = origin
			if origin == store.OriginDisk {
				p.disk++
			}
		} else if body, ok := s.peerFetch(ctx, tr, key); ok {
			s.store.PutMemory(key, body)
			p.cached[i] = body
			p.origin[i] = store.OriginPeer
			p.peer++
		} else {
			p.sub = append(p.sub, p.jobs[i])
		}
	}
	if sp.Active() {
		hits := len(p.jobs) - len(p.sub)
		sp.SetAttr("jobs", strconv.Itoa(len(p.jobs)))
		sp.SetAttr("hits", strconv.Itoa(hits))
		sp.SetAttr("disk_hits", strconv.Itoa(p.disk))
		sp.SetAttr("peer_hits", strconv.Itoa(p.peer))
		sp.SetAttr("misses", strconv.Itoa(len(p.sub)))
	}
	sp.End()
	s.metrics.storeProbe.Observe(time.Since(t0))
	return p, true
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	s.observePeers(r)
	ctx, cancel, ok := api.RequestContext(w, r)
	if !ok {
		return
	}
	defer cancel()
	tr := trace.FromContext(ctx)
	p, ok := s.planSweep(ctx, w, tr, &req)
	if !ok {
		return
	}
	if len(p.sub) > 0 {
		t0 := time.Now()
		sp := tr.Start("gate_wait")
		release, ok := s.gate.tryAcquire(clientID(r), len(p.sub))
		sp.End()
		s.metrics.gateWait.Observe(time.Since(t0))
		if !ok {
			rejectSaturated(w)
			return
		}
		defer release()
	}
	// Admitted: claim the uncached cells' singleflight slots. Cells another
	// request is already computing drop out of p.sub (this sweep waits on
	// their flights at emission time); the rest this sweep leads and must
	// resolve on every exit path — the deferred abandon is the backstop for
	// panics and early returns, a no-op for flights Completed with results.
	s.claimFlights(p)
	defer p.abandonOwned(store.ErrFlightAbandoned)
	// Store accounting happens as results are actually served (per event
	// when streaming, on the completed body otherwise) — a sweep that
	// fails or loses its client after admission inflates no counters.
	if api.WantsSSE(r) {
		s.streamSweep(ctx, w, r, p)
		return
	}
	s.bufferSweep(ctx, w, r, p)
}

// bufferSweep runs the uncached jobs, then writes the whole sweep as a
// sequence of indented result objects in job-index order — byte-identical
// to the equivalent multi-job `svwsim -json` invocation.
func (s *Server) bufferSweep(ctx context.Context, w http.ResponseWriter, r *http.Request, p *sweepPlan) {
	tr := trace.FromContext(ctx)
	t0 := time.Now()
	sp := tr.Start("engine_run")
	rs, err := s.eng.RunContext(ctx, p.sub, nil)
	sp.End()
	s.metrics.engineRun.Observe(time.Since(t0))
	if err != nil {
		p.abandonOwned(err)
		writeEngineError(w, r, err, "sweep failed")
		return
	}
	t0 = time.Now()
	sp = tr.Start("encode")
	defer sp.End()
	// Encode and Complete every owned cell BEFORE waiting on any foreign
	// flight: two sweeps each owning cells the other coalesced on would
	// otherwise deadlock, each blocked on results the other hasn't
	// published yet. Complete write-throughs the bytes (the old Put).
	ownedBody := make([][]byte, len(p.sub))
	for si := range p.sub {
		b, err := marshalResult(rs[si].Result)
		if err != nil {
			p.abandonOwned(err)
			writeError(w, http.StatusInternalServerError, "encoding result: %v", err)
			return
		}
		p.owned[si].Complete(b, nil, true)
		ownedBody[si] = b
	}
	var body []byte
	sub, misses := 0, len(p.sub)
	for i := range p.jobs {
		switch {
		case p.cached[i] != nil:
			body = append(body, p.cached[i]...)
		case p.flight[i] != nil:
			b, err := s.awaitCell(ctx, p, i, &misses)
			if err != nil {
				writeEngineError(w, r, err, "sweep failed")
				return
			}
			body = append(body, b...)
		default:
			body = append(body, ownedBody[sub]...)
			sub++
		}
	}
	// Served in full: only now does the sweep's store outcome count.
	// Coalesced cells count under Coalesced, not Misses; peer-fetched
	// cells count under PeerHits only, so the fabric-wide sum stays one
	// count per served cell.
	s.store.Account(uint64(len(p.jobs)-len(p.sub)-p.foreign-p.disk-p.peer), uint64(p.disk), uint64(misses))
	s.store.AccountPeer(uint64(p.peer))
	writeBody(w, http.StatusOK, body)
	s.metrics.encode.Observe(time.Since(t0))
}

// awaitCell resolves job i from the foreign flight it coalesced on. If
// that flight fails while this request is still live — its leader lost
// its client or hit its own deadline — the cell is recomputed locally
// (the engine memo makes a duplicate of finished work cheap) rather than
// inheriting a failure this request didn't earn; misses is bumped for the
// recompute, since it is then a real computation served by this request.
func (s *Server) awaitCell(ctx context.Context, p *sweepPlan, i int, misses *int) ([]byte, error) {
	b, err := p.flight[i].Wait(ctx)
	if err == nil || ctx.Err() != nil {
		return b, err
	}
	rs, err := s.eng.RunContext(ctx, []engine.Job{p.jobs[i]}, nil)
	if err != nil {
		return nil, err
	}
	b, err = marshalResult(rs[0].Result)
	if err != nil {
		return nil, err
	}
	s.store.Put(p.keys[i], b)
	*misses++
	return b, nil
}

// streamSweep emits one SSE "result" event per job in job-index order while
// the engine is still working, then a "done" summary. Cached jobs are
// emitted from the LRU; uncached jobs are emitted as the engine's
// progress callback delivers them (already in sub-index order, which is
// monotone in job-index order, so the merge needs no reordering).
func (s *Server) streamSweep(ctx context.Context, w http.ResponseWriter, r *http.Request, p *sweepPlan) {
	stream, err := api.NewSSE(w)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}

	// The progress callback fires under the engine's ordered-emit lock, so
	// channel sends preserve sub-index order. The buffer holds every result:
	// sends never block, even if the client is slow or gone. Owned flights
	// are Completed right in the callback — marshalling there too — so a
	// concurrent sweep coalescing on a cell is released the moment the cell
	// finishes, not when this sweep's emission loop reaches it.
	results := make(chan streamedResult, len(p.sub))
	done := make(chan error, 1)
	t0 := time.Now()
	sp := trace.FromContext(ctx).Start("engine_run")
	go func() {
		_, err := s.eng.RunContext(ctx, p.sub, func(jr engine.JobResult) {
			sr := streamedResult{jr: jr}
			switch {
			case jr.Err != nil:
				p.owned[jr.Index].Complete(nil, jr.Err, false)
			default:
				body, merr := marshalResult(jr.Result)
				if merr != nil {
					sr.encodeErr = merr
					p.owned[jr.Index].Complete(nil, merr, false)
				} else {
					sr.body = body
					p.owned[jr.Index].Complete(body, nil, true)
				}
			}
			results <- sr
		})
		// Resolve owned flights the run never delivered (cancelled or
		// skipped jobs) so cross-request waiters fail fast; a no-op for
		// flights the callback already Completed.
		ferr := err
		if ferr == nil {
			ferr = store.ErrFlightAbandoned
		}
		p.abandonOwned(ferr)
		sp.End()
		s.metrics.engineRun.Observe(time.Since(t0))
		done <- err
	}()

	engineDone := false
	summary := SweepDone{Jobs: len(p.jobs)}
	sub := 0
	for i := range p.jobs {
		ev := SweepEvent{
			Index:  i,
			Config: p.jobs[i].Config.Name,
			Bench:  p.jobs[i].Bench,
		}
		switch {
		case p.cached[i] != nil:
			ev.Cached = true
			ev.Origin = p.origin[i].String()
			ev.Result = json.RawMessage(p.cached[i])
			summary.CacheHits++
			switch p.origin[i] {
			case store.OriginDisk:
				summary.DiskHits++
			case store.OriginPeer:
				summary.PeerHits++
			}
			s.store.AccountGet(p.origin[i])
		case p.flight[i] != nil:
			// Coalesced on a concurrent request's computation of this cell.
			var misses int
			body, err := s.awaitCell(ctx, p, i, &misses)
			if ctx.Err() != nil {
				return
			}
			summary.CacheMisses++
			if err != nil {
				ev.Error = err.Error()
				summary.Errors++
			} else {
				ev.Result = json.RawMessage(body)
				if misses > 0 {
					s.store.Account(0, 0, 1) // fallback recompute: a real miss
				}
			}
		default:
			sr, ok := s.nextSweepResult(ctx, results, done, &engineDone, sub)
			sub++
			if !ok {
				// The engine wound down — or the request context ended —
				// without delivering this job: there is nothing left to
				// stream and (with the context gone) no one to stream it
				// to. Bail out instead of waiting on results that will
				// never come; the truncated stream has no "done" event, so
				// a live client can tell the sweep did not complete.
				return
			}
			summary.CacheMisses++
			ev.Memoized = sr.jr.Memoized
			switch {
			case sr.jr.Err != nil:
				ev.Error = sr.jr.Err.Error()
				summary.Errors++
			case sr.encodeErr != nil:
				ev.Error = sr.encodeErr.Error()
				summary.Errors++
			default:
				ev.Result = json.RawMessage(sr.body)
				s.store.Account(0, 0, 1) // computed and served: a real miss
			}
		}
		stream.Event("result", i, ev)
	}
	if !engineDone {
		select {
		case <-done:
		case <-ctx.Done():
			return
		}
	}
	stream.Event("done", len(p.jobs), summary)
}

// streamedResult is one engine progress delivery, already marshalled (the
// callback encodes so it can Complete the cell's flight immediately).
type streamedResult struct {
	jr        engine.JobResult
	body      []byte
	encodeErr error
}

// nextSweepResult receives the next owned job's result for streamSweep.
// want is the job's engine sub-index; anything delivered for an earlier
// index is stale and discarded (emission is monotone, so a result below
// want can never be the one this call is for). ok=false means the engine
// finished — or the request context ended — without delivering the job,
// and the handler must bail out rather than block on a result that will
// never arrive.
func (s *Server) nextSweepResult(ctx context.Context, results <-chan streamedResult, done <-chan error, engineDone *bool, want int) (streamedResult, bool) {
	for {
		// Drain delivered results before consulting done or the context:
		// every send precedes the engine's done signal, so a finished
		// engine can still have undrained results buffered.
		select {
		case sr := <-results:
			if sr.jr.Index < want {
				continue
			}
			return sr, true
		default:
		}
		if *engineDone {
			return streamedResult{}, false
		}
		select {
		case sr := <-results:
			if sr.jr.Index < want {
				continue
			}
			return sr, true
		case <-done:
			*engineDone = true
		case <-ctx.Done():
			// Client gone or deadline hit: one last non-blocking look,
			// then give up instead of riding out the engine's stragglers.
			select {
			case sr := <-results:
				if sr.jr.Index < want {
					continue
				}
				return sr, true
			default:
				return streamedResult{}, false
			}
		}
	}
}

// --- /v1/studies/{study} -------------------------------------------------

// studyParams are the query parameters shared by the study endpoints.
type studyParams struct {
	fig     int
	benches []string
	bits    []int
	insts   uint64
	// sample is the study's sampling spec: ?sample=w:d:p when given, then
	// resolved against the server default by handleStudy before keying.
	sample pipeline.SampleSpec
}

// parseStudyParams reads and validates ?fig=&benches=&bits=&insts=&sample=.
// It writes the error response itself on failure.
func parseStudyParams(w http.ResponseWriter, r *http.Request, defaultBenches []string) (*studyParams, bool) {
	q := r.URL.Query()
	p := &studyParams{benches: defaultBenches, bits: []int{8, 10, 12, 16, 0}}
	if v := q.Get("fig"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			writeError(w, http.StatusBadRequest, "invalid fig %q", v)
			return nil, false
		}
		p.fig = n
	}
	if v := q.Get("benches"); v != "" {
		p.benches = strings.Split(v, ",")
		for _, b := range p.benches {
			if _, ok := workload.Get(b); !ok {
				writeError(w, http.StatusBadRequest, "unknown benchmark %q", b)
				return nil, false
			}
		}
	}
	if v := q.Get("bits"); v != "" {
		p.bits = nil
		for _, f := range strings.Split(v, ",") {
			n, err := strconv.Atoi(f)
			if err != nil || n < 0 {
				writeError(w, http.StatusBadRequest, "invalid bits value %q", f)
				return nil, false
			}
			p.bits = append(p.bits, n)
		}
	}
	if v := q.Get("insts"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "invalid insts %q", v)
			return nil, false
		}
		p.insts = n
	}
	if v := q.Get("sample"); v != "" {
		spec, err := pipeline.ParseSampleSpec(v)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return nil, false
		}
		p.sample = spec
	}
	return p, true
}

// key canonicalizes the parameters into a cache key for the given study.
// The sample component is appended only when sampling is on, so exact
// studies keep their existing keys.
func (p *studyParams) key(study string) string {
	k := fmt.Sprintf("study|%s|fig=%d|bits=%v|benches=%s|insts=%d",
		study, p.fig, p.bits, strings.Join(p.benches, ","), p.insts)
	if p.sample.Enabled() {
		k += "|sample=" + p.sample.String()
	}
	return k
}

func (s *Server) handleStudy(w http.ResponseWriter, r *http.Request) {
	study := r.PathValue("study")
	defaults := sim.AllBenches()
	if study == "fig8" {
		defaults = workload.Fig8Subset()
	}
	p, ok := parseStudyParams(w, r, defaults)
	if !ok {
		return
	}
	// Resolve the effective spec now: the store key below must name what
	// actually runs, default-sampled or exact.
	if p.sample, ok = s.resolveSample(w, p.sample); !ok {
		return
	}
	s.observePeers(r)
	ctx, cancel, ok := api.RequestContext(w, r)
	if !ok {
		return
	}
	defer cancel()

	// Resolve the study up front so weight (engine jobs) and the result
	// builder are known before touching cache or gate.
	var weight int
	var run func(ctx context.Context) (any, error)
	switch study {
	case "ladder":
		var ladder sim.Ladder
		switch p.fig {
		case 5:
			ladder = sim.Fig5Ladder()
		case 6:
			ladder = sim.Fig6Ladder()
		case 7:
			ladder = sim.Fig7Ladder()
		default:
			writeError(w, http.StatusBadRequest,
				"ladder study needs ?fig=5|6|7 (got %d)", p.fig)
			return
		}
		weight = len(p.benches) * (1 + len(ladder.Configs))
		run = func(ctx context.Context) (any, error) {
			res, err := sim.RunLaddersSampled(ctx, s.eng, []sim.Ladder{ladder}, p.benches, p.insts, p.sample)
			if err != nil {
				return nil, err
			}
			return res[0].JSON(), nil
		}
	case "fig8":
		weight = len(sim.Fig8Variants()) * len(p.benches)
		run = func(ctx context.Context) (any, error) {
			res, err := sim.RunFig8Sampled(ctx, s.eng, p.benches, p.insts, p.sample)
			if err != nil {
				return nil, err
			}
			return res.JSON(), nil
		}
	case "ssn":
		weight = len(p.bits) * len(p.benches)
		run = func(ctx context.Context) (any, error) {
			res, err := sim.RunSSNWidthSampled(ctx, s.eng, p.benches, p.bits, p.insts, p.sample)
			if err != nil {
				return nil, err
			}
			return res.JSON(), nil
		}
	case "ssbf":
		weight = 2 * len(p.benches)
		run = func(ctx context.Context) (any, error) {
			res, err := sim.RunSSBFUpdatePolicySampled(ctx, s.eng, p.benches, p.insts, p.sample)
			if err != nil {
				return nil, err
			}
			return res.JSON(), nil
		}
	default:
		writeError(w, http.StatusNotFound,
			"unknown study %q (want ladder, fig8, ssn or ssbf)", study)
		return
	}

	tr := trace.FromContext(ctx)
	key := p.key(study)
	t0 := time.Now()
	sp := tr.Start("store_probe")
	body, origin := s.store.Get(key)
	sp.SetAttr("tier", origin.String())
	sp.End()
	s.metrics.storeProbe.Observe(time.Since(t0))
	if origin != store.OriginMiss {
		s.store.AccountGet(origin)
		writeBody(w, http.StatusOK, body)
		return
	}
	// Cold miss: same singleflight shape as /v1/run — concurrent identical
	// study requests admit (weight units) and compute once.
	body, origin, coalesced, err := s.store.GetOrCompute(ctx, key, func() ([]byte, error) {
		t0 := time.Now()
		sp := tr.Start("gate_wait")
		release, ok := s.gate.tryAcquire(clientID(r), weight)
		sp.End()
		s.metrics.gateWait.Observe(time.Since(t0))
		if !ok {
			return nil, errGateSaturated
		}
		defer release()

		t0 = time.Now()
		sp = tr.Start("engine_run")
		v, err := run(ctx)
		sp.End()
		s.metrics.engineRun.Observe(time.Since(t0))
		if err != nil {
			return nil, err
		}
		t0 = time.Now()
		sp = tr.Start("encode")
		defer sp.End()
		defer func() { s.metrics.encode.Observe(time.Since(t0)) }()
		b, err := json.MarshalIndent(v, "", "  ")
		if err != nil {
			return nil, fmt.Errorf("encoding study: %v", err)
		}
		return append(b, '\n'), nil
	})
	if err != nil {
		if errors.Is(err, errGateSaturated) {
			rejectSaturated(w)
			return
		}
		writeEngineError(w, r, err, "study failed")
		return
	}
	if origin != store.OriginMiss {
		s.store.AccountGet(origin)
		writeBody(w, http.StatusOK, body)
		return
	}
	if !coalesced {
		// Computed and served: count the miss only now (rejections and
		// failures above never reach this line; coalesced waits count
		// under Coalesced, not Misses).
		s.store.Account(0, 0, 1)
	}
	writeBody(w, http.StatusOK, body)
}
