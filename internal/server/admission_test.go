package server

import (
	"sync"
	"testing"
)

func TestGateSaturationAndRelease(t *testing.T) {
	g := newGate(3)
	rel1, ok := g.tryAcquire("", 2)
	if !ok {
		t.Fatal("acquire 2/3 refused")
	}
	if _, ok := g.tryAcquire("", 2); ok {
		t.Fatal("acquire 2 more on a 3-gate with 2 in use succeeded")
	}
	if st := g.stats(); st.Rejected != 1 || st.InUse != 2 {
		t.Fatalf("stats %+v, want 1 rejection / 2 in use", st)
	}
	rel1()
	rel1() // double release is a no-op
	if st := g.stats(); st.InUse != 0 {
		t.Fatalf("in use %d after release, want 0", st.InUse)
	}
	if _, ok := g.tryAcquire("", 3); !ok {
		t.Fatal("full-width acquire refused on an idle gate")
	}
}

// A request wider than the whole gate is admitted alone, on an idle gate
// only, with its full weight recorded.
func TestGateOversizedRequest(t *testing.T) {
	g := newGate(2)
	rel, ok := g.tryAcquire("", 100)
	if !ok {
		t.Fatal("oversized acquire refused on an idle gate")
	}
	if st := g.stats(); st.InUse != 100 {
		t.Fatalf("in use %d, want the full weight 100", st.InUse)
	}
	if _, ok := g.tryAcquire("", 1); ok {
		t.Fatal("acquire succeeded alongside an oversized request")
	}
	rel()
	if st := g.stats(); st.InUse != 0 {
		t.Fatalf("in use %d after release, want 0", st.InUse)
	}
	// Not idle: even the oversized request is refused.
	relSmall, _ := g.tryAcquire("", 1)
	if _, ok := g.tryAcquire("", 100); ok {
		t.Fatal("oversized acquire admitted onto a busy gate")
	}
	relSmall()
}

func TestGateUnlimited(t *testing.T) {
	g := newGate(0)
	for i := 0; i < 100; i++ {
		if _, ok := g.tryAcquire("", 1000); !ok {
			t.Fatal("unlimited gate refused")
		}
	}
}

// With weights configured each client is capped at its static share
// (max(1, cap·w/W)); the global capacity still bounds the aggregate.
func TestGateWeightedShares(t *testing.T) {
	g := newGate(10)
	// W = 2 (default) + 4 + 4 = 10: bulk and fast get 4 units each,
	// anonymous clients 2.
	g.setWeights(map[string]int{"bulk": 4, "fast": 4}, 2)

	var rels []func()
	for i := 0; i < 4; i++ {
		rel, ok := g.tryAcquire("bulk", 1)
		if !ok {
			t.Fatalf("bulk acquire %d refused below its share", i)
		}
		rels = append(rels, rel)
	}
	if _, ok := g.tryAcquire("bulk", 1); ok {
		t.Fatal("bulk admitted past its 4-unit share")
	}
	// A saturated bulk tenant leaves the other shares untouched.
	relFast, ok := g.tryAcquire("fast", 4)
	if !ok {
		t.Fatal("fast refused while within its own share")
	}
	rels = append(rels, relFast)
	relAnon, ok := g.tryAcquire("anon", 2)
	if !ok {
		t.Fatal("default-weight client refused within its share")
	}
	rels = append(rels, relAnon)
	// Aggregate is now at the global cap; everyone is refused.
	if _, ok := g.tryAcquire("other", 1); ok {
		t.Fatal("acquire admitted past the global capacity")
	}
	for _, rel := range rels {
		rel()
	}
	if st := g.stats(); st.InUse != 0 {
		t.Fatalf("in use %d after all releases, want 0", st.InUse)
	}
}

// A request wider than a client's share mirrors the global oversize rule
// within the share: admitted only while that client holds nothing.
func TestGateWeightedOversizedRequest(t *testing.T) {
	g := newGate(4)
	g.setWeights(map[string]int{"a": 1}, 1) // W = 2: every share is 2
	rel, ok := g.tryAcquire("a", 3)         // wider than a's share, within cap
	if !ok {
		t.Fatal("share-oversized acquire refused for an idle client")
	}
	if _, ok := g.tryAcquire("a", 1); ok {
		t.Fatal("acquire admitted alongside a share-oversized request")
	}
	// Other clients still fit under the global cap...
	relB, ok := g.tryAcquire("b", 1)
	if !ok {
		t.Fatal("other client refused with global headroom left")
	}
	// ...until it is exhausted.
	if _, ok := g.tryAcquire("c", 1); ok {
		t.Fatal("acquire admitted past the global capacity")
	}
	relB()
	rel()
	if st := g.stats(); st.InUse != 0 {
		t.Fatalf("in use %d after release, want 0", st.InUse)
	}
}

func TestGateConcurrent(t *testing.T) {
	g := newGate(4)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if rel, ok := g.tryAcquire("", 1); ok {
					rel()
				}
			}
		}()
	}
	wg.Wait()
	if st := g.stats(); st.InUse != 0 {
		t.Fatalf("in use %d after all releases, want 0", st.InUse)
	}
}
