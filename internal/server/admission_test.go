package server

import (
	"sync"
	"testing"
)

func TestGateSaturationAndRelease(t *testing.T) {
	g := newGate(3)
	rel1, ok := g.tryAcquire(2)
	if !ok {
		t.Fatal("acquire 2/3 refused")
	}
	if _, ok := g.tryAcquire(2); ok {
		t.Fatal("acquire 2 more on a 3-gate with 2 in use succeeded")
	}
	if st := g.stats(); st.Rejected != 1 || st.InUse != 2 {
		t.Fatalf("stats %+v, want 1 rejection / 2 in use", st)
	}
	rel1()
	rel1() // double release is a no-op
	if st := g.stats(); st.InUse != 0 {
		t.Fatalf("in use %d after release, want 0", st.InUse)
	}
	if _, ok := g.tryAcquire(3); !ok {
		t.Fatal("full-width acquire refused on an idle gate")
	}
}

// A request wider than the whole gate is admitted alone, on an idle gate
// only, with its full weight recorded.
func TestGateOversizedRequest(t *testing.T) {
	g := newGate(2)
	rel, ok := g.tryAcquire(100)
	if !ok {
		t.Fatal("oversized acquire refused on an idle gate")
	}
	if st := g.stats(); st.InUse != 100 {
		t.Fatalf("in use %d, want the full weight 100", st.InUse)
	}
	if _, ok := g.tryAcquire(1); ok {
		t.Fatal("acquire succeeded alongside an oversized request")
	}
	rel()
	if st := g.stats(); st.InUse != 0 {
		t.Fatalf("in use %d after release, want 0", st.InUse)
	}
	// Not idle: even the oversized request is refused.
	relSmall, _ := g.tryAcquire(1)
	if _, ok := g.tryAcquire(100); ok {
		t.Fatal("oversized acquire admitted onto a busy gate")
	}
	relSmall()
}

func TestGateUnlimited(t *testing.T) {
	g := newGate(0)
	for i := 0; i < 100; i++ {
		if _, ok := g.tryAcquire(1000); !ok {
			t.Fatal("unlimited gate refused")
		}
	}
}

func TestGateConcurrent(t *testing.T) {
	g := newGate(4)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if rel, ok := g.tryAcquire(1); ok {
					rel()
				}
			}
		}()
	}
	wg.Wait()
	if st := g.stats(); st.InUse != 0 {
		t.Fatalf("in use %d after all releases, want 0", st.InUse)
	}
}
