package server

import (
	"sync"

	"svwsim/internal/api"
)

// gate is the daemon's admission controller: a counting semaphore over
// engine jobs. Every request that needs engine work tries to acquire one
// unit per uncached job; when the gate is full the request is refused with
// HTTP 429 instead of queueing unboundedly behind the worker pool.
// Cache-served requests never touch the gate, so a saturated daemon still
// answers repeated (cached) traffic.
type gate struct {
	mu       sync.Mutex
	cap      int // <= 0: unlimited
	inUse    int
	rejected uint64
}

func newGate(capacity int) *gate { return &gate{cap: capacity} }

// tryAcquire reserves n units and returns a release closure, or reports
// saturation. A request wider than the whole gate (a huge sweep) is not
// unadmittable: it is admitted alone, on an idle gate only, and its full
// weight is recorded — in_use then honestly exceeds capacity until it
// releases, and nothing else is admitted alongside it.
func (g *gate) tryAcquire(n int) (release func(), ok bool) {
	if n < 1 {
		n = 1
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.cap > 0 {
		saturated := g.inUse+n > g.cap
		if n > g.cap {
			saturated = g.inUse > 0
		}
		if saturated {
			g.rejected++
			return nil, false
		}
	}
	g.inUse += n
	var once sync.Once
	return func() {
		once.Do(func() {
			g.mu.Lock()
			g.inUse -= n
			g.mu.Unlock()
		})
	}, true
}

// stats snapshots the counters.
func (g *gate) stats() api.GateStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return api.GateStats{Capacity: g.cap, InUse: g.inUse, Rejected: g.rejected}
}
