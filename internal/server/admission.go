package server

import (
	"sync"

	"svwsim/internal/api"
)

// gate is the daemon's admission controller: a counting semaphore over
// engine jobs. Every request that needs engine work tries to acquire one
// unit per uncached job; when the gate is full the request is refused with
// HTTP 429 instead of queueing unboundedly behind the worker pool.
// Cache-served requests never touch the gate, so a saturated daemon still
// answers repeated (cached) traffic.
//
// With per-client weights configured (setWeights), admission is also fair:
// each client is capped at a static proportional share of the gate,
// limit(c) = max(1, cap·w(c)/W) where W is the default weight plus the sum
// of configured weights. Because every share is strictly below the full
// capacity, a saturating bulk tenant always leaves headroom for the other
// tenants' shares — interactive traffic cannot be starved. Without
// weights the gate behaves exactly as the single global gate always has.
type gate struct {
	mu       sync.Mutex
	cap      int // <= 0: unlimited
	inUse    int
	rejected uint64

	// Fairness state; totalWeight == 0 means no weights configured.
	weights       map[string]int
	defaultWeight int
	totalWeight   int
	perClient     map[string]int
}

func newGate(capacity int) *gate { return &gate{cap: capacity} }

// setWeights enables weighted fair admission. Non-positive weights are
// clamped to 1; defaultWeight covers clients not named in weights. Call
// before serving (the gate takes no lock here).
func (g *gate) setWeights(weights map[string]int, defaultWeight int) {
	if len(weights) == 0 {
		return
	}
	if defaultWeight < 1 {
		defaultWeight = 1
	}
	g.weights = make(map[string]int, len(weights))
	g.defaultWeight = defaultWeight
	g.totalWeight = defaultWeight
	for name, w := range weights {
		if w < 1 {
			w = 1
		}
		g.weights[name] = w
		g.totalWeight += w
	}
	g.perClient = make(map[string]int)
}

// limitFor returns client's static share of the gate.
func (g *gate) limitFor(client string) int {
	w, ok := g.weights[client]
	if !ok {
		w = g.defaultWeight
	}
	l := g.cap * w / g.totalWeight
	if l < 1 {
		l = 1
	}
	return l
}

// tryAcquire reserves n units for client and returns a release closure,
// or reports saturation. A request wider than the whole gate (a huge
// sweep) is not unadmittable: it is admitted alone, on an idle gate only,
// and its full weight is recorded — in_use then honestly exceeds capacity
// until it releases, and nothing else is admitted alongside it. The same
// rule applies per client when fairness is on: a request wider than the
// client's share is admitted only while that client holds nothing.
func (g *gate) tryAcquire(client string, n int) (release func(), ok bool) {
	if n < 1 {
		n = 1
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	fair := g.cap > 0 && g.totalWeight > 0
	if g.cap > 0 {
		saturated := g.inUse+n > g.cap
		if n > g.cap {
			saturated = g.inUse > 0
		}
		if !saturated && fair {
			limit := g.limitFor(client)
			used := g.perClient[client]
			over := used+n > limit
			if n > limit {
				over = used > 0
			}
			saturated = over
		}
		if saturated {
			g.rejected++
			return nil, false
		}
	}
	g.inUse += n
	if fair {
		g.perClient[client] += n
	}
	var once sync.Once
	return func() {
		once.Do(func() {
			g.mu.Lock()
			g.inUse -= n
			if fair {
				if g.perClient[client] -= n; g.perClient[client] <= 0 {
					delete(g.perClient, client)
				}
			}
			g.mu.Unlock()
		})
	}, true
}

// clientInUse returns how many units client currently holds.
func (g *gate) clientInUse(client string) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.perClient[client]
}

// stats snapshots the counters.
func (g *gate) stats() api.GateStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return api.GateStats{Capacity: g.cap, InUse: g.inUse, Rejected: g.rejected}
}
