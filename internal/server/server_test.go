package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"svwsim/internal/api"
	"svwsim/internal/sim"
	"svwsim/internal/sim/engine"
)

const testInsts = 8_000

func newTestServer(opts Options) *Server {
	if opts.Workers == 0 {
		opts.Workers = 4
	}
	s, err := New(opts)
	if err != nil {
		panic(err)
	}
	return s
}

// do runs one request through the server's handler.
func do(s *Server, method, path, body string, hdr map[string]string) *httptest.ResponseRecorder {
	var r *http.Request
	if body != "" {
		r = httptest.NewRequest(method, path, strings.NewReader(body))
	} else {
		r = httptest.NewRequest(method, path, nil)
	}
	for k, v := range hdr {
		r.Header.Set(k, v)
	}
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, r)
	return w
}

// directRunBody is the reference encoding: what `svwsim -json` prints for
// the same (config, bench, insts) job.
func directRunBody(t *testing.T, config, bench string) []byte {
	t.Helper()
	cfg, ok := sim.ConfigByName(config)
	if !ok {
		t.Fatalf("unknown config %q", config)
	}
	res, err := engine.Run(cfg, bench, testInsts)
	if err != nil {
		t.Fatal(err)
	}
	body, err := marshalResult(res)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func TestRunMatchesCLIEncoding(t *testing.T) {
	s := newTestServer(Options{})
	w := do(s, "POST", "/v1/run",
		fmt.Sprintf(`{"config":"ssq+svw","bench":"gcc","insts":%d}`, testInsts), nil)
	if w.Code != http.StatusOK {
		t.Fatalf("HTTP %d: %s", w.Code, w.Body)
	}
	want := directRunBody(t, "ssq+svw", "gcc")
	if !bytes.Equal(w.Body.Bytes(), want) {
		t.Fatalf("response differs from svwsim -json encoding:\n got %s\nwant %s", w.Body, want)
	}
}

func TestRunValidation(t *testing.T) {
	s := newTestServer(Options{})
	cases := []struct {
		body string
		code int
	}{
		{`{"config":"no-such","bench":"gcc"}`, http.StatusBadRequest},
		{`{"config":"ssq","bench":"no-such"}`, http.StatusBadRequest},
		{`{"config":`, http.StatusBadRequest},
		{`{"config":"ssq","bench":"gcc","bogus":1}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		if w := do(s, "POST", "/v1/run", c.body, nil); w.Code != c.code {
			t.Errorf("body %q: HTTP %d, want %d", c.body, w.Code, c.code)
		}
	}
	if w := do(s, "GET", "/v1/run", "", nil); w.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/run: HTTP %d, want 405", w.Code)
	}
}

func TestBodySizeLimit(t *testing.T) {
	s := newTestServer(Options{MaxBodyBytes: 64})
	big := `{"config":"ssq","bench":"gcc","insts":1,` +
		`"pad":"` + strings.Repeat("x", 200) + `"}`
	if w := do(s, "POST", "/v1/run", big, nil); w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("HTTP %d, want 413", w.Code)
	}
}

func TestRegistryAndHealthEndpoints(t *testing.T) {
	s := newTestServer(Options{})
	var cfgs ConfigsResponse
	w := do(s, "GET", "/v1/configs", "", nil)
	if err := json.Unmarshal(w.Body.Bytes(), &cfgs); err != nil {
		t.Fatal(err)
	}
	if len(cfgs.Configs) != len(sim.ConfigNames()) {
		t.Fatalf("got %d configs, want %d", len(cfgs.Configs), len(sim.ConfigNames()))
	}
	var bn BenchesResponse
	w = do(s, "GET", "/v1/benches", "", nil)
	if err := json.Unmarshal(w.Body.Bytes(), &bn); err != nil {
		t.Fatal(err)
	}
	if len(bn.Benches) == 0 {
		t.Fatal("no benches listed")
	}
	if w := do(s, "GET", "/v1/healthz", "", nil); w.Code != http.StatusOK {
		t.Fatalf("healthz HTTP %d", w.Code)
	}
	s.SetDraining(true)
	if w := do(s, "GET", "/v1/healthz", "", nil); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz HTTP %d, want 503", w.Code)
	}
}

// cacheStats fetches /v1/stats and returns the cache counters.
func cacheStats(t *testing.T, s *Server) CacheStats {
	t.Helper()
	var st StatsResponse
	w := do(s, "GET", "/v1/stats", "", nil)
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	return st.Cache
}

func TestCacheHitMissAccounting(t *testing.T) {
	s := newTestServer(Options{})
	body := fmt.Sprintf(`{"config":"ssq","bench":"twolf","insts":%d}`, testInsts)
	first := do(s, "POST", "/v1/run", body, nil)
	if first.Code != http.StatusOK {
		t.Fatalf("HTTP %d: %s", first.Code, first.Body)
	}
	st := cacheStats(t, s)
	if st.Hits != 0 || st.Misses != 1 {
		t.Fatalf("after first run: %+v, want 0 hits / 1 miss", st)
	}
	second := do(s, "POST", "/v1/run", body, nil)
	if !bytes.Equal(second.Body.Bytes(), first.Body.Bytes()) {
		t.Fatal("cached response differs from the original")
	}
	st = cacheStats(t, s)
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("after repeat run: %+v, want 1 hit / 1 miss", st)
	}
	// The engine must not have been consulted for the repeat: one unique
	// execution, zero memo hits.
	m := s.Engine().Memo()
	if m.Misses != 1 || m.Hits != 0 {
		t.Fatalf("engine %+v, want the repeat served above the engine", m)
	}
}

func TestSaturationReturns429ButServesCache(t *testing.T) {
	s := newTestServer(Options{MaxConcurrentJobs: 2})
	warm := fmt.Sprintf(`{"config":"ssq","bench":"gcc","insts":%d}`, testInsts)
	if w := do(s, "POST", "/v1/run", warm, nil); w.Code != http.StatusOK {
		t.Fatalf("warmup HTTP %d", w.Code)
	}
	// Occupy the whole gate, as two long-running requests would.
	release, ok := s.gate.tryAcquire("", 2)
	if !ok {
		t.Fatal("could not occupy gate")
	}
	defer release()

	cold := fmt.Sprintf(`{"config":"nlq","bench":"gcc","insts":%d}`, testInsts)
	w := do(s, "POST", "/v1/run", cold, nil)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("uncached run on a saturated gate: HTTP %d, want 429", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	// Sweeps needing engine work are refused too...
	sweep := fmt.Sprintf(`{"configs":["nlq"],"benches":["gcc","twolf"],"insts":%d}`, testInsts)
	if w := do(s, "POST", "/v1/sweep", sweep, nil); w.Code != http.StatusTooManyRequests {
		t.Fatalf("uncached sweep on a saturated gate: HTTP %d, want 429", w.Code)
	}
	// ...but the cached request is still served: no engine work needed.
	if w := do(s, "POST", "/v1/run", warm, nil); w.Code != http.StatusOK {
		t.Fatalf("cached run on a saturated gate: HTTP %d, want 200", w.Code)
	}
	var st StatsResponse
	if err := json.Unmarshal(do(s, "GET", "/v1/stats", "", nil).Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Admission.Rejected != 2 {
		t.Fatalf("rejected %d, want 2", st.Admission.Rejected)
	}
}

func TestSweepMatchesCLIEncodingAndOrder(t *testing.T) {
	s := newTestServer(Options{})
	body := fmt.Sprintf(`{"configs":["ssq","ssq+svw"],"benches":["gcc","twolf"],"insts":%d}`, testInsts)
	w := do(s, "POST", "/v1/sweep", body, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("HTTP %d: %s", w.Code, w.Body)
	}
	// Reference: config-major × bench-minor, each job encoded like the CLI.
	var want []byte
	for _, cfg := range []string{"ssq", "ssq+svw"} {
		for _, b := range []string{"gcc", "twolf"} {
			want = append(want, directRunBody(t, cfg, b)...)
		}
	}
	if !bytes.Equal(w.Body.Bytes(), want) {
		t.Fatal("sweep body differs from the equivalent svwsim -json sequence")
	}
	// Repeating the sweep serves every job from the cache.
	before := cacheStats(t, s)
	do(s, "POST", "/v1/sweep", body, nil)
	after := cacheStats(t, s)
	if hits := after.Hits - before.Hits; hits != 4 {
		t.Fatalf("repeat sweep got %d cache hits, want 4", hits)
	}
}

func TestSweepValidation(t *testing.T) {
	s := newTestServer(Options{MaxSweepJobs: 4})
	cases := []struct {
		body string
		code int
	}{
		{`{"configs":[],"benches":["gcc"]}`, http.StatusBadRequest},
		{`{"configs":["ssq"],"benches":[]}`, http.StatusBadRequest},
		{`{"configs":["no-such"],"benches":["gcc"]}`, http.StatusBadRequest},
		{`{"configs":["ssq"],"benches":["no-such"]}`, http.StatusBadRequest},
		{`{"configs":["ssq","nlq","rle"],"benches":["gcc","twolf"]}`, http.StatusBadRequest}, // 6 > 4
	}
	for _, c := range cases {
		if w := do(s, "POST", "/v1/sweep", c.body, nil); w.Code != c.code {
			t.Errorf("body %q: HTTP %d, want %d", c.body, w.Code, c.code)
		}
	}
}

// parseSSE parses an event-stream body via the shared api parser.
func parseSSE(t *testing.T, body string) []api.Event {
	t.Helper()
	events, err := api.ParseEvents(strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return events
}

func TestSweepSSEOrdering(t *testing.T) {
	s := newTestServer(Options{})
	configs := []string{"ssq", "ssq+svw"}
	benches := []string{"gcc", "twolf"}
	body := fmt.Sprintf(`{"configs":["ssq","ssq+svw"],"benches":["gcc","twolf"],"insts":%d}`, testInsts)
	hdr := map[string]string{"Accept": "text/event-stream"}

	check := func(wantCached bool) {
		t.Helper()
		w := do(s, "POST", "/v1/sweep", body, hdr)
		if w.Code != http.StatusOK {
			t.Fatalf("HTTP %d: %s", w.Code, w.Body)
		}
		if ct := w.Header().Get("Content-Type"); ct != "text/event-stream" {
			t.Fatalf("Content-Type %q", ct)
		}
		events := parseSSE(t, w.Body.String())
		if len(events) != 5 {
			t.Fatalf("got %d events, want 4 results + done", len(events))
		}
		for i := 0; i < 4; i++ {
			ev := events[i]
			if ev.Name != "result" || ev.ID != i {
				t.Fatalf("event %d: name %q id %d, want result/%d (SSE must arrive in job-index order)",
					i, ev.Name, ev.ID, i)
			}
			var data SweepEvent
			if err := json.Unmarshal(ev.Data, &data); err != nil {
				t.Fatal(err)
			}
			wantCfg, wantBench := configs[i/2], benches[i%2]
			gotCfg, _ := sim.ConfigByName(wantCfg)
			if data.Index != i || data.Bench != wantBench || data.Config != gotCfg.Name {
				t.Fatalf("event %d: %+v, want index %d %s on %s", i, data, i, gotCfg.Name, wantBench)
			}
			if data.Cached != wantCached {
				t.Fatalf("event %d: cached=%v, want %v", i, data.Cached, wantCached)
			}
			if data.Error != "" || len(data.Result) == 0 {
				t.Fatalf("event %d: error=%q result len %d", i, data.Error, len(data.Result))
			}
		}
		last := events[4]
		if last.Name != "done" {
			t.Fatalf("final event %q, want done", last.Name)
		}
		var done SweepDone
		if err := json.Unmarshal(last.Data, &done); err != nil {
			t.Fatal(err)
		}
		if done.Jobs != 4 || done.Errors != 0 {
			t.Fatalf("done %+v", done)
		}
	}
	check(false) // first pass: everything computed
	check(true)  // second pass: everything from the LRU, same ordering
}

// TestConcurrentClients hammers run and sweep from many goroutines; run
// under -race this is the server's data-race gate, and every response must
// be either a success or a clean 429.
func TestConcurrentClients(t *testing.T) {
	s := newTestServer(Options{MaxConcurrentJobs: 4})
	runBody := fmt.Sprintf(`{"config":"ssq","bench":"gcc","insts":%d}`, testInsts)
	sweepBody := fmt.Sprintf(`{"configs":["ssq","nlq"],"benches":["gcc"],"insts":%d}`, testInsts)
	sseHdr := map[string]string{"Accept": "text/event-stream"}

	var wg sync.WaitGroup
	var ok200, ok429 int64
	var mu sync.Mutex
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				var w *httptest.ResponseRecorder
				switch (c + i) % 3 {
				case 0:
					w = do(s, "POST", "/v1/run", runBody, nil)
				case 1:
					w = do(s, "POST", "/v1/sweep", sweepBody, nil)
				default:
					w = do(s, "POST", "/v1/sweep", sweepBody, sseHdr)
				}
				mu.Lock()
				switch w.Code {
				case http.StatusOK:
					ok200++
				case http.StatusTooManyRequests:
					ok429++
				default:
					t.Errorf("unexpected HTTP %d: %s", w.Code, w.Body)
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	if ok200 == 0 {
		t.Fatal("no request succeeded")
	}
	t.Logf("200=%d 429=%d", ok200, ok429)
}

func TestStudyEndpoints(t *testing.T) {
	s := newTestServer(Options{})
	w := do(s, "GET", fmt.Sprintf("/v1/studies/ladder?fig=5&benches=gcc,twolf&insts=%d", testInsts), "", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("ladder HTTP %d: %s", w.Code, w.Body)
	}
	var ladder sim.LadderJSON
	if err := json.Unmarshal(w.Body.Bytes(), &ladder); err != nil {
		t.Fatal(err)
	}
	if ladder.Name != "fig5-nlq" || len(ladder.Benches) != 2 {
		t.Fatalf("ladder %+v", ladder)
	}
	// Repeat is a cache hit: byte-identical.
	before := cacheStats(t, s)
	w2 := do(s, "GET", fmt.Sprintf("/v1/studies/ladder?fig=5&benches=gcc,twolf&insts=%d", testInsts), "", nil)
	if !bytes.Equal(w2.Body.Bytes(), w.Body.Bytes()) {
		t.Fatal("cached study response differs")
	}
	if after := cacheStats(t, s); after.Hits != before.Hits+1 {
		t.Fatalf("study repeat was not a cache hit: %+v -> %+v", before, after)
	}

	w = do(s, "GET", fmt.Sprintf("/v1/studies/ssn?benches=gcc&bits=8,0&insts=%d", testInsts), "", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("ssn HTTP %d: %s", w.Code, w.Body)
	}
	var ssn sim.SSNWidthJSON
	if err := json.Unmarshal(w.Body.Bytes(), &ssn); err != nil {
		t.Fatal(err)
	}
	if len(ssn.Bits) != 2 {
		t.Fatalf("ssn %+v", ssn)
	}

	w = do(s, "GET", fmt.Sprintf("/v1/studies/ssbf?benches=gcc&insts=%d", testInsts), "", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("ssbf HTTP %d: %s", w.Code, w.Body)
	}

	// Validation.
	if w := do(s, "GET", "/v1/studies/ladder?benches=gcc", "", nil); w.Code != http.StatusBadRequest {
		t.Errorf("ladder without fig: HTTP %d, want 400", w.Code)
	}
	if w := do(s, "GET", "/v1/studies/nope", "", nil); w.Code != http.StatusNotFound {
		t.Errorf("unknown study: HTTP %d, want 404", w.Code)
	}
	if w := do(s, "GET", "/v1/studies/ssn?bits=-1", "", nil); w.Code != http.StatusBadRequest {
		t.Errorf("negative bits: HTTP %d, want 400", w.Code)
	}
}
