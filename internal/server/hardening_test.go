package server

// Regression tests for the production-hardening fixes: the SSE sweep
// handler outliving a disconnected client, counters inflated by work
// never served, lax request-body decoding, weighted fair admission and
// request deadlines.

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"svwsim/internal/api"
	"svwsim/internal/raceflag"
	"svwsim/internal/sim"
	"svwsim/internal/sim/engine"
)

// TestStreamSweepClientDisconnectNoHandlerLeak reproduces the SSE stall:
// a client opens a streaming sweep whose first job is cached (so the
// stream starts immediately) and whose second is a long engine job, then
// disconnects. The handler used to block on the engine's next result —
// parked for the job's full runtime even though no one was listening.
// Post-fix it must notice the dead request context and return promptly.
func TestStreamSweepClientDisconnectNoHandlerLeak(t *testing.T) {
	// Big enough that the uncached job runs far longer than the assertion
	// window below, on either side of the race detector's slowdown.
	bigInsts := uint64(8_000_000)
	if raceflag.Enabled {
		bigInsts = 1_500_000
	}

	s := newTestServer(Options{Workers: 1})
	cfg, ok := sim.ConfigByName("ssq")
	if !ok {
		t.Fatal("unknown config ssq")
	}
	// Pre-warm job 0 so the stream emits an event (and the client can
	// witness the stream is live) before the engine delivers anything.
	s.store.Put(engine.Fingerprint(cfg, "gcc", bigInsts), []byte("{}\n"))

	var inflight atomic.Int32
	h := s.Handler()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		inflight.Add(1)
		defer inflight.Add(-1)
		h.ServeHTTP(w, r)
	}))
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	body := fmt.Sprintf(`{"configs":["ssq","nlq"],"benches":["gcc"],"insts":%d}`, bigInsts)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/sweep",
		strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/event-stream")
	res, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the first byte of the cached event, then walk away
	// mid-stream with the engine still chewing on job 1.
	if _, err := res.Body.Read(make([]byte, 1)); err != nil {
		t.Fatal(err)
	}
	cancel()
	res.Body.Close()

	deadline := time.Now().Add(2 * time.Second)
	for inflight.Load() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("sweep handler still running 2s after its client disconnected")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestFailedSweepLeavesCountersUntouched pins serve-time accounting: a
// sweep (or run) that fails before anything is served must not move the
// store counters. The planned misses used to be charged up front.
func TestFailedSweepLeavesCountersUntouched(t *testing.T) {
	// A nanosecond job timeout fails every execution without touching the
	// deadline machinery (the engine reports a plain timeout error: 500).
	s := newTestServer(Options{JobTimeout: time.Nanosecond})

	body := fmt.Sprintf(`{"configs":["ssq"],"benches":["gcc"],"insts":%d}`, testInsts)
	if w := do(s, "POST", "/v1/sweep", body, nil); w.Code != http.StatusInternalServerError {
		t.Fatalf("sweep HTTP %d, want 500", w.Code)
	}
	if st := cacheStats(t, s); st.Hits != 0 || st.DiskHits != 0 || st.Misses != 0 {
		t.Fatalf("counters moved by a failed sweep: %+v, want all zero", st)
	}

	run := fmt.Sprintf(`{"config":"ssq","bench":"gcc","insts":%d}`, testInsts)
	if w := do(s, "POST", "/v1/run", run, nil); w.Code != http.StatusInternalServerError {
		t.Fatalf("run HTTP %d, want 500", w.Code)
	}
	if st := cacheStats(t, s); st.Hits != 0 || st.DiskHits != 0 || st.Misses != 0 {
		t.Fatalf("counters moved by a failed run: %+v, want all zero", st)
	}
}

// TestDecodeBodyRejectsTrailingGarbage pins strict decoding: a valid
// JSON object followed by anything but whitespace is a 400, not silently
// accepted with the tail discarded.
func TestDecodeBodyRejectsTrailingGarbage(t *testing.T) {
	s := newTestServer(Options{})
	valid := `{"config":"ssq","bench":"gcc","insts":100}`
	cases := []struct {
		name string
		body string
		code int
	}{
		{"trailing junk", valid + ` junk`, http.StatusBadRequest},
		{"second object", valid + `{"config":"ssq"}`, http.StatusBadRequest},
		{"trailing array", valid + `[]`, http.StatusBadRequest},
		{"trailing whitespace", valid + " \n\t\n", http.StatusOK},
		{"exact object", valid, http.StatusOK},
	}
	for _, c := range cases {
		if w := do(s, "POST", "/v1/run", c.body, nil); w.Code != c.code {
			t.Errorf("%s: HTTP %d, want %d (%s)", c.name, w.Code, c.code, w.Body)
		}
	}
	sweep := `{"configs":["ssq"],"benches":["gcc"],"insts":100}`
	if w := do(s, "POST", "/v1/sweep", sweep+`x`, nil); w.Code != http.StatusBadRequest {
		t.Errorf("sweep trailing junk: HTTP %d, want 400", w.Code)
	}
}

// TestFairAdmissionProtectsInteractive pins the weighted gate end to end:
// a tenant that has eaten its share is refused while another tenant's
// request still goes through on the same gate.
func TestFairAdmissionProtectsInteractive(t *testing.T) {
	s := newTestServer(Options{
		MaxConcurrentJobs:   10,
		ClientWeights:       map[string]int{"bulk": 4, "fast": 4},
		DefaultClientWeight: 2,
	})
	// Occupy bulk's entire share (W = 10, so 10·4/10 = 4 units).
	rel, ok := s.gate.tryAcquire("bulk", 4)
	if !ok {
		t.Fatal("could not seed bulk's share")
	}
	defer rel()

	body := fmt.Sprintf(`{"config":"ssq","bench":"gcc","insts":%d}`, testInsts)
	w := do(s, "POST", "/v1/run", body, map[string]string{api.ClientHeader: "bulk"})
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("bulk over its share: HTTP %d, want 429 (%s)", w.Code, w.Body)
	}
	w = do(s, "POST", "/v1/run", body, map[string]string{api.ClientHeader: "fast"})
	if w.Code != http.StatusOK {
		t.Fatalf("fast within its share: HTTP %d, want 200 (%s)", w.Code, w.Body)
	}
}

// TestDeadlineExceededReturns504AndStopsEngine pins the deadline path: a
// hopeless budget yields 504 (not 500), stops queued engine work instead
// of running the whole sweep, and counts nothing in the store.
func TestDeadlineExceededReturns504AndStopsEngine(t *testing.T) {
	s := newTestServer(Options{Workers: 1})
	hdr := map[string]string{api.DeadlineHeader: "1"}

	body := fmt.Sprintf(`{"configs":["ssq","nlq"],"benches":["gcc","twolf"],"insts":%d}`, testInsts)
	if w := do(s, "POST", "/v1/sweep", body, hdr); w.Code != http.StatusGatewayTimeout {
		t.Fatalf("sweep HTTP %d, want 504 (%s)", w.Code, w.Body)
	}
	// At most the job already executing when the deadline fired ran; the
	// queued remainder must have been skipped.
	if m := s.Engine().Memo(); m.Misses >= 4 {
		t.Fatalf("engine executed %d jobs under a 1ms deadline, want < 4", m.Misses)
	}
	if st := cacheStats(t, s); st.Misses != 0 {
		t.Fatalf("store counted %d misses for a timed-out sweep, want 0", st.Misses)
	}

	// A single already-executing run legitimately completes (the engine
	// never abandons an executing job), so /v1/run checks the success path:
	// a generous budget must not disturb a normal response.
	run := fmt.Sprintf(`{"config":"ssq+svw","bench":"gcc","insts":%d}`, testInsts)
	if w := do(s, "POST", "/v1/run", run, map[string]string{api.DeadlineHeader: "60000"}); w.Code != http.StatusOK {
		t.Fatalf("run with generous deadline: HTTP %d, want 200 (%s)", w.Code, w.Body)
	}

	for _, bad := range []string{"abc", "-5", "0", "1.5"} {
		w := do(s, "POST", "/v1/run", run, map[string]string{api.DeadlineHeader: bad})
		if w.Code != http.StatusBadRequest {
			t.Errorf("deadline %q: HTTP %d, want 400", bad, w.Code)
		}
	}
}

// TestMetricsEndpoint exercises the scrape surface: request counters and
// latency histograms, stage timings, gate occupancy and store tiers all
// show up in Prometheus text form after one served run.
func TestMetricsEndpoint(t *testing.T) {
	s := newTestServer(Options{})
	body := fmt.Sprintf(`{"config":"ssq","bench":"gcc","insts":%d}`, testInsts)
	if w := do(s, "POST", "/v1/run", body, nil); w.Code != http.StatusOK {
		t.Fatalf("run HTTP %d: %s", w.Code, w.Body)
	}

	w := do(s, "GET", "/metrics", "", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("metrics HTTP %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type %q, want text/plain exposition", ct)
	}
	text := w.Body.String()
	for _, want := range []string{
		`svw_http_requests_total{code="200",endpoint="/v1/run"} 1`,
		`svw_http_request_seconds_bucket{endpoint="/v1/run",le="`,
		"\nsvw_gate_in_use 0\n",
		`svw_stage_seconds_bucket{stage="engine_run",le="`,
		`svw_store_requests_total{tier="miss"} 1`,
		`svw_store_requests_total{tier="memory"} 0`,
		`svw_engine_memo_misses_total 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("scrape missing %q\n%s", want, text)
		}
	}
}
