package server

import (
	"context"

	"svwsim/internal/store"
)

// serverCheckpoints is the engine's checkpoint view of the server's
// sharded store: a probe walks the local tiers first, then the key's
// rendezvous owner over the same GET /v1/store/{key} read path results
// use — a fabric member fast-forwards each skip point once and every
// peer restores the warm state instead of re-emulating it. Peer-served
// checkpoints are promoted into the local memory tier only, like peer
// result reads, so the persistent copy stays where the sharding map says
// it lives.
type serverCheckpoints struct{ s *Server }

func (c serverCheckpoints) GetCheckpoint(key string) ([]byte, bool) {
	val, origin := c.s.store.Get(key)
	if origin != store.OriginMiss {
		c.s.store.AccountGet(origin)
		return val, true
	}
	// The engine probes mid-job with no request context in scope;
	// peerFetch bounds the read with its own peer timeout.
	if val, ok := c.s.peerFetch(context.Background(), nil, key); ok {
		c.s.store.PutMemory(key, val)
		c.s.store.AccountGet(store.OriginPeer)
		return val, true
	}
	return nil, false
}

func (c serverCheckpoints) PutCheckpoint(key string, val []byte) {
	c.s.store.Put(key, val)
}
