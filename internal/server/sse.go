package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
)

// Server-sent events for POST /v1/sweep: one "result" event per job, in
// job-index order (the engine's determinism guarantee carried over the
// wire), then one "done" event. Each event carries its job index as the SSE
// id, so clients can assert ordering and resume bookkeeping trivially.

// wantsSSE reports whether the client asked for an event stream.
func wantsSSE(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), "text/event-stream")
}

// sseStream writes SSE frames, flushing after each one so events are
// delivered as they happen rather than at the end of the response.
type sseStream struct {
	w http.ResponseWriter
	f http.Flusher
	// err latches the first write failure (client gone); later writes are
	// skipped so the sweep loop can keep draining engine results.
	err error
}

// newSSE starts an event stream on w. It returns an error if w cannot
// flush, in which case nothing has been written.
func newSSE(w http.ResponseWriter) (*sseStream, error) {
	f, ok := w.(http.Flusher)
	if !ok {
		return nil, fmt.Errorf("response writer does not support streaming")
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-store")
	h.Set("X-Accel-Buffering", "no") // defeat proxy buffering
	w.WriteHeader(http.StatusOK)
	f.Flush()
	return &sseStream{w: w, f: f}, nil
}

// event emits one frame with the given event name, id and JSON-encoded
// data payload. Write errors latch: the first failure suppresses all
// subsequent frames.
func (s *sseStream) event(name string, id int, v any) {
	if s.err != nil {
		return
	}
	data, err := json.Marshal(v)
	if err != nil {
		s.err = err
		return
	}
	if _, err := fmt.Fprintf(s.w, "event: %s\nid: %d\ndata: %s\n\n", name, id, data); err != nil {
		s.err = err
		return
	}
	s.f.Flush()
}
