package server

import (
	"container/list"
	"sync"

	"svwsim/internal/api"
)

// lru is a bounded, thread-safe LRU cache from string keys to serialized
// response bytes. /v1/run and /v1/sweep key it by the engine's memo key
// (engine.Fingerprint), study endpoints by their canonicalized parameters;
// either way a hit is served without touching the engine or the admission
// gate, which is what lets a saturated daemon keep answering repeated
// requests. Hit/miss/eviction counters feed /v1/stats.
type lru struct {
	mu        sync.Mutex
	cap       int
	ll        *list.List // front = most recently used
	items     map[string]*list.Element
	hits      uint64
	misses    uint64
	evictions uint64
}

type lruEntry struct {
	key string
	val []byte
}

// newLRU returns a cache bounded to capacity entries (minimum 1).
func newLRU(capacity int) *lru {
	if capacity < 1 {
		capacity = 1
	}
	return &lru{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element),
	}
}

// get returns the cached bytes for key and whether they were present,
// refreshing recency on hit. It does not touch the hit/miss counters:
// handlers record served work explicitly via account, so probes on
// requests that end up rejected (429) cannot skew the rates. Callers must
// not mutate the returned slice.
func (c *lru) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// account records served cache work: hits responses (or sweep jobs) served
// from the cache, misses ones that had to be computed.
func (c *lru) account(hits, misses uint64) {
	c.mu.Lock()
	c.hits += hits
	c.misses += misses
	c.mu.Unlock()
}

// put stores val under key, refreshing an existing entry and evicting the
// least recently used entry when over capacity.
func (c *lru) put(key string, val []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*lruEntry).val = val
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, val: val})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
		c.evictions++
	}
}

// stats snapshots the counters.
func (c *lru) stats() api.CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return api.CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Entries:   c.ll.Len(),
		Capacity:  c.cap,
	}
}
