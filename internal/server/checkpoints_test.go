package server

import (
	"fmt"
	"net/http"
	"testing"

	"svwsim/internal/sim/engine"
)

// The fabric checkpoint headline: a sampled run at one member persists its
// fast-forward warm state, and a sampled run of a DIFFERENT config at
// another member restores that state over the peer-read protocol instead
// of re-emulating — zero fast-forward legs on the second member, the
// checkpoint counted as a peer hit.
func TestShardedCheckpointReuseOverPeerReads(t *testing.T) {
	// One fast-forward leg: windows at skip 0 and 4000 of a 8000-inst run,
	// so exactly one checkpoint key exists and the test can pin the warm
	// run at that key's rendezvous owner.
	const (
		warmup = 1000
		detail = 1000
		period = 4000
		bench  = "gcc"
	)
	f := newShardedFabric(t, 2)
	ckptKey := engine.CheckpointKey(bench, period)
	owner := f.ownerIndex(ckptKey)
	if owner < 0 {
		t.Fatalf("no owner for %s", ckptKey)
	}
	peer := 1 - owner

	runBody := func(config string) string {
		return fmt.Sprintf(`{"config":%q,"bench":%q,"insts":%d,"sample_warmup":%d,"sample_detail":%d,"sample_period":%d}`,
			config, bench, testInsts, warmup, detail, period)
	}

	// Warm run at the checkpoint's owner: it must emulate the leg once and
	// persist the warm state into its own store.
	if w := do(f.servers[owner], "POST", "/v1/run", runBody("ssq"), nil); w.Code != http.StatusOK {
		t.Fatalf("warm run HTTP %d: %s", w.Code, w.Body)
	}
	sm := f.servers[owner].Engine().Sample()
	if sm.FastForwards != 1 || sm.CheckpointPuts != 1 {
		t.Fatalf("owner fast-forwards/puts = %d/%d, want 1/1: %+v",
			sm.FastForwards, sm.CheckpointPuts, sm)
	}

	// A different config at the other member: its result key is cold
	// everywhere, so the engine runs — but the fast-forward leg must be
	// served by the owner's checkpoint over GET /v1/store/{key}.
	before := cacheStats(t, f.servers[peer])
	if w := do(f.servers[peer], "POST", "/v1/run", runBody("nlq"), nil); w.Code != http.StatusOK {
		t.Fatalf("peer run HTTP %d: %s", w.Code, w.Body)
	}
	sm = f.servers[peer].Engine().Sample()
	if sm.FastForwards != 0 || sm.CheckpointHits != 1 {
		t.Fatalf("peer member re-emulated: fast-forwards/hits = %d/%d, want 0/1: %+v",
			sm.FastForwards, sm.CheckpointHits, sm)
	}
	after := cacheStats(t, f.servers[peer])
	if d := after.PeerHits - before.PeerHits; d != 1 {
		t.Fatalf("peer member accounted %d peer hits for the checkpoint, want 1", d)
	}

	// The fetched checkpoint was promoted to the peer member's memory
	// tier: a third config's sampled run there stays entirely local.
	if w := do(f.servers[peer], "POST", "/v1/run", runBody("rle"), nil); w.Code != http.StatusOK {
		t.Fatalf("third run HTTP %d: %s", w.Code, w.Body)
	}
	sm = f.servers[peer].Engine().Sample()
	if sm.FastForwards != 0 || sm.CheckpointHits != 2 {
		t.Fatalf("promoted checkpoint not reused locally: fast-forwards/hits = %d/%d, want 0/2",
			sm.FastForwards, sm.CheckpointHits)
	}
	if d := cacheStats(t, f.servers[peer]).PeerHits - after.PeerHits; d != 0 {
		t.Fatalf("third run went back to the peer (%d peer hits), want local memory serve", d)
	}
}
