package server

import (
	"context"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"svwsim/internal/api"
	"svwsim/internal/rendezvous"
	"svwsim/internal/store"
	"svwsim/internal/trace"
)

// The sharded persistent store. Each engine memo key has exactly one
// store owner in the fabric: the rendezvous winner (internal/rendezvous,
// the same hash svwctl routes jobs with) among the live backend URLs.
// Because routing and ownership share the hash, a key's jobs normally
// land on its owner and persist there; any backend asked for a key it
// does not own probes memory → local disk → the owner over HTTP
// (GET /v1/store/{key}) before paying a recompute. The peer answer is
// the checksummed on-disk entry encoding, validated with the same
// parseEntry path as a local file — a corrupt or mismatched peer answer
// degrades to a miss, never a wrong answer — and a validated fetch is
// promoted into the local memory tier only, so the persistent copy stays
// exactly where the sharding map says it lives.
//
// Membership can be static (-peers/-peer-self flags) or learned: with
// PeerLearn, the coordinator's forwarded requests carry the pool
// snapshot (api.PeersHeader) plus the URL the receiver was addressed by
// (api.PeerSelfHeader), and the backend adopts that as its election set.
// Only enable learning on networks where everything that can reach the
// serving port is trusted — the header is taken at face value, like
// every other header on this port.

// DefaultPeerReadTimeout bounds one peer store read when Options leaves
// PeerReadTimeout zero. Peer reads are disk/memory lookups on the owner,
// never computations, so a short budget is right: past it the requester
// just computes locally.
const DefaultPeerReadTimeout = 2 * time.Second

// maxPeerEntryBytes bounds one fetched peer entry (header + key + value).
const maxPeerEntryBytes = 16 << 20

// peerSet is the server's current view of the fabric membership, guarded
// for concurrent observe/view. members and self are normalized URLs.
type peerSet struct {
	mu      sync.Mutex
	self    string
	members []string
	joined  string // last adopted PeersHeader value, for a cheap no-change path
}

// normalizePeerURL matches the coordinator's backend-URL normalization so
// header-carried and flag-configured URLs compare equal.
func normalizePeerURL(u string) string {
	return strings.TrimRight(strings.TrimSpace(u), "/")
}

// set replaces the membership view from a configured list.
func (p *peerSet) set(members []string, self string) {
	norm := make([]string, 0, len(members))
	for _, m := range members {
		if m = normalizePeerURL(m); m != "" {
			norm = append(norm, m)
		}
	}
	p.mu.Lock()
	p.members = norm
	p.self = normalizePeerURL(self)
	p.joined = strings.Join(norm, ",")
	p.mu.Unlock()
}

// observe adopts a membership payload from a forwarded request's headers.
// An unchanged header (the common case: every forwarded request carries
// the same snapshot) costs two string compares under the lock.
func (p *peerSet) observe(r *http.Request) {
	raw := r.Header.Get(api.PeersHeader)
	if raw == "" {
		return
	}
	self := normalizePeerURL(r.Header.Get(api.PeerSelfHeader))
	p.mu.Lock()
	if raw == p.joined && (self == "" || self == p.self) {
		p.mu.Unlock()
		return
	}
	members := make([]string, 0, strings.Count(raw, ",")+1)
	for _, m := range strings.Split(raw, ",") {
		if m = normalizePeerURL(m); m != "" {
			members = append(members, m)
		}
	}
	p.members = members
	p.joined = raw
	if self != "" {
		p.self = self
	}
	p.mu.Unlock()
}

// view snapshots (self, members). The slice is shared — callers must not
// mutate it (set/observe replace it wholesale, never append in place).
func (p *peerSet) view() (string, []string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.self, p.members
}

// observePeers learns membership from a forwarded request when learning
// is enabled.
func (s *Server) observePeers(r *http.Request) {
	if s.peerLearn {
		s.peers.observe(r)
	}
}

// peerFetch asks key's store owner for its entry, returning the
// validated value bytes. ok=false on every other outcome — no usable
// membership, self-owned key, owner down, 404, or an entry that fails
// validation — and the caller computes locally, exactly as if the disk
// tier had missed.
func (s *Server) peerFetch(ctx context.Context, tr *trace.Trace, key string) ([]byte, bool) {
	self, members := s.peers.view()
	if self == "" || len(members) < 2 {
		return nil, false
	}
	owner := rendezvous.Owner(members, key)
	if owner == "" || owner == self {
		return nil, false
	}
	t0 := time.Now()
	sp := tr.Start("store_peer")
	sp.SetAttr("owner", owner)
	outcome := "error"
	defer func() {
		sp.SetAttr("outcome", outcome)
		sp.End()
		s.metrics.storePeer.Observe(time.Since(t0))
	}()

	fctx, cancel := context.WithTimeout(ctx, s.peerTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(fctx, http.MethodGet,
		owner+"/v1/store/"+url.PathEscape(key), nil)
	if err != nil {
		return nil, false
	}
	resp, err := s.peerClient.Do(req)
	if err != nil {
		return nil, false
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 64<<10))
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		outcome = "miss"
		return nil, false
	}
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxPeerEntryBytes))
	if err != nil {
		return nil, false
	}
	val, ok := store.DecodeEntry(raw, key)
	if !ok {
		// The owner answered, but with bytes that fail the entry's own
		// integrity checks (or a different key): treat as a miss and
		// recompute rather than serve what cannot be trusted.
		outcome = "corrupt"
		return nil, false
	}
	outcome = "hit"
	return val, true
}

// handleStoreGet is the peer-read protocol: GET /v1/store/{key} answers
// with the checksummed entry encoding for any key this server's store
// holds (either tier), 404 otherwise. Lookups here touch no hit/miss
// counters — the requesting peer accounts the serve on its side, so a
// fetched result is counted exactly once in the fabric.
func (s *Server) handleStoreGet(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if key == "" {
		writeError(w, http.StatusBadRequest, "empty store key")
		return
	}
	val, origin := s.store.Get(key)
	if origin == store.OriginMiss {
		writeError(w, http.StatusNotFound, "no entry for key")
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(api.CacheHeader, origin.String())
	w.WriteHeader(http.StatusOK)
	w.Write(store.EncodeEntry(key, val))
}
