package server

import "svwsim/internal/api"

// The request and response shapes of the svwd HTTP API live in
// internal/api, shared with the svwctl coordinator so the two layers
// serve literally the same wire types and cannot drift. The aliases keep
// the server package's historical names usable.
//
// Study endpoints return the figure JSON shapes from internal/sim/print.go
// verbatim; /v1/run and /v1/sweep return engine results encoded exactly as
// `svwsim -json` prints them, so a service response can be byte-compared
// against the CLI (the CI smoke stage does exactly that).
type (
	RunRequest      = api.RunRequest
	SweepRequest    = api.SweepRequest
	ErrorResponse   = api.ErrorResponse
	ConfigsResponse = api.ConfigsResponse
	BenchesResponse = api.BenchesResponse
	HealthResponse  = api.HealthResponse
	StatsResponse   = api.StatsResponse
	CacheStats      = api.CacheStats
	EngineStats     = api.EngineStats
	GateStats       = api.GateStats
	SweepEvent      = api.SweepEvent
	SweepDone       = api.SweepDone
)
