package server

import "encoding/json"

// Request and response shapes for the svwd HTTP API. Study endpoints return
// the figure JSON shapes from internal/sim/print.go verbatim; /v1/run and
// /v1/sweep return engine results encoded exactly as `svwsim -json` prints
// them, so a service response can be byte-compared against the CLI (the CI
// smoke stage does exactly that).

// RunRequest is the body of POST /v1/run: one (config, bench, insts) job.
type RunRequest struct {
	// Config is a registry name (see GET /v1/configs / sim.ConfigNames).
	Config string `json:"config"`
	// Bench is a benchmark kernel name (see GET /v1/benches).
	Bench string `json:"bench"`
	// Insts bounds committed instructions (0 keeps the config's default).
	Insts uint64 `json:"insts"`
}

// SweepRequest is the body of POST /v1/sweep: a config × bench matrix that
// flattens into an engine job list config-major (configs outer, benches
// inner), the same order `svwsim -config a,b -bench x,y` runs.
type SweepRequest struct {
	Configs []string `json:"configs"`
	Benches []string `json:"benches"`
	Insts   uint64   `json:"insts"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
}

// ConfigsResponse is the body of GET /v1/configs.
type ConfigsResponse struct {
	Configs []string `json:"configs"`
}

// BenchesResponse is the body of GET /v1/benches.
type BenchesResponse struct {
	Benches []string `json:"benches"`
}

// HealthResponse is the body of GET /v1/healthz. Status is "ok" while
// serving and "draining" (with HTTP 503) once shutdown has begun, so load
// balancers stop routing new work during the drain.
type HealthResponse struct {
	Status  string  `json:"status"`
	UptimeS float64 `json:"uptime_s"`
}

// StatsResponse is the body of GET /v1/stats.
type StatsResponse struct {
	UptimeS   float64     `json:"uptime_s"`
	Cache     CacheStats  `json:"cache"`
	Engine    EngineStats `json:"engine"`
	Admission GateStats   `json:"admission"`
}

// EngineStats surfaces the shared engine's reuse counters.
type EngineStats struct {
	MemoHits    uint64 `json:"memo_hits"`
	MemoMisses  uint64 `json:"memo_misses"`
	MemoEntries int    `json:"memo_entries"`
}

// SweepEvent is the data payload of one SSE "result" event during
// POST /v1/sweep streaming: the job's index in the flattened matrix plus
// where its result came from. Events always arrive in index order.
type SweepEvent struct {
	Index  int    `json:"index"`
	Config string `json:"config"`
	Bench  string `json:"bench"`
	// Cached: served from the daemon's LRU cache, no engine involvement.
	Cached bool `json:"cached"`
	// Memoized: executed via the engine but answered from its memo table.
	Memoized bool `json:"memoized"`
	// Error is set instead of Result when the job failed (or was cancelled).
	Error string `json:"error,omitempty"`
	// Result is the engine result in the `svwsim -json` shape.
	Result json.RawMessage `json:"result,omitempty"`
}

// SweepDone is the data payload of the final SSE "done" event.
type SweepDone struct {
	Jobs        int `json:"jobs"`
	CacheHits   int `json:"cache_hits"`
	CacheMisses int `json:"cache_misses"`
	Errors      int `json:"errors"`
}
