package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"svwsim/internal/api"
	"svwsim/internal/store"
)

// sweepBodyFor builds the standard test sweep request.
func sweepBodyFor(configs, benches string) string {
	return fmt.Sprintf(`{"configs":[%s],"benches":[%s],"insts":%d}`, configs, benches, testInsts)
}

// corruptStoreFiles bit-flips every store entry under dir and returns how
// many it mangled.
func corruptStoreFiles(t *testing.T, dir string) int {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(dir, "*.svw"))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range paths {
		raw, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		raw[len(raw)-1] ^= 0x20
		if err := os.WriteFile(p, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return len(paths)
}

// A server restarted on the same -store-dir answers a previously-run
// sweep byte-identically with zero engine executions: every job is a
// disk (or promoted memory) hit — the warm-restart contract the ci.sh
// smoke stage also enforces end to end.
func TestWarmRestartServesSweepFromDisk(t *testing.T) {
	dir := t.TempDir()
	sweep := sweepBodyFor(`"ssq","ssq+svw"`, `"gcc","twolf"`)

	s1 := newTestServer(Options{StoreDir: dir})
	w1 := do(s1, "POST", "/v1/sweep", sweep, nil)
	if w1.Code != http.StatusOK {
		t.Fatalf("first sweep HTTP %d: %s", w1.Code, w1.Body)
	}
	if m := s1.Engine().Memo(); m.Misses != 4 {
		t.Fatalf("first server executed %d jobs, want 4", m.Misses)
	}

	// "Restart": a brand-new server process over the same directory. Its
	// memory tier and engine memo are empty; only the disk tier carries
	// over.
	s2 := newTestServer(Options{StoreDir: dir})
	w2 := do(s2, "POST", "/v1/sweep", sweep, nil)
	if w2.Code != http.StatusOK {
		t.Fatalf("restart sweep HTTP %d: %s", w2.Code, w2.Body)
	}
	if !bytes.Equal(w2.Body.Bytes(), w1.Body.Bytes()) {
		t.Fatal("restarted server's sweep differs from the original")
	}
	if m := s2.Engine().Memo(); m.Misses != 0 || m.Hits != 0 {
		t.Fatalf("restarted server touched the engine: %+v, want all jobs from the store", m)
	}
	st := cacheStats(t, s2)
	if st.DiskHits != 4 || st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("restart stats %+v, want 4 disk hits / 0 misses", st)
	}
	if st.DiskEntries == 0 || st.DiskBytes == 0 {
		t.Fatalf("stats do not surface the disk tier: %+v", st)
	}

	// A third pass is served from the memory tier the disk hits promoted
	// into.
	w3 := do(s2, "POST", "/v1/sweep", sweep, nil)
	if !bytes.Equal(w3.Body.Bytes(), w1.Body.Bytes()) {
		t.Fatal("memory-tier pass differs")
	}
	if st := cacheStats(t, s2); st.Hits != 4 {
		t.Fatalf("third pass stats %+v, want 4 memory hits", st)
	}
}

// /v1/run's X-Svwd-Cache header distinguishes all three outcomes.
func TestRunCacheHeaderThreeValues(t *testing.T) {
	dir := t.TempDir()
	run := fmt.Sprintf(`{"config":"ssq","bench":"gcc","insts":%d}`, testInsts)

	s1 := newTestServer(Options{StoreDir: dir})
	if h := do(s1, "POST", "/v1/run", run, nil).Header().Get(api.CacheHeader); h != api.CacheMiss {
		t.Fatalf("first run %s=%q, want %q", api.CacheHeader, h, api.CacheMiss)
	}
	if h := do(s1, "POST", "/v1/run", run, nil).Header().Get(api.CacheHeader); h != api.CacheMemory {
		t.Fatalf("repeat run %s=%q, want %q", api.CacheHeader, h, api.CacheMemory)
	}

	s2 := newTestServer(Options{StoreDir: dir})
	if h := do(s2, "POST", "/v1/run", run, nil).Header().Get(api.CacheHeader); h != api.CacheDisk {
		t.Fatalf("restarted run %s=%q, want %q", api.CacheHeader, h, api.CacheDisk)
	}
	if h := do(s2, "POST", "/v1/run", run, nil).Header().Get(api.CacheHeader); h != api.CacheMemory {
		t.Fatalf("promoted run %s=%q, want %q", api.CacheHeader, h, api.CacheMemory)
	}
}

// SSE sweeps report the serving tier per event and count disk hits in the
// done summary.
func TestSweepSSEReportsOrigin(t *testing.T) {
	dir := t.TempDir()
	sweep := sweepBodyFor(`"ssq"`, `"gcc","twolf"`)
	hdr := map[string]string{"Accept": "text/event-stream"}

	s1 := newTestServer(Options{StoreDir: dir})
	if w := do(s1, "POST", "/v1/sweep", sweep, nil); w.Code != http.StatusOK {
		t.Fatalf("warm-up sweep HTTP %d", w.Code)
	}
	s2 := newTestServer(Options{StoreDir: dir})
	w := do(s2, "POST", "/v1/sweep", sweep, hdr)
	if w.Code != http.StatusOK {
		t.Fatalf("SSE sweep HTTP %d: %s", w.Code, w.Body)
	}
	events := parseSSE(t, w.Body.String())
	if len(events) != 3 {
		t.Fatalf("got %d events, want 2 results + done", len(events))
	}
	for i := 0; i < 2; i++ {
		var ev SweepEvent
		if err := json.Unmarshal(events[i].Data, &ev); err != nil {
			t.Fatal(err)
		}
		if !ev.Cached || ev.Origin != api.CacheDisk {
			t.Fatalf("event %d: cached=%v origin=%q, want disk hit", i, ev.Cached, ev.Origin)
		}
	}
	var done SweepDone
	if err := json.Unmarshal(events[2].Data, &done); err != nil {
		t.Fatal(err)
	}
	if done.CacheHits != 2 || done.DiskHits != 2 || done.CacheMisses != 0 {
		t.Fatalf("done %+v, want 2 cache hits, both from disk", done)
	}
}

// Corrupted store entries — truncated or bit-flipped files — are
// detected, skipped and recomputed: the repeated sweep is byte-identical
// and the mangled entries never reach a client.
func TestCorruptStoreEntriesRecomputed(t *testing.T) {
	dir := t.TempDir()
	sweep := sweepBodyFor(`"ssq","ssq+svw"`, `"gcc"`)

	s1 := newTestServer(Options{StoreDir: dir})
	w1 := do(s1, "POST", "/v1/sweep", sweep, nil)
	if w1.Code != http.StatusOK {
		t.Fatalf("first sweep HTTP %d", w1.Code)
	}
	if n := corruptStoreFiles(t, dir); n != 2 {
		t.Fatalf("corrupted %d files, want 2", n)
	}

	s2 := newTestServer(Options{StoreDir: dir})
	w2 := do(s2, "POST", "/v1/sweep", sweep, nil)
	if w2.Code != http.StatusOK {
		t.Fatalf("post-corruption sweep HTTP %d: %s", w2.Code, w2.Body)
	}
	if !bytes.Equal(w2.Body.Bytes(), w1.Body.Bytes()) {
		t.Fatal("recomputed sweep differs from the original")
	}
	if m := s2.Engine().Memo(); m.Misses != 2 {
		t.Fatalf("engine executed %d jobs, want 2 (every corrupt entry recomputed)", m.Misses)
	}
	st := cacheStats(t, s2)
	if st.DiskCorrupt != 2 {
		t.Fatalf("stats %+v, want 2 corrupt entries detected", st)
	}
	// The recomputed entries were written back: a fresh restart is warm
	// again.
	s3 := newTestServer(Options{StoreDir: dir})
	w3 := do(s3, "POST", "/v1/sweep", sweep, nil)
	if !bytes.Equal(w3.Body.Bytes(), w1.Body.Bytes()) {
		t.Fatal("store was not repaired after recompute")
	}
	if m := s3.Engine().Memo(); m.Misses != 0 {
		t.Fatalf("repaired store still executed %d jobs", m.Misses)
	}
}

// A truncated entry (half the file gone — a crashed writer that somehow
// bypassed the atomic rename, or torn storage) is equally recoverable.
func TestTruncatedStoreEntryRecomputed(t *testing.T) {
	dir := t.TempDir()
	run := fmt.Sprintf(`{"config":"ssq","bench":"gcc","insts":%d}`, testInsts)

	s1 := newTestServer(Options{StoreDir: dir})
	w1 := do(s1, "POST", "/v1/run", run, nil)
	paths, err := filepath.Glob(filepath.Join(dir, "*.svw"))
	if err != nil || len(paths) != 1 {
		t.Fatalf("store files: %v, %v", paths, err)
	}
	raw, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(paths[0], raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := newTestServer(Options{StoreDir: dir})
	w2 := do(s2, "POST", "/v1/run", run, nil)
	if h := w2.Header().Get(api.CacheHeader); h != api.CacheMiss {
		t.Fatalf("truncated entry served as %q, want recompute", h)
	}
	if !bytes.Equal(w2.Body.Bytes(), w1.Body.Bytes()) {
		t.Fatal("recomputed run differs from the original")
	}
}

// The api header constants are the wire spellings of store.Origin: the
// two enumerations must never drift, since servers set the header from
// Origin.String() and the coordinator compares it against the constants.
func TestCacheHeaderValuesMatchStoreOrigins(t *testing.T) {
	pairs := []struct {
		origin store.Origin
		want   string
	}{
		{store.OriginMemory, api.CacheMemory},
		{store.OriginDisk, api.CacheDisk},
		{store.OriginPeer, api.CachePeer},
		{store.OriginMiss, api.CacheMiss},
	}
	for _, p := range pairs {
		if got := p.origin.String(); got != p.want {
			t.Errorf("store origin %d spells %q, api constant is %q", p.origin, got, p.want)
		}
	}
}
