// Package server exposes the experiment engine as a JSON-over-HTTP
// simulation service (the svwd daemon):
//
//	GET  /v1/healthz             liveness (503 while draining)
//	GET  /v1/store/{key}         peer-read protocol: one checksummed store entry
//	GET  /v1/configs             configuration registry listing
//	GET  /v1/benches             benchmark kernel listing
//	GET  /v1/stats               cache / engine / admission counters
//	POST /v1/run                 one (config, bench, insts) job
//	POST /v1/sweep               a config × bench matrix; SSE streaming
//	GET  /v1/studies/{study}     ladder | fig8 | ssn | ssbf
//
// One Server owns one engine.Engine, so memoized reuse spans every request
// the process has served. On top of the engine sit the service layers:
//
//   - the shared tiered result store (internal/store) keyed by the
//     engine's memo key (engine.Fingerprint): a bounded in-memory LRU,
//     optionally backed by a persistent disk tier (Options.StoreDir) so a
//     restarted daemon answers previously computed work without touching
//     the engine — hit/disk-hit/miss counters are on /v1/stats and the
//     serving tier is named in the X-Svwd-Cache response header;
//   - an admission gate bounding concurrently admitted engine jobs,
//     refusing excess work with HTTP 429 (cache hits bypass the gate);
//   - per-request context cancellation threaded into the engine, so a
//     disconnected client's queued-but-unstarted jobs are skipped;
//   - request body size limits (HTTP 413 past the cap).
//
// /v1/run and /v1/sweep responses use exactly the `svwsim -json` encoding,
// so service output can be byte-compared against the CLI; study endpoints
// return the figure JSON shapes from internal/sim/print.go. Sweep requests
// with Accept: text/event-stream stream one SSE "result" event per job in
// job-index order — the engine's determinism guarantee carried over the
// wire — followed by a "done" summary event.
package server

import (
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"svwsim/internal/pipeline"
	"svwsim/internal/sim/engine"
	"svwsim/internal/store"
	"svwsim/internal/trace"
)

// Defaults for Options zero values.
const (
	DefaultMaxConcurrentJobs = 256
	DefaultCacheEntries      = 4096
	DefaultMaxBodyBytes      = 1 << 20 // 1 MiB
	DefaultMaxSweepJobs      = 4096
)

// Options configures a Server. The zero value is production-usable: engine
// workers track GOMAXPROCS and the limits fall back to the Default*
// constants.
type Options struct {
	// Workers is the engine worker-pool size (0 = GOMAXPROCS).
	Workers int
	// MaxConcurrentJobs caps engine jobs admitted concurrently across all
	// requests; excess requests get HTTP 429 (0 = DefaultMaxConcurrentJobs,
	// < 0 = unlimited).
	MaxConcurrentJobs int
	// CacheEntries bounds the result store's in-memory tier
	// (0 = DefaultCacheEntries).
	CacheEntries int
	// StoreDir roots the result store's persistent tier; "" disables it
	// (memory-only, the previous behavior). Point a restarted daemon at
	// the same directory and previously computed sweeps are answered from
	// disk with zero engine executions.
	StoreDir string
	// StoreMaxBytes caps the persistent tier; least-recently-accessed
	// entries are GCed past it (0 = store.DefaultDiskMaxBytes).
	StoreMaxBytes int64
	// StoreWriteBehind, when > 0 and StoreDir is set, buffers disk writes
	// in a bounded queue of this many entries drained by a background
	// flusher (one directory sync per batch) instead of writing
	// synchronously per result. Drained by Close; 0 keeps writes
	// synchronous.
	StoreWriteBehind int
	// Peers statically configures the fabric member URLs for store-owner
	// election (the sharded persistent store; see peers.go). Every member
	// list entry is a backend base URL, normally including this server's
	// own (PeerSelf). Empty disables peer reads unless PeerLearn adopts a
	// membership payload.
	Peers []string
	// PeerSelf is this server's own URL within Peers — how it recognizes
	// keys it owns itself.
	PeerSelf string
	// PeerLearn adopts the membership payload (api.PeersHeader /
	// api.PeerSelfHeader) a fronting coordinator attaches to forwarded
	// requests, so backends learn the sharding map from the work itself.
	// Headers are trusted at face value; enable only on trusted networks.
	PeerLearn bool
	// PeerReadTimeout bounds one peer store read
	// (0 = DefaultPeerReadTimeout).
	PeerReadTimeout time.Duration
	// MaxBodyBytes bounds request bodies (0 = DefaultMaxBodyBytes).
	MaxBodyBytes int64
	// MaxSweepJobs bounds one sweep's flattened matrix
	// (0 = DefaultMaxSweepJobs).
	MaxSweepJobs int
	// JobTimeout bounds each engine job's wall-clock time (0 = none).
	JobTimeout time.Duration
	// EngineMemoCap bounds the engine's memo table (0 = unbounded). The LRU
	// cache above it is always bounded; this additionally bounds the
	// engine-level table a long-lived daemon accumulates.
	EngineMemoCap int
	// ClientWeights enables weighted fair admission: per-client shares of
	// the gate, keyed by the api.ClientHeader name (requests without the
	// header are attributed to their remote host). Each client is capped
	// at max(1, cap·w/W) gate units, W being DefaultClientWeight plus the
	// sum of configured weights, so no tenant can starve the others.
	// Empty = the single global gate (the previous behavior).
	ClientWeights map[string]int
	// DefaultClientWeight is the share weight of clients not named in
	// ClientWeights (0 = 1). Ignored when ClientWeights is empty.
	DefaultClientWeight int
	// TraceBufferSize is how many completed request traces GET
	// /debug/traces keeps (0 = trace.DefaultRingSize). The job-bearing
	// endpoints (/v1/run, /v1/sweep, /v1/studies) are always traced;
	// registry and health endpoints are not, so probes cannot flush
	// interesting traces out of the ring.
	TraceBufferSize int
	// SlowLogEnabled turns on structured slow-request logging: a traced
	// request slower than SlowLogThreshold emits one JSON line (with its
	// full span tree) and bumps svw_slow_requests_total{endpoint}. Off by
	// default.
	SlowLogEnabled bool
	// SlowLogThreshold is the slow-request bar; zero logs every traced
	// request (what the CI smoke stage runs with).
	SlowLogThreshold time.Duration
	// SlowLogWriter receives slow-request lines (nil = os.Stderr).
	SlowLogWriter io.Writer
	// DefaultSample, when enabled, is the sampling spec applied to /v1/run,
	// /v1/sweep and study requests that do not carry one of their own
	// (request-level Sample* fields and the ?sample= study parameter always
	// win). The zero value keeps every unmarked request exact.
	DefaultSample pipeline.SampleSpec
}

// Server is the svwd HTTP service: one shared engine plus the store and
// admission layers. Create with New; it is safe for concurrent use.
type Server struct {
	eng          *engine.Engine
	store        *store.Store
	gate         *gate
	metrics      *serverMetrics
	tracer       *trace.Tracer
	maxBody      int64
	maxSweepJobs int
	start        time.Time
	draining     atomic.Bool

	// Sharded-store state (peers.go): the membership view for store-owner
	// election and the client peer reads go out on.
	peers       *peerSet
	peerLearn   bool
	peerTimeout time.Duration
	peerClient  *http.Client

	// defaultSample is applied to requests that carry no sampling spec of
	// their own (Options.DefaultSample).
	defaultSample pipeline.SampleSpec
}

// New builds a Server from opts (see Options for zero-value defaults). It
// fails when a configured StoreDir cannot be opened or DefaultSample is
// incoherent.
func New(opts Options) (*Server, error) {
	if err := opts.DefaultSample.Validate(); err != nil {
		return nil, fmt.Errorf("default sample spec: %w", err)
	}
	maxJobs := opts.MaxConcurrentJobs
	if maxJobs == 0 {
		maxJobs = DefaultMaxConcurrentJobs
	}
	if maxJobs < 0 {
		maxJobs = 0 // gate treats 0 as unlimited
	}
	cacheEntries := opts.CacheEntries
	if cacheEntries <= 0 {
		cacheEntries = DefaultCacheEntries
	}
	maxBody := opts.MaxBodyBytes
	if maxBody <= 0 {
		maxBody = DefaultMaxBodyBytes
	}
	maxSweep := opts.MaxSweepJobs
	if maxSweep <= 0 {
		maxSweep = DefaultMaxSweepJobs
	}
	st, err := store.Open(store.Options{
		MemoryEntries: cacheEntries,
		Dir:           opts.StoreDir,
		MaxBytes:      opts.StoreMaxBytes,
		WriteBehind:   opts.StoreWriteBehind,
	})
	if err != nil {
		return nil, err
	}
	eng := engine.New(opts.Workers)
	eng.SetTimeout(opts.JobTimeout)
	eng.SetMemoCap(opts.EngineMemoCap)
	g := newGate(maxJobs)
	g.setWeights(opts.ClientWeights, opts.DefaultClientWeight)
	peerTimeout := opts.PeerReadTimeout
	if peerTimeout <= 0 {
		peerTimeout = DefaultPeerReadTimeout
	}
	s := &Server{
		eng:           eng,
		store:         st,
		gate:          g,
		tracer:        trace.NewTracer(opts.TraceBufferSize),
		maxBody:       maxBody,
		maxSweepJobs:  maxSweep,
		start:         time.Now(),
		peers:         &peerSet{},
		peerLearn:     opts.PeerLearn,
		peerTimeout:   peerTimeout,
		peerClient:    &http.Client{},
		defaultSample: opts.DefaultSample,
	}
	s.peers.set(opts.Peers, opts.PeerSelf)
	// Sampled runs probe the shared store for warm-state checkpoints —
	// local tiers first, then the key's rendezvous owner over the peer-read
	// path — so one fast-forward serves the whole fabric.
	eng.SetCheckpointStore(serverCheckpoints{s})
	s.metrics = newServerMetrics(s, opts.ClientWeights)
	if opts.SlowLogEnabled {
		s.tracer.Slow = &trace.SlowLog{
			Threshold: opts.SlowLogThreshold,
			W:         opts.SlowLogWriter,
			OnSlow:    s.metrics.onSlow,
		}
	}
	return s, nil
}

// Engine returns the server's shared engine (for embedding svwd-style
// serving next to direct sweeps in the same process).
func (s *Server) Engine() *engine.Engine { return s.eng }

// Close releases the server's background resources: the store's
// write-behind queue is drained (every completed result lands on disk)
// and the peer-read client's idle connections are closed. Call it on
// graceful shutdown, after the HTTP server has stopped accepting work.
func (s *Server) Close() error {
	s.peerClient.CloseIdleConnections()
	return s.store.Close()
}

// SetDraining marks the server as draining: /v1/healthz flips to 503 so
// load balancers stop routing to the process while in-flight requests
// finish. It does not reject other traffic — http.Server.Shutdown handles
// connection teardown.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// Handler returns the service's routing handler, suitable for http.Server.
// Every /v1 route is instrumented with the shared request counter and
// latency histogram; the job-bearing routes (run, sweep, studies) are
// additionally traced, with the completed-trace ring on GET /debug/traces
// and the metrics registry on GET /metrics.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	handle := func(pattern, endpoint string, fn http.HandlerFunc) {
		mux.Handle(pattern, s.metrics.http.Wrap(endpoint, fn))
	}
	// traced routes open a request trace inside the metrics wrapper, so
	// the recorded spans cover exactly what the latency histogram times.
	traced := func(pattern, endpoint string, fn http.HandlerFunc) {
		mux.Handle(pattern, s.metrics.http.Wrap(endpoint, s.tracer.Wrap(endpoint, fn)))
	}
	handle("GET /v1/healthz", "/v1/healthz", s.handleHealthz)
	handle("GET /v1/store/{key}", "/v1/store", s.handleStoreGet)
	handle("GET /v1/configs", "/v1/configs", s.handleConfigs)
	handle("GET /v1/benches", "/v1/benches", s.handleBenches)
	handle("GET /v1/stats", "/v1/stats", s.handleStats)
	traced("POST /v1/run", "/v1/run", s.handleRun)
	traced("POST /v1/sweep", "/v1/sweep", s.handleSweep)
	traced("GET /v1/studies/{study}", "/v1/studies", s.handleStudy)
	mux.Handle("GET /metrics", s.metrics.reg.Handler())
	mux.Handle("GET /debug/traces", s.tracer.TracesHandler())
	return mux
}
