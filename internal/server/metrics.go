package server

import (
	"sort"

	"svwsim/internal/api"
	"svwsim/internal/metrics"
)

// serverMetrics is svwd's scrape surface (GET /metrics): the per-stage
// latency histograms the handlers feed directly, plus func-backed views
// over the store, gate and engine counters the daemon already keeps —
// one source of truth, two read paths (/v1/stats JSON and Prometheus
// text).
type serverMetrics struct {
	reg  *metrics.Registry
	http *metrics.HTTP

	// Per-stage latency: where a request's time actually goes. store_probe
	// covers store lookups, store_peer owner-over-HTTP fetches, gate_wait
	// the admission acquire, engine_run the simulation work, encode result
	// marshalling + write-out.
	storeProbe *metrics.Histogram
	storePeer  *metrics.Histogram
	gateWait   *metrics.Histogram
	engineRun  *metrics.Histogram
	encode     *metrics.Histogram

	// slow counts requests past the -slow-ms threshold per traced
	// endpoint (the trace subsystem's OnSlow hook feeds it).
	slow map[string]*metrics.Counter
}

// onSlow bumps svw_slow_requests_total for one slow-logged request.
func (m *serverMetrics) onSlow(endpoint string) {
	if c, ok := m.slow[endpoint]; ok {
		c.Inc()
	}
}

// newServerMetrics builds the registry over a fully constructed Server.
// clientWeights (may be nil) names the tenants that get per-client gate
// occupancy gauges.
func newServerMetrics(s *Server, clientWeights map[string]int) *serverMetrics {
	reg := metrics.NewRegistry()
	m := &serverMetrics{reg: reg, http: metrics.NewHTTP(reg)}

	stage := func(name string) *metrics.Histogram {
		return reg.Histogram("svw_stage_seconds",
			"Time spent per request-serving stage.", metrics.LatencyBuckets(),
			metrics.Label{Key: "stage", Value: name})
	}
	m.storeProbe = stage("store_probe")
	m.storePeer = stage("store_peer")
	m.gateWait = stage("gate_wait")
	m.engineRun = stage("engine_run")
	m.encode = stage("encode")

	// Registered eagerly for the traced endpoints so the series scrape as
	// 0 before the first slow request, like every other counter here.
	m.slow = make(map[string]*metrics.Counter)
	for _, ep := range []string{"/v1/run", "/v1/sweep", "/v1/studies"} {
		m.slow[ep] = reg.Counter("svw_slow_requests_total",
			"Requests slower than the -slow-ms threshold, by endpoint.",
			metrics.Label{Key: "endpoint", Value: ep})
	}

	reg.GaugeFunc("svw_gate_in_use", "Admission gate units currently held.",
		func() float64 { return float64(s.gate.stats().InUse) })
	reg.GaugeFunc("svw_gate_capacity", "Admission gate capacity (0 = unlimited).",
		func() float64 { return float64(s.gate.stats().Capacity) })
	reg.CounterFunc("svw_gate_rejected_total", "Requests refused with HTTP 429.",
		func() uint64 { return s.gate.stats().Rejected })

	// Per-tenant occupancy for the configured (named) clients, so a
	// dashboard shows which tenant is eating its share. Sorted for a
	// deterministic scrape order.
	names := make([]string, 0, len(clientWeights))
	for name := range clientWeights {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		name := name
		reg.GaugeFunc("svw_gate_client_in_use",
			"Admission gate units held per configured client.",
			func() float64 { return float64(s.gate.clientInUse(name)) },
			metrics.Label{Key: "client", Value: name})
	}

	tier := func(name string, fn func() uint64) {
		reg.CounterFunc("svw_store_requests_total",
			"Served results by store tier (miss = freshly computed).", fn,
			metrics.Label{Key: "tier", Value: name})
	}
	tier(api.CacheMemory, func() uint64 { return s.store.Stats().Hits })
	tier(api.CacheDisk, func() uint64 { return s.store.Stats().DiskHits })
	tier(api.CachePeer, func() uint64 { return s.store.Stats().PeerHits })
	tier(api.CacheMiss, func() uint64 { return s.store.Stats().Misses })
	reg.GaugeFunc("svw_store_entries", "Result store memory-tier entries.",
		func() float64 { return float64(s.store.Stats().Entries) })
	reg.GaugeFunc("svw_store_disk_bytes", "Result store disk-tier bytes.",
		func() float64 { return float64(s.store.Stats().Disk.Bytes) })
	reg.CounterFunc("svw_store_evictions_total", "Result store memory-tier evictions.",
		func() uint64 { return s.store.Stats().Evictions })
	reg.CounterFunc("svw_store_coalesced_total",
		"Singleflight waits: requests that shared an in-flight identical computation.",
		func() uint64 { return s.store.Stats().Coalesced })
	reg.GaugeFunc("svw_store_writebehind_depth",
		"Write-behind queue entries not yet landed on disk.",
		func() float64 { return float64(s.store.Stats().WriteBehind.Depth) })
	reg.CounterFunc("svw_store_writebehind_flushes_total",
		"Write-behind batches flushed (one directory sync each).",
		func() uint64 { return s.store.Stats().WriteBehind.Flushes })
	reg.CounterFunc("svw_store_writebehind_drops_total",
		"Disk writes dropped by a full write-behind queue.",
		func() uint64 { return s.store.Stats().WriteBehind.Drops })

	reg.CounterFunc("svw_engine_memo_hits_total", "Engine memo-table hits.",
		func() uint64 { return s.eng.Memo().Hits })
	reg.CounterFunc("svw_engine_memo_misses_total", "Engine memo-table misses (executions).",
		func() uint64 { return s.eng.Memo().Misses })
	reg.GaugeFunc("svw_engine_memo_entries", "Engine memo-table entries.",
		func() float64 { return float64(s.eng.MemoSize()) })

	return m
}
