package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"svwsim/internal/api"
	"svwsim/internal/trace"
)

// fetchTrace looks one trace up on the server's /debug/traces by ID.
func fetchTrace(t *testing.T, s *Server, id string) api.TraceJSON {
	t.Helper()
	w := do(s, http.MethodGet, "/debug/traces?id="+id, "", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("GET /debug/traces?id=%s: HTTP %d: %s", id, w.Code, w.Body.String())
	}
	var tj api.TraceJSON
	if err := json.Unmarshal(w.Body.Bytes(), &tj); err != nil {
		t.Fatalf("decoding trace: %v", err)
	}
	return tj
}

func spanNames(tj api.TraceJSON) map[string]int {
	names := make(map[string]int)
	for _, sp := range tj.Spans {
		names[sp.Name]++
	}
	return names
}

func findSpan(tj api.TraceJSON, name string) (api.SpanJSON, bool) {
	for _, sp := range tj.Spans {
		if sp.Name == name {
			return sp, true
		}
	}
	return api.SpanJSON{}, false
}

func TestRunTraceIDGeneratedAndEchoed(t *testing.T) {
	s := newTestServer(Options{})
	body := fmt.Sprintf(`{"config":"ssq","bench":"gcc","insts":%d}`, testInsts)
	w := do(s, http.MethodPost, "/v1/run", body, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("run: HTTP %d: %s", w.Code, w.Body.String())
	}
	id := w.Header().Get(api.TraceHeader)
	if !trace.ValidID(id) {
		t.Fatalf("no generated trace ID on response: %q", id)
	}
	tj := fetchTrace(t, s, id)
	if tj.Endpoint != "/v1/run" || !tj.Done {
		t.Fatalf("trace wrong: endpoint=%s done=%v", tj.Endpoint, tj.Done)
	}
}

func TestRunTraceSpansCoverStages(t *testing.T) {
	s := newTestServer(Options{})
	body := fmt.Sprintf(`{"config":"ssq","bench":"gcc","insts":%d}`, testInsts)
	hdr := map[string]string{api.TraceHeader: "run-trace-1"}
	w := do(s, http.MethodPost, "/v1/run", body, hdr)
	if w.Code != http.StatusOK {
		t.Fatalf("run: HTTP %d: %s", w.Code, w.Body.String())
	}
	if got := w.Header().Get(api.TraceHeader); got != "run-trace-1" {
		t.Fatalf("client ID not echoed: %q", got)
	}
	tj := fetchTrace(t, s, "run-trace-1")
	names := spanNames(tj)
	for _, want := range []string{"store_probe", "gate_wait", "engine_run", "encode", "engine_job"} {
		if names[want] == 0 {
			t.Fatalf("missing %s span; have %v", want, names)
		}
	}
	// A cold store: the probe missed, the engine job is a memo miss.
	if sp, _ := findSpan(tj, "store_probe"); sp.Attrs["tier"] != "miss" {
		t.Fatalf("store_probe tier = %q, want miss", sp.Attrs["tier"])
	}
	if sp, _ := findSpan(tj, "engine_job"); sp.Attrs["memo"] != "miss" {
		t.Fatalf("engine_job memo = %q, want miss", sp.Attrs["memo"])
	}

	// Same job again: the store serves it — memory-tier probe, no engine.
	hdr[api.TraceHeader] = "run-trace-2"
	if w := do(s, http.MethodPost, "/v1/run", body, hdr); w.Code != http.StatusOK {
		t.Fatalf("cached run: HTTP %d", w.Code)
	}
	tj = fetchTrace(t, s, "run-trace-2")
	if sp, ok := findSpan(tj, "store_probe"); !ok || sp.Attrs["tier"] != "memory" {
		t.Fatalf("cached store_probe tier = %v", sp.Attrs)
	}
	if names := spanNames(tj); names["engine_run"] != 0 {
		t.Fatalf("cache hit still ran the engine: %v", names)
	}
}

func TestSweepTraceSpans(t *testing.T) {
	s := newTestServer(Options{})
	body := fmt.Sprintf(`{"configs":["ssq","ssq+svw"],"benches":["gcc"],"insts":%d}`, testInsts)
	hdr := map[string]string{api.TraceHeader: "sweep-trace-1"}
	w := do(s, http.MethodPost, "/v1/sweep", body, hdr)
	if w.Code != http.StatusOK {
		t.Fatalf("sweep: HTTP %d: %s", w.Code, w.Body.String())
	}
	tj := fetchTrace(t, s, "sweep-trace-1")
	names := spanNames(tj)
	for _, want := range []string{"store_probe", "gate_wait", "engine_run", "encode"} {
		if names[want] != 1 {
			t.Fatalf("span %s count = %d, want 1 (have %v)", want, names[want], names)
		}
	}
	if names["engine_job"] != 2 {
		t.Fatalf("engine_job spans = %d, want 2", names["engine_job"])
	}
	sp, _ := findSpan(tj, "store_probe")
	if sp.Attrs["jobs"] != "2" || sp.Attrs["misses"] != "2" {
		t.Fatalf("store_probe attrs = %v", sp.Attrs)
	}
}

func TestSweepSSETraceSpans(t *testing.T) {
	s := newTestServer(Options{})
	body := fmt.Sprintf(`{"configs":["ssq"],"benches":["gcc"],"insts":%d}`, testInsts)
	hdr := map[string]string{
		api.TraceHeader: "sse-trace-1",
		"Accept":        "text/event-stream",
	}
	w := do(s, http.MethodPost, "/v1/sweep", body, hdr)
	if w.Code != http.StatusOK {
		t.Fatalf("SSE sweep: HTTP %d: %s", w.Code, w.Body.String())
	}
	if !strings.Contains(w.Body.String(), "event: done") {
		t.Fatalf("SSE stream truncated: %s", w.Body.String())
	}
	tj := fetchTrace(t, s, "sse-trace-1")
	names := spanNames(tj)
	if names["store_probe"] != 1 || names["gate_wait"] != 1 || names["engine_run"] != 1 {
		t.Fatalf("SSE sweep spans: %v", names)
	}
}

func TestUntracedEndpointsDontFlushRing(t *testing.T) {
	s := newTestServer(Options{TraceBufferSize: 2})
	body := fmt.Sprintf(`{"config":"ssq","bench":"gcc","insts":%d}`, testInsts)
	hdr := map[string]string{api.TraceHeader: "keep-me"}
	if w := do(s, http.MethodPost, "/v1/run", body, hdr); w.Code != http.StatusOK {
		t.Fatalf("run: HTTP %d", w.Code)
	}
	// Health probes and registry reads must not occupy ring slots.
	for i := 0; i < 10; i++ {
		do(s, http.MethodGet, "/v1/healthz", "", nil)
		do(s, http.MethodGet, "/v1/configs", "", nil)
		do(s, http.MethodGet, "/v1/stats", "", nil)
	}
	if s.tracer.Ring.Get("keep-me") == nil {
		t.Fatal("untraced endpoints evicted a traced request from the ring")
	}
}

func TestSlowLogAndCounter(t *testing.T) {
	var buf bytes.Buffer
	s := newTestServer(Options{
		SlowLogEnabled:   true,
		SlowLogThreshold: 0, // log every traced request
		SlowLogWriter:    &buf,
	})
	body := fmt.Sprintf(`{"config":"ssq","bench":"gcc","insts":%d}`, testInsts)
	hdr := map[string]string{api.TraceHeader: "slow-run-1"}
	if w := do(s, http.MethodPost, "/v1/run", body, hdr); w.Code != http.StatusOK {
		t.Fatalf("run: HTTP %d", w.Code)
	}

	line := buf.String()
	if strings.Count(line, "\n") != 1 {
		t.Fatalf("want exactly one log line, got %q", line)
	}
	var got struct {
		Msg      string        `json:"msg"`
		TraceID  string        `json:"trace_id"`
		Endpoint string        `json:"endpoint"`
		Trace    api.TraceJSON `json:"trace"`
	}
	if err := json.Unmarshal([]byte(line), &got); err != nil {
		t.Fatalf("slow line not JSON: %v\n%s", err, line)
	}
	if got.Msg != "slow_request" || got.TraceID != "slow-run-1" || got.Endpoint != "/v1/run" {
		t.Fatalf("slow line fields: %+v", got)
	}
	if len(got.Trace.Spans) == 0 {
		t.Fatal("slow line carries no span tree")
	}

	// The counter on /metrics moved with it.
	w := do(s, http.MethodGet, "/metrics", "", nil)
	if !strings.Contains(w.Body.String(), `svw_slow_requests_total{endpoint="/v1/run"} 1`) {
		t.Fatalf("svw_slow_requests_total not bumped:\n%s", w.Body.String())
	}
}

func TestSlowLogDisabledByDefault(t *testing.T) {
	s := newTestServer(Options{})
	if s.tracer.Slow != nil {
		t.Fatal("zero-value Options enabled slow logging")
	}
	// The eager counter series still scrapes as 0.
	w := do(s, http.MethodGet, "/metrics", "", nil)
	if !strings.Contains(w.Body.String(), `svw_slow_requests_total{endpoint="/v1/run"} 0`) {
		t.Fatalf("slow counter series not pre-registered:\n%s", w.Body.String())
	}
}

func TestSlowLogThresholdFilters(t *testing.T) {
	var buf bytes.Buffer
	s := newTestServer(Options{
		SlowLogEnabled:   true,
		SlowLogThreshold: time.Hour, // nothing is that slow
		SlowLogWriter:    &buf,
	})
	body := fmt.Sprintf(`{"config":"ssq","bench":"gcc","insts":%d}`, testInsts)
	if w := do(s, http.MethodPost, "/v1/run", body, nil); w.Code != http.StatusOK {
		t.Fatalf("run: HTTP %d", w.Code)
	}
	if buf.Len() != 0 {
		t.Fatalf("sub-threshold request logged: %q", buf.String())
	}
}

func TestStudyTraceSpans(t *testing.T) {
	s := newTestServer(Options{})
	hdr := map[string]string{api.TraceHeader: "study-trace-1"}
	w := do(s, http.MethodGet, "/v1/studies/ssbf?benches=gcc&insts=4000", "", hdr)
	if w.Code != http.StatusOK {
		t.Fatalf("study: HTTP %d: %s", w.Code, w.Body.String())
	}
	tj := fetchTrace(t, s, "study-trace-1")
	names := spanNames(tj)
	for _, want := range []string{"store_probe", "gate_wait", "engine_run", "encode"} {
		if names[want] == 0 {
			t.Fatalf("study missing %s span: %v", want, names)
		}
	}
	if tj.Endpoint != "/v1/studies" {
		t.Fatalf("study endpoint label = %q", tj.Endpoint)
	}
}

func TestDebugTracesListsMostRecentFirst(t *testing.T) {
	s := newTestServer(Options{})
	body := fmt.Sprintf(`{"config":"ssq","bench":"gcc","insts":%d}`, testInsts)
	for i := 0; i < 3; i++ {
		hdr := map[string]string{api.TraceHeader: fmt.Sprintf("order-%d", i)}
		if w := do(s, http.MethodPost, "/v1/run", body, hdr); w.Code != http.StatusOK {
			t.Fatalf("run %d: HTTP %d", i, w.Code)
		}
	}
	w := do(s, http.MethodGet, "/debug/traces", "", nil)
	var resp api.TracesResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decoding traces: %v", err)
	}
	if len(resp.Traces) != 3 || resp.Traces[0].TraceID != "order-2" {
		t.Fatalf("traces not most-recent-first: %+v", resp.Traces)
	}
}
