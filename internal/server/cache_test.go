package server

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

func TestLRUHitMissCounters(t *testing.T) {
	c := newLRU(4)
	if _, ok := c.get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.put("a", []byte("A"))
	v, ok := c.get("a")
	if !ok || !bytes.Equal(v, []byte("A")) {
		t.Fatalf("get a = %q, %v", v, ok)
	}
	// get alone never counts: handlers account served work explicitly, so
	// probes on rejected requests don't skew the rates.
	if st := c.stats(); st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("stats %+v, want counters untouched by get", st)
	}
	c.account(1, 2)
	st := c.stats()
	if st.Hits != 1 || st.Misses != 2 || st.Entries != 1 {
		t.Fatalf("stats %+v, want 1 hit / 2 misses / 1 entry", st)
	}
}

func TestLRUEvictsLeastRecentlyUsed(t *testing.T) {
	c := newLRU(2)
	c.put("a", []byte("A"))
	c.put("b", []byte("B"))
	c.get("a")              // refresh a: b is now the LRU entry
	c.put("c", []byte("C")) // evicts b
	if _, ok := c.get("b"); ok {
		t.Fatal("b survived, want it evicted as LRU")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("a was evicted despite being recently used")
	}
	if _, ok := c.get("c"); !ok {
		t.Fatal("c missing")
	}
	st := c.stats()
	if st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats %+v, want 1 eviction / 2 entries", st)
	}
}

func TestLRUPutRefreshesExisting(t *testing.T) {
	c := newLRU(2)
	c.put("a", []byte("A1"))
	c.put("a", []byte("A2"))
	v, _ := c.get("a")
	if !bytes.Equal(v, []byte("A2")) {
		t.Fatalf("got %q, want refreshed value", v)
	}
	if st := c.stats(); st.Entries != 1 {
		t.Fatalf("duplicate put grew the cache: %+v", st)
	}
}

func TestLRUConcurrent(t *testing.T) {
	c := newLRU(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", i%32)
				c.put(key, []byte(key))
				if v, ok := c.get(key); ok && !bytes.Equal(v, []byte(key)) {
					t.Errorf("key %s returned %q", key, v)
				}
			}
		}(g)
	}
	wg.Wait()
	if st := c.stats(); st.Entries > 16 {
		t.Fatalf("cache exceeded capacity: %+v", st)
	}
}
