package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

// The cold-miss dogpile regression suite: N concurrent identical cold
// requests must produce exactly one engine execution, with the other N-1
// coalescing on the leader's flight (store.GetOrCompute / BeginFlight).

// TestRunDogpile fires N identical cold /v1/run requests concurrently.
func TestRunDogpile(t *testing.T) {
	s := newTestServer(Options{})
	const n = 6
	body := fmt.Sprintf(`{"config":"base","bench":"gcc","insts":%d}`, testInsts)
	results := make([]*httptest.ResponseRecorder, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = do(s, "POST", "/v1/run", body, nil)
		}(i)
	}
	wg.Wait()

	want := directRunBody(t, "base", "gcc")
	for i, w := range results {
		if w.Code != http.StatusOK {
			t.Fatalf("request %d: HTTP %d: %s", i, w.Code, w.Body)
		}
		if !bytes.Equal(w.Body.Bytes(), want) {
			t.Fatalf("request %d: body differs from the svwsim -json encoding", i)
		}
	}
	if m := s.eng.Memo(); m.Misses != 1 {
		t.Errorf("engine executed %d times for %d identical requests, want 1", m.Misses, n)
	}
	st := s.store.Stats()
	if st.Misses != 1 {
		t.Errorf("store misses = %d, want 1 (only the leader computes)", st.Misses)
	}
	// Each non-leader either coalesced on the flight or (having arrived
	// after the leader finished) hit the store at its probe; both together
	// must cover all n-1, and with a simultaneous launch against a
	// millisecond-scale simulation at least one coalesces.
	if st.Coalesced+st.Hits != n-1 {
		t.Errorf("coalesced=%d hits=%d, want their sum = %d", st.Coalesced, st.Hits, n-1)
	}
	if st.Coalesced == 0 {
		t.Errorf("no request coalesced across %d concurrent identical misses", n)
	}
}

// TestSweepDogpile is the same regression for whole sweep matrices: the
// per-cell flights must coalesce across concurrent identical sweeps.
func TestSweepDogpile(t *testing.T) {
	s := newTestServer(Options{})
	configs := []string{"base", "ssq+svw"}
	benches := []string{"gcc", "twolf"}
	cells := len(configs) * len(benches)
	body := fmt.Sprintf(`{"configs":["base","ssq+svw"],"benches":["gcc","twolf"],"insts":%d}`, testInsts)

	const n = 4
	results := make([]*httptest.ResponseRecorder, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = do(s, "POST", "/v1/sweep", body, nil)
		}(i)
	}
	wg.Wait()

	var want []byte
	for _, c := range configs {
		for _, b := range benches {
			want = append(want, directRunBody(t, c, b)...)
		}
	}
	for i, w := range results {
		if w.Code != http.StatusOK {
			t.Fatalf("sweep %d: HTTP %d: %s", i, w.Code, w.Body)
		}
		if !bytes.Equal(w.Body.Bytes(), want) {
			t.Fatalf("sweep %d: body differs from the svwsim -json encoding", i)
		}
	}
	if m := s.eng.Memo(); m.Misses != uint64(cells) {
		t.Errorf("engine executed %d jobs for %d identical sweeps, want %d (one per cell)",
			m.Misses, n, cells)
	}
	st := s.store.Stats()
	if st.Misses != uint64(cells) {
		t.Errorf("store misses = %d, want %d (each cell computed by one leader)", st.Misses, cells)
	}
	if got, wantSum := st.Coalesced+st.Hits, uint64((n-1)*cells); got != wantSum {
		t.Errorf("coalesced=%d hits=%d, want their sum = %d", st.Coalesced, st.Hits, wantSum)
	}
	if st.Coalesced == 0 {
		t.Errorf("no cell coalesced across %d concurrent identical sweeps", n)
	}
}

// TestOverlappingSweepsNoDeadlock crosses two concurrent sweeps that each
// own cells the other coalesces on — the shape that would deadlock if a
// sweep waited on foreign flights before publishing its own results. One
// side streams (owned flights complete in the progress callback), the
// other buffers (owned flights complete before the assembly wait loop).
func TestOverlappingSweepsNoDeadlock(t *testing.T) {
	s := newTestServer(Options{})
	mkBody := func(configs string) string {
		return fmt.Sprintf(`{"configs":[%s],"benches":["gcc","twolf"],"insts":%d}`, configs, testInsts)
	}
	var wg sync.WaitGroup
	var buffered, streamed *httptest.ResponseRecorder
	wg.Add(2)
	go func() {
		defer wg.Done()
		buffered = do(s, "POST", "/v1/sweep", mkBody(`"base","ssq"`), nil)
	}()
	go func() {
		defer wg.Done()
		streamed = do(s, "POST", "/v1/sweep", mkBody(`"ssq","base"`),
			map[string]string{"Accept": "text/event-stream"})
	}()
	wg.Wait()

	if buffered.Code != http.StatusOK {
		t.Fatalf("buffered sweep: HTTP %d: %s", buffered.Code, buffered.Body)
	}
	var want []byte
	for _, c := range []string{"base", "ssq"} {
		for _, b := range []string{"gcc", "twolf"} {
			want = append(want, directRunBody(t, c, b)...)
		}
	}
	if !bytes.Equal(buffered.Body.Bytes(), want) {
		t.Fatal("buffered sweep body differs from the svwsim -json encoding")
	}
	if streamed.Code != http.StatusOK {
		t.Fatalf("streamed sweep: HTTP %d: %s", streamed.Code, streamed.Body)
	}
	events := parseSSE(t, streamed.Body.String())
	if len(events) != 5 { // 4 results + done
		t.Fatalf("streamed sweep emitted %d events, want 5", len(events))
	}
	if events[len(events)-1].Name != "done" {
		t.Fatalf("streamed sweep's last event is %q, want done", events[len(events)-1].Name)
	}
	// Cross-check the streamed payloads against the reference bodies in
	// the stream's own (ssq-major) order. SSE transport compacts the
	// embedded JSON, so compare compacted forms.
	compact := func(raw []byte) string {
		var buf bytes.Buffer
		if err := json.Compact(&buf, raw); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	i := 0
	for _, c := range []string{"ssq", "base"} {
		for _, b := range []string{"gcc", "twolf"} {
			var ev SweepEvent
			if err := json.Unmarshal(events[i].Data, &ev); err != nil {
				t.Fatalf("event %d: %v", i, err)
			}
			if ev.Error != "" {
				t.Fatalf("event %d (%s/%s): error %q", i, c, b, ev.Error)
			}
			if compact([]byte(ev.Result)) != compact(directRunBody(t, c, b)) {
				t.Fatalf("event %d (%s/%s): payload differs from reference", i, c, b)
			}
			i++
		}
	}
}
