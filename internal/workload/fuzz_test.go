package workload_test

import (
	"testing"

	"svwsim/internal/emu"
	"svwsim/internal/pipeline"
	"svwsim/internal/workload"
)

// FuzzWorkloadProfile builds randomized (but structurally valid) kernel
// profiles and runs them through the aggressively speculating NLQ+SVW
// machine, asserting the pipeline's committed instruction stream is exactly
// the in-order oracle's: same sequence numbers, same PCs, and a committed
// memory image byte-identical to a pure functional execution. Any flush,
// forwarding, elimination, or filtering bug that commits a wrong-path or
// wrong-value instruction diverges one of the three.
func FuzzWorkloadProfile(f *testing.F) {
	f.Add(int64(1), uint8(12), uint8(3), uint8(2), uint8(2), uint8(1), uint8(2),
		uint8(2), uint8(1), uint8(2), uint8(40), uint8(5), false)
	f.Add(int64(77), uint8(24), uint8(6), uint8(0), uint8(3), uint8(3), uint8(0),
		uint8(0), uint8(3), uint8(1), uint8(70), uint8(9), true)
	f.Add(int64(-9), uint8(1), uint8(0), uint8(0), uint8(0), uint8(0), uint8(0),
		uint8(0), uint8(0), uint8(0), uint8(0), uint8(0), false)
	f.Fuzz(func(t *testing.T, seed int64, blocks,
		wHash, wFwd, wReload, wBypass, wChase, wStream, wSwap, wCall,
		ambig, noise uint8, useMul bool) {
		p := workload.Profile{
			Name: "fuzz", Seed: seed,
			Blocks: 1 + int(blocks%24),
			W: workload.Weights{
				Hash:   int(wHash % 8),
				Fwd:    int(wFwd % 4),
				Reload: int(wReload % 4),
				Bypass: int(wBypass % 4),
				Chase:  int(wChase % 4),
				Stream: int(wStream % 4),
				Swap:   int(wSwap % 3),
				ALU:    1, // keeps the weight total positive
				Call:   int(wCall % 4),
				Late:   int((wHash ^ wFwd) % 3),
			},
			HashEntries: 512 << (blocks % 2),
			SwapEntries: 128 << (wSwap % 3),
			ChaseNodes:  128 << (wChase % 3),
			CallSaves:   1 + int(wCall%6),
			FwdDist:     int(wFwd % 6),
			FwdAmbigPct: int(ambig % 80),

			BranchNoisePct: int(noise % 10),
			UseMul:         useMul,
		}
		prog := workload.Build(p)

		cfg := pipeline.Wide8Config()
		cfg.Name = "fuzz-nlq+svw"
		cfg.LSU = pipeline.LSUNLQ
		cfg.LQSearch = false
		cfg.StoreIssue = 2
		cfg.Rex = pipeline.RexReal
		cfg.SVW.Enabled = true
		cfg.SVW.UpdateOnForward = true
		cfg.WarmupInsts = 0
		cfg.MaxInsts = 2_500
		cfg.MaxCycles = 2_000_000

		type commit struct{ seq, pc uint64 }
		var got []commit
		cfg.TraceCommit = func(r pipeline.TraceRecord) {
			got = append(got, commit{r.Seq, r.PC})
		}
		c := pipeline.New(cfg, prog)
		if err := c.Run(); err != nil {
			t.Fatalf("pipeline: %v", err)
		}

		// Replay the oracle and demand stream equality.
		ref := emu.New(prog.NewImage(), prog.Entry)
		for i, cm := range got {
			d, err := ref.Step()
			if err != nil {
				t.Fatalf("oracle step %d: %v", i, err)
			}
			if d.Seq != cm.seq || d.PC != cm.pc {
				t.Fatalf("commit %d: pipeline committed seq=%d pc=%#x, oracle has seq=%d pc=%#x",
					i, cm.seq, cm.pc, d.Seq, d.PC)
			}
		}
		if addr, diff := c.CommittedMem().Diff(ref.Mem); diff {
			t.Fatalf("committed memory diverges from oracle at %#x", addr)
		}
	})
}
