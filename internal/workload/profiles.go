package workload

import "svwsim/internal/prog"

// The 16 kernel profiles standing in for the SPEC2000 integer benchmarks of
// the paper's evaluation (§4). Parameters follow each benchmark's known
// character and the behaviours the paper's figures attribute to it — e.g.
// vortex: call-heavy, the suite's highest store-load forwarding and RLE
// elimination rates with high baseline IPC; twolf: the most aggressive load
// speculation (highest NLQls re-execution rate); mcf: pointer-chasing and
// memory-bound; parser: tight store/load interleavings that expose the
// re-execution serialization cost.
//
// Tuning targets (paper figures, shapes not absolutes):
//   - NLQls marking: avg ~7%, most <10%, twolf highest (~20%), gap lowest.
//   - Store-to-load forwarding: ~10–20% of loads ("over 80% of loads never
//     read from older stores").
//   - RLE elimination: avg ~28%, vortex highest (~42%).
//   - Mis-speculations (actual collisions) far rarer than marking.
var profiles = map[string]Profile{
	"bzip2": {
		Name: "bzip2", Seed: 101, Blocks: 56,
		W:           Weights{Stream: 36, ALU: 18, Hash: 12, Fwd: 6, Reload: 12, Late: 1},
		HashEntries: 1024, SwapEntries: 1024, CallSaves: 4, FwdDist: 4, FwdAmbigPct: 40,
		BranchNoisePct: 2, UseMul: true,
	},
	"crafty": {
		Name: "crafty", Seed: 102, Blocks: 72,
		W:           Weights{Hash: 18, Call: 6, Reload: 9, Bypass: 3, ALU: 9, Fwd: 3, Late: 1},
		HashEntries: 1024, SwapEntries: 1024, CallSaves: 1, CallBodyLen: 16, FwdDist: 4, FwdAmbigPct: 50,
		BranchNoisePct: 4, UseMul: true,
	},
	"eon.c": {
		Name: "eon.c", Seed: 103, Blocks: 64,
		W:           Weights{Call: 9, ALU: 9, Stream: 6, Hash: 6, Fwd: 3, Bypass: 3, Late: 1},
		HashEntries: 1024, SwapEntries: 1024, CallSaves: 2, CallBodyLen: 18, FwdDist: 3, FwdAmbigPct: 30,
		BranchNoisePct: 5, UseMul: true,
	},
	"eon.k": {
		Name: "eon.k", Seed: 104, Blocks: 64,
		W:           Weights{Call: 9, ALU: 12, Stream: 6, Hash: 6, Fwd: 3, Bypass: 3, Late: 1},
		HashEntries: 1024, SwapEntries: 1024, CallSaves: 2, CallBodyLen: 20, FwdDist: 3, FwdAmbigPct: 30,
		BranchNoisePct: 5, UseMul: true,
	},
	"eon.r": {
		Name: "eon.r", Seed: 105, Blocks: 64,
		W:           Weights{Call: 6, ALU: 9, Stream: 9, Hash: 6, Fwd: 3, Bypass: 3, Late: 1},
		HashEntries: 1024, SwapEntries: 1024, CallSaves: 2, CallBodyLen: 18, FwdDist: 3, FwdAmbigPct: 30,
		BranchNoisePct: 5, UseMul: true,
	},
	"gap": {
		Name: "gap", Seed: 106, Blocks: 56,
		W:           Weights{ALU: 12, Stream: 12, Hash: 9, Fwd: 3, Reload: 3},
		HashEntries: 2048, SwapEntries: 1024, CallSaves: 4, FwdDist: 5, FwdAmbigPct: 5,
		BranchNoisePct: 3, UseMul: true,
	},
	"gcc": {
		Name: "gcc", Seed: 107, Blocks: 128,
		W:           Weights{Hash: 15, Chase: 3, Call: 6, Fwd: 3, Reload: 6, ALU: 9, Late: 1},
		HashEntries: 2048, SwapEntries: 1024, ChaseNodes: 4096, CallSaves: 1, CallBodyLen: 20,
		FwdDist: 4, FwdAmbigPct: 30, BranchNoisePct: 5, UseMul: true,
	},
	"gzip": {
		Name: "gzip", Seed: 108, Blocks: 48,
		W:           Weights{Stream: 30, ALU: 12, Hash: 12, Fwd: 6, Reload: 6, Late: 1},
		HashEntries: 1024, SwapEntries: 1024, CallSaves: 4, FwdDist: 5, FwdAmbigPct: 25,
		BranchNoisePct: 3,
	},
	"mcf": {
		Name: "mcf", Seed: 109, Blocks: 48,
		W:           Weights{Chase: 15, Hash: 3, ALU: 9, Late: 1, Reload: 3},
		HashEntries: 2048, SwapEntries: 1024, ChaseNodes: 262144,
		CallSaves: 4, FwdDist: 4, BranchNoisePct: 4,
	},
	"parser": {
		Name: "parser", Seed: 110, Blocks: 72,
		W:           Weights{Chase: 6, Fwd: 6, Hash: 9, ALU: 3, Late: 1, Reload: 3, Bypass: 3},
		HashEntries: 1024, SwapEntries: 1024, ChaseNodes: 8192, CallSaves: 4,
		FwdDist: 2, FwdAmbigPct: 60, BranchNoisePct: 6,
	},
	"perl.d": {
		Name: "perl.d", Seed: 111, Blocks: 80,
		W:           Weights{Hash: 18, Call: 6, Fwd: 6, Swap: 1, Bypass: 3, Late: 1},
		HashEntries: 1024, SwapEntries: 512, CallSaves: 1, CallBodyLen: 14, FwdDist: 3, FwdAmbigPct: 70,
		BranchNoisePct: 5,
	},
	"perl.s": {
		Name: "perl.s", Seed: 112, Blocks: 80,
		W:           Weights{Hash: 18, Call: 6, Fwd: 6, Bypass: 3, ALU: 3, Late: 1},
		HashEntries: 1024, SwapEntries: 512, CallSaves: 1, CallBodyLen: 14, FwdDist: 3, FwdAmbigPct: 40,
		BranchNoisePct: 4,
	},
	"twolf": {
		Name: "twolf", Seed: 113, Blocks: 72,
		W:           Weights{Swap: 2, Hash: 9, Chase: 4, ALU: 5, Fwd: 4, Late: 1, Reload: 4, Bypass: 4},
		HashEntries: 1024, SwapEntries: 1024, ChaseNodes: 2048, CallSaves: 4,
		FwdDist: 3, FwdAmbigPct: 50, BranchNoisePct: 6,
	},
	"vortex": {
		Name: "vortex", Seed: 114, Blocks: 64,
		W:           Weights{Call: 12, Bypass: 6, Reload: 6, Fwd: 3, Stream: 9, Hash: 3},
		HashEntries: 1024, SwapEntries: 1024, CallSaves: 3, CallBodyLen: 10, FwdDist: 3, FwdAmbigPct: 20,
		BranchNoisePct: 1,
	},
	"vpr.p": {
		Name: "vpr.p", Seed: 115, Blocks: 64,
		W:           Weights{Swap: 1, Hash: 12, Reload: 12, Bypass: 6, ALU: 6, Late: 1},
		HashEntries: 1024, SwapEntries: 1024, CallSaves: 4, FwdDist: 3, FwdAmbigPct: 40,
		BranchNoisePct: 5,
	},
	"vpr.r": {
		Name: "vpr.r", Seed: 116, Blocks: 64,
		W:           Weights{Chase: 12, Hash: 18, Reload: 6, ALU: 6, Late: 1},
		HashEntries: 1024, SwapEntries: 1024, ChaseNodes: 65536, CallSaves: 4,
		FwdDist: 3, FwdAmbigPct: 30, BranchNoisePct: 5,
	},
}

// Names returns the benchmark names in the paper's (alphabetical) order.
func Names() []string { return sortedNames(profiles) }

// Get returns the profile for a benchmark name.
func Get(name string) (Profile, bool) {
	p, ok := profiles[name]
	return p, ok
}

// MustGet returns the profile or panics; for harness/table code where a
// missing name is a programming error.
func MustGet(name string) Profile {
	p, ok := profiles[name]
	if !ok {
		panic("workload: unknown benchmark " + name)
	}
	return p
}

// Fig8Subset returns the benchmarks the paper's Fig. 8 sensitivity study
// uses: crafty, gcc, perl.d, vortex, vpr.r.
func Fig8Subset() []string {
	return []string{"crafty", "gcc", "perl.d", "vortex", "vpr.r"}
}

// TestProfile returns a small, fast kernel for unit and integration tests:
// every block type is present, footprints are tiny, and it still produces
// forwarding, speculation, redundancy, and violations.
func TestProfile(seed int64) Profile {
	return Profile{
		Name: "testkernel", Seed: seed, Blocks: 24,
		W: Weights{Hash: 6, Fwd: 6, Reload: 3, Bypass: 3, Chase: 3,
			Stream: 3, Swap: 1, ALU: 3, Call: 3, Late: 1},
		HashEntries: 1024, SwapEntries: 256, ChaseNodes: 256,
		CallSaves: 4, FwdDist: 3, BranchNoisePct: 5, UseMul: true,
	}
}

// BuildByName builds the named benchmark kernel.
func BuildByName(name string) *prog.Program { return Build(MustGet(name)) }
