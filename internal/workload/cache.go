package workload

import (
	"sync"

	"svwsim/internal/prog"
)

// Built programs are deterministic pure functions of their profile and
// immutable once built (runs instantiate private memory images via
// prog.Program.NewImage), so the experiment engine shares one build per
// benchmark across all jobs and workers instead of regenerating code, index
// streams, and data segments for every run.
var (
	progMu    sync.Mutex
	progCache = make(map[string]*prog.Program)
)

// Cached returns the named benchmark kernel, building it at most once per
// process. The returned program is shared: callers must treat it as
// read-only (every in-repo consumer does — runs operate on fresh images).
func Cached(name string) *prog.Program {
	progMu.Lock()
	defer progMu.Unlock()
	if p, ok := progCache[name]; ok {
		return p
	}
	p := BuildByName(name)
	progCache[name] = p
	return p
}
