package workload

import (
	"testing"

	"svwsim/internal/emu"
	"svwsim/internal/isa"
	"svwsim/internal/prog"
)

// execStats functionally executes a program for n instructions and collects
// the dynamic mix.
type execStats struct {
	insts, loads, stores, branches uint64
	subQuad                        uint64
}

func run(t *testing.T, p Profile, n int) execStats {
	t.Helper()
	prg := Build(p)
	e := emu.New(prg.NewImage(), prg.Entry)
	var s execStats
	for i := 0; i < n && !e.Halted(); i++ {
		d, err := e.Step()
		if err != nil {
			t.Fatalf("%s: step %d: %v", p.Name, i, err)
		}
		s.insts++
		switch {
		case d.Inst.IsLoad():
			s.loads++
		case d.Inst.IsStore():
			s.stores++
		case d.Inst.IsBranch():
			s.branches++
		}
		if d.Inst.IsMem() && d.MemBytes < 8 {
			s.subQuad++
		}
	}
	return s
}

func TestAllProfilesExecuteCleanly(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			s := run(t, MustGet(name), 30_000)
			if s.insts < 30_000 {
				t.Fatalf("halted early at %d", s.insts)
			}
			loadFrac := float64(s.loads) / float64(s.insts)
			if loadFrac < 0.08 || loadFrac > 0.45 {
				t.Errorf("load fraction %.2f out of the realistic band", loadFrac)
			}
			storeFrac := float64(s.stores) / float64(s.insts)
			if storeFrac < 0.01 || storeFrac > 0.30 {
				t.Errorf("store fraction %.2f out of the realistic band", storeFrac)
			}
		})
	}
}

func TestSixteenBenchmarks(t *testing.T) {
	names := Names()
	if len(names) != 16 {
		t.Fatalf("suite has %d benchmarks, want 16", len(names))
	}
	for _, want := range []string{"bzip2", "crafty", "eon.c", "eon.k", "eon.r",
		"gap", "gcc", "gzip", "mcf", "parser", "perl.d", "perl.s", "twolf",
		"vortex", "vpr.p", "vpr.r"} {
		if _, ok := Get(want); !ok {
			t.Errorf("missing %s", want)
		}
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a := Build(MustGet("gcc"))
	b := Build(MustGet("gcc"))
	if len(a.Code) != len(b.Code) {
		t.Fatal("code length differs")
	}
	for i := range a.Code {
		if a.Code[i] != b.Code[i] {
			t.Fatalf("code differs at %d", i)
		}
	}
	if len(a.Data) != len(b.Data) {
		t.Fatal("data segments differ")
	}
}

func TestChaseCycleClosed(t *testing.T) {
	// The pointer chase must never escape its region or hit a null.
	p := MustGet("mcf")
	prg := Build(p)
	e := emu.New(prg.NewImage(), prg.Entry)
	base := uint64(prog.DefaultDataBase + chaseRegionOff)
	end := base + uint64(16*p.ChaseNodes)
	for i := 0; i < 50_000 && !e.Halted(); i++ {
		d, err := e.Step()
		if err != nil {
			t.Fatal(err)
		}
		if d.Inst.Op == isa.OpLdq && d.Inst.Rd == d.Inst.Ra && d.Inst.Imm == 0 {
			// chase step: loaded value is the next node pointer
			if d.LoadVal < base || d.LoadVal >= end {
				t.Fatalf("chase escaped region: %#x", d.LoadVal)
			}
		}
	}
}

func TestSubQuadAccessesPresent(t *testing.T) {
	// Stream-heavy kernels must issue 4-byte accesses (false-sharing
	// fodder for the Fig. 8 granularity study).
	s := run(t, MustGet("bzip2"), 30_000)
	if s.subQuad == 0 {
		t.Error("no sub-quad accesses in a stream-heavy kernel")
	}
}

func TestMustGetPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	MustGet("nonexistent")
}

func TestFig8Subset(t *testing.T) {
	for _, b := range Fig8Subset() {
		if _, ok := Get(b); !ok {
			t.Errorf("fig8 subset names unknown benchmark %s", b)
		}
	}
}

func TestTestProfileRuns(t *testing.T) {
	s := run(t, TestProfile(1), 20_000)
	if s.insts < 20_000 {
		t.Fatal("test kernel halted early")
	}
	if s.loads == 0 || s.stores == 0 || s.branches == 0 {
		t.Error("test kernel missing instruction classes")
	}
}

func TestBuildValidatesProfiles(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for empty profile")
		}
	}()
	Build(Profile{Name: "bad"})
}
