// Package workload provides the 16 synthetic kernels standing in for the
// SPEC2000 integer suite (see DESIGN.md, substitution table). Each kernel is
// generated from a Profile whose parameters are tuned so the kernel's
// dynamic behaviour matches the qualitative profile the paper reports for
// the corresponding benchmark: load/store mix, store-to-load forwarding rate
// and distance, load-speculation aggressiveness, redundancy available to
// RLE, branch predictability, and cache footprint.
//
// Random access addresses come from precomputed index streams: sequential,
// prefetch-friendly arrays of (load target, store target) pairs generated at
// build time from the profile seed. This is how real integer code addresses
// memory — through loaded indices and pointers — and it keeps the dynamic
// load share realistic (~25–30%) instead of diluting it with address
// arithmetic. Store addresses that arrive via loads also resolve late, which
// is exactly the ambiguity that drives load speculation and NLQls marking.
//
// Kernels are deterministic: a fixed seed drives both code generation
// (block mix, offsets) and data initialization (index streams, pointer-chase
// permutations), so every run of a given profile executes the identical
// program.
package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"svwsim/internal/isa"
	"svwsim/internal/prog"
)

// Weights selects the relative frequency of each block type in the kernel's
// unrolled loop body.
type Weights struct {
	Hash   int // indexed table loads, occasional stores to a small sub-region
	Fwd    int // store then aliased-base load: SQ/FSQ forwarding, not integrable
	Reload int // redundant pointer reloads feeding dependent accesses: RLE reuse
	Bypass int // store then same-signature load: RLE memory bypassing
	Chase  int // pointer chasing (serial, cache-hostile at large footprints)
	Stream int // sequential scan (predictable, high IPC)
	Swap   int // read-read-write-write on indexed slots: load speculation
	ALU    int // pure integer work
	Call   int // function call with register save/restore around a body
	Late   int // store whose address arrives via a load (resolves late):
	// younger loads issue past it speculatively — the NLQls marking driver
}

func (w Weights) total() int {
	return w.Hash + w.Fwd + w.Reload + w.Bypass + w.Chase + w.Stream +
		w.Swap + w.ALU + w.Call + w.Late
}

// Profile parameterizes one kernel.
type Profile struct {
	Name string
	Seed int64
	// Blocks is the number of blocks unrolled into the loop body (static
	// code size driver).
	Blocks int
	W      Weights
	// HashEntries / SwapEntries size the random-access regions (8-byte
	// slots, powers of two). Small swap regions raise collision rates.
	HashEntries int
	SwapEntries int
	// HashStoreEntries confines hash-block stores to a leading sub-region
	// (default HashEntries/32): programs update a much smaller working set
	// than they read, which is what keeps a 512-entry SSBF's alias rate
	// low. 0 means the default.
	HashStoreEntries int
	// HashStorePct is the percentage of hash blocks that also store
	// (default 20).
	HashStorePct int
	// ChaseNodes sizes the pointer-chase working set (16-byte nodes);
	// large values blow out the L2.
	ChaseNodes int
	// CallSaves is the number of registers saved/restored per call block.
	CallSaves int
	// CallBodyLen is the number of filler ops in each call target's body
	// between the saves and the restores (default 8). Long bodies push
	// restores toward the edge of the forwarding window, diluting the
	// store-to-load forwarding rate the way real call-heavy code does.
	CallBodyLen int
	// FwdDist is the number of filler ALU ops between a forwarding store
	// and its load.
	FwdDist int
	// FwdAmbigPct is the percentage of forwarding blocks that interpose a
	// late-resolving store between the forwarding store and its load: the
	// load then both forwards and issues past an unresolved address. Such
	// loads are marked under NLQls, and only the update-on-forward SVW
	// (+UPD) can filter them — this knob is what separates the paper's
	// −UPD and +UPD configurations.
	FwdAmbigPct int
	// BranchNoisePct is the percentage of blocks followed by a
	// data-dependent (hard-to-predict) branch.
	BranchNoisePct int
	// UseMul sprinkles multiplies into ALU chains.
	UseMul bool
}

// Data-region layout inside the kernel image.
const (
	hashRegionOff   = 0x000000
	swapRegionOff   = 0x200000
	stackRegionOff  = 0x300000
	streamRegionOff = 0x400000
	chaseRegionOff  = 0x500000 // up to 4 MB of chase nodes
	idxARegionOff   = 0xA00000 // hash-target index stream
	idxBRegionOff   = 0xC00000 // swap-target index stream

	streamBytes = 1 << 13 // stream scan window (L1-co-resident)

	// idxResetIters: the index streams rewind every this many loop
	// iterations (power of two; tested against the down-counter).
	idxResetIters = 16
)

// Register conventions used by the generator.
const (
	rIdxA   = isa.Reg(0) // hash-target index stream pointer
	rLoop   = isa.Reg(1)
	rHashB  = isa.Reg(2)
	rSwapB  = isa.Reg(3)
	rStack  = isa.Reg(4)
	rChase  = isa.Reg(5)
	rIdxB   = isa.Reg(6) // swap-target index stream pointer
	rT0     = isa.Reg(7)
	rT1     = isa.Reg(8)
	rT2     = isa.Reg(9)
	rT3     = isa.Reg(10)
	rT4     = isa.Reg(11)
	rT5     = isa.Reg(12)
	rAcc2   = isa.Reg(13)
	rMaskA  = isa.Reg(14)
	rT6     = isa.Reg(15)
	rStream = isa.Reg(16)
	rAcc    = isa.Reg(17)
	rStrB   = isa.Reg(18)
	rStrE   = isa.Reg(19)
	rSave0  = isa.Reg(20) // .. rSave0+CallSaves-1 (at most 6)
	rAcc3   = isa.Reg(26)
	rAcc4   = isa.Reg(27)
	rLink   = isa.Reg(28)
	rMaskB  = isa.Reg(29)
	rMaskC  = isa.Reg(30) // hash-store sub-region mask
)

// accRegs is the rotating accumulator bank: blocks consume their loads into
// per-block accumulators so no single dependence chain threads every load,
// mirroring the local value consumption of real integer code.
var accRegs = [4]isa.Reg{rAcc, rAcc2, rAcc3, rAcc4}

// Build generates the kernel program for a profile.
func Build(p Profile) *prog.Program {
	if p.Blocks <= 0 || p.W.total() <= 0 {
		panic("workload: profile needs blocks and weights")
	}
	if p.HashStoreEntries == 0 {
		p.HashStoreEntries = p.HashEntries / 32
		if p.HashStoreEntries < 64 {
			p.HashStoreEntries = 64
		}
	}
	if p.HashStorePct == 0 {
		p.HashStorePct = 20
	}
	if p.CallSaves > 6 {
		p.CallSaves = 6 // r26/r27 belong to the accumulator bank
	}
	if p.CallBodyLen == 0 {
		p.CallBodyLen = 8
	}
	g := &gen{
		b:   prog.NewBuilder(p.Name),
		rng: rand.New(rand.NewSource(p.Seed)),
		p:   p,
	}
	g.emit()
	return g.b.Build()
}

type gen struct {
	b     *prog.Builder
	rng   *rand.Rand
	p     Profile
	funcs []string // labels of generated call targets

	// Static per-iteration index stream consumption (entries).
	usesA int
	usesB int
}

func (g *gen) emit() {
	b, p := g.b, g.p

	// Prologue: region bases and constants.
	b.MovImm(rHashB, prog.DefaultDataBase+hashRegionOff)
	b.MovImm(rSwapB, prog.DefaultDataBase+swapRegionOff)
	b.MovImm(rStack, prog.DefaultDataBase+stackRegionOff)
	b.MovImm(rStream, prog.DefaultDataBase+streamRegionOff)
	b.MovImm(rStrB, prog.DefaultDataBase+streamRegionOff)
	b.MovImm(rStrE, prog.DefaultDataBase+streamRegionOff+streamBytes)
	b.MovImm(rChase, prog.DefaultDataBase+chaseRegionOff)
	if p.ChaseNodes > 0 {
		// Second chain starts half-way around the cycle.
		b.MovImm(rT6, prog.DefaultDataBase+chaseRegionOff+uint64(16*(p.ChaseNodes/2)))
	}
	b.MovImm(rIdxA, prog.DefaultDataBase+idxARegionOff)
	b.MovImm(rIdxB, prog.DefaultDataBase+idxBRegionOff)
	b.MovImm(rMaskA, uint64(p.HashEntries-1))
	b.MovImm(rMaskB, uint64(p.SwapEntries-1))
	b.MovImm(rMaskC, uint64(p.HashStoreEntries-1))
	b.MovImm(rLoop, 1<<28) // effectively infinite; runs bound by MaxInsts
	for k, r := range accRegs {
		b.Lda(r, isa.Zero, int64(11+k))
	}
	for i := 0; i < p.CallSaves; i++ {
		b.Lda(rSave0+isa.Reg(i), isa.Zero, int64(100+i))
	}

	// Plan the block sequence deterministically.
	blocks := g.planBlocks()

	b.Label("loop")
	// Rewind the index streams every idxResetIters iterations (the
	// down-counter's low bits hit zero); predictable, rarely taken.
	skip := b.UniqueLabel("idxreset")
	b.Andi(rT0, rLoop, idxResetIters-1)
	b.Bne(rT0, skip)
	b.MovImm(rIdxA, prog.DefaultDataBase+idxARegionOff)
	b.MovImm(rIdxB, prog.DefaultDataBase+idxBRegionOff)
	b.Label(skip)

	for i, kind := range blocks {
		g.emitBlock(kind, i)
		if p.BranchNoisePct > 0 && g.rng.Intn(100) < p.BranchNoisePct {
			g.emitNoiseBranch(i)
		}
	}
	b.Addi(rLoop, rLoop, -1)
	b.Bne(rLoop, "loop")
	b.Halt()

	g.emitFunctions()
	g.initData()
}

type blockKind int

const (
	bHash blockKind = iota
	bFwd
	bReload
	bBypass
	bChase
	bStream
	bSwap
	bALU
	bCall
	bLate
)

func (g *gen) planBlocks() []blockKind {
	w := g.p.W
	var pool []blockKind
	add := func(k blockKind, n int) {
		for i := 0; i < n; i++ {
			pool = append(pool, k)
		}
	}
	add(bHash, w.Hash)
	add(bFwd, w.Fwd)
	add(bReload, w.Reload)
	add(bBypass, w.Bypass)
	add(bChase, w.Chase)
	add(bStream, w.Stream)
	add(bSwap, w.Swap)
	add(bALU, w.ALU)
	add(bCall, w.Call)
	add(bLate, w.Late)

	out := make([]blockKind, g.p.Blocks)
	for i := range out {
		out[i] = pool[g.rng.Intn(len(pool))]
	}
	return out
}

// idxA emits a load of the current hash-target pair field (0 = load target,
// 8 = store target) into dst; advanceA moves to the next pair.
func (g *gen) idxA(dst isa.Reg, field int64) { g.b.Ldq(dst, field, rIdxA) }

func (g *gen) advanceA() {
	g.b.Addi(rIdxA, rIdxA, 16)
	g.usesA++
}

// idxB / advanceB are the swap-target stream equivalents.
func (g *gen) idxB(dst isa.Reg, field int64) { g.b.Ldq(dst, field, rIdxB) }

func (g *gen) advanceB() {
	g.b.Addi(rIdxB, rIdxB, 16)
	g.usesB++
}

func (g *gen) emitBlock(kind blockKind, i int) {
	b := g.b
	acc := accRegs[i%len(accRegs)]
	switch kind {
	case bHash:
		g.idxA(rT2, 0)
		g.advanceA()
		b.Ldq(rT3, 0, rT2)
		b.Add(acc, acc, rT3)
		if g.rng.Intn(100) < g.p.HashStorePct {
			// Stores go to a static slot in the small leading sub-region:
			// like most stores in real code (spills, struct fields), the
			// address is base+offset and resolves early; programs update a
			// much narrower working set than they read.
			off := int64(8 * g.rng.Intn(g.p.HashStoreEntries))
			b.Stq(acc, off, rHashB)
		}

	case bFwd:
		// Store through rStack, reload through a same-valued copy so the
		// physical base registers differ: address forwarding without
		// integration eligibility.
		off := int64(8 * g.rng.Intn(64))
		b.Stq(acc, off, rStack)
		if g.rng.Intn(100) < g.p.FwdAmbigPct {
			// Interpose a store whose address arrives via a load (resolves
			// a load-latency later): the forwarding load below issues past
			// it while forwarding from the store above — exactly the case
			// only the +UPD filter can excuse.
			g.idxB(rT5, 8)
			b.Stq(rT0, 0, rT5)
		}
		g.filler(g.p.FwdDist, acc)
		b.Mov(rT4, rStack)
		b.Ldq(rT3, off, rT4)
		b.Add(acc, acc, rT3)

	case bReload:
		// A spilled pointer reloaded twice: the second (same-signature)
		// load is redundant — RLE integrates it — and each reload feeds a
		// dependent access, so elimination removes real latency from the
		// address chain. Pointer slots sit above the hash-store sub-region
		// (read-mostly), and their values are themselves hash-region
		// addresses.
		roBase := g.p.HashStoreEntries + 128
		span := g.p.HashEntries - roBase - 2
		off := int64(8 * (roBase + g.rng.Intn(span)))
		b.Ldq(rT2, off, rHashB) // pointer
		b.Ldq(rT5, 0, rT2)      // dependent access through the pointer
		b.Add(acc, acc, rT5)
		g.filler(2, acc)
		b.Ldq(rT3, off, rHashB) // same signature: RLE load reuse
		b.Ldq(rT5, 8, rT3)      // dependent access; faster when integrated
		b.Add(acc, acc, rT5)

	case bBypass:
		off := int64(8 * (128 + g.rng.Intn(64)))
		b.Stq(acc, off, rStack)
		g.filler(g.p.FwdDist, acc)
		b.Ldq(rT3, off, rStack) // same signature: RLE memory bypassing
		b.Xor(acc, acc, rT3)

	case bChase:
		// Two independent chains alternate so chase-heavy kernels have the
		// memory-level parallelism real pointer codes exhibit (mcf walks
		// several arc lists concurrently).
		ptr := rChase
		if i%2 == 1 {
			ptr = rT6
		}
		b.Ldq(ptr, 0, ptr)
		b.Ldq(rT3, 8, ptr)
		b.Add(acc, acc, rT3)

	case bStream:
		// 4-byte elements, like integer array code. Sub-quad accesses give
		// the default 8-byte-granule SSBF genuine false sharing — two
		// adjacent elements share a granule — which the 4-byte-granule
		// organization of the paper's Fig. 8 then removes.
		b.Ldl(rT3, 0, rStream)
		b.Addi(rStream, rStream, 4)
		b.Add(acc, acc, rT3)
		if g.rng.Intn(100) < 20 {
			b.Stl(acc, -4, rStream)
		}
		// Wrap: mostly-not-taken, predictable.
		b.CmpUlt(rT0, rStream, rStrE)
		lbl := b.UniqueLabel("strwrap")
		b.Bne(rT0, lbl)
		b.Mov(rStream, rStrB)
		b.Label(lbl)

	case bSwap:
		g.idxB(rT2, 0)
		g.idxB(rT4, 8)
		g.advanceB()
		b.Ldq(rT3, 0, rT2)
		b.Ldq(rT5, 0, rT4)
		b.Stq(rT5, 0, rT2)
		b.Stq(rT3, 0, rT4)
		b.Add(acc, acc, rT3)

	case bALU:
		n := 3 + g.rng.Intn(4)
		g.filler(n, acc)
		if g.p.UseMul && g.rng.Intn(100) < 30 {
			b.Mul(acc, acc, rT0)
			b.Ori(acc, acc, 1)
		}

	case bCall:
		fn := g.pickFunc()
		b.Bsr(rLink, fn)

	case bLate:
		// A store whose address arrives via a load (a store through a
		// pointer): its STA resolves a load-latency after issue, so
		// younger loads issue past it — the NLQls marking pattern — and
		// occasionally collide with it in the swap region.
		g.idxB(rT2, 0)
		g.idxB(rT4, 8)
		g.advanceB()
		b.Stq(acc, 0, rT2) // late-resolving address
		b.Ldq(rT5, 0, rT4) // younger load to the same region
		b.Add(acc, acc, rT5)
	}
}

// filler emits n cheap ALU ops with moderate parallelism: two independent
// temporaries advance alongside the accumulator, so the critical path grows
// by roughly n/3 — closer to the ILP of real integer code than a pure
// dependence chain.
func (g *gen) filler(n int, acc isa.Reg) {
	b := g.b
	for j := 0; j < n; j++ {
		switch j % 3 {
		case 0:
			b.Addi(rT0, rT0, int64(g.rng.Intn(7)+1))
		case 1:
			b.Xori(rT1, rT1, int64(g.rng.Intn(255)))
		default:
			b.Add(acc, acc, rT0)
		}
	}
}

// emitNoiseBranch emits a data-dependent branch over one instruction. The
// accumulators hold sums of effectively random table addresses and values;
// bit 4 is an unpredictable coin.
func (g *gen) emitNoiseBranch(i int) {
	b := g.b
	acc := accRegs[i%len(accRegs)]
	b.Srli(rT0, acc, 4)
	b.Andi(rT0, rT0, 1)
	lbl := b.UniqueLabel("noise")
	b.Bne(rT0, lbl)
	b.Addi(acc, acc, 3)
	b.Label(lbl)
}

// pickFunc returns (creating on demand) one of a small set of call targets.
func (g *gen) pickFunc() string {
	want := 1 + g.rng.Intn(6)
	for len(g.funcs) < want {
		g.funcs = append(g.funcs, fmt.Sprintf("fn.%d", len(g.funcs)))
	}
	return g.funcs[g.rng.Intn(len(g.funcs))]
}

// emitFunctions generates the call-block targets: save CallSaves registers
// to the stack, run a body that clobbers them and does ordinary work, then
// restore and return. The restores forward from the saves (SQ/FSQ) and are
// integration candidates (RLE memory bypassing).
func (g *gen) emitFunctions() {
	b, p := g.b, g.p
	for fi, fn := range g.funcs {
		b.Label(fn)
		base := int64(256 + 128*fi)
		for i := 0; i < p.CallSaves; i++ {
			b.Stq(rSave0+isa.Reg(i), base+int64(8*i), rStack)
		}
		acc := accRegs[fi%len(accRegs)]
		// Body: clobber the saved registers, do real work including a
		// couple of ordinary (non-forwarding) loads, like any callee.
		for i := 0; i < p.CallSaves; i++ {
			b.Addi(rSave0+isa.Reg(i), acc, int64(i))
		}
		bodyOff := int64(8 * (p.HashStoreEntries + 160 + 16*fi))
		b.Ldq(rT2, bodyOff, rHashB)
		b.Ldq(rT5, 0, rT2) // dependent access through the loaded pointer
		b.Add(acc, acc, rT5)
		g.filler(p.CallBodyLen+fi%5, acc)
		b.Ldq(rT3, bodyOff+8, rHashB)
		b.Add(acc, acc, rT3)
		if fi%2 == 1 {
			// Re-derive the frame pointer: the restores' base physical
			// register now differs from the saves', so they forward through
			// the SQ but are not integration candidates — like compilers
			// that address saves through a different register.
			b.Addi(rStack, rStack, 8)
			b.Addi(rStack, rStack, -8)
		}
		for i := 0; i < p.CallSaves; i++ {
			b.Ldq(rSave0+isa.Reg(i), base+int64(8*i), rStack)
		}
		b.Ret(rLink)
	}
}

// initData lays down initial data: hash-region pointer contents, the index
// streams, the swap region, the stream window, and the pointer-chase
// permutation (a single cycle over ChaseNodes 16-byte nodes).
func (g *gen) initData() {
	b, p := g.b, g.p
	hashBase := uint64(prog.DefaultDataBase + hashRegionOff)
	swapBase := uint64(prog.DefaultDataBase + swapRegionOff)

	// Hash region: every slot holds a pointer into the hash region's
	// read-mostly band, so dependent accesses through loaded values stay
	// in-region even off the stored-to sub-region.
	roBase := p.HashStoreEntries + 128
	roSpan := p.HashEntries - roBase
	if roSpan <= 0 {
		roSpan = p.HashEntries
		roBase = 0
	}
	vals := make([]uint64, p.HashEntries)
	for i := range vals {
		vals[i] = hashBase + uint64(8*(roBase+g.rng.Intn(roSpan)))
	}
	b.DataQuads(hashBase, vals)

	// Index streams: 16-byte (load target, store target) pairs, one region
	// worth per idxResetIters iterations of static consumption.
	nA := g.usesA*idxResetIters + 8
	pairsA := make([]uint64, 2*nA)
	for i := 0; i < nA; i++ {
		pairsA[2*i] = hashBase + uint64(8*g.rng.Intn(p.HashEntries))
		pairsA[2*i+1] = hashBase + uint64(8*g.rng.Intn(p.HashStoreEntries))
	}
	b.DataQuads(prog.DefaultDataBase+idxARegionOff, pairsA)

	nB := g.usesB*idxResetIters + 8
	pairsB := make([]uint64, 2*nB)
	for i := 0; i < nB; i++ {
		pairsB[2*i] = swapBase + uint64(8*g.rng.Intn(p.SwapEntries))
		pairsB[2*i+1] = swapBase + uint64(8*g.rng.Intn(p.SwapEntries))
	}
	b.DataQuads(prog.DefaultDataBase+idxBRegionOff, pairsB)

	// Swap and stream regions: random values.
	sw := make([]uint64, p.SwapEntries)
	for i := range sw {
		sw[i] = g.rng.Uint64() & 0xffff_ffff
	}
	b.DataQuads(swapBase, sw)
	st := make([]uint64, streamBytes/8)
	for i := range st {
		st[i] = g.rng.Uint64() & 0xffff
	}
	b.DataQuads(prog.DefaultDataBase+streamRegionOff, st)

	if p.ChaseNodes > 0 {
		perm := g.rng.Perm(p.ChaseNodes)
		// Build a single cycle: node perm[i] points to node perm[i+1].
		nodes := make([]uint64, 2*p.ChaseNodes)
		base := uint64(prog.DefaultDataBase + chaseRegionOff)
		for i := 0; i < p.ChaseNodes; i++ {
			from := perm[i]
			to := perm[(i+1)%p.ChaseNodes]
			nodes[2*from] = base + uint64(16*to)
			nodes[2*from+1] = g.rng.Uint64() & 0xffff
		}
		b.DataQuads(base, nodes)
		// rChase starts at the region base (node 0), which closes the walk.
	}
}

// sortedNames returns profile names in stable order.
func sortedNames(m map[string]Profile) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
