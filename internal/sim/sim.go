// Package sim orchestrates experiments: it owns the paper's configuration
// matrix (baselines and optimization variants for the NLQ, SSQ and RLE
// studies, §4.1–§4.4), runs kernels on machines, and computes the derived
// quantities the figures report (re-execution rates, baseline-relative
// speedups).
package sim

import (
	"context"

	"svwsim/internal/core"
	"svwsim/internal/pipeline"
	"svwsim/internal/sim/engine"
)

// SVWMode selects the filter variant of a figure's config family.
type SVWMode int

// The per-figure configuration ladder.
const (
	// SVWOff: the bare optimization; every marked load re-executes.
	SVWOff SVWMode = iota
	// SVWNoUpd: SVW without the update-on-store-forward extension (−UPD).
	SVWNoUpd
	// SVWUpd: SVW with forwarding updates (+UPD), the paper's full design.
	SVWUpd
	// Perfect: ideal re-execution (+PERFECT upper bound); SVW is moot.
	Perfect
)

func (m SVWMode) String() string {
	switch m {
	case SVWOff:
		return "raw"
	case SVWNoUpd:
		return "+SVW-UPD"
	case SVWUpd:
		return "+SVW+UPD"
	case Perfect:
		return "+PERFECT"
	}
	return "?"
}

func applySVW(c *pipeline.Config, m SVWMode) {
	switch m {
	case SVWOff:
		c.Rex = pipeline.RexReal
		c.SVW.Enabled = false
	case SVWNoUpd:
		c.Rex = pipeline.RexReal
		c.SVW.Enabled = true
		c.SVW.UpdateOnForward = false
	case SVWUpd:
		c.Rex = pipeline.RexReal
		c.SVW.Enabled = true
		c.SVW.UpdateOnForward = true
	case Perfect:
		c.Rex = pipeline.RexPerfect
		c.SVW.Enabled = false
	}
}

// BaselineNLQ returns the NLQ study's baseline (§4.1): the 8-wide machine
// with a 128-entry associative LQ whose single port limits store issue to
// one per cycle.
func BaselineNLQ() pipeline.Config {
	c := pipeline.Wide8Config()
	c.Name = "base-nlq"
	return c
}

// NLQ returns the non-associative-LQ machine: no LQ search, two stores
// issued per cycle, marked loads re-execute.
func NLQ(m SVWMode) pipeline.Config {
	c := pipeline.Wide8Config()
	c.Name = "nlq" + m.String()
	c.LSU = pipeline.LSUNLQ
	c.LQSearch = false
	c.StoreIssue = 2
	applySVW(&c, m)
	return c
}

// BaselineSSQ returns the SSQ study's baseline (§4.2): the 8-wide machine
// with a 64-entry two-ported associative SQ that stretches loads to 4
// cycles.
func BaselineSSQ() pipeline.Config {
	c := pipeline.Wide8Config()
	c.Name = "base-ssq"
	c.LoadLat = 4
	return c
}

// SSQ returns the speculative-SQ machine: 16-entry single-ported FSQ,
// non-associative RSQ, per-bank best-effort forwarding buffers, 2-cycle
// loads, and (without SVW) re-execution of every load.
func SSQ(m SVWMode) pipeline.Config {
	c := pipeline.Wide8Config()
	c.Name = "ssq" + m.String()
	c.LSU = pipeline.LSUSSQ
	c.LoadLat = 2
	applySVW(&c, m)
	return c
}

// BaselineRLE returns the RLE study's baseline (§4.3): the 4-wide machine
// with no elimination.
func BaselineRLE() pipeline.Config {
	c := pipeline.Narrow4Config()
	c.Name = "base-rle"
	return c
}

// RLEMode extends the ladder for Fig. 7's fourth configuration.
type RLEMode int

// RLE study configurations.
const (
	RLERaw     RLEMode = iota // RLE, full re-execution of eliminated loads
	RLESVW                    // +SVW
	RLESVWNoSQ                // +SVW−SQU: squash reuse disabled
	RLEPerfect                // +PERFECT
)

func (m RLEMode) String() string {
	switch m {
	case RLERaw:
		return "raw"
	case RLESVW:
		return "+SVW"
	case RLESVWNoSQ:
		return "+SVW-SQU"
	case RLEPerfect:
		return "+PERFECT"
	}
	return "?"
}

// RLE returns the register-integration machine (4-wide, 512-entry 2-way IT,
// 4-stage re-execution extension).
func RLE(m RLEMode) pipeline.Config {
	c := pipeline.Narrow4Config()
	c.Name = "rle" + m.String()
	c.RLE.Enabled = true
	switch m {
	case RLERaw:
		c.Rex = pipeline.RexReal
		c.SVW.Enabled = false
	case RLESVW:
		c.Rex = pipeline.RexReal
		c.SVW.Enabled = true
		c.SVW.UpdateOnForward = true
	case RLESVWNoSQ:
		c.Rex = pipeline.RexReal
		c.SVW.Enabled = true
		c.SVW.UpdateOnForward = true
		c.RLE.SquashReuse = false
	case RLEPerfect:
		c.Rex = pipeline.RexPerfect
		c.SVW.Enabled = false
	}
	return c
}

// Result is one (benchmark, config) run; it is the engine's result type.
type Result = engine.Result

// Run executes the named benchmark on cfg for maxInsts committed
// instructions (0 keeps the config's own limit). It runs the job directly,
// without memoization; sweeps should go through an engine (RunLadders).
func Run(cfg pipeline.Config, bench string, maxInsts uint64) (Result, error) {
	return engine.Run(cfg, bench, maxInsts)
}

// RunContext is Run with cancellation: it returns ctx's error without
// starting when ctx is already done and abandons the run when ctx is
// cancelled mid-simulation (the abandoned goroutine still terminates on
// the config's MaxCycles bound). Sweeps should use an engine instead —
// internal/server cancels through Engine.RunContext.
func RunContext(ctx context.Context, cfg pipeline.Config, bench string, maxInsts uint64) (Result, error) {
	return engine.RunContext(ctx, cfg, bench, maxInsts)
}

// Speedup returns the percent IPC improvement of opt over base.
func Speedup(base, opt *Result) float64 {
	b := base.IPC()
	if b == 0 {
		return 0
	}
	return (opt.IPC()/b - 1) * 100
}

// DefaultSSBF returns the paper's default 512-entry 8-byte-granule filter.
func DefaultSSBF() core.SSBFConfig { return core.DefaultSSBFConfig() }
