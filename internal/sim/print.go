package sim

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"
)

// Table formatting for the experiment harness: each figure prints two blocks
// mirroring the paper's two panels (re-execution rate on top, percent
// speedup over the study baseline below).

func header(w io.Writer, title string, benches []string) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-10s", "config")
	for _, b := range benches {
		fmt.Fprintf(w, "%9s", abbrev(b))
	}
	fmt.Fprintf(w, "%9s\n", "avg")
	fmt.Fprintln(w, strings.Repeat("-", 10+9*(len(benches)+1)))
}

func abbrev(b string) string {
	if len(b) > 8 {
		return b[:8]
	}
	return b
}

// PrintLadder renders a ladder result as the figure's two panels.
func (r *LadderResult) Print(w io.Writer) {
	header(w, fmt.Sprintf("%s: %% loads re-executed", r.Ladder.Name), r.Benches)
	for ci, label := range r.Ladder.Labels {
		fmt.Fprintf(w, "%-10s", label)
		for bi := range r.Benches {
			fmt.Fprintf(w, "%9.1f", 100*r.RexRate(ci, bi))
		}
		fmt.Fprintf(w, "%9.1f\n", 100*r.AvgRexRate(ci))
	}
	fmt.Fprintln(w)

	header(w, fmt.Sprintf("%s: %% speedup vs %s", r.Ladder.Name, r.Ladder.Baseline.Name), r.Benches)
	for ci, label := range r.Ladder.Labels {
		fmt.Fprintf(w, "%-10s", label)
		for bi := range r.Benches {
			fmt.Fprintf(w, "%9.1f", r.Speedup(ci, bi))
		}
		fmt.Fprintf(w, "%9.1f\n", r.AvgSpeedup(ci))
	}
	fmt.Fprintln(w)

	fmt.Fprintf(w, "baseline IPC:")
	for bi := range r.Benches {
		fmt.Fprintf(w, " %s=%.2f", abbrev(r.Benches[bi]), r.Base[bi].IPC())
	}
	fmt.Fprintln(w)
}

// LadderJSON is the machine-readable form of a LadderResult: the two panels
// the figure plots (per-benchmark re-execution rates and baseline-relative
// speedups, both in percent), indexed [config][bench].
type LadderJSON struct {
	Name        string      `json:"name"`
	Baseline    string      `json:"baseline"`
	Benches     []string    `json:"benches"`
	Labels      []string    `json:"labels"`
	BaselineIPC []float64   `json:"baseline_ipc"`
	RexPct      [][]float64 `json:"rex_pct"`
	SpeedupPct  [][]float64 `json:"speedup_pct"`
}

// JSON returns the ladder's machine-readable summary.
func (r *LadderResult) JSON() LadderJSON {
	j := LadderJSON{
		Name:     r.Ladder.Name,
		Baseline: r.Ladder.Baseline.Name,
		Benches:  r.Benches,
		Labels:   r.Ladder.Labels,
	}
	for bi := range r.Benches {
		j.BaselineIPC = append(j.BaselineIPC, round3(r.Base[bi].IPC()))
	}
	for ci := range r.Ladder.Labels {
		var rex, spd []float64
		for bi := range r.Benches {
			rex = append(rex, round3(100*r.RexRate(ci, bi)))
			spd = append(spd, round3(r.Speedup(ci, bi)))
		}
		j.RexPct = append(j.RexPct, rex)
		j.SpeedupPct = append(j.SpeedupPct, spd)
	}
	return j
}

// round3 keeps JSON output stable and readable (3 decimal places carries
// every figure's precision; the tables print 1).
func round3(v float64) float64 { return math.Round(v*1000) / 1000 }

// WriteJSON writes the ladder's indented JSON summary followed by a newline.
func (r *LadderResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.JSON())
}

// BreakdownJSON is the machine-readable form of PrintBreakdown: the shaded
// split of one configuration's re-execution rate, per benchmark.
type BreakdownJSON struct {
	Config    string    `json:"config"`
	Top       string    `json:"top"`
	Bottom    string    `json:"bottom"`
	TopPct    []float64 `json:"top_pct"`
	BottomPct []float64 `json:"bottom_pct"`
}

// Breakdown builds the JSON form of the stacked-bar split PrintBreakdown
// renders for config ci.
func (r *LadderResult) Breakdown(ci int, top, bottom string,
	topRate, bottomRate func(*Result) float64) BreakdownJSON {
	b := BreakdownJSON{Config: r.Ladder.Labels[ci], Top: top, Bottom: bottom}
	for bi := range r.Benches {
		b.TopPct = append(b.TopPct, round3(100*topRate(&r.Runs[ci][bi])))
		b.BottomPct = append(b.BottomPct, round3(100*bottomRate(&r.Runs[ci][bi])))
	}
	return b
}

// Fig8JSON is the machine-readable form of a Fig8Result.
type Fig8JSON struct {
	Benches  []string    `json:"benches"`
	Variants []string    `json:"variants"`
	RexPct   [][]float64 `json:"rex_pct"`
	IPC      [][]float64 `json:"ipc"`
}

// JSON returns the Fig. 8 sweep's machine-readable summary.
func (r *Fig8Result) JSON() Fig8JSON {
	j := Fig8JSON{Benches: r.Benches}
	for vi, v := range r.Variants {
		j.Variants = append(j.Variants, v.Label)
		var rex, ipc []float64
		for bi := range r.Benches {
			rex = append(rex, round3(100*r.Rex[vi][bi]))
			ipc = append(ipc, round3(r.IPC[vi][bi]))
		}
		j.RexPct = append(j.RexPct, rex)
		j.IPC = append(j.IPC, ipc)
	}
	return j
}

// SSNWidthJSON is the machine-readable form of an SSNWidthResult.
type SSNWidthJSON struct {
	Benches []string    `json:"benches"`
	Bits    []int       `json:"bits"`
	IPC     [][]float64 `json:"ipc"`
	Drains  [][]uint64  `json:"wrap_drains"`
}

// JSON returns the SSN width study's machine-readable summary.
func (r *SSNWidthResult) JSON() SSNWidthJSON {
	j := SSNWidthJSON{Benches: r.Benches, Bits: r.Bits, Drains: r.Drains}
	for wi := range r.Bits {
		var ipc []float64
		for bi := range r.Benches {
			ipc = append(ipc, round3(r.IPC[wi][bi]))
		}
		j.IPC = append(j.IPC, ipc)
	}
	return j
}

// SSBFUpdateJSON is the machine-readable form of an SSBFUpdateResult.
type SSBFUpdateJSON struct {
	Benches      []string  `json:"benches"`
	RexSpecPct   []float64 `json:"rex_spec_pct"`
	RexAtomicPct []float64 `json:"rex_atomic_pct"`
	IPCSpec      []float64 `json:"ipc_spec"`
	IPCAtomic    []float64 `json:"ipc_atomic"`
}

// JSON returns the update-policy study's machine-readable summary.
func (r *SSBFUpdateResult) JSON() SSBFUpdateJSON {
	j := SSBFUpdateJSON{Benches: r.Benches}
	for bi := range r.Benches {
		j.RexSpecPct = append(j.RexSpecPct, round3(100*r.RexSpec[bi]))
		j.RexAtomicPct = append(j.RexAtomicPct, round3(100*r.RexAtomic[bi]))
		j.IPCSpec = append(j.IPCSpec, round3(r.IPCSpec[bi]))
		j.IPCAtomic = append(j.IPCAtomic, round3(r.IPCAtomic[bi]))
	}
	return j
}

// PrintBreakdown renders the stacked-bar split the figure shades: for Fig. 6
// the FSQ vs best-effort share, for Fig. 7 reuse vs bypassing.
func (r *LadderResult) PrintBreakdown(w io.Writer, ci int, top, bottom string,
	topRate, bottomRate func(*Result) float64) {
	header(w, fmt.Sprintf("%s[%s]: re-execution breakdown (%s / %s)",
		r.Ladder.Name, r.Ladder.Labels[ci], top, bottom), r.Benches)
	var sumT, sumB float64
	fmt.Fprintf(w, "%-10s", top)
	for bi := range r.Benches {
		v := topRate(&r.Runs[ci][bi])
		sumT += v
		fmt.Fprintf(w, "%9.1f", 100*v)
	}
	fmt.Fprintf(w, "%9.1f\n", 100*sumT/float64(len(r.Benches)))
	fmt.Fprintf(w, "%-10s", bottom)
	for bi := range r.Benches {
		v := bottomRate(&r.Runs[ci][bi])
		sumB += v
		fmt.Fprintf(w, "%9.1f", 100*v)
	}
	fmt.Fprintf(w, "%9.1f\n", 100*sumB/float64(len(r.Benches)))
	fmt.Fprintln(w)
}

// Print renders the Fig. 8 table.
func (r *Fig8Result) Print(w io.Writer) {
	header(w, "fig8: SSBF organization vs % loads re-executed (SSQ+SVW)", r.Benches)
	for vi, v := range r.Variants {
		fmt.Fprintf(w, "%-10s", v.Label)
		var sum float64
		for bi := range r.Benches {
			sum += r.Rex[vi][bi]
			fmt.Fprintf(w, "%9.1f", 100*r.Rex[vi][bi])
		}
		fmt.Fprintf(w, "%9.1f\n", 100*sum/float64(len(r.Benches)))
	}
	fmt.Fprintln(w)
	// Performance delta of the default vs the infinite filter (§4.4 quotes
	// a 0.3% average, 1.6% max).
	var avg, max float64
	maxBench := ""
	for bi := range r.Benches {
		d := (r.IPC[len(r.Variants)-1][bi]/r.IPC[1][bi] - 1) * 100
		avg += d
		if d > max {
			max, maxBench = d, r.Benches[bi]
		}
	}
	fmt.Fprintf(w, "perf delta infinite-vs-512: avg %.2f%%, max %.2f%% (%s)\n\n",
		avg/float64(len(r.Benches)), max, maxBench)
}

// Print renders the SSN width study.
func (r *SSNWidthResult) Print(w io.Writer) {
	header(w, "ssn width: IPC (and wrap drains) on SSQ+SVW", r.Benches)
	var inf []float64
	for wi, bits := range r.Bits {
		if bits == 0 {
			inf = r.IPC[wi]
		}
	}
	for wi, bits := range r.Bits {
		label := fmt.Sprintf("%d-bit", bits)
		if bits == 0 {
			label = "infinite"
		}
		fmt.Fprintf(w, "%-10s", label)
		var sum float64
		for bi := range r.Benches {
			rel := 0.0
			if inf != nil && inf[bi] > 0 {
				rel = (r.IPC[wi][bi]/inf[bi] - 1) * 100
			}
			sum += rel
			fmt.Fprintf(w, "%9.2f", rel)
		}
		fmt.Fprintf(w, "%9.2f\n", sum/float64(len(r.Benches)))
	}
	fmt.Fprintln(w, "(cells: % IPC vs infinite-width SSNs)")
	fmt.Fprintln(w)
}

// Print renders the SSBF update-policy study.
func (r *SSBFUpdateResult) Print(w io.Writer) {
	header(w, "SSBF update policy: % loads re-executed (SSQ+SVW)", r.Benches)
	rows := []struct {
		label string
		rex   []float64
	}{{"spec", r.RexSpec}, {"atomic", r.RexAtomic}}
	for _, row := range rows {
		fmt.Fprintf(w, "%-10s", row.label)
		var sum float64
		for bi := range r.Benches {
			sum += row.rex[bi]
			fmt.Fprintf(w, "%9.2f", 100*row.rex[bi])
		}
		fmt.Fprintf(w, "%9.2f\n", 100*sum/float64(len(r.Benches)))
	}
	var dIPC float64
	for bi := range r.Benches {
		if r.IPCAtomic[bi] > 0 {
			dIPC += (r.IPCSpec[bi]/r.IPCAtomic[bi] - 1) * 100
		}
	}
	fmt.Fprintf(w, "speculative updates: avg IPC gain over atomic %.2f%%\n\n",
		dIPC/float64(len(r.Benches)))
}
