package sim

import (
	"fmt"
	"io"
	"strings"
)

// Table formatting for the experiment harness: each figure prints two blocks
// mirroring the paper's two panels (re-execution rate on top, percent
// speedup over the study baseline below).

func header(w io.Writer, title string, benches []string) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-10s", "config")
	for _, b := range benches {
		fmt.Fprintf(w, "%9s", abbrev(b))
	}
	fmt.Fprintf(w, "%9s\n", "avg")
	fmt.Fprintln(w, strings.Repeat("-", 10+9*(len(benches)+1)))
}

func abbrev(b string) string {
	if len(b) > 8 {
		return b[:8]
	}
	return b
}

// PrintLadder renders a ladder result as the figure's two panels.
func (r *LadderResult) Print(w io.Writer) {
	header(w, fmt.Sprintf("%s: %% loads re-executed", r.Ladder.Name), r.Benches)
	for ci, label := range r.Ladder.Labels {
		fmt.Fprintf(w, "%-10s", label)
		for bi := range r.Benches {
			fmt.Fprintf(w, "%9.1f", 100*r.RexRate(ci, bi))
		}
		fmt.Fprintf(w, "%9.1f\n", 100*r.AvgRexRate(ci))
	}
	fmt.Fprintln(w)

	header(w, fmt.Sprintf("%s: %% speedup vs %s", r.Ladder.Name, r.Ladder.Baseline.Name), r.Benches)
	for ci, label := range r.Ladder.Labels {
		fmt.Fprintf(w, "%-10s", label)
		for bi := range r.Benches {
			fmt.Fprintf(w, "%9.1f", r.Speedup(ci, bi))
		}
		fmt.Fprintf(w, "%9.1f\n", r.AvgSpeedup(ci))
	}
	fmt.Fprintln(w)

	fmt.Fprintf(w, "baseline IPC:")
	for bi := range r.Benches {
		fmt.Fprintf(w, " %s=%.2f", abbrev(r.Benches[bi]), r.Base[bi].IPC())
	}
	fmt.Fprintln(w)
}

// PrintBreakdown renders the stacked-bar split the figure shades: for Fig. 6
// the FSQ vs best-effort share, for Fig. 7 reuse vs bypassing.
func (r *LadderResult) PrintBreakdown(w io.Writer, ci int, top, bottom string,
	topRate, bottomRate func(*Result) float64) {
	header(w, fmt.Sprintf("%s[%s]: re-execution breakdown (%s / %s)",
		r.Ladder.Name, r.Ladder.Labels[ci], top, bottom), r.Benches)
	var sumT, sumB float64
	fmt.Fprintf(w, "%-10s", top)
	for bi := range r.Benches {
		v := topRate(&r.Runs[ci][bi])
		sumT += v
		fmt.Fprintf(w, "%9.1f", 100*v)
	}
	fmt.Fprintf(w, "%9.1f\n", 100*sumT/float64(len(r.Benches)))
	fmt.Fprintf(w, "%-10s", bottom)
	for bi := range r.Benches {
		v := bottomRate(&r.Runs[ci][bi])
		sumB += v
		fmt.Fprintf(w, "%9.1f", 100*v)
	}
	fmt.Fprintf(w, "%9.1f\n", 100*sumB/float64(len(r.Benches)))
	fmt.Fprintln(w)
}

// Print renders the Fig. 8 table.
func (r *Fig8Result) Print(w io.Writer) {
	header(w, "fig8: SSBF organization vs % loads re-executed (SSQ+SVW)", r.Benches)
	for vi, v := range r.Variants {
		fmt.Fprintf(w, "%-10s", v.Label)
		var sum float64
		for bi := range r.Benches {
			sum += r.Rex[vi][bi]
			fmt.Fprintf(w, "%9.1f", 100*r.Rex[vi][bi])
		}
		fmt.Fprintf(w, "%9.1f\n", 100*sum/float64(len(r.Benches)))
	}
	fmt.Fprintln(w)
	// Performance delta of the default vs the infinite filter (§4.4 quotes
	// a 0.3% average, 1.6% max).
	var avg, max float64
	maxBench := ""
	for bi := range r.Benches {
		d := (r.IPC[len(r.Variants)-1][bi]/r.IPC[1][bi] - 1) * 100
		avg += d
		if d > max {
			max, maxBench = d, r.Benches[bi]
		}
	}
	fmt.Fprintf(w, "perf delta infinite-vs-512: avg %.2f%%, max %.2f%% (%s)\n\n",
		avg/float64(len(r.Benches)), max, maxBench)
}

// Print renders the SSN width study.
func (r *SSNWidthResult) Print(w io.Writer) {
	header(w, "ssn width: IPC (and wrap drains) on SSQ+SVW", r.Benches)
	var inf []float64
	for wi, bits := range r.Bits {
		if bits == 0 {
			inf = r.IPC[wi]
		}
	}
	for wi, bits := range r.Bits {
		label := fmt.Sprintf("%d-bit", bits)
		if bits == 0 {
			label = "infinite"
		}
		fmt.Fprintf(w, "%-10s", label)
		var sum float64
		for bi := range r.Benches {
			rel := 0.0
			if inf != nil && inf[bi] > 0 {
				rel = (r.IPC[wi][bi]/inf[bi] - 1) * 100
			}
			sum += rel
			fmt.Fprintf(w, "%9.2f", rel)
		}
		fmt.Fprintf(w, "%9.2f\n", sum/float64(len(r.Benches)))
	}
	fmt.Fprintln(w, "(cells: % IPC vs infinite-width SSNs)")
	fmt.Fprintln(w)
}

// Print renders the SSBF update-policy study.
func (r *SSBFUpdateResult) Print(w io.Writer) {
	header(w, "SSBF update policy: % loads re-executed (SSQ+SVW)", r.Benches)
	rows := []struct {
		label string
		rex   []float64
	}{{"spec", r.RexSpec}, {"atomic", r.RexAtomic}}
	for _, row := range rows {
		fmt.Fprintf(w, "%-10s", row.label)
		var sum float64
		for bi := range r.Benches {
			sum += row.rex[bi]
			fmt.Fprintf(w, "%9.2f", 100*row.rex[bi])
		}
		fmt.Fprintf(w, "%9.2f\n", 100*sum/float64(len(r.Benches)))
	}
	var dIPC float64
	for bi := range r.Benches {
		if r.IPCAtomic[bi] > 0 {
			dIPC += (r.IPCSpec[bi]/r.IPCAtomic[bi] - 1) * 100
		}
	}
	fmt.Fprintf(w, "speculative updates: avg IPC gain over atomic %.2f%%\n\n",
		dIPC/float64(len(r.Benches)))
}
