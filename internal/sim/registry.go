package sim

import (
	"strings"

	"svwsim/internal/pipeline"
)

// The configuration registry: one canonical name per machine configuration
// the CLIs and the HTTP API accept. cmd/svwsim, cmd/svwtrace and
// internal/server all resolve names through this table, so the set of
// reachable machines cannot drift between entry points.
//
// Names follow the figures' ladders: each study contributes its baseline
// followed by its rungs, e.g. base-ssq, ssq, ssq+svw-upd, ssq+svw,
// ssq+perfect.
var configRegistry = []struct {
	name  string
	build func() pipeline.Config
}{
	{"base-nlq", BaselineNLQ},
	{"nlq", func() pipeline.Config { return NLQ(SVWOff) }},
	{"nlq+svw-upd", func() pipeline.Config { return NLQ(SVWNoUpd) }},
	{"nlq+svw", func() pipeline.Config { return NLQ(SVWUpd) }},
	{"nlq+perfect", func() pipeline.Config { return NLQ(Perfect) }},
	{"base-ssq", BaselineSSQ},
	{"ssq", func() pipeline.Config { return SSQ(SVWOff) }},
	{"ssq+svw-upd", func() pipeline.Config { return SSQ(SVWNoUpd) }},
	{"ssq+svw", func() pipeline.Config { return SSQ(SVWUpd) }},
	{"ssq+perfect", func() pipeline.Config { return SSQ(Perfect) }},
	{"base-rle", BaselineRLE},
	{"rle", func() pipeline.Config { return RLE(RLERaw) }},
	{"rle+svw", func() pipeline.Config { return RLE(RLESVW) }},
	{"rle+svw-squ", func() pipeline.Config { return RLE(RLESVWNoSQ) }},
	{"rle+perfect", func() pipeline.Config { return RLE(RLEPerfect) }},
}

// configAliases maps accepted shorthands onto canonical registry names.
var configAliases = map[string]string{
	"base": "base-nlq",
}

// ConfigNames returns every canonical configuration name in ladder order
// (each study's baseline followed by its rungs). The slice is freshly
// allocated; callers may modify it.
func ConfigNames() []string {
	names := make([]string, len(configRegistry))
	for i, e := range configRegistry {
		names[i] = e.name
	}
	return names
}

// ConfigByName resolves a configuration name (case-insensitive, surrounding
// whitespace ignored; "base" is an alias for "base-nlq") to a freshly built
// machine configuration. The second result reports whether the name is
// known.
func ConfigByName(name string) (pipeline.Config, bool) {
	n := strings.ToLower(strings.TrimSpace(name))
	if canon, ok := configAliases[n]; ok {
		n = canon
	}
	for _, e := range configRegistry {
		if e.name == n {
			return e.build(), true
		}
	}
	return pipeline.Config{}, false
}
