package engine

import (
	"context"
	"testing"

	"svwsim/internal/trace"
)

// spansByName indexes a finished trace's engine_job spans by their
// (config, bench) attrs, in recorded order.
func engineJobSpans(t *testing.T, tr *trace.Trace) []trace.SpanJSON {
	t.Helper()
	var out []trace.SpanJSON
	for _, sp := range tr.JSON().Spans {
		if sp.Name == "engine_job" {
			out = append(out, sp)
		}
	}
	return out
}

func TestRunContextRecordsJobSpans(t *testing.T) {
	jobs := testJobs("gcc")
	tr := trace.New("eng-1", "/v1/sweep")
	ctx := trace.NewContext(context.Background(), tr)
	if _, err := New(2).RunContext(ctx, jobs, nil); err != nil {
		t.Fatal(err)
	}
	tr.Finish()
	spans := engineJobSpans(t, tr)
	if len(spans) != len(jobs) {
		t.Fatalf("got %d engine_job spans for %d jobs", len(spans), len(jobs))
	}
	seen := make(map[string]bool)
	for _, sp := range spans {
		a := sp.Attrs
		if a["config"] == "" || a["bench"] != "gcc" {
			t.Fatalf("span missing config/bench attrs: %v", a)
		}
		if a["index"] == "" || a["worker"] == "" || a["shard"] == "" {
			t.Fatalf("span missing placement attrs: %v", a)
		}
		// A fresh engine has no memo entries: every distinct job is a miss
		// executed on a fresh or reset core.
		if a["memo"] != "miss" {
			t.Fatalf("first run memo attr = %q, want miss", a["memo"])
		}
		if a["core"] != "fresh" && a["core"] != "reset" {
			t.Fatalf("core attr = %q, want fresh|reset", a["core"])
		}
		seen[a["index"]] = true
	}
	if len(seen) != len(jobs) {
		t.Fatalf("job indices not distinct: %v", seen)
	}
}

func TestRunContextRecordsMemoHitSpans(t *testing.T) {
	jobs := testJobs("gcc")
	eng := New(1)
	if _, err := eng.Run(jobs, nil); err != nil {
		t.Fatal(err)
	}
	// Second run of the identical jobs: all memo hits, annotated as such.
	tr := trace.New("eng-2", "/v1/sweep")
	ctx := trace.NewContext(context.Background(), tr)
	if _, err := eng.RunContext(ctx, jobs, nil); err != nil {
		t.Fatal(err)
	}
	tr.Finish()
	for _, sp := range engineJobSpans(t, tr) {
		if sp.Attrs["memo"] != "hit" {
			t.Fatalf("repeat run memo attr = %q, want hit (attrs %v)", sp.Attrs["memo"], sp.Attrs)
		}
	}
}

func TestRunContextDuplicateJobsWaiterSpan(t *testing.T) {
	// The same job twice in one run on one worker: the second is delivered
	// by the first's completion — memo attr "hit" (already cached when the
	// worker reaches it) or "waiter" (parked on the in-flight leader).
	jobs := testJobs("gcc")[:1]
	jobs = append(jobs, jobs[0])
	tr := trace.New("eng-3", "/v1/sweep")
	ctx := trace.NewContext(context.Background(), tr)
	if _, err := New(1).RunContext(ctx, jobs, nil); err != nil {
		t.Fatal(err)
	}
	tr.Finish()
	spans := engineJobSpans(t, tr)
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	var miss, dedup int
	for _, sp := range spans {
		switch sp.Attrs["memo"] {
		case "miss":
			miss++
		case "hit", "waiter":
			dedup++
		default:
			t.Fatalf("unexpected memo attr %q", sp.Attrs["memo"])
		}
	}
	if miss != 1 || dedup != 1 {
		t.Fatalf("want 1 miss + 1 deduped, got %d/%d", miss, dedup)
	}
}

func TestRunContextUntracedRecordsNothing(t *testing.T) {
	// No trace in the context: the run must work and record nowhere.
	if _, err := New(2).RunContext(context.Background(), testJobs("gcc"), nil); err != nil {
		t.Fatal(err)
	}
}
