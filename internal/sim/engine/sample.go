package engine

// Sampled execution: alternate functional fast-forward with short detailed
// windows and scale the measured counters to a full-run estimate. The
// fast-forward prefix of every window depends only on (bench, skip-count),
// so it is checkpointed into the result store — one fast-forward serves an
// entire configuration ladder locally, and peers serve it over the store's
// GET /v1/store/{key} read path instead of re-emulating.

import (
	"fmt"

	"svwsim/internal/emu"
	"svwsim/internal/pipeline"
	"svwsim/internal/store"
	"svwsim/internal/workload"
)

// CheckpointStore is the minimal store view the sampling engine needs:
// probe a key, persist a new entry. internal/store satisfies it through
// StoreCheckpoints; the server layers a peer-read fallback on top.
type CheckpointStore interface {
	// GetCheckpoint returns the raw checkpoint payload under key, if any.
	GetCheckpoint(key string) ([]byte, bool)
	// PutCheckpoint persists a checkpoint payload.
	PutCheckpoint(key string, val []byte)
}

// SampleStats reports the engine's sampling counters: how much functional
// fast-forward work ran, and how often checkpoints spared it.
type SampleStats struct {
	// FastForwards counts fast-forward legs actually emulated.
	FastForwards uint64
	// FastForwardInsts counts instructions those legs executed.
	FastForwardInsts uint64
	// CheckpointHits counts fast-forward legs answered by a stored
	// checkpoint instead of emulation.
	CheckpointHits uint64
	// CheckpointMisses counts store probes that found nothing (or a corrupt
	// entry) and fell back to emulation.
	CheckpointMisses uint64
	// CheckpointPuts counts checkpoints persisted.
	CheckpointPuts uint64
}

// SetCheckpointStore installs the store consulted for warm-state
// checkpoints during sampled runs (nil = none; every fast-forward
// emulates). Safe to call concurrently with Run.
func (e *Engine) SetCheckpointStore(cs CheckpointStore) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.ckpt = cs
}

// Sample returns the engine's lifetime sampling counters.
func (e *Engine) Sample() SampleStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.sample
}

// storeCheckpoints adapts a *store.Store. Hits are accounted (a served
// checkpoint is served work, whichever tier held it); probes that miss are
// not, since a cold miss just means this skip point has not been emulated
// yet — it is not a rejected request.
type storeCheckpoints struct{ st *store.Store }

// StoreCheckpoints adapts st into the engine's CheckpointStore view.
func StoreCheckpoints(st *store.Store) CheckpointStore { return storeCheckpoints{st} }

func (s storeCheckpoints) GetCheckpoint(key string) ([]byte, bool) {
	val, origin := s.st.Get(key)
	if origin == store.OriginMiss {
		return nil, false
	}
	s.st.AccountGet(origin)
	return val, true
}

func (s storeCheckpoints) PutCheckpoint(key string, val []byte) { s.st.Put(key, val) }

// SampledFingerprint is the memo key for a possibly-sampled job. With an
// empty spec it is byte-identical to Fingerprint, so exact results keep
// their existing memo and store keys; an enabled spec appends a
// "|sample:w:d:p" suffix, so sampled results can never collide with exact
// ones (or with a different spec's).
func SampledFingerprint(cfg Config, bench string, insts uint64, spec pipeline.SampleSpec) string {
	key := Fingerprint(cfg, bench, insts)
	if spec.Enabled() {
		key += "|sample:" + spec.String()
	}
	return key
}

// runSampledOn executes one sampled job: detailed windows of
// spec.Warmup+spec.Detail commits every spec.Period instructions, the gaps
// covered functionally, counters scaled back to the full budget. Like
// runOn, core may be nil and the core in use is returned for reuse.
func (e *Engine) runSampledOn(core *pipeline.Core, cfg Config, bench string,
	maxInsts uint64, spec pipeline.SampleSpec) (Result, *pipeline.Core, error) {
	fail := func(err error) (Result, *pipeline.Core, error) {
		return Result{}, core, fmt.Errorf("%s on %s: %w", bench, cfg.Name, err)
	}
	if err := spec.Validate(); err != nil {
		return fail(err)
	}
	p := workload.Cached(bench)
	total := maxInsts
	if total == 0 {
		total = cfg.MaxInsts
	}
	if total == 0 {
		return fail(fmt.Errorf("sample: no instruction budget"))
	}
	e.mu.Lock()
	ckpt := e.ckpt
	e.mu.Unlock()

	wcfg := cfg
	wcfg.WarmupInsts = spec.Warmup

	var (
		sum      pipeline.Stats
		cur      emu.ArchState // state at skip committed insts (valid when skip > 0)
		skip     uint64
		spanned  uint64 // instructions the measurement represents
		measured uint64 // detail-window commits actually measured
	)
	for skip < total {
		window := spec.Warmup + spec.Detail
		if rem := total - skip; window > rem {
			window = rem
		}
		wcfg.MaxInsts = window
		if skip == 0 {
			if core == nil {
				core = pipeline.New(wcfg, p)
			} else {
				core.Reset(wcfg, p)
			}
		} else {
			if core == nil {
				core = new(pipeline.Core)
			}
			// The cycle counter continues across windows (ResetWindow), so
			// the deadlock detector gets a fresh allowance per window.
			if cfg.MaxCycles > 0 {
				wcfg.MaxCycles = cfg.MaxCycles + core.Cycle()
			}
			core.ResetWindow(wcfg, p, cur)
		}
		if err := core.Run(); err != nil {
			return fail(err)
		}
		ws := *core.Stats()
		measured += ws.Committed
		sum.Add(&ws)
		if committed := core.CommittedTotal(); committed < window {
			// The program halted inside the window: the measurement covers
			// everything that exists past this skip point.
			spanned += committed
			break
		}

		period := spec.Period
		if rem := total - skip; period > rem {
			period = rem
		}
		if skip+period >= total {
			spanned += period
			break
		}
		next := skip + period

		// Advance the functional state to the next skip point: a stored
		// checkpoint spares the whole leg, otherwise emulate it (from the
		// current state — the window above read, never advanced, it) and
		// persist the result for the rest of the ladder and the fabric.
		key := CheckpointKey(bench, next)
		restored := false
		if ckpt != nil {
			if raw, ok := ckpt.GetCheckpoint(key); ok {
				if st, err := decodeCheckpoint(raw, p, next); err == nil {
					cur, restored = st, true
					e.mu.Lock()
					e.sample.CheckpointHits++
					e.mu.Unlock()
				}
			}
			if !restored {
				e.mu.Lock()
				e.sample.CheckpointMisses++
				e.mu.Unlock()
			}
		}
		if !restored {
			m := emu.New(p.NewImage(), p.Entry)
			m.SetDecodeTable(p.Base, p.Decoded())
			if skip > 0 {
				m.Restore(cur)
			}
			executed, err := m.FastForward(period)
			if err != nil {
				return fail(err)
			}
			e.mu.Lock()
			e.sample.FastForwards++
			e.sample.FastForwardInsts += executed
			e.mu.Unlock()
			cur = m.State()
			if executed < period {
				// Halted during the gap: the instructions up to the halt are
				// represented by this window's measurement; nothing follows.
				spanned += executed
				break
			}
			if ckpt != nil {
				ckpt.PutCheckpoint(key, encodeCheckpoint(cur, p))
				e.mu.Lock()
				e.sample.CheckpointPuts++
				e.mu.Unlock()
			}
		}
		spanned += period
		skip = next
	}

	if measured > 0 {
		sum.Scale(spanned, measured)
	}
	return Result{Bench: bench, Config: cfg.Name, Stats: sum}, core, nil
}
