package engine_test

// Tests for sampled simulation at the engine level: the error bound of the
// estimate against exact simulation, determinism across worker counts, and
// checkpoint reuse across a configuration ladder and an engine restart.

import (
	"testing"

	"svwsim/internal/pipeline"
	"svwsim/internal/sim"
	"svwsim/internal/sim/engine"
	"svwsim/internal/store"
)

// refSpec is a sampling spec sized for accuracy: the per-window warm-up is
// long enough to substantially re-warm the L2 over the state carried from
// the previous window. Calibrated against the full registry on twolf at
// 400k instructions (see TestSampledErrorBound's bounds).
var refSpec = pipeline.SampleSpec{Warmup: 16_000, Detail: 4_000, Period: 40_000}

// TestSampledErrorBound runs sampled-vs-exact across the config registry and
// enforces the estimator's error bound. Sampled IPC carries a known,
// uniform-across-configs downward bias: detailed windows re-incur
// large-structure (L2) warm-up that the exact run pays only once, since
// fast-forward legs advance memory functionally without touching the cache
// hierarchy. The bound asserts that bias stays inside a band — and a teeth
// control shows a degenerate spec (no warm-up, tiny windows) violates it, so
// the band genuinely constrains.
func TestSampledErrorBound(t *testing.T) {
	const (
		bench    = "twolf"
		insts    = 400_000
		ipcLo    = -0.45 // sampled IPC at most 45% below exact
		ipcHi    = +0.10 // and at most 10% above
		rexDelta = 0.08  // re-execution rate within ±0.08 absolute
	)
	names := sim.ConfigNames()
	if testing.Short() {
		names = []string{"base-nlq", "nlq+svw", "ssq+svw", "rle+svw"}
	}
	e := engine.New(4)
	for _, name := range names {
		cfg, ok := sim.ConfigByName(name)
		if !ok {
			t.Fatalf("config %q missing", name)
		}
		res, err := e.Run([]engine.Job{
			{Config: cfg, Bench: bench, Insts: insts},
			{Config: cfg, Bench: bench, Insts: insts, Sample: refSpec},
		}, nil)
		if err != nil {
			t.Fatal(err)
		}
		exact, sampled := res[0].Result.Stats, res[1].Result.Stats
		if sampled.Committed != insts {
			t.Errorf("%s: sampled estimate covers %d insts, want %d", name, sampled.Committed, insts)
		}
		rel := (sampled.IPC() - exact.IPC()) / exact.IPC()
		if rel < ipcLo || rel > ipcHi {
			t.Errorf("%s: sampled IPC %.4f vs exact %.4f (rel %+.1f%%) outside [%g, %g]",
				name, sampled.IPC(), exact.IPC(), 100*rel, 100*ipcLo, 100*ipcHi)
		}
		if d := sampled.RexRate() - exact.RexRate(); d < -rexDelta || d > rexDelta {
			t.Errorf("%s: sampled rex rate %.5f vs exact %.5f (delta %+.5f) outside ±%g",
				name, sampled.RexRate(), exact.RexRate(), d, rexDelta)
		}
	}

	// Teeth: cold tiny windows with no warm-up must blow through the IPC
	// band, proving the bound above can fail.
	cfg, _ := sim.ConfigByName("nlq+svw")
	bad := pipeline.SampleSpec{Warmup: 0, Detail: 100, Period: 8_000}
	res, err := e.Run([]engine.Job{
		{Config: cfg, Bench: bench, Insts: insts},
		{Config: cfg, Bench: bench, Insts: insts, Sample: bad},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	exact, sampled := res[0].Result.Stats, res[1].Result.Stats
	if rel := (sampled.IPC() - exact.IPC()) / exact.IPC(); rel >= ipcLo {
		t.Errorf("teeth control: degenerate spec %s within bound (rel %+.1f%%); the bound asserts nothing",
			bad, 100*rel)
	}
}

// TestSampledDeterminism: a sampled sweep is a pure function of its jobs —
// worker count must not leak into results.
func TestSampledDeterminism(t *testing.T) {
	spec := pipeline.SampleSpec{Warmup: 2_000, Detail: 1_000, Period: 10_000}
	var jobs []engine.Job
	for _, name := range []string{"base-nlq", "nlq+svw", "ssq+svw"} {
		cfg, _ := sim.ConfigByName(name)
		for _, bench := range []string{"gcc", "twolf"} {
			jobs = append(jobs, engine.Job{Config: cfg, Bench: bench, Insts: 60_000, Sample: spec})
		}
	}
	serial, err := engine.New(1).Run(jobs, nil)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := engine.New(4).Run(jobs, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if serial[i].Result != parallel[i].Result {
			t.Errorf("job %d (%s on %s): j=1 and j=4 disagree:\n%+v\n%+v",
				i, jobs[i].Bench, jobs[i].Config.Name, serial[i].Result, parallel[i].Result)
		}
	}
}

// TestSampledFingerprintDisjoint pins the memo-key contract: a zero spec
// leaves the exact key untouched, an enabled spec can never collide with it,
// and distinct specs get distinct keys.
func TestSampledFingerprintDisjoint(t *testing.T) {
	cfg, _ := sim.ConfigByName("nlq+svw")
	exact := engine.Fingerprint(cfg, "gcc", 100_000)
	if got := engine.SampledFingerprint(cfg, "gcc", 100_000, pipeline.SampleSpec{}); got != exact {
		t.Errorf("zero spec changed the fingerprint:\n%s\n%s", got, exact)
	}
	a := engine.SampledFingerprint(cfg, "gcc", 100_000, pipeline.SampleSpec{Warmup: 1, Detail: 2, Period: 10})
	b := engine.SampledFingerprint(cfg, "gcc", 100_000, pipeline.SampleSpec{Warmup: 0, Detail: 2, Period: 10})
	if a == exact || b == exact || a == b {
		t.Errorf("sampled fingerprints not disjoint: exact=%q a=%q b=%q", exact, a, b)
	}
}

// TestCheckpointLadderReuse proves the checkpoint economics end to end:
// within one engine, the first job of a ladder fast-forwards and every other
// configuration rides its checkpoints; across an engine restart over the
// same store, nothing fast-forwards at all.
func TestCheckpointLadderReuse(t *testing.T) {
	st, err := store.Open(store.Options{MemoryEntries: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	spec := pipeline.SampleSpec{Warmup: 2_000, Detail: 1_000, Period: 10_000}
	const insts = 100_000
	// Fast-forward legs advance to skips 10k..90k: nine legs per job.
	const legs = 9

	var jobs []engine.Job
	ladder := []string{"base-nlq", "nlq+svw", "nlq+svw-upd"}
	for _, name := range ladder {
		cfg, _ := sim.ConfigByName(name)
		jobs = append(jobs, engine.Job{Config: cfg, Bench: "twolf", Insts: insts, Sample: spec})
	}

	e1 := engine.New(1)
	e1.SetCheckpointStore(engine.StoreCheckpoints(st))
	first, err := e1.Run(jobs, nil)
	if err != nil {
		t.Fatal(err)
	}
	s1 := e1.Sample()
	if s1.FastForwards != legs {
		t.Errorf("first ladder: %d fast-forward legs, want %d (one config's worth)", s1.FastForwards, legs)
	}
	if s1.CheckpointPuts != legs {
		t.Errorf("first ladder: %d checkpoint puts, want %d", s1.CheckpointPuts, legs)
	}
	if want := uint64(legs * (len(ladder) - 1)); s1.CheckpointHits != want {
		t.Errorf("first ladder: %d checkpoint hits, want %d", s1.CheckpointHits, want)
	}

	// Restart: a fresh engine (empty memo) over the same store re-runs the
	// ladder without a single fast-forward.
	e2 := engine.New(1)
	e2.SetCheckpointStore(engine.StoreCheckpoints(st))
	second, err := e2.Run(jobs, nil)
	if err != nil {
		t.Fatal(err)
	}
	s2 := e2.Sample()
	if s2.FastForwards != 0 {
		t.Errorf("warm restart: %d fast-forward legs, want 0", s2.FastForwards)
	}
	if want := uint64(legs * len(ladder)); s2.CheckpointHits != want {
		t.Errorf("warm restart: %d checkpoint hits, want %d", s2.CheckpointHits, want)
	}

	// Checkpoints must not perturb results: both ladders agree.
	for i := range jobs {
		if first[i].Result != second[i].Result {
			t.Errorf("job %d: checkpointed re-run disagrees:\n%+v\n%+v", i, first[i].Result, second[i].Result)
		}
	}

	// And a checkpoint-free engine produces the same numbers: checkpoints
	// are purely an acceleration.
	bare, err := engine.New(1).Run(jobs[:1], nil)
	if err != nil {
		t.Fatal(err)
	}
	if bare[0].Result != first[0].Result {
		t.Errorf("checkpointed vs checkpoint-free disagree:\n%+v\n%+v", bare[0].Result, first[0].Result)
	}
}
