package engine

// Warm-state checkpoints: the architectural state a fast-forward produces,
// serialized for the result store. A checkpoint is config-independent by
// construction — it holds only functional machine state (registers, PC,
// halted flag) plus the memory image as a page delta against the program's
// initial image — so one entry keyed by (bench, skip-count) serves every
// machine configuration in a sweep, and every backend in the fabric via the
// store's peer-read path.
//
// Payload format (all integers little-endian):
//
//	offset size  field
//	0      4     magic "SVWK"
//	4      4     checkpoint format version
//	8      8     skip count (committed instructions consumed)
//	16     8     PC
//	24     1     halted flag
//	25     256   registers r0..r31
//	281    4     delta page count
//	...          per page: 8-byte base address + PageBytes of data,
//	             ascending address order
//	last 4       CRC-32 (IEEE) of everything before it
//
// The store adds its own framing checksum on disk and on the peer wire;
// the payload CRC here additionally protects the memory-tier copy and makes
// the entry self-validating wherever it travels.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"svwsim/internal/emu"
	"svwsim/internal/memimage"
	"svwsim/internal/prog"
)

const (
	ckptMagic      = "SVWK"
	ckptVersion    = 1
	ckptHeaderSize = 4 + 4 + 8 + 8 + 1 + 32*8 + 4
	// CheckpointKeyPrefix namespaces checkpoint entries in the store.
	// Engine memo keys render a struct and always start with '{', so the
	// prefix can never collide with a result entry.
	CheckpointKeyPrefix = "ckpt|"
)

// CheckpointKey is the store key for the architectural state of bench after
// skip committed instructions. It deliberately omits the machine
// configuration and the sampling spec: functional state depends on neither.
func CheckpointKey(bench string, skip uint64) string {
	return fmt.Sprintf("%s%s|%d", CheckpointKeyPrefix, bench, skip)
}

// encodeCheckpoint serializes st as a delta against the program's initial
// image. Iteration is in ascending page order, so identical states encode
// to identical bytes — checkpoint entries are content-comparable like every
// other store entry.
func encodeCheckpoint(st emu.ArchState, p *prog.Program) []byte {
	base := p.NewImage()
	var deltaAddrs []uint64
	for _, addr := range st.Mem.PageAddrs() {
		cur := st.Mem.PageAt(addr)
		orig := base.PageAt(addr)
		if orig == nil {
			var zero [memimage.PageBytes]byte
			if *cur != zero {
				deltaAddrs = append(deltaAddrs, addr)
			}
			continue
		}
		if *cur != *orig {
			deltaAddrs = append(deltaAddrs, addr)
		}
	}

	buf := make([]byte, 0, ckptHeaderSize+len(deltaAddrs)*(8+memimage.PageBytes)+4)
	buf = append(buf, ckptMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, ckptVersion)
	buf = binary.LittleEndian.AppendUint64(buf, st.Skipped)
	buf = binary.LittleEndian.AppendUint64(buf, st.PC)
	if st.Halted {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	for _, r := range st.Regs {
		buf = binary.LittleEndian.AppendUint64(buf, r)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(deltaAddrs)))
	for _, addr := range deltaAddrs {
		buf = binary.LittleEndian.AppendUint64(buf, addr)
		buf = append(buf, st.Mem.PageAt(addr)[:]...)
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
}

// decodeCheckpoint validates raw and reconstructs the architectural state
// over the program's initial image. Any integrity failure — bad magic or
// version, truncation, checksum mismatch, or a skip count that disagrees
// with the key the entry was fetched under — returns an error; callers
// treat that as a cache miss and fast-forward instead.
func decodeCheckpoint(raw []byte, p *prog.Program, wantSkip uint64) (emu.ArchState, error) {
	var st emu.ArchState
	if len(raw) < ckptHeaderSize+4 || string(raw[0:4]) != ckptMagic {
		return st, errors.New("checkpoint: bad magic or truncated")
	}
	if v := binary.LittleEndian.Uint32(raw[4:8]); v != ckptVersion {
		return st, fmt.Errorf("checkpoint: version %d (want %d)", v, ckptVersion)
	}
	body, tail := raw[:len(raw)-4], raw[len(raw)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(tail) {
		return st, errors.New("checkpoint: checksum mismatch")
	}
	st.Skipped = binary.LittleEndian.Uint64(raw[8:16])
	if st.Skipped != wantSkip {
		return st, fmt.Errorf("checkpoint: skip %d under key for %d", st.Skipped, wantSkip)
	}
	st.PC = binary.LittleEndian.Uint64(raw[16:24])
	st.Halted = raw[24] != 0
	off := 25
	for i := range st.Regs {
		st.Regs[i] = binary.LittleEndian.Uint64(raw[off : off+8])
		off += 8
	}
	nPages := int(binary.LittleEndian.Uint32(raw[off : off+4]))
	off += 4
	if len(body) != off+nPages*(8+memimage.PageBytes) {
		return st, errors.New("checkpoint: page table length mismatch")
	}
	st.Mem = p.NewImage()
	for i := 0; i < nPages; i++ {
		addr := binary.LittleEndian.Uint64(raw[off : off+8])
		off += 8
		st.Mem.WriteBytes(addr, raw[off:off+memimage.PageBytes])
		off += memimage.PageBytes
	}
	return st, nil
}
