package engine

import (
	"context"
	"fmt"

	"svwsim/internal/pipeline"
	"svwsim/internal/workload"
)

// Config is the machine configuration a job runs; it is the pipeline
// package's Config (the engine adds no fields of its own).
type Config = pipeline.Config

// Result is one (benchmark, configuration) run.
type Result struct {
	Bench  string
	Config string
	Stats  pipeline.Stats
}

// IPC is shorthand for the run's instructions per cycle.
func (r *Result) IPC() float64 { return r.Stats.IPC() }

// Run executes the named benchmark on cfg for maxInsts committed
// instructions (0 keeps the config's own limit). It is the engine's leaf
// executor and may be called directly for one-off runs; only Engine.Run
// memoizes.
func Run(cfg Config, bench string, maxInsts uint64) (Result, error) {
	res, _, err := runOn(nil, cfg, bench, maxInsts)
	return res, err
}

// runOn executes one job on a reusable simulator. core may be nil (a fresh
// one is built); the simulator actually used is returned so the caller can
// keep it for the next job — pipeline.Core.Reset guarantees a reused core
// is observationally identical to a fresh one. The benchmark program comes
// from the process-wide build cache.
func runOn(core *pipeline.Core, cfg Config, bench string, maxInsts uint64) (Result, *pipeline.Core, error) {
	p := workload.Cached(bench)
	if maxInsts > 0 {
		cfg.MaxInsts = maxInsts
		if cfg.WarmupInsts >= maxInsts/2 {
			cfg.WarmupInsts = maxInsts / 5
		}
	}
	if core == nil {
		core = pipeline.New(cfg, p)
	} else {
		core.Reset(cfg, p)
	}
	if err := core.Run(); err != nil {
		return Result{}, core, fmt.Errorf("%s on %s: %w", bench, cfg.Name, err)
	}
	return Result{Bench: bench, Config: cfg.Name, Stats: *core.Stats()}, core, nil
}

// RunContext is Run with cancellation: it returns ctx's error without
// starting when ctx is already done, and abandons a run in progress when
// ctx is cancelled mid-simulation (the abandoned goroutine still terminates
// on the configuration's own MaxCycles bound, like a timed-out engine job).
func RunContext(ctx context.Context, cfg Config, bench string, maxInsts uint64) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	if ctx.Done() == nil {
		return Run(cfg, bench, maxInsts)
	}
	type outcome struct {
		res Result
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		r, err := Run(cfg, bench, maxInsts)
		ch <- outcome{r, err}
	}()
	select {
	case o := <-ch:
		return o.res, o.err
	case <-ctx.Done():
		return Result{}, ctx.Err()
	}
}

// Fingerprint is the memoization key for a job: the configuration with its
// display name and trace hook stripped (neither affects simulation), plus
// the benchmark and instruction budget. Two jobs with equal fingerprints
// produce identical Stats, so the engine runs only the first.
func Fingerprint(cfg Config, bench string, insts uint64) string {
	cfg.Name = ""
	cfg.TraceCommit = nil
	return fmt.Sprintf("%+v|%s|%d", cfg, bench, insts)
}
