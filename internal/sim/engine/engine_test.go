package engine

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"svwsim/internal/pipeline"
)

const testInsts = 12_000

func testJobs(benches ...string) []Job {
	var jobs []Job
	for _, b := range benches {
		base := pipeline.Wide8Config()
		base.Name = "base"
		nlq := pipeline.Wide8Config()
		nlq.Name = "nlq"
		nlq.LSU = pipeline.LSUNLQ
		nlq.LQSearch = false
		nlq.StoreIssue = 2
		nlq.Rex = pipeline.RexReal
		jobs = append(jobs,
			Job{Study: "t", Label: "base", Config: base, Bench: b, Insts: testInsts},
			Job{Study: "t", Label: "nlq", Config: nlq, Bench: b, Insts: testInsts},
		)
	}
	return jobs
}

func TestResultsInJobOrder(t *testing.T) {
	jobs := testJobs("gcc", "twolf", "mcf")
	rs, err := New(4).Run(jobs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != len(jobs) {
		t.Fatalf("got %d results for %d jobs", len(rs), len(jobs))
	}
	for i, r := range rs {
		if r.Index != i {
			t.Errorf("result %d has index %d", i, r.Index)
		}
		if r.Job.Bench != jobs[i].Bench || r.Job.Config.Name != jobs[i].Config.Name {
			t.Errorf("result %d is job %s/%s, want %s/%s",
				i, r.Job.Config.Name, r.Job.Bench, jobs[i].Config.Name, jobs[i].Bench)
		}
		if r.Result.Stats.Committed == 0 {
			t.Errorf("result %d committed nothing", i)
		}
	}
}

func TestMemoizationDedupes(t *testing.T) {
	// Three copies of the same sweep under different display names: only
	// the first copy's jobs execute; the rest are memo hits with their own
	// labels preserved.
	jobs := testJobs("gcc")
	n := len(jobs)
	for copyi := 0; copyi < 2; copyi++ {
		for _, j := range jobs[:n] {
			j.Config.Name += "-dup"
			jobs = append(jobs, j)
		}
	}
	eng := New(4)
	rs, err := eng.Run(jobs, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := eng.Memo()
	if m.Misses != uint64(n) {
		t.Errorf("misses = %d, want %d unique executions", m.Misses, n)
	}
	if m.Hits != uint64(2*n) {
		t.Errorf("hits = %d, want %d", m.Hits, 2*n)
	}
	// Which of the identical copies executed is scheduling-dependent; what
	// must hold is that exactly one per key ran and all copies agree.
	memoized := 0
	for i, r := range rs {
		if r.Memoized {
			memoized++
		}
		if r.Result.Stats != rs[i%n].Result.Stats {
			t.Errorf("job %d stats differ from its duplicate", i)
		}
		if r.Result.Config != jobs[i].Config.Name {
			t.Errorf("job %d result label %q, want %q", i, r.Result.Config, jobs[i].Config.Name)
		}
	}
	if memoized != 2*n {
		t.Errorf("%d jobs memoized, want %d", memoized, 2*n)
	}

	// A second Run on the same engine is answered entirely from the memo.
	if _, err := eng.Run(testJobs("gcc"), nil); err != nil {
		t.Fatal(err)
	}
	m2 := eng.Memo()
	if m2.Misses != m.Misses {
		t.Errorf("second sweep executed %d new jobs, want 0", m2.Misses-m.Misses)
	}
	if m2.Hits != m.Hits+uint64(n) {
		t.Errorf("second sweep hits = %d, want %d", m2.Hits-m.Hits, n)
	}
}

func TestProgressOrderedByJobIndex(t *testing.T) {
	jobs := testJobs("gcc", "twolf")
	var got []int
	var calls atomic.Int64
	_, err := New(4).Run(jobs, func(r JobResult) {
		got = append(got, r.Index) // safe: emission is serialized
		calls.Add(1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if int(calls.Load()) != len(jobs) {
		t.Fatalf("progress fired %d times for %d jobs", calls.Load(), len(jobs))
	}
	for i, idx := range got {
		if idx != i {
			t.Fatalf("progress order %v, want ascending job indices", got)
		}
	}
}

func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	jobs := testJobs("gcc", "twolf")
	seq, err := New(1).Run(jobs, nil)
	if err != nil {
		t.Fatal(err)
	}
	par, err := New(4).Run(jobs, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range jobs {
		if seq[i].Result.Stats != par[i].Result.Stats {
			t.Errorf("job %d: -j 1 and -j 4 stats differ", i)
		}
	}
}

func TestErrorIsLowestIndexAndRunsComplete(t *testing.T) {
	jobs := testJobs("gcc")
	bad := jobs[0]
	bad.Config.Name = "deadlocked"
	bad.Config.MaxCycles = 1
	bad.Insts = 0
	jobs = append([]Job{jobs[1], bad, bad}, jobs...)
	rs, err := New(4).Run(jobs, nil)
	if err == nil {
		t.Fatal("want error from cycle-limited job")
	}
	if !strings.Contains(err.Error(), "job 1") {
		t.Errorf("error should name the lowest failing job index: %v", err)
	}
	// Healthy jobs still completed.
	if rs[0].Err != nil || rs[3].Err != nil || rs[4].Err != nil {
		t.Error("healthy jobs should have run despite the failure")
	}
}

func TestTimeout(t *testing.T) {
	eng := New(2)
	eng.SetTimeout(time.Nanosecond)
	jobs := testJobs("gcc")[:1]
	_, err := eng.Run(jobs, nil)
	if err == nil || !strings.Contains(err.Error(), "timed out") {
		t.Fatalf("want timeout error, got %v", err)
	}
}

func TestFailedJobsAreNotMemoized(t *testing.T) {
	// A transient failure (here: an absurd timeout) must not poison the memo
	// table: the same job on the same engine retries and can succeed.
	eng := New(1)
	eng.SetTimeout(time.Nanosecond)
	jobs := testJobs("gcc")[:1]
	if _, err := eng.Run(jobs, nil); err == nil {
		t.Fatal("want timeout error on first attempt")
	}
	eng.SetTimeout(0)
	rs, err := eng.Run(jobs, nil)
	if err != nil {
		t.Fatalf("retry after failure should execute fresh, got %v", err)
	}
	if rs[0].Memoized {
		t.Error("retry was served from memo; failures must not be cached")
	}
	if rs[0].Result.Stats.Committed == 0 {
		t.Error("retry produced no result")
	}
}

func TestConcurrentRunsShareMemo(t *testing.T) {
	// Two sweeps with identical jobs race on one engine: jobs parked on the
	// other run's in-flight execution must still be delivered before Run
	// returns, and each unique job executes exactly once.
	eng := New(2)
	jobs := testJobs("gcc", "twolf")
	results := make([][]JobResult, 2)
	var wg sync.WaitGroup
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rs, err := eng.Run(jobs, nil)
			if err != nil {
				t.Error(err)
			}
			results[i] = rs
		}(i)
	}
	wg.Wait()
	for i := range jobs {
		if results[0][i].Result.Stats.Committed == 0 || results[1][i].Result.Stats.Committed == 0 {
			t.Fatalf("job %d undelivered in a concurrent run", i)
		}
		if results[0][i].Result.Stats != results[1][i].Result.Stats {
			t.Errorf("job %d differs between concurrent runs", i)
		}
	}
	if m := eng.Memo(); m.Misses != uint64(len(jobs)) {
		t.Errorf("concurrent runs executed %d unique jobs, want %d", m.Misses, len(jobs))
	}
}

func TestFingerprintIgnoresLabels(t *testing.T) {
	a := pipeline.Wide8Config()
	a.Name = "one"
	b := pipeline.Wide8Config()
	b.Name = "two"
	if Fingerprint(a, "gcc", 1000) != Fingerprint(b, "gcc", 1000) {
		t.Error("fingerprint must ignore the display name")
	}
	b.LoadLat = 4
	if Fingerprint(a, "gcc", 1000) == Fingerprint(b, "gcc", 1000) {
		t.Error("fingerprint must see timing-relevant fields")
	}
	if Fingerprint(a, "gcc", 1000) == Fingerprint(a, "twolf", 1000) ||
		Fingerprint(a, "gcc", 1000) == Fingerprint(a, "gcc", 2000) {
		t.Error("fingerprint must see bench and instruction budget")
	}
}
