// Package engine executes experiment sweeps: flat lists of (machine
// configuration, benchmark, instruction budget) jobs run on a sharded,
// work-stealing worker pool.
//
// The engine exists because the paper's evaluation (Figs. 5–8 and the §3.6
// sensitivity studies) is a configuration matrix, and large parts of that
// matrix repeat: every ladder re-runs its baseline on every benchmark, the
// summary study re-runs three whole ladders, and -all sweeps overlap. The
// engine therefore:
//
//   - shards the job list round-robin across workers, each of which drains
//     its own deque and steals from the busiest victim when idle, so a few
//     slow configurations (e.g. 4-cycle-load baselines) cannot strand work
//     behind them;
//   - memoizes (configuration, benchmark, instruction budget) → result, so
//     any job that is semantically identical to an earlier one — the Name
//     label is ignored — executes exactly once per Engine, however many
//     sweeps ask for it;
//   - delivers results and progress deterministically: Run's result slice
//     is indexed by job position, and the optional progress callback fires
//     in job-index order regardless of completion order, so -j 1 and -j N
//     produce byte-identical output.
//
// An Engine is safe for concurrent use and retains its memo table across
// Run calls; share one Engine across studies to get cross-study reuse.
package engine

import (
	"context"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"time"

	"svwsim/internal/pipeline"
	"svwsim/internal/store"
	"svwsim/internal/trace"
)

// Job is one experiment: a machine configuration on a benchmark kernel.
type Job struct {
	// Study labels the sweep the job belongs to (e.g. "fig5-nlq"); it is
	// carried through to results for provenance and ignored by memoization.
	Study string
	// Label names the job's row within the study (e.g. "+SVW+UPD").
	Label  string
	Config Config
	Bench  string
	// Insts bounds committed instructions (0 keeps the config's default).
	Insts uint64
	// Sample, when enabled, runs the job sampled: detailed windows of
	// Warmup+Detail commits every Period instructions, the gaps
	// fast-forwarded functionally, counters scaled back to the budget
	// (sample.go). The spec is part of the memo key, so sampled results
	// never collide with exact ones. The zero value is exact simulation.
	Sample pipeline.SampleSpec
}

// JobResult pairs a job with its outcome. Results are always returned in
// job order: result i is job i.
type JobResult struct {
	Index    int
	Job      Job
	Result   Result
	Err      error
	Memoized bool          // served from the memo table, not executed
	Elapsed  time.Duration // zero for memoized jobs
}

// MemoStats reports the engine's reuse counters.
type MemoStats struct {
	// Hits counts jobs answered from the memo table (including jobs that
	// waited for an identical in-flight execution).
	Hits uint64
	// Misses counts unique executions.
	Misses uint64
}

// Engine runs jobs on a bounded worker pool with memoization.
type Engine struct {
	workers  int
	timeout  time.Duration
	progress func(JobResult)

	mu      sync.Mutex
	memo    *store.LRU[*memoEntry] // recency-ordered: hits refresh, eviction takes the LRU entry
	memoCap int                    // max memo entries (0 = unbounded)
	hits    uint64
	misses  uint64
	ckpt    CheckpointStore // warm-state checkpoints for sampled runs (nil = none)
	sample  SampleStats
}

type memoEntry struct {
	complete bool
	res      Result
	err      error
	// waiters are jobs identical to the in-flight execution. They do not
	// block a worker: the duplicate registers a delivery closure and the
	// worker moves on to other queued work; the executing worker runs the
	// closures when it finishes.
	waiters []func(res Result, err error)
}

// New returns an engine with the given worker count (<= 0 = GOMAXPROCS).
func New(workers int) *Engine {
	return &Engine{workers: workers, memo: store.NewLRU[*memoEntry]()}
}

// Workers returns the effective worker count for a sweep of n jobs.
func (e *Engine) Workers(n int) int {
	w := e.workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// SetTimeout bounds each job's wall-clock execution (0 = none). A timed-out
// job reports an error; its abandoned simulation goroutine still terminates
// on its own MaxCycles bound.
func (e *Engine) SetTimeout(d time.Duration) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.timeout = d
}

// SetProgress installs a default progress callback used by Run calls that
// pass nil. Like Run's own parameter, it fires once per job in job-index
// order.
func (e *Engine) SetProgress(fn func(JobResult)) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.progress = fn
}

// Memo returns the engine's lifetime reuse counters.
func (e *Engine) Memo() MemoStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return MemoStats{Hits: e.hits, Misses: e.misses}
}

// MemoSize returns the number of entries currently in the memo table
// (including in-flight executions).
func (e *Engine) MemoSize() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.memo.Len()
}

// SetMemoCap bounds the memo table to n entries (0 = unbounded, the
// default). When an insertion exceeds the cap, the least recently used
// completed entries are evicted (memo hits refresh recency — true LRU, via
// the shared store index); in-flight executions are never evicted, so
// waiter delivery is unaffected. Long-lived engines — a daemon sharing one
// engine across requests — use this to keep memory bounded; evicted jobs
// simply re-execute on their next request.
func (e *Engine) SetMemoCap(n int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.memoCap = n
	e.evictLocked()
}

// evictLocked drops least-recently-used completed memo entries until the
// table fits the cap. In-flight entries are skipped in place, keeping
// their recency.
func (e *Engine) evictLocked() {
	if e.memoCap <= 0 {
		return
	}
	for e.memo.Len() > e.memoCap {
		if _, _, ok := e.memo.EvictOldest(func(_ string, ent *memoEntry) bool {
			return ent.complete
		}); !ok {
			return // everything over the cap is in flight; retry next insert
		}
	}
}

// Run executes jobs and returns one result per job, in job order. The
// optional progress callback is invoked once per job in job-index order
// (not completion order) from worker goroutines; it must not call back
// into the engine. Run executes the whole list even when jobs fail and
// returns the lowest-index error, so error reporting is deterministic too.
func (e *Engine) Run(jobs []Job, progress func(JobResult)) ([]JobResult, error) {
	return e.RunContext(context.Background(), jobs, progress)
}

// RunContext is Run with cancellation: once ctx is done, queued-but-unstarted
// jobs are not executed and report ctx's error instead. Jobs already
// executing run to completion (populating the memo for later identical
// requests), so cancellation never poisons waiters parked on an in-flight
// execution. Results, progress ordering and the lowest-index-error contract
// are unchanged — cancelled jobs still occupy their slots and fire progress.
func (e *Engine) RunContext(ctx context.Context, jobs []Job, progress func(JobResult)) ([]JobResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	n := len(jobs)
	out := make([]JobResult, n)
	if n == 0 {
		return out, nil
	}
	// Request tracing rides the context: one span per job (shard, steal,
	// memo outcome, core reuse), recorded entirely outside the timing
	// core. With no trace on ctx, tr is nil and every hook below is a
	// plain nil check — the benchmark path allocates nothing extra.
	tr := trace.FromContext(ctx)
	workers := e.Workers(n)
	if progress == nil {
		e.mu.Lock()
		progress = e.progress
		e.mu.Unlock()
	}

	// Shard the indices round-robin: worker w owns jobs w, w+workers, ...
	// Owners pop from the front; thieves steal from the back.
	shards := make([]*shard, workers)
	for w := range shards {
		shards[w] = &shard{}
	}
	for i := 0; i < n; i++ {
		s := shards[i%workers]
		s.jobs = append(s.jobs, i)
	}

	var (
		wg      sync.WaitGroup
		deliver sync.WaitGroup // memo-waiter deliveries, possibly cross-Run
		emitMu  sync.Mutex
		ready   = make([]bool, n)
		next    int
	)
	emit := func(idx int) {
		emitMu.Lock()
		defer emitMu.Unlock()
		ready[idx] = true
		for next < n && ready[next] {
			if progress != nil {
				progress(out[next])
			}
			next++
		}
	}

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(self int) {
			defer wg.Done()
			// Each worker owns one reusable simulator: cores are Reset
			// between jobs instead of constructed per job (arena, rings and
			// register files carry over; see pipeline.Core.Reset).
			rn := &runner{}
			for {
				idx, ok := shards[self].pop()
				if !ok {
					idx, ok = steal(shards, self)
				}
				if !ok {
					return
				}
				if err := ctx.Err(); err != nil {
					// Cancelled before this job started: report without
					// executing. The loop keeps draining so every slot is
					// filled and emitted in order.
					if tr != nil {
						sp := jobSpan(tr, idx, self, workers, jobs[idx])
						sp.SetAttr("outcome", "cancelled")
						sp.End()
					}
					out[idx] = JobResult{Index: idx, Job: jobs[idx], Err: err}
					emit(idx)
					continue
				}
				e.execute(tr, self, workers, idx, jobs[idx], out, emit, &deliver, rn)
			}
		}(w)
	}
	wg.Wait()
	// Jobs parked on an execution in flight in a concurrent Run on the same
	// engine are delivered by that run's worker; wait for them too.
	deliver.Wait()

	for i := range out {
		if out[i].Err != nil {
			return out, fmt.Errorf("engine: job %d (%s/%s on %s): %w",
				i, out[i].Job.Study, out[i].Job.Config.Name, out[i].Job.Bench, out[i].Err)
		}
	}
	return out, nil
}

// jobSpan opens one job's trace span with its placement attributes: the
// shard the round-robin assignment put the job on, the worker that
// actually ran it, and whether that took a steal. Called only when a
// trace is present, so the formatting never runs on untraced sweeps.
func jobSpan(tr *trace.Trace, idx, worker, workers int, j Job) trace.Span {
	sp := tr.Start("engine_job")
	sp.SetAttr("index", strconv.Itoa(idx))
	sp.SetAttr("config", j.Config.Name)
	sp.SetAttr("bench", j.Bench)
	sp.SetAttr("worker", strconv.Itoa(worker))
	shard := idx % workers
	sp.SetAttr("shard", strconv.Itoa(shard))
	if shard != worker {
		sp.SetAttr("stolen", "true")
	}
	return sp
}

// execute runs one job through the memo table, storing its result in
// out[idx] and emitting it. A job identical to an execution already in
// flight is parked as a waiter — the worker returns immediately to take
// other queued work, and the executing worker delivers the parked result.
func (e *Engine) execute(tr *trace.Trace, worker, workers, idx int, j Job,
	out []JobResult, emit func(int), deliver *sync.WaitGroup, rn *runner) {
	var sp trace.Span
	if tr != nil {
		sp = jobSpan(tr, idx, worker, workers, j)
	}
	if j.Config.TraceCommit != nil {
		// Traced runs exist for their side effects; a memo hit would
		// silently skip the per-instruction callbacks. Always execute.
		sp.SetAttr("memo", "bypass")
		start := time.Now()
		res, err := e.runWithTimeout(j, rn)
		out[idx] = JobResult{Index: idx, Job: j, Result: res, Err: err,
			Elapsed: time.Since(start)}
		emit(idx)
		sp.End()
		return
	}
	memoResult := func(res Result, err error) JobResult {
		res.Config = j.Config.Name // keep the job's own label on shared results
		return JobResult{Index: idx, Job: j, Result: res, Err: err, Memoized: true}
	}

	key := SampledFingerprint(j.Config, j.Bench, j.Insts, j.Sample)
	e.mu.Lock()
	ent, ok := e.memo.Get(key) // a hit refreshes the entry's recency
	if ok {
		e.hits++
		if ent.complete {
			res, err := ent.res, ent.err
			e.mu.Unlock()
			sp.SetAttr("memo", "hit")
			out[idx] = memoResult(res, err)
			emit(idx)
			sp.End()
			return
		}
		deliver.Add(1)
		// The waiter's span stays open until the in-flight execution
		// delivers, so its duration is the time the job spent parked.
		sp.SetAttr("memo", "waiter")
		ent.waiters = append(ent.waiters, func(res Result, err error) {
			out[idx] = memoResult(res, err)
			emit(idx)
			sp.End()
			deliver.Done()
		})
		e.mu.Unlock()
		return
	}
	ent = &memoEntry{}
	e.memo.Put(key, ent)
	e.misses++
	e.evictLocked()
	e.mu.Unlock()

	if tr != nil {
		sp.SetAttr("memo", "miss")
		if rn.core != nil {
			sp.SetAttr("core", "reset")
		} else {
			sp.SetAttr("core", "fresh")
		}
	}
	start := time.Now()
	res, err := e.runWithTimeout(j, rn)
	e.mu.Lock()
	ent.res, ent.err, ent.complete = res, err, true
	waiters := ent.waiters
	ent.waiters = nil
	if err != nil {
		// Failures (including timeouts) are not cached: a later identical
		// job must get a fresh attempt, not the stale error. Waiters parked
		// on this execution still observe its error.
		e.memo.Delete(key)
	}
	e.mu.Unlock()
	if err != nil {
		sp.SetAttr("error", err.Error())
	}
	out[idx] = JobResult{Index: idx, Job: j, Result: res, Err: err,
		Elapsed: time.Since(start)}
	emit(idx)
	sp.End()
	for _, w := range waiters {
		w(res, err)
	}
}

// runJob dispatches one job to the exact or sampled leaf executor.
func (e *Engine) runJob(core *pipeline.Core, j Job) (Result, *pipeline.Core, error) {
	if j.Sample.Enabled() {
		return e.runSampledOn(core, j.Config, j.Bench, j.Insts, j.Sample)
	}
	return runOn(core, j.Config, j.Bench, j.Insts)
}

// runner is one worker's reusable simulator slot. It is owned by exactly
// one worker goroutine; the timeout path hands its core to the run
// goroutine and only takes it back through the result channel, so an
// abandoned (timed-out) run keeps its core and the runner starts fresh.
type runner struct {
	core *pipeline.Core
}

func (e *Engine) runWithTimeout(j Job, rn *runner) (Result, error) {
	e.mu.Lock()
	timeout := e.timeout
	e.mu.Unlock()
	if timeout <= 0 {
		res, core, err := e.runJob(rn.core, j)
		rn.core = core
		return res, err
	}
	type outcome struct {
		res  Result
		core *pipeline.Core
		err  error
	}
	core := rn.core
	rn.core = nil
	ch := make(chan outcome, 1)
	go func() {
		res, c, err := e.runJob(core, j)
		ch <- outcome{res, c, err}
	}()
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case o := <-ch:
		rn.core = o.core
		return o.res, o.err
	case <-timer.C:
		// The abandoned goroutine still terminates on the configuration's
		// own MaxCycles bound; its core is lost with it.
		return Result{}, fmt.Errorf("%s on %s: timed out after %v",
			j.Bench, j.Config.Name, timeout)
	}
}

// shard is one worker's deque of job indices.
type shard struct {
	mu   sync.Mutex
	jobs []int
}

// pop takes from the front (the owner's end).
func (s *shard) pop() (int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.jobs) == 0 {
		return 0, false
	}
	idx := s.jobs[0]
	s.jobs = s.jobs[1:]
	return idx, true
}

// popBack takes from the back (the thieves' end).
func (s *shard) popBack() (int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.jobs) == 0 {
		return 0, false
	}
	idx := s.jobs[len(s.jobs)-1]
	s.jobs = s.jobs[:len(s.jobs)-1]
	return idx, true
}

func (s *shard) size() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.jobs)
}

// steal takes a job from the back of the fullest other shard.
func steal(shards []*shard, self int) (int, bool) {
	for {
		victim, best := -1, 0
		for i, s := range shards {
			if i == self {
				continue
			}
			if n := s.size(); n > best {
				victim, best = i, n
			}
		}
		if victim < 0 {
			return 0, false
		}
		if idx, ok := shards[victim].popBack(); ok {
			return idx, true
		}
		// Lost the race to the victim's owner; rescan.
	}
}
