package engine_test

// BenchmarkEngine measures the sharded engine on the paper's multi-ladder
// sweep: Figs. 5–7 on two benchmarks, 30 distinct (config, bench) jobs.
// Compare sub-benchmarks to see worker scaling:
//
//	go test -bench=Engine -benchtime=1x ./internal/sim/engine
//
// On a 4+ core machine j=4 completes the sweep near 4x faster than j=1;
// each iteration uses a fresh engine so memoization never hides work.

import (
	"fmt"
	"testing"

	"svwsim/internal/sim"
	"svwsim/internal/sim/engine"
)

const benchInsts = 20_000

var benchLadders = func() []sim.Ladder {
	return []sim.Ladder{sim.Fig5Ladder(), sim.Fig6Ladder(), sim.Fig7Ladder()}
}

func BenchmarkEngine(b *testing.B) {
	benches := []string{"gcc", "twolf"}
	for _, j := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("j=%d", j), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eng := engine.New(j)
				res, err := sim.RunLadders(eng, benchLadders(), benches, benchInsts)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(res[0].AvgSpeedup(2), "fig5-svw-spd-%")
				}
			}
		})
	}
}
