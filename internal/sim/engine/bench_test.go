package engine_test

// BenchmarkEngine measures the sharded engine on the paper's multi-ladder
// sweep: Figs. 5–7 on two benchmarks, 30 distinct (config, bench) jobs.
// Compare sub-benchmarks to see worker scaling:
//
//	go test -bench=Engine -benchtime=1x ./internal/sim/engine
//
// On a 4+ core machine j=4 completes the sweep near 4x faster than j=1;
// each iteration uses a fresh engine so memoization never hides work.
//
// Every engine benchmark reports "sim-insts" — the committed-instruction
// budget one iteration covers — so ns_per_op ratios in BENCH_pipeline.json
// stay comparable as instructions-per-second across budgets: exact runs
// simulate every instruction in detail, sampled runs cover the same span
// with short windows plus checkpointed fast-forward.

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"svwsim/internal/emu"
	"svwsim/internal/pipeline"
	"svwsim/internal/sim"
	"svwsim/internal/sim/engine"
	"svwsim/internal/workload"
)

const benchInsts = 20_000

var benchLadders = func() []sim.Ladder {
	return []sim.Ladder{sim.Fig5Ladder(), sim.Fig6Ladder(), sim.Fig7Ladder()}
}

// ladderJobs counts the distinct (config, bench) cells one sweep
// iteration executes: rungs shared between ladders memoize, so only
// unique fingerprints cost simulation time.
func ladderJobs(benches []string) int {
	seen := make(map[string]bool)
	for _, l := range benchLadders() {
		for _, j := range sim.LadderJobs(l, benches, benchInsts) {
			seen[engine.Fingerprint(j.Config, j.Bench, j.Insts)] = true
		}
	}
	return len(seen)
}

func BenchmarkEngine(b *testing.B) {
	benches := []string{"gcc", "twolf"}
	simInsts := float64(ladderJobs(benches)) * benchInsts
	for _, j := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("j=%d", j), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				eng := engine.New(j)
				if _, err := sim.RunLadders(eng, benchLadders(), benches, benchInsts); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(simInsts, "sim-insts")
		})
	}
}

// BenchmarkFastForward measures the emulator-only fast-forward path that
// sampled simulation uses to cover the gaps between detailed windows:
// architectural state only, no timing model.
func BenchmarkFastForward(b *testing.B) {
	const ffInsts = 200_000
	p := workload.Cached("gcc")
	b.ReportAllocs()
	var executed uint64
	for i := 0; i < b.N; i++ {
		m := emu.New(p.NewImage(), p.Entry)
		m.SetDecodeTable(p.Base, p.Decoded())
		n, err := m.FastForward(ffInsts)
		if err != nil {
			b.Fatal(err)
		}
		executed += n
	}
	b.ReportMetric(float64(executed)/b.Elapsed().Seconds(), "ff-insts/s")
}

// memCheckpoints is a checkpoint store for benchmarking: an in-memory map,
// fresh per iteration, so one fast-forward per (bench, skip) serves the
// whole ladder within an iteration — the sampled subsystem's intended
// shape — while nothing leaks across iterations.
type memCheckpoints struct {
	mu sync.Mutex
	m  map[string][]byte
}

func (c *memCheckpoints) GetCheckpoint(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.m[key]
	return v, ok
}

func (c *memCheckpoints) PutCheckpoint(key string, val []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[key] = val
}

// BenchmarkEngineSampled runs the same multi-ladder sweep as
// BenchmarkEngine/j=1 but at a 10x instruction budget under sampled
// simulation (4k detailed commits per 50k-instruction period), with
// checkpointed fast-forward shared across the ladder. Divide sim-insts by
// ns_per_op to compare instructions/sec against the exact engine: the
// sampled path must cover the budget several times faster.
func BenchmarkEngineSampled(b *testing.B) {
	const sampledInsts = 200_000
	spec := pipeline.SampleSpec{Warmup: 2_000, Detail: 2_000, Period: 50_000}
	benches := []string{"gcc", "twolf"}
	simInsts := float64(ladderJobs(benches)) * sampledInsts
	for i := 0; i < b.N; i++ {
		eng := engine.New(1)
		eng.SetCheckpointStore(&memCheckpoints{m: make(map[string][]byte)})
		if _, err := sim.RunLaddersSampled(context.Background(), eng,
			benchLadders(), benches, sampledInsts, spec); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(simInsts, "sim-insts")
}
