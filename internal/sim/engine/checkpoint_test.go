package engine

import (
	"strings"
	"testing"

	"svwsim/internal/emu"
	"svwsim/internal/workload"
)

func flip(raw []byte, i int) []byte {
	out := append([]byte(nil), raw...)
	out[i] ^= 0x40
	return out
}

func TestCheckpointRoundTrip(t *testing.T) {
	p := workload.Cached("gcc")
	const skip = 25_000

	m := emu.New(p.NewImage(), p.Entry)
	m.SetDecodeTable(p.Base, p.Decoded())
	if _, err := m.FastForward(skip); err != nil {
		t.Fatal(err)
	}
	st := m.State()

	raw := encodeCheckpoint(st, p)
	// Deterministic: identical state encodes to identical bytes.
	if raw2 := encodeCheckpoint(st, p); string(raw) != string(raw2) {
		t.Fatal("checkpoint encoding is not deterministic")
	}

	got, err := decodeCheckpoint(raw, p, skip)
	if err != nil {
		t.Fatal(err)
	}
	if got.PC != st.PC || got.Regs != st.Regs || got.Halted != st.Halted || got.Skipped != st.Skipped {
		t.Fatalf("decoded scalar state differs:\ngot  %+v\nwant %+v", got, st)
	}
	if addr, differ := got.Mem.Diff(st.Mem); differ {
		t.Fatalf("decoded memory differs at %#x", addr)
	}

	// Integrity failures every caller treats as a miss.
	cases := []struct {
		name string
		raw  []byte
		skip uint64
		want string
	}{
		{"truncated", raw[:20], skip, "truncated"},
		{"bad magic", append([]byte("XXXX"), raw[4:]...), skip, "magic"},
		{"flipped byte", flip(raw, len(raw)/2), skip, "checksum"},
		{"wrong skip", raw, skip + 1, "skip"},
	}
	for _, c := range cases {
		if _, err := decodeCheckpoint(c.raw, p, c.skip); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want mention of %q", c.name, err, c.want)
		}
	}
}

// TestCheckpointKeyDisjoint: checkpoint keys live in their own namespace —
// an engine memo key renders a struct and starts with '{', never "ckpt|".
func TestCheckpointKeyDisjoint(t *testing.T) {
	key := CheckpointKey("gcc", 40_000)
	if !strings.HasPrefix(key, CheckpointKeyPrefix) {
		t.Fatalf("checkpoint key %q lacks prefix", key)
	}
	memo := Fingerprint(Config{}, "gcc", 40_000)
	if strings.HasPrefix(memo, CheckpointKeyPrefix) {
		t.Fatalf("memo key %q collides with checkpoint namespace", memo)
	}
}
