package engine

import (
	"context"
	"errors"
	"testing"

	"svwsim/internal/pipeline"
)

func ctxConfig() Config {
	cfg := pipeline.Wide8Config()
	cfg.Name = "ctx-base"
	return cfg
}

func ctxJobs(n int, insts uint64) []Job {
	jobs := make([]Job, n)
	for i := range jobs {
		cfg := ctxConfig()
		jobs[i] = Job{Study: "ctx", Label: cfg.Name, Config: cfg,
			Bench: "gcc", Insts: insts + uint64(i)} // distinct budgets: no memo reuse
	}
	return jobs
}

// A context that is already done cancels every job before it starts:
// nothing executes, every slot reports the context error, and results stay
// in job order.
func TestRunContextPreCancelled(t *testing.T) {
	eng := New(2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	jobs := ctxJobs(6, 5000)
	rs, err := eng.RunContext(ctx, jobs, nil)
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if len(rs) != len(jobs) {
		t.Fatalf("got %d results for %d jobs", len(rs), len(jobs))
	}
	for i, r := range rs {
		if r.Index != i {
			t.Errorf("result %d has index %d", i, r.Index)
		}
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("job %d: want context.Canceled, got %v", i, r.Err)
		}
	}
	if m := eng.Memo(); m.Misses != 0 || m.Hits != 0 {
		t.Errorf("cancelled run touched the memo: %+v", m)
	}
}

// Cancelling mid-sweep skips the queued-but-unstarted jobs: with one worker
// and a cancel fired from the first job's progress callback, every later
// job reports context.Canceled without executing.
func TestRunContextCancelMidSweep(t *testing.T) {
	eng := New(1)
	ctx, cancel := context.WithCancel(context.Background())
	jobs := ctxJobs(4, 5000)
	rs, err := eng.RunContext(ctx, jobs, func(r JobResult) {
		if r.Index == 0 {
			cancel()
		}
	})
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if rs[0].Err != nil {
		t.Fatalf("job 0 ran before the cancel, want success, got %v", rs[0].Err)
	}
	for i := 1; i < len(rs); i++ {
		if !errors.Is(rs[i].Err, context.Canceled) {
			t.Errorf("job %d: want context.Canceled, got %v", i, rs[i].Err)
		}
	}
	if m := eng.Memo(); m.Misses != 1 {
		t.Errorf("want exactly 1 execution, memo says %+v", m)
	}
}

// The leaf RunContext refuses an already-done context and honours
// mid-simulation cancellation.
func TestLeafRunContext(t *testing.T) {
	cfg := ctxConfig()
	done, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunContext(done, cfg, "gcc", 5000); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	// Background context takes the direct (no goroutine) path.
	res, err := RunContext(context.Background(), cfg, "gcc", 5000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Committed == 0 {
		t.Fatal("run committed nothing")
	}
}

// SetMemoCap bounds the table: old completed entries are evicted and
// re-running an evicted job is a fresh miss.
func TestMemoCapEviction(t *testing.T) {
	eng := New(1)
	eng.SetMemoCap(2)
	jobs := ctxJobs(4, 5000)
	if _, err := eng.Run(jobs, nil); err != nil {
		t.Fatal(err)
	}
	if n := eng.MemoSize(); n != 2 {
		t.Fatalf("memo size %d after cap-2 sweep, want 2", n)
	}
	m0 := eng.Memo()
	if m0.Misses != 4 {
		t.Fatalf("want 4 unique executions, got %+v", m0)
	}
	// Cycling 4 distinct jobs through a 2-entry table is the eviction worst
	// case: each re-insert evicts a survivor before it is reached, so every
	// job re-executes — but the table stays bounded throughout.
	if _, err := eng.Run(jobs, nil); err != nil {
		t.Fatal(err)
	}
	m1 := eng.Memo()
	if misses := m1.Misses - m0.Misses; misses != 4 {
		t.Errorf("want 4 re-executions on the cyclic re-sweep, got %d", misses)
	}
	if n := eng.MemoSize(); n != 2 {
		t.Errorf("memo size %d after re-sweep, want 2", n)
	}
	// A repeated job inside one sweep still memo-hits under the cap.
	pair := []Job{jobs[0], jobs[0]}
	if _, err := eng.Run(pair, nil); err != nil {
		t.Fatal(err)
	}
	m2 := eng.Memo()
	if hits := m2.Hits - m1.Hits; hits != 1 {
		t.Errorf("want 1 memo hit for the duplicated job, got %d", hits)
	}
}

// Eviction is true LRU, not insertion-order FIFO: a memo hit refreshes an
// entry's recency, so the least recently *used* entry goes first.
func TestMemoCapEvictionIsLRU(t *testing.T) {
	eng := New(1)
	eng.SetMemoCap(2)
	jobs := ctxJobs(3, 5000)
	a, b, c := jobs[0], jobs[1], jobs[2]
	// Fill the table with a then b, then touch a: under FIFO a is still
	// the first victim; under LRU the victim is b.
	if _, err := eng.Run([]Job{a, b, a}, nil); err != nil {
		t.Fatal(err)
	}
	m0 := eng.Memo()
	if m0.Misses != 2 || m0.Hits != 1 {
		t.Fatalf("warmup memo %+v, want 2 misses / 1 hit", m0)
	}
	// Inserting c evicts exactly one entry. Re-running a must still hit.
	if _, err := eng.Run([]Job{c, a}, nil); err != nil {
		t.Fatal(err)
	}
	m1 := eng.Memo()
	if misses := m1.Misses - m0.Misses; misses != 1 {
		t.Errorf("want only c to execute, got %d misses (a was evicted: FIFO, not LRU)", misses)
	}
	if hits := m1.Hits - m0.Hits; hits != 1 {
		t.Errorf("want a to memo-hit after c's insert, got %d hits", hits)
	}
	// b was the LRU entry and must be the one that went.
	if _, err := eng.Run([]Job{b}, nil); err != nil {
		t.Fatal(err)
	}
	m2 := eng.Memo()
	if misses := m2.Misses - m1.Misses; misses != 1 {
		t.Errorf("want b evicted (1 fresh execution), got %d misses", misses)
	}
}
