package sim

import (
	"strings"
	"testing"

	"svwsim/internal/pipeline"
	"svwsim/internal/sim/engine"
	"svwsim/internal/workload"
)

// The paper's full multi-ladder sweep on a benchmark pair: 3 ladders ×
// (1 baseline + 4 rungs) × 2 benchmarks = 30 distinct jobs.
const detInsts = 12_000

func detLadders() []Ladder {
	return []Ladder{Fig5Ladder(), Fig6Ladder(), Fig7Ladder()}
}

var detBenches = []string{"gcc", "twolf"}

// sweepOutput renders the whole sweep — tables and JSON — as one string, the
// byte-level artifact the determinism guarantee covers.
func sweepOutput(t *testing.T, eng *engine.Engine) string {
	t.Helper()
	results, err := RunLadders(eng, detLadders(), detBenches, detInsts)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, r := range results {
		r.Print(&b)
		if err := r.WriteJSON(&b); err != nil {
			t.Fatal(err)
		}
	}
	return b.String()
}

// TestSweepDeterministicAcrossWorkers guards the parallel engine: the same
// multi-ladder sweep at -j 1 and -j 4 must produce byte-identical aggregated
// output, whatever order jobs completed in.
func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	seq := sweepOutput(t, engine.New(1))
	par := sweepOutput(t, engine.New(4))
	if seq != par {
		t.Fatalf("-j 1 and -j 4 outputs differ:\n--- j1 ---\n%s\n--- j4 ---\n%s", seq, par)
	}
	// Repeat at -j 4: also identical run-to-run.
	if again := sweepOutput(t, engine.New(4)); again != par {
		t.Fatal("-j 4 sweep is not reproducible run-to-run")
	}
}

// TestResetReuseMatchesFresh pins the Core.Reset contract the engine's
// per-worker simulator reuse depends on: one core Reset across a
// heterogeneous job list — different configurations, different benchmarks,
// a repeat of the first job — produces statistics and committed memory
// byte-identical to a fresh core per job.
func TestResetReuseMatchesFresh(t *testing.T) {
	type job struct {
		cfg   pipeline.Config
		bench string
	}
	mk := func(c pipeline.Config) pipeline.Config {
		c.MaxInsts, c.WarmupInsts = detInsts, detInsts/5
		return c
	}
	jobs := []job{
		{mk(SSQ(SVWUpd)), "gcc"},
		{mk(NLQ(SVWNoUpd)), "twolf"},
		{mk(RLE(RLESVW)), "crafty"},
		{mk(SSQ(SVWUpd)), "gcc"}, // repeat: reuse after two intervening jobs
	}
	var reused *pipeline.Core
	for i, j := range jobs {
		p := workload.Cached(j.bench)
		fresh := pipeline.New(j.cfg, p)
		if err := fresh.Run(); err != nil {
			t.Fatal(err)
		}
		if reused == nil {
			reused = pipeline.New(j.cfg, p)
		} else {
			reused.Reset(j.cfg, p)
		}
		if err := reused.Run(); err != nil {
			t.Fatal(err)
		}
		if *fresh.Stats() != *reused.Stats() {
			t.Errorf("job %d (%s on %s): reused-core stats differ from fresh\nfresh:  %+v\nreused: %+v",
				i, j.cfg.Name, j.bench, *fresh.Stats(), *reused.Stats())
		}
		if addr, diff := fresh.CommittedMem().Diff(reused.CommittedMem()); diff {
			t.Errorf("job %d: committed memory differs at %#x", i, addr)
		}
	}
}

// TestSweepMemoization asserts the engine's reuse contract on the same
// sweep: every (config, bench) pair executes exactly once per engine, and a
// repeated sweep (the -all / summary pattern) is answered entirely from the
// memo table.
func TestSweepMemoization(t *testing.T) {
	eng := engine.New(4)
	if _, err := RunLadders(eng, detLadders(), detBenches, detInsts); err != nil {
		t.Fatal(err)
	}
	unique := uint64(0)
	for _, l := range detLadders() {
		unique += uint64(len(detBenches) * (1 + len(l.Configs)))
	}
	m := eng.Memo()
	if m.Misses != unique {
		t.Errorf("first sweep executed %d jobs, want %d unique", m.Misses, unique)
	}
	if m.Hits != 0 {
		t.Errorf("first sweep had %d memo hits, want 0 (all configs distinct)", m.Hits)
	}

	// The summary study re-runs the same three ladders: zero new executions.
	if _, err := RunLadders(eng, detLadders(), detBenches, detInsts); err != nil {
		t.Fatal(err)
	}
	m2 := eng.Memo()
	if m2.Misses != unique {
		t.Errorf("repeated sweep re-executed %d jobs; shared configs must run exactly once",
			m2.Misses-unique)
	}
	if m2.Hits != unique {
		t.Errorf("repeated sweep hits = %d, want %d", m2.Hits, unique)
	}
}
