package sim

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"svwsim/internal/pipeline"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenLadderResult builds a fully synthetic two-bench, two-rung ladder
// result. No simulation runs, so the rendered output is a pure function of
// these numbers — any formatting drift in print.go shows up as a diff.
func goldenLadderResult() *LadderResult {
	mk := func(cfg string, committed, cycles, loads, rex uint64) Result {
		var s pipeline.Stats
		s.Committed = committed
		s.Cycles = cycles
		s.CommittedLoads = loads
		s.RexLoads = rex
		return Result{Config: cfg, Stats: s}
	}
	l := Ladder{
		Name:     "golden",
		Baseline: pipeline.Config{Name: "base-golden"},
		Configs:  []pipeline.Config{{Name: "opt"}, {Name: "opt+svw"}},
		Labels:   []string{"OPT", "+SVW"},
	}
	return &LadderResult{
		Ladder:  l,
		Benches: []string{"gcc", "longbenchname"},
		Base: []Result{
			mk("base-golden", 100_000, 50_000, 25_000, 0),
			mk("base-golden", 100_000, 80_000, 30_000, 0),
		},
		Runs: [][]Result{
			{
				mk("opt", 100_000, 48_000, 25_000, 24_000),
				mk("opt", 100_000, 76_000, 30_000, 27_500),
			},
			{
				mk("opt+svw", 100_000, 44_000, 25_000, 1_250),
				mk("opt+svw", 100_000, 70_000, 30_000, 2_100),
			},
		},
	}
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run 'go test ./internal/sim -run Golden -update' to create)", err)
	}
	if got != string(want) {
		t.Errorf("%s drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s",
			name, got, want)
	}
}

// TestGoldenLadderTable pins the human-readable report format.
func TestGoldenLadderTable(t *testing.T) {
	var b strings.Builder
	goldenLadderResult().Print(&b)
	checkGolden(t, "ladder_table.golden", b.String())
}

// TestGoldenLadderJSON pins the machine-readable report format.
func TestGoldenLadderJSON(t *testing.T) {
	var b strings.Builder
	if err := goldenLadderResult().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "ladder_json.golden", b.String())
}
