package sim

import (
	"strings"
	"testing"
)

func TestConfigLaddersWellFormed(t *testing.T) {
	for _, l := range []Ladder{Fig5Ladder(), Fig6Ladder(), Fig7Ladder()} {
		if len(l.Configs) != 4 || len(l.Labels) != 4 {
			t.Errorf("%s: %d configs / %d labels", l.Name, len(l.Configs), len(l.Labels))
		}
		if l.Baseline.Name == "" {
			t.Errorf("%s: unnamed baseline", l.Name)
		}
	}
}

func TestStudyConfigsMatchPaperSetup(t *testing.T) {
	// §4.1: the NLQ machine issues two stores per cycle, the baseline one.
	if BaselineNLQ().StoreIssue != 1 || NLQ(SVWUpd).StoreIssue != 2 {
		t.Error("NLQ store issue widths")
	}
	if NLQ(SVWUpd).LQSearch {
		t.Error("NLQ must not search the LQ")
	}
	// §4.2: the SSQ baseline takes 4-cycle loads, the SSQ machine 2.
	if BaselineSSQ().LoadLat != 4 || SSQ(SVWUpd).LoadLat != 2 {
		t.Error("SSQ load latencies")
	}
	// §4.3: the RLE study uses the 4-wide machine with a 4-stage rex pipe.
	if BaselineRLE().CommitWidth != 4 || RLE(RLESVW).RexStages != 4 {
		t.Error("RLE machine shape")
	}
	if !RLE(RLESVW).RLE.SquashReuse || RLE(RLESVWNoSQ).RLE.SquashReuse {
		t.Error("squash-reuse toggles")
	}
	// SVW defaults: 16-bit SSNs, 512-entry SSBF.
	c := SSQ(SVWUpd)
	if c.SVW.SSNBits != 16 || c.SVW.SSBF.Entries != 512 {
		t.Error("SVW defaults")
	}
	if !c.SVW.UpdateOnForward || SSQ(SVWNoUpd).SVW.UpdateOnForward {
		t.Error("UPD toggles")
	}
}

func TestRunLadderSmall(t *testing.T) {
	res, err := RunLadder(Fig5Ladder(), []string{"gcc"}, 25_000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Base) != 1 || len(res.Runs) != 4 {
		t.Fatal("result shape")
	}
	if res.Base[0].IPC() <= 0 {
		t.Error("baseline IPC")
	}
	// The raw NLQ re-executes more than +SVW.
	if res.RexRate(0, 0) <= res.RexRate(2, 0) {
		t.Errorf("rex rates: raw %.3f vs svw %.3f", res.RexRate(0, 0), res.RexRate(2, 0))
	}
	var b strings.Builder
	res.Print(&b)
	out := b.String()
	for _, want := range []string{"gcc", "NLQ", "+SVW+UPD", "+PERFECT", "avg"} {
		if !strings.Contains(out, want) {
			t.Errorf("printout missing %q", want)
		}
	}
}

func TestFig8VariantsComplete(t *testing.T) {
	vars := Fig8Variants()
	labels := map[string]bool{}
	for _, v := range vars {
		labels[v.Label] = true
	}
	for _, want := range []string{"128", "512", "2048", "Bloom", "4-byte", "Infinite"} {
		if !labels[want] {
			t.Errorf("missing variant %s", want)
		}
	}
	// The infinite variant must use the exact filter.
	for _, v := range vars {
		if v.Label == "Infinite" && v.Cfg.Entries != 0 {
			t.Error("infinite variant misconfigured")
		}
		if v.Label == "Bloom" && !v.Cfg.DualHash {
			t.Error("Bloom variant misconfigured")
		}
	}
}

func TestSpeedupSigns(t *testing.T) {
	a := Result{}
	a.Stats.Committed, a.Stats.Cycles = 1000, 500 // IPC 2
	b := Result{}
	b.Stats.Committed, b.Stats.Cycles = 1000, 400 // IPC 2.5
	if s := Speedup(&a, &b); s < 24.9 || s > 25.1 {
		t.Errorf("speedup = %f", s)
	}
	if s := Speedup(&b, &a); s > -19.9 || s < -20.1 {
		t.Errorf("slowdown = %f", s)
	}
}

func TestAllBenches(t *testing.T) {
	if len(AllBenches()) != 16 {
		t.Error("bench list")
	}
}
