package sim

import (
	"context"
	"fmt"

	"svwsim/internal/core"
	"svwsim/internal/pipeline"
	"svwsim/internal/sim/engine"
	"svwsim/internal/workload"
)

// Ladder is one figure's configuration family: a baseline plus the variants
// whose re-execution rates and baseline-relative speedups the figure plots.
type Ladder struct {
	Name     string
	Baseline pipeline.Config
	Configs  []pipeline.Config
	Labels   []string
}

// Fig5Ladder returns the NLQls study (paper Fig. 5).
func Fig5Ladder() Ladder {
	return Ladder{
		Name:     "fig5-nlq",
		Baseline: BaselineNLQ(),
		Configs: []pipeline.Config{
			NLQ(SVWOff), NLQ(SVWNoUpd), NLQ(SVWUpd), NLQ(Perfect),
		},
		Labels: []string{"NLQ", "+SVW-UPD", "+SVW+UPD", "+PERFECT"},
	}
}

// Fig6Ladder returns the SSQ study (paper Fig. 6).
func Fig6Ladder() Ladder {
	return Ladder{
		Name:     "fig6-ssq",
		Baseline: BaselineSSQ(),
		Configs: []pipeline.Config{
			SSQ(SVWOff), SSQ(SVWNoUpd), SSQ(SVWUpd), SSQ(Perfect),
		},
		Labels: []string{"SSQ", "+SVW-UPD", "+SVW+UPD", "+PERFECT"},
	}
}

// Fig7Ladder returns the RLE study (paper Fig. 7).
func Fig7Ladder() Ladder {
	return Ladder{
		Name:     "fig7-rle",
		Baseline: BaselineRLE(),
		Configs: []pipeline.Config{
			RLE(RLERaw), RLE(RLESVW), RLE(RLESVWNoSQ), RLE(RLEPerfect),
		},
		Labels: []string{"RLE", "+SVW", "+SVW-SQU", "+PERFECT"},
	}
}

// LadderResult holds one ladder's runs: Base[b] is the baseline on benchmark
// b; Runs[c][b] is config c on benchmark b.
type LadderResult struct {
	Ladder  Ladder
	Benches []string
	Base    []Result
	Runs    [][]Result
}

// LadderJobs flattens a ladder over benchmarks into engine jobs: for each
// benchmark, the baseline followed by every rung, in declaration order. The
// returned order is the scatter order Gather expects.
func LadderJobs(l Ladder, benches []string, insts uint64) []engine.Job {
	var jobs []engine.Job
	for _, bench := range benches {
		jobs = append(jobs, engine.Job{
			Study: l.Name, Label: "baseline", Config: l.Baseline,
			Bench: bench, Insts: insts,
		})
		for ci, cfg := range l.Configs {
			jobs = append(jobs, engine.Job{
				Study: l.Name, Label: l.Labels[ci], Config: cfg,
				Bench: bench, Insts: insts,
			})
		}
	}
	return jobs
}

// gather scatters a ladder's slice of engine results (in LadderJobs order)
// back into a LadderResult.
func gather(l Ladder, benches []string, rs []engine.JobResult) *LadderResult {
	res := &LadderResult{Ladder: l, Benches: benches}
	res.Base = make([]Result, len(benches))
	res.Runs = make([][]Result, len(l.Configs))
	for i := range res.Runs {
		res.Runs[i] = make([]Result, len(benches))
	}
	k := 0
	for bi := range benches {
		res.Base[bi] = rs[k].Result
		k++
		for ci := range l.Configs {
			res.Runs[ci][bi] = rs[k].Result
			k++
		}
	}
	return res
}

// stampSample marks every job for sampled execution under spec. A zero
// spec is a no-op, so exact studies keep byte-identical jobs and memo keys.
func stampSample(jobs []engine.Job, spec pipeline.SampleSpec) []engine.Job {
	if spec.Enabled() {
		for i := range jobs {
			jobs[i].Sample = spec
		}
	}
	return jobs
}

// RunLadders executes several ladders as one flat job list on eng, so
// configurations shared between ladders (and with any earlier sweep on the
// same engine) run exactly once. Results are returned per ladder, in order.
func RunLadders(eng *engine.Engine, ladders []Ladder, benches []string, insts uint64) ([]*LadderResult, error) {
	return RunLaddersContext(context.Background(), eng, ladders, benches, insts)
}

// RunLaddersContext is RunLadders with cancellation: queued-but-unstarted
// jobs are skipped once ctx is done (see engine.RunContext).
func RunLaddersContext(ctx context.Context, eng *engine.Engine, ladders []Ladder, benches []string, insts uint64) ([]*LadderResult, error) {
	return RunLaddersSampled(ctx, eng, ladders, benches, insts, pipeline.SampleSpec{})
}

// RunLaddersSampled is RunLaddersContext with a sampling spec stamped on
// every job (zero spec = exact, identical to RunLaddersContext).
func RunLaddersSampled(ctx context.Context, eng *engine.Engine, ladders []Ladder, benches []string, insts uint64, spec pipeline.SampleSpec) ([]*LadderResult, error) {
	var jobs []engine.Job
	for _, l := range ladders {
		jobs = append(jobs, LadderJobs(l, benches, insts)...)
	}
	rs, err := eng.RunContext(ctx, stampSample(jobs, spec), nil)
	if err != nil {
		return nil, err
	}
	out := make([]*LadderResult, len(ladders))
	k := 0
	for i, l := range ladders {
		n := len(benches) * (1 + len(l.Configs))
		out[i] = gather(l, benches, rs[k:k+n])
		k += n
	}
	return out, nil
}

// RunLadder executes a ladder over the benchmarks with par workers
// (0 = GOMAXPROCS). insts 0 keeps each config's default budget.
func RunLadder(l Ladder, benches []string, insts uint64, par int) (*LadderResult, error) {
	res, err := RunLadders(engine.New(par), []Ladder{l}, benches, insts)
	if err != nil {
		return nil, err
	}
	return res[0], nil
}

// Speedup returns config ci's percent IPC improvement over baseline on
// benchmark bi.
func (r *LadderResult) Speedup(ci, bi int) float64 {
	return Speedup(&r.Base[bi], &r.Runs[ci][bi])
}

// AvgSpeedup averages Speedup over benchmarks.
func (r *LadderResult) AvgSpeedup(ci int) float64 {
	var s float64
	for bi := range r.Benches {
		s += r.Speedup(ci, bi)
	}
	return s / float64(len(r.Benches))
}

// RexRate returns config ci's re-execution rate on benchmark bi.
func (r *LadderResult) RexRate(ci, bi int) float64 {
	return r.Runs[ci][bi].Stats.RexRate()
}

// AvgRexRate averages RexRate over benchmarks.
func (r *LadderResult) AvgRexRate(ci int) float64 {
	var s float64
	for bi := range r.Benches {
		s += r.RexRate(ci, bi)
	}
	return s / float64(len(r.Benches))
}

// --- Fig. 8: SSBF organization sensitivity ------------------------------

// SSBFVariant names one Fig. 8 organization.
type SSBFVariant struct {
	Label string
	Cfg   core.SSBFConfig
}

// Fig8Variants returns the paper's six SSBF organizations.
func Fig8Variants() []SSBFVariant {
	return []SSBFVariant{
		{"128", core.SSBFConfig{Entries: 128, GranuleBytes: 8, LineBytes: 64}},
		{"512", core.SSBFConfig{Entries: 512, GranuleBytes: 8, LineBytes: 64}},
		{"2048", core.SSBFConfig{Entries: 2048, GranuleBytes: 8, LineBytes: 64}},
		{"Bloom", core.SSBFConfig{Entries: 512, GranuleBytes: 8, DualHash: true, DualEntries: 512, LineBytes: 64}},
		{"4-byte", core.SSBFConfig{Entries: 512, GranuleBytes: 4, LineBytes: 64}},
		{"Infinite", core.SSBFConfig{Entries: 0, GranuleBytes: 4, LineBytes: 64}},
	}
}

// Fig8Result holds rex rates [variant][bench] plus IPCs for the performance
// sensitivity sentence in §4.4.
type Fig8Result struct {
	Benches  []string
	Variants []SSBFVariant
	Rex      [][]float64
	IPC      [][]float64
}

// RunFig8 sweeps SSBF organizations on the SSQ machine (the optimization
// with the highest re-execution rates).
func RunFig8(benches []string, insts uint64, par int) (*Fig8Result, error) {
	return RunFig8With(engine.New(par), benches, insts)
}

// RunFig8With is RunFig8 on a caller-supplied (possibly shared) engine.
func RunFig8With(eng *engine.Engine, benches []string, insts uint64) (*Fig8Result, error) {
	return RunFig8Context(context.Background(), eng, benches, insts)
}

// RunFig8Context is RunFig8With with cancellation.
func RunFig8Context(ctx context.Context, eng *engine.Engine, benches []string, insts uint64) (*Fig8Result, error) {
	return RunFig8Sampled(ctx, eng, benches, insts, pipeline.SampleSpec{})
}

// RunFig8Sampled is RunFig8Context with a sampling spec stamped on every
// job (zero spec = exact).
func RunFig8Sampled(ctx context.Context, eng *engine.Engine, benches []string, insts uint64, spec pipeline.SampleSpec) (*Fig8Result, error) {
	vars := Fig8Variants()
	out := &Fig8Result{Benches: benches, Variants: vars}
	out.Rex = make([][]float64, len(vars))
	out.IPC = make([][]float64, len(vars))
	var jobs []engine.Job
	for vi := range vars {
		out.Rex[vi] = make([]float64, len(benches))
		out.IPC[vi] = make([]float64, len(benches))
		for bi := range benches {
			cfg := SSQ(SVWUpd)
			cfg.SVW.SSBF = vars[vi].Cfg
			cfg.Name = "ssq+svw/" + vars[vi].Label
			jobs = append(jobs, engine.Job{
				Study: "fig8-ssbf", Label: vars[vi].Label, Config: cfg,
				Bench: benches[bi], Insts: insts,
			})
		}
	}
	rs, err := eng.RunContext(ctx, stampSample(jobs, spec), nil)
	if err != nil {
		return nil, err
	}
	for k, r := range rs {
		vi, bi := k/len(benches), k%len(benches)
		out.Rex[vi][bi] = r.Result.Stats.RexRate()
		out.IPC[vi][bi] = r.Result.Stats.IPC()
	}
	return out, nil
}

// --- §3.6 sensitivity studies --------------------------------------------

// SSNWidthResult holds the wrap-drain study: IPC and drain counts per SSN
// width, relative to infinite-width SSNs.
type SSNWidthResult struct {
	Benches []string
	Bits    []int // 0 = infinite
	IPC     [][]float64
	Drains  [][]uint64
}

// RunSSNWidth sweeps hardware SSN widths on the SSQ machine.
func RunSSNWidth(benches []string, bits []int, insts uint64, par int) (*SSNWidthResult, error) {
	return RunSSNWidthWith(engine.New(par), benches, bits, insts)
}

// RunSSNWidthWith is RunSSNWidth on a caller-supplied engine.
func RunSSNWidthWith(eng *engine.Engine, benches []string, bits []int, insts uint64) (*SSNWidthResult, error) {
	return RunSSNWidthContext(context.Background(), eng, benches, bits, insts)
}

// RunSSNWidthContext is RunSSNWidthWith with cancellation.
func RunSSNWidthContext(ctx context.Context, eng *engine.Engine, benches []string, bits []int, insts uint64) (*SSNWidthResult, error) {
	return RunSSNWidthSampled(ctx, eng, benches, bits, insts, pipeline.SampleSpec{})
}

// RunSSNWidthSampled is RunSSNWidthContext with a sampling spec stamped on
// every job (zero spec = exact).
func RunSSNWidthSampled(ctx context.Context, eng *engine.Engine, benches []string, bits []int, insts uint64, spec pipeline.SampleSpec) (*SSNWidthResult, error) {
	out := &SSNWidthResult{Benches: benches, Bits: bits}
	out.IPC = make([][]float64, len(bits))
	out.Drains = make([][]uint64, len(bits))
	var jobs []engine.Job
	for wi := range bits {
		out.IPC[wi] = make([]float64, len(benches))
		out.Drains[wi] = make([]uint64, len(benches))
		for bi := range benches {
			cfg := SSQ(SVWUpd)
			cfg.SVW.SSNBits = bits[wi]
			cfg.Name = fmt.Sprintf("ssq+svw/ssn%d", bits[wi])
			jobs = append(jobs, engine.Job{
				Study: "ssn-width", Label: cfg.Name, Config: cfg,
				Bench: benches[bi], Insts: insts,
			})
		}
	}
	rs, err := eng.RunContext(ctx, stampSample(jobs, spec), nil)
	if err != nil {
		return nil, err
	}
	for k, r := range rs {
		wi, bi := k/len(benches), k%len(benches)
		out.IPC[wi][bi] = r.Result.Stats.IPC()
		out.Drains[wi][bi] = r.Result.Stats.WrapDrains
	}
	return out, nil
}

// SSBFUpdateResult compares speculative vs atomic SSBF update policies.
type SSBFUpdateResult struct {
	Benches            []string
	RexSpec, RexAtomic []float64
	IPCSpec, IPCAtomic []float64
}

// RunSSBFUpdatePolicy measures §3.6's speculative-update trade-off on the
// SSQ machine.
func RunSSBFUpdatePolicy(benches []string, insts uint64, par int) (*SSBFUpdateResult, error) {
	return RunSSBFUpdatePolicyWith(engine.New(par), benches, insts)
}

// RunSSBFUpdatePolicyWith is RunSSBFUpdatePolicy on a caller-supplied engine.
func RunSSBFUpdatePolicyWith(eng *engine.Engine, benches []string, insts uint64) (*SSBFUpdateResult, error) {
	return RunSSBFUpdatePolicyContext(context.Background(), eng, benches, insts)
}

// RunSSBFUpdatePolicyContext is RunSSBFUpdatePolicyWith with cancellation.
func RunSSBFUpdatePolicyContext(ctx context.Context, eng *engine.Engine, benches []string, insts uint64) (*SSBFUpdateResult, error) {
	return RunSSBFUpdatePolicySampled(ctx, eng, benches, insts, pipeline.SampleSpec{})
}

// RunSSBFUpdatePolicySampled is RunSSBFUpdatePolicyContext with a sampling
// spec stamped on every job (zero spec = exact).
func RunSSBFUpdatePolicySampled(ctx context.Context, eng *engine.Engine, benches []string, insts uint64, spec pipeline.SampleSpec) (*SSBFUpdateResult, error) {
	out := &SSBFUpdateResult{
		Benches:   benches,
		RexSpec:   make([]float64, len(benches)),
		RexAtomic: make([]float64, len(benches)),
		IPCSpec:   make([]float64, len(benches)),
		IPCAtomic: make([]float64, len(benches)),
	}
	var jobs []engine.Job
	for bi := range benches {
		for _, spec := range []bool{true, false} {
			cfg := SSQ(SVWUpd)
			cfg.SVW.SpeculativeSSBF = spec
			label := "spec"
			if !spec {
				cfg.Name = "ssq+svw/atomic"
				label = "atomic"
			}
			jobs = append(jobs, engine.Job{
				Study: "ssbf-update", Label: label, Config: cfg,
				Bench: benches[bi], Insts: insts,
			})
		}
	}
	rs, err := eng.RunContext(ctx, stampSample(jobs, spec), nil)
	if err != nil {
		return nil, err
	}
	for k, r := range rs {
		bi, spec := k/2, k%2 == 0
		if spec {
			out.RexSpec[bi] = r.Result.Stats.RexRate()
			out.IPCSpec[bi] = r.Result.Stats.IPC()
		} else {
			out.RexAtomic[bi] = r.Result.Stats.RexRate()
			out.IPCAtomic[bi] = r.Result.Stats.IPC()
		}
	}
	return out, nil
}

// AllBenches returns every benchmark name.
func AllBenches() []string { return workload.Names() }
