package sim

import (
	"fmt"
	"runtime"
	"sync"

	"svwsim/internal/core"
	"svwsim/internal/pipeline"
	"svwsim/internal/workload"
)

// Ladder is one figure's configuration family: a baseline plus the variants
// whose re-execution rates and baseline-relative speedups the figure plots.
type Ladder struct {
	Name     string
	Baseline pipeline.Config
	Configs  []pipeline.Config
	Labels   []string
}

// Fig5Ladder returns the NLQls study (paper Fig. 5).
func Fig5Ladder() Ladder {
	return Ladder{
		Name:     "fig5-nlq",
		Baseline: BaselineNLQ(),
		Configs: []pipeline.Config{
			NLQ(SVWOff), NLQ(SVWNoUpd), NLQ(SVWUpd), NLQ(Perfect),
		},
		Labels: []string{"NLQ", "+SVW-UPD", "+SVW+UPD", "+PERFECT"},
	}
}

// Fig6Ladder returns the SSQ study (paper Fig. 6).
func Fig6Ladder() Ladder {
	return Ladder{
		Name:     "fig6-ssq",
		Baseline: BaselineSSQ(),
		Configs: []pipeline.Config{
			SSQ(SVWOff), SSQ(SVWNoUpd), SSQ(SVWUpd), SSQ(Perfect),
		},
		Labels: []string{"SSQ", "+SVW-UPD", "+SVW+UPD", "+PERFECT"},
	}
}

// Fig7Ladder returns the RLE study (paper Fig. 7).
func Fig7Ladder() Ladder {
	return Ladder{
		Name:     "fig7-rle",
		Baseline: BaselineRLE(),
		Configs: []pipeline.Config{
			RLE(RLERaw), RLE(RLESVW), RLE(RLESVWNoSQ), RLE(RLEPerfect),
		},
		Labels: []string{"RLE", "+SVW", "+SVW-SQU", "+PERFECT"},
	}
}

// LadderResult holds one ladder's runs: Base[b] is the baseline on benchmark
// b; Runs[c][b] is config c on benchmark b.
type LadderResult struct {
	Ladder  Ladder
	Benches []string
	Base    []Result
	Runs    [][]Result
}

// RunLadder executes a ladder over the benchmarks with par workers
// (0 = GOMAXPROCS). insts 0 keeps each config's default budget.
func RunLadder(l Ladder, benches []string, insts uint64, par int) (*LadderResult, error) {
	res := &LadderResult{Ladder: l, Benches: benches}
	res.Base = make([]Result, len(benches))
	res.Runs = make([][]Result, len(l.Configs))
	for i := range res.Runs {
		res.Runs[i] = make([]Result, len(benches))
	}

	type job struct {
		cfg   pipeline.Config
		bench string
		out   *Result
	}
	var jobs []job
	for bi, bench := range benches {
		jobs = append(jobs, job{l.Baseline, bench, &res.Base[bi]})
		for ci, cfg := range l.Configs {
			jobs = append(jobs, job{cfg, bench, &res.Runs[ci][bi]})
		}
	}
	if err := runJobs(jobs, insts, par, func(j job) (Result, error) {
		return Run(j.cfg, j.bench, insts)
	}, func(j job, r Result) { *j.out = r }); err != nil {
		return nil, err
	}
	return res, nil
}

// runJobs fans work out over a bounded worker pool, failing fast on error.
func runJobs[T any](jobs []T, insts uint64, par int,
	run func(T) (Result, error), store func(T, Result)) error {
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		err1 error
	)
	sem := make(chan struct{}, par)
	for _, j := range jobs {
		wg.Add(1)
		sem <- struct{}{}
		go func(j T) {
			defer wg.Done()
			defer func() { <-sem }()
			r, err := run(j)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if err1 == nil {
					err1 = err
				}
				return
			}
			store(j, r)
		}(j)
	}
	wg.Wait()
	return err1
}

// Speedup returns config ci's percent IPC improvement over baseline on
// benchmark bi.
func (r *LadderResult) Speedup(ci, bi int) float64 {
	return Speedup(&r.Base[bi], &r.Runs[ci][bi])
}

// AvgSpeedup averages Speedup over benchmarks.
func (r *LadderResult) AvgSpeedup(ci int) float64 {
	var s float64
	for bi := range r.Benches {
		s += r.Speedup(ci, bi)
	}
	return s / float64(len(r.Benches))
}

// RexRate returns config ci's re-execution rate on benchmark bi.
func (r *LadderResult) RexRate(ci, bi int) float64 {
	return r.Runs[ci][bi].Stats.RexRate()
}

// AvgRexRate averages RexRate over benchmarks.
func (r *LadderResult) AvgRexRate(ci int) float64 {
	var s float64
	for bi := range r.Benches {
		s += r.RexRate(ci, bi)
	}
	return s / float64(len(r.Benches))
}

// --- Fig. 8: SSBF organization sensitivity ------------------------------

// SSBFVariant names one Fig. 8 organization.
type SSBFVariant struct {
	Label string
	Cfg   core.SSBFConfig
}

// Fig8Variants returns the paper's six SSBF organizations.
func Fig8Variants() []SSBFVariant {
	return []SSBFVariant{
		{"128", core.SSBFConfig{Entries: 128, GranuleBytes: 8, LineBytes: 64}},
		{"512", core.SSBFConfig{Entries: 512, GranuleBytes: 8, LineBytes: 64}},
		{"2048", core.SSBFConfig{Entries: 2048, GranuleBytes: 8, LineBytes: 64}},
		{"Bloom", core.SSBFConfig{Entries: 512, GranuleBytes: 8, DualHash: true, DualEntries: 512, LineBytes: 64}},
		{"4-byte", core.SSBFConfig{Entries: 512, GranuleBytes: 4, LineBytes: 64}},
		{"Infinite", core.SSBFConfig{Entries: 0, GranuleBytes: 4, LineBytes: 64}},
	}
}

// Fig8Result holds rex rates [variant][bench] plus IPCs for the performance
// sensitivity sentence in §4.4.
type Fig8Result struct {
	Benches  []string
	Variants []SSBFVariant
	Rex      [][]float64
	IPC      [][]float64
}

// RunFig8 sweeps SSBF organizations on the SSQ machine (the optimization
// with the highest re-execution rates).
func RunFig8(benches []string, insts uint64, par int) (*Fig8Result, error) {
	vars := Fig8Variants()
	out := &Fig8Result{Benches: benches, Variants: vars}
	out.Rex = make([][]float64, len(vars))
	out.IPC = make([][]float64, len(vars))
	for i := range out.Rex {
		out.Rex[i] = make([]float64, len(benches))
		out.IPC[i] = make([]float64, len(benches))
	}
	type job struct{ vi, bi int }
	var jobs []job
	for vi := range vars {
		for bi := range benches {
			jobs = append(jobs, job{vi, bi})
		}
	}
	return out, runJobs(jobs, insts, par, func(j job) (Result, error) {
		cfg := SSQ(SVWUpd)
		cfg.SVW.SSBF = vars[j.vi].Cfg
		cfg.Name = "ssq+svw/" + vars[j.vi].Label
		return Run(cfg, benches[j.bi], insts)
	}, func(j job, r Result) {
		out.Rex[j.vi][j.bi] = r.Stats.RexRate()
		out.IPC[j.vi][j.bi] = r.Stats.IPC()
	})
}

// --- §3.6 sensitivity studies --------------------------------------------

// SSNWidthResult holds the wrap-drain study: IPC and drain counts per SSN
// width, relative to infinite-width SSNs.
type SSNWidthResult struct {
	Benches []string
	Bits    []int // 0 = infinite
	IPC     [][]float64
	Drains  [][]uint64
}

// RunSSNWidth sweeps hardware SSN widths on the SSQ machine.
func RunSSNWidth(benches []string, bits []int, insts uint64, par int) (*SSNWidthResult, error) {
	out := &SSNWidthResult{Benches: benches, Bits: bits}
	out.IPC = make([][]float64, len(bits))
	out.Drains = make([][]uint64, len(bits))
	for i := range bits {
		out.IPC[i] = make([]float64, len(benches))
		out.Drains[i] = make([]uint64, len(benches))
	}
	type job struct{ wi, bi int }
	var jobs []job
	for wi := range bits {
		for bi := range benches {
			jobs = append(jobs, job{wi, bi})
		}
	}
	return out, runJobs(jobs, insts, par, func(j job) (Result, error) {
		cfg := SSQ(SVWUpd)
		cfg.SVW.SSNBits = bits[j.wi]
		cfg.Name = fmt.Sprintf("ssq+svw/ssn%d", bits[j.wi])
		return Run(cfg, benches[j.bi], insts)
	}, func(j job, r Result) {
		out.IPC[j.wi][j.bi] = r.Stats.IPC()
		out.Drains[j.wi][j.bi] = r.Stats.WrapDrains
	})
}

// SSBFUpdateResult compares speculative vs atomic SSBF update policies.
type SSBFUpdateResult struct {
	Benches            []string
	RexSpec, RexAtomic []float64
	IPCSpec, IPCAtomic []float64
}

// RunSSBFUpdatePolicy measures §3.6's speculative-update trade-off on the
// SSQ machine.
func RunSSBFUpdatePolicy(benches []string, insts uint64, par int) (*SSBFUpdateResult, error) {
	out := &SSBFUpdateResult{
		Benches:   benches,
		RexSpec:   make([]float64, len(benches)),
		RexAtomic: make([]float64, len(benches)),
		IPCSpec:   make([]float64, len(benches)),
		IPCAtomic: make([]float64, len(benches)),
	}
	type job struct {
		bi   int
		spec bool
	}
	var jobs []job
	for bi := range benches {
		jobs = append(jobs, job{bi, true}, job{bi, false})
	}
	return out, runJobs(jobs, insts, par, func(j job) (Result, error) {
		cfg := SSQ(SVWUpd)
		cfg.SVW.SpeculativeSSBF = j.spec
		if !j.spec {
			cfg.Name = "ssq+svw/atomic"
		}
		return Run(cfg, benches[j.bi], insts)
	}, func(j job, r Result) {
		if j.spec {
			out.RexSpec[j.bi] = r.Stats.RexRate()
			out.IPCSpec[j.bi] = r.Stats.IPC()
		} else {
			out.RexAtomic[j.bi] = r.Stats.RexRate()
			out.IPCAtomic[j.bi] = r.Stats.IPC()
		}
	})
}

// AllBenches returns every benchmark name.
func AllBenches() []string { return workload.Names() }
