package sim

import (
	"encoding/json"
	"strings"
	"testing"

	"svwsim/internal/sim/engine"
)

// The differential-equivalence suite: a golden snapshot of the full
// `svwsim -json` sweep — every registry configuration crossed with three
// behaviourally distinct benchmarks at a reduced instruction budget —
// captured before the zero-allocation rewrite of the timing core. The
// optimized core must reproduce it byte-for-byte: any change to timing,
// stats accounting, or JSON encoding shows up as a diff against
// testdata/svwsim_sweep.golden. Regenerate (deliberately!) with
//
//	go test ./internal/sim -run GoldenSVWSimSweep -update
const goldenSweepInsts = 8_000

var goldenSweepBenches = []string{"crafty", "gcc", "twolf"}

// goldenSweepJobs is the cross product cmd/svwsim would run for
// `-config <all registry names> -bench crafty,gcc,twolf`.
func goldenSweepJobs(t *testing.T) []engine.Job {
	t.Helper()
	var jobs []engine.Job
	for _, cname := range ConfigNames() {
		cfg, ok := ConfigByName(cname)
		if !ok {
			t.Fatalf("registry name %q does not resolve", cname)
		}
		for _, b := range goldenSweepBenches {
			jobs = append(jobs, engine.Job{Study: "svwsim", Label: cfg.Name,
				Config: cfg, Bench: b, Insts: goldenSweepInsts})
		}
	}
	return jobs
}

// renderSweepJSON encodes results exactly the way cmd/svwsim -json does:
// one indented JSON object per result, in job order.
func renderSweepJSON(t *testing.T, rs []engine.JobResult) string {
	t.Helper()
	var b strings.Builder
	enc := json.NewEncoder(&b)
	enc.SetIndent("", "  ")
	for _, r := range rs {
		if err := enc.Encode(r.Result); err != nil {
			t.Fatal(err)
		}
	}
	return b.String()
}

func runGoldenSweep(t *testing.T, workers int) string {
	t.Helper()
	eng := engine.New(workers)
	rs, err := eng.Run(goldenSweepJobs(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	return renderSweepJSON(t, rs)
}

// TestGoldenSVWSimSweep asserts the timing core reproduces the committed
// pre-rewrite study output byte-for-byte.
func TestGoldenSVWSimSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	checkGolden(t, "svwsim_sweep.golden", runGoldenSweep(t, 4))
}

// TestGoldenSweepWorkerInvariance re-asserts -j 1 == -j 4 on the golden
// sweep itself (the full registry, not just the figure ladders).
func TestGoldenSweepWorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if seq, par := runGoldenSweep(t, 1), runGoldenSweep(t, 4); seq != par {
		t.Fatal("golden sweep differs between -j 1 and -j 4")
	}
}
