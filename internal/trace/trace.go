// Package trace is the serving stack's request-tracing core: a trace ID
// that rides the X-Svw-Trace-Id header across every layer seam (client →
// svwctl → svwd → engine), span recording keyed off context.Context, a
// fixed-size ring of completed traces served at GET /debug/traces, and
// structured slow-request logging.
//
// The package is dependency-free (stdlib only) and allocation-disciplined:
// recording happens at request and job granularity, never inside the
// simulator's timing core, and every operation is a no-op on a nil *Trace,
// so instrumented code paths cost one nil check when tracing is off — the
// engine's steady-state cycle loop is untouched either way.
//
// Concurrency: a Trace accumulates spans from many goroutines (engine
// workers, coordinator dispatch walks, hedge attempts) under one mutex.
// Spans may finish — or even start — after the request that owns the
// trace has completed (an abandoned hedge observes its cancellation
// late); the ring holds the live object, so /debug/traces reflects those
// stragglers whenever they land.
package trace

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sync"
	"time"
)

// Header carries the request's trace ID. Generated at the edge when the
// client did not send one, echoed on the response, and forwarded verbatim
// on every backend hop so one ID names the request on every layer.
const Header = "X-Svw-Trace-Id"

// maxIDLen bounds accepted client-supplied IDs; longer (or otherwise
// malformed) IDs are replaced at the edge rather than trusted.
const maxIDLen = 64

// NewID returns a fresh 16-hex-character trace ID.
func NewID() string {
	var b [8]byte
	rand.Read(b[:])
	return hex.EncodeToString(b[:])
}

// ValidID reports whether a client-supplied trace ID is acceptable:
// non-empty, bounded, and limited to word characters plus '-' (so IDs are
// safe to log, grep and embed in JSON unescaped).
func ValidID(id string) bool {
	if id == "" || len(id) > maxIDLen {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z',
			c == '-', c == '_':
		default:
			return false
		}
	}
	return true
}

// Attr is one key=value annotation on a span.
type Attr struct {
	Key, Value string
}

// span is the internal span record; spans are stored flat with parent
// indices, so a whole trace is one growable slice.
type span struct {
	name   string
	start  time.Time
	dur    time.Duration
	parent int32 // index into Trace.spans; -1 for top-level spans
	ended  bool
	attrs  []Attr
}

// Trace is one request's span collection. Create with New, propagate with
// NewContext/FromContext, close with Finish. All methods are safe for
// concurrent use and are no-ops on a nil receiver.
type Trace struct {
	id       string
	endpoint string
	start    time.Time

	mu    sync.Mutex
	spans []span
	dur   time.Duration
	done  bool
}

// New starts a trace. An empty (or invalid) id gets a fresh one, so the
// edge can pass the client header through unconditionally.
func New(id, endpoint string) *Trace {
	if !ValidID(id) {
		id = NewID()
	}
	return &Trace{id: id, endpoint: endpoint, start: time.Now()}
}

// ID returns the trace ID ("" on nil).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Endpoint returns the endpoint label the trace was opened under.
func (t *Trace) Endpoint() string {
	if t == nil {
		return ""
	}
	return t.endpoint
}

// Finish closes the trace, fixing its duration; later calls return the
// same duration. Spans may still be appended afterwards (a straggling
// hedge attempt); they are kept and visible on /debug/traces.
func (t *Trace) Finish() time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.done {
		t.done = true
		t.dur = time.Since(t.start)
	}
	return t.dur
}

// Span is a handle on one recorded span. The zero Span (from a nil Trace)
// is inert: End/SetAttr/Child do nothing.
type Span struct {
	t   *Trace
	idx int32
}

// Active reports whether the handle records into a live trace — use it to
// skip attribute formatting entirely when tracing is off.
func (s Span) Active() bool { return s.t != nil }

// Start opens a top-level span.
func (t *Trace) Start(name string) Span { return t.startSpan(name, -1) }

// Child opens a span parented under s.
func (s Span) Child(name string) Span {
	if s.t == nil {
		return Span{}
	}
	return s.t.startSpan(name, s.idx)
}

func (t *Trace) startSpan(name string, parent int32) Span {
	if t == nil {
		return Span{}
	}
	t.mu.Lock()
	idx := int32(len(t.spans))
	t.spans = append(t.spans, span{name: name, start: time.Now(), parent: parent})
	t.mu.Unlock()
	return Span{t: t, idx: idx}
}

// End closes the span, fixing its duration; later calls are no-ops.
func (s Span) End() {
	if s.t == nil {
		return
	}
	s.t.mu.Lock()
	sp := &s.t.spans[s.idx]
	if !sp.ended {
		sp.ended = true
		sp.dur = time.Since(sp.start)
	}
	s.t.mu.Unlock()
}

// SetAttr appends one key=value annotation.
func (s Span) SetAttr(key, value string) {
	if s.t == nil {
		return
	}
	s.t.mu.Lock()
	sp := &s.t.spans[s.idx]
	sp.attrs = append(sp.attrs, Attr{Key: key, Value: value})
	s.t.mu.Unlock()
}

// --- wire shapes ---------------------------------------------------------

// SpanJSON is one span as served on /debug/traces and in slow-request log
// lines. Offsets and durations are microseconds relative to the trace
// start, so a span tree reads as a timeline without timestamp arithmetic.
type SpanJSON struct {
	Name string `json:"name"`
	// Parent is the index of the parent span in the trace's Spans slice
	// (-1 for top-level spans).
	Parent  int               `json:"parent"`
	StartUS int64             `json:"start_us"`
	DurUS   int64             `json:"dur_us"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

// TraceJSON is one completed (or still-accumulating) trace on the wire.
type TraceJSON struct {
	TraceID  string    `json:"trace_id"`
	Endpoint string    `json:"endpoint"`
	Start    time.Time `json:"start"`
	// DurUS is the whole request's duration; 0 until Finish (Done=false).
	DurUS int64      `json:"dur_us"`
	Done  bool       `json:"done"`
	Spans []SpanJSON `json:"spans"`
}

// JSON snapshots the trace into its wire shape.
func (t *Trace) JSON() TraceJSON {
	if t == nil {
		return TraceJSON{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := TraceJSON{
		TraceID:  t.id,
		Endpoint: t.endpoint,
		Start:    t.start,
		DurUS:    t.dur.Microseconds(),
		Done:     t.done,
		Spans:    make([]SpanJSON, len(t.spans)),
	}
	for i := range t.spans {
		sp := &t.spans[i]
		sj := SpanJSON{
			Name:    sp.name,
			Parent:  int(sp.parent),
			StartUS: sp.start.Sub(t.start).Microseconds(),
			DurUS:   sp.dur.Microseconds(),
		}
		if len(sp.attrs) > 0 {
			sj.Attrs = make(map[string]string, len(sp.attrs))
			for _, a := range sp.attrs {
				sj.Attrs[a.Key] = a.Value
			}
		}
		out.Spans[i] = sj
	}
	return out
}

// --- context propagation -------------------------------------------------

type ctxKey struct{}

// NewContext returns ctx carrying t.
func NewContext(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext returns the context's trace, or nil when the request is not
// being traced — every recording operation on the nil result is a no-op.
func FromContext(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}
