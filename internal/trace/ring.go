package trace

import "sync"

// DefaultRingSize is the completed-trace buffer size when the daemon does
// not configure one.
const DefaultRingSize = 256

// Ring is a fixed-size buffer of the most recently completed traces — the
// backing store of GET /debug/traces. Adding never allocates beyond the
// fixed slot array; the oldest trace is overwritten once full.
type Ring struct {
	mu   sync.Mutex
	buf  []*Trace
	next int
	n    int
}

// NewRing returns a ring holding up to size traces (<= 0 =
// DefaultRingSize).
func NewRing(size int) *Ring {
	if size <= 0 {
		size = DefaultRingSize
	}
	return &Ring{buf: make([]*Trace, size)}
}

// Add records a completed trace, evicting the oldest when full.
func (r *Ring) Add(t *Trace) {
	if t == nil {
		return
	}
	r.mu.Lock()
	r.buf[r.next] = t
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

// Len returns how many traces the ring currently holds.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Snapshot returns the buffered traces, most recent first.
func (r *Ring) Snapshot() []*Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Trace, 0, r.n)
	for i := 1; i <= r.n; i++ {
		out = append(out, r.buf[(r.next-i+len(r.buf))%len(r.buf)])
	}
	return out
}

// Get returns the most recent trace with the given ID, or nil.
func (r *Ring) Get(id string) *Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := 1; i <= r.n; i++ {
		if t := r.buf[(r.next-i+len(r.buf))%len(r.buf)]; t != nil && t.id == id {
			return t
		}
	}
	return nil
}
