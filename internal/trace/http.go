package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"
	"time"
)

// TracesResponse is the body of GET /debug/traces without ?id=: the ring's
// traces, most recent first. internal/api re-exports this type so clients
// (svwload) decode exactly what the daemons serve.
type TracesResponse struct {
	Traces []TraceJSON `json:"traces"`
}

// SlowLog emits one structured JSON line per slow request. A nil *SlowLog
// disables slow logging entirely.
type SlowLog struct {
	// Threshold is the duration a finished trace must exceed to be
	// logged. Zero logs every traced request (useful in smoke tests;
	// production sets a real threshold via -slow-ms).
	Threshold time.Duration
	// W receives the log lines (nil = os.Stderr).
	W io.Writer
	// OnSlow, if set, is called once per logged trace with the trace's
	// endpoint — the hook the daemons use to bump
	// svw_slow_requests_total{endpoint} in their metrics registries.
	OnSlow func(endpoint string)

	mu sync.Mutex // serializes lines so concurrent requests never interleave
}

// slowLine is the log line's shape: the headline fields a log pipeline
// indexes on, plus the full span tree for root-causing one request.
type slowLine struct {
	Msg         string    `json:"msg"`
	TraceID     string    `json:"trace_id"`
	Endpoint    string    `json:"endpoint"`
	DurMS       float64   `json:"dur_ms"`
	ThresholdMS float64   `json:"threshold_ms"`
	Trace       TraceJSON `json:"trace"`
}

// Log writes t's slow-request line and fires OnSlow. The caller has
// already applied the threshold check.
func (l *SlowLog) Log(t *Trace) {
	if l == nil || t == nil {
		return
	}
	w := l.W
	if w == nil {
		w = os.Stderr
	}
	tj := t.JSON()
	b, err := json.Marshal(slowLine{
		Msg:         "slow_request",
		TraceID:     tj.TraceID,
		Endpoint:    tj.Endpoint,
		DurMS:       float64(tj.DurUS) / 1e3,
		ThresholdMS: l.Threshold.Seconds() * 1e3,
		Trace:       tj,
	})
	if err != nil {
		return
	}
	l.mu.Lock()
	w.Write(append(b, '\n'))
	l.mu.Unlock()
	if l.OnSlow != nil {
		l.OnSlow(t.endpoint)
	}
}

// Tracer is a daemon's tracing edge: the middleware that opens a trace
// per request and the /debug/traces handler over the completed-trace
// ring. Both daemons (svwd and svwctl) own one.
type Tracer struct {
	Ring *Ring
	// Slow enables structured slow-request logging (nil = off).
	Slow *SlowLog
}

// NewTracer returns a tracer with a ring of ringSize (<= 0 =
// DefaultRingSize) and no slow logging.
func NewTracer(ringSize int) *Tracer {
	return &Tracer{Ring: NewRing(ringSize)}
}

// Wrap instruments next under the given endpoint label: a trace is opened
// from the request's Header (or a fresh ID), echoed on the response,
// carried through the handler via the request context, and — once the
// handler returns — finished, ring-buffered, and slow-logged when it
// exceeded the threshold.
func (tr *Tracer) Wrap(endpoint string, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t := New(r.Header.Get(Header), endpoint)
		w.Header().Set(Header, t.ID())
		next.ServeHTTP(w, r.WithContext(NewContext(r.Context(), t)))
		dur := t.Finish()
		tr.Ring.Add(t)
		if tr.Slow != nil && dur > tr.Slow.Threshold {
			tr.Slow.Log(t)
		}
	})
}

// TracesHandler serves the ring as GET /debug/traces: every buffered
// trace most recent first, or one trace with ?id= (404 when the ID has
// aged out or never existed).
func (tr *Tracer) TracesHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if id := r.URL.Query().Get("id"); id != "" {
			t := tr.Ring.Get(id)
			if t == nil {
				w.WriteHeader(http.StatusNotFound)
				writeIndented(w, struct {
					Error string `json:"error"`
				}{Error: fmt.Sprintf("no trace %q in the buffer", id)})
				return
			}
			writeIndented(w, t.JSON())
			return
		}
		ts := tr.Ring.Snapshot()
		resp := TracesResponse{Traces: make([]TraceJSON, len(ts))}
		for i, t := range ts {
			resp.Traces[i] = t.JSON()
		}
		writeIndented(w, resp)
	})
}

// writeIndented mirrors the services' JSON encoding (indented, trailing
// newline) without importing internal/api — trace sits below it.
func writeIndented(w http.ResponseWriter, v any) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		w.WriteHeader(http.StatusInternalServerError)
		return
	}
	w.Write(append(b, '\n'))
}
