package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestNewIDAndValidID(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 100; i++ {
		id := NewID()
		if !ValidID(id) {
			t.Fatalf("NewID produced invalid ID %q", id)
		}
		if seen[id] {
			t.Fatalf("NewID repeated %q within 100 draws", id)
		}
		seen[id] = true
	}
	for _, id := range []string{"abc123", "a-b_C", strings.Repeat("x", maxIDLen)} {
		if !ValidID(id) {
			t.Errorf("ValidID(%q) = false, want true", id)
		}
	}
	for _, id := range []string{"", "has space", "semi;colon", `quo"te`,
		strings.Repeat("x", maxIDLen+1), "new\nline"} {
		if ValidID(id) {
			t.Errorf("ValidID(%q) = true, want false", id)
		}
	}
}

func TestNewReplacesInvalidID(t *testing.T) {
	tr := New("not a valid id!", "/v1/run")
	if !ValidID(tr.ID()) {
		t.Fatalf("New kept invalid ID: %q", tr.ID())
	}
	tr = New("client-chosen-1", "/v1/run")
	if tr.ID() != "client-chosen-1" {
		t.Fatalf("New replaced valid ID: got %q", tr.ID())
	}
}

func TestNilTraceIsInert(t *testing.T) {
	var tr *Trace
	if tr.ID() != "" || tr.Endpoint() != "" || tr.Finish() != 0 {
		t.Fatal("nil Trace accessors not zero")
	}
	sp := tr.Start("anything")
	if sp.Active() {
		t.Fatal("span from nil trace reports Active")
	}
	// Must not panic.
	sp.SetAttr("k", "v")
	sp.End()
	child := sp.Child("child")
	child.SetAttr("k", "v")
	child.End()
	if FromContext(context.Background()) != nil {
		t.Fatal("FromContext on bare context not nil")
	}
	if FromContext(nil) != nil {
		t.Fatal("FromContext(nil) not nil")
	}
}

func TestSpanTreeJSON(t *testing.T) {
	tr := New("", "/v1/sweep")
	root := tr.Start("dispatch")
	root.SetAttr("path", "/v1/run")
	child := root.Child("attempt")
	child.SetAttr("backend", "http://b1")
	child.End()
	root.End()
	tr.Start("merge").End()
	tr.Finish()

	j := tr.JSON()
	if !j.Done {
		t.Fatal("finished trace not Done")
	}
	if len(j.Spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(j.Spans))
	}
	if j.Spans[0].Name != "dispatch" || j.Spans[0].Parent != -1 {
		t.Fatalf("root span wrong: %+v", j.Spans[0])
	}
	if j.Spans[1].Name != "attempt" || j.Spans[1].Parent != 0 {
		t.Fatalf("child span wrong: %+v", j.Spans[1])
	}
	if j.Spans[1].Attrs["backend"] != "http://b1" {
		t.Fatalf("child attrs wrong: %v", j.Spans[1].Attrs)
	}
	if j.Spans[2].Parent != -1 {
		t.Fatalf("merge span should be top-level: %+v", j.Spans[2])
	}
}

func TestFinishIdempotentAndLateSpans(t *testing.T) {
	tr := New("", "/v1/run")
	d1 := tr.Finish()
	time.Sleep(2 * time.Millisecond)
	if d2 := tr.Finish(); d2 != d1 {
		t.Fatalf("second Finish changed duration: %v != %v", d2, d1)
	}
	// A straggling span (an abandoned hedge) may land after Finish and
	// must be kept.
	sp := tr.Start("attempt")
	sp.SetAttr("outcome", "abandoned")
	sp.End()
	if n := len(tr.JSON().Spans); n != 1 {
		t.Fatalf("post-Finish span lost: %d spans", n)
	}
}

func TestContextRoundTrip(t *testing.T) {
	tr := New("", "/v1/run")
	ctx := NewContext(context.Background(), tr)
	if got := FromContext(ctx); got != tr {
		t.Fatalf("FromContext = %p, want %p", got, tr)
	}
}

func TestRingWrapAndGet(t *testing.T) {
	r := NewRing(3)
	var ids []string
	for i := 0; i < 5; i++ {
		tr := New(fmt.Sprintf("id-%d", i), "/v1/run")
		ids = append(ids, tr.ID())
		r.Add(tr)
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("Snapshot len = %d, want 3", len(snap))
	}
	// Most recent first: id-4, id-3, id-2.
	for i, want := range []string{"id-4", "id-3", "id-2"} {
		if snap[i].ID() != want {
			t.Fatalf("snap[%d] = %s, want %s", i, snap[i].ID(), want)
		}
	}
	if r.Get("id-0") != nil || r.Get("id-1") != nil {
		t.Fatal("evicted traces still retrievable")
	}
	if got := r.Get("id-3"); got == nil || got.ID() != "id-3" {
		t.Fatalf("Get(id-3) = %v", got)
	}
	if r.Get("never-existed") != nil {
		t.Fatal("Get of unknown ID not nil")
	}
	_ = ids
}

func TestRingDefaultSize(t *testing.T) {
	if got := len(NewRing(0).buf); got != DefaultRingSize {
		t.Fatalf("default ring size = %d, want %d", got, DefaultRingSize)
	}
}

func TestSlowLogLine(t *testing.T) {
	var buf bytes.Buffer
	var slowed []string
	sl := &SlowLog{
		Threshold: 5 * time.Millisecond,
		W:         &buf,
		OnSlow:    func(ep string) { slowed = append(slowed, ep) },
	}
	tr := New("slow-1", "/v1/sweep")
	tr.Start("engine_run").End()
	tr.Finish()
	sl.Log(tr)

	line := buf.String()
	if !strings.HasSuffix(line, "\n") || strings.Count(line, "\n") != 1 {
		t.Fatalf("slow log not exactly one line: %q", line)
	}
	var got struct {
		Msg         string    `json:"msg"`
		TraceID     string    `json:"trace_id"`
		Endpoint    string    `json:"endpoint"`
		DurMS       float64   `json:"dur_ms"`
		ThresholdMS float64   `json:"threshold_ms"`
		Trace       TraceJSON `json:"trace"`
	}
	if err := json.Unmarshal([]byte(line), &got); err != nil {
		t.Fatalf("slow log line not JSON: %v\n%s", err, line)
	}
	if got.Msg != "slow_request" || got.TraceID != "slow-1" || got.Endpoint != "/v1/sweep" {
		t.Fatalf("headline fields wrong: %+v", got)
	}
	if got.ThresholdMS != 5 {
		t.Fatalf("threshold_ms = %v, want 5", got.ThresholdMS)
	}
	if len(got.Trace.Spans) != 1 || got.Trace.Spans[0].Name != "engine_run" {
		t.Fatalf("span tree missing from line: %+v", got.Trace)
	}
	if len(slowed) != 1 || slowed[0] != "/v1/sweep" {
		t.Fatalf("OnSlow hook: %v", slowed)
	}
}

func TestNilSlowLogIsInert(t *testing.T) {
	var sl *SlowLog
	sl.Log(New("", "/v1/run")) // must not panic
}

func TestTracerWrap(t *testing.T) {
	tracer := NewTracer(8)
	var sawID string
	h := tracer.Wrap("/v1/run", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tr := FromContext(r.Context())
		if tr == nil {
			t.Error("handler context carries no trace")
			return
		}
		sawID = tr.ID()
		tr.Start("store_probe").End()
		w.WriteHeader(http.StatusOK)
	}))

	// Client-supplied ID is honored and echoed.
	req := httptest.NewRequest(http.MethodPost, "/v1/run", nil)
	req.Header.Set(Header, "client-id-9")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if sawID != "client-id-9" {
		t.Fatalf("handler saw ID %q, want client-id-9", sawID)
	}
	if got := rec.Header().Get(Header); got != "client-id-9" {
		t.Fatalf("response header %s = %q", Header, got)
	}
	if tr := tracer.Ring.Get("client-id-9"); tr == nil {
		t.Fatal("completed trace not in ring")
	} else if j := tr.JSON(); !j.Done || len(j.Spans) != 1 {
		t.Fatalf("ring trace wrong: %+v", j)
	}

	// Absent ID: one is generated, echoed, and buffered.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/run", nil))
	gen := rec.Header().Get(Header)
	if !ValidID(gen) {
		t.Fatalf("generated ID invalid: %q", gen)
	}
	if tracer.Ring.Get(gen) == nil {
		t.Fatal("generated-ID trace not in ring")
	}
}

func TestTracerWrapSlowLog(t *testing.T) {
	var buf bytes.Buffer
	tracer := NewTracer(8)
	tracer.Slow = &SlowLog{Threshold: 0, W: &buf} // 0 = log everything
	h := tracer.Wrap("/v1/sweep", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodPost, "/v1/sweep", nil))
	if !strings.Contains(buf.String(), `"msg":"slow_request"`) {
		t.Fatalf("threshold-0 request not slow-logged: %q", buf.String())
	}
}

func TestTracesHandler(t *testing.T) {
	tracer := NewTracer(8)
	h := tracer.Wrap("/v1/run", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		FromContext(r.Context()).Start("engine_run").End()
	}))
	for i := 0; i < 3; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/run", nil)
		req.Header.Set(Header, fmt.Sprintf("t-%d", i))
		h.ServeHTTP(httptest.NewRecorder(), req)
	}

	th := tracer.TracesHandler()
	rec := httptest.NewRecorder()
	th.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/traces", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /debug/traces: %d", rec.Code)
	}
	var resp TracesResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decoding traces: %v", err)
	}
	if len(resp.Traces) != 3 {
		t.Fatalf("got %d traces, want 3", len(resp.Traces))
	}
	if resp.Traces[0].TraceID != "t-2" {
		t.Fatalf("most recent first: got %s", resp.Traces[0].TraceID)
	}

	// ?id= lookup.
	rec = httptest.NewRecorder()
	th.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/traces?id=t-1", nil))
	var one TraceJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &one); err != nil {
		t.Fatalf("decoding ?id= body: %v", err)
	}
	if one.TraceID != "t-1" || len(one.Spans) != 1 {
		t.Fatalf("?id=t-1 returned %+v", one)
	}

	// Unknown ID: a JSON 404, untrusted input safely encoded.
	rec = httptest.NewRecorder()
	th.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, `/debug/traces?id=no"such`, nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown ID: %d, want 404", rec.Code)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
		t.Fatalf("404 body not valid JSON despite hostile ID: %v\n%s", err, rec.Body.String())
	}
}

func TestTraceConcurrentSpans(t *testing.T) {
	tr := New("", "/v1/sweep")
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 50; i++ {
				sp := tr.Start("engine_job")
				sp.SetAttr("worker", "w")
				sp.End()
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	tr.Finish()
	if n := len(tr.JSON().Spans); n != 400 {
		t.Fatalf("got %d spans, want 400", n)
	}
}
