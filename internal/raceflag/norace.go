//go:build !race

// Package raceflag reports whether the race detector is compiled in, so
// allocation-regression tests can skip themselves under `go test -race`
// (instrumentation perturbs allocation counts).
package raceflag

// Enabled is true when the binary was built with -race.
const Enabled = false
