package rle

import (
	"testing"
	"testing/quick"

	"svwsim/internal/isa"
)

func newIT() *Table { return New(DefaultConfig()) }

func TestSigDeterministicAndDiscriminating(t *testing.T) {
	a := Sig(isa.OpLdq, 5, 16)
	if a != Sig(isa.OpLdq, 5, 16) {
		t.Error("sig not deterministic")
	}
	for _, other := range []uint64{
		Sig(isa.OpLdl, 5, 16), // different width
		Sig(isa.OpLdq, 6, 16), // different base register
		Sig(isa.OpLdq, 5, 24), // different displacement
	} {
		if other == a {
			t.Error("sig collision between distinct operations")
		}
	}
}

func TestSigQuickNoTrivialCollisions(t *testing.T) {
	f := func(b1, b2 uint16, d1, d2 int16) bool {
		if b1 == b2 && d1 == d2 {
			return true
		}
		return Sig(isa.OpLdq, int(b1), int64(d1)) != Sig(isa.OpLdq, int(b2), int64(d2))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestLoadOpFor(t *testing.T) {
	pairs := map[isa.Op]isa.Op{
		isa.OpStb: isa.OpLdb, isa.OpStw: isa.OpLdw,
		isa.OpStl: isa.OpLdl, isa.OpStq: isa.OpLdq,
		isa.OpLdq: isa.OpLdq,
	}
	for in, want := range pairs {
		got, ok := LoadOpFor(in)
		if !ok || got != want {
			t.Errorf("LoadOpFor(%v) = %v/%v", in, got, ok)
		}
	}
	if _, ok := LoadOpFor(isa.OpAdd); ok {
		t.Error("non-memory op should not map")
	}
}

func TestInsertLookup(t *testing.T) {
	it := newIT()
	sig := Sig(isa.OpLdq, 5, 16)
	it.Insert(Entry{Sig: sig, DestPhys: 42, BasePhys: 5, SSN: 7, Kind: KindReuse})
	e, handle := it.Lookup(sig, true)
	if e == nil || e.DestPhys != 42 || e.SSN != 7 || handle < 0 {
		t.Fatalf("lookup = %+v / %d", e, handle)
	}
	if e, _ := it.Lookup(Sig(isa.OpLdq, 5, 24), true); e != nil {
		t.Error("wrong signature matched")
	}
}

func TestInsertReplacesSameSig(t *testing.T) {
	it := newIT()
	sig := Sig(isa.OpLdq, 5, 16)
	it.Insert(Entry{Sig: sig, DestPhys: 1, BasePhys: 5})
	_, evicted, was := it.Insert(Entry{Sig: sig, DestPhys: 2, BasePhys: 5})
	if !was || evicted.DestPhys != 1 {
		t.Fatalf("same-sig insert should replace: %v %+v", was, evicted)
	}
	e, _ := it.Lookup(sig, true)
	if e.DestPhys != 2 {
		t.Error("newest entry should win")
	}
	if it.Len() != 1 {
		t.Errorf("len = %d", it.Len())
	}
}

func TestSetLRUEviction(t *testing.T) {
	it := New(Config{Sets: 1, Ways: 2})
	s1, s2, s3 := Sig(isa.OpLdq, 1, 0), Sig(isa.OpLdq, 2, 0), Sig(isa.OpLdq, 3, 0)
	it.Insert(Entry{Sig: s1, DestPhys: 1, BasePhys: 1})
	it.Insert(Entry{Sig: s2, DestPhys: 2, BasePhys: 2})
	it.Lookup(s1, true) // refresh s1: s2 becomes LRU
	_, evicted, was := it.Insert(Entry{Sig: s3, DestPhys: 3, BasePhys: 3})
	if !was || evicted.DestPhys != 2 {
		t.Fatalf("LRU eviction picked %+v", evicted)
	}
	if e, _ := it.Lookup(s1, true); e == nil {
		t.Error("recently used entry evicted")
	}
}

func TestSquashMarking(t *testing.T) {
	it := newIT()
	sig := Sig(isa.OpLdq, 5, 16)
	handle, _, _ := it.Insert(Entry{Sig: sig, DestPhys: 42, BasePhys: 5})
	it.MarkSquashed(handle, sig)
	// Squash-marked entries only match when squash reuse is allowed.
	if e, _ := it.Lookup(sig, false); e != nil {
		t.Error("squash-marked entry matched with squash reuse disabled")
	}
	e, _ := it.Lookup(sig, true)
	if e == nil || !e.FromSquash {
		t.Error("squash-marked entry should match with squash reuse enabled")
	}
	// Marking a stale handle (sig replaced) is a no-op.
	it2 := newIT()
	h2, _, _ := it2.Insert(Entry{Sig: sig, DestPhys: 1, BasePhys: 5})
	it2.Insert(Entry{Sig: sig, DestPhys: 2, BasePhys: 5})
	it2.MarkSquashed(h2, Sig(isa.OpLdq, 9, 9))
	if e, _ := it2.Lookup(sig, false); e == nil {
		t.Error("stale squash mark corrupted a live entry")
	}
}

func TestInvalidateByBase(t *testing.T) {
	it := newIT()
	it.Insert(Entry{Sig: Sig(isa.OpLdq, 5, 0), DestPhys: 10, BasePhys: 5})
	it.Insert(Entry{Sig: Sig(isa.OpLdq, 5, 8), DestPhys: 11, BasePhys: 5})
	it.Insert(Entry{Sig: Sig(isa.OpLdq, 6, 0), DestPhys: 12, BasePhys: 6})
	out := it.InvalidateByBase(5, nil)
	if len(out) != 2 {
		t.Fatalf("invalidated %d entries, want 2", len(out))
	}
	if it.Len() != 1 {
		t.Errorf("len = %d", it.Len())
	}
	if e, _ := it.Lookup(Sig(isa.OpLdq, 6, 0), true); e == nil {
		t.Error("unrelated entry removed")
	}
}

func TestInvalidateHandle(t *testing.T) {
	it := newIT()
	sig := Sig(isa.OpLdq, 5, 16)
	handle, _, _ := it.Insert(Entry{Sig: sig, DestPhys: 42, BasePhys: 5})
	e, ok := it.InvalidateHandle(handle, sig)
	if !ok || e.DestPhys != 42 {
		t.Fatal("invalidate by handle failed")
	}
	if _, ok := it.InvalidateHandle(handle, sig); ok {
		t.Error("double invalidate should fail")
	}
	if e, _ := it.Lookup(sig, true); e != nil {
		t.Error("invalidated entry still matches")
	}
}

func TestEvictOneAndClear(t *testing.T) {
	it := newIT()
	if _, ok := it.EvictOne(); ok {
		t.Error("empty table evicted something")
	}
	it.Insert(Entry{Sig: Sig(isa.OpLdq, 1, 0), DestPhys: 1, BasePhys: 1})
	it.Insert(Entry{Sig: Sig(isa.OpLdq, 2, 0), DestPhys: 2, BasePhys: 2})
	it.Lookup(Sig(isa.OpLdq, 1, 0), true) // entry 1 recently used
	e, ok := it.EvictOne()
	if !ok || e.DestPhys != 2 {
		t.Errorf("EvictOne picked %+v", e)
	}
	cleared := it.Clear()
	if len(cleared) != 1 || it.Len() != 0 {
		t.Errorf("clear returned %d entries, len=%d", len(cleared), it.Len())
	}
}
