// Package rle implements redundant load elimination via register
// integration (Petric, Bracy & Roth, MICRO-35), the third load optimization
// the paper studies (§2.4, §3.4).
//
// The integration table (IT) tracks "operation signatures" — opcode plus
// physical register inputs plus displacement — of recent loads and stores.
// A load whose signature matches an entry is redundant: instead of executing,
// its output architectural register is renamed directly to the entry's
// physical register.
//
//   - Load reuse: the entry was created by an older load; the redundant load
//     adopts the older load's output register.
//   - Speculative memory bypassing: the entry was created by an older store
//     (signature written as the equivalent load); the redundant load adopts
//     the store's *data input* register.
//
// Eliminated loads never execute, so false eliminations — an unaccounted-for
// intervening store — must be caught by pre-commit re-execution. SVW filters
// those re-executions using the SSN each entry carries: SSNrename at creation
// for load-created entries, the store's own SSN for store-created entries.
//
// Squash reuse: entries created by instructions that were later squashed stay
// valid and can integrate the refetched instances of those instructions. The
// physical registers they reference are kept alive by the owning pipeline's
// reference counts. Because a forwarding store may exist on the squashed path
// but not the correct path, the SSBF cannot capture squash-reuse
// vulnerability, so loads integrated through a squash-marked entry always
// re-execute (SVW disabled), exactly as in the paper §4.3.
package rle

import (
	"svwsim/internal/core"
	"svwsim/internal/isa"
)

// Kind distinguishes how an eliminated load obtained its value.
type Kind uint8

// Elimination kinds, the Fig. 7 breakdown.
const (
	KindNone   Kind = iota
	KindReuse       // redundant with an older load
	KindBypass      // speculative memory bypassing from an older store
)

func (k Kind) String() string {
	switch k {
	case KindReuse:
		return "reuse"
	case KindBypass:
		return "bypass"
	}
	return "none"
}

// Entry is one IT entry.
type Entry struct {
	Valid      bool
	Sig        uint64
	DestPhys   int // physical register holding the (would-be) load value
	BasePhys   int // physical register of the address base operand
	SSN        core.SSN
	Kind       Kind
	FromSquash bool // creating instruction was squashed after entry creation
	stamp      uint64
}

// Config sizes the table.
type Config struct {
	Sets int
	Ways int
}

// DefaultConfig matches the paper's 512-entry 2-way set-associative IT.
func DefaultConfig() Config { return Config{Sets: 256, Ways: 2} }

// Table is the integration table.
type Table struct {
	cfg     Config
	entries []Entry // sets*ways, set-major
	clock   uint64

	// baseLive[p] counts valid entries whose BasePhys is p, so the
	// register-free invalidation sweep (InvalidateByBase, called for every
	// freed physical register) can skip the table scan entirely when no
	// entry depends on the register — the overwhelmingly common case.
	baseLive []uint16

	// Stats
	Hits, Misses, Inserts, Evictions, Invalidations uint64
}

func (t *Table) incBase(p int) {
	if p < 0 {
		return
	}
	for p >= len(t.baseLive) {
		t.baseLive = append(t.baseLive, 0)
	}
	t.baseLive[p]++
}

func (t *Table) decBase(p int) {
	if p >= 0 && p < len(t.baseLive) {
		t.baseLive[p]--
	}
}

// New builds an empty table.
func New(cfg Config) *Table {
	if cfg.Sets&(cfg.Sets-1) != 0 || cfg.Sets == 0 || cfg.Ways <= 0 {
		panic("rle: IT sets must be a positive power of two, ways positive")
	}
	return &Table{cfg: cfg, entries: make([]Entry, cfg.Sets*cfg.Ways)}
}

// Sig computes the operation signature for a load-shaped access: the load
// opcode (stores pass the equivalent load opcode), the physical register
// holding the base address, and the displacement. Two accesses with equal
// signatures address the same memory with the same width, because physical
// registers are written exactly once.
func Sig(op isa.Op, basePhys int, disp int64) uint64 {
	h := uint64(op)
	h = h*0x9E3779B97F4A7C15 + uint64(basePhys)
	h = h*0x9E3779B97F4A7C15 + uint64(disp)
	// Final avalanche (splitmix64 tail) to spread set-index bits.
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	return h
}

// LoadOpFor maps a store opcode to the load opcode a matching load would
// use, defining bypass signature compatibility. Loads map to themselves.
func LoadOpFor(op isa.Op) (isa.Op, bool) {
	switch op {
	case isa.OpStb, isa.OpLdb:
		return isa.OpLdb, true
	case isa.OpStw, isa.OpLdw:
		return isa.OpLdw, true
	case isa.OpStl, isa.OpLdl:
		return isa.OpLdl, true
	case isa.OpStq, isa.OpLdq:
		return isa.OpLdq, true
	}
	return 0, false
}

func (t *Table) set(sig uint64) int { return int(sig) & (t.cfg.Sets - 1) }

func (t *Table) slot(set, way int) *Entry { return &t.entries[set*t.cfg.Ways+way] }

// Lookup finds a valid entry with the signature. allowSquash false skips
// squash-marked entries (the SVW−SQU configuration of §4.3).
func (t *Table) Lookup(sig uint64, allowSquash bool) (*Entry, int) {
	s := t.set(sig)
	for w := 0; w < t.cfg.Ways; w++ {
		e := t.slot(s, w)
		if e.Valid && e.Sig == sig && (allowSquash || !e.FromSquash) {
			t.Hits++
			t.clock++
			e.stamp = t.clock
			return e, s*t.cfg.Ways + w
		}
	}
	t.Misses++
	return nil, -1
}

// Insert adds an entry, evicting LRU within the set if needed. It returns the
// entry's handle and, when an eviction occurred, the evicted entry so the
// owner can release its physical-register references.
func (t *Table) Insert(e Entry) (handle int, evicted Entry, wasEvicted bool) {
	t.Inserts++
	s := t.set(e.Sig)
	victim, oldest := 0, ^uint64(0)
	for w := 0; w < t.cfg.Ways; w++ {
		slot := t.slot(s, w)
		if slot.Valid && slot.Sig == e.Sig {
			victim = w
			break
		}
		if !slot.Valid {
			victim, oldest = w, 0
			continue
		}
		if slot.stamp < oldest {
			victim, oldest = w, slot.stamp
		}
	}
	slot := t.slot(s, victim)
	if slot.Valid {
		evicted, wasEvicted = *slot, true
		t.Evictions++
		t.decBase(slot.BasePhys)
	}
	t.clock++
	e.Valid = true
	e.stamp = t.clock
	*slot = e
	t.incBase(e.BasePhys)
	return s*t.cfg.Ways + victim, evicted, wasEvicted
}

// Get returns the entry at handle, or nil if it has been replaced since.
func (t *Table) Get(handle int) *Entry {
	if handle < 0 || handle >= len(t.entries) {
		return nil
	}
	return &t.entries[handle]
}

// MarkSquashed flags the entry at handle, if it still matches sig, as created
// by a squashed instruction.
func (t *Table) MarkSquashed(handle int, sig uint64) {
	if e := t.Get(handle); e != nil && e.Valid && e.Sig == sig {
		e.FromSquash = true
	}
}

// InvalidateHandle invalidates the entry at handle if it still carries sig,
// returning it so the owner can release its references. Used when a false
// elimination is detected: the entry's value is stale and must not integrate
// the refetched load.
func (t *Table) InvalidateHandle(handle int, sig uint64) (Entry, bool) {
	e := t.Get(handle)
	if e == nil || !e.Valid || e.Sig != sig {
		return Entry{}, false
	}
	t.Invalidations++
	out := *e
	e.Valid = false
	t.decBase(e.BasePhys)
	return out, true
}

// InvalidateByBase removes every entry whose base physical register is p
// (called when p is freed: a future instruction could reuse p with a
// different value, making the signature stale). The invalidated entries are
// appended to buf — pass a reused scratch slice to keep the owner's release
// path allocation-free — and returned so the owner can release their
// DestPhys references.
func (t *Table) InvalidateByBase(p int, buf []Entry) []Entry {
	if p < 0 || p >= len(t.baseLive) || t.baseLive[p] == 0 {
		return buf
	}
	for i := range t.entries {
		e := &t.entries[i]
		if e.Valid && e.BasePhys == p {
			t.Invalidations++
			buf = append(buf, *e)
			e.Valid = false
			t.decBase(p)
		}
	}
	return buf
}

// EvictOne invalidates the least recently used valid entry anywhere in the
// table and returns it; used to relieve physical-register pressure when
// limbo references exhaust the free list. ok is false if the table is empty.
func (t *Table) EvictOne() (Entry, bool) {
	victim, oldest := -1, ^uint64(0)
	for i := range t.entries {
		e := &t.entries[i]
		if e.Valid && e.stamp < oldest {
			victim, oldest = i, e.stamp
		}
	}
	if victim < 0 {
		return Entry{}, false
	}
	e := t.entries[victim]
	t.entries[victim].Valid = false
	t.decBase(e.BasePhys)
	t.Evictions++
	return e, true
}

// Clear invalidates everything and returns the entries that were valid so the
// owner can release their references (SSN wrap drain per §3.6).
func (t *Table) Clear() []Entry {
	var out []Entry
	for i := range t.entries {
		if t.entries[i].Valid {
			out = append(out, t.entries[i])
			t.entries[i].Valid = false
		}
	}
	for i := range t.baseLive {
		t.baseLive[i] = 0
	}
	return out
}

// Len reports the number of valid entries (diagnostics).
func (t *Table) Len() int {
	n := 0
	for i := range t.entries {
		if t.entries[i].Valid {
			n++
		}
	}
	return n
}
