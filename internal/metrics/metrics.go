// Package metrics is the serving stack's dependency-free observability
// core: atomic counters, gauges and fixed-bucket latency histograms,
// rendered in the Prometheus text exposition format. Both daemons (svwd
// and svwctl) mount a Registry on GET /metrics, so one scrape config
// covers a single backend and a coordinator fronting a fleet of them.
//
// The hot path is allocation-free: Counter.Inc/Add, Gauge.Set/Add and
// Histogram.Observe are single atomic operations (plus a bounded linear
// scan over the bucket bounds), so instrumenting the per-request serving
// path costs nanoseconds, not garbage. Allocation happens only at
// registration and at scrape time, both of which are off the request
// path.
package metrics

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one name="value" pair attached to a series.
type Label struct {
	Key, Value string
}

// LatencyBuckets returns the default histogram bounds in seconds: 100µs
// to 60s on a roughly log scale, covering everything from a memory-tier
// cache hit to a full uncached study sweep.
func LatencyBuckets() []float64 {
	return []float64{
		0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
		0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
	}
}

// series is one rendered line group of a family.
type series interface {
	render(w io.Writer, name string)
}

// family is one metric name: a HELP/TYPE header plus its series.
type family struct {
	name, help, typ string

	mu    sync.Mutex
	order []series
	byKey map[string]series
}

// Registry holds metric families in registration order. Create with
// NewRegistry; all methods are safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// family returns (creating if needed) the family under name. The first
// registration fixes help and type; later registrations reuse them.
func (r *Registry) family(name, help, typ string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		return f
	}
	f := &family{name: name, help: help, typ: typ, byKey: make(map[string]series)}
	r.byName[name] = f
	r.families = append(r.families, f)
	return f
}

// add registers s under the family's label key, returning an existing
// series with the same labels instead when one was registered before (so
// re-wiring a handler never duplicates lines).
func (f *family) add(key string, s series) series {
	f.mu.Lock()
	defer f.mu.Unlock()
	if prev, ok := f.byKey[key]; ok {
		return prev
	}
	f.byKey[key] = s
	f.order = append(f.order, s)
	return s
}

// --- counter -------------------------------------------------------------

// Counter is a monotonically increasing uint64.
type Counter struct {
	v      atomic.Uint64
	labels string
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) render(w io.Writer, name string) {
	fmt.Fprintf(w, "%s%s %d\n", name, c.labels, c.v.Load())
}

// Counter registers (or returns the existing) counter under name+labels.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	f := r.family(name, help, "counter")
	ls := renderLabels(labels)
	return f.add(ls, &Counter{labels: ls}).(*Counter)
}

// --- gauge ---------------------------------------------------------------

// Gauge is an int64 that can go up and down.
type Gauge struct {
	v      atomic.Int64
	labels string
}

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds n (negative to subtract).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) render(w io.Writer, name string) {
	fmt.Fprintf(w, "%s%s %d\n", name, g.labels, g.v.Load())
}

// Gauge registers (or returns the existing) gauge under name+labels.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	f := r.family(name, help, "gauge")
	ls := renderLabels(labels)
	return f.add(ls, &Gauge{labels: ls}).(*Gauge)
}

// --- func metrics --------------------------------------------------------

// funcSeries samples a callback at scrape time — the bridge from
// existing mutex-guarded counters (store, gate, engine, backends) onto
// the scrape surface without double bookkeeping on the hot path.
type funcSeries struct {
	labels string
	intFn  func() uint64
	fltFn  func() float64
}

func (s *funcSeries) render(w io.Writer, name string) {
	if s.intFn != nil {
		fmt.Fprintf(w, "%s%s %d\n", name, s.labels, s.intFn())
		return
	}
	fmt.Fprintf(w, "%s%s %s\n", name, s.labels, formatFloat(s.fltFn()))
}

// CounterFunc registers a counter whose value is sampled from fn at
// scrape time.
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...Label) {
	f := r.family(name, help, "counter")
	ls := renderLabels(labels)
	f.add(ls, &funcSeries{labels: ls, intFn: fn})
}

// GaugeFunc registers a gauge whose value is sampled from fn at scrape
// time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	f := r.family(name, help, "gauge")
	ls := renderLabels(labels)
	f.add(ls, &funcSeries{labels: ls, fltFn: fn})
}

// --- histogram -----------------------------------------------------------

// Histogram is a fixed-bucket latency histogram. Observe is a bounded
// linear scan plus two atomic adds — no allocation, no locking — so it
// sits directly on the request path.
type Histogram struct {
	bounds []float64 // ascending upper bounds, in seconds
	counts []atomic.Uint64
	sumNs  atomic.Int64
	labels string
	// lePrefix is the rendered label set minus its closing brace, ready
	// for the per-bucket le label to be appended.
	lePrefix string
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	s := d.Seconds()
	i := 0
	for i < len(h.bounds) && s > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sumNs.Add(int64(d))
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

func (h *Histogram) render(w io.Writer, name string) {
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket%sle=%q} %d\n", name, h.lePrefix, formatFloat(b), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket%sle=\"+Inf\"} %d\n", name, h.lePrefix, cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, h.labels, formatFloat(float64(h.sumNs.Load())/1e9))
	fmt.Fprintf(w, "%s_count%s %d\n", name, h.labels, cum)
}

// Histogram registers (or returns the existing) histogram under
// name+labels with the given ascending bucket bounds in seconds.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	f := r.family(name, help, "histogram")
	ls := renderLabels(labels)
	prefix := "{"
	if ls != "" {
		prefix = strings.TrimSuffix(ls, "}") + ","
	}
	h := &Histogram{
		bounds:   append([]float64(nil), bounds...),
		counts:   make([]atomic.Uint64, len(bounds)+1),
		labels:   ls,
		lePrefix: prefix,
	}
	return f.add(ls, h).(*Histogram)
}

// --- rendering -----------------------------------------------------------

// WriteText renders every family in the Prometheus text exposition
// format, in registration order.
func (r *Registry) WriteText(w io.Writer) {
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()
	for _, f := range fams {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ)
		f.mu.Lock()
		order := append([]series(nil), f.order...)
		f.mu.Unlock()
		for _, s := range order {
			s.render(w, f.name)
		}
	}
}

// Handler serves the registry as GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		var buf bytes.Buffer
		r.WriteText(&buf)
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Write(buf.Bytes())
	})
}

// renderLabels renders a label set as {k="v",...}, sorted by key so the
// same set always produces the same series identity.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// formatFloat renders a float the way Prometheus expects: no exponent
// for the magnitudes bucket bounds use, minimal digits.
func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}
