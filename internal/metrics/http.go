package metrics

import (
	"net/http"
	"strconv"
	"sync"
	"time"
)

// The shared per-endpoint HTTP series both daemons expose, so one
// dashboard reads svwd and svwctl alike.
const (
	httpRequestsName = "svw_http_requests_total"
	httpRequestsHelp = "HTTP requests served, by endpoint and status code."
	httpLatencyName  = "svw_http_request_seconds"
	httpLatencyHelp  = "HTTP request latency by endpoint."
)

// HTTP instruments handlers with the shared per-endpoint request
// counter and latency histogram. Create with NewHTTP; Wrap each route.
type HTTP struct {
	reg *Registry

	mu    sync.Mutex
	codes map[string]*Counter // endpoint\x00code -> counter
}

// NewHTTP returns an instrumenter registering into reg.
func NewHTTP(reg *Registry) *HTTP {
	return &HTTP{reg: reg, codes: make(map[string]*Counter)}
}

// Wrap instruments next under the given endpoint label: one latency
// observation and one (endpoint, code) count per request — on every
// exit path. Accounting runs in a defer so a panicking handler (which
// net/http recovers above us, invisibly to a non-deferred call) is still
// counted: as 500 when it died before writing anything, as whatever it
// managed to write otherwise. The panic is re-raised so net/http's
// connection teardown (including http.ErrAbortHandler) is unchanged.
func (h *HTTP) Wrap(endpoint string, next http.Handler) http.Handler {
	hist := h.reg.Histogram(httpLatencyName, httpLatencyHelp, LatencyBuckets(),
		Label{Key: "endpoint", Value: endpoint})
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		t0 := time.Now()
		defer func() {
			hist.Observe(time.Since(t0))
			code := sw.status()
			if p := recover(); p != nil {
				if sw.code == 0 {
					code = http.StatusInternalServerError
				}
				h.codeCounter(endpoint, code).Inc()
				panic(p)
			}
			h.codeCounter(endpoint, code).Inc()
		}()
		next.ServeHTTP(sw, r)
	})
}

// codeCounter returns the (endpoint, code) counter, creating it on the
// code's first occurrence (steady-state requests take the map hit only).
func (h *HTTP) codeCounter(endpoint string, code int) *Counter {
	key := endpoint + "\x00" + strconv.Itoa(code)
	h.mu.Lock()
	defer h.mu.Unlock()
	if c, ok := h.codes[key]; ok {
		return c
	}
	c := h.reg.Counter(httpRequestsName, httpRequestsHelp,
		Label{Key: "endpoint", Value: endpoint},
		Label{Key: "code", Value: strconv.Itoa(code)})
	h.codes[key] = c
	return c
}

// statusWriter records the response status. It passes Flush through so
// SSE streaming works unchanged behind the instrumentation.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// status returns the recorded code (200 when the handler never wrote).
func (w *statusWriter) status() int {
	if w.code == 0 {
		return http.StatusOK
	}
	return w.code
}
