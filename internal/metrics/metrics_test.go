package metrics

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"svwsim/internal/raceflag"
)

func render(r *Registry) string {
	var b strings.Builder
	r.WriteText(&b)
	return b.String()
}

func TestCounterAndGaugeRendering(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("svw_test_total", "A test counter.", Label{Key: "kind", Value: "a"})
	c.Inc()
	c.Add(2)
	g := r.Gauge("svw_test_depth", "A test gauge.")
	g.Set(7)
	g.Add(-2)

	out := render(r)
	for _, want := range []string{
		"# HELP svw_test_total A test counter.\n# TYPE svw_test_total counter\n",
		`svw_test_total{kind="a"} 3` + "\n",
		"# TYPE svw_test_depth gauge\n",
		"svw_test_depth 5\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryDedupesSeries(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("svw_dup_total", "h", Label{Key: "x", Value: "1"})
	b := r.Counter("svw_dup_total", "h", Label{Key: "x", Value: "1"})
	if a != b {
		t.Fatal("same name+labels produced two counters")
	}
	a.Inc()
	if got := strings.Count(render(r), "svw_dup_total{"); got != 1 {
		t.Fatalf("%d series rendered, want 1", got)
	}
}

func TestHistogramBucketsAreCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("svw_lat_seconds", "h", []float64{0.001, 0.01, 0.1},
		Label{Key: "stage", Value: "x"})
	h.Observe(500 * time.Microsecond) // <= 0.001
	h.Observe(1 * time.Millisecond)   // boundary: still <= 0.001
	h.Observe(5 * time.Millisecond)   // <= 0.01
	h.Observe(2 * time.Second)        // +Inf only

	out := render(r)
	for _, want := range []string{
		"# TYPE svw_lat_seconds histogram\n",
		`svw_lat_seconds_bucket{stage="x",le="0.001"} 2` + "\n",
		`svw_lat_seconds_bucket{stage="x",le="0.01"} 3` + "\n",
		`svw_lat_seconds_bucket{stage="x",le="0.1"} 3` + "\n",
		`svw_lat_seconds_bucket{stage="x",le="+Inf"} 4` + "\n",
		`svw_lat_seconds_count{stage="x"} 4` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if h.Count() != 4 {
		t.Fatalf("Count %d, want 4", h.Count())
	}
	if !strings.Contains(out, `svw_lat_seconds_sum{stage="x"} 2.0065`) {
		t.Errorf("sum not rendered in seconds:\n%s", out)
	}
}

func TestFuncMetricsSampleAtScrape(t *testing.T) {
	r := NewRegistry()
	n := uint64(0)
	r.CounterFunc("svw_fn_total", "h", func() uint64 { return n })
	r.GaugeFunc("svw_fn_depth", "h", func() float64 { return float64(n) / 2 })
	n = 9
	out := render(r)
	if !strings.Contains(out, "svw_fn_total 9\n") || !strings.Contains(out, "svw_fn_depth 4.5\n") {
		t.Fatalf("func metrics not sampled at scrape:\n%s", out)
	}
}

func TestLabelEscapingAndOrdering(t *testing.T) {
	r := NewRegistry()
	r.Counter("svw_esc_total", "h",
		Label{Key: "z", Value: `a"b\c`}, Label{Key: "a", Value: "x"}).Inc()
	out := render(r)
	if !strings.Contains(out, `svw_esc_total{a="x",z="a\"b\\c"} 1`) {
		t.Fatalf("labels not sorted/escaped:\n%s", out)
	}
}

func TestHTTPWrapCountsAndTimes(t *testing.T) {
	r := NewRegistry()
	h := NewHTTP(r)
	ok := h.Wrap("/v1/ok", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("hi")) // implicit 200
	}))
	bad := h.Wrap("/v1/bad", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusTeapot)
	}))
	for i := 0; i < 3; i++ {
		w := httptest.NewRecorder()
		ok.ServeHTTP(w, httptest.NewRequest("GET", "/v1/ok", nil))
	}
	w := httptest.NewRecorder()
	bad.ServeHTTP(w, httptest.NewRequest("GET", "/v1/bad", nil))

	out := render(r)
	for _, want := range []string{
		`svw_http_requests_total{code="200",endpoint="/v1/ok"} 3`,
		`svw_http_requests_total{code="418",endpoint="/v1/bad"} 1`,
		`svw_http_request_seconds_count{endpoint="/v1/ok"} 3`,
		`svw_http_request_seconds_bucket{endpoint="/v1/ok",le="+Inf"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestHTTPWrapPreservesFlusher(t *testing.T) {
	r := NewRegistry()
	h := NewHTTP(r)
	var flushable bool
	wrapped := h.Wrap("/v1/sse", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		_, flushable = w.(http.Flusher)
	}))
	wrapped.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/v1/sse", nil))
	if !flushable {
		t.Fatal("instrumented writer lost http.Flusher (SSE would 500)")
	}
}

// The hot-path primitives must not allocate: they sit on every request.
func TestHotPathDoesNotAllocate(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("race instrumentation perturbs allocation counts")
	}
	r := NewRegistry()
	c := r.Counter("svw_alloc_total", "h")
	g := r.Gauge("svw_alloc_depth", "h")
	h := r.Histogram("svw_alloc_seconds", "h", LatencyBuckets())
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Add(1)
		h.Observe(3 * time.Millisecond)
	}); n != 0 {
		t.Fatalf("hot path allocates %.1f times per op, want 0", n)
	}
}
