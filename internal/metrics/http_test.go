package metrics

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// codeCount reads svw_http_requests_total{endpoint,code} from the
// registry's text exposition — asserting on what a scraper would ingest,
// not on wrapper internals.
func codeCount(t *testing.T, reg *Registry, endpoint string, code string) string {
	t.Helper()
	var sb strings.Builder
	reg.WriteText(&sb)
	needle := `svw_http_requests_total{code="` + code + `",endpoint="` + endpoint + `"}`
	for _, line := range strings.Split(sb.String(), "\n") {
		if strings.HasPrefix(line, needle) {
			return strings.TrimSpace(strings.TrimPrefix(line, needle))
		}
	}
	return ""
}

func TestWrapCountsImplicit200(t *testing.T) {
	// A handler that never calls WriteHeader (and writes no body at all):
	// net/http sends 200 on return, and the counter must agree.
	reg := NewRegistry()
	h := NewHTTP(reg).Wrap("/v1/quiet", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/v1/quiet", nil))
	if got := codeCount(t, reg, "/v1/quiet", "200"); got != "1" {
		t.Fatalf("implicit 200 count = %q, want 1", got)
	}
}

func TestWrapCountsWriteOnly200(t *testing.T) {
	// Write without WriteHeader implies 200.
	reg := NewRegistry()
	h := NewHTTP(reg).Wrap("/v1/body", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	}))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/v1/body", nil))
	if got := codeCount(t, reg, "/v1/body", "200"); got != "1" {
		t.Fatalf("write-implied 200 count = %q, want 1", got)
	}
}

func TestWrapCountsErrorStatus(t *testing.T) {
	reg := NewRegistry()
	h := NewHTTP(reg).Wrap("/v1/bad", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusBadRequest)
	}))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/v1/bad", nil))
	if got := codeCount(t, reg, "/v1/bad", "400"); got != "1" {
		t.Fatalf("400 count = %q, want 1", got)
	}
	if got := codeCount(t, reg, "/v1/bad", "200"); got != "" {
		t.Fatalf("spurious 200 series: %q", got)
	}
}

func TestWrapFirstWriteHeaderWins(t *testing.T) {
	// A handler that sets a status and then (buggily) sets another: the
	// wire carries the first, so the counter must too.
	reg := NewRegistry()
	h := NewHTTP(reg).Wrap("/v1/double", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTooManyRequests)
		w.WriteHeader(http.StatusInternalServerError)
	}))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/v1/double", nil))
	if got := codeCount(t, reg, "/v1/double", "429"); got != "1" {
		t.Fatalf("first-write 429 count = %q, want 1", got)
	}
	if got := codeCount(t, reg, "/v1/double", "500"); got != "" {
		t.Fatalf("second WriteHeader leaked into the counter: %q", got)
	}
}

func TestWrapCountsSSEDisconnectAs200(t *testing.T) {
	// An SSE handler that streamed some events (200 + flushes) and then
	// bailed mid-stream because the client vanished: the request completed
	// with the status it sent, 200 — a disconnect is not a server error.
	reg := NewRegistry()
	h := NewHTTP(reg).Wrap("/v1/sweep", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("event: result\ndata: {}\n\n"))
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		// client gone: handler returns without a "done" event
	}))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/v1/sweep", nil))
	if got := codeCount(t, reg, "/v1/sweep", "200"); got != "1" {
		t.Fatalf("mid-stream bail 200 count = %q, want 1", got)
	}
}

func TestWrapCountsPanicBeforeWriteAs500(t *testing.T) {
	// net/http recovers handler panics, so without defer-based accounting
	// a panicking handler would be invisible in the request counter. The
	// wrapper must count it (500 when nothing was written) and re-panic.
	reg := NewRegistry()
	h := NewHTTP(reg).Wrap("/v1/boom", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("kaboom")
	}))
	func() {
		defer func() {
			if p := recover(); p == nil {
				t.Error("wrapper swallowed the panic")
			}
		}()
		h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/v1/boom", nil))
	}()
	if got := codeCount(t, reg, "/v1/boom", "500"); got != "1" {
		t.Fatalf("panic-before-write 500 count = %q, want 1", got)
	}
}

func TestWrapCountsPanicAfterWriteAsWrittenStatus(t *testing.T) {
	// A handler that wrote a real status before dying: the client saw that
	// status (plus a torn body), so that is what gets counted.
	reg := NewRegistry()
	h := NewHTTP(reg).Wrap("/v1/torn", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusBadGateway)
		panic(http.ErrAbortHandler)
	}))
	func() {
		defer func() { recover() }()
		h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/v1/torn", nil))
	}()
	if got := codeCount(t, reg, "/v1/torn", "502"); got != "1" {
		t.Fatalf("panic-after-write 502 count = %q, want 1", got)
	}
	if got := codeCount(t, reg, "/v1/torn", "500"); got != "" {
		t.Fatalf("written status overridden by panic default: %q", got)
	}
}

func TestWrapObservesLatencyOnPanic(t *testing.T) {
	reg := NewRegistry()
	h := NewHTTP(reg).Wrap("/v1/boom", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("kaboom")
	}))
	func() {
		defer func() { recover() }()
		h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/v1/boom", nil))
	}()
	var sb strings.Builder
	reg.WriteText(&sb)
	if !strings.Contains(sb.String(), `svw_http_request_seconds_count{endpoint="/v1/boom"} 1`) {
		t.Fatalf("latency histogram missed the panicking request:\n%s", sb.String())
	}
}
