package emu

import (
	"testing"

	"svwsim/internal/isa"
	"svwsim/internal/memimage"
	"svwsim/internal/raceflag"
)

// loopImage assembles a two-instruction infinite loop (addi; br -2) at pc 0
// directly into an image, avoiding an import cycle with the builder.
func loopImage() *memimage.Image {
	m := memimage.New()
	m.Write32(0, isa.MustEncode(isa.Inst{Op: isa.OpAddi, Rd: 1, Ra: 1, Imm: 1}))
	m.Write32(4, isa.MustEncode(isa.Inst{Op: isa.OpBr, Imm: -2}))
	return m
}

// TestStreamArenaRecyclesRecords pins the record arena: after Release, the
// same heap records come back from Next with bumped generation stamps.
func TestStreamArenaRecyclesRecords(t *testing.T) {
	s := NewStream(New(loopImage(), 0))
	first := s.Next()
	gen := s.Gen(first)
	for i := 0; i < 63; i++ {
		s.Next()
	}
	s.Release(64) // everything delivered so far is dead
	if s.Recycled() == 0 {
		t.Fatal("release recycled nothing into the arena")
	}
	// Drain the free list; one of the recycled records must be `first`.
	reused := false
	for i := 0; i < 64; i++ {
		d := s.Next()
		if d == first {
			reused = true
			if s.Gen(d) <= gen {
				t.Errorf("recycled record kept generation %d (was %d)", s.Gen(d), gen)
			}
		}
	}
	if !reused {
		t.Error("no released record was recycled by subsequent Next calls")
	}
}

// TestStreamSteadyStateZeroAlloc: with a bounded in-flight window (the ROB
// pattern: fetch a batch, commit a batch, release), Next allocates nothing
// once the window's high-water mark is reached.
func TestStreamSteadyStateZeroAlloc(t *testing.T) {
	if raceflag.Enabled {
		t.Skip("allocation counts are perturbed under -race")
	}
	s := NewStream(New(loopImage(), 0))
	var pos uint64
	// Reach the high-water mark.
	for i := 0; i < 256; i++ {
		s.Next()
		pos++
	}
	s.Release(pos - 8)
	if allocs := testing.AllocsPerRun(500, func() {
		for i := 0; i < 16; i++ {
			s.Next()
			pos++
		}
		s.Release(pos - 8)
	}); allocs != 0 {
		t.Errorf("stream: %v allocs per steady-state window, want 0", allocs)
	}
}

// TestStreamResetRecyclesWholeArena: Reset hands every record back for the
// next run (the engine's per-worker simulator reuse path).
func TestStreamResetRecyclesWholeArena(t *testing.T) {
	s := NewStream(New(loopImage(), 0))
	for i := 0; i < 100; i++ {
		s.Next()
	}
	buffered := s.Buffered()
	s.Reset(New(loopImage(), 0))
	if s.Buffered() != 0 {
		t.Errorf("buffered = %d after Reset, want 0", s.Buffered())
	}
	if s.Recycled() < buffered {
		t.Errorf("recycled = %d after Reset, want >= %d", s.Recycled(), buffered)
	}
	if d := s.Next(); d == nil || d.Seq != 0 {
		t.Fatalf("first record after Reset = %+v, want Seq 0", d)
	}
}
