package emu

import "fmt"

// Stream adapts an Emulator into a rewindable dynamic-instruction source.
//
// The timing core has no wrong-path fetch: every fetched instruction is a
// committed-path record. Flush recovery therefore reduces to rewinding the
// stream to the squash point and re-delivering the same records. Stream keeps
// every record from the oldest uncommitted instruction onward; Release frees
// records once the timing core commits them.
//
// Records are heap-allocated individually and returned as stable pointers:
// consumers hold them for an instruction's whole in-flight lifetime, across
// buffer compaction.
type Stream struct {
	emu *Emulator

	buf  []*DynInst // records [base, base+len) by Seq
	base uint64     // Seq of buf[0]
	pos  uint64     // Seq of the next record Next returns
	err  error      // sticky emulator error
}

// NewStream wraps e.
func NewStream(e *Emulator) *Stream {
	return &Stream{emu: e}
}

// Err returns the sticky emulator error, if any.
func (s *Stream) Err() error { return s.err }

// Next returns the next dynamic instruction record, generating it from the
// emulator if it has not been produced before (or re-delivering it after a
// Rewind). Returns nil after a halt record has been delivered at the current
// position or on emulator error.
func (s *Stream) Next() *DynInst {
	if s.err != nil {
		return nil
	}
	idx := s.pos - s.base
	if idx < uint64(len(s.buf)) {
		d := s.buf[idx]
		s.pos++
		return d
	}
	if s.emu.Halted() {
		return nil
	}
	d, err := s.emu.Step()
	if err != nil {
		s.err = err
		return nil
	}
	rec := new(DynInst)
	*rec = d
	s.buf = append(s.buf, rec)
	s.pos++
	return rec
}

// Rewind resets the stream so the next Next call returns the record with the
// given Seq. The record must still be buffered (i.e. not released).
func (s *Stream) Rewind(seq uint64) {
	if seq < s.base || seq > s.pos {
		panic(fmt.Sprintf("emu: rewind to %d outside buffered window [%d,%d]",
			seq, s.base, s.pos))
	}
	s.pos = seq
}

// Release drops buffered records with Seq < seq; they can no longer be
// rewound to. Call with the Seq of the oldest uncommitted instruction.
// Compaction is amortized: the shift happens only once at least half the
// buffer is dead.
func (s *Stream) Release(seq uint64) {
	if seq <= s.base {
		return
	}
	if seq > s.pos {
		panic(fmt.Sprintf("emu: release past read position (%d > %d)", seq, s.pos))
	}
	n := seq - s.base
	if n >= uint64(len(s.buf))/2 {
		keep := s.buf[n:]
		next := s.buf[:0]
		next = append(next, keep...)
		// Nil out the tail so released records can be collected.
		for i := len(next); i < len(s.buf); i++ {
			s.buf[i] = nil
		}
		s.buf = next
		s.base = seq
	}
}

// Buffered reports how many records are currently retained (diagnostics).
func (s *Stream) Buffered() int { return len(s.buf) }
