package emu

import "fmt"

// Stream adapts an Emulator into a rewindable dynamic-instruction source.
//
// The timing core has no wrong-path fetch: every fetched instruction is a
// committed-path record. Flush recovery therefore reduces to rewinding the
// stream to the squash point and re-delivering the same records. Stream keeps
// every record from the oldest uncommitted instruction onward; Release frees
// records once the timing core commits them.
//
// Records live in a generation-stamped arena owned by the stream: they are
// heap objects handed out as stable pointers — consumers hold them for an
// instruction's whole in-flight lifetime, across buffer compaction — but
// once Released they return to a free list and are recycled by later Next
// calls instead of being reallocated. In steady state (the window of
// in-flight instructions has reached its high-water mark) Next performs no
// allocation at all. Each recycle bumps the record's generation stamp, so a
// consumer that (incorrectly) holds a record past Release can detect the
// reuse by comparing stamps taken before and after.
type Stream struct {
	emu *Emulator

	buf  []*DynInst // records [base, base+len) by Seq
	base uint64     // Seq of buf[0]
	pos  uint64     // Seq of the next record Next returns
	err  error      // sticky emulator error

	// The record arena: released records awaiting reuse, and the running
	// generation counter stamped into each record as it is (re)issued.
	free    []*DynInst
	nextGen uint64
}

// NewStream wraps e.
func NewStream(e *Emulator) *Stream {
	return &Stream{emu: e}
}

// Reset rebinds the stream to a fresh emulator, recycling the whole record
// arena (buffered and free records alike) for the next run. Callers must no
// longer hold pointers into the previous run's records.
func (s *Stream) Reset(e *Emulator) {
	s.free = append(s.free, s.buf...)
	for i := range s.buf {
		s.buf[i] = nil
	}
	s.buf = s.buf[:0]
	s.emu = e
	s.base, s.pos = 0, 0
	s.err = nil
}

// Err returns the sticky emulator error, if any.
func (s *Stream) Err() error { return s.err }

// Gen returns the generation stamp of a record issued by this stream. The
// stamp is bumped each time the underlying arena slot is recycled; holding a
// record across Release and observing a changed stamp proves reuse.
func (s *Stream) Gen(d *DynInst) uint64 { return d.gen }

// alloc returns a record from the arena, recycling a released one if
// available.
func (s *Stream) alloc() *DynInst {
	if n := len(s.free); n > 0 {
		rec := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		return rec
	}
	return new(DynInst)
}

// Next returns the next dynamic instruction record, generating it from the
// emulator if it has not been produced before (or re-delivering it after a
// Rewind). Returns nil after a halt record has been delivered at the current
// position or on emulator error.
func (s *Stream) Next() *DynInst {
	if s.err != nil {
		return nil
	}
	idx := s.pos - s.base
	if idx < uint64(len(s.buf)) {
		d := s.buf[idx]
		s.pos++
		return d
	}
	if s.emu.Halted() {
		return nil
	}
	d, err := s.emu.Step()
	if err != nil {
		s.err = err
		return nil
	}
	rec := s.alloc()
	s.nextGen++
	d.gen = s.nextGen
	*rec = d
	s.buf = append(s.buf, rec)
	s.pos++
	return rec
}

// Rewind resets the stream so the next Next call returns the record with the
// given Seq. The record must still be buffered (i.e. not released).
func (s *Stream) Rewind(seq uint64) {
	if seq < s.base || seq > s.pos {
		panic(fmt.Sprintf("emu: rewind to %d outside buffered window [%d,%d]",
			seq, s.base, s.pos))
	}
	s.pos = seq
}

// Release drops buffered records with Seq < seq; they can no longer be
// rewound to and their arena slots become reusable by later Next calls.
// Call with the Seq of the oldest uncommitted instruction. Compaction is
// amortized: the shift happens only once at least half the buffer is dead.
func (s *Stream) Release(seq uint64) {
	if seq <= s.base {
		return
	}
	if seq > s.pos {
		panic(fmt.Sprintf("emu: release past read position (%d > %d)", seq, s.pos))
	}
	n := seq - s.base
	if n >= uint64(len(s.buf))/2 {
		// Recycle the dead prefix into the arena free list, then shift the
		// live suffix down. Both reuse existing backing arrays.
		s.free = append(s.free, s.buf[:n]...)
		keep := s.buf[n:]
		next := s.buf[:0]
		next = append(next, keep...)
		// Nil out the tail so the slice holds no duplicate live pointers.
		for i := len(next); i < len(s.buf); i++ {
			s.buf[i] = nil
		}
		s.buf = next
		s.base = seq
	}
}

// Buffered reports how many records are currently retained (diagnostics).
func (s *Stream) Buffered() int { return len(s.buf) }

// Recycled reports how many records sit on the arena free list (diagnostics).
func (s *Stream) Recycled() int { return len(s.free) }
