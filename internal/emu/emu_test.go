package emu

import (
	"testing"

	"svwsim/internal/isa"
	"svwsim/internal/prog"
)

// runProgram executes a builder's program to halt (or maxSteps) and returns
// the emulator.
func runProgram(t *testing.T, b *prog.Builder, maxSteps int) *Emulator {
	t.Helper()
	p := b.Build()
	e := New(p.NewImage(), p.Entry)
	for i := 0; i < maxSteps && !e.Halted(); i++ {
		if _, err := e.Step(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	if !e.Halted() {
		t.Fatalf("program did not halt in %d steps", maxSteps)
	}
	return e
}

func TestALUSemantics(t *testing.T) {
	b := prog.NewBuilder("alu")
	b.MovImm(1, 10)
	b.MovImm(2, 3)
	b.Add(3, 1, 2)    // 13
	b.Sub(4, 1, 2)    // 7
	b.Mul(5, 1, 2)    // 30
	b.And(6, 1, 2)    // 2
	b.Or(7, 1, 2)     // 11
	b.Xor(8, 1, 2)    // 9
	b.Slli(9, 1, 2)   // 40
	b.Srli(10, 1, 1)  // 5
	b.CmpEq(11, 1, 1) // 1
	b.CmpLt(12, 2, 1) // 1
	b.CmpLti(13, 1, 5)
	b.CmpUlt(14, 1, 2) // 0
	b.Halt()
	e := runProgram(t, b, 100)
	want := map[isa.Reg]uint64{
		3: 13, 4: 7, 5: 30, 6: 2, 7: 11, 8: 9, 9: 40, 10: 5,
		11: 1, 12: 1, 13: 0, 14: 0,
	}
	for r, v := range want {
		if e.Regs[r] != v {
			t.Errorf("r%d = %d, want %d", r, e.Regs[r], v)
		}
	}
}

func TestSignedArithmeticAndShifts(t *testing.T) {
	b := prog.NewBuilder("signed")
	b.MovImm(1, 0)
	b.Addi(1, 1, -5) // -5
	b.MovImm(2, 2)
	b.Emit(isa.Inst{Op: isa.OpSra, Rd: 3, Ra: 1, Rb: 2}) // -5>>2 = -2
	b.CmpLti(4, 1, 0)                                    // 1 (negative)
	b.Halt()
	e := runProgram(t, b, 100)
	if int64(e.Regs[1]) != -5 {
		t.Errorf("r1 = %d", int64(e.Regs[1]))
	}
	if int64(e.Regs[3]) != -2 {
		t.Errorf("sra = %d", int64(e.Regs[3]))
	}
	if e.Regs[4] != 1 {
		t.Errorf("cmplti = %d", e.Regs[4])
	}
}

func TestZeroRegisterHardwired(t *testing.T) {
	b := prog.NewBuilder("zero")
	b.MovImm(1, 42)
	b.Add(isa.Zero, 1, 1) // write to r31 discarded
	b.Add(2, isa.Zero, isa.Zero)
	b.Halt()
	e := runProgram(t, b, 10)
	if e.Regs[31] != 0 {
		t.Errorf("r31 = %d", e.Regs[31])
	}
	if e.Regs[2] != 0 {
		t.Errorf("r2 = %d", e.Regs[2])
	}
}

func TestLoadStoreWidthsAndExtension(t *testing.T) {
	b := prog.NewBuilder("mem")
	base := uint64(prog.DefaultDataBase)
	b.MovImm(1, base)
	b.MovImm(2, 0)
	b.Ldah(2, 2, 0x8000>>16) // placeholder, rewritten below
	b.MovImm(2, 0xFFFFFFFF)  // low 32 bits all set
	b.Stl(2, 0, 1)           // store 32-bit
	b.Ldl(3, 0, 1)           // sign-extends -> all ones
	b.Ldw(4, 0, 1)           // zero-extends 16 bits
	b.Ldb(5, 0, 1)           // zero-extends 8 bits
	b.Ldq(6, 0, 1)           // full quad: low 32 set only
	b.Halt()
	e := runProgram(t, b, 100)
	if e.Regs[3] != 0xFFFFFFFFFFFFFFFF {
		t.Errorf("ldl = %#x", e.Regs[3])
	}
	if e.Regs[4] != 0xFFFF {
		t.Errorf("ldw = %#x", e.Regs[4])
	}
	if e.Regs[5] != 0xFF {
		t.Errorf("ldb = %#x", e.Regs[5])
	}
	if e.Regs[6] != 0x00000000FFFFFFFF {
		t.Errorf("ldq = %#x", e.Regs[6])
	}
}

func TestBranchLoopComputesSum(t *testing.T) {
	// sum 1..10 via a backward branch.
	b := prog.NewBuilder("loop")
	b.MovImm(1, 10)
	b.MovImm(2, 0)
	b.Label("top")
	b.Add(2, 2, 1)
	b.Addi(1, 1, -1)
	b.Bne(1, "top")
	b.Halt()
	e := runProgram(t, b, 200)
	if e.Regs[2] != 55 {
		t.Errorf("sum = %d, want 55", e.Regs[2])
	}
}

func TestCallReturn(t *testing.T) {
	b := prog.NewBuilder("call")
	b.MovImm(1, 5)
	b.Bsr(28, "fn")
	b.Addi(2, 2, 100) // runs after return
	b.Halt()
	b.Label("fn")
	b.Addi(2, 1, 1) // r2 = 6
	b.Ret(28)
	e := runProgram(t, b, 100)
	if e.Regs[2] != 106 {
		t.Errorf("r2 = %d, want 106", e.Regs[2])
	}
}

func TestDynInstRecordsLoadsAndStores(t *testing.T) {
	b := prog.NewBuilder("rec")
	base := uint64(prog.DefaultDataBase)
	b.MovImm(1, base)
	b.MovImm(2, 77)
	b.Stq(2, 8, 1)
	b.Ldq(3, 8, 1)
	b.Halt()
	p := b.Build()
	e := New(p.NewImage(), p.Entry)
	var store, load *DynInst
	for !e.Halted() {
		d, err := e.Step()
		if err != nil {
			t.Fatal(err)
		}
		if d.Inst.IsStore() {
			dc := d
			store = &dc
		}
		if d.Inst.IsLoad() {
			dc := d
			load = &dc
		}
	}
	if store == nil || load == nil {
		t.Fatal("missing records")
	}
	if store.EffAddr != base+8 || store.StoreVal != 77 || store.MemBytes != 8 {
		t.Errorf("store rec = %+v", store)
	}
	if load.EffAddr != base+8 || load.LoadVal != 77 || load.Result != 77 {
		t.Errorf("load rec = %+v", load)
	}
}

func TestBranchRecordsTakenAndTarget(t *testing.T) {
	b := prog.NewBuilder("br")
	b.MovImm(1, 1)
	b.Bne(1, "skip") // taken
	b.Addi(2, 2, 1)  // skipped
	b.Label("skip")
	b.Beq(1, "never") // not taken
	b.Halt()
	b.Label("never")
	b.Halt()
	p := b.Build()
	e := New(p.NewImage(), p.Entry)
	var taken, notTaken *DynInst
	for !e.Halted() {
		d, err := e.Step()
		if err != nil {
			t.Fatal(err)
		}
		if d.Inst.Op == isa.OpBne {
			dc := d
			taken = &dc
		}
		if d.Inst.Op == isa.OpBeq {
			dc := d
			notTaken = &dc
		}
	}
	if taken == nil || !taken.Taken {
		t.Fatal("bne should be taken")
	}
	if taken.NextPC != taken.Inst.BranchTarget(taken.PC) {
		t.Errorf("taken target %#x", taken.NextPC)
	}
	if notTaken == nil || notTaken.Taken {
		t.Fatal("beq should not be taken")
	}
	if notTaken.NextPC != notTaken.PC+4 {
		t.Errorf("fallthrough %#x", notTaken.NextPC)
	}
}

func TestHaltSticks(t *testing.T) {
	b := prog.NewBuilder("halt")
	b.Halt()
	p := b.Build()
	e := New(p.NewImage(), p.Entry)
	d, err := e.Step()
	if err != nil || d.Inst.Op != isa.OpHalt {
		t.Fatalf("first step: %v %v", d.Inst, err)
	}
	if !e.Halted() {
		t.Fatal("not halted")
	}
	n := e.InstCount()
	if _, err := e.Step(); err != nil {
		t.Fatal(err)
	}
	if e.InstCount() != n {
		t.Error("halt advanced the instruction count")
	}
}
