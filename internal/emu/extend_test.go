package emu

import (
	"testing"
	"testing/quick"

	"svwsim/internal/isa"
	"svwsim/internal/prog"
)

func TestExtendLoad(t *testing.T) {
	cases := []struct {
		op   isa.Op
		raw  uint64
		want uint64
	}{
		{isa.OpLdb, 0xFF, 0xFF},
		{isa.OpLdw, 0xFFFF, 0xFFFF},
		{isa.OpLdl, 0x7FFFFFFF, 0x7FFFFFFF},
		{isa.OpLdl, 0x80000000, 0xFFFFFFFF80000000},
		{isa.OpLdl, 0xFFFFFFFF, 0xFFFFFFFFFFFFFFFF},
		{isa.OpLdq, 0x8000000000000000, 0x8000000000000000},
	}
	for _, c := range cases {
		got := ExtendLoad(isa.Inst{Op: c.op}, c.raw)
		if got != c.want {
			t.Errorf("ExtendLoad(%v, %#x) = %#x, want %#x", c.op, c.raw, got, c.want)
		}
	}
}

func TestExtendLoadQuickLdlMatchesInt32(t *testing.T) {
	f := func(v uint32) bool {
		got := ExtendLoad(isa.Inst{Op: isa.OpLdl}, uint64(v))
		return int64(got) == int64(int32(v))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestTimingValueSemantics pins down the relationship the timing core relies
// on: a load's architecturally correct value equals re-reading the emulator
// memory after all older stores applied.
func TestTimingValueSemantics(t *testing.T) {
	b := prog.NewBuilder("vals")
	base := uint64(prog.DefaultDataBase)
	b.MovImm(3, base)
	b.MovImm(1, 50)
	b.Label("top")
	b.Add(4, 1, 1)
	b.Stq(4, 0, 3)
	b.Ldq(5, 0, 3)
	b.Stl(1, 8, 3)
	b.Ldl(6, 8, 3)
	b.Addi(3, 3, 16)
	b.Addi(1, 1, -1)
	b.Bne(1, "top")
	b.Halt()
	p := b.Build()
	e := New(p.NewImage(), p.Entry)
	for !e.Halted() {
		d, err := e.Step()
		if err != nil {
			t.Fatal(err)
		}
		if d.Inst.IsLoad() {
			if got := e.Mem.Read(d.EffAddr, d.MemBytes); ExtendLoad(d.Inst, got) != d.LoadVal {
				t.Fatalf("oracle value mismatch at %#x", d.EffAddr)
			}
		}
	}
}
