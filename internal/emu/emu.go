// Package emu is the functional emulator. It executes ISA programs over a
// memory image and produces the dynamic instruction record stream the timing
// core consumes.
//
// The emulator is the oracle: every record carries the architecturally
// correct result, effective address, store data, load value, and branch
// outcome. The timing core replays this stream, computing its own (possibly
// stale) load values against speculative machine state; a mismatch between a
// timing-observed value and the oracle value is precisely a memory-ordering
// (or false-elimination) violation.
package emu

import (
	"fmt"

	"svwsim/internal/isa"
	"svwsim/internal/memimage"
)

// DynInst is one dynamic instruction record of the oracle stream.
type DynInst struct {
	Seq  uint64 // dynamic instruction number, starting at 0
	PC   uint64
	Inst isa.Inst

	NextPC uint64 // architecturally correct next PC
	Taken  bool   // for branches: whether control transferred

	EffAddr  uint64 // loads/stores: effective address
	MemBytes int    // loads/stores: access width
	StoreVal uint64 // stores: value written (low MemBytes significant)
	LoadVal  uint64 // loads: architecturally correct (extended) value

	Result uint64 // value written to Dest, if any

	// gen is the owning Stream's arena generation stamp (see Stream.Gen);
	// zero for records not issued by a stream.
	gen uint64
}

// String renders a compact trace line, useful in test failures.
func (d *DynInst) String() string {
	s := fmt.Sprintf("#%d pc=%#x %v", d.Seq, d.PC, d.Inst)
	if d.Inst.IsMem() {
		s += fmt.Sprintf(" [addr=%#x]", d.EffAddr)
	}
	return s
}

// Emulator executes a program one instruction at a time.
type Emulator struct {
	Mem  *memimage.Image
	Regs [32]uint64
	PC   uint64

	seq     uint64
	skipped uint64 // instructions consumed by FastForward, excluded from seq
	halted  bool

	// Decoded-instruction cache: a contiguous table covering
	// [decBase, decBase+4*len(decTable)). PCs inside the window skip the
	// per-step memory read and decode entirely; PCs outside fall back to
	// the decode-from-memory path. The table is precomputed from the
	// program's code words (prog.Program.Decoded), so it is byte-for-byte
	// the decode the fallback path would produce. Installing a table
	// asserts the code region is immutable: a program that stored to its
	// own code would diverge from table contents (no kernel does; the ISA
	// has no icache-flush primitive to make self-modification meaningful).
	decBase  uint64
	decTable []isa.Inst
}

// New returns an emulator executing from entry over mem. The caller retains
// ownership of mem; the emulator mutates it as stores execute.
func New(mem *memimage.Image, entry uint64) *Emulator {
	return &Emulator{Mem: mem, PC: entry}
}

// SetDecodeTable installs a decoded-instruction cache for the code window
// starting at base. insts[i] must be the decode of the word at base+4i.
func (e *Emulator) SetDecodeTable(base uint64, insts []isa.Inst) {
	e.decBase, e.decTable = base, insts
}

// decode returns the instruction at pc, via the decode table when pc falls
// inside the installed window.
func (e *Emulator) decode(pc uint64) isa.Inst {
	if idx := (pc - e.decBase) >> 2; idx < uint64(len(e.decTable)) && pc&3 == 0 {
		return e.decTable[idx]
	}
	return isa.Decode(e.Mem.Read32(pc))
}

// Halted reports whether a halt instruction has executed.
func (e *Emulator) Halted() bool { return e.halted }

// InstCount reports how many instructions have executed.
func (e *Emulator) InstCount() uint64 { return e.seq }

// ErrBadOpcode is returned when fetch decodes an undefined opcode, which
// indicates a builder or encoding bug rather than a program condition.
type ErrBadOpcode struct {
	PC   uint64
	Word uint32
}

func (e *ErrBadOpcode) Error() string {
	return fmt.Sprintf("emu: undefined opcode word %#x at pc %#x", e.Word, e.PC)
}

func (e *Emulator) reg(r isa.Reg) uint64 {
	if r == isa.Zero {
		return 0
	}
	return e.Regs[r]
}

func (e *Emulator) setReg(r isa.Reg, v uint64) {
	if r != isa.Zero {
		e.Regs[r] = v
	}
}

// Step executes one instruction and returns its record. After halt it keeps
// returning the halt record without advancing, so callers can over-fetch.
func (e *Emulator) Step() (DynInst, error) {
	inst := e.decode(e.PC)
	d := DynInst{Seq: e.seq, PC: e.PC, Inst: inst, NextPC: e.PC + 4}

	switch inst.Op {
	case isa.OpNop:
	case isa.OpHalt:
		e.halted = true
		d.NextPC = e.PC
		return d, nil

	case isa.OpAdd:
		d.Result = e.reg(inst.Ra) + e.reg(inst.Rb)
	case isa.OpSub:
		d.Result = e.reg(inst.Ra) - e.reg(inst.Rb)
	case isa.OpMul:
		d.Result = e.reg(inst.Ra) * e.reg(inst.Rb)
	case isa.OpAnd:
		d.Result = e.reg(inst.Ra) & e.reg(inst.Rb)
	case isa.OpOr:
		d.Result = e.reg(inst.Ra) | e.reg(inst.Rb)
	case isa.OpXor:
		d.Result = e.reg(inst.Ra) ^ e.reg(inst.Rb)
	case isa.OpSll:
		d.Result = e.reg(inst.Ra) << (e.reg(inst.Rb) & 63)
	case isa.OpSrl:
		d.Result = e.reg(inst.Ra) >> (e.reg(inst.Rb) & 63)
	case isa.OpSra:
		d.Result = uint64(int64(e.reg(inst.Ra)) >> (e.reg(inst.Rb) & 63))
	case isa.OpCmpEq:
		d.Result = b2u(e.reg(inst.Ra) == e.reg(inst.Rb))
	case isa.OpCmpLt:
		d.Result = b2u(int64(e.reg(inst.Ra)) < int64(e.reg(inst.Rb)))
	case isa.OpCmpLe:
		d.Result = b2u(int64(e.reg(inst.Ra)) <= int64(e.reg(inst.Rb)))
	case isa.OpCmpUlt:
		d.Result = b2u(e.reg(inst.Ra) < e.reg(inst.Rb))

	case isa.OpAddi:
		d.Result = e.reg(inst.Ra) + uint64(inst.Imm)
	case isa.OpAndi:
		d.Result = e.reg(inst.Ra) & uint64(inst.Imm)
	case isa.OpOri:
		d.Result = e.reg(inst.Ra) | uint64(inst.Imm)
	case isa.OpXori:
		d.Result = e.reg(inst.Ra) ^ uint64(inst.Imm)
	case isa.OpSlli:
		d.Result = e.reg(inst.Ra) << (uint64(inst.Imm) & 63)
	case isa.OpSrli:
		d.Result = e.reg(inst.Ra) >> (uint64(inst.Imm) & 63)
	case isa.OpCmpEqi:
		d.Result = b2u(e.reg(inst.Ra) == uint64(inst.Imm))
	case isa.OpCmpLti:
		d.Result = b2u(int64(e.reg(inst.Ra)) < inst.Imm)
	case isa.OpLda:
		d.Result = e.reg(inst.Ra) + uint64(inst.Imm)
	case isa.OpLdah:
		d.Result = e.reg(inst.Ra) + uint64(inst.Imm<<16)

	case isa.OpLdb, isa.OpLdw, isa.OpLdl, isa.OpLdq:
		d.EffAddr = e.reg(inst.Ra) + uint64(inst.Imm)
		d.MemBytes = inst.MemBytes()
		raw := e.Mem.Read(d.EffAddr, d.MemBytes)
		d.LoadVal = ExtendLoad(inst, raw)
		d.Result = d.LoadVal

	case isa.OpStb, isa.OpStw, isa.OpStl, isa.OpStq:
		d.EffAddr = e.reg(inst.Ra) + uint64(inst.Imm)
		d.MemBytes = inst.MemBytes()
		d.StoreVal = e.reg(inst.Rb)
		e.Mem.Write(d.EffAddr, d.MemBytes, d.StoreVal)

	case isa.OpBeq:
		d.Taken = e.reg(inst.Ra) == 0
	case isa.OpBne:
		d.Taken = e.reg(inst.Ra) != 0
	case isa.OpBlt:
		d.Taken = int64(e.reg(inst.Ra)) < 0
	case isa.OpBge:
		d.Taken = int64(e.reg(inst.Ra)) >= 0
	case isa.OpBr:
		d.Taken = true
	case isa.OpBsr:
		d.Taken = true
		d.Result = e.PC + 4
	case isa.OpJmp:
		d.Taken = true
		d.Result = e.PC + 4
		d.NextPC = e.reg(inst.Ra)

	default:
		return d, &ErrBadOpcode{PC: e.PC, Word: e.Mem.Read32(e.PC)}
	}

	if inst.IsCondBranch() || inst.IsUncondDirect() {
		if d.Taken {
			d.NextPC = inst.BranchTarget(e.PC)
		}
	}
	e.setReg(inst.Dest(), d.Result)
	e.PC = d.NextPC
	e.seq++
	return d, nil
}

// ExtendLoad applies the load's extension rule to raw bytes read from memory.
func ExtendLoad(inst isa.Inst, raw uint64) uint64 {
	if inst.SignExtends() {
		return uint64(int64(int32(uint32(raw))))
	}
	return raw
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
