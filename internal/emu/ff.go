package emu

// Fast-forward: emulator-only execution that advances architectural state
// without producing stream records. The instructions it consumes are
// excluded from dynamic numbering — after a fast-forward, Step hands out
// records numbered exactly as if the emulator had started at the
// fast-forwarded state, so a timing core attached afterwards sees a stream
// indistinguishable from a fresh program whose initial state happens to be
// the snapshot. That keeps every Seq-keyed pipeline invariant (stream
// rewind/release bounds, branch-wait sequencing) intact with zero plumbing.

import "svwsim/internal/memimage"

// ArchState is a snapshot of the emulator's architectural state: the
// complete functional machine, independent of any timing configuration.
type ArchState struct {
	Regs   [32]uint64
	PC     uint64
	Mem    *memimage.Image
	Halted bool
	// Skipped is how many committed instructions were consumed to reach
	// this state from the program's entry point.
	Skipped uint64
}

// FastForward executes up to n instructions functionally, discarding their
// records, and reports how many actually executed (fewer than n only if the
// program halted or decoding failed). The consumed instructions move to the
// skipped count instead of the sequence counter, preserving the
// numbered-from-the-snapshot stream contract above.
func (e *Emulator) FastForward(n uint64) (uint64, error) {
	start := e.seq
	var err error
	for e.seq-start < n && !e.halted {
		if _, err = e.Step(); err != nil {
			break
		}
	}
	executed := e.seq - start
	e.seq = start
	e.skipped += executed
	return executed, err
}

// Skipped reports how many instructions FastForward has consumed.
func (e *Emulator) Skipped() uint64 { return e.skipped }

// State snapshots the architectural state. The memory image is cloned, so
// the snapshot stays valid as the emulator keeps executing.
func (e *Emulator) State() ArchState {
	return ArchState{
		Regs:    e.Regs,
		PC:      e.PC,
		Mem:     e.Mem.Clone(),
		Halted:  e.halted,
		Skipped: e.skipped,
	}
}

// Restore adopts a snapshot: registers, PC, a clone of the snapshot's
// memory (the snapshot stays reusable), and the skipped count. The sequence
// counter restarts at zero — records produced after a Restore are numbered
// from the snapshot, per the stream contract. The decode table is
// unaffected; reinstall one with SetDecodeTable if the program changed.
func (e *Emulator) Restore(st ArchState) {
	e.Regs = st.Regs
	e.PC = st.PC
	e.Mem = st.Mem.Clone()
	e.halted = st.Halted
	e.skipped = st.Skipped
	e.seq = 0
}
