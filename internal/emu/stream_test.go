package emu

import (
	"testing"

	"svwsim/internal/prog"
)

func countingProgram() *prog.Builder {
	b := prog.NewBuilder("count")
	b.MovImm(1, 1000)
	b.Label("top")
	b.Addi(2, 2, 1)
	b.Addi(1, 1, -1)
	b.Bne(1, "top")
	b.Halt()
	return b
}

func newStream(t *testing.T) *Stream {
	t.Helper()
	p := countingProgram().Build()
	return NewStream(New(p.NewImage(), p.Entry))
}

func TestStreamSequentialSeqs(t *testing.T) {
	s := newStream(t)
	for i := uint64(0); i < 50; i++ {
		d := s.Next()
		if d == nil {
			t.Fatalf("nil at %d", i)
		}
		if d.Seq != i {
			t.Fatalf("seq = %d, want %d", d.Seq, i)
		}
	}
}

func TestStreamRewindRedeliversIdenticalRecords(t *testing.T) {
	s := newStream(t)
	var first []*DynInst
	for i := 0; i < 30; i++ {
		first = append(first, s.Next())
	}
	s.Rewind(10)
	for i := 10; i < 30; i++ {
		d := s.Next()
		if d != first[i] {
			t.Fatalf("rewind did not redeliver the same record at %d", i)
		}
	}
	// Continue past the rewound section.
	if d := s.Next(); d.Seq != 30 {
		t.Fatalf("post-rewind seq = %d", d.Seq)
	}
}

func TestStreamReleaseAllowsForwardProgress(t *testing.T) {
	s := newStream(t)
	var last *DynInst
	for i := 0; i < 2000; i++ {
		last = s.Next()
		if i%97 == 0 && last != nil {
			s.Release(last.Seq) // keep just the newest record
		}
		if last == nil {
			break
		}
	}
	if s.Buffered() > 1100 {
		t.Errorf("release failed to bound the buffer: %d", s.Buffered())
	}
}

func TestStreamPointersSurviveCompaction(t *testing.T) {
	s := newStream(t)
	var kept []*DynInst
	for i := 0; i < 400; i++ {
		d := s.Next()
		if i >= 390 {
			kept = append(kept, d)
		}
	}
	s.Release(390)
	for i, d := range kept {
		if d.Seq != uint64(390+i) {
			t.Fatalf("record %d corrupted after compaction: seq=%d", i, d.Seq)
		}
	}
	// Rewind into the retained window still works.
	s.Rewind(395)
	if d := s.Next(); d.Seq != 395 {
		t.Fatalf("rewind after release: seq=%d", d.Seq)
	}
}

func TestStreamRewindOutsideWindowPanics(t *testing.T) {
	s := newStream(t)
	for i := 0; i < 100; i++ {
		s.Next()
	}
	s.Release(90)
	defer func() {
		if recover() == nil {
			t.Error("expected panic rewinding before the released point")
		}
	}()
	s.Rewind(10)
}

func TestStreamEndsAfterHalt(t *testing.T) {
	b := prog.NewBuilder("tiny")
	b.Addi(1, 1, 1)
	b.Halt()
	p := b.Build()
	s := NewStream(New(p.NewImage(), p.Entry))
	if d := s.Next(); d == nil || d.Seq != 0 {
		t.Fatal("first record")
	}
	if d := s.Next(); d == nil || d.Inst.Op.String() != "halt" {
		t.Fatal("second record should be halt")
	}
	if d := s.Next(); d != nil {
		t.Fatalf("stream should end after halt, got %v", d)
	}
}
