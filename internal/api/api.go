// Package api is the wire contract of the svw simulation services: the
// request/response shapes and the exact JSON encoding shared by the svwd
// backend (internal/server) and the svwctl coordinator (internal/cluster).
// Both layers serve the same /v1 surface from these types, so a client —
// svwload, curl, a dashboard — cannot tell a single backend from a fabric
// of them, and the two implementations cannot drift apart: there is only
// one definition of every body that crosses the wire.
//
// /v1/run and /v1/sweep bodies use exactly the `svwsim -json` encoding
// (MarshalResult), so any service response can be byte-compared against
// the CLI; the CI smoke stages do exactly that, for svwd and for svwctl
// fronting two svwd children.
package api

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"svwsim/internal/pipeline"
	"svwsim/internal/sim/engine"
	"svwsim/internal/store"
	"svwsim/internal/trace"
)

// CacheHeader is set on /v1/run responses to say which store tier served
// the result: "memory" (the in-process LRU), "disk" (the persistent
// tier), or "miss" (freshly computed). A fronting coordinator reads it to
// observe backend cache effectiveness without parsing bodies, propagates
// it verbatim, and surfaces per-backend memory/disk hit counts in its
// /v1/stats cluster section.
const CacheHeader = "X-Svwd-Cache"

// The CacheHeader values. These are store.Origin's String() spellings —
// servers derive the header from a store lookup's Origin directly, and a
// test in internal/server pins the two enumerations together.
const (
	CacheMemory = "memory"
	CacheDisk   = "disk"
	CachePeer   = "peer"
	CacheMiss   = "miss"
)

// PeersHeader carries the fabric's member URLs (comma-separated,
// normalized, including the receiver) on coordinator-forwarded requests.
// A backend started with -peer-learn adopts the list as its store-owner
// election set — the coordinator's membership snapshot IS the sharding
// map, pushed along with the work itself so no separate gossip channel
// exists to drift from it. PeerSelfHeader names the URL the coordinator
// addressed the receiver by, which is how a backend learns its own
// identity inside that list without being configured with it.
const (
	PeersHeader    = "X-Svw-Peers"
	PeerSelfHeader = "X-Svw-Peer-Self"
)

// DeadlineHeader carries the client's latency budget in whole
// milliseconds. Both services derive the request context with that
// timeout, so the budget propagates through admission and into the
// engine (queued-but-unstarted jobs cancel cleanly); an exceeded budget
// is answered with HTTP 504 and an ErrorResponse body.
const DeadlineHeader = "X-Svw-Deadline-Ms"

// ClientHeader names the requesting tenant for fair admission. When the
// server runs with per-client weights, each tenant is admitted against
// its own share of the gate; requests without the header are attributed
// to their remote host.
const ClientHeader = "X-Svw-Client"

// TraceHeader carries the request's trace ID across every layer seam:
// generated at the first traced edge when the client did not send one,
// echoed on the response, and forwarded verbatim by the coordinator to
// its backends — so one ID looks a request up on the coordinator's and a
// backend's GET /debug/traces alike. (The constant lives in
// internal/trace, below this package; re-exported here with the rest of
// the wire contract.)
const TraceHeader = trace.Header

// TracesResponse is the body of GET /debug/traces (without ?id=): the
// daemon's completed-trace ring, most recent first. With ?id= the body is
// a single trace.TraceJSON instead. Re-exported from internal/trace so
// svwload decodes exactly what the daemons serve.
type TracesResponse = trace.TracesResponse

// TraceJSON and SpanJSON are one trace and one span on that wire.
type (
	TraceJSON = trace.TraceJSON
	SpanJSON  = trace.SpanJSON
)

// RunRequest is the body of POST /v1/run: one (config, bench, insts) job.
type RunRequest struct {
	// Config is a registry name (see GET /v1/configs / sim.ConfigNames).
	Config string `json:"config"`
	// Bench is a benchmark kernel name (see GET /v1/benches).
	Bench string `json:"bench"`
	// Insts bounds committed instructions (0 keeps the config's default).
	Insts uint64 `json:"insts"`
	// Sample* configure detailed-window sampling (pipeline.SampleSpec in
	// wire form). All three zero — the fields are omitted on the wire —
	// means exact simulation, or the server's configured default spec if it
	// runs with one. Sampled results live under their own store keys, so
	// they never collide with exact results.
	SampleWarmup uint64 `json:"sample_warmup,omitempty"`
	SampleDetail uint64 `json:"sample_detail,omitempty"`
	SamplePeriod uint64 `json:"sample_period,omitempty"`
}

// Sample assembles the request's sampling spec (zero value = exact).
func (r *RunRequest) Sample() pipeline.SampleSpec {
	return pipeline.SampleSpec{Warmup: r.SampleWarmup, Detail: r.SampleDetail, Period: r.SamplePeriod}
}

// SetSample spreads spec back into the wire fields (used when a layer
// resolves a default spec and forwards the request).
func (r *RunRequest) SetSample(spec pipeline.SampleSpec) {
	r.SampleWarmup, r.SampleDetail, r.SamplePeriod = spec.Warmup, spec.Detail, spec.Period
}

// SweepRequest is the body of POST /v1/sweep: a config × bench matrix that
// flattens into a job list config-major (configs outer, benches inner), the
// same order `svwsim -config a,b -bench x,y` runs. The Sample* fields
// apply to every cell of the matrix (see RunRequest).
type SweepRequest struct {
	Configs      []string `json:"configs"`
	Benches      []string `json:"benches"`
	Insts        uint64   `json:"insts"`
	SampleWarmup uint64   `json:"sample_warmup,omitempty"`
	SampleDetail uint64   `json:"sample_detail,omitempty"`
	SamplePeriod uint64   `json:"sample_period,omitempty"`
}

// Sample assembles the request's sampling spec (zero value = exact).
func (r *SweepRequest) Sample() pipeline.SampleSpec {
	return pipeline.SampleSpec{Warmup: r.SampleWarmup, Detail: r.SampleDetail, Period: r.SamplePeriod}
}

// SetSample spreads spec back into the wire fields.
func (r *SweepRequest) SetSample(spec pipeline.SampleSpec) {
	r.SampleWarmup, r.SampleDetail, r.SamplePeriod = spec.Warmup, spec.Detail, spec.Period
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
}

// ConfigsResponse is the body of GET /v1/configs.
type ConfigsResponse struct {
	Configs []string `json:"configs"`
}

// BenchesResponse is the body of GET /v1/benches.
type BenchesResponse struct {
	Benches []string `json:"benches"`
}

// HealthResponse is the body of GET /v1/healthz. Status is "ok" while
// serving and "draining" (with HTTP 503) once shutdown has begun, so load
// balancers stop routing new work during the drain. The coordinator adds
// "degraded" (503) when no backend is healthy, and reports pool counts in
// the Backends* fields (omitted by single-node svwd).
type HealthResponse struct {
	Status          string  `json:"status"`
	UptimeS         float64 `json:"uptime_s"`
	BackendsHealthy *int    `json:"backends_healthy,omitempty"`
	BackendsTotal   *int    `json:"backends_total,omitempty"`
}

// StatsResponse is the body of GET /v1/stats. From svwd the Cluster field
// is absent; from svwctl the Cache/Engine/Admission sections are sums over
// the backend pool and Cluster carries the coordinator's own counters, so
// tooling written against one shape (svwload) reads both.
type StatsResponse struct {
	UptimeS   float64       `json:"uptime_s"`
	Cache     CacheStats    `json:"cache"`
	Engine    EngineStats   `json:"engine"`
	Admission GateStats     `json:"admission"`
	Cluster   *ClusterStats `json:"cluster,omitempty"`
}

// CacheStats is the /v1/stats view of a tiered result store (or, from the
// coordinator, the pool-wide sum). It is the one definition of the cache
// counters: server, cluster and svwload all read and write this struct,
// so the layers cannot drift apart. Hits counts memory-tier hits;
// DiskHits counts results served from the persistent tier. The Disk*
// occupancy fields are zero on a store with no disk tier.
type CacheStats struct {
	Hits     uint64 `json:"hits"`
	DiskHits uint64 `json:"disk_hits"`
	// PeerHits counts results fetched from a peer backend's store over the
	// fabric's peer-read protocol instead of recomputed locally.
	PeerHits  uint64 `json:"peer_hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	// PromotionEvictions is the subset of Evictions forced by disk-hit
	// promotions — reads cannibalizing the memory tier, as opposed to
	// Put-driven growth.
	PromotionEvictions uint64 `json:"promotion_evictions"`
	// Coalesced counts singleflight waits: concurrent requests for a key
	// already being computed that shared the one in-flight computation
	// instead of running their own.
	Coalesced       uint64 `json:"coalesced"`
	Entries         int    `json:"entries"`
	Capacity        int    `json:"capacity"`
	DiskEntries     int    `json:"disk_entries"`
	DiskBytes       int64  `json:"disk_bytes"`
	DiskMaxBytes    int64  `json:"disk_max_bytes"`
	DiskEvictions   uint64 `json:"disk_evictions"`
	DiskCorrupt     uint64 `json:"disk_corrupt"`
	DiskWriteErrors uint64 `json:"disk_write_errors"`
	// Writebehind* snapshot the disk tier's write-behind queue: current
	// depth (entries not yet on disk), batches flushed, and writes dropped
	// by a full queue. All zero when writes are synchronous.
	WritebehindDepth   int    `json:"writebehind_depth"`
	WritebehindFlushes uint64 `json:"writebehind_flushes"`
	WritebehindDrops   uint64 `json:"writebehind_drops"`
}

// StoreCacheStats converts a store snapshot to its wire shape.
func StoreCacheStats(st store.Stats) CacheStats {
	return CacheStats{
		Hits:               st.Hits,
		DiskHits:           st.DiskHits,
		PeerHits:           st.PeerHits,
		Misses:             st.Misses,
		Evictions:          st.Evictions,
		PromotionEvictions: st.PromotionEvictions,
		Coalesced:          st.Coalesced,
		Entries:            st.Entries,
		Capacity:           st.Capacity,
		DiskEntries:        st.Disk.Entries,
		DiskBytes:          st.Disk.Bytes,
		DiskMaxBytes:       st.Disk.MaxBytes,
		DiskEvictions:      st.Disk.Evictions,
		DiskCorrupt:        st.Disk.Corrupt,
		DiskWriteErrors:    st.Disk.WriteErrors,
		WritebehindDepth:   st.WriteBehind.Depth,
		WritebehindFlushes: st.WriteBehind.Flushes,
		WritebehindDrops:   st.WriteBehind.Drops,
	}
}

// Add accumulates o into s field by field — the coordinator's pool-wide
// aggregation. Living next to the struct, it cannot silently miss a field
// the way per-caller summing loops can.
func (s *CacheStats) Add(o CacheStats) {
	s.Hits += o.Hits
	s.DiskHits += o.DiskHits
	s.PeerHits += o.PeerHits
	s.Misses += o.Misses
	s.Evictions += o.Evictions
	s.PromotionEvictions += o.PromotionEvictions
	s.Coalesced += o.Coalesced
	s.Entries += o.Entries
	s.Capacity += o.Capacity
	s.DiskEntries += o.DiskEntries
	s.DiskBytes += o.DiskBytes
	s.DiskMaxBytes += o.DiskMaxBytes
	s.DiskEvictions += o.DiskEvictions
	s.DiskCorrupt += o.DiskCorrupt
	s.DiskWriteErrors += o.DiskWriteErrors
	s.WritebehindDepth += o.WritebehindDepth
	s.WritebehindFlushes += o.WritebehindFlushes
	s.WritebehindDrops += o.WritebehindDrops
}

// EngineStats surfaces the shared engine's reuse counters, plus its
// sampled-simulation counters (engine.SampleStats on the wire): how much
// functional fast-forward work ran and how often stored warm-state
// checkpoints spared it.
type EngineStats struct {
	MemoHits    uint64 `json:"memo_hits"`
	MemoMisses  uint64 `json:"memo_misses"`
	MemoEntries int    `json:"memo_entries"`
	// FastForwards counts fast-forward legs actually emulated, and
	// FastForwardInsts the instructions those legs executed.
	FastForwards     uint64 `json:"fast_forwards"`
	FastForwardInsts uint64 `json:"fast_forward_insts"`
	// CheckpointHits counts legs answered by a stored checkpoint instead of
	// emulation; CheckpointMisses the probes that found nothing and fell
	// back; CheckpointPuts the checkpoints persisted.
	CheckpointHits   uint64 `json:"checkpoint_hits"`
	CheckpointMisses uint64 `json:"checkpoint_misses"`
	CheckpointPuts   uint64 `json:"checkpoint_puts"`
}

// Add accumulates o into s (see CacheStats.Add).
func (s *EngineStats) Add(o EngineStats) {
	s.MemoHits += o.MemoHits
	s.MemoMisses += o.MemoMisses
	s.MemoEntries += o.MemoEntries
	s.FastForwards += o.FastForwards
	s.FastForwardInsts += o.FastForwardInsts
	s.CheckpointHits += o.CheckpointHits
	s.CheckpointMisses += o.CheckpointMisses
	s.CheckpointPuts += o.CheckpointPuts
}

// GateStats is the /v1/stats view of the admission gate.
type GateStats struct {
	// Capacity is the configured max concurrent jobs (0 = unlimited).
	Capacity int    `json:"capacity"`
	InUse    int    `json:"in_use"`
	Rejected uint64 `json:"rejected"`
}

// Add accumulates o into s (see CacheStats.Add).
func (s *GateStats) Add(o GateStats) {
	s.Capacity += o.Capacity
	s.InUse += o.InUse
	s.Rejected += o.Rejected
}

// ClusterStats is the coordinator's own /v1/stats section: fabric-level
// counters plus the per-backend breakdown. Jobs counts each client job
// exactly once however many forwarding attempts it took — retries and
// hedges are accounted separately, never as extra jobs.
type ClusterStats struct {
	BackendsTotal   int `json:"backends_total"`
	BackendsHealthy int `json:"backends_healthy"`
	// Runs / Sweeps count client requests; Jobs counts sweep cells plus
	// runs, each exactly once.
	Runs      uint64 `json:"runs"`
	Sweeps    uint64 `json:"sweeps"`
	Jobs      uint64 `json:"jobs"`
	JobErrors uint64 `json:"job_errors"`
	// Retries counts failover attempts beyond the first of each
	// forwarding walk (a hedge's own first attempt is accounted under
	// Hedges, not Retries); Hedges counts speculative duplicates launched
	// for stragglers, HedgeWins the hedges whose response was used.
	Retries   uint64 `json:"retries"`
	Hedges    uint64 `json:"hedges"`
	HedgeWins uint64 `json:"hedge_wins"`
	// Store is the coordinator's own result store (set only when svwctl
	// runs with -store-dir): jobs it served directly from the persistent
	// tier when no backend could, and the tier's occupancy.
	Store    *CacheStats           `json:"store,omitempty"`
	Backends []ClusterBackendStats `json:"backends"`
}

// ClusterBackendStats is one backend's row in ClusterStats.
type ClusterBackendStats struct {
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
	// InFlight is the coordinator's current in-flight requests to this
	// backend (bounded by its per-backend concurrency limit).
	InFlight int `json:"in_flight"`
	// Requests counts forwarded requests including retries and hedges;
	// Errors the ones that failed (connection errors and 5xx).
	Requests uint64 `json:"requests"`
	Errors   uint64 `json:"errors"`
	// JobsOK counts jobs whose winning response came from this backend;
	// CacheHits the subset the backend answered from its memory tier,
	// DiskHits from its disk tier, and PeerHits from a peer's store over
	// the sharded-store read protocol (all via CacheHeader).
	JobsOK    uint64 `json:"jobs_ok"`
	CacheHits uint64 `json:"cache_hits"`
	DiskHits  uint64 `json:"disk_hits"`
	PeerHits  uint64 `json:"peer_hits"`
	// HealthFlaps counts health-state transitions (healthy <-> unhealthy)
	// the coordinator has observed for this backend — a flapping backend
	// has a high count with few lasting errors.
	HealthFlaps uint64 `json:"health_flaps"`
	// LastError is the most recent probe or forwarding error (empty while
	// the backend is error-free).
	LastError string `json:"last_error,omitempty"`
}

// SweepEvent is the data payload of one SSE "result" event during
// POST /v1/sweep streaming: the job's index in the flattened matrix plus
// where its result came from. Events always arrive in index order.
type SweepEvent struct {
	Index  int    `json:"index"`
	Config string `json:"config"`
	Bench  string `json:"bench"`
	// Cached: served from the result store, no engine involvement (on the
	// coordinator: the serving backend's store, via CacheHeader). Origin
	// says which tier ("memory", "disk" or "peer"); it is empty for
	// computed jobs.
	Cached bool   `json:"cached"`
	Origin string `json:"origin,omitempty"`
	// Memoized: executed via the engine but answered from its memo table.
	Memoized bool `json:"memoized"`
	// Backend is the URL of the backend that served the job; set only by
	// the coordinator (single-node svwd omits it).
	Backend string `json:"backend,omitempty"`
	// Error is set instead of Result when the job failed (or was cancelled).
	Error string `json:"error,omitempty"`
	// Result is the engine result in the `svwsim -json` shape.
	Result json.RawMessage `json:"result,omitempty"`
}

// SweepDone is the data payload of the final SSE "done" event. CacheHits
// counts every store-served job (all tiers); DiskHits and PeerHits the
// disk-tier and peer-fetched subsets.
type SweepDone struct {
	Jobs        int `json:"jobs"`
	CacheHits   int `json:"cache_hits"`
	DiskHits    int `json:"disk_hits"`
	PeerHits    int `json:"peer_hits"`
	CacheMisses int `json:"cache_misses"`
	Errors      int `json:"errors"`
}

// --- request helpers -----------------------------------------------------

// DecodeBody parses the request body into v under maxBytes, writing the
// error response itself and reporting whether decoding succeeded. Both
// services decode through it, so clients see one behavior: unknown
// fields, oversized bodies and trailing content after the JSON object
// (`{"config":"x"} junk`) are all rejected.
func DecodeBody(w http.ResponseWriter, r *http.Request, maxBytes int64, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			WriteError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", tooLarge.Limit)
			return false
		}
		WriteError(w, http.StatusBadRequest, "invalid request body: %v", err)
		return false
	}
	// A second decode must see a clean EOF; anything else is trailing
	// content the first decode silently stopped in front of.
	if err := dec.Decode(new(json.RawMessage)); !errors.Is(err, io.EOF) {
		WriteError(w, http.StatusBadRequest,
			"invalid request body: trailing data after JSON object")
		return false
	}
	return true
}

// RequestContext derives the handler's context from the request,
// applying the DeadlineHeader budget when present. On a malformed
// header it writes the 400 itself and reports ok=false. cancel must be
// called (it is a no-op when no deadline was set).
func RequestContext(w http.ResponseWriter, r *http.Request) (ctx context.Context, cancel context.CancelFunc, ok bool) {
	ctx = r.Context()
	h := r.Header.Get(DeadlineHeader)
	if h == "" {
		return ctx, func() {}, true
	}
	ms, err := strconv.ParseInt(h, 10, 64)
	if err != nil || ms <= 0 {
		WriteError(w, http.StatusBadRequest,
			"invalid %s header %q: want a positive integer of milliseconds", DeadlineHeader, h)
		return nil, nil, false
	}
	ctx, cancel = context.WithTimeout(ctx, time.Duration(ms)*time.Millisecond)
	return ctx, cancel, true
}

// --- encoding helpers ----------------------------------------------------

// WriteJSON writes v as indented JSON with a trailing newline (the same
// encoding `svwsim -json` and `svwexp -json` use).
func WriteJSON(w http.ResponseWriter, status int, v any) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	WriteBody(w, status, append(b, '\n'))
}

// WriteBody writes pre-serialized JSON bytes.
func WriteBody(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
}

// WriteError writes an ErrorResponse with the given status.
func WriteError(w http.ResponseWriter, status int, format string, args ...any) {
	WriteJSON(w, status, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// MarshalResult encodes an engine result exactly as `svwsim -json` does:
// indented JSON plus a trailing newline. Both service layers store and
// serve results in this form, so cache hits, fresh runs, coordinator
// merges and the CLI are all byte-identical.
func MarshalResult(res engine.Result) ([]byte, error) {
	b, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
