package api

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// Server-sent events for POST /v1/sweep: one "result" event per job, in
// job-index order (the engine's determinism guarantee carried over the
// wire — by svwd directly, and by svwctl across its merge of N backends),
// then one "done" event. Each event carries its job index as the SSE id,
// so clients can assert ordering and resume bookkeeping trivially.

// WantsSSE reports whether the client asked for an event stream.
func WantsSSE(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), "text/event-stream")
}

// SSE writes event frames, flushing after each one so events are delivered
// as they happen rather than at the end of the response.
type SSE struct {
	w http.ResponseWriter
	f http.Flusher
	// err latches the first write failure (client gone); later writes are
	// skipped so the sweep loop can keep draining results.
	err error
}

// NewSSE starts an event stream on w. It returns an error if w cannot
// flush, in which case nothing has been written.
func NewSSE(w http.ResponseWriter) (*SSE, error) {
	f, ok := w.(http.Flusher)
	if !ok {
		return nil, fmt.Errorf("response writer does not support streaming")
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-store")
	h.Set("X-Accel-Buffering", "no") // defeat proxy buffering
	w.WriteHeader(http.StatusOK)
	f.Flush()
	return &SSE{w: w, f: f}, nil
}

// Event emits one frame with the given event name, id and JSON-encoded
// data payload. Write errors latch: the first failure suppresses all
// subsequent frames.
func (s *SSE) Event(name string, id int, v any) {
	if s.err != nil {
		return
	}
	data, err := json.Marshal(v)
	if err != nil {
		s.err = err
		return
	}
	if _, err := fmt.Fprintf(s.w, "event: %s\nid: %d\ndata: %s\n\n", name, id, data); err != nil {
		s.err = err
		return
	}
	s.f.Flush()
}

// Event is one parsed frame of an event stream — the client-side view of
// what Event (the writer) emits. Tests and tooling use ParseEvents to
// assert ordering and payloads from either service layer.
type Event struct {
	Name string
	ID   int
	Data []byte
}

// ParseEvents reads an entire SSE body and returns its frames in arrival
// order. Frames without an id line report ID -1.
func ParseEvents(r io.Reader) ([]Event, error) {
	var events []Event
	cur := Event{ID: -1}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.Name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "id: "):
			id, err := strconv.Atoi(strings.TrimPrefix(line, "id: "))
			if err != nil {
				return nil, fmt.Errorf("bad id line %q", line)
			}
			cur.ID = id
		case strings.HasPrefix(line, "data: "):
			cur.Data = []byte(strings.TrimPrefix(line, "data: "))
		case line == "":
			if cur.Name != "" {
				events = append(events, cur)
			}
			cur = Event{ID: -1}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return events, nil
}
