package lsq

// This file holds the SSQ-specific structures (paper §2.3, Fig. 2c): the
// per-bank best-effort forwarding buffers and the FSQ steering predictor.

// FwdBuffer is the small unordered forwarding buffer fronting one data cache
// bank. Stores insert (address, data) when they execute; loads probe it in
// parallel with the cache. It handles only simple forwarding cases — full
// containment, latest insertion wins — and can silently supply a wrong value
// (e.g. the matching store is younger than the load, or a fuller match was
// evicted); re-execution catches such cases and trains the steering
// predictor to route the pair through the FSQ next time.
type FwdBuffer struct {
	entries []fbEntry
	next    int
	size    int
	clock   uint64

	// Stats
	Inserts, Hits, Probes uint64
}

type fbEntry struct {
	valid bool
	addr  uint64
	sz    int
	data  uint64
	seq   uint64
	order uint64
}

// NewFwdBuffer returns a buffer of the given capacity (8 in the paper).
func NewFwdBuffer(capacity int) *FwdBuffer {
	return &FwdBuffer{entries: make([]fbEntry, capacity), size: capacity}
}

// Reset empties the buffer and zeroes its statistics, reusing the entry
// array when the capacity is unchanged.
func (b *FwdBuffer) Reset(capacity int) {
	if capacity != b.size {
		*b = *NewFwdBuffer(capacity)
		return
	}
	for i := range b.entries {
		b.entries[i] = fbEntry{}
	}
	b.next, b.clock = 0, 0
	b.Inserts, b.Hits, b.Probes = 0, 0, 0
}

// Insert records a store's (addr, data); FIFO replacement.
func (b *FwdBuffer) Insert(addr uint64, size int, data uint64, seq uint64) {
	b.Inserts++
	b.clock++
	b.entries[b.next] = fbEntry{valid: true, addr: addr, sz: size, data: data, seq: seq, order: b.clock}
	b.next = (b.next + 1) % b.size
}

// Probe looks for a fully containing entry for [addr, addr+size) from a
// store older than the probing load (the buffer handles "unambiguous cases
// which execute in order anyway"; an age tag keeps younger stores from
// supplying values backward in program order). The most recently inserted
// match wins — which can still be the wrong store; re-execution verifies.
// It returns the raw load-sized value and the inserting store's seq.
func (b *FwdBuffer) Probe(loadSeq, addr uint64, size int) (data uint64, seq uint64, ok bool) {
	b.Probes++
	var best *fbEntry
	for i := range b.entries {
		e := &b.entries[i]
		if !e.valid || e.seq >= loadSeq {
			continue
		}
		st := StoreRec{Addr: e.addr, Size: e.sz}
		if !st.Contains(addr, size) {
			continue
		}
		if best == nil || e.order > best.order {
			best = e
		}
	}
	if best == nil {
		return 0, 0, false
	}
	b.Hits++
	st := StoreRec{Addr: best.addr, Size: best.sz, Data: best.data}
	return st.ExtractData(addr, size), best.seq, true
}

// Steering is the FSQ steering predictor: one bit per static load and one
// per static store (a bit in the instruction cache, in hardware). Initially
// clear: no instruction uses the FSQ. When re-execution detects a missed or
// botched forwarding instance, both participants are tagged.
type Steering struct {
	loads  map[uint64]bool
	stores map[uint64]bool

	// Stats
	LoadTags, StoreTags uint64
}

// NewSteering returns an empty predictor.
func NewSteering() *Steering {
	return &Steering{loads: make(map[uint64]bool), stores: make(map[uint64]bool)}
}

// LoadSteered reports whether the load at pc should search the FSQ.
func (s *Steering) LoadSteered(pc uint64) bool { return s.loads[pc] }

// StoreSteered reports whether the store at pc should allocate an FSQ entry.
func (s *Steering) StoreSteered(pc uint64) bool { return s.stores[pc] }

// TagLoad marks the load at pc for future FSQ access.
func (s *Steering) TagLoad(pc uint64) {
	if pc != 0 && !s.loads[pc] {
		s.loads[pc] = true
		s.LoadTags++
	}
}

// TagStore marks the store at pc for future FSQ entry.
func (s *Steering) TagStore(pc uint64) {
	if pc != 0 && !s.stores[pc] {
		s.stores[pc] = true
		s.StoreTags++
	}
}

// Counts reports how many static loads and stores are steered.
func (s *Steering) Counts() (loads, stores int) {
	return len(s.loads), len(s.stores)
}
