package lsq

import (
	"testing"
	"testing/quick"
)

func resolvedStore(seq, addr uint64, size int, data uint64) StoreRec {
	return StoreRec{Seq: seq, Addr: addr, Size: size, Data: data,
		AddrKnownAt: 1, DataKnownAt: 1}
}

func TestOverlapContains(t *testing.T) {
	s := StoreRec{Addr: 0x100, Size: 8}
	cases := []struct {
		addr              uint64
		size              int
		overlaps, contain bool
	}{
		{0x100, 8, true, true},
		{0x100, 4, true, true},
		{0x104, 4, true, true},
		{0x0F8, 8, false, false},
		{0x108, 8, false, false},
		{0x0FC, 8, true, false}, // straddles the front
		{0x104, 8, true, false}, // straddles the back
	}
	for _, c := range cases {
		if s.Overlaps(c.addr, c.size) != c.overlaps {
			t.Errorf("overlaps(%#x,%d) = %v", c.addr, c.size, !c.overlaps)
		}
		if s.Contains(c.addr, c.size) != c.contain {
			t.Errorf("contains(%#x,%d) = %v", c.addr, c.size, !c.contain)
		}
	}
}

func TestExtractData(t *testing.T) {
	s := StoreRec{Addr: 0x100, Size: 8, Data: 0x8877665544332211}
	if v := s.ExtractData(0x100, 8); v != 0x8877665544332211 {
		t.Errorf("full = %#x", v)
	}
	if v := s.ExtractData(0x104, 4); v != 0x88776655 {
		t.Errorf("upper half = %#x", v)
	}
	if v := s.ExtractData(0x102, 2); v != 0x4433 {
		t.Errorf("middle word = %#x", v)
	}
	if v := s.ExtractData(0x107, 1); v != 0x88 {
		t.Errorf("last byte = %#x", v)
	}
}

func TestExtractDataQuickAgainstByteModel(t *testing.T) {
	f := func(data uint64, off, sizeSel uint8) bool {
		size := 1 << (sizeSel % 3) // 1,2,4
		o := uint64(off) % uint64(8-size+1)
		s := StoreRec{Addr: 0x200, Size: 8, Data: data}
		got := s.ExtractData(0x200+o, size)
		var want uint64
		for i := size - 1; i >= 0; i-- {
			want = want<<8 | uint64(byte(data>>(8*(int(o)+i))))
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestStoreQueueOrderAndSquash(t *testing.T) {
	q := NewStoreQueue(4)
	q.Push(StoreRec{Seq: 1})
	q.Push(StoreRec{Seq: 3})
	q.Push(StoreRec{Seq: 5})
	if q.Len() != 3 || q.Full() {
		t.Fatalf("len=%d full=%v", q.Len(), q.Full())
	}
	if n := q.SquashYoungerThan(3); n != 1 {
		t.Errorf("squashed %d, want 1", n)
	}
	if q.Head().Seq != 1 {
		t.Errorf("head = %d", q.Head().Seq)
	}
	rec := q.PopHead()
	if rec.Seq != 1 || q.Len() != 1 {
		t.Error("pop head")
	}
	if !q.Remove(3) || q.Remove(3) {
		t.Error("remove semantics")
	}
}

func TestStoreQueuePushOutOfOrderPanics(t *testing.T) {
	q := NewStoreQueue(4)
	q.Push(StoreRec{Seq: 5})
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	q.Push(StoreRec{Seq: 4})
}

func TestSearchYoungestMatchWins(t *testing.T) {
	q := NewStoreQueue(8)
	q.Push(resolvedStore(1, 0x100, 8, 0xAAAA))
	q.Push(resolvedStore(2, 0x100, 8, 0xBBBB))
	res := q.Search(10, 0x100, 8, 100)
	if res.Kind != SearchForward || res.StoreSeq != 2 || res.Value != 0xBBBB {
		t.Fatalf("res = %+v", res)
	}
}

func TestSearchIgnoresYoungerStores(t *testing.T) {
	q := NewStoreQueue(8)
	q.Push(resolvedStore(5, 0x100, 8, 0xAAAA))
	res := q.Search(3, 0x100, 8, 100)
	if res.Kind != SearchMiss || res.AmbiguousOlder {
		t.Fatalf("younger store leaked into the search: %+v", res)
	}
}

func TestSearchTimeBasedVisibility(t *testing.T) {
	q := NewStoreQueue(8)
	rec := StoreRec{Seq: 1, Addr: 0x100, Size: 8, Data: 7,
		AddrKnownAt: 50, DataKnownAt: 60}
	q.Push(rec)
	// Before the STA resolves: the store is an unknown address.
	res := q.Search(10, 0x100, 8, 40)
	if res.Kind != SearchMiss || !res.AmbiguousOlder {
		t.Fatalf("pre-STA: %+v", res)
	}
	// Address known, data not yet: DataWait.
	res = q.Search(10, 0x100, 8, 55)
	if res.Kind != SearchDataWait || res.StoreSeq != 1 {
		t.Fatalf("pre-STD: %+v", res)
	}
	// Both visible: forward.
	res = q.Search(10, 0x100, 8, 60)
	if res.Kind != SearchForward || res.Value != 7 {
		t.Fatalf("post-STD: %+v", res)
	}
}

func TestSearchAmbiguousBetweenMatchAndLoad(t *testing.T) {
	q := NewStoreQueue(8)
	q.Push(resolvedStore(1, 0x100, 8, 0xAAAA))
	q.Push(StoreRec{Seq: 2, AddrKnownAt: ^uint64(0), DataKnownAt: ^uint64(0)})
	res := q.Search(10, 0x100, 8, 100)
	if res.Kind != SearchForward || !res.AmbiguousOlder {
		t.Fatalf("res = %+v", res)
	}
	// An unresolved store older than the match does not make the load
	// ambiguous: the match screens it.
	q2 := NewStoreQueue(8)
	q2.Push(StoreRec{Seq: 1, AddrKnownAt: ^uint64(0), DataKnownAt: ^uint64(0)})
	q2.Push(resolvedStore(2, 0x100, 8, 0xBBBB))
	res = q2.Search(10, 0x100, 8, 100)
	if res.Kind != SearchForward || res.AmbiguousOlder {
		t.Fatalf("res = %+v", res)
	}
}

func TestSearchPartialOverlap(t *testing.T) {
	q := NewStoreQueue(8)
	q.Push(resolvedStore(1, 0x104, 4, 0xCC))
	res := q.Search(10, 0x100, 8, 100) // load covers more than the store
	if res.Kind != SearchPartial || res.StoreSeq != 1 {
		t.Fatalf("res = %+v", res)
	}
}

func TestOldestUnknownAddr(t *testing.T) {
	q := NewStoreQueue(8)
	q.Push(resolvedStore(1, 0x100, 8, 1))
	q.Push(StoreRec{Seq: 2, AddrKnownAt: 90, DataKnownAt: ^uint64(0)})
	if q.OldestUnknownAddr(10, 100) {
		t.Error("all addresses visible at 100")
	}
	if !q.OldestUnknownAddr(10, 50) {
		t.Error("store 2 unresolved at 50")
	}
	if q.OldestUnknownAddr(2, 50) {
		t.Error("only stores older than the load count")
	}
}
