// Package lsq provides the load/store queue machinery shared by the three
// load-store unit designs the paper models (Fig. 2):
//
//   - the conventional unit: an age-ordered associative store queue searched
//     by executing loads, and a load queue searched by executing stores to
//     detect premature loads;
//   - the non-associative LQ (NLQ): the LQ search is deleted, ordering
//     violations are caught by pre-commit re-execution;
//   - the speculative SQ (SSQ): forwarding is split between a small
//     associative forwarding SQ (FSQ) reached through a steering predictor
//     and per-bank best-effort forwarding buffers; the retirement SQ (RSQ)
//     holds all stores but is never searched.
//
// The queues operate on plain records keyed by global dynamic sequence
// numbers; the pipeline owns instruction state and consults these structures
// at load/store execution.
package lsq

import "svwsim/internal/core"

// StoreRec is the view of an in-flight store the queues need.
//
// Address visibility is time-based: the pipeline records the cycle at which
// the store's STA resolves (known at issue, since the address generation
// latency is fixed), and a load executing at cycle t disambiguates against
// every store whose address resolves by t. AddrKnownAt starts at ^0
// ("never", i.e. STA not yet issued).
type StoreRec struct {
	Seq         uint64
	PC          uint64
	SSN         core.SSN
	Addr        uint64
	Size        int
	AddrKnownAt uint64
	Data        uint64
	DataKnownAt uint64
}

// AddrKnown reports whether the address is visible at cycle asOf.
func (s *StoreRec) AddrKnown(asOf uint64) bool { return s.AddrKnownAt <= asOf }

// DataKnown reports whether the forwardable data is available at cycle asOf.
func (s *StoreRec) DataKnown(asOf uint64) bool { return s.DataKnownAt <= asOf }

// Overlaps reports whether [addr, addr+size) intersects the store's range.
// Only meaningful when AddrKnown.
func (s *StoreRec) Overlaps(addr uint64, size int) bool {
	return s.Addr < addr+uint64(size) && addr < s.Addr+uint64(s.Size)
}

// Contains reports whether the store's range fully covers [addr, addr+size).
func (s *StoreRec) Contains(addr uint64, size int) bool {
	return s.Addr <= addr && addr+uint64(size) <= s.Addr+uint64(s.Size)
}

// ExtractData returns the load-sized slice of the store's data for a fully
// contained load at addr (little-endian).
func (s *StoreRec) ExtractData(addr uint64, size int) uint64 {
	shift := (addr - s.Addr) * 8
	v := s.Data >> shift
	if size < 8 {
		v &= 1<<(uint(size)*8) - 1
	}
	return v
}

// SearchKind classifies the result of an SQ search.
type SearchKind uint8

// Search outcomes, in decreasing priority: the youngest older store with a
// known overlapping address decides the kind.
const (
	// SearchMiss: no older store with a known address overlaps the load.
	SearchMiss SearchKind = iota
	// SearchForward: a known older store fully contains the load and its
	// data is available; Value/StoreSeq/StoreSSN are set.
	SearchForward
	// SearchDataWait: the matching store's data is not yet available; the
	// load must wait for StoreSeq to execute.
	SearchDataWait
	// SearchPartial: the matching store only partially covers the load; the
	// load must wait until StoreSeq commits and then read the cache.
	SearchPartial
)

// SearchResult is an SQ search outcome.
type SearchResult struct {
	Kind     SearchKind
	Value    uint64 // SearchForward: raw (unextended) load-sized value
	StoreSeq uint64
	StoreSSN core.SSN
	StorePC  uint64
	// AmbiguousOlder is true when at least one store older than the load and
	// younger than the matching store (or any older store, on a miss) has an
	// unknown address: the load is speculating past it. This is the NLQls
	// marking condition.
	AmbiguousOlder bool
}

// StoreQueue is an age-ordered queue of in-flight stores. It serves as the
// conventional SQ, the SSQ's FSQ (small, selectively allocated), and — with
// search never called — the SSQ's RSQ.
//
// The backing store is a fixed-capacity power-of-two ring buffer allocated
// once at construction: Push/PopHead/SquashYoungerThan move indices, never
// memory, so steady-state operation performs no allocation. The age order
// queues rely on is positional — slot head+i holds the i-th oldest store.
type StoreQueue struct {
	buf  []StoreRec // power-of-two ring
	head int        // ring index of the oldest entry
	n    int        // occupancy
	cap  int        // logical capacity (may be below len(buf))
	mask int
}

// RingSize returns the power-of-two ring allocation for a logical capacity.
// It is the one sizing rule every ring in the simulator uses (the LSQ
// queues here, the pipeline's ROB and fetch ring).
func RingSize(capacity int) int {
	sz := 1
	for sz < capacity {
		sz <<= 1
	}
	return sz
}

// NewStoreQueue returns a queue holding at most capacity stores.
func NewStoreQueue(capacity int) *StoreQueue {
	sz := RingSize(capacity)
	return &StoreQueue{buf: make([]StoreRec, sz), cap: capacity, mask: sz - 1}
}

// Reset empties the queue, retaining the ring allocation.
func (q *StoreQueue) Reset() { q.head, q.n = 0, 0 }

// at returns the i-th oldest entry (0 = head). Callers bound i by Len.
func (q *StoreQueue) at(i int) *StoreRec { return &q.buf[(q.head+i)&q.mask] }

// Len returns the current occupancy; Cap the capacity.
func (q *StoreQueue) Len() int { return q.n }

// Cap returns the queue capacity.
func (q *StoreQueue) Cap() int { return q.cap }

// Full reports whether an allocation would overflow.
func (q *StoreQueue) Full() bool { return q.n >= q.cap }

// Push allocates a store at the tail (dispatch order), with address and
// data visibility initialized to "never". It panics if full; callers gate
// dispatch on Full.
func (q *StoreQueue) Push(rec StoreRec) {
	if q.Full() {
		panic("lsq: store queue overflow")
	}
	if rec.AddrKnownAt == 0 {
		rec.AddrKnownAt = ^uint64(0)
	}
	if rec.DataKnownAt == 0 {
		rec.DataKnownAt = ^uint64(0)
	}
	if q.n > 0 && q.at(q.n-1).Seq >= rec.Seq {
		panic("lsq: store queue push out of order")
	}
	q.n++
	*q.at(q.n - 1) = rec
}

// Find returns the entry with the given seq, or nil.
func (q *StoreQueue) Find(seq uint64) *StoreRec {
	for i := 0; i < q.n; i++ {
		if e := q.at(i); e.Seq == seq {
			return e
		}
	}
	return nil
}

// Head returns the oldest entry, or nil if empty.
func (q *StoreQueue) Head() *StoreRec {
	if q.n == 0 {
		return nil
	}
	return q.at(0)
}

// PopHead removes the oldest entry (store commit).
func (q *StoreQueue) PopHead() StoreRec {
	if q.n == 0 {
		panic("lsq: pop from empty store queue")
	}
	rec := *q.at(0)
	q.head = (q.head + 1) & q.mask
	q.n--
	return rec
}

// Remove deletes the entry with the given seq wherever it sits (used by the
// FSQ, whose members commit out of FSQ order relative to non-FSQ stores).
// Younger entries shift down one slot to close the gap, preserving age
// order. It reports whether an entry was removed.
func (q *StoreQueue) Remove(seq uint64) bool {
	for i := 0; i < q.n; i++ {
		if q.at(i).Seq != seq {
			continue
		}
		for j := i; j < q.n-1; j++ {
			*q.at(j) = *q.at(j + 1)
		}
		q.n--
		return true
	}
	return false
}

// SquashYoungerThan removes entries with Seq > seq (flush recovery) and
// returns how many were removed.
func (q *StoreQueue) SquashYoungerThan(seq uint64) int {
	n := q.n
	for n > 0 && q.at(n-1).Seq > seq {
		n--
	}
	removed := q.n - n
	q.n = n
	return removed
}

// Search scans older stores (Seq < loadSeq), youngest first, for a
// forwarding or conflict candidate for a load of [addr, addr+size)
// disambiguating at cycle asOf. The scan stops at the youngest overlapping
// resolved-address store; stores whose addresses are not visible by asOf and
// are encountered before that point set AmbiguousOlder (the load speculates
// past them).
func (q *StoreQueue) Search(loadSeq, addr uint64, size int, asOf uint64) SearchResult {
	var res SearchResult
	for i := q.n - 1; i >= 0; i-- {
		st := q.at(i)
		if st.Seq >= loadSeq {
			continue
		}
		if !st.AddrKnown(asOf) {
			res.AmbiguousOlder = true
			continue
		}
		if !st.Overlaps(addr, size) {
			continue
		}
		res.StoreSeq = st.Seq
		res.StoreSSN = st.SSN
		res.StorePC = st.PC
		switch {
		case !st.Contains(addr, size):
			res.Kind = SearchPartial
		case !st.DataKnown(asOf):
			res.Kind = SearchDataWait
		default:
			res.Kind = SearchForward
			res.Value = st.ExtractData(addr, size)
		}
		return res
	}
	return res
}

// OldestUnknownAddr reports whether any store older than loadSeq has an
// address not yet visible at asOf (used for marking when no search is
// performed).
func (q *StoreQueue) OldestUnknownAddr(loadSeq uint64, asOf uint64) bool {
	for i := 0; i < q.n; i++ {
		e := q.at(i)
		if e.Seq >= loadSeq {
			break
		}
		if !e.AddrKnown(asOf) {
			return true
		}
	}
	return false
}
