package lsq

// LoadRec is the view of an in-flight load the load queue needs.
type LoadRec struct {
	Seq  uint64
	PC   uint64
	Addr uint64
	Size int
	// Issued is true once the load has read memory (its address is known
	// and a value has been obtained).
	Issued bool
	// FwdSeq is the sequence number of the store the load forwarded from;
	// FwdOK false means the load read the cache.
	FwdSeq uint64
	FwdOK  bool
	// Eliminated loads occupy LQ slots but carry no address/value; the
	// conventional store search cannot check them (paper §2.4).
	Eliminated bool
}

// LoadQueue is the age-ordered queue of in-flight loads. In the conventional
// design executing stores search it associatively for premature younger
// loads; the NLQ deletes that search. Like StoreQueue, it is a
// fixed-capacity power-of-two ring: no queue operation allocates.
type LoadQueue struct {
	buf  []LoadRec
	head int
	n    int
	cap  int
	mask int
}

// NewLoadQueue returns a queue holding at most capacity loads.
func NewLoadQueue(capacity int) *LoadQueue {
	sz := RingSize(capacity)
	return &LoadQueue{buf: make([]LoadRec, sz), cap: capacity, mask: sz - 1}
}

// Reset empties the queue, retaining the ring allocation.
func (q *LoadQueue) Reset() { q.head, q.n = 0, 0 }

// at returns the i-th oldest entry (0 = head). Callers bound i by Len.
func (q *LoadQueue) at(i int) *LoadRec { return &q.buf[(q.head+i)&q.mask] }

// Len returns occupancy; Cap capacity; Full whether allocation would overflow.
func (q *LoadQueue) Len() int   { return q.n }
func (q *LoadQueue) Cap() int   { return q.cap }
func (q *LoadQueue) Full() bool { return q.n >= q.cap }

// Push allocates at the tail (dispatch order).
func (q *LoadQueue) Push(rec LoadRec) {
	if q.Full() {
		panic("lsq: load queue overflow")
	}
	if q.n > 0 && q.at(q.n-1).Seq >= rec.Seq {
		panic("lsq: load queue push out of order")
	}
	q.n++
	*q.at(q.n - 1) = rec
}

// Find returns the entry with the given seq, or nil.
func (q *LoadQueue) Find(seq uint64) *LoadRec {
	for i := 0; i < q.n; i++ {
		if e := q.at(i); e.Seq == seq {
			return e
		}
	}
	return nil
}

// PopHead removes the oldest entry (load commit).
func (q *LoadQueue) PopHead() LoadRec {
	if q.n == 0 {
		panic("lsq: pop from empty load queue")
	}
	rec := *q.at(0)
	q.head = (q.head + 1) & q.mask
	q.n--
	return rec
}

// Head returns the oldest entry, or nil.
func (q *LoadQueue) Head() *LoadRec {
	if q.n == 0 {
		return nil
	}
	return q.at(0)
}

// SquashYoungerOrEqual removes entries with Seq >= seq and returns the count.
func (q *LoadQueue) SquashYoungerOrEqual(seq uint64) int {
	n := q.n
	for n > 0 && q.at(n-1).Seq >= seq {
		n--
	}
	removed := q.n - n
	q.n = n
	return removed
}

// SearchPremature implements the conventional intra-thread ordering check: a
// store that has just resolved its address scans younger issued loads for
// overlap. A load is premature if it read memory without forwarding from
// this store or anything younger — i.e. it observed pre-store memory even
// though the store precedes it. The oldest premature load is returned
// (flush point).
func (q *LoadQueue) SearchPremature(storeSeq, addr uint64, size int) (LoadRec, bool) {
	for i := 0; i < q.n; i++ {
		ld := q.at(i)
		if ld.Seq <= storeSeq || !ld.Issued || ld.Eliminated {
			continue
		}
		tmp := StoreRec{Addr: addr, Size: size}
		if !tmp.Overlaps(ld.Addr, ld.Size) {
			continue
		}
		if ld.FwdOK && ld.FwdSeq > storeSeq {
			continue // correctly forwarded from a younger-than-store store
		}
		return *ld, true
	}
	return LoadRec{}, false
}
