package lsq

// LoadRec is the view of an in-flight load the load queue needs.
type LoadRec struct {
	Seq  uint64
	PC   uint64
	Addr uint64
	Size int
	// Issued is true once the load has read memory (its address is known
	// and a value has been obtained).
	Issued bool
	// FwdSeq is the sequence number of the store the load forwarded from;
	// FwdOK false means the load read the cache.
	FwdSeq uint64
	FwdOK  bool
	// Eliminated loads occupy LQ slots but carry no address/value; the
	// conventional store search cannot check them (paper §2.4).
	Eliminated bool
}

// LoadQueue is the age-ordered queue of in-flight loads. In the conventional
// design executing stores search it associatively for premature younger
// loads; the NLQ deletes that search.
type LoadQueue struct {
	entries []LoadRec
	cap     int
}

// NewLoadQueue returns a queue holding at most capacity loads.
func NewLoadQueue(capacity int) *LoadQueue {
	return &LoadQueue{cap: capacity}
}

// Len returns occupancy; Cap capacity; Full whether allocation would overflow.
func (q *LoadQueue) Len() int   { return len(q.entries) }
func (q *LoadQueue) Cap() int   { return q.cap }
func (q *LoadQueue) Full() bool { return len(q.entries) >= q.cap }

// Push allocates at the tail (dispatch order).
func (q *LoadQueue) Push(rec LoadRec) {
	if q.Full() {
		panic("lsq: load queue overflow")
	}
	if n := len(q.entries); n > 0 && q.entries[n-1].Seq >= rec.Seq {
		panic("lsq: load queue push out of order")
	}
	q.entries = append(q.entries, rec)
}

// Find returns the entry with the given seq, or nil.
func (q *LoadQueue) Find(seq uint64) *LoadRec {
	for i := range q.entries {
		if q.entries[i].Seq == seq {
			return &q.entries[i]
		}
	}
	return nil
}

// PopHead removes the oldest entry (load commit).
func (q *LoadQueue) PopHead() LoadRec {
	if len(q.entries) == 0 {
		panic("lsq: pop from empty load queue")
	}
	rec := q.entries[0]
	q.entries = q.entries[1:]
	return rec
}

// Head returns the oldest entry, or nil.
func (q *LoadQueue) Head() *LoadRec {
	if len(q.entries) == 0 {
		return nil
	}
	return &q.entries[0]
}

// SquashYoungerOrEqual removes entries with Seq >= seq and returns the count.
func (q *LoadQueue) SquashYoungerOrEqual(seq uint64) int {
	n := len(q.entries)
	for n > 0 && q.entries[n-1].Seq >= seq {
		n--
	}
	removed := len(q.entries) - n
	q.entries = q.entries[:n]
	return removed
}

// SearchPremature implements the conventional intra-thread ordering check: a
// store that has just resolved its address scans younger issued loads for
// overlap. A load is premature if it read memory without forwarding from
// this store or anything younger — i.e. it observed pre-store memory even
// though the store precedes it. The oldest premature load is returned
// (flush point).
func (q *LoadQueue) SearchPremature(storeSeq, addr uint64, size int) (LoadRec, bool) {
	for i := range q.entries {
		ld := &q.entries[i]
		if ld.Seq <= storeSeq || !ld.Issued || ld.Eliminated {
			continue
		}
		tmp := StoreRec{Addr: addr, Size: size}
		if !tmp.Overlaps(ld.Addr, ld.Size) {
			continue
		}
		if ld.FwdOK && ld.FwdSeq > storeSeq {
			continue // correctly forwarded from a younger-than-store store
		}
		return *ld, true
	}
	return LoadRec{}, false
}
