package lsq

import (
	"testing"

	"svwsim/internal/raceflag"
)

// Allocation-regression gates for the ring-buffer rewrite: a steady-state
// dispatch/search/commit cycle of every queue must perform zero heap
// allocations. These tests pin the property the zero-allocation hot loop
// depends on — an append creeping back into a queue operation fails here
// long before it shows up in a profile.

func requireZeroAllocs(t *testing.T, name string, f func()) {
	t.Helper()
	if raceflag.Enabled {
		t.Skip("allocation counts are perturbed under -race")
	}
	if allocs := testing.AllocsPerRun(200, f); allocs != 0 {
		t.Errorf("%s: %v allocs per steady-state cycle, want 0", name, allocs)
	}
}

// TestStoreQueueSteadyStateZeroAlloc covers the conventional SQ / SSQ RSQ:
// a full dispatch-search-commit round trip.
func TestStoreQueueSteadyStateZeroAlloc(t *testing.T) {
	q := NewStoreQueue(64)
	var seq uint64
	requireZeroAllocs(t, "StoreQueue", func() {
		for i := 0; i < 8; i++ {
			q.Push(StoreRec{Seq: seq, PC: seq, Addr: seq * 8, Size: 8,
				AddrKnownAt: 1, DataKnownAt: 1})
			seq++
		}
		q.Search(seq, (seq-4)*8, 8, 10)
		q.Find(seq - 2)
		q.OldestUnknownAddr(seq, 10)
		for i := 0; i < 8; i++ {
			q.PopHead()
		}
	})
}

// TestFSQRemoveZeroAlloc covers the SSQ's FSQ, whose entries leave from the
// middle of the ring.
func TestFSQRemoveZeroAlloc(t *testing.T) {
	q := NewStoreQueue(16)
	var seq uint64
	requireZeroAllocs(t, "FSQ", func() {
		for i := 0; i < 4; i++ {
			q.Push(StoreRec{Seq: seq, Addr: seq * 8, Size: 8, AddrKnownAt: 1, DataKnownAt: 1})
			seq++
		}
		q.Remove(seq - 3) // middle removal, commit out of FSQ order
		q.SquashYoungerThan(seq - 2)
		for q.Len() > 0 {
			q.PopHead()
		}
	})
}

// TestLoadQueueSteadyStateZeroAlloc covers the LQ and — the search being
// optional — the NLQ: dispatch, issue update, premature-load search, commit.
func TestLoadQueueSteadyStateZeroAlloc(t *testing.T) {
	q := NewLoadQueue(128)
	var seq uint64
	requireZeroAllocs(t, "LoadQueue", func() {
		for i := 0; i < 8; i++ {
			q.Push(LoadRec{Seq: seq, PC: seq, Addr: seq * 8, Size: 8})
			seq++
		}
		if rec := q.Find(seq - 4); rec != nil {
			rec.Issued = true
		}
		q.SearchPremature(seq-8, (seq-4)*8, 8)
		for i := 0; i < 8; i++ {
			q.PopHead()
		}
	})
}

// TestFwdBufferZeroAlloc covers the SSQ's per-bank best-effort buffers.
func TestFwdBufferZeroAlloc(t *testing.T) {
	b := NewFwdBuffer(8)
	var seq uint64
	requireZeroAllocs(t, "FwdBuffer", func() {
		for i := 0; i < 4; i++ {
			b.Insert(seq*8, 8, seq, seq)
			seq++
		}
		b.Probe(seq+1, (seq-2)*8, 8)
	})
}
