package lsq

import "testing"

func TestLoadQueueBasics(t *testing.T) {
	q := NewLoadQueue(4)
	q.Push(LoadRec{Seq: 1})
	q.Push(LoadRec{Seq: 2})
	q.Push(LoadRec{Seq: 4})
	if q.Len() != 3 || q.Cap() != 4 || q.Full() {
		t.Fatal("geometry")
	}
	if q.Find(2) == nil || q.Find(3) != nil {
		t.Error("find")
	}
	if n := q.SquashYoungerOrEqual(2); n != 2 {
		t.Errorf("squashed %d", n)
	}
	if q.Head().Seq != 1 {
		t.Error("head")
	}
	q.PopHead()
	if q.Len() != 0 {
		t.Error("pop")
	}
}

func TestSearchPrematureFindsStaleLoad(t *testing.T) {
	q := NewLoadQueue(8)
	// Load 10 read cache (no forwarding) at 0x100.
	q.Push(LoadRec{Seq: 10, Addr: 0x100, Size: 8, Issued: true})
	ld, found := q.SearchPremature(5, 0x100, 8)
	if !found || ld.Seq != 10 {
		t.Fatalf("premature load not found: %v %v", ld, found)
	}
}

func TestSearchPrematureSkipsUnissued(t *testing.T) {
	q := NewLoadQueue(8)
	q.Push(LoadRec{Seq: 10, Addr: 0x100, Size: 8, Issued: false})
	if _, found := q.SearchPremature(5, 0x100, 8); found {
		t.Error("unissued load flagged")
	}
}

func TestSearchPrematureSkipsOlderLoads(t *testing.T) {
	q := NewLoadQueue(8)
	q.Push(LoadRec{Seq: 3, Addr: 0x100, Size: 8, Issued: true})
	if _, found := q.SearchPremature(5, 0x100, 8); found {
		t.Error("load older than the store flagged")
	}
}

func TestSearchPrematureRespectsForwarding(t *testing.T) {
	q := NewLoadQueue(8)
	// Load forwarded from store 7, which is younger than the searching
	// store 5: correctly ordered.
	q.Push(LoadRec{Seq: 10, Addr: 0x100, Size: 8, Issued: true, FwdOK: true, FwdSeq: 7})
	if _, found := q.SearchPremature(5, 0x100, 8); found {
		t.Error("correctly forwarded load flagged")
	}
	// Forwarded from store 3, older than store 5: the load missed store
	// 5's value.
	q2 := NewLoadQueue(8)
	q2.Push(LoadRec{Seq: 10, Addr: 0x100, Size: 8, Issued: true, FwdOK: true, FwdSeq: 3})
	if _, found := q2.SearchPremature(5, 0x100, 8); !found {
		t.Error("stale-forwarded load not flagged")
	}
}

func TestSearchPrematureSkipsEliminated(t *testing.T) {
	// Eliminated loads have empty LQ entries; the conventional search
	// cannot check them (paper §2.4) — re-execution must.
	q := NewLoadQueue(8)
	q.Push(LoadRec{Seq: 10, Addr: 0x100, Size: 8, Issued: true, Eliminated: true})
	if _, found := q.SearchPremature(5, 0x100, 8); found {
		t.Error("eliminated load flagged by LQ search")
	}
}

func TestSearchPrematureOldestWins(t *testing.T) {
	q := NewLoadQueue(8)
	q.Push(LoadRec{Seq: 10, Addr: 0x100, Size: 8, Issued: true})
	q.Push(LoadRec{Seq: 12, Addr: 0x100, Size: 8, Issued: true})
	ld, found := q.SearchPremature(5, 0x100, 8)
	if !found || ld.Seq != 10 {
		t.Error("flush point must be the oldest premature load")
	}
}

func TestFwdBufferLatestOlderMatch(t *testing.T) {
	b := NewFwdBuffer(4)
	b.Insert(0x100, 8, 0xAA, 1)
	b.Insert(0x100, 8, 0xBB, 2)
	v, seq, ok := b.Probe(10, 0x100, 8)
	if !ok || v != 0xBB || seq != 2 {
		t.Fatalf("probe = %#x/%d/%v", v, seq, ok)
	}
	// Entries from stores younger than (or equal to) the load never
	// forward backward in program order.
	if _, _, ok := b.Probe(1, 0x100, 8); ok {
		t.Error("younger store forwarded")
	}
	// A load between the two stores sees only the older one.
	if v2, seq2, ok := b.Probe(2, 0x100, 8); !ok || v2 != 0xAA || seq2 != 1 {
		t.Errorf("intermediate probe = %#x/%d/%v", v2, seq2, ok)
	}
	// Containment only.
	if _, _, ok := b.Probe(10, 0x0FC, 8); ok {
		t.Error("partial match forwarded")
	}
	v, _, ok = b.Probe(10, 0x104, 4)
	if !ok || v != 0 {
		t.Errorf("contained sub-access = %#x/%v", v, ok)
	}
}

func TestFwdBufferFIFOReplacement(t *testing.T) {
	b := NewFwdBuffer(2)
	b.Insert(0x100, 8, 1, 1)
	b.Insert(0x200, 8, 2, 2)
	b.Insert(0x300, 8, 3, 3) // evicts 0x100
	if _, _, ok := b.Probe(10, 0x100, 8); ok {
		t.Error("evicted entry forwarded")
	}
	if _, _, ok := b.Probe(10, 0x200, 8); !ok {
		t.Error("retained entry lost")
	}
}

func TestSteering(t *testing.T) {
	s := NewSteering()
	if s.LoadSteered(0x100) || s.StoreSteered(0x200) {
		t.Error("initially clear")
	}
	s.TagLoad(0x100)
	s.TagStore(0x200)
	s.TagLoad(0x100) // idempotent
	s.TagLoad(0)     // PC 0 is a sentinel, ignored
	if !s.LoadSteered(0x100) || !s.StoreSteered(0x200) {
		t.Error("tags lost")
	}
	if s.LoadTags != 1 || s.StoreTags != 1 {
		t.Errorf("tag counters = %d/%d", s.LoadTags, s.StoreTags)
	}
	l, st := s.Counts()
	if l != 1 || st != 1 {
		t.Error("counts")
	}
}
