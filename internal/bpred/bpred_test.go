package bpred

import (
	"testing"

	"svwsim/internal/isa"
)

func newP() *Predictor { return New(DefaultConfig()) }

func TestBimodalLearnsBiasedBranch(t *testing.T) {
	p := newP()
	pc := uint64(0x1000)
	inst := isa.Inst{Op: isa.OpBne, Ra: 1, Imm: 4}
	target := inst.BranchTarget(pc)
	miss := 0
	for i := 0; i < 100; i++ {
		out := p.Lookup(pc, inst, true, target)
		if out.DirMispredict {
			miss++
		}
	}
	if miss > 3 {
		t.Errorf("always-taken branch mispredicted %d/100 times", miss)
	}
}

func TestAlternatingPatternLearnedByGshare(t *testing.T) {
	p := newP()
	pc := uint64(0x2000)
	inst := isa.Inst{Op: isa.OpBeq, Ra: 1, Imm: 4}
	target := inst.BranchTarget(pc)
	miss := 0
	for i := 0; i < 400; i++ {
		taken := i%2 == 0
		out := p.Lookup(pc, inst, taken, target)
		if i >= 200 && out.DirMispredict {
			miss++
		}
	}
	// Global history disambiguates a strict alternation.
	if miss > 20 {
		t.Errorf("alternating branch mispredicted %d/200 after warmup", miss)
	}
}

func TestBTBMissThenHit(t *testing.T) {
	p := newP()
	pc := uint64(0x3000)
	inst := isa.Inst{Op: isa.OpBr, Imm: 16}
	target := inst.BranchTarget(pc)
	out := p.Lookup(pc, inst, true, target)
	if !out.BTBMiss {
		t.Error("first sighting should miss the BTB")
	}
	out = p.Lookup(pc, inst, true, target)
	if out.BTBMiss {
		t.Error("second sighting should hit the BTB")
	}
}

func TestReturnAddressStack(t *testing.T) {
	p := newP()
	call := isa.Inst{Op: isa.OpBsr, Rd: 28, Imm: 100}
	ret := isa.Inst{Op: isa.OpJmp, Rd: isa.Zero, Ra: 28}
	// Nested calls return in LIFO order.
	p.Lookup(0x100, call, true, call.BranchTarget(0x100))
	p.Lookup(0x200, call, true, call.BranchTarget(0x200))
	out := p.Lookup(0x900, ret, true, 0x204)
	if out.TargetMispredict || out.BTBMiss {
		t.Errorf("inner return mispredicted: %+v", out)
	}
	out = p.Lookup(0x910, ret, true, 0x104)
	if out.TargetMispredict || out.BTBMiss {
		t.Errorf("outer return mispredicted: %+v", out)
	}
	// A return to somewhere else is a target mispredict.
	p.Lookup(0x100, call, true, call.BranchTarget(0x100))
	out = p.Lookup(0x920, ret, true, 0xDEAD)
	if !out.TargetMispredict {
		t.Error("wrong return target should mispredict")
	}
}

func TestIndirectJumpUsesBTB(t *testing.T) {
	p := newP()
	jmp := isa.Inst{Op: isa.OpJmp, Rd: 28, Ra: 4} // linking: not a return
	out := p.Lookup(0x4000, jmp, true, 0x8888)
	if !out.BTBMiss {
		t.Error("first indirect should BTB-miss")
	}
	out = p.Lookup(0x4000, jmp, true, 0x8888)
	if out.BTBMiss || out.TargetMispredict {
		t.Errorf("trained indirect: %+v", out)
	}
	out = p.Lookup(0x4000, jmp, true, 0x9999)
	if !out.TargetMispredict {
		t.Error("changed indirect target should mispredict")
	}
}

func TestAccuracyAccounting(t *testing.T) {
	p := newP()
	inst := isa.Inst{Op: isa.OpBne, Ra: 1, Imm: 4}
	for i := 0; i < 10; i++ {
		p.Lookup(0x5000, inst, true, inst.BranchTarget(0x5000))
	}
	if p.Branches != 10 {
		t.Errorf("branches = %d", p.Branches)
	}
	if a := p.Accuracy(); a < 0.5 || a > 1 {
		t.Errorf("accuracy = %f", a)
	}
}

func TestBTBConflictEviction(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BTBSets = 2
	cfg.BTBWays = 1
	p := New(cfg)
	br := isa.Inst{Op: isa.OpBr, Imm: 8}
	// Same set (stride = sets*4), single way: the second evicts the first.
	p.Lookup(0x1000, br, true, br.BranchTarget(0x1000))
	p.Lookup(0x1000+8, br, true, br.BranchTarget(0x1000+8))
	out := p.Lookup(0x1000, br, true, br.BranchTarget(0x1000))
	if !out.BTBMiss {
		t.Error("evicted entry should miss")
	}
}
