// Package bpred implements the paper's front-end predictors: an 8K-entry
// hybrid (bimodal + gshare with a chooser) direction predictor, a 2K-entry
// 2-way set-associative BTB, and a return address stack.
//
// Because the timing core has no wrong-path fetch, the predictor is consulted
// at fetch with the branch's actual outcome available; its verdict decides
// whether fetch takes a mispredict bubble, and tables train immediately. This
// is the standard trace-driven formulation: accuracy matches an
// update-at-commit predictor to within noise because no wrong-path history
// pollution exists to repair.
package bpred

import "svwsim/internal/isa"

// Config sizes the predictor.
type Config struct {
	DirEntries  int // per component (bimodal, gshare, chooser)
	HistoryBits int
	BTBSets     int
	BTBWays     int
	RASDepth    int
}

// DefaultConfig returns the paper's front end: 8K-entry hybrid predictor and
// a 2K-entry 2-way BTB.
func DefaultConfig() Config {
	return Config{DirEntries: 8192, HistoryBits: 13, BTBSets: 1024, BTBWays: 2, RASDepth: 16}
}

// Predictor is the combined direction/target predictor.
type Predictor struct {
	cfg     Config
	bimodal []uint8
	gshare  []uint8
	chooser []uint8 // high = trust gshare
	history uint64

	btbTags   [][]uint64
	btbTarget [][]uint64
	btbLRU    [][]uint64
	btbClock  uint64

	ras    []uint64
	rasTop int

	// Stats
	Branches, DirMispredicts, TargetMispredicts, BTBMisses uint64
}

// New builds a predictor.
func New(cfg Config) *Predictor {
	p := &Predictor{
		cfg:     cfg,
		bimodal: make([]uint8, cfg.DirEntries),
		gshare:  make([]uint8, cfg.DirEntries),
		chooser: make([]uint8, cfg.DirEntries),
		ras:     make([]uint64, cfg.RASDepth),
	}
	for i := range p.bimodal {
		p.bimodal[i] = 1 // weakly not-taken
		p.gshare[i] = 1
		p.chooser[i] = 1
	}
	p.btbTags = make([][]uint64, cfg.BTBSets)
	p.btbTarget = make([][]uint64, cfg.BTBSets)
	p.btbLRU = make([][]uint64, cfg.BTBSets)
	for i := range p.btbTags {
		p.btbTags[i] = make([]uint64, cfg.BTBWays)
		p.btbTarget[i] = make([]uint64, cfg.BTBWays)
		p.btbLRU[i] = make([]uint64, cfg.BTBWays)
	}
	return p
}

// Outcome reports how fetch fared on one control instruction.
type Outcome struct {
	DirMispredict    bool // direction wrong: full resolve-at-execute penalty
	TargetMispredict bool // direction right, target wrong (indirect): full penalty
	BTBMiss          bool // taken and target unknown at fetch: decode bubble
}

func (p *Predictor) dirIndex(pc uint64) int {
	return int(pc>>2) & (p.cfg.DirEntries - 1)
}

func (p *Predictor) gshareIndex(pc uint64) int {
	return int((pc>>2)^p.history) & (p.cfg.DirEntries - 1)
}

// Lookup processes one branch at fetch. inst is the decoded instruction,
// taken/target the actual outcome from the oracle stream. Tables train
// in the same call.
func (p *Predictor) Lookup(pc uint64, inst isa.Inst, taken bool, target uint64) Outcome {
	p.Branches++
	var out Outcome
	switch {
	case inst.IsCondBranch():
		bi, gi := p.dirIndex(pc), p.gshareIndex(pc)
		predBimodal := p.bimodal[bi] >= 2
		predGshare := p.gshare[gi] >= 2
		pred := predBimodal
		useGshare := p.chooser[bi] >= 2
		if useGshare {
			pred = predGshare
		}
		if pred != taken {
			out.DirMispredict = true
			p.DirMispredicts++
		} else if taken && !p.btbLookup(pc, target) {
			out.BTBMiss = true
			p.BTBMisses++
		}
		// Train.
		p.bimodal[bi] = train(p.bimodal[bi], taken)
		p.gshare[gi] = train(p.gshare[gi], taken)
		if predBimodal != predGshare {
			p.chooser[bi] = train(p.chooser[bi], predGshare == taken)
		}
		p.history = p.history<<1 | b2u(taken)
		if taken {
			p.btbInsert(pc, target)
		}
	case inst.IsUncondDirect():
		// Target computable at decode; BTB miss costs only a decode bubble.
		if !p.btbLookup(pc, target) {
			out.BTBMiss = true
			p.BTBMisses++
		}
		p.btbInsert(pc, target)
		if inst.IsCall() {
			p.push(pc + 4)
		}
	case inst.IsIndirect():
		var predTarget uint64
		var havePred bool
		if inst.IsReturn() {
			predTarget, havePred = p.pop()
		} else {
			predTarget, havePred = p.btbTargetFor(pc)
			if inst.IsCall() {
				p.push(pc + 4)
			}
		}
		if !havePred {
			out.BTBMiss = true
			p.BTBMisses++
		} else if predTarget != target {
			out.TargetMispredict = true
			p.TargetMispredicts++
		}
		if !inst.IsReturn() {
			p.btbInsert(pc, target)
		}
	}
	return out
}

func train(ctr uint8, up bool) uint8 {
	if up {
		if ctr < 3 {
			return ctr + 1
		}
		return 3
	}
	if ctr > 0 {
		return ctr - 1
	}
	return 0
}

func (p *Predictor) btbSet(pc uint64) int { return int(pc>>2) & (p.cfg.BTBSets - 1) }

func (p *Predictor) btbLookup(pc, target uint64) bool {
	t, ok := p.btbTargetFor(pc)
	return ok && t == target
}

func (p *Predictor) btbTargetFor(pc uint64) (uint64, bool) {
	s := p.btbSet(pc)
	for w := 0; w < p.cfg.BTBWays; w++ {
		if p.btbTags[s][w] == pc && p.btbTarget[s][w] != 0 {
			p.btbClock++
			p.btbLRU[s][w] = p.btbClock
			return p.btbTarget[s][w], true
		}
	}
	return 0, false
}

func (p *Predictor) btbInsert(pc, target uint64) {
	s := p.btbSet(pc)
	victim, oldest := 0, ^uint64(0)
	for w := 0; w < p.cfg.BTBWays; w++ {
		if p.btbTags[s][w] == pc {
			victim = w
			break
		}
		if p.btbLRU[s][w] < oldest {
			victim, oldest = w, p.btbLRU[s][w]
		}
	}
	p.btbClock++
	p.btbTags[s][victim] = pc
	p.btbTarget[s][victim] = target
	p.btbLRU[s][victim] = p.btbClock
}

func (p *Predictor) push(ret uint64) {
	p.ras[p.rasTop%len(p.ras)] = ret
	p.rasTop++
}

func (p *Predictor) pop() (uint64, bool) {
	if p.rasTop == 0 {
		return 0, false
	}
	p.rasTop--
	return p.ras[p.rasTop%len(p.ras)], true
}

// ResetStats zeroes the outcome counters without touching trained state, so
// a sampled-simulation window can measure its own accuracy over a
// carried-over (warm) predictor.
func (p *Predictor) ResetStats() {
	p.Branches, p.DirMispredicts, p.TargetMispredicts, p.BTBMisses = 0, 0, 0, 0
}

// Accuracy returns the fraction of control instructions fetched without a
// full mispredict.
func (p *Predictor) Accuracy() float64 {
	if p.Branches == 0 {
		return 1
	}
	bad := p.DirMispredicts + p.TargetMispredicts
	return 1 - float64(bad)/float64(p.Branches)
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
