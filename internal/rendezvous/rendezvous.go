// Package rendezvous implements highest-random-weight (rendezvous)
// hashing over string member identities. It is the single placement
// function for the whole fabric: the svwctl coordinator routes jobs with
// it (internal/cluster), and every svwd backend elects the store owner
// for a memo key with it (internal/server), so both sides agree on which
// member holds a key's persistent entry without exchanging any state
// beyond the member list itself.
//
// The hash is unseeded FNV-1a over member + 0x00 + key, so the ranking
// is a pure function of (member set, key) — stable across processes,
// restarts, and machines. Removing a member only remaps the keys it
// owned; adding one only claims the keys it now wins.
package rendezvous

import (
	"hash/fnv"
	"sort"
)

// Score is one member's rendezvous weight for a key. The 0x00 separator
// keeps ("ab","c") and ("a","bc") distinct.
func Score(member, key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(member))
	h.Write([]byte{0}) // separate member from key
	h.Write([]byte(key))
	return h.Sum64()
}

// Rank returns members ordered by descending Score for key, ties broken
// by member string then original index, for full determinism. Rank[0] is
// the key's owner; later entries are its failover order.
func Rank(members []string, key string) []string {
	order := make([]int, len(members))
	scores := make([]uint64, len(members))
	for i, m := range members {
		order[i] = i
		scores[i] = Score(m, key)
	}
	sort.Slice(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		if scores[ia] != scores[ib] {
			return scores[ia] > scores[ib]
		}
		if members[ia] != members[ib] {
			return members[ia] < members[ib]
		}
		return ia < ib
	})
	out := make([]string, len(order))
	for i, idx := range order {
		out[i] = members[idx]
	}
	return out
}

// Owner returns the top-ranked member for key, or "" for an empty set.
func Owner(members []string, key string) string {
	if len(members) == 0 {
		return ""
	}
	best := 0
	bestScore := Score(members[0], key)
	for i := 1; i < len(members); i++ {
		s := Score(members[i], key)
		if s > bestScore || (s == bestScore && members[i] < members[best]) {
			best, bestScore = i, s
		}
	}
	return members[best]
}
