package rendezvous

import (
	"fmt"
	"testing"
)

func members(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://backend-%d:97%02d", i, i)
	}
	return out
}

func TestRankDeterministicAndComplete(t *testing.T) {
	ms := members(5)
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("key-%d", i)
		r1 := Rank(ms, key)
		r2 := Rank(ms, key)
		if len(r1) != len(ms) {
			t.Fatalf("rank dropped members: %v", r1)
		}
		seen := make(map[string]bool)
		for j := range r1 {
			if r1[j] != r2[j] {
				t.Fatalf("rank not deterministic for %q: %v vs %v", key, r1, r2)
			}
			seen[r1[j]] = true
		}
		if len(seen) != len(ms) {
			t.Fatalf("rank repeated a member for %q: %v", key, r1)
		}
	}
}

func TestOwnerMatchesRankHead(t *testing.T) {
	ms := members(7)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("cfg-%d|bench|10000", i)
		if got, want := Owner(ms, key), Rank(ms, key)[0]; got != want {
			t.Fatalf("Owner(%q)=%q, Rank head=%q", key, got, want)
		}
	}
}

func TestRemovalOnlyRemapsOwnedKeys(t *testing.T) {
	ms := members(6)
	removed := ms[2]
	smaller := append(append([]string{}, ms[:2]...), ms[3:]...)
	for i := 0; i < 300; i++ {
		key := fmt.Sprintf("k%d", i)
		before := Owner(ms, key)
		after := Owner(smaller, key)
		if before != removed && after != before {
			t.Fatalf("key %q moved from %q to %q though %q was removed", key, before, after, removed)
		}
	}
}

func TestOwnerEmptySet(t *testing.T) {
	if got := Owner(nil, "k"); got != "" {
		t.Fatalf("Owner(nil)=%q, want empty", got)
	}
}
