// Package cache models the timing of a two-level cache hierarchy: set
// associative caches with LRU replacement, miss status handling (in-flight
// line merging), and occupancy-tracked transfer buses, matching the paper's
// memory system (32KB 2-way 2-cycle L1s, 2MB 8-way 15-cycle L2, 150-cycle
// memory, 16B buses with the memory bus at one quarter core frequency).
//
// Caches here are timing-only: they track tags, not data. Data always comes
// from the functional memory images.
package cache

// Config describes one cache level.
type Config struct {
	Name      string
	SizeBytes int
	Ways      int
	LineBytes int
	Latency   int // hit latency in cycles
	// NextLinePrefetch issues a tagged next-line prefetch on every demand
	// miss (a simple sequential prefetcher in the style of the era's
	// stream buffers). The prefetched line fills in the shadow of the
	// demand miss.
	NextLinePrefetch bool
}

// BusConfig describes a transfer bus between levels.
type BusConfig struct {
	WidthBytes    int
	CyclesPerBeat int // core cycles to move WidthBytes
}

// Bus tracks occupancy of a transfer link.
type Bus struct {
	cfg    BusConfig
	freeAt uint64
}

// NewBus returns a bus with the given geometry.
func NewBus(cfg BusConfig) *Bus { return &Bus{cfg: cfg} }

// Acquire reserves the bus for transferring bytes, starting no earlier than
// now, and returns the cycle at which the transfer completes.
func (b *Bus) Acquire(now uint64, bytes int) uint64 {
	start := now
	if b.freeAt > start {
		start = b.freeAt
	}
	beats := (bytes + b.cfg.WidthBytes - 1) / b.cfg.WidthBytes
	b.freeAt = start + uint64(beats*b.cfg.CyclesPerBeat)
	return b.freeAt
}

// Cache is one timing cache level.
type Cache struct {
	cfg       Config
	sets      int
	lineShift uint

	tags  [][]uint64
	valid [][]bool
	stamp [][]uint64 // LRU stamps
	clock uint64

	lower  *Cache // next level; nil means misses go to memory
	bus    *Bus   // bus toward lower level (or memory if lower == nil)
	memLat int    // only meaningful when lower == nil

	mshr map[uint64]uint64 // line address -> fill-complete cycle

	// Stats
	Accesses, Misses, Prefetches uint64
}

// New builds a cache level. bus may be nil (no transfer modeling). For the
// last level, lower is nil and memLat gives the backing memory latency.
func New(cfg Config, lower *Cache, bus *Bus, memLat int) *Cache {
	sets := cfg.SizeBytes / (cfg.LineBytes * cfg.Ways)
	if sets <= 0 || sets&(sets-1) != 0 {
		panic("cache: set count must be a positive power of two")
	}
	shift := uint(0)
	for 1<<shift != cfg.LineBytes {
		shift++
		if shift > 16 {
			panic("cache: line size must be a power of two")
		}
	}
	c := &Cache{
		cfg:       cfg,
		sets:      sets,
		lineShift: shift,
		lower:     lower,
		bus:       bus,
		memLat:    memLat,
		mshr:      make(map[uint64]uint64),
	}
	c.tags = make([][]uint64, sets)
	c.valid = make([][]bool, sets)
	c.stamp = make([][]uint64, sets)
	for i := 0; i < sets; i++ {
		c.tags[i] = make([]uint64, cfg.Ways)
		c.valid[i] = make([]bool, cfg.Ways)
		c.stamp[i] = make([]uint64, cfg.Ways)
	}
	return c
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// LineAddr returns the line-aligned address containing addr.
func (c *Cache) LineAddr(addr uint64) uint64 { return addr >> c.lineShift << c.lineShift }

// Bank returns the bank index for addr given nbanks line-interleaved banks.
func (c *Cache) Bank(addr uint64, nbanks int) int {
	return int(addr>>c.lineShift) & (nbanks - 1)
}

func (c *Cache) set(addr uint64) int {
	return int(addr>>c.lineShift) & (c.sets - 1)
}

func (c *Cache) tag(addr uint64) uint64 {
	return addr >> c.lineShift / uint64(c.sets)
}

// lookup probes for addr and refreshes LRU on hit.
func (c *Cache) lookup(addr uint64) bool {
	s, t := c.set(addr), c.tag(addr)
	for w := 0; w < c.cfg.Ways; w++ {
		if c.valid[s][w] && c.tags[s][w] == t {
			c.clock++
			c.stamp[s][w] = c.clock
			return true
		}
	}
	return false
}

// fill installs addr's line, evicting LRU.
func (c *Cache) fill(addr uint64) {
	s, t := c.set(addr), c.tag(addr)
	victim, oldest := 0, ^uint64(0)
	for w := 0; w < c.cfg.Ways; w++ {
		if !c.valid[s][w] {
			victim = w
			break
		}
		if c.stamp[s][w] < oldest {
			victim, oldest = w, c.stamp[s][w]
		}
	}
	c.clock++
	c.tags[s][victim] = t
	c.valid[s][victim] = true
	c.stamp[s][victim] = c.clock
}

// Access simulates a read or write of addr at cycle now and returns the cycle
// at which the data is available (for a read) or absorbed (for a write).
// Writes allocate, like reads; stores never stall the commit pipeline on a
// miss in the model (write-buffer assumption), so callers are free to ignore
// the returned cycle for writes.
func (c *Cache) Access(addr uint64, now uint64) uint64 {
	c.Accesses++
	done := now + uint64(c.cfg.Latency)
	if c.lookup(addr) {
		// The line may still be in flight (demand or prefetch fill).
		if ready, inflight := c.mshr[c.LineAddr(addr)]; inflight {
			if ready <= now {
				delete(c.mshr, c.LineAddr(addr))
			} else if ready+uint64(c.cfg.Latency) > done {
				return ready + uint64(c.cfg.Latency)
			}
		}
		return done
	}
	c.Misses++
	line := c.LineAddr(addr)
	if ready, inflight := c.mshr[line]; inflight {
		if ready < now {
			// Fill completed in the past but the entry was not reaped yet.
			delete(c.mshr, line)
			c.fill(line)
			return done
		}
		return ready + uint64(c.cfg.Latency)
	}
	// Miss: fetch the line from below.
	lowerDone := c.fetchLine(line, done)
	if c.cfg.NextLinePrefetch {
		next := line + uint64(c.cfg.LineBytes)
		if !c.Contains(next) {
			if _, inflight := c.mshr[next]; !inflight {
				// Prefetch in the shadow of the demand miss; it occupies
				// the bus after the demand transfer.
				pfDone := c.fetchLine(next, lowerDone)
				c.fill(next)
				c.mshr[next] = pfDone
				c.Prefetches++
			}
		}
	}
	// Install immediately for tag purposes; timing honored via MSHR entry.
	c.fill(line)
	c.mshr[line] = lowerDone
	if len(c.mshr) > 256 {
		c.reapMSHR(now)
	}
	return lowerDone + uint64(c.cfg.Latency)
}

// fetchLine obtains a line from the level below (or memory), modeling the
// transfer bus.
func (c *Cache) fetchLine(line uint64, start uint64) uint64 {
	var lowerDone uint64
	if c.lower != nil {
		lowerDone = c.lower.Access(line, start)
	} else {
		lowerDone = start + uint64(c.memLat)
	}
	if c.bus != nil {
		lowerDone = c.bus.Acquire(lowerDone, c.cfg.LineBytes)
	}
	return lowerDone
}

func (c *Cache) reapMSHR(now uint64) {
	for line, ready := range c.mshr {
		if ready < now {
			delete(c.mshr, line)
		}
	}
}

// ResetStats zeroes the access counters without touching tag state, so a
// sampled-simulation window can measure its own miss rates over carried-over
// (warm) cache contents.
func (c *Cache) ResetStats() {
	c.Accesses, c.Misses, c.Prefetches = 0, 0, 0
}

// Contains reports whether addr's line is resident (testing aid).
func (c *Cache) Contains(addr uint64) bool {
	s, t := c.set(addr), c.tag(addr)
	for w := 0; w < c.cfg.Ways; w++ {
		if c.valid[s][w] && c.tags[s][w] == t {
			return true
		}
	}
	return false
}

// MissRate returns Misses/Accesses, or 0 with no accesses.
func (c *Cache) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}

// Hierarchy bundles the paper's standard memory system.
type Hierarchy struct {
	ICache *Cache
	DCache *Cache
	L2     *Cache
}

// ResetStats zeroes every level's access counters (tag state untouched).
func (h *Hierarchy) ResetStats() {
	h.ICache.ResetStats()
	h.DCache.ResetStats()
	h.L2.ResetStats()
}

// HierarchyConfig parameterizes NewHierarchy.
type HierarchyConfig struct {
	ICache Config
	DCache Config
	L2     Config
	MemLat int
	L2Bus  BusConfig // L1 <-> L2
	MemBus BusConfig // L2 <-> memory
}

// DefaultHierarchyConfig returns the paper's memory system: 32KB/2-way/2-cyc
// L1s, 2MB/8-way/15-cyc L2, 150-cycle memory, 16B buses with the memory bus
// at one quarter core frequency.
func DefaultHierarchyConfig() HierarchyConfig {
	return HierarchyConfig{
		ICache: Config{Name: "I$", SizeBytes: 32 << 10, Ways: 2, LineBytes: 64, Latency: 2},
		DCache: Config{Name: "D$", SizeBytes: 32 << 10, Ways: 2, LineBytes: 64, Latency: 2,
			NextLinePrefetch: true},
		L2: Config{Name: "L2", SizeBytes: 2 << 20, Ways: 8, LineBytes: 64, Latency: 15,
			NextLinePrefetch: true},
		MemLat: 150,
		L2Bus:  BusConfig{WidthBytes: 16, CyclesPerBeat: 1},
		MemBus: BusConfig{WidthBytes: 16, CyclesPerBeat: 4},
	}
}

// NewHierarchy builds the two-level hierarchy with a shared L2.
func NewHierarchy(cfg HierarchyConfig) *Hierarchy {
	memBus := NewBus(cfg.MemBus)
	l2 := New(cfg.L2, nil, memBus, cfg.MemLat)
	l2bus := NewBus(cfg.L2Bus)
	return &Hierarchy{
		ICache: New(cfg.ICache, l2, l2bus, 0),
		DCache: New(cfg.DCache, l2, l2bus, 0),
		L2:     l2,
	}
}
