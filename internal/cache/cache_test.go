package cache

import "testing"

func smallCache(lat int, lower *Cache, memLat int) *Cache {
	return New(Config{Name: "t", SizeBytes: 1024, Ways: 2, LineBytes: 64, Latency: lat},
		lower, nil, memLat)
}

func TestHitLatency(t *testing.T) {
	c := smallCache(2, nil, 100)
	c.Access(0x1000, 0) // install
	done := c.Access(0x1000, 1000)
	if done != 1002 {
		t.Errorf("hit done = %d, want 1002", done)
	}
}

func TestMissGoesToMemory(t *testing.T) {
	c := smallCache(2, nil, 100)
	done := c.Access(0x2000, 0)
	if done < 100 {
		t.Errorf("miss done = %d, want >= 100", done)
	}
	if c.Misses != 1 || c.Accesses != 1 {
		t.Errorf("counters = %d/%d", c.Misses, c.Accesses)
	}
}

func TestInFlightFillDelaysSecondAccess(t *testing.T) {
	c := smallCache(2, nil, 100)
	first := c.Access(0x3000, 0)
	// Second access to the same line while the fill is in flight must not
	// return hit latency.
	second := c.Access(0x3004, 1)
	if second < first {
		t.Errorf("second access done=%d before fill done=%d", second, first)
	}
	// After the fill completes, it is a plain hit.
	post := c.Access(0x3008, first+10)
	if post != first+12 {
		t.Errorf("post-fill access done=%d, want %d", post, first+12)
	}
}

func TestLRUEviction(t *testing.T) {
	// 1KB, 2-way, 64B lines -> 8 sets. Lines mapping to set 0: addresses
	// with line index multiple of 8.
	c := smallCache(1, nil, 50)
	a, b2, d := uint64(0), uint64(8*64), uint64(16*64)
	c.Access(a, 0)
	c.Access(b2, 100)
	c.Access(a, 200) // refresh a; b2 becomes LRU
	c.Access(d, 300) // evicts b2
	if !c.Contains(a) {
		t.Error("a evicted despite LRU refresh")
	}
	if c.Contains(b2) {
		t.Error("b2 should have been evicted")
	}
	if !c.Contains(d) {
		t.Error("d missing after fill")
	}
}

func TestTwoLevelHitPath(t *testing.T) {
	l2 := New(Config{Name: "l2", SizeBytes: 1 << 16, Ways: 4, LineBytes: 64, Latency: 10}, nil, nil, 100)
	l1 := New(Config{Name: "l1", SizeBytes: 1 << 10, Ways: 2, LineBytes: 64, Latency: 1}, l2, nil, 0)
	l1.Access(0x4000, 0) // miss everywhere -> memory
	// Evict from L1 by filling its set, then re-access: should hit L2.
	for i := uint64(1); i <= 2; i++ {
		l1.Access(0x4000+i*1024, 500+i)
	}
	if l1.Contains(0x4000) {
		t.Skip("set mapping kept the line; geometry changed")
	}
	done := l1.Access(0x4000, 10000)
	// L1 miss (1) + L2 hit (10): far less than memory (100).
	if done-10000 > 50 {
		t.Errorf("L2 hit path took %d cycles", done-10000)
	}
}

func TestBusOccupancySerializesTransfers(t *testing.T) {
	b := NewBus(BusConfig{WidthBytes: 16, CyclesPerBeat: 4})
	first := b.Acquire(0, 64) // 4 beats * 4 cycles
	if first != 16 {
		t.Fatalf("first transfer done = %d", first)
	}
	second := b.Acquire(0, 64) // queued behind the first
	if second != 32 {
		t.Errorf("second transfer done = %d, want 32", second)
	}
	third := b.Acquire(100, 16)
	if third != 104 {
		t.Errorf("idle bus transfer done = %d, want 104", third)
	}
}

func TestNextLinePrefetchInstalls(t *testing.T) {
	cfg := Config{Name: "pf", SizeBytes: 1 << 12, Ways: 2, LineBytes: 64, Latency: 1,
		NextLinePrefetch: true}
	c := New(cfg, nil, nil, 50)
	c.Access(0x8000, 0)
	if !c.Contains(0x8040) {
		t.Error("next line not prefetched")
	}
	if c.Prefetches != 1 {
		t.Errorf("prefetches = %d", c.Prefetches)
	}
	// The prefetched line's fill time is honored: an immediate access must
	// wait, not hit in 1 cycle.
	done := c.Access(0x8040, 2)
	if done <= 3 {
		t.Errorf("prefetched line returned too early: %d", done)
	}
}

func TestBankMapping(t *testing.T) {
	c := smallCache(1, nil, 10)
	if c.Bank(0x0, 2) == c.Bank(0x40, 2) {
		t.Error("adjacent lines should map to different banks")
	}
	if c.Bank(0x0, 2) != c.Bank(0x80, 2) {
		t.Error("lines two apart should share a bank")
	}
	if c.Bank(0x0, 2) != c.Bank(0x3F, 2) {
		t.Error("same line must be one bank")
	}
}

func TestDefaultHierarchyGeometry(t *testing.T) {
	h := NewHierarchy(DefaultHierarchyConfig())
	if h.ICache.Config().SizeBytes != 32<<10 || h.DCache.Config().SizeBytes != 32<<10 {
		t.Error("L1 sizes")
	}
	if h.L2.Config().SizeBytes != 2<<20 || h.L2.Config().Ways != 8 {
		t.Error("L2 geometry")
	}
	// End-to-end memory access cost is in the right ballpark: L1 miss +
	// L2 miss + 150 memory + buses.
	done := h.DCache.Access(0x9999000, 0)
	if done < 150 || done > 400 {
		t.Errorf("cold access = %d cycles", done)
	}
}

func TestMissRate(t *testing.T) {
	c := smallCache(1, nil, 10)
	c.Access(0x100, 0)
	c.Access(0x100, 50)
	c.Access(0x100, 100)
	if r := c.MissRate(); r < 0.3 || r > 0.35 {
		t.Errorf("miss rate = %f, want 1/3", r)
	}
}
