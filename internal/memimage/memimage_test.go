package memimage

import (
	"testing"
	"testing/quick"
)

func TestZeroValueReadsZero(t *testing.T) {
	m := New()
	if v := m.Read(0x1234, 8); v != 0 {
		t.Errorf("fresh read = %#x", v)
	}
	var zero Image
	if v := zero.Read(0x1234, 8); v != 0 {
		t.Errorf("zero-value read = %#x", v)
	}
}

func TestWriteReadWidths(t *testing.T) {
	m := New()
	m.Write(0x100, 8, 0x1122334455667788)
	if v := m.Read(0x100, 8); v != 0x1122334455667788 {
		t.Fatalf("quad = %#x", v)
	}
	if v := m.Read(0x100, 4); v != 0x55667788 {
		t.Errorf("low long = %#x", v)
	}
	if v := m.Read(0x104, 4); v != 0x11223344 {
		t.Errorf("high long = %#x", v)
	}
	if v := m.Read(0x100, 2); v != 0x7788 {
		t.Errorf("word = %#x", v)
	}
	if v := m.Read(0x100, 1); v != 0x88 {
		t.Errorf("byte = %#x", v)
	}
	m.Write(0x102, 1, 0xAA)
	if v := m.Read(0x100, 8); v != 0x1122334455AA7788 {
		t.Errorf("after byte poke = %#x", v)
	}
}

func TestPageStraddle(t *testing.T) {
	m := New()
	addr := uint64(PageBytes - 3)
	m.Write(addr, 8, 0xDEADBEEFCAFEF00D)
	if v := m.Read(addr, 8); v != 0xDEADBEEFCAFEF00D {
		t.Fatalf("straddle read = %#x", v)
	}
	if m.Pages() != 2 {
		t.Errorf("pages = %d, want 2", m.Pages())
	}
}

func TestLittleEndianLayout(t *testing.T) {
	m := New()
	m.Write(0x10, 4, 0x04030201)
	for i, want := range []byte{1, 2, 3, 4} {
		if got := m.ByteAt(0x10 + uint64(i)); got != want {
			t.Errorf("byte %d = %d, want %d", i, got, want)
		}
	}
}

func TestCloneIsIndependent(t *testing.T) {
	m := New()
	m.Write(0x40, 8, 7)
	c := m.Clone()
	c.Write(0x40, 8, 9)
	if v := m.Read(0x40, 8); v != 7 {
		t.Errorf("original mutated: %d", v)
	}
	if v := c.Read(0x40, 8); v != 9 {
		t.Errorf("clone = %d", v)
	}
}

func TestDiff(t *testing.T) {
	a, b := New(), New()
	if _, found := a.Diff(b); found {
		t.Error("empty images differ")
	}
	a.Write(0x1000, 8, 5)
	b.Write(0x1000, 8, 5)
	if _, found := a.Diff(b); found {
		t.Error("equal images differ")
	}
	b.Write(0x2000, 1, 1)
	if addr, found := a.Diff(b); !found || addr != 0x2000 {
		t.Errorf("diff = %#x found=%v", addr, found)
	}
	// Zero-valued writes must compare equal to untouched pages.
	c, d := New(), New()
	c.Write(0x3000, 8, 0)
	if _, found := c.Diff(d); found {
		t.Error("zero write vs untouched page differ")
	}
}

func TestRead32Write32(t *testing.T) {
	m := New()
	m.Write32(0x20, 0xFEEDF00D)
	if v := m.Read32(0x20); v != 0xFEEDF00D {
		t.Errorf("read32 = %#x", v)
	}
}

// TestQuickAgainstMapModel checks the image against a trivial byte-map model
// under random operations.
func TestQuickAgainstMapModel(t *testing.T) {
	type op struct {
		Addr  uint32
		Size  uint8
		Val   uint64
		Write bool
	}
	f := func(ops []op) bool {
		m := New()
		model := map[uint64]byte{}
		for _, o := range ops {
			size := 1 << (o.Size % 4) // 1,2,4,8
			addr := uint64(o.Addr)
			if o.Write {
				m.Write(addr, size, o.Val)
				for i := 0; i < size; i++ {
					model[addr+uint64(i)] = byte(o.Val >> (8 * i))
				}
				continue
			}
			var want uint64
			for i := size - 1; i >= 0; i-- {
				want = want<<8 | uint64(model[addr+uint64(i)])
			}
			if m.Read(addr, size) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
