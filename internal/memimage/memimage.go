// Package memimage provides a sparse, paged functional memory image.
//
// Two images back every simulation: the emulator's architectural image
// (advanced in program order as the oracle stream is generated) and the
// timing core's committed image (advanced at store commit). A load executing
// speculatively in the timing core reads the committed image — and therefore
// observes exactly the stale value real hardware would observe when it issues
// ahead of a conflicting older store.
package memimage

import "sort"

const (
	pageShift = 12
	// PageBytes is the allocation granule of the image.
	PageBytes = 1 << pageShift
	pageMask  = PageBytes - 1
)

// Image is a sparse 64-bit byte-addressable memory. The zero value is an
// empty image ready to use; unwritten bytes read as zero.
type Image struct {
	pages map[uint64]*[PageBytes]byte
}

// New returns an empty image.
func New() *Image {
	return &Image{pages: make(map[uint64]*[PageBytes]byte)}
}

func (m *Image) page(addr uint64, alloc bool) *[PageBytes]byte {
	if m.pages == nil {
		if !alloc {
			return nil
		}
		m.pages = make(map[uint64]*[PageBytes]byte)
	}
	key := addr >> pageShift
	p := m.pages[key]
	if p == nil && alloc {
		p = new([PageBytes]byte)
		m.pages[key] = p
	}
	return p
}

// ByteAt returns the byte at addr.
func (m *Image) ByteAt(addr uint64) byte {
	p := m.page(addr, false)
	if p == nil {
		return 0
	}
	return p[addr&pageMask]
}

// SetByte sets the byte at addr.
func (m *Image) SetByte(addr uint64, v byte) {
	m.page(addr, true)[addr&pageMask] = v
}

// Read returns size bytes starting at addr as a little-endian integer.
// size must be 1, 2, 4, or 8; accesses may straddle page boundaries.
func (m *Image) Read(addr uint64, size int) uint64 {
	var v uint64
	if p := m.page(addr, false); p != nil && int(addr&pageMask)+size <= PageBytes {
		off := addr & pageMask
		for i := size - 1; i >= 0; i-- {
			v = v<<8 | uint64(p[off+uint64(i)])
		}
		return v
	}
	for i := size - 1; i >= 0; i-- {
		v = v<<8 | uint64(m.ByteAt(addr+uint64(i)))
	}
	return v
}

// Write stores the low size bytes of v at addr, little-endian.
func (m *Image) Write(addr uint64, size int, v uint64) {
	if p := m.page(addr, true); int(addr&pageMask)+size <= PageBytes {
		off := addr & pageMask
		for i := 0; i < size; i++ {
			p[off+uint64(i)] = byte(v >> (8 * i))
		}
		return
	}
	for i := 0; i < size; i++ {
		m.SetByte(addr+uint64(i), byte(v>>(8*i)))
	}
}

// WriteBytes copies b to [addr, addr+len(b)), page by page — the bulk path
// program loading uses instead of per-byte writes.
func (m *Image) WriteBytes(addr uint64, b []byte) {
	for len(b) > 0 {
		p := m.page(addr, true)
		n := copy(p[addr&pageMask:], b)
		b = b[n:]
		addr += uint64(n)
	}
}

// Read32 reads a 32-bit word (used by instruction fetch).
func (m *Image) Read32(addr uint64) uint32 { return uint32(m.Read(addr, 4)) }

// Write32 writes a 32-bit word.
func (m *Image) Write32(addr uint64, v uint32) { m.Write(addr, 4, uint64(v)) }

// Clone returns a deep copy of the image. The timing core clones the initial
// program image so speculative-commit state never aliases the oracle's.
func (m *Image) Clone() *Image {
	c := New()
	for k, p := range m.pages {
		np := new([PageBytes]byte)
		*np = *p
		c.pages[k] = np
	}
	return c
}

// Pages reports how many pages have been touched (test/diagnostic aid).
func (m *Image) Pages() int { return len(m.pages) }

// PageAddrs returns the base address of every touched page in ascending
// order — the deterministic iteration order checkpoint encoding needs.
func (m *Image) PageAddrs() []uint64 {
	addrs := make([]uint64, 0, len(m.pages))
	for k := range m.pages {
		addrs = append(addrs, k<<pageShift)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	return addrs
}

// PageAt returns the backing array of the touched page containing addr, or
// nil for an untouched page (which reads as zero). Callers must treat the
// returned page as read-only.
func (m *Image) PageAt(addr uint64) *[PageBytes]byte {
	return m.page(addr, false)
}

// Diff returns the address of the first differing byte between two images,
// or ok=false if they are identical. Unallocated pages compare as zero.
func (m *Image) Diff(o *Image) (addr uint64, ok bool) {
	check := func(a, b *Image) (uint64, bool) {
		for key, p := range a.pages {
			q := b.page(key<<pageShift, false)
			for i := range p {
				var qb byte
				if q != nil {
					qb = q[i]
				}
				if p[i] != qb {
					return key<<pageShift | uint64(i), true
				}
			}
		}
		return 0, false
	}
	if a, found := check(m, o); found {
		return a, true
	}
	return check(o, m)
}
