package svwsim

import "testing"

func TestBenchmarksList(t *testing.T) {
	b := Benchmarks()
	if len(b) != 16 {
		t.Fatalf("got %d benchmarks", len(b))
	}
}

func TestRunBaseline(t *testing.T) {
	res, err := Run("gcc", Options{MaxInsts: 30_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC <= 0 || res.Committed == 0 || res.Loads == 0 {
		t.Errorf("degenerate result: %+v", res)
	}
	if res.RexRate != 0 {
		t.Error("baseline must not re-execute")
	}
}

func TestRunUnknownBenchmark(t *testing.T) {
	if _, err := Run("nope", Options{}); err == nil {
		t.Error("expected error")
	}
}

func TestSVWReducesRexAcrossOpts(t *testing.T) {
	for _, opt := range []Opt{OptNLQ, OptSSQ, OptRLE} {
		opt := opt
		t.Run(opt.String(), func(t *testing.T) {
			t.Parallel()
			raw, err := Run("perl.d", Options{Opt: opt, MaxInsts: 60_000})
			if err != nil {
				t.Fatal(err)
			}
			svw, err := Run("perl.d", Options{Opt: opt, SVW: true,
				SVWUpdateOnForward: true, MaxInsts: 60_000})
			if err != nil {
				t.Fatal(err)
			}
			if raw.RexRate == 0 {
				t.Fatalf("%v produced no re-executions", opt)
			}
			if svw.RexRate >= raw.RexRate {
				t.Errorf("%v: SVW did not reduce re-execution: %.3f -> %.3f",
					opt, raw.RexRate, svw.RexRate)
			}
		})
	}
}

func TestRLEEliminates(t *testing.T) {
	res, err := Run("vortex", Options{Opt: OptRLE, SVW: true, MaxInsts: 60_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.ElimRate < 0.1 {
		t.Errorf("vortex elimination rate = %.2f", res.ElimRate)
	}
}

func TestSSNWidthOverride(t *testing.T) {
	res, err := Run("gcc", Options{Opt: OptSSQ, SVW: true, SSNBits: 8,
		MaxInsts: 60_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.WrapDrains == 0 {
		t.Error("8-bit SSNs should drain within 60k instructions")
	}
}

func TestSpeedupMath(t *testing.T) {
	a := Result{IPC: 2.0}
	b := Result{IPC: 2.2}
	if s := Speedup(a, b); s < 9.99 || s > 10.01 {
		t.Errorf("speedup = %f", s)
	}
	if Speedup(Result{}, b) != 0 {
		t.Error("zero baseline")
	}
}
