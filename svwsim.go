// Package svwsim is a from-scratch Go reproduction of Amir Roth's "Store
// Vulnerability Window (SVW): Re-Execution Filtering for Enhanced Load
// Optimization" (ISCA 2005): a cycle-level dynamically-scheduled superscalar
// simulator with the paper's three load optimizations — the non-associative
// load queue (NLQ), the speculative store queue (SSQ), and redundant load
// elimination (RLE) — and the SVW mechanism that filters their load
// re-executions.
//
// The package is a facade over the internal simulator. A run is described by
// a benchmark name (one of sixteen synthetic kernels standing in for the
// SPEC2000 integer suite) and an Options value selecting the machine:
//
//	res, err := svwsim.Run("vortex", svwsim.Options{
//		Opt: svwsim.OptSSQ,
//		SVW: true,
//		SVWUpdateOnForward: true,
//	})
//	fmt.Printf("IPC %.2f, re-executed %.1f%% of loads\n",
//		res.IPC, 100*res.RexRate)
//
// # The experiment engine
//
// Sweeps — ladders of configurations over benchmark sets — run on the
// sharded, work-stealing engine in internal/sim/engine. Its contract, which
// both CLIs expose through the -j, -timeout and -json flags:
//
//   - Parallelism: the job list is sharded round-robin over -j workers
//     (0 = GOMAXPROCS); idle workers steal from the fullest shard, so slow
//     configurations cannot strand queued work.
//   - Memoization: jobs are keyed by (configuration, benchmark, instruction
//     budget) with display names ignored; semantically identical jobs —
//     ladder baselines repeated across studies, the summary study's
//     re-sweep of Figs. 5–7 under svwexp -all — execute exactly once per
//     engine and are served from its memo thereafter.
//   - Determinism: results are delivered in job order and progress fires in
//     job-index order, never completion order, so -j 1 and -j N produce
//     byte-identical tables and JSON. The determinism and race tests in
//     internal/sim enforce this.
//
// The cmd/svwexp tool regenerates every figure of the paper's evaluation;
// see EXPERIMENTS.md for the measured results.
package svwsim

import (
	"fmt"

	"svwsim/internal/pipeline"
	"svwsim/internal/sim"
	"svwsim/internal/workload"
)

// Opt selects the load optimization under study.
type Opt int

// Load optimizations (paper §2).
const (
	// OptNone is the study baseline for the 8-wide machine.
	OptNone Opt = iota
	// OptNLQ replaces load queue search with pre-commit re-execution
	// (§2.2), doubling store issue bandwidth.
	OptNLQ
	// OptSSQ splits the store queue into a small forwarding queue and a
	// large non-associative retirement queue (§2.3); every load re-executes.
	OptSSQ
	// OptRLE eliminates redundant loads through register integration
	// (§2.4) on the 4-wide machine; eliminated loads re-execute.
	OptRLE
	// OptRLEBase is the study baseline for the 4-wide machine.
	OptRLEBase
	// OptSSQBase is the SSQ study's baseline: the 8-wide machine with the
	// big associative SQ that stretches loads to 4 cycles (§4.2).
	OptSSQBase
)

func (o Opt) String() string {
	switch o {
	case OptNone:
		return "baseline"
	case OptNLQ:
		return "nlq"
	case OptSSQ:
		return "ssq"
	case OptRLE:
		return "rle"
	case OptRLEBase:
		return "rle-baseline"
	case OptSSQBase:
		return "ssq-baseline"
	}
	return "?"
}

// Options selects the machine configuration for a run.
type Options struct {
	// Opt is the load optimization (default OptNone).
	Opt Opt
	// SVW enables the store vulnerability window re-execution filter.
	SVW bool
	// SVWUpdateOnForward raises a load's SVW to its forwarding store's SSN
	// (the paper's +UPD refinement).
	SVWUpdateOnForward bool
	// PerfectRex models ideal (zero-latency, infinite-bandwidth)
	// re-execution — the paper's +PERFECT upper bound. Overrides SVW.
	PerfectRex bool
	// DisableSquashReuse turns off integration through squash-marked IT
	// entries (the paper's SVW−SQU point; OptRLE only).
	DisableSquashReuse bool
	// SSNBits overrides the hardware SSN width (default 16; 0 keeps 16,
	// pass a negative value for infinite).
	SSNBits int
	// SSBFEntries overrides the SSBF size (default 512).
	SSBFEntries int
	// SSBFGranuleBytes overrides the conflict granularity (default 8).
	SSBFGranuleBytes int
	// MaxInsts bounds the simulation (default 300k including 50k warm-up).
	MaxInsts uint64
}

// Result summarizes one run.
type Result struct {
	Bench  string
	Config string

	IPC        float64
	Cycles     uint64
	Committed  uint64
	Loads      uint64
	Stores     uint64
	MarkedRate float64 // marked loads / committed loads
	RexRate    float64 // re-executed loads / committed loads
	FilterRate float64 // SVW-filtered share of marked loads
	ElimRate   float64 // eliminated loads / committed loads (RLE)
	RexFails   uint64
	WrapDrains uint64

	// Raw exposes every counter for callers that need more.
	Raw pipeline.Stats
}

// Benchmarks lists the sixteen kernel names, alphabetically.
func Benchmarks() []string { return workload.Names() }

// buildConfig translates Options into an internal machine configuration.
func buildConfig(o Options) (pipeline.Config, error) {
	var cfg pipeline.Config
	mode := sim.SVWOff
	switch {
	case o.PerfectRex:
		mode = sim.Perfect
	case o.SVW && o.SVWUpdateOnForward:
		mode = sim.SVWUpd
	case o.SVW:
		mode = sim.SVWNoUpd
	}
	switch o.Opt {
	case OptNone:
		cfg = sim.BaselineNLQ()
	case OptNLQ:
		cfg = sim.NLQ(mode)
	case OptSSQ:
		cfg = sim.SSQ(mode)
	case OptSSQBase:
		cfg = sim.BaselineSSQ()
	case OptRLEBase:
		cfg = sim.BaselineRLE()
	case OptRLE:
		switch {
		case o.PerfectRex:
			cfg = sim.RLE(sim.RLEPerfect)
		case o.SVW && o.DisableSquashReuse:
			cfg = sim.RLE(sim.RLESVWNoSQ)
		case o.SVW:
			cfg = sim.RLE(sim.RLESVW)
		default:
			cfg = sim.RLE(sim.RLERaw)
		}
	default:
		return cfg, fmt.Errorf("svwsim: unknown optimization %d", o.Opt)
	}
	if o.SSNBits > 0 {
		cfg.SVW.SSNBits = o.SSNBits
	} else if o.SSNBits < 0 {
		cfg.SVW.SSNBits = 0 // infinite
	}
	if o.SSBFEntries > 0 {
		cfg.SVW.SSBF.Entries = o.SSBFEntries
	}
	if o.SSBFGranuleBytes > 0 {
		cfg.SVW.SSBF.GranuleBytes = o.SSBFGranuleBytes
	}
	return cfg, nil
}

// Run simulates one benchmark under the given options.
func Run(bench string, o Options) (Result, error) {
	if _, ok := workload.Get(bench); !ok {
		return Result{}, fmt.Errorf("svwsim: unknown benchmark %q (see Benchmarks())", bench)
	}
	cfg, err := buildConfig(o)
	if err != nil {
		return Result{}, err
	}
	r, err := sim.Run(cfg, bench, o.MaxInsts)
	if err != nil {
		return Result{}, err
	}
	s := r.Stats
	return Result{
		Bench:      r.Bench,
		Config:     r.Config,
		IPC:        s.IPC(),
		Cycles:     s.Cycles,
		Committed:  s.Committed,
		Loads:      s.CommittedLoads,
		Stores:     s.CommittedStores,
		MarkedRate: s.MarkedRate(),
		RexRate:    s.RexRate(),
		FilterRate: s.FilterEffectiveness(),
		ElimRate:   s.ElimRate(),
		RexFails:   s.RexFailures,
		WrapDrains: s.WrapDrains,
		Raw:        s,
	}, nil
}

// Speedup returns the percent IPC improvement of b over a.
func Speedup(a, b Result) float64 {
	if a.IPC == 0 {
		return 0
	}
	return (b.IPC/a.IPC - 1) * 100
}
