module svwsim

go 1.24
