// Command benchgate is the measured-performance harness behind
// BENCH_pipeline.json: it runs the repository's headline benchmarks through
// `go test -bench`, parses their output, and either captures the numbers
// into the JSON trajectory file (-capture, the `ci.sh benchjson` mode) or
// gates the working tree against the committed pre-rewrite baseline
// (-compare): BenchmarkEngine/j=1 must run at least min_speedup times
// faster — in wall clock for identical simulated work, i.e. instructions
// per second — than the baseline recorded before the zero-allocation
// overhaul.
//
// Usage:
//
//	go run ./cmd/benchgate -capture           # refresh the "current" block
//	go run ./cmd/benchgate -compare           # CI regression gate
//	go run ./cmd/benchgate -compare -benchtime 1x
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"strconv"
	"strings"
)

// benchTargets names the benchmarks the gate tracks and where they live.
var benchTargets = []struct {
	pattern string // -bench regexp
	pkg     string
	name    string // canonical name in the JSON file
}{
	{"^BenchmarkEngine$/^j=1$", "./internal/sim/engine", "BenchmarkEngine/j=1"},
	{"^BenchmarkEngineSampled$", "./internal/sim/engine", "BenchmarkEngineSampled"},
	{"^BenchmarkFastForward$", "./internal/sim/engine", "BenchmarkFastForward"},
	{"^BenchmarkPipelineThroughput$", ".", "BenchmarkPipelineThroughput"},
}

// gatedBench is the benchmark the -compare gate enforces; the others are
// informational.
const gatedBench = "BenchmarkEngine/j=1"

type benchEntry struct {
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op"`
	AllocsPerOp float64            `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

type benchSection struct {
	CPU        string                `json:"cpu,omitempty"`
	Benchmarks map[string]benchEntry `json:"benchmarks"`
}

type benchFile struct {
	Schema     int           `json:"schema"`
	Note       string        `json:"note"`
	MinSpeedup float64       `json:"min_speedup"`
	Baseline   benchSection  `json:"baseline"`
	Current    *benchSection `json:"current"`
}

func main() {
	var (
		file      = flag.String("file", "BENCH_pipeline.json", "trajectory file")
		capture   = flag.Bool("capture", false, "run benchmarks and record them as 'current'")
		compare   = flag.Bool("compare", false, "run benchmarks and gate against 'baseline'")
		benchtime = flag.String("benchtime", "2x", "go test -benchtime per benchmark")
	)
	flag.Parse()
	if *capture == *compare {
		fmt.Fprintln(os.Stderr, "benchgate: exactly one of -capture / -compare required")
		os.Exit(2)
	}
	bf, err := loadFile(*file)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(1)
	}
	section, err := runBenchmarks(*benchtime)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(1)
	}
	if *capture {
		bf.Current = section
		if err := saveFile(*file, bf); err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("benchgate: captured %d benchmarks into %s\n", len(section.Benchmarks), *file)
		report(bf.Baseline, *section)
		return
	}
	if !gate(bf, *section) {
		os.Exit(1)
	}
}

func loadFile(path string) (*benchFile, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var bf benchFile
	if err := json.Unmarshal(raw, &bf); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &bf, nil
}

func saveFile(path string, bf *benchFile) error {
	out, err := json.MarshalIndent(bf, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// runBenchmarks executes every target and parses its result line.
func runBenchmarks(benchtime string) (*benchSection, error) {
	sec := &benchSection{Benchmarks: make(map[string]benchEntry)}
	for _, t := range benchTargets {
		cmd := exec.Command("go", "test", "-run", "^$", "-bench", t.pattern,
			"-benchtime", benchtime, "-benchmem", t.pkg)
		out, err := cmd.CombinedOutput()
		if err != nil {
			return nil, fmt.Errorf("%s: %v\n%s", t.name, err, out)
		}
		entries, cpu := parseBenchOutput(string(out))
		e, ok := entries[t.name]
		if !ok {
			return nil, fmt.Errorf("%s: no benchmark line in output:\n%s", t.name, out)
		}
		sec.Benchmarks[t.name] = e
		if sec.CPU == "" {
			sec.CPU = cpu
		}
	}
	return sec, nil
}

var benchSuffix = regexp.MustCompile(`-\d+$`)

// parseBenchOutput extracts benchmark entries from `go test -bench` output.
// A result line reads: name iterations value unit [value unit]...; the
// GOMAXPROCS suffix on the name is stripped.
func parseBenchOutput(out string) (map[string]benchEntry, string) {
	entries := make(map[string]benchEntry)
	cpu := ""
	for _, line := range strings.Split(out, "\n") {
		if rest, ok := strings.CutPrefix(line, "cpu: "); ok {
			cpu = strings.TrimSpace(rest)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 4 {
			continue
		}
		name := benchSuffix.ReplaceAllString(f[0], "")
		e := benchEntry{Metrics: make(map[string]float64)}
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				continue
			}
			switch f[i+1] {
			case "ns/op":
				e.NsPerOp = v
			case "B/op":
				e.BytesPerOp = v
			case "allocs/op":
				e.AllocsPerOp = v
			default:
				e.Metrics[f[i+1]] = v
			}
		}
		entries[name] = e
	}
	return entries, cpu
}

func report(base benchSection, cur benchSection) {
	for name, c := range cur.Benchmarks {
		b, ok := base.Benchmarks[name]
		if !ok || b.NsPerOp == 0 || c.NsPerOp == 0 {
			continue
		}
		fmt.Printf("  %-32s %12.0f ns/op  (baseline %12.0f, speedup %.2fx, allocs %.0f -> %.0f)\n",
			name, c.NsPerOp, b.NsPerOp, b.NsPerOp/c.NsPerOp, b.AllocsPerOp, c.AllocsPerOp)
	}
}

// gate enforces the regression bound against the committed baseline. The
// baseline's ns/op is only meaningful on hardware comparable to the machine
// that recorded it, so a CPU-model mismatch demotes a failing ratio to a
// loud warning instead of breaking CI on slower hardware (and is flagged on
// passing runs too, since a faster CPU can mask a real regression).
func gate(bf *benchFile, cur benchSection) bool {
	min := bf.MinSpeedup
	if min == 0 {
		min = 1.5
	}
	base, ok := bf.Baseline.Benchmarks[gatedBench]
	if !ok || base.NsPerOp == 0 {
		fmt.Fprintf(os.Stderr, "benchgate: baseline has no %s entry\n", gatedBench)
		return false
	}
	c, ok := cur.Benchmarks[gatedBench]
	if !ok || c.NsPerOp == 0 {
		fmt.Fprintf(os.Stderr, "benchgate: current run produced no %s result\n", gatedBench)
		return false
	}
	report(bf.Baseline, cur)
	cpuMatch := bf.Baseline.CPU == "" || cur.CPU == bf.Baseline.CPU
	if !cpuMatch {
		fmt.Fprintf(os.Stderr,
			"benchgate: WARNING cpu %q differs from baseline cpu %q; wall-clock ratios are not comparable\n",
			cur.CPU, bf.Baseline.CPU)
	}
	speedup := base.NsPerOp / c.NsPerOp
	if speedup < min {
		if !cpuMatch {
			fmt.Fprintf(os.Stderr,
				"benchgate: SKIP %s speedup %.2fx is below the %.2fx bound, but the hardware differs from the baseline's; re-baseline with ./ci.sh benchjson on this machine to re-arm the gate\n",
				gatedBench, speedup, min)
			return true
		}
		fmt.Fprintf(os.Stderr,
			"benchgate: FAIL %s speedup %.2fx vs pre-rewrite baseline, need >= %.2fx\n",
			gatedBench, speedup, min)
		return false
	}
	fmt.Printf("benchgate: PASS %s speedup %.2fx vs pre-rewrite baseline (need >= %.2fx)\n",
		gatedBench, speedup, min)
	return true
}
