package main

import "testing"

const sampleOutput = `goos: linux
goarch: amd64
pkg: svwsim/internal/sim/engine
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkEngine/j=1-8         	       2	 942885809 ns/op	        -0.1615 fig5-svw-spd-%	43105826 B/op	  539228 allocs/op
BenchmarkPipelineThroughput 	       5	  56387436 ns/op	    886729 sim-insts/s	 2726428 B/op	   33786 allocs/op
PASS
ok  	svwsim/internal/sim/engine	5.0s
`

func TestParseBenchOutput(t *testing.T) {
	entries, cpu := parseBenchOutput(sampleOutput)
	if cpu != "Intel(R) Xeon(R) Processor @ 2.70GHz" {
		t.Errorf("cpu = %q", cpu)
	}
	e, ok := entries["BenchmarkEngine/j=1"]
	if !ok {
		t.Fatalf("GOMAXPROCS suffix not stripped: %v", entries)
	}
	if e.NsPerOp != 942885809 || e.AllocsPerOp != 539228 || e.BytesPerOp != 43105826 {
		t.Errorf("engine entry = %+v", e)
	}
	p := entries["BenchmarkPipelineThroughput"]
	if p.Metrics["sim-insts/s"] != 886729 {
		t.Errorf("custom metric lost: %+v", p)
	}
}

func TestGateEnforcesMinSpeedup(t *testing.T) {
	bf := &benchFile{
		MinSpeedup: 1.5,
		Baseline: benchSection{Benchmarks: map[string]benchEntry{
			gatedBench: {NsPerOp: 3_000_000},
		}},
	}
	fast := benchSection{Benchmarks: map[string]benchEntry{gatedBench: {NsPerOp: 1_000_000}}}
	if !gate(bf, fast) {
		t.Error("3x speedup rejected at a 1.5x bound")
	}
	slow := benchSection{Benchmarks: map[string]benchEntry{gatedBench: {NsPerOp: 2_500_000}}}
	if gate(bf, slow) {
		t.Error("1.2x speedup accepted at a 1.5x bound")
	}
	missing := benchSection{Benchmarks: map[string]benchEntry{}}
	if gate(bf, missing) {
		t.Error("missing current result accepted")
	}
}

// TestGateSkipsOnForeignHardware: a below-bound ratio measured on a CPU
// other than the baseline's must warn and pass (wall-clock ratios across
// machines are meaningless), while the same ratio on matching hardware
// fails.
func TestGateSkipsOnForeignHardware(t *testing.T) {
	bf := &benchFile{
		MinSpeedup: 1.5,
		Baseline: benchSection{
			CPU:        "Intel(R) Xeon(R) Processor @ 2.70GHz",
			Benchmarks: map[string]benchEntry{gatedBench: {NsPerOp: 3_000_000}},
		},
	}
	slow := benchSection{
		CPU:        "Apple M2",
		Benchmarks: map[string]benchEntry{gatedBench: {NsPerOp: 2_500_000}},
	}
	if !gate(bf, slow) {
		t.Error("below-bound ratio on foreign hardware must demote to a warning")
	}
	slow.CPU = bf.Baseline.CPU
	if gate(bf, slow) {
		t.Error("below-bound ratio on matching hardware must fail")
	}
}
