// Command svwload drives a running simulation service — a single svwd
// daemon or an svwctl coordinator fronting several, interchangeably: the
// repository's service-level benchmark. It fires N concurrent clients at
// /v1/sweep with a repeated config × bench matrix and reports throughput,
// latency percentiles, admission rejections, and the service's cache hit
// rate over the run (from /v1/stats deltas) — the workload the ISCA
// evaluation matrix generates when it is served remotely instead of run
// locally. Pointed at a coordinator (-url to svwctl), the /v1/stats
// cluster section is also reported: backend health, retries and hedges
// over the run.
//
// Usage:
//
//	svwload -url http://127.0.0.1:7411 -c 8 -n 20 \
//	        -configs ssq,ssq+svw -benches gcc,twolf -insts 30000
//
// With -smoke it instead performs one healthz probe, one /v1/run (first
// config × first bench) and one /v1/sweep (the full matrix), printing the
// two response bodies verbatim to stdout; ci.sh byte-compares that output
// against the equivalent `svwsim -json` invocations. With -stats it
// prints the raw /v1/stats body, which the warm-restart smoke stage greps
// to prove a restarted daemon served everything from its disk tier.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"svwsim/internal/api"
	"svwsim/internal/trace"
)

func main() {
	url := flag.String("url", "http://127.0.0.1:7411", "svwd base URL")
	clients := flag.Int("c", 8, "concurrent clients")
	iters := flag.Int("n", 20, "sweep requests per client")
	configs := flag.String("configs", "ssq,ssq+svw", "sweep configs, comma-separated")
	benches := flag.String("benches", "gcc,twolf", "sweep benches, comma-separated")
	insts := flag.Uint64("insts", 30_000, "committed instructions per job")
	smoke := flag.Bool("smoke", false, "one /v1/run + one /v1/sweep, bodies to stdout")
	stats := flag.Bool("stats", false, "print the raw /v1/stats body and exit")
	metrics := flag.Bool("metrics", false, "print the raw /metrics exposition and exit")
	deadline := flag.Duration("deadline", 0,
		"per-request deadline sent as the X-Svw-Deadline-Ms header (0 = none); "+
			"504s are counted in the report, not fatal")
	traceTop := flag.Int("trace-top", 0,
		"after the run, fetch GET /debug/traces and print the N slowest "+
			"traces (0 = off); alone (no -smoke/-stats/-metrics/load), just "+
			"fetch and print")
	flag.Parse()

	l := &loader{
		base:     strings.TrimRight(*url, "/"),
		client:   &http.Client{Timeout: 5 * time.Minute},
		configs:  strings.Split(*configs, ","),
		benches:  strings.Split(*benches, ","),
		insts:    *insts,
		deadline: *deadline,
	}
	// -trace-top alone reports on whatever the service's ring already
	// holds; combined with a driving mode (or any load-shaping flag) it
	// reports after that run.
	loadish := false
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "c", "n", "configs", "benches", "insts", "deadline":
			loadish = true
		}
	})

	var err error
	switch {
	case *metrics:
		err = l.printMetrics()
	case *stats:
		err = l.printStats()
	case *smoke:
		err = l.runSmoke()
	case *traceTop > 0 && !loadish:
	default:
		err = l.runLoad(*clients, *iters)
	}
	if err == nil && *traceTop > 0 {
		err = l.printTraces(*traceTop)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "svwload: %v\n", err)
		os.Exit(1)
	}
}

type loader struct {
	base     string
	client   *http.Client
	configs  []string
	benches  []string
	insts    uint64
	deadline time.Duration
}

// post sends a JSON body and returns the response body, reporting non-2xx
// statuses as errors (except 429 and 504, which the caller handles). A
// configured -deadline rides along as the X-Svw-Deadline-Ms header, and
// every request carries a fresh client-chosen trace ID so a slow request
// in the report can be looked up on /debug/traces by ID.
func (l *loader) post(path string, req any) (status int, body []byte, err error) {
	b, err := json.Marshal(req)
	if err != nil {
		return 0, nil, err
	}
	hreq, err := http.NewRequest(http.MethodPost, l.base+path, bytes.NewReader(b))
	if err != nil {
		return 0, nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set(api.TraceHeader, trace.NewID())
	if l.deadline > 0 {
		ms := l.deadline.Milliseconds()
		if ms < 1 {
			ms = 1 // the header's floor: sub-millisecond budgets round up
		}
		hreq.Header.Set(api.DeadlineHeader, strconv.FormatInt(ms, 10))
	}
	resp, err := l.client.Do(hreq)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	body, err = io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, nil, err
	}
	return resp.StatusCode, body, nil
}

func (l *loader) get(path string, v any) error {
	resp, err := l.client.Get(l.base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: HTTP %d", path, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

type sweepReq struct {
	Configs []string `json:"configs"`
	Benches []string `json:"benches"`
	Insts   uint64   `json:"insts"`
}

type runReq struct {
	Config string `json:"config"`
	Bench  string `json:"bench"`
	Insts  uint64 `json:"insts"`
}

// --- smoke ---------------------------------------------------------------

// runSmoke performs the CI handshake: healthz, one run, one sweep; the two
// POST bodies go to stdout verbatim for byte comparison with `svwsim -json`.
func (l *loader) runSmoke() error {
	var health struct {
		Status string `json:"status"`
	}
	if err := l.get("/v1/healthz", &health); err != nil {
		return fmt.Errorf("healthz: %w", err)
	}
	if health.Status != "ok" {
		return fmt.Errorf("healthz: status %q", health.Status)
	}
	status, body, err := l.post("/v1/run",
		runReq{Config: l.configs[0], Bench: l.benches[0], Insts: l.insts})
	if err != nil {
		return fmt.Errorf("run: %w", err)
	}
	if status != http.StatusOK {
		return fmt.Errorf("run: HTTP %d: %s", status, body)
	}
	os.Stdout.Write(body)

	status, body, err = l.post("/v1/sweep",
		sweepReq{Configs: l.configs, Benches: l.benches, Insts: l.insts})
	if err != nil {
		return fmt.Errorf("sweep: %w", err)
	}
	if status != http.StatusOK {
		return fmt.Errorf("sweep: HTTP %d: %s", status, body)
	}
	os.Stdout.Write(body)
	return nil
}

// --- stats ---------------------------------------------------------------

// printStats dumps the service's /v1/stats body verbatim (scripts grep
// it; humans read it).
func (l *loader) printStats() error {
	resp, err := l.client.Get(l.base + "/v1/stats")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /v1/stats: HTTP %d: %s", resp.StatusCode, body)
	}
	os.Stdout.Write(body)
	return nil
}

// printMetrics dumps the service's Prometheus exposition verbatim (what a
// scraper would ingest; ci.sh greps it for the expected series).
func (l *loader) printMetrics() error {
	resp, err := l.client.Get(l.base + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /metrics: HTTP %d: %s", resp.StatusCode, body)
	}
	os.Stdout.Write(body)
	return nil
}

// --- traces --------------------------------------------------------------

// printTraces fetches GET /debug/traces and prints the n slowest traces,
// one header line per trace (grep-friendly: "trace id=... dur=...")
// followed by its spans indented as a tree timeline.
func (l *loader) printTraces(n int) error {
	var resp api.TracesResponse
	if err := l.get("/debug/traces", &resp); err != nil {
		return fmt.Errorf("traces: %w", err)
	}
	traces := resp.Traces
	sort.SliceStable(traces, func(i, j int) bool { return traces[i].DurUS > traces[j].DurUS })
	if len(traces) > n {
		traces = traces[:n]
	}
	fmt.Printf("svwload: %d slowest of %d buffered traces\n", len(traces), len(resp.Traces))
	for _, t := range traces {
		fmt.Printf("trace id=%s endpoint=%s dur=%s spans=%d\n",
			t.TraceID, t.Endpoint, time.Duration(t.DurUS)*time.Microsecond, len(t.Spans))
		printSpanTree(t.Spans, -1, 1)
	}
	return nil
}

// printSpanTree prints parent's children at the given indent depth,
// recursing in recorded order (spans carry parent indices, so the flat
// slice is re-nested here for display).
func printSpanTree(spans []api.SpanJSON, parent, depth int) {
	for i, sp := range spans {
		if sp.Parent != parent {
			continue
		}
		var attrs strings.Builder
		for _, k := range sortedAttrKeys(sp.Attrs) {
			fmt.Fprintf(&attrs, " %s=%s", k, sp.Attrs[k])
		}
		fmt.Printf("%s%s +%s %s%s\n", strings.Repeat("  ", depth), sp.Name,
			time.Duration(sp.StartUS)*time.Microsecond,
			time.Duration(sp.DurUS)*time.Microsecond, attrs.String())
		printSpanTree(spans, i, depth+1)
	}
}

func sortedAttrKeys(attrs map[string]string) []string {
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// --- load ----------------------------------------------------------------

// percentile returns the nearest-rank percentile of an ascending-sorted
// sample: the smallest value with at least p·n of the sample at or below
// it (rank ⌈p·n⌉, 1-based). Truncating toward zero instead — the old
// int(p·(n-1)) — systematically picked too low a rank: the p99 of 50
// samples read the 49th value, reporting the second-worst latency as the
// tail.
func percentile(sorted []time.Duration, p float64) time.Duration {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	rank := int(math.Ceil(p * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return sorted[rank-1]
}

// Stats snapshots decode into the shared wire types (internal/api): the
// same structs svwd and svwctl marshal, so the reporter reads exactly
// what the services wrote and cannot drift from them.

// runLoad fires clients × iters sweep requests and prints the service-level
// report.
func (l *loader) runLoad(clients, iters int) error {
	var before api.StatsResponse
	if err := l.get("/v1/stats", &before); err != nil {
		return fmt.Errorf("stats: %w", err)
	}

	req := sweepReq{Configs: l.configs, Benches: l.benches, Insts: l.insts}
	jobsPerSweep := len(l.configs) * len(l.benches)
	var (
		mu        sync.Mutex
		latencies []time.Duration
		rejected  int
		timedOut  int
		wg        sync.WaitGroup
		errOnce   sync.Once
		firstErr  error
	)
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				for {
					t0 := time.Now()
					status, body, err := l.post("/v1/sweep", req)
					if err != nil {
						errOnce.Do(func() { firstErr = err })
						return
					}
					if status == http.StatusTooManyRequests {
						mu.Lock()
						rejected++
						mu.Unlock()
						time.Sleep(5 * time.Millisecond)
						continue // retry; the iteration isn't counted yet
					}
					if status == http.StatusGatewayTimeout {
						// The request's own -deadline budget expired: an
						// expected outcome under load, counted, not fatal.
						mu.Lock()
						timedOut++
						mu.Unlock()
						break
					}
					if status != http.StatusOK {
						errOnce.Do(func() {
							firstErr = fmt.Errorf("sweep: HTTP %d: %s", status, body)
						})
						return
					}
					mu.Lock()
					latencies = append(latencies, time.Since(t0))
					mu.Unlock()
					break
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return firstErr
	}

	var after api.StatsResponse
	if err := l.get("/v1/stats", &after); err != nil {
		return fmt.Errorf("stats: %w", err)
	}

	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p float64) time.Duration { return percentile(latencies, p) }
	n := len(latencies)
	hits := after.Cache.Hits - before.Cache.Hits
	diskHits := after.Cache.DiskHits - before.Cache.DiskHits
	peerHits := after.Cache.PeerHits - before.Cache.PeerHits
	misses := after.Cache.Misses - before.Cache.Misses
	hitRate := 0.0
	if hits+diskHits+peerHits+misses > 0 {
		hitRate = float64(hits+diskHits+peerHits) / float64(hits+diskHits+peerHits+misses) * 100
	}

	fmt.Printf("svwload: %d clients x %d sweeps (%d jobs each), insts=%d\n",
		clients, iters, jobsPerSweep, l.insts)
	if l.deadline > 0 {
		fmt.Printf("  requests      %d ok, %d rejected (429), %d deadline exceeded (504) in %v\n",
			n, rejected, timedOut, elapsed.Round(time.Millisecond))
	} else {
		fmt.Printf("  requests      %d ok, %d rejected (429) in %v\n", n, rejected, elapsed.Round(time.Millisecond))
	}
	fmt.Printf("  throughput    %.1f sweeps/s, %.1f jobs/s\n",
		float64(n)/elapsed.Seconds(), float64(n*jobsPerSweep)/elapsed.Seconds())
	fmt.Printf("  latency       p50 %v  p90 %v  p99 %v  max %v\n",
		pct(0.50).Round(time.Microsecond), pct(0.90).Round(time.Microsecond),
		pct(0.99).Round(time.Microsecond), pct(1.0).Round(time.Microsecond))
	fmt.Printf("  server store  %d memory hits / %d disk hits / %d peer hits / %d misses (%.1f%% hit rate)\n",
		hits, diskHits, peerHits, misses, hitRate)
	fmt.Printf("  engine memo   +%d hits / +%d misses over the run\n",
		after.Engine.MemoHits-before.Engine.MemoHits,
		after.Engine.MemoMisses-before.Engine.MemoMisses)
	if cl := after.Cluster; cl != nil {
		var jobs, retries, hedges uint64
		if b := before.Cluster; b != nil {
			jobs, retries, hedges = cl.Jobs-b.Jobs, cl.Retries-b.Retries, cl.Hedges-b.Hedges
		} else {
			jobs, retries, hedges = cl.Jobs, cl.Retries, cl.Hedges
		}
		fmt.Printf("  cluster       %d/%d backends healthy, +%d jobs, +%d retries, +%d hedges\n",
			cl.BackendsHealthy, cl.BackendsTotal, jobs, retries, hedges)
		var backendDisk uint64
		for _, b := range cl.Backends {
			backendDisk += b.DiskHits
		}
		if backendDisk > 0 {
			fmt.Printf("  backend disk  %d jobs served from backend disk tiers\n", backendDisk)
		}
		if cl.Store != nil {
			fmt.Printf("  coord store   %d memory / %d disk hits served coordinator-side, %d entries on disk\n",
				cl.Store.Hits, cl.Store.DiskHits, cl.Store.DiskEntries)
		}
	}
	return nil
}
