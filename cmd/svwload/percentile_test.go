package main

import (
	"testing"
	"time"
)

// TestPercentileNearestRank pins the nearest-rank definition (rank ⌈p·n⌉)
// on distributions where the old truncating index was provably wrong.
func TestPercentileNearestRank(t *testing.T) {
	ms := func(v int) time.Duration { return time.Duration(v) * time.Millisecond }
	ramp := func(n int) []time.Duration {
		s := make([]time.Duration, n)
		for i := range s {
			s[i] = ms(i + 1) // 1ms, 2ms, ..., n ms
		}
		return s
	}

	cases := []struct {
		name   string
		sorted []time.Duration
		p      float64
		want   time.Duration
	}{
		{"empty", nil, 0.99, 0},
		{"single", ramp(1), 0.50, ms(1)},
		{"p0 clamps to the minimum", ramp(10), 0, ms(1)},
		// p50 of 4 samples: rank ⌈2⌉ = 2nd value. The old code read
		// int(0.5·3) = index 1 too — but only by accident of rounding.
		{"p50 of 4", ramp(4), 0.50, ms(2)},
		// p50 of 5 samples: rank 3, the true median.
		{"p50 of 5", ramp(5), 0.50, ms(3)},
		// p90 of 50: rank 45. The old index int(0.9·49) = 44 read the
		// 45th... the off-by-one cancels only sometimes; p99 below doesn't.
		{"p90 of 50", ramp(50), 0.90, ms(45)},
		// p99 of 50: rank ⌈49.5⌉ = 50 — the maximum. The old code read
		// int(0.99·49) = index 48, the 49th value: the second-worst
		// latency reported as the tail.
		{"p99 of 50", ramp(50), 0.99, ms(50)},
		{"p99 of 100", ramp(100), 0.99, ms(99)},
		{"p100 is the max", ramp(50), 1.0, ms(50)},
	}
	for _, c := range cases {
		if got := percentile(c.sorted, c.p); got != c.want {
			t.Errorf("%s: percentile(p=%v) = %v, want %v", c.name, c.p, got, c.want)
		}
	}
}
