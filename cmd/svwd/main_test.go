package main

import "testing"

func TestParseClientWeights(t *testing.T) {
	weights, err := parseClientWeights("bulk=1, interactive=4,batch=2")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{"bulk": 1, "interactive": 4, "batch": 2}
	if len(weights) != len(want) {
		t.Fatalf("got %v, want %v", weights, want)
	}
	for name, w := range want {
		if weights[name] != w {
			t.Errorf("%s: weight %d, want %d", name, weights[name], w)
		}
	}
	if w, err := parseClientWeights(""); err != nil || w != nil {
		t.Errorf("empty spec: got %v, %v; want nil, nil", w, err)
	}
	for _, bad := range []string{"bulk", "bulk=", "bulk=0", "bulk=-1", "=3", "bulk=x"} {
		if _, err := parseClientWeights(bad); err == nil {
			t.Errorf("spec %q: no error", bad)
		}
	}
}
