// Command svwd serves the experiment engine over JSON/HTTP: the daemon
// behind which svwload, dashboards and remote assessment tooling queue
// simulation work instead of shelling out to one-shot CLIs. See
// internal/server for the API surface and production semantics (shared
// engine, bounded LRU result cache, 429 admission control, SSE sweep
// streaming, per-request cancellation).
//
// Usage:
//
//	svwd -addr 127.0.0.1:7411 -j 4
//	svwd -addr 127.0.0.1:0            # pick a free port; printed on stdout
//
// The daemon prints "svwd: listening on HOST:PORT" to stdout once the
// socket is open (scripts parse this to find a randomly chosen port) and
// drains gracefully on SIGTERM/SIGINT: the health endpoint flips to 503,
// in-flight requests get up to -drain to finish, then connections are
// closed.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"svwsim/internal/debugserver"
	"svwsim/internal/pipeline"
	"svwsim/internal/server"
)

// parseClientWeights parses "name=weight,name=weight" into the fair-gate
// share map. An empty string means no weights (one global gate).
func parseClientWeights(s string) (map[string]int, error) {
	if s == "" {
		return nil, nil
	}
	weights := make(map[string]int)
	for _, pair := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("want name=weight, got %q", pair)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 1 {
			return nil, fmt.Errorf("weight for %q must be a positive integer, got %q", name, val)
		}
		weights[name] = w
	}
	return weights, nil
}

func main() {
	addr := flag.String("addr", "127.0.0.1:7411", "listen address (port 0 = pick a free port)")
	workers := flag.Int("j", 0, "engine workers (0 = GOMAXPROCS)")
	maxJobs := flag.Int("max-jobs", server.DefaultMaxConcurrentJobs,
		"max concurrently admitted engine jobs before 429 (-1 = unlimited)")
	cacheEntries := flag.Int("cache", server.DefaultCacheEntries, "result store memory-tier entries")
	storeDir := flag.String("store-dir", "",
		"persistent result store directory (empty = memory only); a restarted "+
			"daemon pointed at the same directory serves previous results from disk")
	storeMaxBytes := flag.Int64("store-max-bytes", 0,
		"persistent store size cap in bytes, LRU-GCed past it (0 = 1GiB default)")
	storeWriteBehind := flag.Int("store-write-behind", 256,
		"write-behind queue entries for persistent store writes: results are "+
			"buffered and flushed in batches by a background writer, drained on "+
			"shutdown (0 = synchronous write per result)")
	peers := flag.String("peers", "",
		"comma-separated fabric member URLs for the sharded persistent store "+
			"(each memo key's entry lives on its rendezvous owner; other members "+
			"fetch it over GET /v1/store/{key} before recomputing); empty = no "+
			"static membership")
	peerSelf := flag.String("peer-self", "",
		"this daemon's own URL within -peers (how it recognizes keys it owns)")
	peerLearn := flag.Bool("peer-learn", false,
		"adopt fabric membership from a fronting svwctl's forwarded requests "+
			"(X-Svw-Peers/X-Svw-Peer-Self headers); headers are trusted at face "+
			"value, enable only on trusted networks")
	peerTimeout := flag.Duration("peer-read-timeout", 0,
		"per-fetch budget for peer store reads (0 = 2s default)")
	maxBody := flag.Int64("max-body", server.DefaultMaxBodyBytes, "max request body bytes")
	maxSweep := flag.Int("max-sweep", server.DefaultMaxSweepJobs, "max jobs in one sweep matrix")
	timeout := flag.Duration("timeout", 0, "per-job wall-clock limit (0 = none)")
	memoCap := flag.Int("memo-cap", 65536, "engine memo table entries (0 = unbounded)")
	grace := flag.Duration("grace", time.Second,
		"delay between advertising 503 on healthz and closing the listener")
	drain := flag.Duration("drain", 30*time.Second, "graceful shutdown drain window")
	clientWeights := flag.String("client-weights", "",
		"weighted fair admission shares as name=weight pairs, comma-separated "+
			"(e.g. bulk=1,interactive=4); clients name themselves via the "+
			"X-Svw-Client header (empty = one global gate)")
	defaultWeight := flag.Int("client-weight-default", 1,
		"share weight for clients not named in -client-weights")
	slowMS := flag.Int64("slow-ms", -1,
		"log traced requests slower than this many milliseconds as one JSON "+
			"line with the full span tree (0 = log every traced request, "+
			"negative = off)")
	traceBuf := flag.Int("trace-buf", 0,
		"completed request traces kept for GET /debug/traces (0 = 256)")
	debugAddr := flag.String("debug-addr", "",
		"serve net/http/pprof on this separate address (e.g. 127.0.0.1:6060); "+
			"empty = off; never exposed on the serving port")
	sampleWarmup := flag.Uint64("sample-warmup", 0,
		"default sampled simulation: warm-up commits per detailed window, applied "+
			"to requests that carry no sample spec of their own")
	sampleDetail := flag.Uint64("sample-detail", 0,
		"default sampled simulation: measured commits per window (0 = exact)")
	samplePeriod := flag.Uint64("sample-period", 0,
		"default sampled simulation: committed instructions each window represents")
	flag.Parse()

	weights, err := parseClientWeights(*clientWeights)
	if err != nil {
		fmt.Fprintf(os.Stderr, "svwd: -client-weights: %v\n", err)
		os.Exit(2)
	}

	s, err := server.New(server.Options{
		Workers:             *workers,
		MaxConcurrentJobs:   *maxJobs,
		CacheEntries:        *cacheEntries,
		StoreDir:            *storeDir,
		StoreMaxBytes:       *storeMaxBytes,
		StoreWriteBehind:    *storeWriteBehind,
		Peers:               splitPeers(*peers),
		PeerSelf:            *peerSelf,
		PeerLearn:           *peerLearn,
		PeerReadTimeout:     *peerTimeout,
		MaxBodyBytes:        *maxBody,
		MaxSweepJobs:        *maxSweep,
		JobTimeout:          *timeout,
		EngineMemoCap:       *memoCap,
		ClientWeights:       weights,
		DefaultClientWeight: *defaultWeight,
		TraceBufferSize:     *traceBuf,
		SlowLogEnabled:      *slowMS >= 0,
		SlowLogThreshold:    time.Duration(*slowMS) * time.Millisecond,
		DefaultSample: pipeline.SampleSpec{
			Warmup: *sampleWarmup, Detail: *sampleDetail, Period: *samplePeriod,
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "svwd: %v\n", err)
		os.Exit(1)
	}

	if *debugAddr != "" {
		dln, err := debugserver.Serve(*debugAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "svwd: -debug-addr: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("svwd: pprof on %s\n", dln.Addr())
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "svwd: %v\n", err)
		os.Exit(1)
	}
	// Stdout, unbuffered: scripts (ci.sh's smoke stage) parse the bound
	// address to reach a daemon started on port 0.
	fmt.Printf("svwd: listening on %s\n", ln.Addr())

	srv := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		fmt.Fprintf(os.Stderr, "svwd: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	// Graceful drain: advertise 503 on healthz and keep the listener open
	// for the grace period so load balancers actually observe it, then stop
	// accepting and give in-flight requests the drain window.
	fmt.Fprintln(os.Stderr, "svwd: draining")
	s.SetDraining(true)
	time.Sleep(*grace)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		if !errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintf(os.Stderr, "svwd: shutdown: %v\n", err)
		}
		srv.Close()
	}
	// Drain the store's write-behind queue after the HTTP server stops:
	// every result completed before shutdown lands on disk, so a restart
	// over the same -store-dir is as warm as the daemon was.
	if err := s.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "svwd: closing store: %v\n", err)
	}
	fmt.Fprintln(os.Stderr, "svwd: stopped")
}

// splitPeers parses the -peers list ("" = none).
func splitPeers(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	return strings.Split(s, ",")
}
