// Command svwstore administers a result store disk tier (internal/store)
// offline: the checksummed *.svw entry files svwd, svwctl and svwsim keep
// under their -store-dir. Every command starts from a full directory
// re-scan, so it sees everything present — including entries written by
// other daemons sharing the directory, which a live tier's own GC never
// indexes and therefore never collects.
//
// Usage:
//
//	svwstore ls DIR                       list entries, oldest access first
//	svwstore verify DIR                   full-checksum walk; non-zero exit
//	                                      when corrupt or stale-version
//	                                      entries are found
//	svwstore verify -delete DIR           ...and delete what fails
//	svwstore gc [-max-bytes N] DIR        drop temp leftovers, then enforce
//	                                      the size cap over the whole
//	                                      directory (default cap 1 GiB)
//	svwstore prune -older-than DUR DIR    delete entries not accessed for
//	                                      DUR (e.g. 720h)
//
// Run it against a live directory freely: writers land entries by atomic
// rename, and a daemon whose indexed entry disappears degrades to a miss
// and a recompute, never an error.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"svwsim/internal/store"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  svwstore ls DIR
  svwstore verify [-delete] DIR
  svwstore gc [-max-bytes N] DIR
  svwstore prune -older-than DUR DIR
`)
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch cmd, args := os.Args[1], os.Args[2:]; cmd {
	case "ls":
		err = cmdLS(args)
	case "verify":
		err = cmdVerify(args)
	case "gc":
		err = cmdGC(args)
	case "prune":
		err = cmdPrune(args)
	case "help", "-h", "-help", "--help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "svwstore: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "svwstore: %v\n", err)
		os.Exit(1)
	}
}

// dirArg extracts the one positional DIR argument after flag parsing.
func dirArg(fs *flag.FlagSet) (string, error) {
	if fs.NArg() != 1 {
		usage()
		return "", fmt.Errorf("%s: want exactly one directory argument", fs.Name())
	}
	return fs.Arg(0), nil
}

func cmdLS(args []string) error {
	fs := flag.NewFlagSet("ls", flag.ExitOnError)
	fs.Parse(args)
	dir, err := dirArg(fs)
	if err != nil {
		return err
	}
	entries, err := store.ScanDir(dir)
	if err != nil {
		return err
	}
	var total int64
	for _, e := range entries {
		total += e.Size
		key := e.Key
		if e.Err != nil {
			key = fmt.Sprintf("<%v>", e.Err)
		}
		fmt.Printf("%s  %10d  %s\n", e.ModTime.Format(time.RFC3339), e.Size, key)
	}
	fmt.Printf("%d entries, %d bytes\n", len(entries), total)
	return nil
}

func cmdVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	del := fs.Bool("delete", false, "delete entries that fail verification")
	fs.Parse(args)
	dir, err := dirArg(fs)
	if err != nil {
		return err
	}
	entries, err := store.ScanDir(dir)
	if err != nil {
		return err
	}
	var corrupt, stale int
	for _, e := range entries {
		if e.Err == nil {
			continue
		}
		kind := "corrupt"
		if errors.Is(e.Err, store.ErrStaleVersion) {
			kind = "stale"
			stale++
		} else {
			corrupt++
		}
		fmt.Printf("%s: %s: %v\n", kind, e.Name, e.Err)
		if *del {
			if err := os.Remove(filepath.Join(dir, e.Name)); err != nil {
				return err
			}
		}
	}
	fmt.Printf("%d entries: %d ok, %d corrupt, %d stale-version\n",
		len(entries), len(entries)-corrupt-stale, corrupt, stale)
	if (corrupt > 0 || stale > 0) && !*del {
		return errors.New("verification failed (rerun with -delete to drop bad entries)")
	}
	return nil
}

func cmdGC(args []string) error {
	fs := flag.NewFlagSet("gc", flag.ExitOnError)
	maxBytes := fs.Int64("max-bytes", 0, "size cap to enforce (0 = the 1 GiB default)")
	fs.Parse(args)
	dir, err := dirArg(fs)
	if err != nil {
		return err
	}
	removed, remaining, err := store.GCDir(dir, *maxBytes)
	for _, e := range removed {
		fmt.Printf("removed %s (%d bytes, last access %s)\n",
			e.Name, e.Size, e.ModTime.Format(time.RFC3339))
	}
	fmt.Printf("removed %d entries, %d bytes remain\n", len(removed), remaining)
	return err
}

func cmdPrune(args []string) error {
	fs := flag.NewFlagSet("prune", flag.ExitOnError)
	olderThan := fs.Duration("older-than", 0, "delete entries not accessed for this long (required)")
	fs.Parse(args)
	dir, err := dirArg(fs)
	if err != nil {
		return err
	}
	if *olderThan <= 0 {
		return errors.New("prune: -older-than must be a positive duration")
	}
	removed, err := store.PruneDir(dir, time.Now().Add(-*olderThan))
	for _, e := range removed {
		fmt.Printf("removed %s (%d bytes, last access %s)\n",
			e.Name, e.Size, e.ModTime.Format(time.RFC3339))
	}
	fmt.Printf("removed %d entries\n", len(removed))
	return err
}
