// Command devprobe is a development aid: it isolates individual config
// deltas between a study baseline and its optimized machine to attribute
// performance differences during tuning.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"svwsim/internal/pipeline"
	"svwsim/internal/sim"
)

func main() {
	bench := flag.String("bench", "perl.d", "benchmark")
	insts := flag.Uint64("insts", 60_000, "instructions")
	flag.Parse()
	probe(os.Stdout, *bench, *insts)
}

// probe runs the RLE study's baseline plus three single-knob deltas and
// prints each machine's bottleneck breakdown.
func probe(w io.Writer, bench string, insts uint64) {
	run := func(label string, cfg pipeline.Config) {
		res, err := sim.Run(cfg, bench, insts)
		if err != nil {
			fmt.Fprintln(w, label, "ERR", err)
			return
		}
		s := &res.Stats
		fmt.Fprintf(w, "%-28s IPC=%.3f viol=%d rexflush=%d marked=%.1f%% rex=%.1f%% fwd=%d wD=%d wC=%d wSS=%d\n",
			label, s.IPC(), s.OrderingViolations, s.RexFlushes,
			100*s.MarkedRate(), 100*s.RexRate(), s.SQForwards,
			s.LoadWaitData, s.LoadWaitCommit, s.LoadWaitSS)
		fmt.Fprintf(w, "%-28s stalls: empty=%d incomplete=%d commitlat=%d rexwait=%d port=%d cycles=%d\n",
			"", s.StallHeadEmpty, s.StallIncomplete, s.StallCommitLat,
			s.StallRexWait, s.StallStorePort, s.Cycles)
		fmt.Fprintf(w, "%-28s head: load=%d store=%d alu=%d br=%d unissued=%d\n",
			"", s.StallHeadLoad, s.StallHeadStore, s.StallHeadALU,
			s.StallHeadBranch, s.StallHeadUnissued)
	}

	run("base-rle", sim.BaselineRLE())
	run("rle+perfect", sim.RLE(sim.RLEPerfect))
	c := sim.BaselineRLE()
	c.LoadIssue = 2
	run("base-rle 2ld", c)
	c = sim.BaselineRLE()
	c.LoadLat = 4
	run("base-rle lat4", c)
}
