package main

import (
	"strings"
	"testing"
)

// TestProbeSmoke drives the probe end to end at a reduced budget: all four
// machine variants must run, none may report an error, and the bottleneck
// breakdown must carry real numbers (a nonzero cycle count per variant).
func TestProbeSmoke(t *testing.T) {
	var b strings.Builder
	probe(&b, "gcc", 5_000)
	out := b.String()
	if strings.Contains(out, "ERR") {
		t.Fatalf("probe reported an error:\n%s", out)
	}
	for _, label := range []string{"base-rle ", "rle+perfect", "base-rle 2ld", "base-rle lat4"} {
		if !strings.Contains(out, label) {
			t.Errorf("output missing variant %q", label)
		}
	}
	if strings.Count(out, "IPC=") != 4 {
		t.Errorf("expected 4 IPC lines, got %d:\n%s", strings.Count(out, "IPC="), out)
	}
	if strings.Contains(out, "cycles=0") {
		t.Errorf("a variant reported zero cycles:\n%s", out)
	}
}
