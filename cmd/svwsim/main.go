// Command svwsim runs benchmark kernels on machine configurations and
// prints each run's statistics. -bench and -config take comma-separated
// lists; the cross product runs on the experiment engine with -j workers,
// identical (config, bench) pairs deduplicated, and results printed in
// job order regardless of completion order.
//
// Usage:
//
//	svwsim -bench vortex -config ssq+svw -insts 300000
//	svwsim -bench gcc,twolf -config ssq,ssq+svw -j 4 -json
//
// Configuration names come from the shared registry (sim.ConfigNames);
// -list prints both the benchmarks and the configurations.
//
// With -store-dir, runs go through the persistent result store shared
// with svwd and svwctl (internal/store): already-stored jobs are answered
// from disk without simulating, and fresh results are written back — so a
// CLI sweep pre-warms the store a daemon later serves from, and vice
// versa. Output, including -json, is byte-identical either way.
//
// The -sample-* flags switch runs to sampled simulation (short detailed
// windows separated by functional fast-forward; see pipeline.SampleSpec).
// Sampled results live under their own store keys, and with -store-dir the
// fast-forward warm states are checkpointed into the store for reuse.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"svwsim/internal/api"
	"svwsim/internal/pipeline"
	"svwsim/internal/sim"
	"svwsim/internal/sim/engine"
	"svwsim/internal/store"
	"svwsim/internal/workload"
)

func main() {
	bench := flag.String("bench", "gcc", "benchmark kernel(s), comma-separated (see -list)")
	config := flag.String("config", "base-nlq", "machine configuration(s), comma-separated")
	insts := flag.Uint64("insts", 300_000, "committed instructions to simulate")
	workers := flag.Int("j", 0, "parallel workers (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 0, "per-run wall-clock limit (0 = none)")
	jsonOut := flag.Bool("json", false, "machine-readable output")
	storeDir := flag.String("store-dir", "",
		"persistent result store directory shared with svwd/svwctl (empty = off): "+
			"stored jobs are served from disk, fresh ones written back")
	storeMaxBytes := flag.Int64("store-max-bytes", 0,
		"persistent store size cap in bytes, LRU-GCed past it (0 = 1GiB default)")
	sampleWarmup := flag.Uint64("sample-warmup", 0,
		"sampled simulation: detailed warm-up commits per window (counters reset after)")
	sampleDetail := flag.Uint64("sample-detail", 0,
		"sampled simulation: measured commits per window (0 = exact simulation)")
	samplePeriod := flag.Uint64("sample-period", 0,
		"sampled simulation: committed instructions each window represents; "+
			"the gap past warmup+detail is fast-forwarded functionally")
	stats := flag.Bool("stats", false,
		"print engine sampling counters (fast-forwards, checkpoint hits) to stderr")
	list := flag.Bool("list", false, "list benchmarks and configurations, then exit")
	flag.Parse()

	spec := pipeline.SampleSpec{Warmup: *sampleWarmup, Detail: *sampleDetail, Period: *samplePeriod}
	if err := spec.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "svwsim: %v\n", err)
		os.Exit(2)
	}

	if *list {
		fmt.Println("benchmarks:")
		for _, n := range workload.Names() {
			fmt.Println("  " + n)
		}
		fmt.Println("configs:")
		for _, n := range sim.ConfigNames() {
			fmt.Println("  " + n)
		}
		return
	}
	var jobs []engine.Job
	for _, cname := range strings.Split(*config, ",") {
		cfg, ok := sim.ConfigByName(cname)
		if !ok {
			fmt.Fprintf(os.Stderr, "svwsim: unknown config %q\n", cname)
			os.Exit(2)
		}
		for _, b := range strings.Split(*bench, ",") {
			if _, ok := workload.Get(b); !ok {
				fmt.Fprintf(os.Stderr, "svwsim: unknown benchmark %q (try -list)\n", b)
				os.Exit(2)
			}
			jobs = append(jobs, engine.Job{Study: "svwsim", Label: cfg.Name,
				Config: cfg, Bench: b, Insts: *insts, Sample: spec})
		}
	}

	var st *store.Store
	if *storeDir != "" {
		var err error
		st, err = store.Open(store.Options{Dir: *storeDir, MaxBytes: *storeMaxBytes})
		if err != nil {
			fmt.Fprintf(os.Stderr, "svwsim: %v\n", err)
			os.Exit(1)
		}
	}

	// Probe the store for every job; only the misses go to the engine. The
	// stored bytes are api.MarshalResult output — exactly what -json
	// prints — so served and simulated jobs are indistinguishable in the
	// output.
	bodies := make([][]byte, len(jobs))
	var sub []engine.Job
	var subIdx []int
	for i := range jobs {
		if st != nil {
			key := engine.SampledFingerprint(jobs[i].Config, jobs[i].Bench, jobs[i].Insts, jobs[i].Sample)
			if body, origin := st.Get(key); origin != store.OriginMiss {
				st.AccountGet(origin)
				bodies[i] = body
				continue
			}
		}
		sub = append(sub, jobs[i])
		subIdx = append(subIdx, i)
	}
	var sampleStats engine.SampleStats
	if len(sub) > 0 {
		eng := engine.New(*workers)
		eng.SetTimeout(*timeout)
		if st != nil {
			// The store doubles as the warm-state checkpoint tier: sampled
			// fast-forwards persist each skip point, so the next run (or a
			// daemon over the same directory) restores instead of emulating.
			eng.SetCheckpointStore(engine.StoreCheckpoints(st))
		}
		rs, err := eng.Run(sub, nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "svwsim: %v\n", err)
			os.Exit(1)
		}
		for s, r := range rs {
			body, err := api.MarshalResult(r.Result)
			if err != nil {
				fmt.Fprintf(os.Stderr, "svwsim: %v\n", err)
				os.Exit(1)
			}
			bodies[subIdx[s]] = body
			if st != nil {
				key := engine.SampledFingerprint(r.Job.Config, r.Job.Bench, r.Job.Insts, r.Job.Sample)
				st.Put(key, body)
			}
		}
		sampleStats = eng.Sample()
	}
	if *stats {
		fmt.Fprintf(os.Stderr,
			"svwsim: sample: fast-forwards=%d ff-insts=%d ckpt-hits=%d ckpt-misses=%d ckpt-puts=%d\n",
			sampleStats.FastForwards, sampleStats.FastForwardInsts,
			sampleStats.CheckpointHits, sampleStats.CheckpointMisses, sampleStats.CheckpointPuts)
	}

	if *jsonOut {
		for _, body := range bodies {
			os.Stdout.Write(body)
		}
		return
	}
	for i, body := range bodies {
		var res sim.Result
		if err := json.Unmarshal(body, &res); err != nil {
			fmt.Fprintf(os.Stderr, "svwsim: decoding result: %v\n", err)
			os.Exit(1)
		}
		if i > 0 {
			fmt.Println()
		}
		printResult(&res)
	}
}

func printResult(res *sim.Result) {
	s := &res.Stats
	fmt.Printf("bench            %s\n", res.Bench)
	fmt.Printf("config           %s\n", res.Config)
	fmt.Printf("cycles           %d\n", s.Cycles)
	fmt.Printf("committed        %d\n", s.Committed)
	fmt.Printf("IPC              %.3f\n", s.IPC())
	fmt.Printf("loads            %d\n", s.CommittedLoads)
	fmt.Printf("stores           %d\n", s.CommittedStores)
	fmt.Printf("marked loads     %d (%.1f%%)\n", s.MarkedLoads, 100*s.MarkedRate())
	fmt.Printf("re-executed      %d (%.1f%%)\n", s.RexLoads, 100*s.RexRate())
	fmt.Printf("SVW filtered     %d\n", s.RexFiltered)
	fmt.Printf("rex failures     %d\n", s.RexFailures)
	fmt.Printf("eliminated       %d (%.1f%%) [reuse %d, bypass %d]\n",
		s.Eliminated, 100*s.ElimRate(), s.ElimReuse, s.ElimBypass)
	fmt.Printf("order violations %d\n", s.OrderingViolations)
	fmt.Printf("SQ/FSQ forwards  %d\n", s.SQForwards)
	fmt.Printf("best-effort fwd  %d\n", s.BestEffortFwd)
	fmt.Printf("mispredicts      %d (branch acc %.2f%%)\n", s.Mispredicts, 100*s.BranchAccuracy)
	fmt.Printf("wrap drains      %d\n", s.WrapDrains)
	fmt.Printf("I$/D$/L2 miss    %.2f%% / %.2f%% / %.2f%%\n",
		100*s.ICacheMissRate, 100*s.DCacheMissRate, 100*s.L2MissRate)
}
