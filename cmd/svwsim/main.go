// Command svwsim runs one benchmark kernel on one machine configuration and
// prints the run's statistics.
//
// Usage:
//
//	svwsim -bench vortex -config ssq+svw -insts 300000
//
// Configs: base-nlq, nlq, nlq+svw-upd, nlq+svw, nlq+perfect,
// base-ssq, ssq, ssq+svw-upd, ssq+svw, ssq+perfect,
// base-rle, rle, rle+svw, rle+svw-squ, rle+perfect.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"svwsim/internal/pipeline"
	"svwsim/internal/sim"
	"svwsim/internal/workload"
)

func configByName(name string) (pipeline.Config, bool) {
	switch strings.ToLower(name) {
	case "base-nlq", "base":
		return sim.BaselineNLQ(), true
	case "nlq":
		return sim.NLQ(sim.SVWOff), true
	case "nlq+svw-upd":
		return sim.NLQ(sim.SVWNoUpd), true
	case "nlq+svw":
		return sim.NLQ(sim.SVWUpd), true
	case "nlq+perfect":
		return sim.NLQ(sim.Perfect), true
	case "base-ssq":
		return sim.BaselineSSQ(), true
	case "ssq":
		return sim.SSQ(sim.SVWOff), true
	case "ssq+svw-upd":
		return sim.SSQ(sim.SVWNoUpd), true
	case "ssq+svw":
		return sim.SSQ(sim.SVWUpd), true
	case "ssq+perfect":
		return sim.SSQ(sim.Perfect), true
	case "base-rle":
		return sim.BaselineRLE(), true
	case "rle":
		return sim.RLE(sim.RLERaw), true
	case "rle+svw":
		return sim.RLE(sim.RLESVW), true
	case "rle+svw-squ":
		return sim.RLE(sim.RLESVWNoSQ), true
	case "rle+perfect":
		return sim.RLE(sim.RLEPerfect), true
	}
	return pipeline.Config{}, false
}

func main() {
	bench := flag.String("bench", "gcc", "benchmark kernel (see -list)")
	config := flag.String("config", "base-nlq", "machine configuration")
	insts := flag.Uint64("insts", 300_000, "committed instructions to simulate")
	list := flag.Bool("list", false, "list benchmarks and exit")
	flag.Parse()

	if *list {
		for _, n := range workload.Names() {
			fmt.Println(n)
		}
		return
	}
	cfg, ok := configByName(*config)
	if !ok {
		fmt.Fprintf(os.Stderr, "svwsim: unknown config %q\n", *config)
		os.Exit(2)
	}
	if _, ok := workload.Get(*bench); !ok {
		fmt.Fprintf(os.Stderr, "svwsim: unknown benchmark %q (try -list)\n", *bench)
		os.Exit(2)
	}

	res, err := sim.Run(cfg, *bench, *insts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "svwsim: %v\n", err)
		os.Exit(1)
	}
	s := &res.Stats
	fmt.Printf("bench            %s\n", res.Bench)
	fmt.Printf("config           %s\n", res.Config)
	fmt.Printf("cycles           %d\n", s.Cycles)
	fmt.Printf("committed        %d\n", s.Committed)
	fmt.Printf("IPC              %.3f\n", s.IPC())
	fmt.Printf("loads            %d\n", s.CommittedLoads)
	fmt.Printf("stores           %d\n", s.CommittedStores)
	fmt.Printf("marked loads     %d (%.1f%%)\n", s.MarkedLoads, 100*s.MarkedRate())
	fmt.Printf("re-executed      %d (%.1f%%)\n", s.RexLoads, 100*s.RexRate())
	fmt.Printf("SVW filtered     %d\n", s.RexFiltered)
	fmt.Printf("rex failures     %d\n", s.RexFailures)
	fmt.Printf("eliminated       %d (%.1f%%) [reuse %d, bypass %d]\n",
		s.Eliminated, 100*s.ElimRate(), s.ElimReuse, s.ElimBypass)
	fmt.Printf("order violations %d\n", s.OrderingViolations)
	fmt.Printf("SQ/FSQ forwards  %d\n", s.SQForwards)
	fmt.Printf("best-effort fwd  %d\n", s.BestEffortFwd)
	fmt.Printf("mispredicts      %d (branch acc %.2f%%)\n", s.Mispredicts, 100*s.BranchAccuracy)
	fmt.Printf("wrap drains      %d\n", s.WrapDrains)
	fmt.Printf("I$/D$/L2 miss    %.2f%% / %.2f%% / %.2f%%\n",
		100*s.ICacheMissRate, 100*s.DCacheMissRate, 100*s.L2MissRate)
}
