// Command svwsim runs benchmark kernels on machine configurations and
// prints each run's statistics. -bench and -config take comma-separated
// lists; the cross product runs on the experiment engine with -j workers,
// identical (config, bench) pairs deduplicated, and results printed in
// job order regardless of completion order.
//
// Usage:
//
//	svwsim -bench vortex -config ssq+svw -insts 300000
//	svwsim -bench gcc,twolf -config ssq,ssq+svw -j 4 -json
//
// Configuration names come from the shared registry (sim.ConfigNames);
// -list prints both the benchmarks and the configurations.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"svwsim/internal/sim"
	"svwsim/internal/sim/engine"
	"svwsim/internal/workload"
)

func main() {
	bench := flag.String("bench", "gcc", "benchmark kernel(s), comma-separated (see -list)")
	config := flag.String("config", "base-nlq", "machine configuration(s), comma-separated")
	insts := flag.Uint64("insts", 300_000, "committed instructions to simulate")
	workers := flag.Int("j", 0, "parallel workers (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 0, "per-run wall-clock limit (0 = none)")
	jsonOut := flag.Bool("json", false, "machine-readable output")
	list := flag.Bool("list", false, "list benchmarks and configurations, then exit")
	flag.Parse()

	if *list {
		fmt.Println("benchmarks:")
		for _, n := range workload.Names() {
			fmt.Println("  " + n)
		}
		fmt.Println("configs:")
		for _, n := range sim.ConfigNames() {
			fmt.Println("  " + n)
		}
		return
	}
	var jobs []engine.Job
	for _, cname := range strings.Split(*config, ",") {
		cfg, ok := sim.ConfigByName(cname)
		if !ok {
			fmt.Fprintf(os.Stderr, "svwsim: unknown config %q\n", cname)
			os.Exit(2)
		}
		for _, b := range strings.Split(*bench, ",") {
			if _, ok := workload.Get(b); !ok {
				fmt.Fprintf(os.Stderr, "svwsim: unknown benchmark %q (try -list)\n", b)
				os.Exit(2)
			}
			jobs = append(jobs, engine.Job{Study: "svwsim", Label: cfg.Name,
				Config: cfg, Bench: b, Insts: *insts})
		}
	}

	eng := engine.New(*workers)
	eng.SetTimeout(*timeout)
	rs, err := eng.Run(jobs, nil)
	if err != nil {
		fmt.Fprintf(os.Stderr, "svwsim: %v\n", err)
		os.Exit(1)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		for _, r := range rs {
			if err := enc.Encode(r.Result); err != nil {
				fmt.Fprintf(os.Stderr, "svwsim: %v\n", err)
				os.Exit(1)
			}
		}
		return
	}
	for i := range rs {
		if i > 0 {
			fmt.Println()
		}
		printResult(&rs[i].Result)
	}
}

func printResult(res *sim.Result) {
	s := &res.Stats
	fmt.Printf("bench            %s\n", res.Bench)
	fmt.Printf("config           %s\n", res.Config)
	fmt.Printf("cycles           %d\n", s.Cycles)
	fmt.Printf("committed        %d\n", s.Committed)
	fmt.Printf("IPC              %.3f\n", s.IPC())
	fmt.Printf("loads            %d\n", s.CommittedLoads)
	fmt.Printf("stores           %d\n", s.CommittedStores)
	fmt.Printf("marked loads     %d (%.1f%%)\n", s.MarkedLoads, 100*s.MarkedRate())
	fmt.Printf("re-executed      %d (%.1f%%)\n", s.RexLoads, 100*s.RexRate())
	fmt.Printf("SVW filtered     %d\n", s.RexFiltered)
	fmt.Printf("rex failures     %d\n", s.RexFailures)
	fmt.Printf("eliminated       %d (%.1f%%) [reuse %d, bypass %d]\n",
		s.Eliminated, 100*s.ElimRate(), s.ElimReuse, s.ElimBypass)
	fmt.Printf("order violations %d\n", s.OrderingViolations)
	fmt.Printf("SQ/FSQ forwards  %d\n", s.SQForwards)
	fmt.Printf("best-effort fwd  %d\n", s.BestEffortFwd)
	fmt.Printf("mispredicts      %d (branch acc %.2f%%)\n", s.Mispredicts, 100*s.BranchAccuracy)
	fmt.Printf("wrap drains      %d\n", s.WrapDrains)
	fmt.Printf("I$/D$/L2 miss    %.2f%% / %.2f%% / %.2f%%\n",
		100*s.ICacheMissRate, 100*s.DCacheMissRate, 100*s.L2MissRate)
}
